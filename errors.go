package seal

import "errors"

// Sentinel errors of the façade. Every constructor and the serving
// gateway wrap these with %w, so callers branch with errors.Is instead
// of string matching — the HTTP gateway maps them straight to status
// codes (ErrModelNotFound → 404, ErrBadKey / ErrUnknownArch → 400).
var (
	// ErrBadKey reports a sealing key that failed validation (wrong
	// length for AES-128).
	ErrBadKey = errors.New("seal: bad key")

	// ErrUnknownArch reports an architecture name outside the zoo.
	ErrUnknownArch = errors.New("seal: unknown architecture")

	// ErrModelNotFound reports a registry lookup for a model that is not
	// (or no longer) hosted.
	ErrModelNotFound = errors.New("seal: model not found")

	// ErrBadOption reports a PrepareOption whose argument failed
	// validation (e.g. WithPanelBytes(n) with n <= 0, or WithBatch(n)
	// with n < 1). Prepare rejects these up front so misconfiguration
	// surfaces at preparation time, not later from engine construction.
	ErrBadOption = errors.New("seal: bad option")
)
