// Package seal is a from-scratch reproduction of "SEALing Neural Network
// Models in Encrypted Deep Learning Accelerators" (Zuo, Hua, Liang, Xie,
// Hu, Xie — DAC 2021).
//
// SEAL protects neural-network models in accelerator DRAM against
// memory-bus snooping. Full memory encryption throttles the >160 GB/s
// GDDR bus to the ~8 GB/s of a hardware AES engine; SEAL's
// criticality-aware smart encryption (SE) instead ranks each layer's
// kernel rows by ℓ1-norm, encrypts only the most important fraction
// (50 % by default) together with the feature-map channels those rows
// consume, and lets the rest of the traffic bypass the engines — same
// security, ~1.34-1.4× the encrypted-GPU performance.
//
// The package is a façade over the implementation:
//
//   - models:  VGG-16 / ResNet-18 / ResNet-34 architectures and
//     trainable instances (internal/models, internal/nn)
//   - Plan:    the SE decision — per-layer encrypted kernel rows and
//     feature-map channels (internal/core)
//   - Layout:  the EMalloc address space mapping every tensor to
//     simulated DRAM with per-line ciphertext marking (internal/core)
//   - Sim:     a GTX480-like cycle simulator with per-channel AES
//     engines in direct or counter mode (internal/gpu et al.)
//   - exp:     runners reproducing every table and figure of the
//     paper's evaluation (internal/exp)
//
// A minimal end-to-end flow is one call: Prepare builds the model,
// smart-encryption plan, EMalloc layout, sealed memory image and
// streaming secure-inference engine as a single bundle:
//
//	arch := seal.ResNet18().Scale(0.25, 0)
//	p, _ := seal.Prepare(arch, 42, seal.WithKey(seal.KeyFromString("demo")))
//	fmt.Printf("ciphertext fraction: %.2f\n", p.Layout().EncryptedFraction())
//	logits := p.Forward(x) // streamed from the encrypted image
//
// The five individual constructors (BuildModel, NewPlan, NewLayout,
// NewMemoryImage, NewSecureEngine) remain as the low-level API.
// cmd/sealserve hosts Prepared bundles behind a multi-tenant HTTP
// gateway (internal/serve), with per-tenant keys via Key.DeriveSubKey.
//
// See examples/ for runnable programs and cmd/ for the experiment
// binaries.
package seal

import (
	"fmt"

	"seal/internal/attack"
	"seal/internal/core"
	"seal/internal/dataset"
	"seal/internal/exp"
	"seal/internal/gpu"
	"seal/internal/models"
	"seal/internal/prng"
	"seal/internal/secure"
	"seal/internal/tensor"
	"seal/internal/trace"
)

// Re-exported core types. Aliases keep the internal packages as the
// single source of truth while giving users stable names.
type (
	// Arch is a CNN architecture description (geometry only).
	Arch = models.Arch
	// LayerSpec is the geometry of one layer.
	LayerSpec = models.LayerSpec
	// Model is a trainable network instance.
	Model = models.Model
	// Options tunes smart-encryption planning.
	Options = core.Options
	// Plan is the smart-encryption decision for a network.
	Plan = core.Plan
	// LayerPlan is the decision for one weight layer.
	LayerPlan = core.LayerPlan
	// Layout is the EMalloc memory image of a planned network.
	Layout = core.Layout
	// Region is one allocation in the simulated address space.
	Region = core.Region
	// AddressSpace exposes the paper's malloc/emalloc primitives.
	AddressSpace = core.AddressSpace
	// MemoryImage is the byte-accurate DRAM view of a planned network,
	// with real AES-CTR on the plan's ciphertext blocks.
	MemoryImage = core.MemoryImage
	// SecureEngine streams a model's forward pass from the encrypted
	// MemoryImage, overlapping panel decryption with GEMM compute.
	SecureEngine = secure.Engine
	// SecureStats counts a SecureEngine's memory-side work.
	SecureStats = secure.Stats
	// SimConfig describes the simulated GPU.
	SimConfig = gpu.Config
	// Sim is the GPU cycle simulator.
	Sim = gpu.Sim
	// SimResult summarizes one simulation run.
	SimResult = gpu.Result
	// EncMode selects the memory-encryption scheme.
	EncMode = gpu.EncMode
	// Stream is one SM's instruction/memory trace.
	Stream = gpu.Stream
	// Op is one trace element: compute followed by a memory access.
	Op = gpu.Op
	// Tensor is the dense float32 tensor every forward pass consumes
	// and produces.
	Tensor = tensor.Tensor
	// TraceParams tunes the workload-to-trace execution model.
	TraceParams = trace.Params
	// Dataset is a labeled image set.
	Dataset = dataset.Dataset
	// TrainConfig controls SGD training runs.
	TrainConfig = attack.TrainConfig
	// TimingConfig parameterizes the simulator experiments.
	TimingConfig = exp.TimingConfig
	// SecurityConfig parameterizes the substitute-model experiments.
	SecurityConfig = exp.SecurityConfig
	// Table is a formatted experiment result.
	Table = exp.Table
)

// Encryption modes of the simulated GPU.
const (
	ModeNone    = gpu.ModeNone
	ModeDirect  = gpu.ModeDirect
	ModeCounter = gpu.ModeCounter
)

// VGG16 returns the CIFAR-10 VGG-16 geometry (13 CONV + 3 FC).
func VGG16() *Arch { return models.VGG16Arch() }

// ResNet18 returns the CIFAR-10 ResNet-18 geometry (17 CONV + 1 FC).
func ResNet18() *Arch { return models.ResNet18Arch() }

// ResNet34 returns the CIFAR-10 ResNet-34 geometry (33 CONV + 1 FC).
func ResNet34() *Arch { return models.ResNet34Arch() }

// ArchByName resolves "vgg16", "resnet18" or "resnet34"; unknown names
// wrap ErrUnknownArch.
func ArchByName(name string) (*Arch, error) {
	a, err := models.ArchByName(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %q (want vgg16, resnet18 or resnet34)", ErrUnknownArch, name)
	}
	return a, nil
}

// NewTensor allocates a zeroed tensor with the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// BuildModel constructs a trainable model with He-initialized weights
// from the deterministic seed.
func BuildModel(a *Arch, seed uint64) (*Model, error) {
	return models.Build(a, prng.New(seed))
}

// DefaultOptions returns the paper's SE configuration: 50 % ratio,
// ℓ1-norm importance, full encryption of the boundary layers.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewPlan computes the smart-encryption plan for a model.
func NewPlan(m *Model, opts Options) (*Plan, error) { return core.NewPlan(m, opts) }

// NewLayout materializes a plan's EMalloc address space for an
// inference batch size.
func NewLayout(p *Plan, batch int) (*Layout, error) { return core.NewLayout(p, batch) }

// NewMemoryImage materializes the layout's DRAM bytes for a model,
// encrypting the planned blocks under AES-128 CTR with the sealing
// key — the functional counterpart of the timing simulator (Snoop/Audit
// show exactly what a bus adversary captures). The validated Key type
// replaces the raw []byte key of earlier revisions; the raw-slice path
// survives only as the low-level core.NewMemoryImage and is deprecated
// for callers of this package.
func NewMemoryImage(l *Layout, m *Model, key Key) (*MemoryImage, error) {
	return core.NewMemoryImage(l, m, key.b[:])
}

// NewSecureEngine builds a streaming secure-inference engine over an
// encrypted image and the model whose plan produced it: Forward runs
// inference with every conv/FC weight decrypted panel-by-panel from the
// image, bit-identical to the plaintext forward pass.
func NewSecureEngine(img *MemoryImage, m *Model) (*SecureEngine, error) {
	return secure.NewEngine(img, m, 0)
}

// GTX480 returns the paper's simulated GPU configuration (15 SMs, six
// GDDR5 channels at ≈177 GB/s, one 8 GB/s AES engine per memory
// controller).
func GTX480() SimConfig { return gpu.ConfigGTX480() }

// NewSim constructs a GPU simulator.
func NewSim(cfg SimConfig) (*Sim, error) { return gpu.New(cfg) }

// SyntheticCIFAR10 generates n samples of the synthetic CIFAR-10
// stand-in used by the security experiments (see DESIGN.md for the
// substitution rationale).
func SyntheticCIFAR10(seed uint64, n int) *Dataset {
	return dataset.NewGenerator(dataset.DefaultConfig(), seed).Sample(n)
}

// Train runs SGD on a model, honouring any weight freeze masks.
func Train(m *Model, ds *Dataset, cfg TrainConfig, seed uint64) {
	attack.Train(m, ds, cfg, prng.New(seed))
}

// DefaultTrainConfig returns training settings suited to width-scaled
// models on the synthetic dataset.
func DefaultTrainConfig() TrainConfig { return attack.DefaultTrainConfig() }

// Accuracy evaluates classification accuracy of m on ds.
func Accuracy(m *Model, ds *Dataset) float64 { return attack.Accuracy(m, ds) }

// DefaultTimingConfig returns the paper-scale simulator experiment
// configuration; QuickTimingConfig is a fast smoke-scale variant.
func DefaultTimingConfig() TimingConfig { return exp.DefaultTimingConfig() }

// QuickTimingConfig returns a reduced configuration for smoke runs.
func QuickTimingConfig() TimingConfig { return exp.QuickTimingConfig() }
