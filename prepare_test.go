package seal

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"seal/internal/parallel"
	"seal/internal/prng"
)

// randInput fills a fresh batch tensor for an architecture.
func randInput(arch *Arch, batch int, seed uint64) *Tensor {
	x := NewTensor(batch, arch.InC, arch.InH, arch.InW)
	rng := prng.New(seed)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

// TestPrepareMatchesManualChain pins the redesigned one-call API to the
// five-step constructor chain it replaced: same arch, seed, key and
// panel budget must produce bit-identical logits, at serial and
// parallel pool widths.
func TestPrepareMatchesManualChain(t *testing.T) {
	key := KeyFromString("prepare equivalence key")
	for _, name := range []string{"vgg16", "resnet18"} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers%d", name, workers), func(t *testing.T) {
				prev := parallel.SetWorkers(workers)
				defer parallel.SetWorkers(prev)

				arch, err := ArchByName(name)
				if err != nil {
					t.Fatal(err)
				}
				arch = arch.Scale(0.125, 0)
				x := randInput(arch, 2, 99)

				// Manual five-step chain.
				model, err := BuildModel(arch, 42)
				if err != nil {
					t.Fatal(err)
				}
				plan, err := NewPlan(model, DefaultOptions())
				if err != nil {
					t.Fatal(err)
				}
				layout, err := NewLayout(plan, 1)
				if err != nil {
					t.Fatal(err)
				}
				img, err := NewMemoryImage(layout, model, key)
				if err != nil {
					t.Fatal(err)
				}
				eng, err := NewSecureEngine(img, model)
				if err != nil {
					t.Fatal(err)
				}
				want := eng.Forward(x)
				wantCopy := make([]float32, len(want.Data))
				copy(wantCopy, want.Data)

				// One-call Prepare.
				p, err := Prepare(arch, 42, WithKey(key))
				if err != nil {
					t.Fatal(err)
				}
				got := p.Forward(x)
				if len(got.Data) != len(wantCopy) {
					t.Fatalf("logits length %d, want %d", len(got.Data), len(wantCopy))
				}
				for i := range wantCopy {
					if got.Data[i] != wantCopy[i] {
						t.Fatalf("logit %d = %v, want %v (not bit-identical)", i, got.Data[i], wantCopy[i])
					}
				}

				// And against the plaintext forward, which the secure path
				// promises bit-identity with.
				plain := p.Model().Forward(x, false)
				for i := range wantCopy {
					if plain.Data[i] != wantCopy[i] {
						t.Fatalf("plaintext logit %d = %v, want %v", i, plain.Data[i], wantCopy[i])
					}
				}
			})
		}
	}
}

func TestPrepareOptionsApply(t *testing.T) {
	arch, err := ArchByName("vgg16")
	if err != nil {
		t.Fatal(err)
	}
	arch = arch.Scale(0.0625, 0)
	opts := DefaultOptions()
	opts.Ratio = 1.0
	p, err := Prepare(arch, 7, WithOptions(opts), WithBatch(4), WithPanelBytes(4096))
	if err != nil {
		t.Fatal(err)
	}
	if f := p.Plan().WeightEncFraction(); f != 1.0 {
		t.Fatalf("ratio 1.0 plan encrypts %.3f of weights, want 1.0", f)
	}
	if pb := p.Engine().PanelBytes(); pb != 4096 {
		t.Fatalf("engine panel bytes %d, want 4096", pb)
	}
	if p.Arch() != arch || p.Seed() != 7 {
		t.Fatal("accessors do not round-trip arch/seed")
	}
	if _, err := Prepare(arch, 7, WithBatch(0)); err == nil {
		t.Fatal("batch 0 accepted")
	}
	if _, err := Prepare(nil, 7); err == nil {
		t.Fatal("nil arch accepted")
	}
}

// TestPrepareRejectsBadOptions pins the Prepare-time option validation:
// nonsense arguments fail fast with the wrapped ErrBadOption sentinel
// instead of surfacing later from engine construction, while omitting
// WithPanelBytes keeps the engine default.
func TestPrepareRejectsBadOptions(t *testing.T) {
	arch, err := ArchByName("vgg16")
	if err != nil {
		t.Fatal(err)
	}
	arch = arch.Scale(0.0625, 0)
	for _, bad := range []struct {
		name string
		opt  PrepareOption
	}{
		{"panel 0", WithPanelBytes(0)},
		{"panel -1", WithPanelBytes(-1)},
		{"panel -4096", WithPanelBytes(-4096)},
		{"batch 0", WithBatch(0)},
		{"batch -3", WithBatch(-3)},
	} {
		_, err := Prepare(arch, 7, bad.opt)
		if err == nil {
			t.Fatalf("%s accepted", bad.name)
		}
		if !errors.Is(err, ErrBadOption) {
			t.Fatalf("%s: error %v does not wrap ErrBadOption", bad.name, err)
		}
	}
	if _, err := Prepare(arch, 7); err != nil {
		t.Fatalf("default panel budget rejected: %v", err)
	}
}

// TestPrepareInt8 drives WithInt8 through the façade: the bundle
// reports int8, the sealed image carries the quantized layout (1-byte
// weight regions plus plaintext scales headers), the streamed logits
// are bit-identical to the bundled quantized eval forward — including
// on a pool worker from NewEngine — and stay within quantization
// tolerance of a float Prepare of the same seed.
func TestPrepareInt8(t *testing.T) {
	arch, err := ArchByName("vgg16")
	if err != nil {
		t.Fatal(err)
	}
	arch = arch.Scale(0.125, 0)
	key := KeyFromString("int8 facade key")
	p8, err := Prepare(arch, 33, WithKey(key), WithInt8())
	if err != nil {
		t.Fatal(err)
	}
	if !p8.Int8() {
		t.Fatal("Int8() false on a WithInt8 bundle")
	}
	pf, err := Prepare(arch, 33, WithKey(key))
	if err != nil {
		t.Fatal(err)
	}
	if pf.Int8() {
		t.Fatal("Int8() true on a float bundle")
	}
	var qb, fb uint64
	for _, lp := range p8.Plan().Layers {
		if p8.Layout().Region("qs:"+lp.Name) == nil {
			t.Fatalf("%s missing plaintext scales region", lp.Name)
		}
		// Per-layer sizes can tie on tiny layers (4 KiB page alignment),
		// but the totals must show the ~4x byte-per-weight cut.
		qb += p8.Layout().Region("w:" + lp.Name).Size
		fb += pf.Layout().Region("w:" + lp.Name).Size
	}
	if ratio := float64(fb) / float64(qb); ratio < 2.5 {
		t.Fatalf("int8 weight regions only %.2fx under float (%d vs %d bytes)", ratio, qb, fb)
	}

	x := randInput(arch, 2, 11)
	want := p8.Model().Forward(x, false)
	wantCopy := make([]float32, len(want.Data))
	copy(wantCopy, want.Data)
	got := p8.Forward(x)
	for i := range wantCopy {
		if got.Data[i] != wantCopy[i] {
			t.Fatalf("int8 logit %d = %v, want %v (not bit-identical to quantized eval)", i, got.Data[i], wantCopy[i])
		}
	}
	w, err := p8.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	wgot := w.Forward(x)
	for i := range wantCopy {
		if wgot.Data[i] != wantCopy[i] {
			t.Fatalf("worker int8 logit %d = %v, want %v", i, wgot.Data[i], wantCopy[i])
		}
	}

	ref := pf.Model().Forward(x, false)
	var maxAbs float64
	for _, v := range ref.Data {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	tol := 0.1 * maxAbs
	if tol == 0 {
		tol = 1e-3
	}
	for i := range wantCopy {
		if d := math.Abs(float64(wantCopy[i] - ref.Data[i])); d > tol {
			t.Fatalf("int8 logit %d drifts %v from float %v (tol %v)", i, d, ref.Data[i], tol)
		}
	}
}

// TestPreparedNewEngine pins the pool-worker path: an engine rebuilt
// from the bundle's seed over the shared image produces the same bits
// as the primary engine.
func TestPreparedNewEngine(t *testing.T) {
	base, err := ArchByName("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	arch := base.Scale(0.0625, 0)
	p, err := Prepare(arch, 21, WithKey(KeyFromString("worker key")))
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(arch, 2, 5)
	want := p.Forward(x)
	wantCopy := make([]float32, len(want.Data))
	copy(wantCopy, want.Data)

	w, err := p.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if w == p.Engine() {
		t.Fatal("NewEngine returned the primary engine")
	}
	if w.Image() != p.Image() {
		t.Fatal("worker engine does not share the sealed image")
	}
	if w.Model() == p.Model() {
		t.Fatal("worker engine shares the primary model (engines would race)")
	}
	got := w.Forward(x)
	for i := range wantCopy {
		if got.Data[i] != wantCopy[i] {
			t.Fatalf("worker logit %d = %v, want %v", i, got.Data[i], wantCopy[i])
		}
	}
}
