package seal

import (
	"fmt"
	"testing"

	"seal/internal/parallel"
	"seal/internal/prng"
)

// randInput fills a fresh batch tensor for an architecture.
func randInput(arch *Arch, batch int, seed uint64) *Tensor {
	x := NewTensor(batch, arch.InC, arch.InH, arch.InW)
	rng := prng.New(seed)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	return x
}

// TestPrepareMatchesManualChain pins the redesigned one-call API to the
// five-step constructor chain it replaced: same arch, seed, key and
// panel budget must produce bit-identical logits, at serial and
// parallel pool widths.
func TestPrepareMatchesManualChain(t *testing.T) {
	key := KeyFromString("prepare equivalence key")
	for _, name := range []string{"vgg16", "resnet18"} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/workers%d", name, workers), func(t *testing.T) {
				prev := parallel.SetWorkers(workers)
				defer parallel.SetWorkers(prev)

				arch, err := ArchByName(name)
				if err != nil {
					t.Fatal(err)
				}
				arch = arch.Scale(0.125, 0)
				x := randInput(arch, 2, 99)

				// Manual five-step chain.
				model, err := BuildModel(arch, 42)
				if err != nil {
					t.Fatal(err)
				}
				plan, err := NewPlan(model, DefaultOptions())
				if err != nil {
					t.Fatal(err)
				}
				layout, err := NewLayout(plan, 1)
				if err != nil {
					t.Fatal(err)
				}
				img, err := NewMemoryImage(layout, model, key)
				if err != nil {
					t.Fatal(err)
				}
				eng, err := NewSecureEngine(img, model)
				if err != nil {
					t.Fatal(err)
				}
				want := eng.Forward(x)
				wantCopy := make([]float32, len(want.Data))
				copy(wantCopy, want.Data)

				// One-call Prepare.
				p, err := Prepare(arch, 42, WithKey(key))
				if err != nil {
					t.Fatal(err)
				}
				got := p.Forward(x)
				if len(got.Data) != len(wantCopy) {
					t.Fatalf("logits length %d, want %d", len(got.Data), len(wantCopy))
				}
				for i := range wantCopy {
					if got.Data[i] != wantCopy[i] {
						t.Fatalf("logit %d = %v, want %v (not bit-identical)", i, got.Data[i], wantCopy[i])
					}
				}

				// And against the plaintext forward, which the secure path
				// promises bit-identity with.
				plain := p.Model().Forward(x, false)
				for i := range wantCopy {
					if plain.Data[i] != wantCopy[i] {
						t.Fatalf("plaintext logit %d = %v, want %v", i, plain.Data[i], wantCopy[i])
					}
				}
			})
		}
	}
}

func TestPrepareOptionsApply(t *testing.T) {
	arch, err := ArchByName("vgg16")
	if err != nil {
		t.Fatal(err)
	}
	arch = arch.Scale(0.0625, 0)
	opts := DefaultOptions()
	opts.Ratio = 1.0
	p, err := Prepare(arch, 7, WithOptions(opts), WithBatch(4), WithPanelBytes(4096))
	if err != nil {
		t.Fatal(err)
	}
	if f := p.Plan().WeightEncFraction(); f != 1.0 {
		t.Fatalf("ratio 1.0 plan encrypts %.3f of weights, want 1.0", f)
	}
	if pb := p.Engine().PanelBytes(); pb != 4096 {
		t.Fatalf("engine panel bytes %d, want 4096", pb)
	}
	if p.Arch() != arch || p.Seed() != 7 {
		t.Fatal("accessors do not round-trip arch/seed")
	}
	if _, err := Prepare(arch, 7, WithBatch(0)); err == nil {
		t.Fatal("batch 0 accepted")
	}
	if _, err := Prepare(nil, 7); err == nil {
		t.Fatal("nil arch accepted")
	}
}

// TestPreparedNewEngine pins the pool-worker path: an engine rebuilt
// from the bundle's seed over the shared image produces the same bits
// as the primary engine.
func TestPreparedNewEngine(t *testing.T) {
	base, err := ArchByName("resnet18")
	if err != nil {
		t.Fatal(err)
	}
	arch := base.Scale(0.0625, 0)
	p, err := Prepare(arch, 21, WithKey(KeyFromString("worker key")))
	if err != nil {
		t.Fatal(err)
	}
	x := randInput(arch, 2, 5)
	want := p.Forward(x)
	wantCopy := make([]float32, len(want.Data))
	copy(wantCopy, want.Data)

	w, err := p.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if w == p.Engine() {
		t.Fatal("NewEngine returned the primary engine")
	}
	if w.Image() != p.Image() {
		t.Fatal("worker engine does not share the sealed image")
	}
	if w.Model() == p.Model() {
		t.Fatal("worker engine shares the primary model (engines would race)")
	}
	got := w.Forward(x)
	for i := range wantCopy {
		if got.Data[i] != wantCopy[i] {
			t.Fatalf("worker logit %d = %v, want %v", i, got.Data[i], wantCopy[i])
		}
	}
}
