package seal

import (
	"fmt"

	"seal/internal/core"
	"seal/internal/models"
	"seal/internal/nn"
	"seal/internal/prng"
	"seal/internal/secure"
)

// PrepareOption customizes Prepare. The zero configuration is the
// paper's defaults: DefaultOptions planning, layout batch 1, the zero
// Key, and the secure engine's default panel budget.
type PrepareOption func(*prepareConfig)

type prepareConfig struct {
	opts       Options
	batch      int
	key        Key
	panelBytes int
	panelSet   bool
	int8       bool
}

// WithOptions sets the smart-encryption planning options (ratio,
// boundary-layer rules, importance metric).
func WithOptions(o Options) PrepareOption {
	return func(c *prepareConfig) { c.opts = o }
}

// WithBatch sets the inference batch size the layout's feature-map
// regions are dimensioned for.
func WithBatch(n int) PrepareOption {
	return func(c *prepareConfig) { c.batch = n }
}

// WithKey seals the memory image under k instead of the zero key.
func WithKey(k Key) PrepareOption {
	return func(c *prepareConfig) { c.key = k }
}

// WithPanelBytes sets the streaming engine's per-panel decrypt budget.
// n must be positive; omit the option to keep the engine default.
// Prepare rejects n <= 0 with a wrapped ErrBadOption.
func WithPanelBytes(n int) PrepareOption {
	return func(c *prepareConfig) { c.panelBytes = n; c.panelSet = true }
}

// WithInt8 seals the image in the quantized int8 layout: weights are
// stored one byte each (per-output-channel symmetric scales ride in a
// plaintext header), cutting ciphertext bus traffic ~4x, and the
// streaming engine runs the saturating int8 GEMM path. The prepared
// model's own eval forward is switched to the matching quantized path,
// so Prepared.Forward stays bit-identical to Model().Forward.
func WithInt8() PrepareOption {
	return func(c *prepareConfig) { c.int8 = true }
}

// Prepared bundles everything Prepare builds for one architecture: the
// trainable model, its smart-encryption plan, the EMalloc layout, the
// AES-CTR-sealed memory image and a streaming secure-inference engine
// over it. It is the unit a serving system caches per registered model
// — build once, then run Forward (or a pool of NewEngine workers)
// against the sealed image for the deployment's lifetime.
type Prepared struct {
	arch       *Arch
	seed       uint64
	panelBytes int
	int8       bool

	model  *Model
	plan   *Plan
	layout *Layout
	image  *MemoryImage
	engine *SecureEngine
}

// Prepare collapses the five-step BuildModel → NewPlan → NewLayout →
// NewMemoryImage → NewSecureEngine chain into one call:
//
//	p, err := seal.Prepare(seal.VGG16().Scale(0.25, 0), 42,
//	        seal.WithKey(key), seal.WithBatch(16))
//	logits := p.Forward(x) // streamed from the encrypted image
//
// The individual constructors remain available as the low-level API;
// Prepare is the supported front door and the only one the serving
// gateway uses. The weight initialization is deterministic in seed, so
// two Prepare calls with equal arguments produce bit-identical images
// and logits.
func Prepare(arch *Arch, seed uint64, opts ...PrepareOption) (*Prepared, error) {
	if arch == nil {
		return nil, fmt.Errorf("%w: nil architecture", ErrUnknownArch)
	}
	cfg := prepareConfig{opts: DefaultOptions(), batch: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.batch < 1 {
		return nil, fmt.Errorf("%w: batch %d, want >= 1", ErrBadOption, cfg.batch)
	}
	if cfg.panelSet && cfg.panelBytes <= 0 {
		return nil, fmt.Errorf("%w: panel bytes %d, want > 0 (omit WithPanelBytes for the engine default)", ErrBadOption, cfg.panelBytes)
	}
	p := &Prepared{arch: arch, seed: seed, panelBytes: cfg.panelBytes, int8: cfg.int8}
	var err error
	if p.model, err = models.Build(arch, prng.New(seed)); err != nil {
		return nil, err
	}
	if p.plan, err = core.NewPlan(p.model, cfg.opts); err != nil {
		return nil, err
	}
	newLayout := core.NewLayout
	if cfg.int8 {
		newLayout = core.NewInt8Layout
	}
	if p.layout, err = newLayout(p.plan, cfg.batch); err != nil {
		return nil, err
	}
	if p.image, err = core.NewMemoryImage(p.layout, p.model, cfg.key.b[:]); err != nil {
		return nil, err
	}
	if p.engine, err = secure.NewEngine(p.image, p.model, cfg.panelBytes); err != nil {
		return nil, err
	}
	if cfg.int8 {
		// Switch the bundled model's eval forward to the quantized path
		// so it stays the bit-identity reference for the int8 engine.
		nn.EnableInt8(p.model.Net)
	}
	return p, nil
}

// PrepareByName resolves the architecture by zoo name ("vgg16",
// "resnet18", "resnet34") and prepares it. Unknown names wrap
// ErrUnknownArch.
func PrepareByName(name string, seed uint64, opts ...PrepareOption) (*Prepared, error) {
	arch, err := ArchByName(name)
	if err != nil {
		return nil, err
	}
	return Prepare(arch, seed, opts...)
}

// Arch returns the prepared architecture.
func (p *Prepared) Arch() *Arch { return p.arch }

// Seed returns the weight-initialization seed.
func (p *Prepared) Seed() uint64 { return p.seed }

// Int8 reports whether the image was sealed in the quantized int8
// layout (see WithInt8).
func (p *Prepared) Int8() bool { return p.int8 }

// Model returns the plaintext model (structure, biases, BN state; its
// kernel weights also live sealed in the image).
func (p *Prepared) Model() *Model { return p.model }

// Plan returns the smart-encryption plan.
func (p *Prepared) Plan() *Plan { return p.plan }

// Layout returns the EMalloc memory layout.
func (p *Prepared) Layout() *Layout { return p.layout }

// Image returns the sealed memory image.
func (p *Prepared) Image() *MemoryImage { return p.image }

// Engine returns the bundle's primary streaming engine. Engines are not
// safe for concurrent Forward calls; workers that run in parallel each
// need their own NewEngine.
func (p *Prepared) Engine() *SecureEngine { return p.engine }

// Forward streams one inference batch [N, C, H, W] from the sealed
// image on the primary engine and returns the logits, bit-identical to
// Model().Forward (the float eval forward, or the quantized one under
// WithInt8). The returned tensor is valid until the next Forward on the
// same engine.
func (p *Prepared) Forward(x *Tensor) *Tensor { return p.engine.Forward(x) }

// NewEngine builds an additional streaming engine over the same sealed
// image, backed by its own (bit-identical, seed-rebuilt) model
// instance. Separate engines share only the image, whose decrypt path
// is concurrency-safe, so each engine can run Forward on its own
// goroutine — this is how the serving gateway sizes a worker pool per
// model without re-encrypting anything.
func (p *Prepared) NewEngine() (*SecureEngine, error) {
	m, err := models.Build(p.arch, prng.New(p.seed))
	if err != nil {
		return nil, err
	}
	return secure.NewEngine(p.image, m, p.panelBytes)
}
