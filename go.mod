module seal

go 1.22
