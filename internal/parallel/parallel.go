// Package parallel provides the shared deterministic worker pool behind
// the repository's compute kernels (tensor GEMM and im2col, AES-CTR
// keystreams, Conv2D batch items) and the experiment fan-outs in
// internal/exp.
//
// The paper's core tension is parallelism: GDDR bandwidth outruns any
// single AES engine, and real accelerators close the gap with many
// engines working on disjoint data (§II-B). This package is the software
// analogue — independent work units run on separate goroutines — under
// one hard rule the hardware shares: every worker owns a disjoint output
// range, and any cross-unit reduction happens in index order after the
// barrier. That rule makes every parallel result bit-identical to the
// serial one, so the experiment tables stay reproducible no matter the
// core count.
//
// Pool sizing comes from runtime.GOMAXPROCS, overridable with the
// SEAL_WORKERS environment variable; SEAL_WORKERS=1 forces the exact
// serial code path (no goroutines at all). Concurrency is bounded by a
// counting semaphore rather than a fixed task queue so that nested use
// (a parallel Conv2D batch whose items call a parallel MatMul) degrades
// to inline execution instead of deadlocking: when no worker slot is
// free, the submitting goroutine simply runs the chunk itself.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// workers is the configured pool width (total concurrent executors,
// including the submitting goroutine).
var workers atomic.Int32

// inflight counts chunks currently running on spawned goroutines. The
// limit is workers-1: the caller of For/Do always executes work too, so
// total concurrency never exceeds the configured width.
var inflight atomic.Int32

func init() { workers.Store(int32(envWorkers())) }

func envWorkers() int {
	if s := os.Getenv("SEAL_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Workers returns the current pool width (≥ 1). A width of 1 means every
// For/Do call runs serially on the calling goroutine.
func Workers() int { return int(workers.Load()) }

// SetWorkers overrides the pool width and returns the previous value.
// It exists for tests that compare serial and parallel execution within
// one process; production code should use the SEAL_WORKERS environment
// variable instead.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(workers.Swap(int32(n)))
}

// tryAcquire claims a spawned-goroutine slot if one is free.
func tryAcquire() bool {
	limit := workers.Load() - 1
	if limit <= 0 {
		return false
	}
	if inflight.Add(1) > limit {
		inflight.Add(-1)
		return false
	}
	return true
}

func release() { inflight.Add(-1) }

// For runs fn over the index range [0, n) split into chunks of at most
// grain consecutive indices; fn(lo, hi) processes [lo, hi). If grain <= 0
// a default of ~4 chunks per worker is chosen, which amortizes dispatch
// overhead while still load-balancing uneven chunks.
//
// Chunks may run concurrently and complete in any order, so fn must
// write only state derived from its own index range. Under that
// contract the result is bit-identical to calling fn(0, n): each output
// index is produced by exactly one invocation, with the same
// per-index operation order as the serial loop. For returns after every
// chunk has finished.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if grain <= 0 {
		grain = (n + 4*w - 1) / (4 * w)
		if grain < 1 {
			grain = 1
		}
	}
	if w == 1 || n <= grain {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		// Keep the final chunk inline: the caller must do work anyway
		// while it waits, and this guarantees progress when no slot is
		// free (nested parallelism).
		if hi < n && tryAcquire() {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer release()
				fn(lo, hi)
			}(lo, hi)
		} else {
			fn(lo, hi)
		}
	}
	wg.Wait()
}

// Do runs the given tasks, possibly concurrently, and returns once all
// have finished. Tasks must be independent: any ordering between their
// side effects must be reconstructed by the caller after Do returns
// (e.g. assembling per-task results from an index-addressed slice).
// With a pool width of 1 the tasks run sequentially in argument order.
func Do(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	if Workers() == 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var wg sync.WaitGroup
	for i, t := range tasks {
		if i < len(tasks)-1 && tryAcquire() {
			wg.Add(1)
			go func(t func()) {
				defer wg.Done()
				defer release()
				t()
			}(t)
		} else {
			t()
		}
	}
	wg.Wait()
}

// DoErr runs the tasks like Do and returns the error of the
// lowest-indexed task that failed (matching what a serial loop with an
// early return would have reported), or nil if all succeeded. Unlike the
// serial loop, every task runs even when an earlier one fails; callers
// needing abort-on-error semantics should check a shared flag inside
// their tasks.
func DoErr(tasks ...func() error) error {
	if len(tasks) == 0 {
		return nil
	}
	errs := make([]error, len(tasks))
	run := make([]func(), len(tasks))
	for i, t := range tasks {
		i, t := i, t
		run[i] = func() { errs[i] = t() }
	}
	Do(run...)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
