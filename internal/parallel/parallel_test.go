package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := SetWorkers(n)
	t.Cleanup(func() { SetWorkers(prev) })
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		withWorkers(t, w)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			for _, grain := range []int{0, 1, 3, 1000} {
				hits := make([]int32, n)
				For(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("workers=%d n=%d grain=%d: bad chunk [%d,%d)", w, n, grain, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", w, n, grain, i, h)
					}
				}
			}
		}
	}
}

func TestForSerialIsSingleChunk(t *testing.T) {
	withWorkers(t, 1)
	calls := 0
	For(100, 7, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("serial path chunked: [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("serial path made %d calls", calls)
	}
}

func TestForNested(t *testing.T) {
	withWorkers(t, 4)
	const outer, inner = 16, 64
	var total atomic.Int64
	For(outer, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(inner, 8, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if got := total.Load(); got != outer*inner {
		t.Fatalf("nested For covered %d indices, want %d", got, outer*inner)
	}
	if got := inflight.Load(); got != 0 {
		t.Fatalf("semaphore leaked: inflight=%d", got)
	}
}

func TestDoRunsAllTasks(t *testing.T) {
	for _, w := range []int{1, 3} {
		withWorkers(t, w)
		var ran [5]int32
		var tasks []func()
		for i := range ran {
			i := i
			tasks = append(tasks, func() { atomic.AddInt32(&ran[i], 1) })
		}
		Do(tasks...)
		for i, r := range ran {
			if r != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", w, i, r)
			}
		}
	}
}

func TestDoErrReturnsFirstByIndex(t *testing.T) {
	withWorkers(t, 4)
	e1, e3 := errors.New("one"), errors.New("three")
	err := DoErr(
		func() error { return nil },
		func() error { return e1 },
		func() error { return nil },
		func() error { return e3 },
	)
	if err != e1 {
		t.Fatalf("DoErr = %v, want first-by-index %v", err, e1)
	}
	if err := DoErr(func() error { return nil }); err != nil {
		t.Fatalf("DoErr success = %v", err)
	}
}

func TestSetWorkersFloorsAtOne(t *testing.T) {
	prev := SetWorkers(0)
	defer SetWorkers(prev)
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(0)", Workers())
	}
}
