package models

import (
	"testing"

	"seal/internal/nn"
	"seal/internal/prng"
	"seal/internal/tensor"
)

func TestArchsValidate(t *testing.T) {
	for _, a := range Archs() {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestVGG16LayerCounts(t *testing.T) {
	a := VGG16Arch()
	convs := a.ConvSpecs()
	fcs := a.FCSpecs()
	if len(convs) != 13 {
		t.Fatalf("VGG-16 has %d CONV layers, want 13", len(convs))
	}
	if len(fcs) != 3 {
		t.Fatalf("VGG-16 has %d FC layers, want 3", len(fcs))
	}
	if a.WeightLayerCount() != 16 {
		t.Fatalf("VGG-16 weight layers = %d, want 16", a.WeightLayerCount())
	}
	// channel progression of the five blocks
	wantC := []int{64, 64, 128, 128, 256, 256, 256, 512, 512, 512, 512, 512, 512}
	for i, s := range convs {
		if s.OutC != wantC[i] {
			t.Fatalf("conv %d OutC = %d, want %d", i, s.OutC, wantC[i])
		}
	}
}

func TestResNetLayerCounts(t *testing.T) {
	// Paper §III-A: 17/18 CONV for ResNet-18, 33/34 for ResNet-34,
	// counting only main-path convs (shortcut projections are auxiliary).
	for _, tc := range []struct {
		arch      *Arch
		mainConvs int
		shortcuts int
	}{
		{ResNet18Arch(), 17, 3},
		{ResNet34Arch(), 33, 3},
	} {
		main, sc := 0, 0
		for _, s := range tc.arch.Specs {
			if s.Kind != KindConv {
				continue
			}
			if s.ShortcutOf != "" {
				sc++
			} else {
				main++
			}
		}
		if main != tc.mainConvs {
			t.Errorf("%s main convs = %d, want %d", tc.arch.Name, main, tc.mainConvs)
		}
		if sc != tc.shortcuts {
			t.Errorf("%s shortcuts = %d, want %d", tc.arch.Name, sc, tc.shortcuts)
		}
		if fcs := tc.arch.FCSpecs(); len(fcs) != 1 {
			t.Errorf("%s FC layers = %d, want 1", tc.arch.Name, len(fcs))
		}
	}
}

func TestVGG16WeightCount(t *testing.T) {
	a := VGG16Arch()
	// conv1_1: 64*3*3*3 = 1728
	if w := a.Specs[0].WeightCount(); w != 1728 {
		t.Fatalf("conv1_1 weights = %d, want 1728", w)
	}
	// total must be in the ~15M region for CIFAR VGG-16
	total := a.TotalWeights()
	if total < 14_000_000 || total > 16_000_000 {
		t.Fatalf("VGG-16 total weights = %d, want ≈15M", total)
	}
}

func TestLayerSpecGeometry(t *testing.T) {
	s := LayerSpec{Kind: KindConv, InC: 64, OutC: 128, InH: 16, InW: 16, K: 3, Stride: 2, Pad: 1}
	if s.OutH() != 8 || s.OutW() != 8 {
		t.Fatalf("strided conv out %dx%d", s.OutH(), s.OutW())
	}
	if s.MACs() != int64(128*8*8*64*9) {
		t.Fatalf("MACs = %d", s.MACs())
	}
	if s.InputElems() != 64*16*16 || s.OutputElems() != 128*8*8 {
		t.Fatalf("elems: in %d out %d", s.InputElems(), s.OutputElems())
	}
}

func TestScalePreservesTopology(t *testing.T) {
	for _, a := range Archs() {
		small := a.Scale(0.25, 0)
		if err := small.Validate(); err != nil {
			t.Fatalf("%s scaled: %v", a.Name, err)
		}
		if len(small.Specs) != len(a.Specs) {
			t.Fatalf("%s scaled spec count %d != %d", a.Name, len(small.Specs), len(a.Specs))
		}
		if small.InH != a.InH || small.InC != 3 {
			t.Fatalf("%s scaled input %dx%dx%d", a.Name, small.InC, small.InH, small.InW)
		}
		// classifier width must be preserved
		fcs := small.FCSpecs()
		if fcs[len(fcs)-1].OutC != a.Classes {
			t.Fatalf("%s scaled classifier OutC = %d", a.Name, fcs[len(fcs)-1].OutC)
		}
	}
}

func TestArchByName(t *testing.T) {
	for _, name := range []string{"vgg16", "resnet18", "resnet34"} {
		if _, err := ArchByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ArchByName("alexnet"); err == nil {
		t.Error("unknown arch accepted")
	}
}

func TestBuildForwardShapes(t *testing.T) {
	r := prng.New(1)
	for _, a := range Archs() {
		small := a.Scale(0.125, 0)
		m, err := Build(small, r)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		x := tensor.New(2, 3, 32, 32)
		for i := range x.Data {
			x.Data[i] = float32(r.NormFloat64())
		}
		out := m.Forward(x, false)
		if out.Dim(0) != 2 || out.Dim(1) != 10 {
			t.Fatalf("%s logits shape %v", a.Name, out.Shape)
		}
	}
}

func TestBuildWeightLayerOrder(t *testing.T) {
	r := prng.New(2)
	a := ResNet18Arch().Scale(0.125, 0)
	m, err := Build(a, r)
	if err != nil {
		t.Fatal(err)
	}
	// WeightLayers must be exactly the arch's CONV+FC specs in order.
	want := 0
	for _, s := range a.Specs {
		if s.Kind == KindConv || s.Kind == KindFC {
			if m.WeightLayers[want].Name != s.Name {
				t.Fatalf("weight layer %d = %s, want %s", want, m.WeightLayers[want].Name, s.Name)
			}
			want++
		}
	}
	if want != len(m.WeightLayers) {
		t.Fatalf("weight layer count %d, want %d", len(m.WeightLayers), want)
	}
}

func TestBuildTrainStep(t *testing.T) {
	r := prng.New(3)
	a := ResNet18Arch().Scale(0.125, 0)
	m, err := Build(a, r)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 3, 32, 32)
	for i := range x.Data {
		x.Data[i] = float32(r.NormFloat64())
	}
	labels := []int{0, 1, 2, 3}
	opt := nn.NewSGD(0.01, 0.9, 1e-4)
	out := m.Forward(x, true)
	first, grad := nn.SoftmaxCrossEntropy(out, labels)
	m.Backward(grad)
	opt.Step(m.Params())
	out = m.Forward(x, true)
	second, _ := nn.SoftmaxCrossEntropy(out, labels)
	if second >= first {
		// One step on the same batch with momentum SGD should reduce loss.
		t.Fatalf("loss did not decrease: %v -> %v", first, second)
	}
}

func TestCloneProducesIdenticalOutputs(t *testing.T) {
	r := prng.New(4)
	a := VGG16Arch().Scale(0.125, 0)
	m, err := Build(a, r)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 3, 32, 32)
	for i := range x.Data {
		x.Data[i] = float32(r.NormFloat64())
	}
	// touch running stats so Clone must copy them too
	m.Forward(x, true)
	c, err := m.Clone(prng.New(999))
	if err != nil {
		t.Fatal(err)
	}
	a1 := m.Forward(x, false)
	a2 := c.Forward(x, false)
	if !tensor.Equal(a1, a2, 0) {
		t.Fatal("clone output differs from original")
	}
}

func TestCopyFromRejectsMismatchedArch(t *testing.T) {
	r := prng.New(5)
	m1, err := Build(VGG16Arch().Scale(0.125, 0), r)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Build(ResNet18Arch().Scale(0.125, 0), r)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.CopyFrom(m1); err == nil {
		t.Fatal("CopyFrom accepted mismatched architectures")
	}
}

func TestValidateCatchesBrokenChain(t *testing.T) {
	a := VGG16Arch()
	a.Specs[3].InC = 999
	if err := a.Validate(); err == nil {
		t.Fatal("Validate accepted broken layer chain")
	}
}
