package models

import "fmt"

// VGG16Arch returns the CIFAR-10 VGG-16 geometry: 13 CONV layers in five
// blocks separated by 2×2 max pools, then three FC layers (matching the
// paper's 13/16 CONV ratio, §III-A).
func VGG16Arch() *Arch {
	a := &Arch{Name: "VGG-16", InC: 3, InH: 32, InW: 32, Classes: 10}
	h, w := 32, 32
	c := 3
	block := func(idx, outC, n int) {
		for i := 0; i < n; i++ {
			a.Specs = append(a.Specs, LayerSpec{
				Name: fmt.Sprintf("conv%d_%d", idx, i+1), Kind: KindConv,
				InC: c, OutC: outC, InH: h, InW: w, K: 3, Stride: 1, Pad: 1,
			})
			c = outC
		}
		a.Specs = append(a.Specs, LayerSpec{
			Name: fmt.Sprintf("pool%d", idx), Kind: KindPool,
			InC: c, OutC: c, InH: h, InW: w, K: 2, Stride: 2,
		})
		h, w = h/2, w/2
	}
	block(1, 64, 2)
	block(2, 128, 2)
	block(3, 256, 3)
	block(4, 512, 3)
	block(5, 512, 3)
	a.Specs = append(a.Specs,
		LayerSpec{Name: "fc1", Kind: KindFC, InC: c * h * w, OutC: 512, InH: 1, InW: 1},
		LayerSpec{Name: "fc2", Kind: KindFC, InC: 512, OutC: 512, InH: 1, InW: 1},
		LayerSpec{Name: "fc3", Kind: KindFC, InC: 512, OutC: a.Classes, InH: 1, InW: 1},
	)
	return a
}

// resNetArch builds a CIFAR-10 ResNet with the ImageNet-style four-stage
// channel progression (64/128/256/512) used by the paper's ResNet-18/34.
// blocks gives the number of basic blocks per stage.
func resNetArch(name string, blocks [4]int) *Arch {
	a := &Arch{Name: name, InC: 3, InH: 32, InW: 32, Classes: 10}
	h, w := 32, 32
	c := 3
	a.Specs = append(a.Specs, LayerSpec{
		Name: "conv1", Kind: KindConv,
		InC: c, OutC: 64, InH: h, InW: w, K: 3, Stride: 1, Pad: 1,
	})
	c = 64
	stageC := []int{64, 128, 256, 512}
	for stage := 0; stage < 4; stage++ {
		outC := stageC[stage]
		for b := 0; b < blocks[stage]; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			blockName := fmt.Sprintf("layer%d.block%d", stage+1, b+1)
			a.Specs = append(a.Specs, LayerSpec{
				Name: blockName + ".conv1", Kind: KindConv, Residual: true,
				InC: c, OutC: outC, InH: h, InW: w, K: 3, Stride: stride, Pad: 1,
			})
			oh, ow := (h+2-3)/stride+1, (w+2-3)/stride+1
			a.Specs = append(a.Specs, LayerSpec{
				Name: blockName + ".conv2", Kind: KindConv, Residual: true,
				InC: outC, OutC: outC, InH: oh, InW: ow, K: 3, Stride: 1, Pad: 1,
			})
			if stride != 1 || c != outC {
				a.Specs = append(a.Specs, LayerSpec{
					Name: blockName + ".shortcut", Kind: KindConv, Residual: true, ShortcutOf: blockName,
					InC: c, OutC: outC, InH: h, InW: w, K: 1, Stride: stride, Pad: 0,
				})
			}
			c, h, w = outC, oh, ow
		}
	}
	a.Specs = append(a.Specs, LayerSpec{
		Name: "gap", Kind: KindGlobalAvgPool,
		InC: c, OutC: c, InH: h, InW: w, K: h, Stride: 1,
	})
	a.Specs = append(a.Specs, LayerSpec{
		Name: "fc", Kind: KindFC, InC: c, OutC: a.Classes, InH: 1, InW: 1,
	})
	return a
}

// ResNet18Arch returns the ResNet-18 geometry (2,2,2,2 basic blocks;
// 17 CONV + 1 FC, matching the paper's 17/18).
func ResNet18Arch() *Arch { return resNetArch("ResNet-18", [4]int{2, 2, 2, 2}) }

// ResNet34Arch returns the ResNet-34 geometry (3,4,6,3 basic blocks;
// 33 CONV + 1 FC, matching the paper's 33/34).
func ResNet34Arch() *Arch { return resNetArch("ResNet-34", [4]int{3, 4, 6, 3}) }

// Archs returns the three evaluated architectures in the paper's order.
func Archs() []*Arch {
	return []*Arch{VGG16Arch(), ResNet18Arch(), ResNet34Arch()}
}

// ArchByName resolves one of "vgg16", "resnet18", "resnet34" (case
// matters; these are CLI tokens).
func ArchByName(name string) (*Arch, error) {
	switch name {
	case "vgg16":
		return VGG16Arch(), nil
	case "resnet18":
		return ResNet18Arch(), nil
	case "resnet34":
		return ResNet34Arch(), nil
	default:
		return nil, fmt.Errorf("models: unknown architecture %q (want vgg16, resnet18 or resnet34)", name)
	}
}

// Scale returns a copy of a with every channel count multiplied by mult
// (minimum 4 channels) and, optionally, the input resized to inHW. FC
// widths scale in proportion. Scaling preserves topology, so ℓ1-ranking
// semantics and encryption-ratio behaviour carry over while making
// pure-Go training tractable (see DESIGN.md substitution table).
func (a *Arch) Scale(mult float64, inHW int) *Arch {
	if mult <= 0 {
		panic("models: non-positive width multiplier")
	}
	scaleC := func(c int) int {
		if c == a.InC {
			return c // never scale the image channels
		}
		v := int(float64(c)*mult + 0.5)
		if v < 4 {
			v = 4
		}
		return v
	}
	if inHW <= 0 {
		inHW = a.InH
	}
	out := &Arch{Name: a.Name, InC: a.InC, InH: inHW, InW: inHW, Classes: a.Classes}
	c, h, w := out.InC, out.InH, out.InW
	// Track dims ourselves: scaling rounds channel counts, so recompute
	// every spec's input from the running shape.
	branch := map[string][3]int{}
	for _, s := range a.Specs {
		ns := s
		switch s.Kind {
		case KindConv:
			if s.ShortcutOf != "" {
				in := branch[s.ShortcutOf]
				ns.InC, ns.InH, ns.InW = in[0], in[1], in[2]
			} else {
				if s.Residual {
					bn := blockOf(s.Name)
					if _, seen := branch[bn]; !seen {
						branch[bn] = [3]int{c, h, w}
					}
				}
				ns.InC, ns.InH, ns.InW = c, h, w
			}
			ns.OutC = scaleC(s.OutC)
			if s.ShortcutOf == "" {
				c, h, w = ns.OutC, ns.OutH(), ns.OutW()
			}
		case KindPool:
			ns.InC, ns.OutC, ns.InH, ns.InW = c, c, h, w
			h, w = ns.OutH(), ns.OutW()
		case KindGlobalAvgPool:
			ns.InC, ns.OutC, ns.InH, ns.InW, ns.K = c, c, h, w, h
			h, w = 1, 1
		case KindFC:
			ns.InC = c * h * w
			if s.OutC == a.Classes {
				ns.OutC = s.OutC
			} else {
				ns.OutC = scaleC(s.OutC)
			}
			c, h, w = ns.OutC, 1, 1
		}
		out.Specs = append(out.Specs, ns)
	}
	return out
}
