package models

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"seal/internal/nn"
)

// Checkpoint format: a minimal, versioned binary container for a model's
// learnable state (weights, biases, batch-norm statistics). The format
// is self-describing enough to reject mismatched architectures but
// deliberately carries no architecture definition — construct the model
// from its Arch first, then Load.
//
//	magic   "SEALCKPT"  (8 bytes)
//	version uint32      (currently 1)
//	params  uint32      number of tensors
//	repeat: nameLen uint32, name, size uint32, float32 data (LE)

const (
	ckptMagic   = "SEALCKPT"
	ckptVersion = 1
)

// Save writes the model's learnable state to w.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ckptMagic); err != nil {
		return err
	}
	tensors := m.stateTensors()
	if err := binary.Write(bw, binary.LittleEndian, uint32(ckptVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(tensors))); err != nil {
		return err
	}
	for _, t := range tensors {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(t.name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(t.name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(t.data))); err != nil {
			return err
		}
		buf := make([]byte, 4)
		for _, v := range t.data {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load restores learnable state saved by Save into m. The model must
// have the identical architecture: every tensor name and size must
// match.
func (m *Model) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("models: reading checkpoint magic: %w", err)
	}
	if string(magic) != ckptMagic {
		return fmt.Errorf("models: not a SEAL checkpoint (magic %q)", magic)
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != ckptVersion {
		return fmt.Errorf("models: unsupported checkpoint version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	tensors := m.stateTensors()
	if int(count) != len(tensors) {
		return fmt.Errorf("models: checkpoint has %d tensors, model %d", count, len(tensors))
	}
	byName := map[string][]float32{}
	for _, t := range tensors {
		if _, dup := byName[t.name]; dup {
			return fmt.Errorf("models: duplicate state tensor %s", t.name)
		}
		byName[t.name] = t.data
	}
	buf := make([]byte, 4)
	for i := uint32(0); i < count; i++ {
		var nameLen uint32
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		if nameLen > 4096 {
			return fmt.Errorf("models: implausible tensor name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		dst, ok := byName[string(name)]
		if !ok {
			return fmt.Errorf("models: checkpoint tensor %q not in model", name)
		}
		var size uint32
		if err := binary.Read(br, binary.LittleEndian, &size); err != nil {
			return err
		}
		if int(size) != len(dst) {
			return fmt.Errorf("models: tensor %q has %d values, model wants %d", name, size, len(dst))
		}
		for j := range dst {
			if _, err := io.ReadFull(br, buf); err != nil {
				return err
			}
			dst[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf))
		}
		delete(byName, string(name))
	}
	return nil
}

type namedTensor struct {
	name string
	data []float32
}

// stateTensors enumerates every persistent tensor with a stable name:
// learnable parameters plus batch-norm running statistics.
func (m *Model) stateTensors() []namedTensor {
	var out []namedTensor
	for _, p := range m.Params() {
		out = append(out, namedTensor{name: p.Name, data: p.W.Data})
	}
	i := 0
	nn.WalkModules(m.Net, func(mod nn.Module) {
		if bn, ok := mod.(*nn.BatchNorm2D); ok {
			out = append(out,
				namedTensor{name: fmt.Sprintf("%s#running_mean/%d", bn.Name, i), data: bn.RunningMean.Data},
				namedTensor{name: fmt.Sprintf("%s#running_var/%d", bn.Name, i), data: bn.RunningVar.Data},
			)
			i++
		}
	})
	return out
}
