package models

import (
	"testing"

	"seal/internal/prng"
	"seal/internal/tensor"
)

func TestMLPArchValidates(t *testing.T) {
	a := MLPArch("mlp", 64, []int{128, 64}, 10)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(a.FCSpecs()); got != 3 {
		t.Fatalf("FC layers = %d, want 3", got)
	}
	if a.WeightLayerCount() != 3 {
		t.Fatalf("weight layers = %d", a.WeightLayerCount())
	}
	if a.TotalWeights() != 64*128+128*64+64*10 {
		t.Fatalf("total weights = %d", a.TotalWeights())
	}
}

func TestMLPBuildAndForward(t *testing.T) {
	a := MLPArch("mlp", 32, []int{48}, 5)
	m, err := Build(a, prng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(3, 32, 1, 1)
	for i := range x.Data {
		x.Data[i] = float32(prng.New(2).NormFloat64())
	}
	out := m.Forward(x, false)
	if out.Dim(0) != 3 || out.Dim(1) != 5 {
		t.Fatalf("logits shape %v", out.Shape)
	}
}

func TestMLPPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad dims accepted")
		}
	}()
	MLPArch("bad", 0, nil, 10)
}

func TestRNNUnrolledArch(t *testing.T) {
	a := RNNUnrolledArch("rnn", 32, 64, 3, 10)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 steps × 2 matrices + classifier = 7 FC layers
	if got := a.WeightLayerCount(); got != 7 {
		t.Fatalf("weight layers = %d, want 7", got)
	}
	m, err := Build(a, prng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 32, 1, 1)
	out := m.Forward(x, false)
	if out.Dim(1) != 10 {
		t.Fatalf("logits shape %v", out.Shape)
	}
}

func TestRNNPanicsOnBadSteps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad steps accepted")
		}
	}()
	RNNUnrolledArch("bad", 8, 8, 0, 2)
}
