package models

import (
	"fmt"

	"seal/internal/nn"
	"seal/internal/prng"
	"seal/internal/tensor"
)

// WeightLayer is one CONV or FC layer of a built model, pairing the
// geometry spec with the live nn layer holding the weights. SEAL's
// criticality analysis iterates these in order.
type WeightLayer struct {
	Name string
	Spec LayerSpec
	Conv *nn.Conv2D // non-nil for CONV layers
	FC   *nn.Linear // non-nil for FC layers
}

// KernelMatrix returns the layer's weights as the paper's 2-D kernel
// matrix view (rows = output neurons, columns grouped by input channel).
func (w *WeightLayer) KernelMatrix() *tensor.Tensor {
	if w.Conv != nil {
		return w.Conv.KernelMatrix()
	}
	return w.FC.Weight.W
}

// InChannels returns n_x, the number of kernel rows in the paper's
// terminology (input channels for CONV, input features for FC).
func (w *WeightLayer) InChannels() int {
	if w.Conv != nil {
		return w.Spec.InC
	}
	return w.Spec.InC
}

// Model is a trainable network built from an Arch.
type Model struct {
	Arch         *Arch
	Net          *nn.Sequential
	WeightLayers []*WeightLayer
}

// Build constructs a trainable model from the architecture. BatchNorm
// follows every convolution (the standard recipe for training VGG and
// ResNet variants on CIFAR from scratch) and ReLU follows every
// normalization; neither affects the geometry the timing experiments
// use.
func Build(a *Arch, r *prng.Source) (*Model, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	m := &Model{Arch: a, Net: nn.NewSequential(a.Name)}
	flattened := false
	i := 0
	fcSeen, fcTotal := 0, len(a.FCSpecs())
	for i < len(a.Specs) {
		s := a.Specs[i]
		switch {
		case s.Kind == KindConv && s.Residual:
			// consume conv1, conv2 and an optional shortcut
			if i+1 >= len(a.Specs) || a.Specs[i+1].Kind != KindConv || !a.Specs[i+1].Residual {
				return nil, fmt.Errorf("models: residual conv %s not followed by conv2", s.Name)
			}
			c2 := a.Specs[i+1]
			var sc *LayerSpec
			next := i + 2
			if next < len(a.Specs) && a.Specs[next].ShortcutOf != "" {
				sc = &a.Specs[next]
				next++
			}
			blk := &nn.ResidualBlock{
				Name:  blockOf(s.Name),
				Conv1: nn.NewConv2D(s.Name, r, s.InC, s.OutC, s.K, s.Stride, s.Pad, s.InH, s.InW),
				BN1:   nn.NewBatchNorm2D(s.Name+".bn", s.OutC),
				Relu1: nn.NewReLU(s.Name + ".relu"),
			}
			blk.Conv2 = nn.NewConv2D(c2.Name, r, c2.InC, c2.OutC, c2.K, c2.Stride, c2.Pad, c2.InH, c2.InW)
			blk.BN2 = nn.NewBatchNorm2D(c2.Name+".bn", c2.OutC)
			m.addWeightLayer(s, blk.Conv1, nil)
			m.addWeightLayer(c2, blk.Conv2, nil)
			if sc != nil {
				blk.Shortcut = nn.NewConv2D(sc.Name, r, sc.InC, sc.OutC, sc.K, sc.Stride, sc.Pad, sc.InH, sc.InW)
				blk.ShortcutBN = nn.NewBatchNorm2D(sc.Name+".bn", sc.OutC)
				m.addWeightLayer(*sc, blk.Shortcut, nil)
			}
			m.Net.Add(blk)
			i = next
		case s.Kind == KindConv:
			conv := nn.NewConv2D(s.Name, r, s.InC, s.OutC, s.K, s.Stride, s.Pad, s.InH, s.InW)
			m.Net.Add(conv)
			m.Net.Add(nn.NewBatchNorm2D(s.Name+".bn", s.OutC))
			m.Net.Add(nn.NewReLU(s.Name + ".relu"))
			m.addWeightLayer(s, conv, nil)
			i++
		case s.Kind == KindPool:
			m.Net.Add(nn.NewMaxPool2D(s.Name, s.K, s.Stride))
			i++
		case s.Kind == KindGlobalAvgPool:
			m.Net.Add(nn.NewAvgPool2D(s.Name, s.K, s.K))
			i++
		case s.Kind == KindFC:
			if !flattened {
				m.Net.Add(nn.NewFlatten("flatten"))
				flattened = true
			}
			fc := nn.NewLinear(s.Name, r, s.InC, s.OutC)
			m.Net.Add(fc)
			fcSeen++
			if fcSeen < fcTotal {
				m.Net.Add(nn.NewReLU(s.Name + ".relu"))
			}
			m.addWeightLayer(s, nil, fc)
			i++
		default:
			return nil, fmt.Errorf("models: unhandled spec %+v", s)
		}
	}
	return m, nil
}

func (m *Model) addWeightLayer(s LayerSpec, conv *nn.Conv2D, fc *nn.Linear) {
	m.WeightLayers = append(m.WeightLayers, &WeightLayer{Name: s.Name, Spec: s, Conv: conv, FC: fc})
}

// Params returns all learnable parameters.
func (m *Model) Params() []*nn.Param { return m.Net.Params() }

// Forward runs the network on a batch [N, C, H, W] and returns logits.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return m.Net.Forward(x, train)
}

// Backward propagates the loss gradient.
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor { return m.Net.Backward(grad) }

// Clone builds a structurally identical model and copies every weight,
// mask and batch-norm running statistic into it. Used to materialize the
// paper's white-box substitute model (an exact copy of the victim).
func (m *Model) Clone(r *prng.Source) (*Model, error) {
	c, err := Build(m.Arch, r)
	if err != nil {
		return nil, err
	}
	if err := c.CopyFrom(m); err != nil {
		return nil, err
	}
	return c, nil
}

// CopyFrom copies parameters and batch-norm running statistics from src,
// which must have an identical architecture.
func (m *Model) CopyFrom(src *Model) error {
	sp, dp := src.Params(), m.Params()
	if len(sp) != len(dp) {
		return fmt.Errorf("models: CopyFrom parameter count mismatch: %d vs %d", len(sp), len(dp))
	}
	for i := range sp {
		if !tensor.SameShape(sp[i].W, dp[i].W) {
			return fmt.Errorf("models: CopyFrom shape mismatch at %s", sp[i].Name)
		}
		copy(dp[i].W.Data, sp[i].W.Data)
		if sp[i].Mask != nil {
			dp[i].Mask = sp[i].Mask.Clone()
		} else {
			dp[i].Mask = nil
		}
	}
	var srcBNs, dstBNs []*nn.BatchNorm2D
	nn.WalkModules(src.Net, func(mod nn.Module) {
		if bn, ok := mod.(*nn.BatchNorm2D); ok {
			srcBNs = append(srcBNs, bn)
		}
	})
	nn.WalkModules(m.Net, func(mod nn.Module) {
		if bn, ok := mod.(*nn.BatchNorm2D); ok {
			dstBNs = append(dstBNs, bn)
		}
	})
	if len(srcBNs) != len(dstBNs) {
		return fmt.Errorf("models: CopyFrom BN count mismatch: %d vs %d", len(srcBNs), len(dstBNs))
	}
	for i := range srcBNs {
		copy(dstBNs[i].RunningMean.Data, srcBNs[i].RunningMean.Data)
		copy(dstBNs[i].RunningVar.Data, srcBNs[i].RunningVar.Data)
	}
	return nil
}
