package models

import (
	"bytes"
	"testing"

	"seal/internal/prng"
	"seal/internal/tensor"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := prng.New(51)
	src, err := Build(ResNet18Arch().Scale(0.125, 0), r)
	if err != nil {
		t.Fatal(err)
	}
	// touch BN running stats so they carry state
	x := tensor.New(2, 3, 32, 32)
	for i := range x.Data {
		x.Data[i] = float32(r.NormFloat64())
	}
	src.Forward(x, true)

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := Build(ResNet18Arch().Scale(0.125, 0), prng.New(999))
	if err != nil {
		t.Fatal(err)
	}
	if tensor.Equal(src.Forward(x, false), dst.Forward(x, false), 1e-6) {
		t.Fatal("fresh model accidentally identical — test is vacuous")
	}
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	a := src.Forward(x, false)
	b := dst.Forward(x, false)
	if !tensor.Equal(a, b, 0) {
		t.Fatal("loaded model differs from saved model")
	}
}

func TestLoadRejectsWrongArch(t *testing.T) {
	src, err := Build(VGG16Arch().Scale(0.125, 0), prng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := Build(ResNet18Arch().Scale(0.125, 0), prng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Load(&buf); err == nil {
		t.Fatal("cross-architecture load accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	m, err := Build(ResNet18Arch().Scale(0.125, 0), prng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(bytes.NewReader([]byte("not a checkpoint at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := m.Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	src, err := Build(ResNet18Arch().Scale(0.125, 0), prng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()/2]
	dst, err := Build(ResNet18Arch().Scale(0.125, 0), prng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Load(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}
