// Package models provides the three CNN architectures evaluated in the
// paper — VGG-16, ResNet-18 and ResNet-34 (CIFAR-10 variants) — in two
// forms: pure geometry descriptors (LayerSpec/Arch) consumed by the
// timing simulator's trace generator, and trainable networks built on the
// nn substrate for the security experiments.
//
// The geometry descriptors always use the full published channel counts,
// so DRAM traffic volumes in the timing experiments are exact. Trainable
// networks accept a width multiplier so that pure-Go training stays
// tractable; the topology (layer count, kernel shapes, stride pattern)
// is unchanged.
package models

import "fmt"

// LayerKind discriminates the entries of an architecture description.
type LayerKind int

// Layer kinds appearing in Arch.Specs.
const (
	KindConv LayerKind = iota
	KindPool
	KindFC
	KindGlobalAvgPool
)

// String implements fmt.Stringer.
func (k LayerKind) String() string {
	switch k {
	case KindConv:
		return "CONV"
	case KindPool:
		return "POOL"
	case KindFC:
		return "FC"
	case KindGlobalAvgPool:
		return "GAP"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// LayerSpec is the geometry of one layer: enough to compute weight and
// feature-map footprints and the memory traffic of its computation.
type LayerSpec struct {
	Name   string
	Kind   LayerKind
	InC    int // input channels (or input features for FC)
	OutC   int // output channels (or output features for FC)
	InH    int // input spatial height (1 for FC)
	InW    int // input spatial width (1 for FC)
	K      int // kernel size (square; pool window for pools; 0 for FC)
	Stride int
	Pad    int

	// Residual marks conv layers that belong to a residual block, and
	// ShortcutOf names the block for 1×1 projection shortcuts. Purely
	// informational; the trace generator treats them as ordinary convs.
	Residual   bool
	ShortcutOf string
}

// OutH returns the layer's output height.
func (s LayerSpec) OutH() int {
	switch s.Kind {
	case KindFC:
		return 1
	case KindGlobalAvgPool:
		return 1
	default:
		return (s.InH+2*s.Pad-s.K)/s.Stride + 1
	}
}

// OutW returns the layer's output width.
func (s LayerSpec) OutW() int {
	switch s.Kind {
	case KindFC:
		return 1
	case KindGlobalAvgPool:
		return 1
	default:
		return (s.InW+2*s.Pad-s.K)/s.Stride + 1
	}
}

// WeightCount returns the number of weight parameters (0 for pools).
func (s LayerSpec) WeightCount() int {
	switch s.Kind {
	case KindConv:
		return s.OutC * s.InC * s.K * s.K
	case KindFC:
		return s.OutC * s.InC
	default:
		return 0
	}
}

// InputElems returns the number of input feature-map elements.
func (s LayerSpec) InputElems() int { return s.InC * s.InH * s.InW }

// OutputElems returns the number of output feature-map elements.
func (s LayerSpec) OutputElems() int { return s.OutC * s.OutH() * s.OutW() }

// MACs returns the multiply-accumulate count of the layer (0 for pools,
// window-sum count for pooling is reported as OutputElems*K*K compares).
func (s LayerSpec) MACs() int64 {
	switch s.Kind {
	case KindConv:
		return int64(s.OutC) * int64(s.OutH()) * int64(s.OutW()) * int64(s.InC) * int64(s.K) * int64(s.K)
	case KindFC:
		return int64(s.OutC) * int64(s.InC)
	default:
		return 0
	}
}

// Arch is an ordered architecture description.
type Arch struct {
	Name    string
	InC     int // network input channels
	InH     int
	InW     int
	Classes int
	Specs   []LayerSpec
}

// ConvSpecs returns the CONV layers in order.
func (a *Arch) ConvSpecs() []LayerSpec {
	var out []LayerSpec
	for _, s := range a.Specs {
		if s.Kind == KindConv {
			out = append(out, s)
		}
	}
	return out
}

// FCSpecs returns the FC layers in order.
func (a *Arch) FCSpecs() []LayerSpec {
	var out []LayerSpec
	for _, s := range a.Specs {
		if s.Kind == KindFC {
			out = append(out, s)
		}
	}
	return out
}

// WeightLayerCount returns the number of CONV plus FC layers.
func (a *Arch) WeightLayerCount() int {
	n := 0
	for _, s := range a.Specs {
		if s.Kind == KindConv || s.Kind == KindFC {
			n++
		}
	}
	return n
}

// TotalWeights returns the total parameter count of all weight layers.
func (a *Arch) TotalWeights() int64 {
	var n int64
	for _, s := range a.Specs {
		n += int64(s.WeightCount())
	}
	return n
}

// Validate checks internal consistency: each layer's input must match
// the previous layer's output.
func (a *Arch) Validate() error {
	c, h, w := a.InC, a.InH, a.InW
	branch := map[string][3]int{} // block name -> input dims for shortcut convs
	for i, s := range a.Specs {
		if s.Kind == KindFC {
			if s.InC != c*h*w && s.InC != c {
				return fmt.Errorf("models: %s layer %d (%s) input %d, want %d (flattened) or %d", a.Name, i, s.Name, s.InC, c*h*w, c)
			}
			c, h, w = s.OutC, 1, 1
			continue
		}
		if s.ShortcutOf != "" {
			in, ok := branch[s.ShortcutOf]
			if !ok {
				return fmt.Errorf("models: %s layer %d (%s) shortcut of unknown block %q", a.Name, i, s.Name, s.ShortcutOf)
			}
			if s.InC != in[0] || s.InH != in[1] || s.InW != in[2] {
				return fmt.Errorf("models: %s shortcut %s input %dx%dx%d, want %dx%dx%d",
					a.Name, s.Name, s.InC, s.InH, s.InW, in[0], in[1], in[2])
			}
			// shortcut output merges with the main path; do not advance
			continue
		}
		if s.Residual && s.Name != "" {
			// remember block entry dims for a possible projection shortcut
			if _, seen := branch[blockOf(s.Name)]; !seen {
				branch[blockOf(s.Name)] = [3]int{c, h, w}
			}
		}
		if s.InC != c || s.InH != h || s.InW != w {
			return fmt.Errorf("models: %s layer %d (%s) input %dx%dx%d, want %dx%dx%d",
				a.Name, i, s.Name, s.InC, s.InH, s.InW, c, h, w)
		}
		if (s.Kind == KindPool || s.Kind == KindGlobalAvgPool) && s.OutC != s.InC {
			return fmt.Errorf("models: %s pool %s must have OutC == InC", a.Name, s.Name)
		}
		if s.OutH() < 1 || s.OutW() < 1 {
			return fmt.Errorf("models: %s layer %s collapses to %dx%d output (input too small)", a.Name, s.Name, s.OutH(), s.OutW())
		}
		c, h, w = s.OutC, s.OutH(), s.OutW()
	}
	return nil
}

// blockOf extracts "layerX.blockY" from a conv name like
// "layerX.blockY.conv1".
func blockOf(name string) string {
	// names are structured; trim the final ".convN" suffix
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return name
}
