package models

import "fmt"

// MLPArch returns an all-FC architecture: input features → hidden widths
// → classes. The paper notes the SE scheme "can also be applied to
// full-connected (FC) layers since each FC layer also includes a kernel
// matrix like the CONV layer", and hence to networks composed of FC
// layers (§III-A, final paragraph); this constructor exercises that
// path. The input is modeled as a 1-channel "image" of inDim×1 so the
// dataflow machinery is unchanged.
func MLPArch(name string, inDim int, hidden []int, classes int) *Arch {
	if inDim <= 0 || classes <= 0 {
		panic(fmt.Sprintf("models: bad MLP dims in=%d classes=%d", inDim, classes))
	}
	a := &Arch{Name: name, InC: inDim, InH: 1, InW: 1, Classes: classes}
	prev := inDim
	for i, h := range hidden {
		if h <= 0 {
			panic(fmt.Sprintf("models: bad MLP hidden width %d", h))
		}
		a.Specs = append(a.Specs, LayerSpec{
			Name: fmt.Sprintf("fc%d", i+1), Kind: KindFC,
			InC: prev, OutC: h, InH: 1, InW: 1,
		})
		prev = h
	}
	a.Specs = append(a.Specs, LayerSpec{
		Name: fmt.Sprintf("fc%d", len(hidden)+1), Kind: KindFC,
		InC: prev, OutC: classes, InH: 1, InW: 1,
	})
	return a
}

// RNNUnrolledArch returns the FC view of an unrolled recurrent network:
// steps repetitions of an input-to-hidden + hidden-to-hidden pair
// followed by a classifier. Recurrent weight reuse across time steps
// means the same kernel matrix is fetched once per step — exactly the
// streaming pattern the timing model captures — while the SE analysis
// treats each unrolled matrix like any FC layer, as §III-A prescribes
// for RNNs.
func RNNUnrolledArch(name string, inDim, hiddenDim, steps, classes int) *Arch {
	if steps <= 0 {
		panic("models: non-positive RNN steps")
	}
	a := &Arch{Name: name, InC: inDim, InH: 1, InW: 1, Classes: classes}
	prev := inDim
	for s := 0; s < steps; s++ {
		a.Specs = append(a.Specs, LayerSpec{
			Name: fmt.Sprintf("step%d.ih", s+1), Kind: KindFC,
			InC: prev, OutC: hiddenDim, InH: 1, InW: 1,
		})
		a.Specs = append(a.Specs, LayerSpec{
			Name: fmt.Sprintf("step%d.hh", s+1), Kind: KindFC,
			InC: hiddenDim, OutC: hiddenDim, InH: 1, InW: 1,
		})
		prev = hiddenDim
	}
	a.Specs = append(a.Specs, LayerSpec{
		Name: "classifier", Kind: KindFC,
		InC: hiddenDim, OutC: classes, InH: 1, InW: 1,
	})
	return a
}
