package nn

import (
	"fmt"
	"math"

	"seal/internal/tensor"
)

// MaxPool2D is a max-pooling layer over NCHW batches.
type MaxPool2D struct {
	Name        string
	K, Stride   int
	argmax      []int32 // flat input index per output element; nil after eval
	argmaxBuf   []int32
	inShape     []int
	outElements int
	out         *tensor.Tensor
	dx          *tensor.Tensor
}

// NewMaxPool2D constructs a max-pooling layer with a square window.
func NewMaxPool2D(name string, k, stride int) *MaxPool2D {
	if k <= 0 || stride <= 0 {
		panic(fmt.Sprintf("nn: bad pool parameters k=%d stride=%d", k, stride))
	}
	return &MaxPool2D{Name: name, K: k, Stride: stride}
}

// LayerName implements Named.
func (p *MaxPool2D) LayerName() string { return p.Name }

// Params implements Module.
func (p *MaxPool2D) Params() []*Param { return nil }

// Forward implements Module for x of shape [N, C, H, W].
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shapeCheck(p.Name, x, 4)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-p.K)/p.Stride + 1
	ow := (w-p.K)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s window %d/%d too large for input %v", p.Name, p.K, p.Stride, x.Shape))
	}
	// The output, argmax table, and backward dx are reusable
	// workspaces: every output element is written unconditionally and
	// dx is zeroed before the scatter, so warm calls allocate nothing.
	if p.out == nil || p.out.Size() != n*c*oh*ow {
		p.out = tensor.New(n, c, oh, ow)
	} else {
		p.out.Shape = append(p.out.Shape[:0], n, c, oh, ow)
	}
	out := p.out
	p.inShape = append(p.inShape[:0], x.Shape...)
	p.outElements = out.Size()
	if train {
		if cap(p.argmaxBuf) < out.Size() {
			p.argmaxBuf = make([]int32, out.Size())
		}
		p.argmax = p.argmaxBuf[:out.Size()]
	} else {
		p.argmax = nil
	}
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := x.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bestIdx := 0
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride + ky
						rowBase := iy * w
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride + kx
							if v := plane[rowBase+ix]; v > best {
								best = v
								bestIdx = rowBase + ix
							}
						}
					}
					out.Data[oi] = best
					if p.argmax != nil {
						p.argmax[oi] = int32((i*c+ch)*h*w + bestIdx)
					}
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Module, routing each output gradient to the input
// position that won the max.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil {
		panic("nn: MaxPool2D.Backward called without a train-mode Forward")
	}
	if grad.Size() != p.outElements {
		panic("nn: MaxPool2D.Backward gradient size mismatch")
	}
	dx := ensureShaped(p.dx, p.inShape)
	p.dx = dx
	dx.Zero()
	for i, g := range grad.Data {
		dx.Data[p.argmax[i]] += g
	}
	return dx
}

// AvgPool2D is an average-pooling layer; with K equal to the spatial size
// it acts as the global average pool used by ResNets.
type AvgPool2D struct {
	Name      string
	K, Stride int
	inShape   []int
	out       *tensor.Tensor
	dx        *tensor.Tensor
}

// NewAvgPool2D constructs an average-pooling layer with a square window.
func NewAvgPool2D(name string, k, stride int) *AvgPool2D {
	if k <= 0 || stride <= 0 {
		panic(fmt.Sprintf("nn: bad pool parameters k=%d stride=%d", k, stride))
	}
	return &AvgPool2D{Name: name, K: k, Stride: stride}
}

// LayerName implements Named.
func (p *AvgPool2D) LayerName() string { return p.Name }

// Params implements Module.
func (p *AvgPool2D) Params() []*Param { return nil }

// Forward implements Module for x of shape [N, C, H, W].
func (p *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shapeCheck(p.Name, x, 4)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-p.K)/p.Stride + 1
	ow := (w-p.K)/p.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: %s window %d/%d too large for input %v", p.Name, p.K, p.Stride, x.Shape))
	}
	p.inShape = append(p.inShape[:0], x.Shape...)
	if p.out == nil || p.out.Size() != n*c*oh*ow {
		p.out = tensor.New(n, c, oh, ow)
	} else {
		p.out.Shape = append(p.out.Shape[:0], n, c, oh, ow)
	}
	out := p.out
	inv := 1 / float32(p.K*p.K)
	oi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := x.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float32
					for ky := 0; ky < p.K; ky++ {
						rowBase := (oy*p.Stride + ky) * w
						for kx := 0; kx < p.K; kx++ {
							s += plane[rowBase+ox*p.Stride+kx]
						}
					}
					out.Data[oi] = s * inv
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Module, spreading each output gradient uniformly
// over its window.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.inShape == nil {
		panic("nn: AvgPool2D.Backward called without Forward")
	}
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	oh := (h-p.K)/p.Stride + 1
	ow := (w-p.K)/p.Stride + 1
	dx := ensureShaped(p.dx, p.inShape)
	p.dx = dx
	dx.Zero()
	inv := 1 / float32(p.K*p.K)
	gi := 0
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			plane := dx.Data[(i*c+ch)*h*w : (i*c+ch+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := grad.Data[gi] * inv
					gi++
					for ky := 0; ky < p.K; ky++ {
						rowBase := (oy*p.Stride + ky) * w
						for kx := 0; kx < p.K; kx++ {
							plane[rowBase+ox*p.Stride+kx] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// Flatten reshapes [N, C, H, W] activations to [N, C*H*W]. Both
// directions return reusable view headers over the argument's storage
// (no data copy, no per-call header allocation); each view is valid
// until the layer's next call in that direction, like every other
// workspace in the training path.
type Flatten struct {
	Name    string
	inShape []int
	fwdView tensor.Tensor
	bwdView tensor.Tensor
}

// NewFlatten constructs a flattening adapter.
func NewFlatten(name string) *Flatten { return &Flatten{Name: name} }

// LayerName implements Named.
func (f *Flatten) LayerName() string { return f.Name }

// Params implements Module.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Module.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append(f.inShape[:0], x.Shape...)
	n := x.Dim(0)
	f.fwdView.Shape = append(f.fwdView.Shape[:0], n, x.Size()/n)
	f.fwdView.Data = x.Data
	return &f.fwdView
}

// Backward implements Module.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	f.bwdView.Shape = append(f.bwdView.Shape[:0], f.inShape...)
	f.bwdView.Data = grad.Data
	return &f.bwdView
}
