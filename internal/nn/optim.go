package nn

import "seal/internal/parallel"

// stepper is the per-parameter update kernel an optimizer exposes to
// stepParams. stepOne must touch only p and optimizer state that was
// fully materialized before the fan-out (see the lazy-state pre-pass in
// SGD.Step / Adam.Step), so concurrent calls on distinct parameters
// are race-free.
type stepper interface {
	stepOne(p *Param)
}

// stepParams applies o.stepOne to every parameter and clears its
// gradient. Parameters are independent — no update reads another
// parameter's state — so the fan-out across the worker pool is
// deterministic for free: each element's arithmetic is identical
// regardless of which worker runs it or in what order. Workers()==1
// takes the plain loop (an interface call, no closure), keeping the
// warm train step allocation-free on a single-core host.
func stepParams(o stepper, params []*Param) {
	if parallel.Workers() == 1 || len(params) == 1 {
		for _, p := range params {
			o.stepOne(p)
			p.ZeroGrad()
		}
		return
	}
	parallel.For(len(params), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			o.stepOne(params[i])
			params[i].ZeroGrad()
		}
	})
}

// nextRun returns the next maximal run [lo, hi) of unmasked (nonzero)
// mask entries at or after i; lo == len(mask) when none remain. The
// masked optimizer paths in SGD and Adam share it to hoist the
// per-element mask branch out of the update loops: each run is handed
// to the dense range kernel, which performs exactly the arithmetic the
// historical per-element loop did on the unmasked elements.
func nextRun(mask []float32, i int) (lo, hi int) {
	for i < len(mask) && mask[i] == 0 {
		i++
	}
	lo = i
	for i < len(mask) && mask[i] != 0 {
		i++
	}
	return lo, i
}
