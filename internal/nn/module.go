// Package nn implements the neural-network substrate for the SEAL
// reproduction: convolution, pooling, fully-connected, batch-norm and
// activation layers with full backpropagation, an SGD optimizer with
// per-element freeze masks (required for SEAL substitute-model
// fine-tuning, paper §III-B1), and softmax cross-entropy loss.
//
// Data layout is NCHW: convolutional activations are [N, C, H, W] and
// fully-connected activations are [N, D]. Channel-major layout matters
// here because SEAL encrypts feature maps at channel granularity.
package nn

import (
	"fmt"
	"math"

	"seal/internal/prng"
	"seal/internal/tensor"
)

// Param is one learnable tensor together with its gradient accumulator
// and an optional freeze mask.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
	// Mask, when non-nil, has the same size as W; entries equal to 0 mark
	// frozen weights whose gradient is discarded by the optimizer. SEAL's
	// adversary uses this to keep leaked (unencrypted) weights fixed while
	// fine-tuning the unknown ones (paper §III-B1).
	Mask *tensor.Tensor
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// FreezeAll installs a mask freezing every element.
func (p *Param) FreezeAll() {
	p.Mask = tensor.New(p.W.Shape...)
}

// Unfreeze removes any freeze mask.
func (p *Param) Unfreeze() { p.Mask = nil }

// Module is a differentiable network component. Forward consumes the
// layer input and caches whatever Backward needs; Backward consumes
// dL/d(output) and returns dL/d(input), accumulating parameter gradients.
type Module interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Named is implemented by modules that carry a human-readable layer name.
type Named interface{ LayerName() string }

// heFanIn initializes w with He-normal values for the given fan-in, the
// initialization the paper's adversary uses for unknown weights ([7]).
func heFanIn(r *prng.Source, w *tensor.Tensor, fanIn int) {
	std := float64(0)
	if fanIn > 0 {
		std = math.Sqrt(2.0 / float64(fanIn))
	}
	for i := range w.Data {
		w.Data[i] = float32(r.NormFloat64() * std)
	}
}

// shapeCheck panics with a descriptive message when an activation does
// not match the expected shape prefix.
func shapeCheck(what string, x *tensor.Tensor, rank int) {
	if x.Rank() != rank {
		panic(fmt.Sprintf("nn: %s expected rank-%d input, got %v", what, rank, x.Shape))
	}
}

// ensureShaped readies a reusable workspace tensor for the given shape:
// if ws has capacity for the element count its storage is re-sliced to
// exactly that length and its shape header refreshed in place, otherwise
// a fresh tensor is allocated (first call, or growth past the widest
// batch seen). Shrinking reuses the same storage, so a serving engine
// that mixes batch sizes under one ceiling stays allocation-free.
// Contents are NOT cleared — callers either overwrite every element or
// zero explicitly, which is what keeps a reused buffer indistinguishable
// from a fresh allocation (DESIGN §11/§13 ownership rules).
func ensureShaped(ws *tensor.Tensor, shape []int) *tensor.Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if ws == nil || cap(ws.Data) < n {
		return tensor.New(shape...)
	}
	ws.Data = ws.Data[:n]
	ws.Shape = append(ws.Shape[:0], shape...)
	return ws
}

// growFloats returns buf if it already holds at least n floats, or a
// fresh slice otherwise. Contents are unspecified.
func growFloats(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}
