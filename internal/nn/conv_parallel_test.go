package nn

import (
	"testing"

	"seal/internal/parallel"
	"seal/internal/prng"
	"seal/internal/tensor"
)

// convPass runs one train-mode forward/backward through a fresh-grad
// Conv2D and returns every tensor the pass produced or accumulated.
// out and dx are cloned because the layer reuses those buffers across
// calls — without the copy, the serial-vs-parallel comparison below
// would compare a workspace against itself.
func convPass(c *Conv2D, x, upstream *tensor.Tensor) (out, dx, gw, gb *tensor.Tensor) {
	c.Weight.ZeroGrad()
	c.Bias.ZeroGrad()
	out = c.Forward(x, true).Clone()
	dx = c.Backward(upstream).Clone()
	return out, dx, c.Weight.Grad.Clone(), c.Bias.Grad.Clone()
}

// TestConv2DParallelDeterministic verifies that batch-item parallelism
// leaves forward activations, input gradients, and the index-ordered
// weight/bias gradient reductions bit-identical to the serial path.
func TestConv2DParallelDeterministic(t *testing.T) {
	r := prng.New(3)
	const n, inC, outC, hw = 5, 4, 6, 11
	c := NewConv2D("conv", r, inC, outC, 3, 1, 1, hw, hw)
	x := tensor.New(n, inC, hw, hw)
	for i := range x.Data {
		x.Data[i] = float32(r.NormFloat64())
	}
	upstream := tensor.New(n, outC, hw, hw)
	for i := range upstream.Data {
		upstream.Data[i] = float32(r.NormFloat64())
	}

	prev := parallel.SetWorkers(1)
	sOut, sDx, sGw, sGb := convPass(c, x, upstream)
	parallel.SetWorkers(8)
	pOut, pDx, pGw, pGb := convPass(c, x, upstream)
	parallel.SetWorkers(prev)

	for _, pair := range []struct {
		name        string
		serial, par *tensor.Tensor
	}{
		{"forward", sOut, pOut},
		{"dx", sDx, pDx},
		{"gradW", sGw, pGw},
		{"gradB", sGb, pGb},
	} {
		if !tensor.SameShape(pair.serial, pair.par) {
			t.Fatalf("%s: shape %v vs %v", pair.name, pair.serial.Shape, pair.par.Shape)
		}
		for i := range pair.serial.Data {
			if pair.serial.Data[i] != pair.par.Data[i] {
				t.Fatalf("%s: element %d differs: serial %v parallel %v",
					pair.name, i, pair.serial.Data[i], pair.par.Data[i])
			}
		}
	}
}
