package nn

import (
	"seal/internal/parallel"
	"seal/internal/tensor"
)

// Int8 eval-mode forward paths. EnableInt8 quantizes a layer's weights
// once — per-output-channel symmetric scales, packed into the dual-lane
// GEMM layout — and switches its inference Forward to int8 arithmetic:
// activations are quantized per item (conv) or per row (FC) with a
// dynamic symmetric scale, multiplied in int8 with exact int32
// accumulation, and dequantized back to float32 before bias/activation
// so the rest of the network is untouched. Per-item activation scales
// keep every sample's logits independent of its batchmates — required
// by the serving gateway's dynamic batching. Training always runs the
// float path; EnableInt8 snapshots the weights at call time.
//
// The quantize → GEMM → dequantize op sequence here is shared, helper
// for helper, with the secure engine's int8 streaming mode: int32
// accumulation is exact, and the float ops (quantize, dequantize, bias)
// run in the same order, so engine logits are bit-identical to this
// path's.

// int8Weights is a layer's frozen quantized weight state.
type int8Weights struct {
	wq     *tensor.Int8Mat // kernel matrix, [Out, K]
	scales []float32       // per-output-row quantization scales
	packed []int64         // PackInt8BInto layout of wq
}

func quantizeWeights(wMat *tensor.Tensor) *int8Weights {
	rows, cols := wMat.Shape[0], wMat.Shape[1]
	q := &int8Weights{
		wq:     tensor.NewInt8Mat(rows, cols),
		scales: make([]float32, rows),
		packed: make([]int64, tensor.PackedBLen(rows, cols)),
	}
	tensor.QuantizeRowsInto(q.wq, q.scales, wMat)
	tensor.PackInt8BInto(q.packed, q.wq)
	return q
}

// convInt8WS is the per-chunk scratch arena of the quantized conv
// inference path; like convWorkspace, each concurrent chunk owns one.
type convInt8WS struct {
	qimg   []int8          // quantized input item [InC*InH*InW]
	cols   *tensor.Int8Mat // transposed im2col [OutH*OutW, InC*KH*KW]
	acc    []int32         // GEMM accumulators [OutH*OutW, OutC]
	outMat *tensor.Tensor  // dequantized staging [OutC, OutH*OutW]
	gemm   *tensor.Int8GEMMWS
}

func (c *Conv2D) newInt8WS() *convInt8WS {
	g := c.Geom
	kk := g.InC * g.KH * g.KW
	ncols := g.OutH() * g.OutW()
	return &convInt8WS{
		qimg:   make([]int8, g.InC*g.InH*g.InW),
		cols:   tensor.NewInt8Mat(ncols, kk),
		acc:    make([]int32, ncols*c.OutC),
		outMat: tensor.New(c.OutC, ncols),
		gemm:   tensor.NewInt8GEMMWS(ncols, kk, 0),
	}
}

// EnableInt8 freezes the current weights into the quantized eval path.
// Subsequent inference Forwards run int8; training is unaffected.
func (c *Conv2D) EnableInt8() {
	c.q8 = quantizeWeights(c.kernelMat())
}

// Int8Enabled reports whether the quantized eval path is active.
func (c *Conv2D) Int8Enabled() bool { return c.q8 != nil }

// Int8Weights exposes the frozen quantized kernel matrix and its
// per-output-channel scales (for layout construction and tests).
func (c *Conv2D) Int8Weights() (*tensor.Int8Mat, []float32) {
	if c.q8 == nil {
		return nil, nil
	}
	return c.q8.wq, c.q8.scales
}

// forwardInferInt8 mirrors forwardInfer with the quantized kernel:
// same chunking, same workspace discipline, zero allocations warm.
func (c *Conv2D) forwardInferInt8(x *tensor.Tensor, n int) *tensor.Tensor {
	c.trained = false
	out := c.infOut
	if out == nil || out.Shape[0] != n {
		out = tensor.New(n, c.OutC, c.Geom.OutH(), c.Geom.OutW())
		c.infOut = out
	}
	nchunks := parallel.Workers()
	if nchunks > n {
		nchunks = n
	}
	for len(c.int8WS) < nchunks {
		c.int8WS = append(c.int8WS, c.newInt8WS())
	}
	if nchunks == 1 {
		c.inferRangeInt8(out, x, 0, n, c.int8WS[0])
		return out
	}
	grain := (n + nchunks - 1) / nchunks
	parallel.For(n, grain, func(lo, hi int) {
		c.inferRangeInt8(out, x, lo, hi, c.int8WS[lo/grain])
	})
	return out
}

// inferRangeInt8 runs quantized conv inference for batch items
// [lo, hi): quantize the item with its own dynamic scale, expand to the
// transposed im2col layout, one int8 GEMM against the prepacked
// weights, dequantize-transpose into the float staging matrix, then the
// float bias adds in the float path's exact order.
func (c *Conv2D) inferRangeInt8(out, x *tensor.Tensor, lo, hi int, ws *convInt8WS) {
	g := c.Geom
	q := c.q8
	oh, ow := g.OutH(), g.OutW()
	perIn := g.InC * g.InH * g.InW
	perOut := c.OutC * oh * ow
	for i := lo; i < hi; i++ {
		in := x.Data[i*perIn : (i+1)*perIn]
		s := tensor.QuantScale(tensor.MaxAbsSlice(in))
		tensor.QuantizeSliceInto(ws.qimg, in, s)
		tensor.Im2ColTransInt8Into(ws.cols, ws.qimg, g)
		tensor.MatMulInt8TransBPrepackedAcc(ws.acc, ws.cols, 0, q.packed, q.wq, false, ws.gemm)
		tensor.DequantizeTransposeInto(ws.outMat, ws.acc, q.scales, s)
		copy(out.Data[i*perOut:(i+1)*perOut], ws.outMat.Data)
		if c.UseBias {
			for oc := 0; oc < c.OutC; oc++ {
				b := c.Bias.W.Data[oc]
				base := (i*c.OutC + oc) * oh * ow
				for j := 0; j < oh*ow; j++ {
					out.Data[base+j] += b
				}
			}
		}
	}
}

// EnableInt8 freezes the current weights into the quantized eval path.
func (l *Linear) EnableInt8() {
	l.q8 = quantizeWeights(l.Weight.W)
}

// Int8Enabled reports whether the quantized eval path is active.
func (l *Linear) Int8Enabled() bool { return l.q8 != nil }

// Int8Weights exposes the frozen quantized weight matrix and its
// per-output scales.
func (l *Linear) Int8Weights() (*tensor.Int8Mat, []float32) {
	if l.q8 == nil {
		return nil, nil
	}
	return l.q8.wq, l.q8.scales
}

// forwardInt8 is the quantized FC forward: per-row dynamic activation
// scales (logits independent of batchmates), one int8 GEMM, dequantize
// with rowScale·colScale, float bias adds in the float path's order.
func (l *Linear) forwardInt8(x *tensor.Tensor, n int) *tensor.Tensor {
	out := l.out
	if out == nil || out.Shape[0] != n {
		out = tensor.New(n, l.Out)
		l.out = out
	}
	ws := l.int8WS
	if ws == nil {
		ws = &linearInt8WS{gemm: tensor.NewInt8GEMMWS(n, l.In, 0)}
		l.int8WS = ws
	}
	if ws.qx == nil || ws.qx.Rows < n {
		ws.qx = tensor.NewInt8Mat(n, l.In)
		ws.rowScales = make([]float32, n)
		ws.acc = make([]int32, n*l.Out)
	}
	qx := ws.qx
	if qx.Rows != n {
		qx = &tensor.Int8Mat{Rows: n, Cols: l.In, Data: ws.qx.Data[:n*l.In]}
	}
	for i := 0; i < n; i++ {
		row := x.Data[i*l.In : (i+1)*l.In]
		s := tensor.QuantScale(tensor.MaxAbsSlice(row))
		ws.rowScales[i] = s
		tensor.QuantizeSliceInto(qx.Data[i*l.In:(i+1)*l.In], row, s)
	}
	tensor.MatMulInt8TransBPrepackedAcc(ws.acc[:n*l.Out], qx, 0, l.q8.packed, l.q8.wq, false, ws.gemm)
	tensor.DequantizeInto(out, ws.acc, ws.rowScales, l.q8.scales)
	for i := 0; i < n; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.Bias.W.Data[j]
		}
	}
	return out
}

// linearInt8WS is the reusable scratch of the quantized FC path.
type linearInt8WS struct {
	qx        *tensor.Int8Mat
	rowScales []float32
	acc       []int32
	gemm      *tensor.Int8GEMMWS
}

// EnableInt8 switches every Conv2D and Linear under root to the
// quantized eval path (training is unaffected). It must be called after
// the weights reach their final values; call it again to re-freeze.
func EnableInt8(root Module) {
	WalkModules(root, func(m Module) {
		switch l := m.(type) {
		case *Conv2D:
			l.EnableInt8()
		case *Linear:
			l.EnableInt8()
		}
	})
}

// Int8Enabled reports whether every weight layer under root has the
// quantized eval path active (false for a network with no weight
// layers).
func Int8Enabled(root Module) bool {
	any, all := false, true
	WalkModules(root, func(m Module) {
		switch l := m.(type) {
		case *Conv2D:
			any = true
			all = all && l.Int8Enabled()
		case *Linear:
			any = true
			all = all && l.Int8Enabled()
		}
	})
	return any && all
}
