package nn

import (
	"math"
	"testing"

	"seal/internal/parallel"
	"seal/internal/prng"
	"seal/internal/tensor"
)

// int8ConvTolerance bounds the per-element error of the quantized conv
// forward against the float path: each of the K = InC·KH·KW products
// carries at most half an activation step plus half a weight step of
// rounding, so the accumulated error is ≤ K·(sa·|w|max + sw·|a|max)/2
// to first order. The helper derives the bound from the layer's actual
// scales rather than hard-coding a magic constant.
func int8ConvBound(c *Conv2D, x *tensor.Tensor) float64 {
	_, scales := c.Int8Weights()
	var sw float64
	for _, s := range scales {
		if float64(s) > sw {
			sw = float64(s)
		}
	}
	sa := float64(tensor.QuantScale(tensor.MaxAbsSlice(x.Data)))
	wMax := float64(c.Weight.W.MaxAbs())
	aMax := float64(tensor.MaxAbsSlice(x.Data))
	k := float64(c.Geom.InC * c.Geom.KH * c.Geom.KW)
	return k * (sa*wMax + sw*aMax + sa*sw*float64(tensor.QMaxInt8)) / 2
}

// TestConvInt8CloseToFloat verifies the quantized conv forward stays
// within the derived rounding bound of the float reference.
func TestConvInt8CloseToFloat(t *testing.T) {
	r := prng.New(41)
	c := NewConv2D("conv", r, 8, 16, 3, 1, 1, 12, 12)
	x := randomBatch(r, 3, 8, 12, 12)
	want := c.Forward(x, false).Clone()
	c.EnableInt8()
	got := c.Forward(x, false)
	bound := int8ConvBound(c, x)
	for i := range want.Data {
		if d := math.Abs(float64(want.Data[i] - got.Data[i])); d > bound {
			t.Fatalf("element %d differs by %g (bound %g): float %v int8 %v", i, d, bound, want.Data[i], got.Data[i])
		}
	}
}

// TestLinearInt8CloseToFloat is the FC analogue, and additionally pins
// batch independence: a sample's int8 logits must not change when it is
// batched with different neighbors (per-row activation scales).
func TestLinearInt8CloseToFloat(t *testing.T) {
	r := prng.New(42)
	l := NewLinear("fc", r, 64, 10)
	x := randomBatch(r, 4, 64)
	want := l.Forward(x, false).Clone()
	l.EnableInt8()
	got := l.Forward(x, false).Clone()
	var sw float64
	_, scales := l.Int8Weights()
	for _, s := range scales {
		if float64(s) > sw {
			sw = float64(s)
		}
	}
	for i := range want.Data {
		row := i / l.Out
		xr := x.Data[row*l.In : (row+1)*l.In]
		sa := float64(tensor.QuantScale(tensor.MaxAbsSlice(xr)))
		bound := float64(l.In) * (sa*float64(l.Weight.W.MaxAbs()) + sw*float64(tensor.MaxAbsSlice(xr)) + sa*sw*float64(tensor.QMaxInt8)) / 2
		if d := math.Abs(float64(want.Data[i] - got.Data[i])); d > bound {
			t.Fatalf("element %d differs by %g (bound %g)", i, d, bound)
		}
	}

	// Batch independence: run row 2 alone and compare bitwise.
	solo := tensor.New(1, 64)
	copy(solo.Data, x.Data[2*64:3*64])
	soloOut := l.Forward(solo, false)
	for j := 0; j < l.Out; j++ {
		if soloOut.Data[j] != got.Data[2*l.Out+j] {
			t.Fatalf("logit %d depends on batchmates: solo %v batched %v", j, soloOut.Data[j], got.Data[2*l.Out+j])
		}
	}
}

// TestConvInt8ParallelDeterministic verifies int8 conv inference is
// bit-identical across worker counts (int32 accumulation is exact, and
// per-item float ops are item-local).
func TestConvInt8ParallelDeterministic(t *testing.T) {
	r := prng.New(43)
	c := NewConv2D("conv", r, 4, 8, 3, 1, 1, 11, 11)
	c.EnableInt8()
	x := randomBatch(r, 5, 4, 11, 11)
	prev := parallel.SetWorkers(1)
	serial := c.Forward(x, false).Clone()
	parallel.SetWorkers(8)
	par := c.Forward(x, false)
	parallel.SetWorkers(prev)
	for i := range serial.Data {
		if serial.Data[i] != par.Data[i] {
			t.Fatalf("element %d differs: serial %v parallel %v", i, serial.Data[i], par.Data[i])
		}
	}
}

// TestConvInt8ZeroAllocs pins the quantized inference path to zero
// heap allocations per warm call, like the float path.
func TestConvInt8ZeroAllocs(t *testing.T) {
	r := prng.New(44)
	c := NewConv2D("conv", r, 8, 16, 3, 1, 1, 16, 16)
	c.EnableInt8()
	x := randomBatch(r, 2, 8, 16, 16)
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	c.Forward(x, false)
	allocs := testing.AllocsPerRun(20, func() {
		c.Forward(x, false)
	})
	if allocs != 0 {
		t.Fatalf("int8 conv Forward allocates %.1f objects/op, want 0", allocs)
	}
}

// TestLinearInt8ZeroAllocs pins the quantized FC path.
func TestLinearInt8ZeroAllocs(t *testing.T) {
	r := prng.New(45)
	l := NewLinear("fc", r, 128, 10)
	l.EnableInt8()
	x := randomBatch(r, 4, 128)
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	l.Forward(x, false)
	allocs := testing.AllocsPerRun(20, func() {
		l.Forward(x, false)
	})
	if allocs != 0 {
		t.Fatalf("int8 linear Forward allocates %.1f objects/op, want 0", allocs)
	}
}

// TestEnableInt8Walk checks the module-tree walk flips every weight
// layer, and that training still runs the float path afterwards.
func TestEnableInt8Walk(t *testing.T) {
	r := prng.New(46)
	net := &Sequential{Name: "net"}
	net.Add(NewConv2D("c1", r, 3, 8, 3, 1, 1, 8, 8))
	net.Add(NewReLU("r1"))
	net.Add(NewFlatten("f"))
	net.Add(NewLinear("fc", r, 8*8*8, 10))
	if Int8Enabled(net) {
		t.Fatal("Int8Enabled true before EnableInt8")
	}
	EnableInt8(net)
	if !Int8Enabled(net) {
		t.Fatal("Int8Enabled false after EnableInt8")
	}
	x := randomBatch(r, 2, 3, 8, 8)
	out := net.Forward(x, true) // train mode must still be float
	if out == nil {
		t.Fatal("train forward returned nil")
	}
}
