package nn

import "seal/internal/tensor"

// ReLU is the rectified-linear activation, applied element-wise.
type ReLU struct {
	Name string
	mask []bool // true where input was positive
}

// NewReLU constructs a ReLU activation.
func NewReLU(name string) *ReLU { return &ReLU{Name: name} }

// LayerName implements Named.
func (r *ReLU) LayerName() string { return r.Name }

// Params implements Module.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Module.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	if train {
		r.mask = make([]bool, x.Size())
	} else {
		r.mask = nil
	}
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			if r.mask != nil {
				r.mask[i] = true
			}
		}
	}
	return out
}

// Backward implements Module.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward called without a train-mode Forward")
	}
	dx := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		if r.mask[i] {
			dx.Data[i] = g
		}
	}
	return dx
}
