package nn

import "seal/internal/tensor"

// ReLU is the rectified-linear activation, applied element-wise.
type ReLU struct {
	Name    string
	mask    []bool // true where input was positive; nil after eval Forward
	maskBuf []bool
	out     *tensor.Tensor
	dx      *tensor.Tensor
}

// NewReLU constructs a ReLU activation.
func NewReLU(name string) *ReLU { return &ReLU{Name: name} }

// LayerName implements Named.
func (r *ReLU) LayerName() string { return r.Name }

// Params implements Module.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Module. The output (and the backprop mask) are
// reusable workspaces: every element is written unconditionally, so a
// warm call allocates nothing and matches a fresh buffer bit-for-bit.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := ensureShaped(r.out, x.Shape)
	r.out = out
	if train {
		if cap(r.maskBuf) < x.Size() {
			r.maskBuf = make([]bool, x.Size())
		}
		r.mask = r.maskBuf[:x.Size()]
		for i, v := range x.Data {
			pos := v > 0
			r.mask[i] = pos
			if pos {
				out.Data[i] = v
			} else {
				out.Data[i] = 0
			}
		}
	} else {
		r.mask = nil
		for i, v := range x.Data {
			if v > 0 {
				out.Data[i] = v
			} else {
				out.Data[i] = 0
			}
		}
	}
	return out
}

// Backward implements Module.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward called without a train-mode Forward")
	}
	dx := ensureShaped(r.dx, grad.Shape)
	r.dx = dx
	for i, g := range grad.Data {
		if r.mask[i] {
			dx.Data[i] = g
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}
