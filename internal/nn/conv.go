package nn

import (
	"fmt"

	"seal/internal/parallel"
	"seal/internal/prng"
	"seal/internal/tensor"
)

// Conv2D is a 2-D convolution layer over NCHW batches. The weight tensor
// has shape [OutC, InC, KH, KW]; viewed as the paper's kernel matrix it
// has n_y = OutC kernel columns and n_x = InC kernel rows, and kernel row
// i (the slice W[:, i, :, :]) touches only input channel i — the
// structural fact SEAL's smart encryption exploits (paper Figure 2).
type Conv2D struct {
	Name    string
	Geom    tensor.ConvGeom
	OutC    int
	Weight  *Param
	Bias    *Param
	UseBias bool

	// cached forward state for backprop
	cols    []*tensor.Tensor // per-sample im2col matrices, reused across steps
	inShape []int
	trained bool // last Forward was train-mode (cols are valid)

	// inference workspaces: one scratch arena per worker chunk plus a
	// reusable output tensor, so eval-mode Forward performs no heap
	// allocations after the first call. See DESIGN.md §11 for the
	// ownership rule: the returned tensor is owned by the layer and
	// valid only until its next inference Forward.
	wMat   *tensor.Tensor // cached KernelMatrix view of Weight.W
	infWS  []*convWorkspace
	infOut *tensor.Tensor

	// quantized eval path (EnableInt8): frozen int8 weights and the
	// per-chunk scratch arenas of the int8 inference kernel.
	q8     *int8Weights
	int8WS []*convInt8WS

	// training workspaces (DESIGN §13): the same ownership rule as the
	// inference path — trainOut is valid until the next train Forward,
	// the Backward result until the next Backward — makes the warm
	// train step allocation-free.
	trainOut *tensor.Tensor
	trainWS  []*convTrainWS
	bwdDx    *tensor.Tensor
	bwdGws   []*tensor.Tensor // per-item dW partials, reused across steps
	bwdBias  []float32        // per-item bias-gradient partials
	bwdWS    []*convBwdWS
	wT       *tensor.Tensor // Weightᵀ staging [InC*KH*KW, OutC], refreshed per Backward
	gwMat    *tensor.Tensor // cached kernel-matrix view of Weight.Grad
}

// convWorkspace is the per-chunk scratch arena of the inference path:
// an im2col matrix, a GEMM output staging matrix, a GEMM packing panel,
// and a reusable tensor header aimed at the current batch item. Each
// concurrent chunk owns exactly one workspace, so writes stay disjoint.
type convWorkspace struct {
	img    *tensor.Tensor // header re-pointed at each item's input slice
	cols   *tensor.Tensor // [InC*KH*KW, OutH*OutW]
	outMat *tensor.Tensor // [OutC, OutH*OutW]
	panel  []float32      // MatMulIntoWS packing scratch
}

func (c *Conv2D) newWorkspace() *convWorkspace {
	g := c.Geom
	kk := g.InC * g.KH * g.KW
	ncols := g.OutH() * g.OutW()
	return &convWorkspace{
		img:    &tensor.Tensor{Shape: []int{g.InC, g.InH, g.InW}},
		cols:   tensor.New(kk, ncols),
		outMat: tensor.New(c.OutC, ncols),
		panel:  make([]float32, tensor.MatMulPanelLen(kk)),
	}
}

// convTrainWS is the per-chunk scratch of the training forward pass:
// headers re-pointed at the current item's input and output slices plus
// a GEMM packing panel. The im2col matrices themselves live in c.cols
// (per item, reused across steps — Backward needs them after the
// barrier).
type convTrainWS struct {
	img    *tensor.Tensor // header re-pointed at each item's input slice
	outMat *tensor.Tensor // header re-pointed at each item's output slice
	panel  []float32      // MatMulIntoWS packing scratch
}

func (c *Conv2D) newTrainWS() *convTrainWS {
	g := c.Geom
	kk := g.InC * g.KH * g.KW
	return &convTrainWS{
		img:    &tensor.Tensor{Shape: []int{g.InC, g.InH, g.InW}},
		outMat: &tensor.Tensor{Shape: []int{c.OutC, g.OutH() * g.OutW()}},
		panel:  make([]float32, tensor.MatMulPanelLen(kk)),
	}
}

// convBwdWS is the per-chunk scratch of the backward pass: a gradient
// header, the dCols staging matrix, an image header aimed at the item's
// dx slice, and one packing panel sized for both backward GEMMs
// (k = OutH·OutW for the dW product, k = OutC for the dCols product).
type convBwdWS struct {
	gMat  *tensor.Tensor // header re-pointed at each item's grad slice
	dCols *tensor.Tensor // [InC*KH*KW, OutH*OutW]
	img   *tensor.Tensor // header re-pointed at each item's dx slice
	panel []float32
}

func (c *Conv2D) newBwdWS() *convBwdWS {
	g := c.Geom
	kk := g.InC * g.KH * g.KW
	ncols := g.OutH() * g.OutW()
	kmax := ncols
	if c.OutC > kmax {
		kmax = c.OutC
	}
	return &convBwdWS{
		gMat:  &tensor.Tensor{Shape: []int{c.OutC, ncols}},
		dCols: tensor.New(kk, ncols),
		img:   &tensor.Tensor{Shape: []int{g.InC, g.InH, g.InW}},
		panel: make([]float32, tensor.MatMulPanelLen(kmax)),
	}
}

// kernelMat returns the cached kernel-matrix view, refreshed only if
// the weight storage was replaced (e.g. by deserialization).
func (c *Conv2D) kernelMat() *tensor.Tensor {
	if c.wMat == nil || &c.wMat.Data[0] != &c.Weight.W.Data[0] {
		c.wMat = c.KernelMatrix()
	}
	return c.wMat
}

// NewConv2D constructs a convolution layer with He initialization.
func NewConv2D(name string, r *prng.Source, inC, outC, k, stride, pad, inH, inW int) *Conv2D {
	g := tensor.ConvGeom{InC: inC, InH: inH, InW: inW, KH: k, KW: k, Stride: stride, Pad: pad}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	c := &Conv2D{
		Name:    name,
		Geom:    g,
		OutC:    outC,
		Weight:  newParam(name+".weight", outC, inC, k, k),
		Bias:    newParam(name+".bias", outC),
		UseBias: true,
	}
	heFanIn(r, c.Weight.W, inC*k*k)
	return c
}

// LayerName implements Named.
func (c *Conv2D) LayerName() string { return c.Name }

// Params implements Module.
func (c *Conv2D) Params() []*Param {
	if c.UseBias {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}

// KernelMatrix returns the weights viewed as the paper's 2-D kernel
// matrix of shape [OutC, InC*KH*KW]. It shares storage with the weights.
func (c *Conv2D) KernelMatrix() *tensor.Tensor {
	return c.Weight.W.Reshape(c.OutC, c.Geom.InC*c.Geom.KH*c.Geom.KW)
}

// Forward implements Module for a batch x of shape [N, InC, H, W].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shapeCheck(c.Name, x, 4)
	n := x.Dim(0)
	g := c.Geom
	if x.Dim(1) != g.InC || x.Dim(2) != g.InH || x.Dim(3) != g.InW {
		panic(fmt.Sprintf("nn: %s input %v does not match geometry %+v", c.Name, x.Shape, g))
	}
	oh, ow := g.OutH(), g.OutW()
	if !train {
		if c.q8 != nil {
			return c.forwardInferInt8(x, n)
		}
		return c.forwardInfer(x, n)
	}
	// Training buffers follow the same ownership rule as the inference
	// path: out, the per-item im2col matrices in c.cols, and the
	// Backward buffers are all reused across steps, so the warm train
	// step performs no heap allocations (DESIGN §13).
	out := c.trainOut
	if out == nil || out.Shape[0] != n {
		out = tensor.New(n, c.OutC, oh, ow)
		c.trainOut = out
	}
	wMat := c.kernelMat()
	kk := g.InC * g.KH * g.KW
	if cap(c.cols) < n {
		c.cols = append(c.cols[:cap(c.cols)], make([]*tensor.Tensor, n-cap(c.cols))...)
	}
	c.cols = c.cols[:n]
	for i := range c.cols {
		if c.cols[i] == nil {
			c.cols[i] = tensor.New(kk, oh*ow)
		}
	}
	c.inShape = append(c.inShape[:0], x.Shape...)
	c.trained = true
	// Batch items are independent: each worker chunk owns its slice of
	// the output (and of c.cols) and carries a private scratch arena,
	// so items shard across the pool with no shared writes. Per-element
	// arithmetic matches the serial loop exactly, and Workers()==1
	// calls the range kernel directly (no closure, no allocation).
	nchunks := parallel.Workers()
	if nchunks > n {
		nchunks = n
	}
	for len(c.trainWS) < nchunks {
		c.trainWS = append(c.trainWS, c.newTrainWS())
	}
	if nchunks == 1 {
		c.trainRange(out, x, wMat, 0, n, c.trainWS[0])
		return out
	}
	grain := (n + nchunks - 1) / nchunks
	parallel.For(n, grain, func(lo, hi int) {
		c.trainRange(out, x, wMat, lo, hi, c.trainWS[lo/grain])
	})
	return out
}

// trainRange runs the training forward pass for batch items [lo, hi)
// with one scratch arena. The GEMM writes straight into the item's
// output slice through the re-pointed outMat header — bit-identical to
// the historical staging-matrix-plus-copy, since MatMulIntoWS fully
// overwrites its destination.
func (c *Conv2D) trainRange(out, x, wMat *tensor.Tensor, lo, hi int, ws *convTrainWS) {
	g := c.Geom
	oh, ow := g.OutH(), g.OutW()
	perIn := g.InC * g.InH * g.InW
	perOut := c.OutC * oh * ow
	for i := lo; i < hi; i++ {
		ws.img.Data = x.Data[i*perIn : (i+1)*perIn]
		tensor.Im2ColInto(c.cols[i], ws.img, g)
		ws.outMat.Data = out.Data[i*perOut : (i+1)*perOut]
		tensor.MatMulIntoWS(ws.outMat, wMat, c.cols[i], ws.panel)
		if c.UseBias {
			for oc := 0; oc < c.OutC; oc++ {
				b := c.Bias.W.Data[oc]
				base := (i*c.OutC + oc) * oh * ow
				for j := 0; j < oh*ow; j++ {
					out.Data[base+j] += b
				}
			}
		}
	}
}

// forwardInfer is the allocation-free inference path: batch items run
// through per-chunk reusable scratch arenas (im2col matrix, GEMM
// staging matrix, packing panel) instead of fresh allocations, and the
// output tensor itself is reused across calls while the batch size is
// stable. The per-element arithmetic is exactly the train path's —
// Im2ColInto zeroes-then-fills like a fresh Im2Col and MatMulIntoWS is
// MatMulInto with caller-owned scratch — so eval results are
// bit-identical to the allocating path. The returned tensor is owned by
// the layer: it is valid until c's next inference Forward, which every
// in-repo caller satisfies by consuming activations within the pass.
func (c *Conv2D) forwardInfer(x *tensor.Tensor, n int) *tensor.Tensor {
	c.trained = false // inference never caches backprop state
	wMat := c.kernelMat()
	out := c.infOut
	if out == nil || out.Shape[0] != n {
		out = tensor.New(n, c.OutC, c.Geom.OutH(), c.Geom.OutW())
		c.infOut = out
	}
	nchunks := parallel.Workers()
	if nchunks > n {
		nchunks = n
	}
	for len(c.infWS) < nchunks {
		c.infWS = append(c.infWS, c.newWorkspace())
	}
	if nchunks == 1 {
		c.inferRange(out, x, wMat, 0, n, c.infWS[0])
		return out
	}
	// Chunk index lo/grain is unique per chunk, so each concurrent
	// chunk gets a private workspace; outputs are disjoint by item.
	grain := (n + nchunks - 1) / nchunks
	parallel.For(n, grain, func(lo, hi int) {
		c.inferRange(out, x, wMat, lo, hi, c.infWS[lo/grain])
	})
	return out
}

func (c *Conv2D) inferRange(out, x, wMat *tensor.Tensor, lo, hi int, ws *convWorkspace) {
	g := c.Geom
	oh, ow := g.OutH(), g.OutW()
	perIn := g.InC * g.InH * g.InW
	perOut := c.OutC * oh * ow
	for i := lo; i < hi; i++ {
		ws.img.Data = x.Data[i*perIn : (i+1)*perIn]
		tensor.Im2ColInto(ws.cols, ws.img, g)
		tensor.MatMulIntoWS(ws.outMat, wMat, ws.cols, ws.panel)
		copy(out.Data[i*perOut:(i+1)*perOut], ws.outMat.Data)
		if c.UseBias {
			for oc := 0; oc < c.OutC; oc++ {
				b := c.Bias.W.Data[oc]
				base := (i*c.OutC + oc) * oh * ow
				for j := 0; j < oh*ow; j++ {
					out.Data[base+j] += b
				}
			}
		}
	}
}

// Backward implements Module. grad has shape [N, OutC, OutH, OutW].
// All scratch — dx, the per-item dW partials, the dCols staging
// matrices, the Wᵀ copy — is reused across steps, so a warm call
// performs no heap allocations; the returned dx is owned by the layer
// until its next Backward (DESIGN §13).
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if !c.trained {
		panic("nn: Conv2D.Backward called without a train-mode Forward")
	}
	n := grad.Dim(0)
	g := c.Geom
	kk := g.InC * g.KH * g.KW
	wMat := c.kernelMat()
	if c.gwMat == nil || &c.gwMat.Data[0] != &c.Weight.Grad.Data[0] {
		c.gwMat = c.Weight.Grad.Reshape(c.OutC, kk)
	}
	gradW := c.gwMat
	dx := c.bwdDx
	if dx == nil || dx.Size() != n*g.InC*g.InH*g.InW {
		dx = tensor.New(c.inShape...)
		c.bwdDx = dx
	} else {
		dx.Shape = append(dx.Shape[:0], c.inShape...)
	}
	// The dCols product needs Wᵀ; transposing the kernel matrix once
	// per Backward lets every item run the register-blocked MatMul
	// kernel, whose per-element accumulation order and zero-skip set
	// match the historical p-outer MatMulTransA exactly.
	if c.wT == nil {
		c.wT = tensor.New(kk, c.OutC)
	}
	tensor.TransposeInto(c.wT, wMat)
	// Weight and bias gradients are reductions across batch items, so
	// determinism requires two phases: workers compute per-item partials
	// into index-addressed slots (dx is written disjointly in the same
	// pass), and after the barrier the partials are folded in ascending
	// item order — the exact float32 accumulation order of the serial
	// loop.
	if cap(c.bwdGws) < n {
		c.bwdGws = append(c.bwdGws[:cap(c.bwdGws)], make([]*tensor.Tensor, n-cap(c.bwdGws))...)
	}
	c.bwdGws = c.bwdGws[:n]
	for i := range c.bwdGws {
		if c.bwdGws[i] == nil {
			c.bwdGws[i] = tensor.New(c.OutC, kk)
		}
	}
	if c.UseBias {
		c.bwdBias = growFloats(c.bwdBias, n*c.OutC)
	}
	nchunks := parallel.Workers()
	if nchunks > n {
		nchunks = n
	}
	for len(c.bwdWS) < nchunks {
		c.bwdWS = append(c.bwdWS, c.newBwdWS())
	}
	if nchunks == 1 {
		c.backwardRange(dx, grad, 0, n, c.bwdWS[0])
	} else {
		grain := (n + nchunks - 1) / nchunks
		parallel.For(n, grain, func(lo, hi int) {
			c.backwardRange(dx, grad, lo, hi, c.bwdWS[lo/grain])
		})
	}
	for i := 0; i < n; i++ {
		gradW.Add(c.bwdGws[i])
		if c.UseBias {
			for oc := 0; oc < c.OutC; oc++ {
				c.Bias.Grad.Data[oc] += c.bwdBias[i*c.OutC+oc]
			}
		}
	}
	return dx
}

// backwardRange computes the per-item backward products for batch
// items [lo, hi) with one scratch arena: dW partials into c.bwdGws,
// dCols = Wᵀ×gMat, and the input gradient scattered straight into the
// item's dx slice through the re-pointed img header (Col2ImInto zeroes
// the slice first, so the result matches a fresh allocation).
func (c *Conv2D) backwardRange(dx, grad *tensor.Tensor, lo, hi int, ws *convBwdWS) {
	g := c.Geom
	oh, ow := g.OutH(), g.OutW()
	perIn := g.InC * g.InH * g.InW
	perOut := c.OutC * oh * ow
	for i := lo; i < hi; i++ {
		ws.gMat.Data = grad.Data[i*perOut : (i+1)*perOut]
		// dW_i = gMat × colsᵀ
		tensor.MatMulTransBIntoWS(c.bwdGws[i], ws.gMat, c.cols[i], ws.panel)
		// dCols = Wᵀ × gMat ; dX_i = col2im(dCols)
		tensor.MatMulIntoWS(ws.dCols, c.wT, ws.gMat, ws.panel)
		ws.img.Data = dx.Data[i*perIn : (i+1)*perIn]
		tensor.Col2ImInto(ws.img, ws.dCols, g)
		if c.UseBias {
			for oc := 0; oc < c.OutC; oc++ {
				base := (i*c.OutC + oc) * oh * ow
				var s float32
				for j := 0; j < oh*ow; j++ {
					s += grad.Data[base+j]
				}
				c.bwdBias[i*c.OutC+oc] = s
			}
		}
	}
}

// Linear is a fully-connected layer: y = xW¹ + b with W of shape
// [Out, In]. Like Conv2D, column j of x (input feature j) interacts only
// with weight column j, so the SE scheme applies to FC layers as well
// (paper §III-A, final paragraph).
type Linear struct {
	Name   string
	In     int
	Out    int
	Weight *Param // [Out, In]
	Bias   *Param // [Out]

	x *tensor.Tensor // cached input [N, In]

	// reusable workspaces (DESIGN §13): the returned output / input
	// gradient are owned by the layer until its next Forward / Backward.
	out      *tensor.Tensor // [N, Out]
	dx       *tensor.Tensor // [N, In]
	gw       *tensor.Tensor // dW staging [Out, In]
	fwdPanel []float32      // MatMulPanelLen(In)
	dxPanel  []float32      // MatMulPanelLen(Out)
	aScratch []float32      // MatMulTransAScratchLen(N, Out), grown with N

	// quantized eval path (EnableInt8)
	q8     *int8Weights
	int8WS *linearInt8WS
}

// NewLinear constructs a fully-connected layer with He initialization.
func NewLinear(name string, r *prng.Source, in, out int) *Linear {
	l := &Linear{
		Name:   name,
		In:     in,
		Out:    out,
		Weight: newParam(name+".weight", out, in),
		Bias:   newParam(name+".bias", out),
	}
	heFanIn(r, l.Weight.W, in)
	return l
}

// LayerName implements Named.
func (l *Linear) LayerName() string { return l.Name }

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Forward implements Module for x of shape [N, In].
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shapeCheck(l.Name, x, 2)
	if x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: %s input width %d, want %d", l.Name, x.Dim(1), l.In))
	}
	if train {
		l.x = x
	} else {
		l.x = nil
	}
	n := x.Dim(0)
	if !train && l.q8 != nil {
		return l.forwardInt8(x, n)
	}
	out := l.out
	if out == nil || out.Shape[0] != n {
		out = tensor.New(n, l.Out)
		l.out = out
	}
	if l.fwdPanel == nil {
		l.fwdPanel = make([]float32, tensor.MatMulPanelLen(l.In))
	}
	tensor.MatMulTransBIntoWS(out, x, l.Weight.W, l.fwdPanel) // [N,In]×[Out,In]ᵀ = [N,Out]
	for i := 0; i < n; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.Bias.W.Data[j]
		}
	}
	return out
}

// Backward implements Module. grad has shape [N, Out].
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic("nn: Linear.Backward called without a train-mode Forward")
	}
	n := grad.Dim(0)
	// dW = gradᵀ × x  → [Out, In]
	if l.gw == nil {
		l.gw = tensor.New(l.Out, l.In)
	}
	l.aScratch = growFloats(l.aScratch, tensor.MatMulTransAScratchLen(n, l.Out))
	tensor.MatMulTransAIntoWS(l.gw, grad, l.x, l.aScratch)
	l.Weight.Grad.Add(l.gw)
	for i := 0; i < n; i++ {
		row := grad.Data[i*l.Out : (i+1)*l.Out]
		for j, v := range row {
			l.Bias.Grad.Data[j] += v
		}
	}
	// dx = grad × W → [N, In]
	if l.dx == nil || l.dx.Shape[0] != n {
		l.dx = tensor.New(n, l.In)
	}
	if l.dxPanel == nil {
		l.dxPanel = make([]float32, tensor.MatMulPanelLen(l.Out))
	}
	tensor.MatMulIntoWS(l.dx, grad, l.Weight.W, l.dxPanel)
	return l.dx
}
