package nn

import (
	"fmt"

	"seal/internal/parallel"
	"seal/internal/prng"
	"seal/internal/tensor"
)

// Conv2D is a 2-D convolution layer over NCHW batches. The weight tensor
// has shape [OutC, InC, KH, KW]; viewed as the paper's kernel matrix it
// has n_y = OutC kernel columns and n_x = InC kernel rows, and kernel row
// i (the slice W[:, i, :, :]) touches only input channel i — the
// structural fact SEAL's smart encryption exploits (paper Figure 2).
type Conv2D struct {
	Name    string
	Geom    tensor.ConvGeom
	OutC    int
	Weight  *Param
	Bias    *Param
	UseBias bool

	// cached forward state for backprop
	cols    []*tensor.Tensor // per-sample im2col matrices
	inShape []int

	// inference workspaces: one scratch arena per worker chunk plus a
	// reusable output tensor, so eval-mode Forward performs no heap
	// allocations after the first call. See DESIGN.md §11 for the
	// ownership rule: the returned tensor is owned by the layer and
	// valid only until its next inference Forward.
	wMat   *tensor.Tensor // cached KernelMatrix view of Weight.W
	infWS  []*convWorkspace
	infOut *tensor.Tensor
}

// convWorkspace is the per-chunk scratch arena of the inference path:
// an im2col matrix, a GEMM output staging matrix, a GEMM packing panel,
// and a reusable tensor header aimed at the current batch item. Each
// concurrent chunk owns exactly one workspace, so writes stay disjoint.
type convWorkspace struct {
	img    *tensor.Tensor // header re-pointed at each item's input slice
	cols   *tensor.Tensor // [InC*KH*KW, OutH*OutW]
	outMat *tensor.Tensor // [OutC, OutH*OutW]
	panel  []float32      // MatMulIntoWS packing scratch
}

func (c *Conv2D) newWorkspace() *convWorkspace {
	g := c.Geom
	kk := g.InC * g.KH * g.KW
	ncols := g.OutH() * g.OutW()
	return &convWorkspace{
		img:    &tensor.Tensor{Shape: []int{g.InC, g.InH, g.InW}},
		cols:   tensor.New(kk, ncols),
		outMat: tensor.New(c.OutC, ncols),
		panel:  make([]float32, tensor.MatMulPanelLen(kk)),
	}
}

// kernelMat returns the cached kernel-matrix view, refreshed only if
// the weight storage was replaced (e.g. by deserialization).
func (c *Conv2D) kernelMat() *tensor.Tensor {
	if c.wMat == nil || &c.wMat.Data[0] != &c.Weight.W.Data[0] {
		c.wMat = c.KernelMatrix()
	}
	return c.wMat
}

// NewConv2D constructs a convolution layer with He initialization.
func NewConv2D(name string, r *prng.Source, inC, outC, k, stride, pad, inH, inW int) *Conv2D {
	g := tensor.ConvGeom{InC: inC, InH: inH, InW: inW, KH: k, KW: k, Stride: stride, Pad: pad}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	c := &Conv2D{
		Name:    name,
		Geom:    g,
		OutC:    outC,
		Weight:  newParam(name+".weight", outC, inC, k, k),
		Bias:    newParam(name+".bias", outC),
		UseBias: true,
	}
	heFanIn(r, c.Weight.W, inC*k*k)
	return c
}

// LayerName implements Named.
func (c *Conv2D) LayerName() string { return c.Name }

// Params implements Module.
func (c *Conv2D) Params() []*Param {
	if c.UseBias {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}

// KernelMatrix returns the weights viewed as the paper's 2-D kernel
// matrix of shape [OutC, InC*KH*KW]. It shares storage with the weights.
func (c *Conv2D) KernelMatrix() *tensor.Tensor {
	return c.Weight.W.Reshape(c.OutC, c.Geom.InC*c.Geom.KH*c.Geom.KW)
}

// Forward implements Module for a batch x of shape [N, InC, H, W].
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shapeCheck(c.Name, x, 4)
	n := x.Dim(0)
	g := c.Geom
	if x.Dim(1) != g.InC || x.Dim(2) != g.InH || x.Dim(3) != g.InW {
		panic(fmt.Sprintf("nn: %s input %v does not match geometry %+v", c.Name, x.Shape, g))
	}
	oh, ow := g.OutH(), g.OutW()
	if !train {
		return c.forwardInfer(x, n)
	}
	out := tensor.New(n, c.OutC, oh, ow)
	wMat := c.kernelMat()
	c.cols = make([]*tensor.Tensor, n)
	c.inShape = append([]int(nil), x.Shape...)
	perIn := g.InC * g.InH * g.InW
	perOut := c.OutC * oh * ow
	// Batch items are independent: each worker chunk owns its slice of
	// the output (and of c.cols) and carries a private im2col-output
	// scratch matrix, so items shard across the pool with no shared
	// writes. Per-element arithmetic matches the serial loop exactly.
	parallel.For(n, 1, func(lo, hi int) {
		outMat := tensor.New(c.OutC, oh*ow)
		for i := lo; i < hi; i++ {
			img := tensor.FromSlice(x.Data[i*perIn:(i+1)*perIn], g.InC, g.InH, g.InW)
			cols := tensor.Im2Col(img, g)
			c.cols[i] = cols
			tensor.MatMulInto(outMat, wMat, cols)
			copy(out.Data[i*perOut:(i+1)*perOut], outMat.Data)
			if c.UseBias {
				for oc := 0; oc < c.OutC; oc++ {
					b := c.Bias.W.Data[oc]
					base := (i*c.OutC + oc) * oh * ow
					for j := 0; j < oh*ow; j++ {
						out.Data[base+j] += b
					}
				}
			}
		}
	})
	return out
}

// forwardInfer is the allocation-free inference path: batch items run
// through per-chunk reusable scratch arenas (im2col matrix, GEMM
// staging matrix, packing panel) instead of fresh allocations, and the
// output tensor itself is reused across calls while the batch size is
// stable. The per-element arithmetic is exactly the train path's —
// Im2ColInto zeroes-then-fills like a fresh Im2Col and MatMulIntoWS is
// MatMulInto with caller-owned scratch — so eval results are
// bit-identical to the allocating path. The returned tensor is owned by
// the layer: it is valid until c's next inference Forward, which every
// in-repo caller satisfies by consuming activations within the pass.
func (c *Conv2D) forwardInfer(x *tensor.Tensor, n int) *tensor.Tensor {
	c.cols = nil // inference never caches backprop state
	wMat := c.kernelMat()
	out := c.infOut
	if out == nil || out.Shape[0] != n {
		out = tensor.New(n, c.OutC, c.Geom.OutH(), c.Geom.OutW())
		c.infOut = out
	}
	nchunks := parallel.Workers()
	if nchunks > n {
		nchunks = n
	}
	for len(c.infWS) < nchunks {
		c.infWS = append(c.infWS, c.newWorkspace())
	}
	if nchunks == 1 {
		c.inferRange(out, x, wMat, 0, n, c.infWS[0])
		return out
	}
	// Chunk index lo/grain is unique per chunk, so each concurrent
	// chunk gets a private workspace; outputs are disjoint by item.
	grain := (n + nchunks - 1) / nchunks
	parallel.For(n, grain, func(lo, hi int) {
		c.inferRange(out, x, wMat, lo, hi, c.infWS[lo/grain])
	})
	return out
}

func (c *Conv2D) inferRange(out, x, wMat *tensor.Tensor, lo, hi int, ws *convWorkspace) {
	g := c.Geom
	oh, ow := g.OutH(), g.OutW()
	perIn := g.InC * g.InH * g.InW
	perOut := c.OutC * oh * ow
	for i := lo; i < hi; i++ {
		ws.img.Data = x.Data[i*perIn : (i+1)*perIn]
		tensor.Im2ColInto(ws.cols, ws.img, g)
		tensor.MatMulIntoWS(ws.outMat, wMat, ws.cols, ws.panel)
		copy(out.Data[i*perOut:(i+1)*perOut], ws.outMat.Data)
		if c.UseBias {
			for oc := 0; oc < c.OutC; oc++ {
				b := c.Bias.W.Data[oc]
				base := (i*c.OutC + oc) * oh * ow
				for j := 0; j < oh*ow; j++ {
					out.Data[base+j] += b
				}
			}
		}
	}
}

// Backward implements Module. grad has shape [N, OutC, OutH, OutW].
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.cols == nil {
		panic("nn: Conv2D.Backward called without a train-mode Forward")
	}
	n := grad.Dim(0)
	g := c.Geom
	oh, ow := g.OutH(), g.OutW()
	wMat := c.KernelMatrix()
	gradW := c.Weight.Grad.Reshape(c.OutC, g.InC*g.KH*g.KW)
	dx := tensor.New(c.inShape...)
	perIn := g.InC * g.InH * g.InW
	perOut := c.OutC * oh * ow
	// Weight and bias gradients are reductions across batch items, so
	// determinism requires two phases: workers compute per-item partials
	// into index-addressed slots (dx is written disjointly in the same
	// pass), and after the barrier the partials are folded in ascending
	// item order — the exact float32 accumulation order of the serial
	// loop.
	gws := make([]*tensor.Tensor, n)
	var biasPart []float32
	if c.UseBias {
		biasPart = make([]float32, n*c.OutC)
	}
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			gMat := tensor.FromSlice(grad.Data[i*perOut:(i+1)*perOut], c.OutC, oh*ow)
			// dW_i = gMat × colsᵀ
			gws[i] = tensor.MatMulTransB(gMat, c.cols[i])
			// dCols = Wᵀ × gMat ; dX = col2im(dCols)
			dCols := tensor.MatMulTransA(wMat, gMat)
			img := tensor.Col2Im(dCols, g)
			copy(dx.Data[i*perIn:(i+1)*perIn], img.Data)
			if c.UseBias {
				for oc := 0; oc < c.OutC; oc++ {
					base := (i*c.OutC + oc) * oh * ow
					var s float32
					for j := 0; j < oh*ow; j++ {
						s += grad.Data[base+j]
					}
					biasPart[i*c.OutC+oc] = s
				}
			}
		}
	})
	for i := 0; i < n; i++ {
		gradW.Add(gws[i])
		if c.UseBias {
			for oc := 0; oc < c.OutC; oc++ {
				c.Bias.Grad.Data[oc] += biasPart[i*c.OutC+oc]
			}
		}
	}
	return dx
}

// Linear is a fully-connected layer: y = xW¹ + b with W of shape
// [Out, In]. Like Conv2D, column j of x (input feature j) interacts only
// with weight column j, so the SE scheme applies to FC layers as well
// (paper §III-A, final paragraph).
type Linear struct {
	Name   string
	In     int
	Out    int
	Weight *Param // [Out, In]
	Bias   *Param // [Out]

	x *tensor.Tensor // cached input [N, In]
}

// NewLinear constructs a fully-connected layer with He initialization.
func NewLinear(name string, r *prng.Source, in, out int) *Linear {
	l := &Linear{
		Name:   name,
		In:     in,
		Out:    out,
		Weight: newParam(name+".weight", out, in),
		Bias:   newParam(name+".bias", out),
	}
	heFanIn(r, l.Weight.W, in)
	return l
}

// LayerName implements Named.
func (l *Linear) LayerName() string { return l.Name }

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Forward implements Module for x of shape [N, In].
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shapeCheck(l.Name, x, 2)
	if x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: %s input width %d, want %d", l.Name, x.Dim(1), l.In))
	}
	if train {
		l.x = x
	} else {
		l.x = nil
	}
	out := tensor.MatMulTransB(x, l.Weight.W) // [N,In]×[Out,In]ᵀ = [N,Out]
	n := x.Dim(0)
	for i := 0; i < n; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.Bias.W.Data[j]
		}
	}
	return out
}

// Backward implements Module. grad has shape [N, Out].
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic("nn: Linear.Backward called without a train-mode Forward")
	}
	// dW = gradᵀ × x  → [Out, In]
	gw := tensor.MatMulTransA(grad, l.x)
	l.Weight.Grad.Add(gw)
	n := grad.Dim(0)
	for i := 0; i < n; i++ {
		row := grad.Data[i*l.Out : (i+1)*l.Out]
		for j, v := range row {
			l.Bias.Grad.Data[j] += v
		}
	}
	// dx = grad × W → [N, In]
	return tensor.MatMul(grad, l.Weight.W)
}
