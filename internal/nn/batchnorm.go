package nn

import (
	"math"

	"seal/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW batch to zero mean and
// unit variance using batch statistics during training and running
// statistics during inference.
type BatchNorm2D struct {
	Name     string
	C        int
	Eps      float32
	Momentum float32 // running-stat update rate

	Gamma *Param // [C] scale
	Beta  *Param // [C] shift

	RunningMean *tensor.Tensor // [C]
	RunningVar  *tensor.Tensor // [C]

	// cached forward state
	xhat    *tensor.Tensor // nil after eval Forward
	invStd  []float32
	inShape []int

	// reusable workspaces: out, the xhat cache, and the backward dx are
	// fully overwritten on every call.
	out       *tensor.Tensor
	xhatBuf   *tensor.Tensor
	invStdBuf []float32
	dx        *tensor.Tensor
}

// NewBatchNorm2D constructs a batch-norm layer for c channels.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		Name:        name,
		C:           c,
		Eps:         1e-5,
		Momentum:    0.1,
		Gamma:       newParam(name+".gamma", c),
		Beta:        newParam(name+".beta", c),
		RunningMean: tensor.New(c),
		RunningVar:  tensor.New(c),
	}
	bn.Gamma.W.Fill(1)
	bn.RunningVar.Fill(1)
	return bn
}

// LayerName implements Named.
func (bn *BatchNorm2D) LayerName() string { return bn.Name }

// Params implements Module.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Forward implements Module for x of shape [N, C, H, W].
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shapeCheck(bn.Name, x, 4)
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != bn.C {
		panic("nn: BatchNorm2D channel mismatch")
	}
	out := ensureShaped(bn.out, x.Shape)
	bn.out = out
	plane := h * w
	count := n * plane
	bn.inShape = append(bn.inShape[:0], x.Shape...)
	if train {
		bn.xhatBuf = ensureShaped(bn.xhatBuf, x.Shape)
		bn.xhat = bn.xhatBuf
		bn.invStdBuf = growFloats(bn.invStdBuf, c)
		bn.invStd = bn.invStdBuf
	} else {
		bn.xhat = nil
		bn.invStd = nil
	}
	for ch := 0; ch < c; ch++ {
		var mean, variance float32
		if train {
			var sum float64
			for i := 0; i < n; i++ {
				base := (i*c + ch) * plane
				for j := 0; j < plane; j++ {
					sum += float64(x.Data[base+j])
				}
			}
			mean = float32(sum / float64(count))
			var sq float64
			for i := 0; i < n; i++ {
				base := (i*c + ch) * plane
				for j := 0; j < plane; j++ {
					d := x.Data[base+j] - mean
					sq += float64(d) * float64(d)
				}
			}
			variance = float32(sq / float64(count))
			bn.RunningMean.Data[ch] = (1-bn.Momentum)*bn.RunningMean.Data[ch] + bn.Momentum*mean
			bn.RunningVar.Data[ch] = (1-bn.Momentum)*bn.RunningVar.Data[ch] + bn.Momentum*variance
		} else {
			mean = bn.RunningMean.Data[ch]
			variance = bn.RunningVar.Data[ch]
		}
		invStd := float32(1 / math.Sqrt(float64(variance)+float64(bn.Eps)))
		g, b := bn.Gamma.W.Data[ch], bn.Beta.W.Data[ch]
		if train {
			bn.invStd[ch] = invStd
		}
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				xh := (x.Data[base+j] - mean) * invStd
				if train {
					bn.xhat.Data[base+j] = xh
				}
				out.Data[base+j] = g*xh + b
			}
		}
	}
	return out
}

// Backward implements Module using the standard batch-norm gradient.
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if bn.xhat == nil {
		panic("nn: BatchNorm2D.Backward called without a train-mode Forward")
	}
	n, c, h, w := bn.inShape[0], bn.inShape[1], bn.inShape[2], bn.inShape[3]
	plane := h * w
	count := float32(n * plane)
	dx := ensureShaped(bn.dx, bn.inShape)
	bn.dx = dx
	for ch := 0; ch < c; ch++ {
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				dy := grad.Data[base+j]
				sumDy += float64(dy)
				sumDyXhat += float64(dy) * float64(bn.xhat.Data[base+j])
			}
		}
		bn.Beta.Grad.Data[ch] += float32(sumDy)
		bn.Gamma.Grad.Data[ch] += float32(sumDyXhat)
		g := bn.Gamma.W.Data[ch]
		invStd := bn.invStd[ch]
		meanDy := float32(sumDy) / count
		meanDyXhat := float32(sumDyXhat) / count
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				xh := bn.xhat.Data[base+j]
				dy := grad.Data[base+j]
				dx.Data[base+j] = g * invStd * (dy - meanDy - xh*meanDyXhat)
			}
		}
	}
	return dx
}
