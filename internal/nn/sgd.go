package nn

import (
	"math"

	"seal/internal/tensor"
)

// SGD is stochastic gradient descent with classical momentum and L2
// weight decay. It honours per-parameter freeze masks: masked-out
// elements receive no update, which is how the SEAL adversary keeps
// leaked plaintext weights fixed while fine-tuning the rest.
type SGD struct {
	LR          float32
	Momentum    float32
	WeightDecay float32

	velocity map[*Param]*tensor.Tensor
}

// NewSGD constructs an optimizer with the given hyper-parameters.
func NewSGD(lr, momentum, weightDecay float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, velocity: map[*Param]*tensor.Tensor{}}
}

// Step applies one update to every parameter and clears the gradients.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		v := o.velocity[p]
		if v == nil && o.Momentum != 0 {
			v = tensor.New(p.W.Shape...)
			o.velocity[p] = v
		}
		for i := range p.W.Data {
			if p.Mask != nil && p.Mask.Data[i] == 0 {
				continue
			}
			g := p.Grad.Data[i] + o.WeightDecay*p.W.Data[i]
			if o.Momentum != 0 {
				v.Data[i] = o.Momentum*v.Data[i] + g
				g = v.Data[i]
			}
			p.W.Data[i] -= o.LR * g
		}
		p.ZeroGrad()
	}
}

// ZeroGrads clears every gradient without updating weights.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ClipGradNorm scales gradients so their global L2 norm does not exceed
// maxNorm; it returns the pre-clip norm. Gradient clipping keeps the
// small-width substitute-model training runs stable.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		sq += p.Grad.SqSum()
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}
