package nn

import (
	"math"

	"seal/internal/tensor"
)

// SGD is stochastic gradient descent with classical momentum and L2
// weight decay. It honours per-parameter freeze masks: masked-out
// elements receive no update, which is how the SEAL adversary keeps
// leaked plaintext weights fixed while fine-tuning the rest.
type SGD struct {
	LR          float32
	Momentum    float32
	WeightDecay float32

	velocity map[*Param]*tensor.Tensor
}

// NewSGD constructs an optimizer with the given hyper-parameters.
func NewSGD(lr, momentum, weightDecay float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay, velocity: map[*Param]*tensor.Tensor{}}
}

// Step applies one update to every parameter and clears the gradients.
// The per-element Mask/Momentum branches of the historical loop are
// hoisted into four specialized paths in stepOne, and the independent
// per-parameter updates fan out across the worker pool.
func (o *SGD) Step(params []*Param) {
	if o.Momentum != 0 {
		// Lazy velocity creation is a map write, so it must happen
		// serially before the parameters fan out.
		for _, p := range params {
			if o.velocity[p] == nil {
				o.velocity[p] = tensor.New(p.W.Shape...)
			}
		}
	}
	stepParams(o, params)
}

// stepOne implements stepper. Each range kernel performs exactly the
// arithmetic of the historical per-element loop — g := grad + wd*w,
// optional velocity update, w -= lr*g — on a dense index range, so
// hoisting the branches changes branch-prediction traffic, never the
// float operation sequence of any element.
func (o *SGD) stepOne(p *Param) {
	w, g := p.W.Data, p.Grad.Data
	switch {
	case o.Momentum == 0 && p.Mask == nil:
		sgdPlainRange(w, g, o.LR, o.WeightDecay, 0, len(w))
	case o.Momentum == 0:
		m := p.Mask.Data
		for lo, hi := nextRun(m, 0); lo < len(m); lo, hi = nextRun(m, hi) {
			sgdPlainRange(w, g, o.LR, o.WeightDecay, lo, hi)
		}
	case p.Mask == nil:
		sgdMomentumRange(w, g, o.velocity[p].Data, o.LR, o.Momentum, o.WeightDecay, 0, len(w))
	default:
		v, m := o.velocity[p].Data, p.Mask.Data
		for lo, hi := nextRun(m, 0); lo < len(m); lo, hi = nextRun(m, hi) {
			sgdMomentumRange(w, g, v, o.LR, o.Momentum, o.WeightDecay, lo, hi)
		}
	}
}

// sgdPlainRange is the momentum-free update kernel for elements
// [lo, hi).
func sgdPlainRange(w, grad []float32, lr, wd float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		g := grad[i] + wd*w[i]
		w[i] -= lr * g
	}
}

// sgdMomentumRange is the classical-momentum update kernel for
// elements [lo, hi).
func sgdMomentumRange(w, grad, v []float32, lr, mom, wd float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		g := grad[i] + wd*w[i]
		v[i] = mom*v[i] + g
		w[i] -= lr * v[i]
	}
}

// ZeroGrads clears every gradient without updating weights.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ClipGradNorm scales gradients so their global L2 norm does not exceed
// maxNorm; it returns the pre-clip norm. Gradient clipping keeps the
// small-width substitute-model training runs stable.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		sq += p.Grad.SqSum()
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		scale := float32(maxNorm / norm)
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}
