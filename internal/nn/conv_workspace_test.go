package nn

import (
	"testing"

	"seal/internal/parallel"
	"seal/internal/prng"
	"seal/internal/tensor"
)

// randomBatch fills an NCHW input with deterministic normal noise.
func randomBatch(r *prng.Source, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = float32(r.NormFloat64())
	}
	return x
}

// TestConvInferenceMatchesTrainForward verifies the workspace-reusing
// inference path is bit-identical to the allocating train-mode forward,
// including after a warm-up call has dirtied every scratch buffer and
// across a batch-size change that forces an output reallocation.
func TestConvInferenceMatchesTrainForward(t *testing.T) {
	r := prng.New(31)
	c := NewConv2D("conv", r, 3, 8, 3, 1, 1, 13, 13)
	for _, n := range []int{4, 4, 2, 5} {
		x := randomBatch(r, n, 3, 13, 13)
		want := c.Forward(x, true)
		got := c.Forward(x, false)
		if !tensor.SameShape(want, got) {
			t.Fatalf("n=%d: shape %v vs %v", n, want.Shape, got.Shape)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("n=%d: element %d differs: train %v infer %v", n, i, want.Data[i], got.Data[i])
			}
		}
	}
}

// TestConvInferenceParallelDeterministic verifies the chunked
// inference path is bit-identical to SEAL_WORKERS=1 (each chunk owns a
// private workspace, so width must not change any value).
func TestConvInferenceParallelDeterministic(t *testing.T) {
	r := prng.New(32)
	c := NewConv2D("conv", r, 4, 6, 3, 1, 1, 11, 11)
	x := randomBatch(r, 5, 4, 11, 11)
	prev := parallel.SetWorkers(1)
	serial := c.Forward(x, false).Clone()
	parallel.SetWorkers(8)
	par := c.Forward(x, false)
	parallel.SetWorkers(prev)
	for i := range serial.Data {
		if serial.Data[i] != par.Data[i] {
			t.Fatalf("element %d differs: serial %v parallel %v", i, serial.Data[i], par.Data[i])
		}
	}
}

// TestConvInferenceZeroAllocs is the allocation regression test for the
// workspace path: after a warm-up call, inference-mode Forward must not
// touch the heap at all. It pins the pool to one worker — the
// multi-worker path allocates its dispatch closure, and this container
// is single-core anyway.
func TestConvInferenceZeroAllocs(t *testing.T) {
	r := prng.New(33)
	c := NewConv2D("conv", r, 8, 16, 3, 1, 1, 16, 16)
	x := randomBatch(r, 2, 8, 16, 16)
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	c.Forward(x, false) // warm-up: builds workspaces and output
	allocs := testing.AllocsPerRun(20, func() {
		c.Forward(x, false)
	})
	if allocs != 0 {
		t.Fatalf("inference Forward allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkConvForward measures an inference-mode VGG-style 3×3
// convolution (64→64 channels on a 32×32 map), the shape class that
// dominates every figure's wall-clock time.
func BenchmarkConvForward(b *testing.B) {
	r := prng.New(34)
	c := NewConv2D("conv", r, 64, 64, 3, 1, 1, 32, 32)
	x := randomBatch(r, 1, 64, 32, 32)
	b.SetBytes(int64(x.Size()+64*32*32) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x, false)
	}
}
