package nn

import (
	"math"

	"seal/internal/tensor"
)

// Softmax writes the row-wise softmax of logits [N, K] into a new tensor,
// using the max-subtraction trick for numerical stability.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	shapeCheck("Softmax", logits, 2)
	n, k := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, k)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		dst := out.Data[i*k : (i+1)*k]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range dst {
			dst[j] *= inv
		}
	}
	return out
}

// SoftmaxCrossEntropy returns the mean cross-entropy loss of logits
// [N, K] against integer labels, plus dL/dlogits (already divided by N,
// ready to feed into Backward).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic("nn: label count does not match batch size")
	}
	probs := Softmax(logits)
	grad := tensor.New(n, k)
	invN := float32(1 / float64(n))
	var loss float64
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= k {
			panic("nn: label out of range")
		}
		p := probs.Data[i*k+y]
		// clamp to avoid log(0) on confidently wrong predictions
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(float64(p))
		for j := 0; j < k; j++ {
			g := probs.Data[i*k+j]
			if j == y {
				g -= 1
			}
			grad.Data[i*k+j] = g * invN
		}
	}
	return loss / float64(n), grad
}

// Accuracy returns the fraction of rows of logits [N, K] whose argmax
// equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Dim(0), logits.Dim(1)
	correct := 0
	for i := 0; i < n; i++ {
		row := tensor.FromSlice(logits.Data[i*k:(i+1)*k], k)
		if row.ArgMax() == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
