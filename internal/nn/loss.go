package nn

import (
	"math"

	"seal/internal/tensor"
)

// Softmax writes the row-wise softmax of logits [N, K] into a new tensor,
// using the max-subtraction trick for numerical stability.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(logits.Shape...)
	SoftmaxInto(out, logits)
	return out
}

// SoftmaxInto writes the row-wise softmax of logits [N, K] into the
// caller-owned out, overwriting it completely.
func SoftmaxInto(out, logits *tensor.Tensor) {
	shapeCheck("Softmax", logits, 2)
	n, k := logits.Dim(0), logits.Dim(1)
	if out.Size() != n*k {
		panic("nn: SoftmaxInto output size mismatch")
	}
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		dst := out.Data[i*k : (i+1)*k]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range dst {
			dst[j] *= inv
		}
	}
}

// SoftmaxCrossEntropy returns the mean cross-entropy loss of logits
// [N, K] against integer labels, plus dL/dlogits (already divided by N,
// ready to feed into Backward). It allocates fresh probability and
// gradient tensors each call; training loops that must not allocate
// use a SoftmaxCE instead.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	probs := Softmax(logits)
	grad := tensor.New(logits.Shape...)
	loss := ceLossGrad(probs, grad, labels)
	return loss, grad
}

// SoftmaxCE is the workspace-backed softmax cross-entropy: Loss writes
// the probabilities and gradient into buffers owned by the struct, so a
// warm training step performs no loss-side allocations. The returned
// gradient is valid until the next Loss call (DESIGN §13 ownership
// rule). The zero value is ready to use.
type SoftmaxCE struct {
	probs *tensor.Tensor
	grad  *tensor.Tensor
}

// Loss computes the mean cross-entropy of logits [N, K] against labels
// and dL/dlogits, bit-identical to SoftmaxCrossEntropy.
func (s *SoftmaxCE) Loss(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	s.probs = ensureShaped(s.probs, logits.Shape)
	s.grad = ensureShaped(s.grad, logits.Shape)
	SoftmaxInto(s.probs, logits)
	loss := ceLossGrad(s.probs, s.grad, labels)
	return loss, s.grad
}

// ceLossGrad turns row-wise probabilities into the mean cross-entropy
// loss and its logits gradient, overwriting grad completely.
func ceLossGrad(probs, grad *tensor.Tensor, labels []int) float64 {
	n, k := probs.Dim(0), probs.Dim(1)
	if len(labels) != n {
		panic("nn: label count does not match batch size")
	}
	invN := float32(1 / float64(n))
	var loss float64
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= k {
			panic("nn: label out of range")
		}
		p := probs.Data[i*k+y]
		// clamp to avoid log(0) on confidently wrong predictions
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(float64(p))
		for j := 0; j < k; j++ {
			g := probs.Data[i*k+j]
			if j == y {
				g -= 1
			}
			grad.Data[i*k+j] = g * invN
		}
	}
	return loss / float64(n)
}

// Accuracy returns the fraction of rows of logits [N, K] whose argmax
// equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Dim(0), logits.Dim(1)
	correct := 0
	for i := 0; i < n; i++ {
		row := tensor.FromSlice(logits.Data[i*k:(i+1)*k], k)
		if row.ArgMax() == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
