package nn

import "seal/internal/tensor"

// Sequential chains modules, feeding each module's output to the next.
type Sequential struct {
	Name    string
	Modules []Module
}

// NewSequential constructs a sequential container.
func NewSequential(name string, mods ...Module) *Sequential {
	return &Sequential{Name: name, Modules: mods}
}

// LayerName implements Named.
func (s *Sequential) LayerName() string { return s.Name }

// Add appends a module.
func (s *Sequential) Add(m Module) { s.Modules = append(s.Modules, m) }

// Params implements Module.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, m := range s.Modules {
		out = append(out, m.Params()...)
	}
	return out
}

// Forward implements Module.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, m := range s.Modules {
		x = m.Forward(x, train)
	}
	return x
}

// Backward implements Module.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Modules) - 1; i >= 0; i-- {
		grad = s.Modules[i].Backward(grad)
	}
	return grad
}

// ResidualBlock is the ResNet basic block: two 3×3 conv+BN stages with a
// ReLU between them, an identity or 1×1-conv shortcut, and a final ReLU
// applied to the sum.
type ResidualBlock struct {
	Name  string
	Conv1 *Conv2D
	BN1   *BatchNorm2D
	Relu1 *ReLU
	Conv2 *Conv2D
	BN2   *BatchNorm2D
	// Shortcut is nil for identity; otherwise a strided 1×1 projection.
	Shortcut   *Conv2D
	ShortcutBN *BatchNorm2D

	reluMask []bool // mask of the final ReLU; nil after eval Forward
	maskBuf  []bool
	out      *tensor.Tensor // reused sum+ReLU output
	g        *tensor.Tensor // reused masked-gradient buffer
}

// Params implements Module.
func (b *ResidualBlock) Params() []*Param {
	var out []*Param
	out = append(out, b.Conv1.Params()...)
	out = append(out, b.BN1.Params()...)
	out = append(out, b.Conv2.Params()...)
	out = append(out, b.BN2.Params()...)
	if b.Shortcut != nil {
		out = append(out, b.Shortcut.Params()...)
		out = append(out, b.ShortcutBN.Params()...)
	}
	return out
}

// LayerName implements Named.
func (b *ResidualBlock) LayerName() string { return b.Name }

// Forward implements Module.
func (b *ResidualBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := b.Conv1.Forward(x, train)
	main = b.BN1.Forward(main, train)
	main = b.Relu1.Forward(main, train)
	main = b.Conv2.Forward(main, train)
	main = b.BN2.Forward(main, train)

	short := x
	if b.Shortcut != nil {
		short = b.Shortcut.Forward(x, train)
		short = b.ShortcutBN.Forward(short, train)
	}
	// The sum+ReLU output and its mask are reusable workspaces: every
	// element is written unconditionally, so warm calls allocate
	// nothing.
	out := ensureShaped(b.out, main.Shape)
	b.out = out
	if train {
		if cap(b.maskBuf) < out.Size() {
			b.maskBuf = make([]bool, out.Size())
		}
		b.reluMask = b.maskBuf[:out.Size()]
		for i := range out.Data {
			v := main.Data[i] + short.Data[i]
			pos := v > 0
			b.reluMask[i] = pos
			if pos {
				out.Data[i] = v
			} else {
				out.Data[i] = 0
			}
		}
	} else {
		b.reluMask = nil
		for i := range out.Data {
			v := main.Data[i] + short.Data[i]
			if v > 0 {
				out.Data[i] = v
			} else {
				out.Data[i] = 0
			}
		}
	}
	return out
}

// Backward implements Module.
func (b *ResidualBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.reluMask == nil {
		panic("nn: ResidualBlock.Backward called without a train-mode Forward")
	}
	g := ensureShaped(b.g, grad.Shape)
	b.g = g
	for i, v := range grad.Data {
		if b.reluMask[i] {
			g.Data[i] = v
		} else {
			g.Data[i] = 0
		}
	}
	dMain := b.BN2.Backward(g)
	dMain = b.Conv2.Backward(dMain)
	dMain = b.Relu1.Backward(dMain)
	dMain = b.BN1.Backward(dMain)
	dx := b.Conv1.Backward(dMain)

	if b.Shortcut != nil {
		dShort := b.ShortcutBN.Backward(g)
		dShort = b.Shortcut.Backward(dShort)
		dx.Add(dShort)
	} else {
		dx.Add(g)
	}
	return dx
}

// WalkModules visits m and every module nested inside Sequential and
// ResidualBlock containers in execution order.
func WalkModules(m Module, visit func(Module)) {
	switch v := m.(type) {
	case *Sequential:
		for _, child := range v.Modules {
			WalkModules(child, visit)
		}
	case *ResidualBlock:
		visit(v.Conv1)
		visit(v.BN1)
		visit(v.Relu1)
		visit(v.Conv2)
		visit(v.BN2)
		if v.Shortcut != nil {
			visit(v.Shortcut)
			visit(v.ShortcutBN)
		}
	default:
		visit(m)
	}
}
