package nn

import (
	"math"
	"testing"

	"seal/internal/prng"
	"seal/internal/tensor"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	r := prng.New(1)
	logits := randInput(r, 5, 10)
	logits.Scale(10) // stress stability
	p := Softmax(logits)
	for i := 0; i < 5; i++ {
		var s float64
		for j := 0; j < 10; j++ {
			v := p.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("prob out of range: %v", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxStableUnderLargeLogits(t *testing.T) {
	logits := tensor.FromSlice([]float32{1000, 1001, 999}, 1, 3)
	p := Softmax(logits)
	for _, v := range p.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax unstable: %v", p.Data)
		}
	}
	if p.Data[1] < p.Data[0] || p.Data[0] < p.Data[2] {
		t.Fatalf("softmax ordering wrong: %v", p.Data)
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	logits := tensor.FromSlice([]float32{100, 0, 0, 0, 100, 0}, 2, 3)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0, 1})
	if loss > 1e-6 {
		t.Fatalf("loss for perfect prediction = %v", loss)
	}
	if grad.MaxAbs() > 1e-6 {
		t.Fatalf("gradient for perfect prediction = %v", grad.MaxAbs())
	}
}

func TestCrossEntropyUniformLogits(t *testing.T) {
	logits := tensor.New(1, 4) // all zeros → uniform distribution
	loss, _ := SoftmaxCrossEntropy(logits, []int{2})
	want := math.Log(4)
	if math.Abs(loss-want) > 1e-6 {
		t.Fatalf("uniform loss = %v, want %v", loss, want)
	}
}

func TestCrossEntropyGradSumsToZeroPerRow(t *testing.T) {
	r := prng.New(2)
	logits := randInput(r, 4, 7)
	_, grad := SoftmaxCrossEntropy(logits, []int{0, 1, 2, 3})
	for i := 0; i < 4; i++ {
		var s float64
		for j := 0; j < 7; j++ {
			s += float64(grad.At(i, j))
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("row %d grad sums to %v", i, s)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 2, 3, // argmax 2
		9, 1, 1, // argmax 0
		0, 5, 1, // argmax 1
	}, 3, 3)
	if a := Accuracy(logits, []int{2, 0, 0}); math.Abs(a-2.0/3) > 1e-9 {
		t.Fatalf("accuracy = %v", a)
	}
}

func TestSGDStepReducesLoss(t *testing.T) {
	r := prng.New(3)
	lin := NewLinear("fc", r, 8, 3)
	x := randInput(r, 16, 8)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 3
	}
	opt := NewSGD(0.1, 0.9, 0)
	first := lossOf(lin, x, labels)
	loss := first
	for step := 0; step < 50; step++ {
		out := lin.Forward(x, true)
		var grad *tensor.Tensor
		loss, grad = SoftmaxCrossEntropy(out, labels)
		lin.Backward(grad)
		opt.Step(lin.Params())
	}
	if loss >= first*0.8 {
		t.Fatalf("SGD failed to reduce loss: %v -> %v", first, loss)
	}
}

func TestSGDRespectsFreezeMask(t *testing.T) {
	r := prng.New(4)
	lin := NewLinear("fc", r, 4, 2)
	frozen := lin.Weight.W.Clone()
	// Freeze the first row of the weight matrix, train the second.
	lin.Weight.Mask = tensor.New(2, 4)
	for j := 0; j < 4; j++ {
		lin.Weight.Mask.Data[4+j] = 1
	}
	lin.Bias.FreezeAll()
	x := randInput(r, 8, 4)
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	opt := NewSGD(0.5, 0, 0)
	for step := 0; step < 10; step++ {
		out := lin.Forward(x, true)
		_, grad := SoftmaxCrossEntropy(out, labels)
		lin.Backward(grad)
		opt.Step(lin.Params())
	}
	for j := 0; j < 4; j++ {
		if lin.Weight.W.Data[j] != frozen.Data[j] {
			t.Fatalf("frozen weight %d changed: %v -> %v", j, frozen.Data[j], lin.Weight.W.Data[j])
		}
	}
	changed := false
	for j := 4; j < 8; j++ {
		if lin.Weight.W.Data[j] != frozen.Data[j] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("trainable row never changed")
	}
	for j := 0; j < 2; j++ {
		if lin.Bias.W.Data[j] != 0 && lin.Bias.Grad.Data[j] != 0 {
			// bias starts at zero; FreezeAll must pin it there
			t.Fatalf("frozen bias moved: %v", lin.Bias.W.Data)
		}
	}
}

func TestSGDWeightDecayShrinksWeights(t *testing.T) {
	p := newParam("w", 4)
	p.W.Fill(1)
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step([]*Param{p}) // grad is zero, decay only
	for _, v := range p.W.Data {
		if math.Abs(float64(v)-0.95) > 1e-6 {
			t.Fatalf("decay step produced %v, want 0.95", v)
		}
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("w", 4)
	p.Grad.Fill(3) // norm = 6
	norm := ClipGradNorm([]*Param{p}, 3)
	if math.Abs(norm-6) > 1e-9 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	var sq float64
	for _, v := range p.Grad.Data {
		sq += float64(v) * float64(v)
	}
	if math.Abs(math.Sqrt(sq)-3) > 1e-5 {
		t.Fatalf("post-clip norm = %v", math.Sqrt(sq))
	}
}

func TestBatchNormTrainStatistics(t *testing.T) {
	r := prng.New(5)
	bn := NewBatchNorm2D("bn", 2)
	x := randInput(r, 8, 2, 4, 4)
	// shift channel 1 strongly
	for i := 0; i < 8; i++ {
		base := (i*2 + 1) * 16
		for j := 0; j < 16; j++ {
			x.Data[base+j] += 10
		}
	}
	out := bn.Forward(x, true)
	for ch := 0; ch < 2; ch++ {
		var sum, sq float64
		for i := 0; i < 8; i++ {
			base := (i*2 + ch) * 16
			for j := 0; j < 16; j++ {
				v := float64(out.Data[base+j])
				sum += v
				sq += v * v
			}
		}
		n := float64(8 * 16)
		mean := sum / n
		variance := sq/n - mean*mean
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("channel %d normalized mean = %v", ch, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Fatalf("channel %d normalized var = %v", ch, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	r := prng.New(6)
	bn := NewBatchNorm2D("bn", 1)
	// train on shifted data for several batches so running stats converge
	for i := 0; i < 50; i++ {
		x := randInput(r, 4, 1, 2, 2)
		for j := range x.Data {
			x.Data[j] = x.Data[j]*2 + 5
		}
		bn.Forward(x, true)
	}
	if math.Abs(float64(bn.RunningMean.Data[0])-5) > 0.5 {
		t.Fatalf("running mean = %v, want ≈5", bn.RunningMean.Data[0])
	}
	// eval on a constant input: output should be (5-mean)/std ≈ 0
	x := tensor.New(1, 1, 2, 2)
	x.Fill(5)
	out := bn.Forward(x, false)
	if math.Abs(float64(out.Data[0])) > 0.3 {
		t.Fatalf("eval-mode output %v, want ≈0", out.Data[0])
	}
}

func TestSequentialForwardBackwardShapes(t *testing.T) {
	r := prng.New(7)
	net := NewSequential("net",
		NewConv2D("c1", r, 3, 8, 3, 1, 1, 8, 8),
		NewBatchNorm2D("bn1", 8),
		NewReLU("r1"),
		NewMaxPool2D("p1", 2, 2),
		NewFlatten("flat"),
		NewLinear("fc", r, 8*4*4, 10),
	)
	x := randInput(r, 2, 3, 8, 8)
	out := net.Forward(x, true)
	if out.Dim(0) != 2 || out.Dim(1) != 10 {
		t.Fatalf("output shape %v", out.Shape)
	}
	_, grad := SoftmaxCrossEntropy(out, []int{3, 7})
	dx := net.Backward(grad)
	if !tensor.SameShape(dx, x) {
		t.Fatalf("input gradient shape %v, want %v", dx.Shape, x.Shape)
	}
}

func TestSequentialTrainsXORLikeTask(t *testing.T) {
	// A small conv net must be able to fit 32 random samples — a smoke
	// test that the whole training loop (forward, backward, SGD) works
	// end to end.
	r := prng.New(8)
	net := NewSequential("net",
		NewConv2D("c1", r, 1, 4, 3, 1, 1, 6, 6),
		NewReLU("r1"),
		NewMaxPool2D("p1", 2, 2),
		NewFlatten("flat"),
		NewLinear("fc", r, 4*3*3, 2),
	)
	x := randInput(r, 32, 1, 6, 6)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = r.Intn(2)
	}
	opt := NewSGD(0.05, 0.9, 0)
	var acc float64
	for epoch := 0; epoch < 200; epoch++ {
		out := net.Forward(x, true)
		_, grad := SoftmaxCrossEntropy(out, labels)
		net.Backward(grad)
		opt.Step(net.Params())
		if epoch%20 == 0 {
			acc = Accuracy(net.Forward(x, false), labels)
			if acc == 1 {
				break
			}
		}
	}
	acc = Accuracy(net.Forward(x, false), labels)
	if acc < 0.9 {
		t.Fatalf("failed to overfit 32 samples: accuracy %v", acc)
	}
}

func TestMaxPoolForwardValues(t *testing.T) {
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	pool := NewMaxPool2D("p", 2, 2)
	out := pool.Forward(x, false)
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("maxpool[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestAvgPoolForwardValues(t *testing.T) {
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	pool := NewAvgPool2D("p", 2, 2)
	out := pool.Forward(x, false)
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("avgpool[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestConvKernelMatrixSharesStorage(t *testing.T) {
	r := prng.New(9)
	conv := NewConv2D("c", r, 2, 3, 3, 1, 1, 4, 4)
	km := conv.KernelMatrix()
	if km.Dim(0) != 3 || km.Dim(1) != 2*3*3 {
		t.Fatalf("kernel matrix shape %v", km.Shape)
	}
	km.Data[0] = 123
	if conv.Weight.W.Data[0] != 123 {
		t.Fatal("KernelMatrix does not share storage")
	}
}

func TestWalkModulesVisitsNested(t *testing.T) {
	r := prng.New(10)
	blk := newBasicBlockForTest(r, 2, 2, 1, 4, 4)
	net := NewSequential("net",
		NewConv2D("c0", r, 3, 2, 3, 1, 1, 4, 4),
		blk,
		NewFlatten("f"),
	)
	var names []string
	WalkModules(net, func(m Module) {
		if n, ok := m.(Named); ok {
			names = append(names, n.LayerName())
		}
	})
	// identity block: conv1, bn1, relu1, conv2, bn2 (no shortcut)
	want := []string{"c0", "block.conv1", "block.bn1", "block.relu1", "block.conv2", "block.bn2", "f"}
	if len(names) != len(want) {
		t.Fatalf("visited %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("visited %v, want %v", names, want)
		}
	}
}

func TestInferenceModeDropsCaches(t *testing.T) {
	r := prng.New(11)
	conv := NewConv2D("c", r, 1, 1, 3, 1, 1, 4, 4)
	x := randInput(r, 1, 1, 4, 4)
	conv.Forward(x, false)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward after eval-mode Forward did not panic")
		}
	}()
	conv.Backward(tensor.New(1, 1, 4, 4))
}
