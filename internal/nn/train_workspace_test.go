package nn

import (
	"testing"

	"seal/internal/parallel"
	"seal/internal/prng"
)

// TestTrainStepZeroAllocs is the allocation regression test for the
// training workspace path (mirroring TestConvInferenceZeroAllocs):
// after one warm-up step, a full train step — train-mode forward,
// softmax cross-entropy, backward, gradient clip, optimizer step — must
// not touch the heap. It pins the pool to one worker: the multi-worker
// paths allocate their dispatch closures and per-chunk panels, and the
// zero-alloc target is defined on a 1-core host. The net covers every
// backward-path layer kind (Conv2D, BatchNorm2D, ReLU, MaxPool2D,
// AvgPool2D, Flatten, Linear) plus a freeze mask, so a regression in
// any layer's buffer reuse fails the test.
func TestTrainStepZeroAllocs(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	net := trajNet(401)
	trajFreeze(net)
	r := prng.New(402)
	x := randomBatch(r, 8, 2, 8, 8)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = i % 4
	}
	params := net.Params()
	opt := NewSGD(0.05, 0.9, 1e-4)
	var ce SoftmaxCE

	step := func() {
		out := net.Forward(x, true)
		_, grad := ce.Loss(out, labels)
		net.Backward(grad)
		ClipGradNorm(params, 5)
		opt.Step(params)
	}
	step() // warm-up: builds every workspace and the SGD velocity state

	allocs := testing.AllocsPerRun(20, step)
	if allocs != 0 {
		t.Fatalf("warm train step allocates %.1f objects/op, want 0", allocs)
	}
}

// TestTrainStepZeroAllocsAdam repeats the check with Adam, whose moment
// buffers are created lazily on the first step and must be reused
// afterwards.
func TestTrainStepZeroAllocsAdam(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	net := trajNet(403)
	r := prng.New(404)
	x := randomBatch(r, 8, 2, 8, 8)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = i % 4
	}
	params := net.Params()
	opt := NewAdam(0.01)
	var ce SoftmaxCE

	step := func() {
		out := net.Forward(x, true)
		_, grad := ce.Loss(out, labels)
		net.Backward(grad)
		opt.Step(params)
	}
	step()

	allocs := testing.AllocsPerRun(20, step)
	if allocs != 0 {
		t.Fatalf("warm Adam train step allocates %.1f objects/op, want 0", allocs)
	}
}
