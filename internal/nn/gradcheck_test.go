package nn

import (
	"math"
	"testing"

	"seal/internal/prng"
	"seal/internal/tensor"
)

// numericalGrad estimates dLoss/dTheta for every element of theta by
// central differences, where loss() re-runs the forward pass.
func numericalGrad(theta *tensor.Tensor, loss func() float64, eps float32) *tensor.Tensor {
	g := tensor.New(theta.Shape...)
	for i := range theta.Data {
		orig := theta.Data[i]
		theta.Data[i] = orig + eps
		lp := loss()
		theta.Data[i] = orig - eps
		lm := loss()
		theta.Data[i] = orig
		g.Data[i] = float32((lp - lm) / (2 * float64(eps)))
	}
	return g
}

// checkGrads compares analytic and numeric gradients using relative L2
// error, which tolerates the isolated elements whose ±ε perturbation
// crosses a ReLU kink while still catching genuine backprop bugs.
func checkGrads(t *testing.T, name string, analytic, numeric *tensor.Tensor) {
	t.Helper()
	var diffSq, aSq, nSq float64
	for i := range analytic.Data {
		a, n := float64(analytic.Data[i]), float64(numeric.Data[i])
		diffSq += (a - n) * (a - n)
		aSq += a * a
		nSq += n * n
	}
	denom := math.Max(math.Sqrt(aSq), math.Sqrt(nSq))
	denom = math.Max(denom, 1e-8)
	rel := math.Sqrt(diffSq) / denom
	if rel > 0.03 {
		t.Fatalf("%s: relative L2 gradient error %.4f", name, rel)
	}
}

// lossOf runs a full train-mode forward + cross-entropy on a module.
func lossOf(m Module, x *tensor.Tensor, labels []int) float64 {
	out := m.Forward(x, true)
	if out.Rank() == 4 {
		n := out.Dim(0)
		out = out.Reshape(n, out.Size()/n)
	}
	l, _ := SoftmaxCrossEntropy(out, labels)
	return l
}

// backOf runs forward+backward once and returns dL/dx.
func backOf(m Module, x *tensor.Tensor, labels []int) *tensor.Tensor {
	out := m.Forward(x, true)
	shape4 := out.Rank() == 4
	var outShape []int
	if shape4 {
		outShape = append([]int(nil), out.Shape...)
		n := out.Dim(0)
		out = out.Reshape(n, out.Size()/n)
	}
	_, grad := SoftmaxCrossEntropy(out, labels)
	if shape4 {
		grad = grad.Reshape(outShape...)
	}
	return m.Backward(grad)
}

func TestConv2DGradients(t *testing.T) {
	r := prng.New(17)
	conv := NewConv2D("conv", r, 2, 3, 3, 1, 1, 5, 5)
	x := randInput(r, 2, 2, 5, 5)
	labels := []int{7, 42}

	ZeroGrads(conv.Params())
	dx := backOf(conv, x, labels)

	loss := func() float64 { return lossOf(conv, x, labels) }
	checkGrads(t, "conv weight", conv.Weight.Grad, numericalGrad(conv.Weight.W, loss, 1e-2))
	checkGrads(t, "conv bias", conv.Bias.Grad, numericalGrad(conv.Bias.W, loss, 1e-2))
	checkGrads(t, "conv input", dx, numericalGrad(x, loss, 1e-2))
}

func TestConv2DStridedGradients(t *testing.T) {
	r := prng.New(19)
	conv := NewConv2D("conv", r, 3, 2, 3, 2, 1, 6, 6)
	x := randInput(r, 1, 3, 6, 6)
	labels := []int{5}

	ZeroGrads(conv.Params())
	dx := backOf(conv, x, labels)
	loss := func() float64 { return lossOf(conv, x, labels) }
	checkGrads(t, "strided conv weight", conv.Weight.Grad, numericalGrad(conv.Weight.W, loss, 1e-2))
	checkGrads(t, "strided conv input", dx, numericalGrad(x, loss, 1e-2))
}

func TestLinearGradients(t *testing.T) {
	r := prng.New(23)
	lin := NewLinear("fc", r, 6, 4)
	x := randInput(r, 3, 6)
	labels := []int{0, 3, 1}

	ZeroGrads(lin.Params())
	dx := backOf(lin, x, labels)
	loss := func() float64 { return lossOf(lin, x, labels) }
	checkGrads(t, "linear weight", lin.Weight.Grad, numericalGrad(lin.Weight.W, loss, 1e-2))
	checkGrads(t, "linear bias", lin.Bias.Grad, numericalGrad(lin.Bias.W, loss, 1e-2))
	checkGrads(t, "linear input", dx, numericalGrad(x, loss, 1e-2))
}

func TestMaxPoolGradients(t *testing.T) {
	r := prng.New(29)
	pool := NewMaxPool2D("pool", 2, 2)
	x := randInput(r, 2, 1, 4, 4)
	labels := []int{1, 2}

	dx := backOf(pool, x, labels)
	loss := func() float64 { return lossOf(pool, x, labels) }
	checkGrads(t, "maxpool input", dx, numericalGrad(x, loss, 1e-3))
}

func TestAvgPoolGradients(t *testing.T) {
	r := prng.New(31)
	pool := NewAvgPool2D("pool", 2, 2)
	x := randInput(r, 2, 2, 4, 4)
	labels := []int{1, 6}

	dx := backOf(pool, x, labels)
	loss := func() float64 { return lossOf(pool, x, labels) }
	checkGrads(t, "avgpool input", dx, numericalGrad(x, loss, 1e-3))
}

func TestReLUGradients(t *testing.T) {
	r := prng.New(37)
	relu := NewReLU("relu")
	x := randInput(r, 2, 8)
	// keep values away from the kink to make the numeric check meaningful
	for i := range x.Data {
		if v := x.Data[i]; v > -0.05 && v < 0.05 {
			x.Data[i] = 0.2
		}
	}
	labels := []int{1, 5}
	dx := backOf(relu, x, labels)
	loss := func() float64 { return lossOf(relu, x, labels) }
	checkGrads(t, "relu input", dx, numericalGrad(x, loss, 1e-3))
}

func TestBatchNormGradients(t *testing.T) {
	r := prng.New(41)
	bn := NewBatchNorm2D("bn", 3)
	x := randInput(r, 4, 3, 3, 3)
	labels := []int{2, 9, 14, 25}

	ZeroGrads(bn.Params())
	dx := backOf(bn, x, labels)
	loss := func() float64 { return lossOf(bn, x, labels) }
	checkGrads(t, "bn gamma", bn.Gamma.Grad, numericalGrad(bn.Gamma.W, loss, 1e-2))
	checkGrads(t, "bn beta", bn.Beta.Grad, numericalGrad(bn.Beta.W, loss, 1e-2))
	checkGrads(t, "bn input", dx, numericalGrad(x, loss, 1e-2))
}

func TestResidualBlockGradients(t *testing.T) {
	r := prng.New(43)
	blk := newBasicBlockForTest(r, 2, 3, 2, 4, 4)
	x := randInput(r, 2, 2, 4, 4)
	labels := []int{1, 10}

	ZeroGrads(blk.Params())
	dx := backOf(blk, x, labels)
	loss := func() float64 { return lossOf(blk, x, labels) }
	checkGrads(t, "resblock conv1 weight", blk.Conv1.Weight.Grad, numericalGrad(blk.Conv1.Weight.W, loss, 1e-2))
	checkGrads(t, "resblock shortcut weight", blk.Shortcut.Weight.Grad, numericalGrad(blk.Shortcut.Weight.W, loss, 1e-2))
	checkGrads(t, "resblock input", dx, numericalGrad(x, loss, 1e-2))
}

// newBasicBlockForTest builds a projection residual block without pulling
// in the models package (which depends on nn).
func newBasicBlockForTest(r *prng.Source, inC, outC, stride, inH, inW int) *ResidualBlock {
	b := &ResidualBlock{
		Name:  "block",
		Conv1: NewConv2D("block.conv1", r, inC, outC, 3, stride, 1, inH, inW),
		BN1:   NewBatchNorm2D("block.bn1", outC),
		Relu1: NewReLU("block.relu1"),
	}
	oh, ow := b.Conv1.Geom.OutH(), b.Conv1.Geom.OutW()
	b.Conv2 = NewConv2D("block.conv2", r, outC, outC, 3, 1, 1, oh, ow)
	b.BN2 = NewBatchNorm2D("block.bn2", outC)
	if stride != 1 || inC != outC {
		b.Shortcut = NewConv2D("block.shortcut", r, inC, outC, 1, stride, 0, inH, inW)
		b.ShortcutBN = NewBatchNorm2D("block.shortcutbn", outC)
	}
	return b
}

func randInput(r *prng.Source, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = float32(r.NormFloat64())
	}
	return x
}
