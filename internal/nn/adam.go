package nn

import (
	"math"

	"seal/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba) with bias-corrected
// first and second moment estimates. Like SGD it honours per-parameter
// freeze masks, so it can drive SEAL substitute fine-tuning as well.
type Adam struct {
	LR          float32
	Beta1       float32
	Beta2       float32
	Eps         float32
	WeightDecay float32

	step int
	m    map[*Param]*tensor.Tensor
	v    map[*Param]*tensor.Tensor
}

// NewAdam constructs an Adam optimizer with the conventional defaults
// for the moment decay rates.
func NewAdam(lr float32) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param]*tensor.Tensor{},
		v: map[*Param]*tensor.Tensor{},
	}
}

// Step applies one update to every parameter and clears the gradients.
func (o *Adam) Step(params []*Param) {
	o.step++
	c1 := 1 - float64(math.Pow(float64(o.Beta1), float64(o.step)))
	c2 := 1 - float64(math.Pow(float64(o.Beta2), float64(o.step)))
	for _, p := range params {
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = tensor.New(p.W.Shape...)
			v = tensor.New(p.W.Shape...)
			o.m[p] = m
			o.v[p] = v
		}
		for i := range p.W.Data {
			if p.Mask != nil && p.Mask.Data[i] == 0 {
				continue
			}
			g := p.Grad.Data[i] + o.WeightDecay*p.W.Data[i]
			m.Data[i] = o.Beta1*m.Data[i] + (1-o.Beta1)*g
			v.Data[i] = o.Beta2*v.Data[i] + (1-o.Beta2)*g*g
			mh := float64(m.Data[i]) / c1
			vh := float64(v.Data[i]) / c2
			p.W.Data[i] -= o.LR * float32(mh/(math.Sqrt(vh)+float64(o.Eps)))
		}
		p.ZeroGrad()
	}
}
