package nn

import (
	"math"

	"seal/internal/tensor"
)

// Adam implements the Adam optimizer (Kingma & Ba) with bias-corrected
// first and second moment estimates. Like SGD it honours per-parameter
// freeze masks, so it can drive SEAL substitute fine-tuning as well.
type Adam struct {
	LR          float32
	Beta1       float32
	Beta2       float32
	Eps         float32
	WeightDecay float32

	step   int
	c1, c2 float64 // bias corrections for the current step
	m      map[*Param]*tensor.Tensor
	v      map[*Param]*tensor.Tensor
}

// NewAdam constructs an Adam optimizer with the conventional defaults
// for the moment decay rates.
func NewAdam(lr float32) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*Param]*tensor.Tensor{},
		v: map[*Param]*tensor.Tensor{},
	}
}

// Step applies one update to every parameter and clears the gradients.
// Like SGD.Step, the per-element mask branch is hoisted via the shared
// nextRun scanner and the independent per-parameter updates fan out
// across the worker pool.
func (o *Adam) Step(params []*Param) {
	o.step++
	o.c1 = 1 - float64(math.Pow(float64(o.Beta1), float64(o.step)))
	o.c2 = 1 - float64(math.Pow(float64(o.Beta2), float64(o.step)))
	// Lazy moment creation is a map write, so it must happen serially
	// before the parameters fan out.
	for _, p := range params {
		if o.m[p] == nil {
			o.m[p] = tensor.New(p.W.Shape...)
			o.v[p] = tensor.New(p.W.Shape...)
		}
	}
	stepParams(o, params)
}

// stepOne implements stepper.
func (o *Adam) stepOne(p *Param) {
	m, v := o.m[p].Data, o.v[p].Data
	if p.Mask == nil {
		o.adamRange(p.W.Data, p.Grad.Data, m, v, 0, len(p.W.Data))
		return
	}
	mk := p.Mask.Data
	for lo, hi := nextRun(mk, 0); lo < len(mk); lo, hi = nextRun(mk, hi) {
		o.adamRange(p.W.Data, p.Grad.Data, m, v, lo, hi)
	}
}

// adamRange is the dense update kernel for elements [lo, hi),
// arithmetic-identical to the historical per-element loop.
func (o *Adam) adamRange(w, grad, m, v []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		g := grad[i] + o.WeightDecay*w[i]
		m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
		v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
		mh := float64(m[i]) / o.c1
		vh := float64(v[i]) / o.c2
		w[i] -= o.LR * float32(mh/(math.Sqrt(vh)+float64(o.Eps)))
	}
}
