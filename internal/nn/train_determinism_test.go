package nn

import (
	"encoding/json"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"seal/internal/parallel"
	"seal/internal/prng"
	"seal/internal/tensor"
)

// trajGolden is the schema of testdata/train_golden.json: per-step
// losses (hex float64, exact round-trip) and an FNV-64a hash of the
// final weight bytes for every optimizer × mask scenario. The file is
// generated with SEAL_UPDATE_GOLDEN=1 and pins training trajectories
// bit-for-bit across refactors of the backward/optimizer hot path.
type trajGolden struct {
	Scenarios map[string]trajResult `json:"scenarios"`
}

type trajResult struct {
	Losses  []string `json:"losses"`
	Weights string   `json:"weights"`
}

// trajNet builds the trajectory net: one of every backward-path layer
// kind (Conv2D with bias, BatchNorm2D, ReLU, MaxPool2D, AvgPool2D,
// Flatten, Linear), small enough for 10 steps in milliseconds.
func trajNet(seed uint64) *Sequential {
	r := prng.New(seed)
	return NewSequential("traj",
		NewConv2D("c1", r, 2, 4, 3, 1, 1, 8, 8),
		NewBatchNorm2D("bn1", 4),
		NewReLU("r1"),
		NewMaxPool2D("p1", 2, 2),
		NewAvgPool2D("p2", 2, 2),
		NewFlatten("flat"),
		NewLinear("fc", r, 4*2*2, 4),
	)
}

// trajFreeze installs the SEAL-style freeze masks the substitute runs
// use: the first half of the conv kernel and the first output row of
// the FC weight are pinned, everything else stays trainable.
func trajFreeze(net *Sequential) {
	var conv *Conv2D
	var fc *Linear
	WalkModules(net, func(m Module) {
		switch v := m.(type) {
		case *Conv2D:
			conv = v
		case *Linear:
			fc = v
		}
	})
	conv.Weight.Mask = tensor.New(conv.Weight.W.Shape...)
	for i := conv.Weight.W.Size() / 2; i < conv.Weight.W.Size(); i++ {
		conv.Weight.Mask.Data[i] = 1
	}
	fc.Weight.Mask = tensor.New(fc.Weight.W.Shape...)
	for i := fc.Out / 2 * fc.In; i < fc.Weight.W.Size(); i++ {
		fc.Weight.Mask.Data[i] = 1
	}
}

// trajOptimizer is satisfied by both SGD and Adam.
type trajOptimizer interface{ Step(params []*Param) }

// runTrajectory trains the scenario net for 10 steps on a fixed batch
// and returns the per-step losses plus the final-weight hash.
func runTrajectory(t *testing.T, optName string, masked bool) trajResult {
	t.Helper()
	net := trajNet(101)
	if masked {
		trajFreeze(net)
	}
	r := prng.New(202)
	x := randomBatch(r, 8, 2, 8, 8)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = i % 4
	}
	var opt trajOptimizer
	switch optName {
	case "sgd":
		opt = NewSGD(0.05, 0.9, 1e-4)
	case "adam":
		opt = NewAdam(0.01)
	default:
		t.Fatalf("unknown optimizer %q", optName)
	}
	params := net.Params()
	res := trajResult{}
	for step := 0; step < 10; step++ {
		out := net.Forward(x, true)
		loss, grad := SoftmaxCrossEntropy(out, labels)
		net.Backward(grad)
		ClipGradNorm(params, 5)
		opt.Step(params)
		res.Losses = append(res.Losses, strconv.FormatFloat(loss, 'x', -1, 64))
	}
	h := fnv.New64a()
	var buf [4]byte
	for _, p := range params {
		for _, v := range p.W.Data {
			bits := math.Float32bits(v)
			buf[0] = byte(bits)
			buf[1] = byte(bits >> 8)
			buf[2] = byte(bits >> 16)
			buf[3] = byte(bits >> 24)
			h.Write(buf[:])
		}
	}
	res.Weights = strconv.FormatUint(h.Sum64(), 16)
	return res
}

var trajScenarios = []struct {
	name   string
	opt    string
	masked bool
}{
	{"sgd", "sgd", false},
	{"sgd_masked", "sgd", true},
	{"adam", "adam", false},
	{"adam_masked", "adam", true},
}

// TestTrainTrajectoryDeterministic is the training-path determinism
// property test: a 10-step trajectory (per-step loss and final weights)
// must be bit-identical run-to-run, between the default pool width and
// SEAL_WORKERS=1, and to the golden generated before the zero-allocation
// training path landed — covering Conv2D/Linear/BatchNorm/pool backward
// and both optimizers, with and without freeze masks.
func TestTrainTrajectoryDeterministic(t *testing.T) {
	goldenPath := filepath.Join("testdata", "train_golden.json")
	update := os.Getenv("SEAL_UPDATE_GOLDEN") != ""

	got := map[string]trajResult{}
	for _, sc := range trajScenarios {
		first := runTrajectory(t, sc.opt, sc.masked)
		again := runTrajectory(t, sc.opt, sc.masked)
		compareTraj(t, sc.name+" (run-to-run)", first, again)

		prev := parallel.SetWorkers(1)
		serial := runTrajectory(t, sc.opt, sc.masked)
		parallel.SetWorkers(8)
		wide := runTrajectory(t, sc.opt, sc.masked)
		parallel.SetWorkers(prev)
		compareTraj(t, sc.name+" (workers=1 vs default)", first, serial)
		compareTraj(t, sc.name+" (workers=8)", first, wide)

		got[sc.name] = first
	}

	if update {
		data, err := json.MarshalIndent(trajGolden{Scenarios: got}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (regenerate with SEAL_UPDATE_GOLDEN=1): %v", err)
	}
	var want trajGolden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	for _, sc := range trajScenarios {
		w, ok := want.Scenarios[sc.name]
		if !ok {
			t.Fatalf("golden missing scenario %q", sc.name)
		}
		compareTraj(t, sc.name+" (vs golden)", w, got[sc.name])
	}
}

func compareTraj(t *testing.T, what string, want, got trajResult) {
	t.Helper()
	if len(want.Losses) != len(got.Losses) {
		t.Fatalf("%s: %d losses, want %d", what, len(got.Losses), len(want.Losses))
	}
	for i := range want.Losses {
		// Compare through the hex-float representation: it round-trips
		// float64 exactly, so equality here is bit equality.
		if want.Losses[i] != got.Losses[i] {
			t.Fatalf("%s: step-%d loss %s, want %s", what, i, got.Losses[i], want.Losses[i])
		}
	}
	if want.Weights != got.Weights {
		t.Fatalf("%s: final weight hash %s, want %s", what, got.Weights, want.Weights)
	}
}
