package nn

import (
	"testing"

	"seal/internal/prng"
	"seal/internal/tensor"
)

func TestAdamReducesLoss(t *testing.T) {
	r := prng.New(61)
	lin := NewLinear("fc", r, 8, 3)
	x := randInput(r, 16, 8)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 3
	}
	opt := NewAdam(0.01)
	first := lossOf(lin, x, labels)
	loss := first
	for step := 0; step < 150; step++ {
		out := lin.Forward(x, true)
		var grad *tensor.Tensor
		loss, grad = SoftmaxCrossEntropy(out, labels)
		lin.Backward(grad)
		opt.Step(lin.Params())
	}
	if loss >= first*0.5 {
		t.Fatalf("Adam failed to reduce loss: %v -> %v", first, loss)
	}
}

func TestAdamRespectsFreezeMask(t *testing.T) {
	r := prng.New(62)
	lin := NewLinear("fc", r, 4, 2)
	frozen := lin.Weight.W.Clone()
	lin.Weight.FreezeAll()
	lin.Bias.FreezeAll()
	x := randInput(r, 8, 4)
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	opt := NewAdam(0.05)
	for step := 0; step < 5; step++ {
		out := lin.Forward(x, true)
		_, grad := SoftmaxCrossEntropy(out, labels)
		lin.Backward(grad)
		opt.Step(lin.Params())
	}
	for i := range frozen.Data {
		if lin.Weight.W.Data[i] != frozen.Data[i] {
			t.Fatal("frozen weight moved under Adam")
		}
	}
}

func TestAdamOutpacesPlainSGDOnIllConditionedProblem(t *testing.T) {
	// Scale one input feature by 100×: per-parameter step normalization
	// should let Adam make progress where a fixed-LR SGD creeps.
	run := func(useAdam bool) float64 {
		r := prng.New(63)
		lin := NewLinear("fc", r, 4, 2)
		x := randInput(r, 32, 4)
		for i := 0; i < 32; i++ {
			x.Data[i*4] *= 100
		}
		labels := make([]int, 32)
		for i := range labels {
			labels[i] = i % 2
		}
		var loss float64
		var sgd *SGD
		var adam *Adam
		if useAdam {
			adam = NewAdam(0.01)
		} else {
			sgd = NewSGD(0.0001, 0, 0) // LR bounded by the 100× feature
		}
		for step := 0; step < 60; step++ {
			out := lin.Forward(x, true)
			var grad *tensor.Tensor
			loss, grad = SoftmaxCrossEntropy(out, labels)
			lin.Backward(grad)
			if useAdam {
				adam.Step(lin.Params())
			} else {
				sgd.Step(lin.Params())
			}
		}
		return loss
	}
	adamLoss := run(true)
	sgdLoss := run(false)
	if adamLoss >= sgdLoss {
		t.Fatalf("Adam (%v) not better than tiny-LR SGD (%v) on ill-conditioned problem", adamLoss, sgdLoss)
	}
}
