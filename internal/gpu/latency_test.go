package gpu

import "testing"

// TestCounterModeLatencyAdvantage verifies the architectural reason
// counter mode exists (paper §II-B): with a hot counter cache the
// one-time pad is computed WHILE the data line is fetched, so a
// latency-bound encrypted read completes sooner than under direct
// encryption, where AES can only start after the data returns.
func TestCounterModeLatencyAdvantage(t *testing.T) {
	run := func(mode EncMode) float64 {
		cfg := smallCfg().WithMode(mode, nil)
		cfg.MaxOutstanding = 1 // serialize: expose per-request latency
		s := mustSim(t, cfg)
		// sequential lines share counter blocks → counter hits after the
		// first line of each block
		res := mustRun(t, s, []Stream{readStream(512, 0, 0)})
		return res.Cycles
	}
	direct := run(ModeDirect)
	counter := run(ModeCounter)
	if counter >= direct {
		t.Fatalf("counter mode (%v cycles) not faster than direct (%v) in the latency-bound regime", counter, direct)
	}
	// the gap should be roughly the engine pipeline latency per request
	perReq := (direct - counter) / 512
	if perReq < 5 {
		t.Fatalf("latency advantage %.1f cycles/request too small to be the pad overlap", perReq)
	}
}

// TestCounterModeBandwidthEquivalence: once requests pipeline deeply,
// both modes hit the same engine-throughput wall — the reason the paper
// finds Counter no faster than Direct overall (§II-B).
func TestCounterModeBandwidthEquivalence(t *testing.T) {
	run := func(mode EncMode) float64 {
		cfg := smallCfg().WithMode(mode, nil)
		s := mustSim(t, cfg)
		res := mustRun(t, s, []Stream{readStream(6000, 0, 0), readStream(6000, 1<<22, 0)})
		return res.Cycles
	}
	direct := run(ModeDirect)
	counter := run(ModeCounter)
	ratio := counter / direct
	if ratio < 0.85 || ratio > 1.25 {
		t.Fatalf("bandwidth-bound counter/direct ratio %v, want ≈1", ratio)
	}
}

// TestEngineThroughputCeiling: a fully encrypted stream cannot exceed
// the aggregate engine bandwidth regardless of DRAM headroom.
func TestEngineThroughputCeiling(t *testing.T) {
	cfg := smallCfg().WithMode(ModeDirect, nil)
	s := mustSim(t, cfg)
	const n = 8000
	res := mustRun(t, s, []Stream{readStream(n, 0, 0), readStream(n, 1<<22, 0)})
	bytesPerCycle := float64(res.EngineBytes()) / res.Cycles
	// 2 channels × 8 GB/s at 700 MHz = 22.86 B/cycle ceiling
	ceiling := cfg.EngineSpec.ThroughputGBs * 1e9 / cfg.CoreClockHz * float64(cfg.Channels)
	if bytesPerCycle > ceiling*1.02 {
		t.Fatalf("engine throughput %v B/cycle above the %v ceiling", bytesPerCycle, ceiling)
	}
	// and it should be close to the ceiling (the stream saturates it)
	if bytesPerCycle < ceiling*0.8 {
		t.Fatalf("engine throughput %v B/cycle far below the %v ceiling — not engine-bound", bytesPerCycle, ceiling)
	}
}

// TestBaselineBandwidthCeiling: the unencrypted stream saturates close
// to the configured DRAM bandwidth instead.
func TestBaselineBandwidthCeiling(t *testing.T) {
	cfg := smallCfg()
	s := mustSim(t, cfg)
	const n = 8000
	res := mustRun(t, s, []Stream{readStream(n, 0, 0), readStream(n, 1<<22, 0)})
	bytesPerCycle := float64(res.DRAMBytes()) / res.Cycles
	ceiling := cfg.DRAM.BytesPerCycle * float64(cfg.Channels)
	if bytesPerCycle < ceiling*0.75 || bytesPerCycle > ceiling*1.02 {
		t.Fatalf("baseline DRAM throughput %v B/cycle vs ceiling %v", bytesPerCycle, ceiling)
	}
}
