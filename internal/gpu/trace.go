package gpu

// Op is one unit of a per-SM trace: Compute warp-instructions of
// arithmetic followed by at most one memory access. Memory addresses are
// physical line-granularity addresses into the simulated DRAM space; the
// partition consults Config.Protected to decide whether a line takes the
// encryption path.
type Op struct {
	Compute int    // warp instructions of compute preceding the access
	Addr    uint64 // line address of the access (ignored if NoMem)
	Write   bool
	NoMem   bool // pure-compute op (used for trailing arithmetic)
}

// Stream is the in-order instruction trace of one SM.
type Stream []Op

// WarpInsts returns the total warp instructions in the stream (compute
// plus one per memory access).
func (s Stream) WarpInsts() int64 {
	var n int64
	for _, op := range s {
		n += int64(op.Compute)
		if !op.NoMem {
			n++
		}
	}
	return n
}

// MemOps returns the number of memory accesses in the stream.
func (s Stream) MemOps() int64 {
	var n int64
	for _, op := range s {
		if !op.NoMem {
			n++
		}
	}
	return n
}

// totals returns WarpInsts and MemOps in a single pass; the stat mode
// needs both per Run and the streams can be large.
func (s Stream) totals() (warp, mem int64) {
	for _, op := range s {
		warp += int64(op.Compute)
		if !op.NoMem {
			warp++
			mem++
		}
	}
	return warp, mem
}
