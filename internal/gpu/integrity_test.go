package gpu

import "testing"

func integrityCfg(mode EncMode) Config {
	cfg := smallCfg().WithMode(mode, nil)
	cfg.Integrity = true
	return cfg
}

func TestIntegrityRequiresEncryption(t *testing.T) {
	cfg := smallCfg()
	cfg.Integrity = true
	if _, err := New(cfg); err == nil {
		t.Fatal("integrity without encryption accepted")
	}
}

func TestIntegrityAddsMACTraffic(t *testing.T) {
	// strided reads: each touches a fresh MAC block with a small cache
	cfg := integrityCfg(ModeDirect)
	cfg.MAC.CacheSizeBytes = 1024
	s := mustSim(t, cfg)
	n := 1000
	st := make(Stream, n)
	for i := range st {
		st[i] = Op{Addr: uint64(i) * 64 * 8 * 64}
	}
	res := mustRun(t, s, []Stream{st})
	var macReads uint64
	for _, p := range res.Parts {
		macReads += p.MACReads
	}
	if macReads < uint64(n)/2 {
		t.Fatalf("MAC reads = %d, want ≥%d for strided authenticated traffic", macReads, n/2)
	}
}

func TestIntegrityCostsPerformance(t *testing.T) {
	streams := func() []Stream {
		return []Stream{readStream(3000, 0, 1), readStream(3000, 1<<22, 1)}
	}
	plain := mustRun(t, mustSim(t, smallCfg().WithMode(ModeDirect, nil)), streams())
	auth := mustRun(t, mustSim(t, integrityCfg(ModeDirect)), streams())
	if auth.IPC > plain.IPC {
		t.Fatalf("authenticated run faster than unauthenticated: %v vs %v", auth.IPC, plain.IPC)
	}
	if auth.Cycles <= plain.Cycles {
		t.Fatalf("integrity added no cycles: %v vs %v", auth.Cycles, plain.Cycles)
	}
}

func TestIntegritySkipsBypassedLines(t *testing.T) {
	// SEAL + integrity: only protected lines get MAC lookups.
	half := func(addr uint64) bool { return (addr/64)%2 == 0 }
	cfg := smallCfg().WithMode(ModeDirect, half)
	cfg.Integrity = true
	s := mustSim(t, cfg)
	res := mustRun(t, s, []Stream{readStream(4000, 0, 0)})

	full := mustRun(t, mustSim(t, integrityCfg(ModeDirect)), []Stream{readStream(4000, 0, 0)})

	var sealMac, fullMac uint64
	for i := range res.Parts {
		sealMac += res.Parts[i].MACReads
		fullMac += full.Parts[i].MACReads
	}
	if sealMac >= fullMac {
		t.Fatalf("SEAL integrity MAC reads %d not below full %d", sealMac, fullMac)
	}
}

func TestIntegrityEvictionsUpdateMACs(t *testing.T) {
	cfg := integrityCfg(ModeDirect)
	s := mustSim(t, cfg)
	n := 3 * cfg.L2Slice.SizeBytes * cfg.Channels / cfg.LineBytes
	res := mustRun(t, s, []Stream{writeStream(n, 0)})
	var macWrites, macReads uint64
	for _, p := range res.Parts {
		macWrites += p.MACWrites
		macReads += p.MACReads
	}
	if macWrites+macReads == 0 {
		t.Fatal("authenticated writebacks produced no MAC activity")
	}
}

func TestIntegrityWithCounterMode(t *testing.T) {
	cfg := integrityCfg(ModeCounter)
	s := mustSim(t, cfg)
	res := mustRun(t, s, []Stream{readStream(2000, 0, 1)})
	if res.MemRequests != 2000 {
		t.Fatalf("requests lost: %d", res.MemRequests)
	}
	var macReads uint64
	for _, p := range res.Parts {
		macReads += p.MACReads
	}
	// sequential traffic hits the MAC cache mostly, but cold blocks fetch
	if macReads == 0 {
		t.Fatal("no MAC fetches on cold authenticated traffic")
	}
}
