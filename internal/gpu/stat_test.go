package gpu

import (
	"fmt"
	"math"
	"os"
	"reflect"
	"testing"

	"seal/internal/prng"
)

// steadyStreams builds statistically stationary per-SM workloads: a
// fixed per-op distribution of compute and memory traffic over a large
// span, the regime the stat mode's steady-state extrapolation targets.
func steadyStreams(r *prng.Source, numSMs, ops int, span uint64, computeMax int) []Stream {
	streams := make([]Stream, numSMs)
	for i := range streams {
		st := make(Stream, ops)
		for j := range st {
			op := Op{Addr: uint64(r.Intn(int(span))) &^ 63}
			if computeMax > 0 {
				op.Compute = r.Intn(computeMax)
			}
			if r.Intn(5) == 0 {
				op.Write = true
			}
			st[j] = op
		}
		streams[i] = st
	}
	return streams
}

// randStatConfig perturbs the GTX480 model along the axes that change
// the steady state the stat mode must measure: SM/channel counts, issue
// width, MSHR depth, encryption mode, and integrity.
func randStatConfig(r *prng.Source) Config {
	cfg := ConfigGTX480()
	cfg.NumSMs = 2 + r.Intn(6)
	cfg.Channels = 1 + r.Intn(4)
	cfg.IssueWidth = 1 + r.Intn(3)
	cfg.MaxOutstanding = 8 + r.Intn(40)
	cfg.L2Slice.SizeBytes = 64 * 64 * 8 // small L2: sustained DRAM traffic
	mode := EncMode(r.Intn(3))
	var fn EncFn
	if r.Intn(2) == 0 {
		fn = func(addr uint64) bool { return addr&128 == 0 }
	}
	cfg = cfg.WithMode(mode, fn)
	if mode != ModeNone && r.Intn(2) == 0 {
		cfg.Integrity = true
	}
	return cfg
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// statTol is the stated stat-vs-exact tolerance of the randomized
// property test below: adversarially random configurations with small
// caches and mixed encryption modes. The Fig-7 golden metrics are held
// to the tighter ≤2% bound in internal/exp and cmd/sealsim.
const statTol = 0.10

// TestStatMatchesExactWithinTolerance is the stat mode's validation
// property: over randomized configurations and stationary workloads,
// closing a run analytically must reproduce the exact scheduler's
// cycles and IPC within the stated tolerance, and the work totals (warp
// instructions, thread instructions, memory requests) exactly.
func TestStatMatchesExactWithinTolerance(t *testing.T) {
	if os.Getenv("SEAL_SIM_REF") == "1" {
		t.Skip("reference mode disables stat mode by design")
	}
	closedRuns := 0
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := prng.New(seed)
			cfg := randStatConfig(r)
			statCfg := cfg
			statCfg.Stat = DefaultStatConfig()

			exact := mustSim(t, cfg)
			stat := mustSim(t, statCfg)

			streams := steadyStreams(prng.New(seed*77), cfg.NumSMs, 3000+r.Intn(3000), 1<<22, 6)
			eRes := mustRun(t, exact, streams)
			sRes := mustRun(t, stat, streams)

			if sRes.WarpInsts != eRes.WarpInsts || sRes.ThreadInsts != eRes.ThreadInsts || sRes.MemRequests != eRes.MemRequests {
				t.Fatalf("work totals diverged: stat %+v exact %+v", sRes, eRes)
			}
			if e := relErr(sRes.Cycles, eRes.Cycles); e > statTol {
				t.Errorf("cycles off by %.1f%%: stat %.0f exact %.0f (ExactFrac %.2f)",
					e*100, sRes.Cycles, eRes.Cycles, sRes.ExactFrac)
			}
			if e := relErr(sRes.IPC, eRes.IPC); e > statTol {
				t.Errorf("IPC off by %.1f%%: stat %.1f exact %.1f", e*100, sRes.IPC, eRes.IPC)
			}
			// Synthesized memory-side counters carry the loosest bound:
			// writeback and counter-fetch traffic keeps ramping after the
			// measured window as the caches fill, so scaled estimates can
			// sit well off the exact counts at very low ExactFrac.
			if e := relErr(float64(sRes.DRAMBytes()), float64(eRes.DRAMBytes())); e > 3*statTol {
				t.Errorf("DRAM bytes off by %.1f%%: stat %d exact %d", e*100, sRes.DRAMBytes(), eRes.DRAMBytes())
			}
			t.Logf("ExactFrac %.3f cycErr %.2f%% ipcErr %.2f%% bytesErr %.2f%%",
				sRes.ExactFrac,
				relErr(sRes.Cycles, eRes.Cycles)*100,
				relErr(sRes.IPC, eRes.IPC)*100,
				relErr(float64(sRes.DRAMBytes()), float64(eRes.DRAMBytes()))*100)
			if sRes.ExactFrac < 1 {
				closedRuns++
			}
		})
	}
	// The property is vacuous if no run ever closed analytically.
	if closedRuns == 0 {
		t.Fatalf("no run closed analytically; stat mode never engaged")
	}
}

// TestStatNoConvergenceStaysExact pins the fallback: when the windows
// never converge (here: closing is never worthwhile by MinRemaining),
// the stat mode must return the exact scheduler's Result bit for bit.
func TestStatNoConvergenceStaysExact(t *testing.T) {
	if os.Getenv("SEAL_SIM_REF") == "1" {
		t.Skip("reference mode disables stat mode by design")
	}
	cfg := smallCfg()
	statCfg := cfg
	statCfg.Stat = DefaultStatConfig()
	statCfg.Stat.MinRemaining = 0.99 // nothing past the warm-up is "worth closing"

	exact := mustSim(t, cfg)
	stat := mustSim(t, statCfg)
	streams := steadyStreams(prng.New(9), cfg.NumSMs, 2000, 1<<20, 4)
	eRes := mustRun(t, exact, streams)
	sRes := mustRun(t, stat, streams)
	if !reflect.DeepEqual(eRes, sRes) {
		t.Fatalf("unclosed stat run diverged from exact:\nstat:  %+v\nexact: %+v", sRes, eRes)
	}
	if sRes.ExactFrac != 1 {
		t.Fatalf("unclosed run reported ExactFrac %v", sRes.ExactFrac)
	}
}

// TestStatReferencePrecedence pins the CI contract: reference mode
// (Config.Reference / SEAL_SIM_REF=1) silently disables stat mode, so
// the ground-truth path is exact under every configuration.
func TestStatReferencePrecedence(t *testing.T) {
	cfg := smallCfg()
	cfg.Stat = DefaultStatConfig()
	cfg.Reference = true
	plain := smallCfg()
	plain.Reference = true

	ref := mustSim(t, cfg)
	want := mustSim(t, plain)
	streams := steadyStreams(prng.New(3), cfg.NumSMs, 2500, 1<<20, 4)
	got := mustRun(t, ref, streams)
	exp := mustRun(t, want, streams)
	if !reflect.DeepEqual(got, exp) {
		t.Fatalf("reference+stat diverged from reference:\ngot:  %+v\nwant: %+v", got, exp)
	}
}

// TestStatResetClearsSynth pins that Reset drops synthesized counters
// along with the real ones: two identical runs from Reset must agree.
func TestStatResetClearsSynth(t *testing.T) {
	if os.Getenv("SEAL_SIM_REF") == "1" {
		t.Skip("reference mode disables stat mode by design")
	}
	cfg := ConfigGTX480().WithMode(ModeDirect, nil)
	cfg.NumSMs, cfg.Channels = 4, 2
	cfg.Stat = DefaultStatConfig()
	s := mustSim(t, cfg)
	streams := steadyStreams(prng.New(5), cfg.NumSMs, 4000, 1<<22, 5)
	first := mustRun(t, s, streams)
	s.Reset()
	second := mustRun(t, s, streams)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("run after Reset diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// TestStatConfigValidate exercises the knob validation.
func TestStatConfigValidate(t *testing.T) {
	if err := (StatConfig{}).Validate(); err != nil {
		t.Fatalf("zero StatConfig should be valid (disabled): %v", err)
	}
	good := DefaultStatConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default StatConfig invalid: %v", err)
	}
	for _, mut := range []func(*StatConfig){
		func(c *StatConfig) { c.WindowFrac = 0 },
		func(c *StatConfig) { c.WarmupFrac = -1 },
		func(c *StatConfig) { c.MaxWindowFrac = c.WindowFrac / 2 },
		func(c *StatConfig) { c.RelTol = 0 },
		func(c *StatConfig) { c.AbsTol = -0.1 },
		func(c *StatConfig) { c.LooseFactor = 0.5 },
		func(c *StatConfig) { c.TrendTol = 0 },
		func(c *StatConfig) { c.StableWindows = 0 },
		func(c *StatConfig) { c.MinRemaining = 1 },
	} {
		c := DefaultStatConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("invalid StatConfig accepted: %+v", c)
		}
	}
}
