// Package gpu implements the trace-driven cycle simulator for the secure
// GPU. Streaming multiprocessors (SMs) replay per-SM instruction/memory
// traces; memory requests traverse an interconnect, a per-channel L2
// slice, the optional memory-encryption path (direct or counter mode,
// one AES engine per memory controller) and a GDDR5 channel. The model
// reproduces the bandwidth structure of the paper's GPGPU-Sim setup
// (§IV-A): what throttles encrypted runs is the ~8 GB/s engine sitting
// in front of a ~30 GB/s channel.
package gpu

import (
	"fmt"

	"seal/internal/cache"
	"seal/internal/dram"
	"seal/internal/engine"
)

// EncMode selects the memory-encryption scheme of the simulated GPU.
type EncMode int

// Encryption modes evaluated by the paper.
const (
	// ModeNone is the insecure baseline GPU.
	ModeNone EncMode = iota
	// ModeDirect encrypts lines with AES directly: the engine sits in
	// series with every protected DRAM transfer.
	ModeDirect
	// ModeCounter uses counter-mode encryption: pad generation overlaps
	// the data access when the per-line counter hits in the counter
	// cache, but misses add a counter fetch from DRAM.
	ModeCounter
)

// String implements fmt.Stringer.
func (m EncMode) String() string {
	switch m {
	case ModeNone:
		return "Baseline"
	case ModeDirect:
		return "Direct"
	case ModeCounter:
		return "Counter"
	default:
		return fmt.Sprintf("EncMode(%d)", int(m))
	}
}

// EncFn reports whether the line containing addr holds ciphertext. The
// SEAL layout (internal/core) provides this predicate; full encryption
// is func(uint64) bool { return true }.
type EncFn func(addr uint64) bool

// Config describes the simulated GPU.
type Config struct {
	NumSMs          int     // streaming multiprocessors (GTX480: 15)
	IssueWidth      int     // warp instructions issued per SM per cycle
	LanesPerWarp    int     // thread instructions per warp instruction (32)
	MaxOutstanding  int     // per-SM in-flight memory requests (MSHRs)
	InterconnectLat float64 // one-way SM↔partition latency, core cycles
	L2Latency       float64 // L2 slice access latency, core cycles
	CoreClockHz     float64
	LineBytes       int

	Channels int          // memory partitions (GTX480: 6)
	L2Slice  cache.Config // per-partition L2 slice
	DRAM     dram.Config  // per-channel GDDR5 model

	Mode       EncMode
	EngineSpec engine.Spec          // per-partition AES engine
	Counter    engine.CounterConfig // counter-mode bookkeeping (per partition)
	Protected  EncFn                // nil means nothing is encrypted

	// Integrity additionally authenticates every protected line with a
	// per-line MAC (Yan et al. [24] pair memory encryption with
	// authentication). MACs pack into line-sized blocks cached on chip;
	// a MAC-cache miss costs an extra DRAM fetch and verification must
	// complete before a read's data is released. SEAL's bypassed lines
	// skip the MAC as well — authenticating public data defends nothing
	// the threat model cares about (the adversary is a reader).
	Integrity bool
	MAC       engine.CounterConfig // MAC bookkeeping (per partition)
	MACVerify float64              // verification latency, core cycles

	// Reference selects the per-cycle reference scheduler instead of the
	// default event-driven fast-forward. Both produce bit-identical
	// Results; the reference path exists as the semantic ground truth for
	// equivalence tests and debugging. The SEAL_SIM_REF=1 environment
	// variable forces it process-wide at Sim construction time.
	Reference bool

	// Stat configures the statistical fast-sim mode (DESIGN.md §17):
	// each Run executes the exact event-driven scheduler through a
	// warm-up plus measurement windows, and once the per-partition rates
	// converge the remainder of the run is closed analytically. Results
	// are estimates within a validated tolerance, not bit-identical.
	// Reference mode (Config.Reference / SEAL_SIM_REF=1) takes
	// precedence and silently disables stat mode, so the ground-truth
	// path stays exact under every configuration.
	Stat StatConfig
}

// StatConfig tunes the statistical fast-sim mode. The zero value
// disables it; DefaultStatConfig returns knobs calibrated for
// paper-scale (Fig-7) workloads.
type StatConfig struct {
	Enable bool

	// Warm-up and windows are measured in work — fractions of the Run's
	// total warp instructions — not in cycles. Work-based windows pin
	// every measurement to a stream position, so the same Run under
	// different encryption schemes measures and closes on the same
	// slice of the workload: per-scheme biases then cancel in the
	// normalized metrics the paper reports (DESIGN.md §17).
	//
	// WarmupFrac of the warp instructions are simulated exactly before
	// the first measurement window, letting caches, queues and the DRAM
	// pipeline leave their cold-start transient.
	WarmupFrac float64
	// WindowFrac is the size of the first measurement window. Whenever
	// two consecutive windows disagree, the window doubles — real
	// traces oscillate with workload-dependent periods, and the growing
	// window finds the span that averages a whole period without
	// knowing it a priori — up to MaxWindowFrac.
	WindowFrac    float64
	MaxWindowFrac float64
	// RelTol is the relative drift between consecutive windows below
	// which a timing-critical rate (demand arrival, warp issue, memory
	// issue — the rates that set the closure's time estimate) counts as
	// steady, with AbsTol as an absolute floor for near-zero rates.
	// Memory-side rates (DRAM service rate, cache hit rates, stall
	// rate) decay for a long time as the caches warm, so they are held
	// to the looser RelTol×LooseFactor: they only shape the synthesized
	// counters and the roofline ceilings, not the closure time bound.
	RelTol      float64
	AbsTol      float64
	LooseFactor float64
	// TrendTol bounds the measured drift at closure: the fitted
	// cost-per-warp slope (shrunk by its standard error, so noise does
	// not count as drift), projected across the whole remaining work,
	// may move the cost by at most TrendTol of its current value. A
	// strong transient — cold caches still filling — fails this bound
	// and is simulated through rather than extrapolated, because its
	// decay flattens in a way no linear model can see from inside it;
	// the mild drift that passes is integrated into the closure instead
	// of being ignored.
	TrendTol float64
	// StableWindows is how many consecutive converged windows are
	// required before the run may close.
	StableWindows int
	// MixTol gates closing on workload homogeneity: the measured
	// window's compute share of warp instructions must be within MixTol
	// of the remaining stream's share. This keeps phase changes — e.g. a
	// conv layer's im2col prologue followed by the GEMM — from being
	// extrapolated across (DESIGN.md §17).
	MixTol float64
	// MinRemaining is the fraction of total warp instructions below
	// which closing stops being worthwhile and the run just finishes
	// exactly.
	MinRemaining float64
	// TailFrac is the fraction of each stream's ops at its end that a
	// closure keeps and simulates exactly instead of skipping. Closing
	// extrapolates only the middle; the tail then re-warms the caches
	// and queues with exactly the content the machine would hold at the
	// Run's end — a closed layer's final writes are the next layer's
	// input — so the next Run's measurement windows observe a
	// representative machine rather than the anomalously clean state a
	// hard truncation leaves behind. Without it, closure errors compound
	// across a network's layers: each truncated layer hands the next a
	// too-clean L2 (no dirty lines, no writeback pressure), the next
	// layer's windows measure fast, and it closes on a bias.
	TailFrac float64
}

// DefaultStatConfig returns window and convergence knobs calibrated on
// the Fig-7 workloads: warm-up and windows of a few percent of a Run's
// warp instructions, small enough that a converged layer simulates
// ~10% of its work exactly, large enough that per-window rates are
// statistically meaningful.
func DefaultStatConfig() StatConfig {
	return StatConfig{
		Enable:        true,
		WarmupFrac:    0.01,
		WindowFrac:    0.015,
		MaxWindowFrac: 0.06,
		RelTol:        0.05,
		AbsTol:        0.01,
		LooseFactor:   6,
		TrendTol:      0.25,
		StableWindows: 2,
		MixTol:        0.05,
		MinRemaining:  0.05,
		TailFrac:      0.03,
	}
}

// Validate checks the stat-mode knobs; the disabled zero value is valid.
func (sc StatConfig) Validate() error {
	if !sc.Enable {
		return nil
	}
	if sc.WarmupFrac < 0 || sc.WarmupFrac >= 1 || sc.WindowFrac <= 0 || sc.MaxWindowFrac < sc.WindowFrac {
		return fmt.Errorf("gpu: invalid stat windows %+v", sc)
	}
	if sc.RelTol <= 0 || sc.AbsTol < 0 || sc.MixTol < 0 || sc.LooseFactor < 1 || sc.TrendTol <= 0 {
		return fmt.Errorf("gpu: invalid stat tolerances %+v", sc)
	}
	if sc.StableWindows < 1 {
		return fmt.Errorf("gpu: stat needs at least one stable window, got %d", sc.StableWindows)
	}
	if sc.MinRemaining < 0 || sc.MinRemaining >= 1 {
		return fmt.Errorf("gpu: stat MinRemaining %v outside [0,1)", sc.MinRemaining)
	}
	if sc.TailFrac < 0 || sc.TailFrac >= 1 {
		return fmt.Errorf("gpu: stat TailFrac %v outside [0,1)", sc.TailFrac)
	}
	return nil
}

// ConfigGTX480 returns the paper's simulated GPU: NVIDIA GeForce GTX480,
// 15 SMs, six 64-bit GDDR5 channels at 3696 MT/s (384-bit bus,
// ≈177 GB/s), one 8 GB/s AES engine per memory controller (§IV-A).
func ConfigGTX480() Config {
	const coreHz = 700e6
	// 177.4 GB/s across 6 channels → 29.6 GB/s each → 42.2 B/core-cycle.
	const bytesPerCycPerChan = 177.4e9 / 6 / coreHz
	return Config{
		NumSMs:          15,
		IssueWidth:      2,
		LanesPerWarp:    32,
		MaxOutstanding:  48,
		InterconnectLat: 16,
		L2Latency:       20,
		CoreClockHz:     coreHz,
		LineBytes:       64,
		Channels:        6,
		L2Slice:         cache.Config{SizeBytes: 128 * 1024, LineBytes: 64, Ways: 8},
		DRAM: dram.Config{
			Banks: 16, RowBytes: 2048, BytesPerCycle: bytesPerCycPerChan,
			TRCD: 8, TRP: 8, TCL: 10, QueueDepth: 32, LineBytes: 64,
		},
		Mode:       ModeNone,
		EngineSpec: engine.SpecModeled,
		Counter: engine.CounterConfig{
			DataLineBytes:  64,
			CounterBytes:   8,
			CacheSizeBytes: 96 * 1024 / 6, // paper default sweep point, split across partitions
			CacheWays:      4,
			CounterBase:    1 << 44,
		},
		MAC: engine.CounterConfig{
			DataLineBytes:  64,
			CounterBytes:   8, // 64-bit truncated MAC per line
			CacheSizeBytes: 48 * 1024 / 6,
			CacheWays:      4,
			CounterBase:    1 << 45,
		},
		MACVerify: 20,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumSMs <= 0 || c.IssueWidth <= 0 || c.LanesPerWarp <= 0 || c.MaxOutstanding <= 0 {
		return fmt.Errorf("gpu: invalid SM parameters %+v", c)
	}
	if c.Channels <= 0 || c.LineBytes <= 0 || c.CoreClockHz <= 0 {
		return fmt.Errorf("gpu: invalid system parameters %+v", c)
	}
	if err := c.L2Slice.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if err := c.EngineSpec.Validate(); err != nil {
		return err
	}
	if c.Mode == ModeCounter {
		if err := c.Counter.Validate(); err != nil {
			return err
		}
	}
	if err := c.Stat.Validate(); err != nil {
		return err
	}
	if c.Integrity {
		if c.Mode == ModeNone {
			return fmt.Errorf("gpu: integrity requires an encryption mode")
		}
		if c.MACVerify < 0 {
			return fmt.Errorf("gpu: negative MAC verify latency")
		}
		if err := c.MAC.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// WithMode returns a copy of c with the encryption mode and protected
// predicate set. A nil fn with a non-baseline mode protects everything.
func (c Config) WithMode(m EncMode, fn EncFn) Config {
	c.Mode = m
	if fn == nil && m != ModeNone {
		fn = func(uint64) bool { return true }
	}
	c.Protected = fn
	return c
}
