package gpu

import (
	"testing"
)

// smallCfg shrinks GTX480 to 2 SMs / 2 channels for fast tests.
func smallCfg() Config {
	cfg := ConfigGTX480()
	cfg.NumSMs = 2
	cfg.Channels = 2
	return cfg
}

// computeStream returns a pure-compute stream of n warp instructions.
func computeStream(n int) Stream {
	return Stream{{Compute: n, NoMem: true}}
}

// readStream returns a stream of n sequential line reads with interleaved
// compute, starting at base.
func readStream(n int, base uint64, computePer int) Stream {
	st := make(Stream, n)
	for i := range st {
		st[i] = Op{Compute: computePer, Addr: base + uint64(i)*64}
	}
	return st
}

// writeStream returns a stream of n sequential line writes.
func writeStream(n int, base uint64) Stream {
	st := make(Stream, n)
	for i := range st {
		st[i] = Op{Addr: base + uint64(i)*64, Write: true}
	}
	return st
}

func mustSim(t testing.TB, cfg Config) *Sim {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustRun(t testing.TB, s *Sim, streams []Stream) Result {
	t.Helper()
	res, err := s.Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigGTX480Valid(t *testing.T) {
	cfg := ConfigGTX480()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumSMs != 15 || cfg.Channels != 6 {
		t.Fatalf("GTX480 shape wrong: %d SMs, %d channels", cfg.NumSMs, cfg.Channels)
	}
	// total DRAM bandwidth ≈ 177 GB/s → ≈253 B/core-cycle
	total := cfg.DRAM.BytesPerCycle * float64(cfg.Channels)
	if total < 250 || total > 257 {
		t.Fatalf("total DRAM bandwidth %v B/cycle, want ≈253", total)
	}
	// engine bandwidth must be far below channel bandwidth (the paper's gap)
	engBPC := cfg.EngineSpec.ThroughputGBs * 1e9 / cfg.CoreClockHz
	if engBPC > cfg.DRAM.BytesPerCycle/2 {
		t.Fatalf("no bandwidth gap: engine %v vs channel %v B/cycle", engBPC, cfg.DRAM.BytesPerCycle)
	}
}

func TestComputeBoundIPC(t *testing.T) {
	cfg := smallCfg()
	s := mustSim(t, cfg)
	res := mustRun(t, s, []Stream{computeStream(10000), computeStream(10000)})
	// 2 SMs × IssueWidth 2 × 32 lanes = 128 thread-insts/cycle peak
	if res.IPC < 120 || res.IPC > 128.5 {
		t.Fatalf("compute-bound IPC = %v, want ≈128", res.IPC)
	}
	if res.ThreadInsts != 2*10000*32 {
		t.Fatalf("thread insts = %d", res.ThreadInsts)
	}
}

func TestMemoryRequestsComplete(t *testing.T) {
	cfg := smallCfg()
	s := mustSim(t, cfg)
	res := mustRun(t, s, []Stream{readStream(100, 0, 1)})
	if res.MemRequests != 100 {
		t.Fatalf("mem requests = %d", res.MemRequests)
	}
	if res.Cycles <= 0 {
		t.Fatal("no cycles elapsed")
	}
	var reads uint64
	for _, p := range res.Parts {
		reads += p.DRAM.Reads
	}
	if reads == 0 {
		t.Fatal("no DRAM reads recorded")
	}
}

func TestL2HitsAvoidDRAM(t *testing.T) {
	cfg := smallCfg()
	s := mustSim(t, cfg)
	// 100 reads of the same line: 1 DRAM fetch, 99 L2 hits
	st := make(Stream, 100)
	for i := range st {
		st[i] = Op{Addr: 0x1000}
	}
	res := mustRun(t, s, []Stream{st})
	var reads uint64
	for _, p := range res.Parts {
		reads += p.DRAM.Reads
	}
	if reads != 1 {
		t.Fatalf("DRAM reads = %d, want 1", reads)
	}
	if res.L2HitRate() < 0.98 {
		t.Fatalf("L2 hit rate %v", res.L2HitRate())
	}
}

func TestDirectEncryptionSlowsBandwidthBoundRun(t *testing.T) {
	const n = 4000
	base := mustSim(t, smallCfg())
	b := mustRun(t, base, []Stream{readStream(n, 0, 1), readStream(n, 1<<20, 1)})

	enc := mustSim(t, smallCfg().WithMode(ModeDirect, nil))
	e := mustRun(t, enc, []Stream{readStream(n, 0, 1), readStream(n, 1<<20, 1)})

	if e.IPC >= b.IPC*0.8 {
		t.Fatalf("direct encryption too cheap: baseline IPC %v, encrypted %v", b.IPC, e.IPC)
	}
	if e.EngineBytes() == 0 {
		t.Fatal("no engine traffic in direct mode")
	}
	if b.EngineBytes() != 0 {
		t.Fatal("baseline used the engine")
	}
}

func TestCounterModeUsesCounterCache(t *testing.T) {
	cfg := smallCfg().WithMode(ModeCounter, nil)
	s := mustSim(t, cfg)
	res := mustRun(t, s, []Stream{readStream(2000, 0, 1)})
	var ctrAccesses uint64
	for _, p := range res.Parts {
		ctrAccesses += p.Counter.Hits + p.Counter.Misses
	}
	if ctrAccesses == 0 {
		t.Fatal("counter mode never consulted the counter cache")
	}
	// sequential lines share counter blocks (8 per block) → high hit rate
	if res.CounterHitRate() < 0.8 {
		t.Fatalf("sequential counter hit rate %v, want ≥0.8", res.CounterHitRate())
	}
}

func TestCounterMissesAddDRAMTraffic(t *testing.T) {
	// Strided reads touch a new counter block almost every time with a
	// tiny counter cache → extra DRAM reads for counter blocks.
	cfg := smallCfg().WithMode(ModeCounter, nil)
	cfg.Counter.CacheSizeBytes = 1024
	s := mustSim(t, cfg)
	n := 1500
	st := make(Stream, n)
	for i := range st {
		st[i] = Op{Addr: uint64(i) * 64 * 8 * 64} // new counter block + new set each time
	}
	res := mustRun(t, s, []Stream{st})
	var extra uint64
	for _, p := range res.Parts {
		extra += p.ExtraCounterReads
	}
	if extra < uint64(n)/2 {
		t.Fatalf("extra counter reads = %d, want ≥%d", extra, n/2)
	}
	var dramReads uint64
	for _, p := range res.Parts {
		dramReads += p.DRAM.Reads
	}
	if dramReads < uint64(n)+extra/2 {
		t.Fatalf("DRAM reads %d do not reflect counter fetches (extra %d)", dramReads, extra)
	}
}

func TestSelectiveEncryptionBetweenBaselineAndFull(t *testing.T) {
	const n = 4000
	streams := func() []Stream {
		return []Stream{readStream(n, 0, 1), readStream(n, 1<<20, 1)}
	}
	b := mustRun(t, mustSim(t, smallCfg()), streams())
	full := mustRun(t, mustSim(t, smallCfg().WithMode(ModeDirect, nil)), streams())
	// SEAL-style: only even-numbered lines are ciphertext (50%)
	half := mustRun(t, mustSim(t, smallCfg().WithMode(ModeDirect, func(addr uint64) bool {
		return (addr/64)%2 == 0
	})), streams())

	if !(half.IPC > full.IPC && half.IPC < b.IPC) {
		t.Fatalf("50%% encryption IPC %v not between full %v and baseline %v", half.IPC, full.IPC, b.IPC)
	}
	if half.EngineBytes() >= full.EngineBytes() {
		t.Fatalf("50%% encryption engine bytes %d not below full %d", half.EngineBytes(), full.EngineBytes())
	}
}

func TestWritesGenerateWritebacks(t *testing.T) {
	cfg := smallCfg()
	s := mustSim(t, cfg)
	// write far more lines than L2 capacity → dirty evictions → DRAM writes
	n := 3 * cfg.L2Slice.SizeBytes * cfg.Channels / cfg.LineBytes
	res := mustRun(t, s, []Stream{writeStream(n, 0)})
	var writes uint64
	for _, p := range res.Parts {
		writes += p.DRAM.Writes
	}
	if writes == 0 {
		t.Fatal("no DRAM writes from dirty evictions")
	}
	if writes > uint64(n) {
		t.Fatalf("more writebacks (%d) than written lines (%d)", writes, n)
	}
}

func TestEncryptedWritebacksUseEngine(t *testing.T) {
	cfg := smallCfg().WithMode(ModeDirect, nil)
	s := mustSim(t, cfg)
	n := 3 * cfg.L2Slice.SizeBytes * cfg.Channels / cfg.LineBytes
	res := mustRun(t, s, []Stream{writeStream(n, 0)})
	if res.EngineBytes() == 0 {
		t.Fatal("encrypted writebacks bypassed the engine")
	}
}

func TestTooManyStreamsRejected(t *testing.T) {
	cfg := smallCfg()
	s := mustSim(t, cfg)
	streams := make([]Stream, cfg.NumSMs+1)
	for i := range streams {
		streams[i] = computeStream(1)
	}
	if _, err := s.Run(streams); err == nil {
		t.Fatal("oversubscribed run accepted")
	}
}

func TestResetRestoresColdState(t *testing.T) {
	cfg := smallCfg()
	s := mustSim(t, cfg)
	mustRun(t, s, []Stream{readStream(100, 0, 0)})
	s.Reset()
	if s.Now() != 0 {
		t.Fatal("time survived reset")
	}
	for _, st := range s.Stats() {
		if st.DRAM.Reads != 0 || st.L2.Hits != 0 {
			t.Fatal("stats survived reset")
		}
	}
}

func TestWarmCachePersistsAcrossRuns(t *testing.T) {
	cfg := smallCfg()
	s := mustSim(t, cfg)
	mustRun(t, s, []Stream{readStream(50, 0, 0)})
	res2 := mustRun(t, s, []Stream{readStream(50, 0, 0)})
	var reads uint64
	for _, p := range res2.Parts {
		reads += p.DRAM.Reads
	}
	// second run re-reads the same 50 lines: all should hit in L2,
	// leaving the cumulative DRAM read count at the first run's 50.
	if reads != 50 {
		t.Fatalf("cumulative DRAM reads after warm rerun = %d, want 50", reads)
	}
}

func TestCounterModeSlowerWithTinyCounterCache(t *testing.T) {
	// two passes over a strided working set: a big counter cache retains
	// the blocks between passes, a tiny one thrashes
	mkStreams := func() []Stream {
		st := make(Stream, 0, 3000)
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < 1500; i++ {
				st = append(st, Op{Addr: uint64(i) * 8 * 64 * 2}) // one counter block per partition-local stride
			}
		}
		return []Stream{st}
	}
	big := smallCfg().WithMode(ModeCounter, nil)
	big.Counter.CacheSizeBytes = 256 * 1024
	rBig := mustRun(t, mustSim(t, big), mkStreams())

	tiny := smallCfg().WithMode(ModeCounter, nil)
	tiny.Counter.CacheSizeBytes = 1024
	rTiny := mustRun(t, mustSim(t, tiny), mkStreams())

	if rTiny.CounterHitRate() >= rBig.CounterHitRate() {
		t.Fatalf("tiny counter cache hit rate %v not below big %v", rTiny.CounterHitRate(), rBig.CounterHitRate())
	}
	if rTiny.IPC > rBig.IPC {
		t.Fatalf("tiny counter cache IPC %v above big cache %v", rTiny.IPC, rBig.IPC)
	}
}

func TestModeString(t *testing.T) {
	if ModeNone.String() != "Baseline" || ModeDirect.String() != "Direct" || ModeCounter.String() != "Counter" {
		t.Fatal("mode names wrong")
	}
}

func TestStreamAccounting(t *testing.T) {
	st := Stream{
		{Compute: 5, Addr: 0},
		{Compute: 3, NoMem: true},
		{Addr: 64, Write: true},
	}
	if st.WarpInsts() != 5+1+3+0+1 {
		t.Fatalf("warp insts = %d", st.WarpInsts())
	}
	if st.MemOps() != 2 {
		t.Fatalf("mem ops = %d", st.MemOps())
	}
}

func TestEngineCountGapMatchesPaper(t *testing.T) {
	// §II-B: six engines → 48 GB/s total vs 177 GB/s bus. Verify the
	// configuration reproduces the 3.7× gap.
	cfg := ConfigGTX480()
	engTotal := cfg.EngineSpec.ThroughputGBs * float64(cfg.Channels)
	busTotal := cfg.DRAM.BytesPerCycle * float64(cfg.Channels) * cfg.CoreClockHz / 1e9
	if engTotal != 48 {
		t.Fatalf("total engine bandwidth %v GB/s, want 48", engTotal)
	}
	gap := busTotal / engTotal
	if gap < 3.4 || gap > 4.0 {
		t.Fatalf("bandwidth gap %v, want ≈3.7", gap)
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := ConfigGTX480()
	cfg.NumSMs = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
	cfg = ConfigGTX480().WithMode(ModeCounter, nil)
	cfg.Counter.CounterBytes = 7
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid counter config accepted")
	}
}

var benchSink Result

func BenchmarkSimMemoryStream(b *testing.B) {
	cfg := smallCfg()
	for i := 0; i < b.N; i++ {
		s := mustSim(b, cfg)
		benchSink = mustRun(b, s, []Stream{readStream(2000, 0, 1), readStream(2000, 1<<20, 1)})
	}
}
