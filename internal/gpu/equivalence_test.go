package gpu

import (
	"fmt"
	"reflect"
	"testing"

	"seal/internal/prng"
)

// randStreams builds a randomized per-SM workload mixing compute,
// reads and writes over a small address space (to exercise cache
// conflicts, row conflicts and queue backpressure).
func randStreams(r *prng.Source, numSMs, maxOps int, span uint64) []Stream {
	streams := make([]Stream, numSMs)
	for i := range streams {
		n := r.Intn(maxOps) + 1
		st := make(Stream, n)
		for j := range st {
			switch r.Intn(5) {
			case 0:
				st[j] = Op{Compute: r.Intn(30), NoMem: true}
			case 1:
				st[j] = Op{Compute: r.Intn(4), Addr: uint64(r.Intn(int(span))) &^ 63, Write: true}
			default:
				st[j] = Op{Compute: r.Intn(8), Addr: uint64(r.Intn(int(span))) &^ 63}
			}
		}
		streams[i] = st
	}
	return streams
}

// randEquivConfig perturbs the GTX480 model along the axes the two
// schedulers treat differently: SM and channel counts, interconnect
// latency (integer and fractional), issue width, MSHR depth, queue
// depth, encryption mode and integrity.
func randEquivConfig(r *prng.Source) Config {
	cfg := ConfigGTX480()
	cfg.NumSMs = 1 + r.Intn(4)
	cfg.Channels = 1 + r.Intn(3)
	cfg.IssueWidth = 1 + r.Intn(3)
	cfg.MaxOutstanding = 1 + r.Intn(12)
	cfg.InterconnectLat = []float64{0, 0.5, 1, 2, 7.25, 16, 16.5}[r.Intn(7)]
	cfg.L2Latency = []float64{0, 1.5, 20}[r.Intn(3)]
	cfg.DRAM.QueueDepth = 2 + r.Intn(10)
	cfg.L2Slice.SizeBytes = 64 * 64 * 8 // small L2: force misses and evictions
	mode := EncMode(r.Intn(3))
	var fn EncFn
	switch r.Intn(3) {
	case 0:
		fn = nil // protect everything (or nothing for ModeNone)
	case 1:
		fn = func(addr uint64) bool { return addr&128 == 0 }
	case 2:
		fn = func(addr uint64) bool { return addr < 1<<19 }
	}
	cfg = cfg.WithMode(mode, fn)
	if mode != ModeNone && r.Intn(2) == 0 {
		cfg.Integrity = true
	}
	return cfg
}

// TestFastForwardMatchesReference is the core equivalence property of
// the event-driven scheduler: for randomized configurations and
// workloads, the frame-based fast path must produce a Result — cycles,
// instruction and stall counts, IPC, and every per-partition cache,
// DRAM, engine and counter statistic — bit-identical to the per-cycle
// reference scheduler, including across warm back-to-back Runs and
// after Reset.
func TestFastForwardMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := prng.New(seed)
			cfg := randEquivConfig(r)
			refCfg := cfg
			refCfg.Reference = true

			fast := mustSim(t, cfg)
			ref := mustSim(t, refCfg)

			// Two back-to-back Runs exercise warm caches and nonzero
			// start times; then Reset and one more Run checks that Reset
			// restores the exact cold-start state in both modes.
			runs := 2
			for phase := 0; phase < 2; phase++ {
				for k := 0; k < runs; k++ {
					streams := randStreams(prng.New(seed*1000+uint64(phase*10+k)), cfg.NumSMs, 120, 1<<20)
					fRes := mustRun(t, fast, streams)
					rRes := mustRun(t, ref, streams)
					if !reflect.DeepEqual(fRes, rRes) {
						t.Fatalf("phase %d run %d diverged:\nfast: %+v\nref:  %+v", phase, k, fRes, rRes)
					}
					if fast.Now() != ref.Now() {
						t.Fatalf("phase %d run %d clock diverged: fast %v ref %v", phase, k, fast.Now(), ref.Now())
					}
				}
				fast.Reset()
				ref.Reset()
				runs = 1
			}
		})
	}
}

// TestFastForwardMatchesReferenceEmptyStreams pins the degenerate
// cases: SMs with empty streams and runs with no streams at all must
// burn the same number of cycles in both schedulers.
func TestFastForwardMatchesReferenceEmptyStreams(t *testing.T) {
	for _, streams := range [][]Stream{
		nil,
		{{}, {}},
		{{}, {{Compute: 3, NoMem: true}}},
	} {
		cfg := smallCfg()
		refCfg := cfg
		refCfg.Reference = true
		fast := mustSim(t, cfg)
		ref := mustSim(t, refCfg)
		fRes := mustRun(t, fast, streams)
		rRes := mustRun(t, ref, streams)
		if !reflect.DeepEqual(fRes, rRes) {
			t.Fatalf("streams %v diverged:\nfast: %+v\nref:  %+v", streams, fRes, rRes)
		}
	}
}
