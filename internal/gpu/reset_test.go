package gpu

import (
	"reflect"
	"testing"
)

// resetStreams is a mixed workload big enough to grow every internal
// buffer: arrivals, DRAM queues, response rings, staging buckets and
// the request/node free pools.
func resetStreams(cfg Config) []Stream {
	streams := make([]Stream, cfg.NumSMs)
	for i := range streams {
		st := readStream(200, uint64(i)<<20, 2)
		st = append(st, writeStream(100, uint64(i)<<21)...)
		st = append(st, computeStream(50)...)
		streams[i] = st
	}
	return streams
}

// TestResetEquivalentToFreshSim checks that Reset restores exact
// cold-start semantics: a warmed-then-Reset simulator must produce the
// same Result and clock as a freshly constructed one, in both the
// fast-forward and reference schedulers.
func TestResetEquivalentToFreshSim(t *testing.T) {
	for _, ref := range []bool{false, true} {
		cfg := smallCfg().WithMode(ModeCounter, nil)
		cfg.Reference = ref
		streams := resetStreams(cfg)

		fresh := mustSim(t, cfg)
		want := mustRun(t, fresh, streams)

		warmed := mustSim(t, cfg)
		mustRun(t, warmed, streams)
		mustRun(t, warmed, streams)
		warmed.Reset()
		got := mustRun(t, warmed, streams)

		if !reflect.DeepEqual(got, want) {
			t.Errorf("ref=%v: post-Reset run diverged from fresh sim:\ngot:  %+v\nwant: %+v", ref, got, want)
		}
		fresh.Reset()
		if again := mustRun(t, fresh, streams); !reflect.DeepEqual(again, want) {
			t.Errorf("ref=%v: second post-Reset run diverged: %+v", ref, again)
		}
	}
}

// TestResetReusesAllocations pins the perf contract of Reset: it keeps
// the partition-internal buffers, so a warmed simulator runs the same
// workload again without growing the heap. The bound is deliberately
// loose (a handful of allocations per Run would still pass) — the
// regression it guards against is Reset discarding whole partitions,
// which costs thousands.
func TestResetReusesAllocations(t *testing.T) {
	cfg := smallCfg().WithMode(ModeCounter, nil)
	streams := resetStreams(cfg)
	s := mustSim(t, cfg)
	for i := 0; i < 3; i++ { // warm every pool past its high-water mark
		mustRun(t, s, streams)
		s.Reset()
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := s.Run(streams); err != nil {
			t.Fatal(err)
		}
		s.Reset()
	})
	if avg > 16 {
		t.Errorf("steady-state Run+Reset allocates %.0f objects; want ≤16 (buffers should be reused)", avg)
	}
}
