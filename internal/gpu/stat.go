package gpu

import (
	"math"

	"seal/internal/cache"
	"seal/internal/dram"
	"seal/internal/engine"
)

// This file implements the statistical fast-sim mode (DESIGN.md §17).
//
// The exact event-driven scheduler is within ~1.2× of its event-density
// floor under strict bit-identity (DESIGN.md §12), so order-of-magnitude
// sweep speedups must come from approximation with validation: simulate
// each Run exactly through a warm-up and a few measurement windows,
// detect steady state, then close the run analytically — extrapolate
// the remaining warp instructions and DRAM demand through the measured
// service rates, bounded by the configured DRAM and AES engine
// bandwidth ceilings, and reconstruct every per-partition counter as a
// scaled estimate of the measured window's event profile.
//
// Warm-up and windows are quanta of warp instructions (fractions of the
// Run's total), not cycle spans: a work-based window pins every
// measurement to a stream position, so the same trace simulated under
// different encryption schemes measures and closes on the same slice of
// the workload and per-scheme extrapolation biases cancel in the
// normalized metrics the paper reports.
//
// Convergence is judged on a rate vector sampled at window boundaries:
// demand arrival rate, warp issue rate and memory issue rate held to
// RelTol (these set the closure's time estimate), and DRAM service
// rate, L2/counter hit rates and stall rate held to the looser
// RelTol×LooseFactor (cache warming keeps them decaying long after the
// arrival rates have settled; they only shape the synthesized counters
// and the roofline ceilings). StableWindows consecutive agreements
// allow closing, subject to the mix gate (StatConfig.MixTol) that
// refuses to extrapolate a measured phase across a phase change still
// ahead in the streams.

// statWindow is one measurement window's rate vector; vectors of
// consecutive windows are compared elementwise for convergence.
type statWindow []float64

// statMemo is the measured profile of one closed Run, keyed by its
// streams' content hash. Sweep workloads replay structurally identical
// kernels over and over (a VGG network alone runs several conv shapes
// two or three times; a parameter sweep replays every layer per cell),
// and identical traces under the same configuration time out nearly
// identically — the only divergence is the inherited cache state, which
// the re-run validates by measuring its own first window and comparing
// against the recorded one. On agreement the re-run closes immediately
// with the recorded totals; on disagreement it falls back to the full
// measurement path and overwrites the memo.
type statMemo struct {
	totalWarp, totalMem int64

	firstVec statWindow // rate vector of the measured run's first window

	total    float64 // the measured run's total cycles (incl. its closure)
	tailCost float64 // cycles its exact tail took after closing

	// Closing window profile, for synthesizing the skipped counters.
	w         float64
	winStall  int64
	winDemand uint64
	winDelta  []PartStats
}

// statState carries one Run's stat-mode progress. It lives on the Sim
// and is re-armed by begin for every Run, reusing all slices.
type statState struct {
	cfg StatConfig

	totalWarp int64 // whole-run totals, computed on stream load
	totalMem  int64
	runStart  float64

	// Memo plumbing: sig keys this Run's streams, memo is the recorded
	// profile to validate against (nil after the one-shot check), and
	// firstVec/haveFirst capture this run's own first window so a close
	// can be memoized at Run end. memoApplied marks a memo-closed run,
	// which must not re-record itself (a copy of a copy compounds error).
	sig         uint64
	memo        *statMemo
	firstVec    statWindow
	haveFirst   bool
	memoApplied bool

	warmupWork int64 // warp instructions to simulate exactly before measuring
	quantum    int64 // current window size in warp instructions; doubles while unstable
	maxQuantum int64

	snapAt     float64 // time of the current window's start snapshot
	snap       []PartStats
	snapWarp   int64
	snapStall  int64
	snapMem    int64
	snapSMWarp  []int64 // per-SM warp counts at the window start
	snapSMStall []int64 // per-SM stall cycles at the window start
	haveSnap    bool

	cur, prev statWindow
	havePrev  bool
	stable    int

	// Window history for the trend fit: per-window midpoint work
	// position (warp instructions) and cost per warp instruction
	// (cycles/warp). Rates drift smoothly across a layer as caches warm
	// and working sets rotate; extrapolating a flat rate inherits that
	// drift as bias, so closure fits a line to the recent history and
	// integrates it over the remaining work instead.
	histU []float64
	histC []float64

	// done stops further checks for this Run (closed, or not worth it).
	done   bool
	closed bool

	// Closure outputs, consumed by Run when assembling the Result.
	closeNow    float64 // clock at closure (extrapolation overlaps the drain)
	extraCycles float64
	extraWarp   int64
	extraStall  int64

	// Closing window profile, kept for memo recording at Run end.
	closeW         float64
	closeWinStall  int64
	closeWinDemand uint64

	// winDelta is scratch for the per-partition window deltas at closure.
	winDelta []PartStats
	// cutSM, remSM, rhoSM are scratch for the per-SM stream cut
	// positions, skipped work and demand caps at closure.
	cutSM []int
	remSM []float64
	rhoSM []float64
}

// begin arms the state for a new Run.
func (st *statState) begin(start float64, totalWarp, totalMem int64, parts int) {
	st.totalWarp, st.totalMem = totalWarp, totalMem
	st.runStart = start
	st.sig, st.memo = 0, nil
	st.haveFirst, st.memoApplied = false, false
	st.warmupWork = int64(st.cfg.WarmupFrac * float64(totalWarp))
	st.quantum = int64(st.cfg.WindowFrac * float64(totalWarp))
	if st.quantum < 1 {
		st.quantum = 1
	}
	st.maxQuantum = int64(st.cfg.MaxWindowFrac * float64(totalWarp))
	if st.maxQuantum < st.quantum {
		st.maxQuantum = st.quantum
	}
	st.haveSnap, st.havePrev = false, false
	st.stable = 0
	st.histU, st.histC = st.histU[:0], st.histC[:0]
	st.done = totalWarp == 0
	st.closed = false
	st.closeNow, st.extraCycles = 0, 0
	st.extraWarp, st.extraStall = 0, 0
	if cap(st.snap) < parts {
		st.snap = make([]PartStats, parts)
		st.winDelta = make([]PartStats, parts)
	}
	st.snap = st.snap[:parts]
	st.winDelta = st.winDelta[:parts]
}

// rateVector fills dst with the window's rate vector. The leading
// strict entry is the window's memory share of warp instructions — a
// pure trace property, identical for the same trace under every
// encryption scheme, so different schemes judge window stability on the
// same signal and close at the same stream position (that alignment is
// what makes per-scheme extrapolation biases cancel in normalized
// metrics). The rest are timing rates — demand arrival, warp issue,
// memory issue, DRAM service (summed across partitions:
// line-interleaved traffic makes the channels statistically alike, and
// the sums are ~Channels× less noisy than any single partition), L2 and
// counter hit rates, stall rate — held only to the loose sanity bound:
// cache warming keeps them drifting long after the workload mix has
// settled, and the closure's roofline ceilings guard against the
// drift's worst case.
func rateVector(dst statWindow, deltas []PartStats, dWarp, dStall, dMem int64, w float64) statWindow {
	var demand, served, l2Hits, ctrHits, ctrAcc uint64
	for i := range deltas {
		d := &deltas[i]
		demand += d.L2.Hits + d.L2.Misses
		served += d.DRAM.Requests()
		l2Hits += d.L2.Hits
		ctrHits += d.Counter.Hits
		ctrAcc += d.Counter.Hits + d.Counter.Misses
	}
	memShare := -1.0
	if dWarp > 0 {
		memShare = float64(dMem) / float64(dWarp)
	}
	return append(dst[:0],
		memShare,
		float64(demand)/w,
		float64(dWarp)/w,
		float64(dMem)/w,
		float64(served)/w,
		hitRate(l2Hits, demand),
		hitRate(ctrHits, ctrAcc),
		float64(dStall)/w,
	)
}

// strictMetrics is how many leading rateVector entries are held to
// RelTol; the rest get RelTol×LooseFactor.
const strictMetrics = 1

// hashStreams fingerprints the streams' content: lengths, compute
// counts, flags, per-stream RELATIVE addresses, and each address's
// encryption classification. Relative addressing makes the key
// translation-invariant — a network's repeated layer shapes replay the
// same access pattern shifted to a different buffer base, and a uniform
// shift preserves locality, so such runs time out alike (what residual
// channel-phase difference a shift introduces is caught by the memo's
// first-window validation, not the key). The fn bit keeps two
// pattern-identical traces with different protected-region coverage
// from colliding: their engine traffic genuinely differs. An O(ops)
// pass with a tiny constant, noise next to the cycle simulation of the
// same ops.
func hashStreams(streams []Stream, fn EncFn) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mix(uint64(len(streams)))
	for _, st := range streams {
		mix(uint64(len(st)))
		var base uint64
		haveBase := false
		for i := range st {
			op := &st[i]
			v := uint64(op.Compute) << 3
			if op.Write {
				v |= 1
			}
			if op.NoMem {
				v |= 2
			} else {
				if !haveBase {
					base, haveBase = op.Addr, true
				}
				mix(op.Addr - base)
				if fn != nil && fn(op.Addr) {
					v |= 4
				}
			}
			mix(v)
		}
	}
	return h
}

// fitLine least-squares fits c = a + b·u.
func fitLine(us, cs []float64) (a, b float64) {
	n := float64(len(us))
	var mu, mc float64
	for i := range us {
		mu += us[i]
		mc += cs[i]
	}
	mu /= n
	mc /= n
	var num, den float64
	for i := range us {
		du := us[i] - mu
		num += du * (cs[i] - mc)
		den += du * du
	}
	if den == 0 {
		return mc, 0
	}
	b = num / den
	return mc - b*mu, b
}

// trendPoints is how many trailing history windows the trend fit spans.
func (st *statState) trendPoints() int {
	h := st.cfg.StableWindows + 2
	if h < 3 {
		h = 3
	}
	return h
}

// statTrend is the fitted cost-per-warp model c(u) over the measurement
// windows: either a line c = a + b·u (slope shrunk toward zero by its
// own standard error so that pure window noise reads as "no trend"), or
// an exponential approach c = cInf + A·e^{−(u−uRef)/tau} capturing the
// cache-warming decay that a linear model refuses to extrapolate.
type statTrend struct {
	ready, ok bool
	// noisy marks a residual failure — the samples do not lie on any
	// fitted curve, as opposed to lying on one whose projection is
	// refused. Only noise justifies growing the window.
	noisy bool

	exp            bool
	a, b           float64 // linear: c = a + b·u
	cInf, amp, tau float64 // exponential: c = cInf + amp·e^{−(u−uRef)/tau}
	uRef           float64
}

// c evaluates the fitted cost per warp instruction at work position u.
func (t statTrend) c(u float64) float64 {
	if t.exp {
		return t.cInf + t.amp*math.Exp(-(u-t.uRef)/t.tau)
	}
	return t.a + t.b*u
}

// meanC is the fitted model's average cost per warp instruction over
// the work span [u0, u0+span] — the closure integrates c(u), it does
// not freeze it.
func (t statTrend) meanC(u0, span float64) float64 {
	if span <= 0 {
		return t.c(u0)
	}
	if t.exp {
		d0 := math.Exp(-(u0 - t.uRef) / t.tau)
		d1 := math.Exp(-(u0 + span - t.uRef) / t.tau)
		return t.cInf + t.amp*t.tau*(d0-d1)/span
	}
	return t.a + t.b*(u0+span/2)
}

// fitTrend fits the trailing windows' cost-per-warp samples and judges
// whether the run may close at this work position. Predictability — not
// constancy — is the criterion: rates that drift smoothly as caches
// warm still extrapolate correctly once the drift itself is measured.
// A linear fit over the trailing windows is tried first; when its
// projection across the remainder is refused (a real transient, not
// noise), an exponential-approach fit over the longer history gets a
// chance — cache warm-up decays toward an asymptote, and a model that
// has watched enough of the decay to pin the asymptote may integrate
// the rest of it instead of waiting for it to flatten.
func (st *statState) fitTrend(remWarp int64) statTrend {
	h := st.trendPoints()
	n := len(st.histC)
	if n < h {
		return statTrend{}
	}
	tr := st.fitLinear(st.histU[n-h:], st.histC[n-h:], remWarp)
	if tr.ok {
		return tr
	}
	etr := st.fitExp()
	if etr.ok {
		return etr
	}
	if etr.ready && !etr.noisy {
		// Some history suffix lies on an exponential curve whose
		// asymptote is not yet pinned: a transient in progress, not
		// noise. Keep the window size — more points at this resolution
		// are what will pin it.
		tr.noisy = false
	}
	return tr
}

// fitLinear is the line fit: the samples must lie on their
// least-squares line within RelTol (the window behavior is
// predictable), and the significant part of the slope, projected across
// the whole remainder, must move the cost by at most TrendTol (a strong
// transient — cold caches still filling — must be simulated through or
// handled by the exponential model: its decay flattens in a way no
// linear model can see from inside it).
func (st *statState) fitLinear(us, cs []float64, remWarp int64) statTrend {
	a, b := fitLine(us, cs)
	var ssr, sdu float64
	mu := 0.0
	for _, u := range us {
		mu += u
	}
	mu /= float64(len(us))
	for i := range cs {
		r := cs[i] - (a + b*us[i])
		if math.Abs(r) > st.cfg.RelTol*math.Abs(cs[i]) {
			return statTrend{ready: true, noisy: true}
		}
		ssr += r * r
		du := us[i] - mu
		sdu += du * du
	}
	// Shrink the slope by twice its standard error: a slope that noise
	// alone explains becomes zero, so stationary workloads close early
	// instead of waiting for a phantom drift to settle.
	if len(cs) > 2 && sdu > 0 {
		se := math.Sqrt(ssr/float64(len(cs)-2)) / math.Sqrt(sdu)
		if shrunk := math.Abs(b) - 2*se; shrunk <= 0 {
			b = 0
		} else if b > 0 {
			b = shrunk
		} else {
			b = -shrunk
		}
		a = 0
		for i := range cs {
			a += cs[i] - b*us[i]
		}
		a /= float64(len(cs))
	}
	tr := statTrend{ready: true, a: a, b: b}
	uNow := us[len(us)-1] // midpoint of the last window; close enough
	cNow := tr.c(uNow)
	if cNow <= 0 {
		return statTrend{ready: true}
	}
	if math.Abs(b)*float64(remWarp) > st.cfg.TrendTol*cNow {
		return tr // predictable, but the remainder outruns the trend
	}
	tr.ok = true
	return tr
}

// fitExp tries the exponential-approach model c(u) = cInf +
// amp·e^{−(u−uRef)/tau} over suffixes of the whole window history,
// longest first (the early sharpest part of a cold-start transient
// often needs a second time constant; dropping leading points lets the
// single-exponential model fit the part that matters — the decay still
// ahead). tau is grid-searched as fractions of the observed span with a
// linear least-squares solve for (cInf, amp) at each candidate; the
// best-SSE candidate whose residuals all sit within RelTol wins.
// Acceptance requires having watched at least 1.5 time constants (the
// asymptote is pinned by data, not extrapolated faith) and a remaining
// modeled change |c(now) − cInf| of at most TrendTol·c(now).
func (st *statState) fitExp() statTrend {
	const minPts = 5
	us, cs := st.histU, st.histC
	if len(us) < minPts {
		return statTrend{}
	}
	out := statTrend{ready: true, noisy: true}
	for start := 0; len(us)-start >= minPts; start++ {
		tr := fitExpFrom(us[start:], cs[start:], 2*st.cfg.RelTol, st.cfg.TrendTol)
		if tr.ok {
			// Out-of-sample honesty check: a model about to extrapolate
			// the whole remainder must at least have predicted the one
			// point it can be tested on. Refit without the newest sample
			// and require the refit to predict it within RelTol.
			last := len(us) - 1
			ho := fitExpFrom(us[start:last], cs[start:last], 2*st.cfg.RelTol, st.cfg.TrendTol)
			if !ho.ready || ho.cInf == 0 {
				return statTrend{ready: true}
			}
			if math.Abs(ho.c(us[last])-cs[last]) > st.cfg.RelTol*math.Abs(cs[last]) {
				return statTrend{ready: true}
			}
			return tr
		}
		if tr.ready && !tr.noisy {
			out.noisy = false // fit clean somewhere, just not closeable yet
		}
	}
	return out
}

// tauGrid holds the candidate time constants as fractions of the
// observed work span. The largest keeps span ≥ 2.5·tau attainable: the
// model must have watched the curve come within e^{−2.5} ≈ 8% of its
// fitted asymptote before that asymptote is trusted for extrapolation.
var tauGrid = [...]float64{0.1, 0.18, 0.28, 0.4}

func fitExpFrom(us, cs []float64, relTol, trendTol float64) statTrend {
	uRef := us[0]
	span := us[len(us)-1] - uRef
	if span <= 0 {
		return statTrend{}
	}
	best := statTrend{}
	bestSSE := math.Inf(1)
	for _, m := range tauGrid {
		tau := m * span
		var sx, sy, sxx, sxy float64
		n := float64(len(us))
		for i := range us {
			x := math.Exp(-(us[i] - uRef) / tau)
			sx += x
			sy += cs[i]
			sxx += x * x
			sxy += x * cs[i]
		}
		den := n*sxx - sx*sx
		if den <= 0 {
			continue
		}
		amp := (n*sxy - sx*sy) / den
		cInf := (sy - amp*sx) / n
		if cInf <= 0 {
			continue
		}
		var sse float64
		ok := true
		for i := range us {
			r := cs[i] - (cInf + amp*math.Exp(-(us[i]-uRef)/tau))
			if math.Abs(r) > relTol*math.Abs(cs[i]) {
				ok = false
				break
			}
			sse += r * r
		}
		if ok && sse < bestSSE {
			bestSSE = sse
			best = statTrend{ready: true, exp: true, cInf: cInf, amp: amp, tau: tau, uRef: uRef}
		}
	}
	if !best.ready {
		return statTrend{ready: true, noisy: true}
	}
	// Gate failures below still return the fitted params (ok=false): the
	// holdout check needs the curve even when this subset cannot close.
	if span < 2.5*best.tau {
		return best
	}
	uNow := us[len(us)-1]
	cNow := best.c(uNow)
	if cNow <= 0 || math.Abs(cNow-best.cInf) > trendTol*cNow {
		return best
	}
	// The newest sample anchors the extrapolation: it must sit on the
	// curve at half the loosened tolerance, not just within it.
	if math.Abs(cs[len(cs)-1]-cNow) > relTol/2*math.Abs(cs[len(cs)-1]) {
		return best
	}
	best.ok = true
	return best
}

// hitRate returns hits/total, or -1 when the window saw no accesses so
// that two idle windows compare equal and an idle-vs-busy pair does not.
func hitRate(hits, total uint64) float64 {
	if total == 0 {
		return -1
	}
	return float64(hits) / float64(total)
}

// converged reports whether two rate vectors agree elementwise: the
// first strictMetrics entries within rel, the rest within rel×loose
// (abs is the absolute floor for near-zero rates throughout).
func converged(a, b statWindow, rel, loose, abs float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		av, bv := a[i], b[i]
		m := math.Abs(av)
		if n := math.Abs(bv); n > m {
			m = n
		}
		tol := rel
		if i >= strictMetrics {
			tol = rel * loose
		}
		if math.Abs(av-bv) > tol*m+abs {
			return false
		}
	}
	return true
}

// statCheck runs at every frame boundary of runFast: it tracks work
// progress, snapshots at work-quantum boundaries, judges
// window-over-window convergence and, once stable and past the mix
// gate, closes the run analytically by truncating the streams (the
// in-flight tail then drains through the exact machinery) and recording
// the extrapolated remainder for Run to fold into the Result.
func (s *Sim) statCheck(sms []*sm) {
	st := s.stat
	now := s.now

	var warp, stall, mem int64
	for _, m := range sms {
		warp += m.warpInsts
		stall += m.stallCycles
		mem += m.memIssued
	}
	remWarp := st.totalWarp - warp
	if float64(remWarp) < st.cfg.MinRemaining*float64(st.totalWarp) {
		st.done = true // too little left for closing to pay for itself
		return
	}

	if !st.haveSnap {
		if warp >= st.warmupWork {
			s.statSnapshot(sms, now, warp, stall, mem)
			st.haveSnap = true
		}
		return
	}
	if warp-st.snapWarp < st.quantum {
		return // current window not full yet
	}
	w := now - st.snapAt
	if w <= 0 {
		return
	}
	for i, p := range s.parts {
		st.winDelta[i] = subPartStats(p.stats(), st.snap[i])
	}
	winWarp := warp - st.snapWarp
	winStall := stall - st.snapStall
	winMem := mem - st.snapMem
	st.cur = rateVector(st.cur, st.winDelta, winWarp, winStall, winMem, w)
	st.histU = append(st.histU, (float64(st.snapWarp)+float64(warp))/2)
	st.histC = append(st.histC, w/float64(winWarp))

	// Memo fast path: an identical trace was measured and closed before.
	// If this run's first window reproduces the recorded one's rates,
	// the recorded totals transfer; otherwise (inherited cache state
	// differs enough to matter) measure normally and re-record.
	if m := st.memo; m != nil {
		st.memo = nil // one shot
		if !st.havePrev && converged(st.cur, m.firstVec, st.cfg.RelTol, st.cfg.LooseFactor, st.cfg.AbsTol) {
			if s.statMemoClose(sms, m) {
				return
			}
		}
	}
	if !st.haveFirst {
		st.firstVec = append(st.firstVec[:0], st.cur...)
		st.haveFirst = true
	}

	convOK := st.havePrev && converged(st.cur, st.prev, st.cfg.RelTol, st.cfg.LooseFactor, st.cfg.AbsTol)
	tr := st.fitTrend(remWarp)
	fitReady, fitOK := tr.ready, tr.ok
	if convOK && (fitOK || !fitReady) {
		st.stable++
	} else {
		st.stable = 0
		// Real traces oscillate (issue bursts alternating with
		// memory-bound lulls) with workload-dependent periods; growing
		// the window geometrically finds the span that averages a whole
		// period — and smooths per-window noise the trend fit would
		// otherwise reject — without a priori knowledge of either. Only
		// genuine noise grows the window: samples that no fitted curve
		// explains. A predictable drift whose projection was refused
		// wants more points at the current resolution (to pin the
		// exponential model's asymptote), not coarser ones.
		if tr.noisy && st.quantum < st.maxQuantum {
			st.quantum *= 2
		}
	}
	if st.stable >= st.cfg.StableWindows && fitOK && winWarp > 0 && s.statMixOK(winWarp, winMem, remWarp, st.totalMem-mem) {
		if s.statClose(sms, tr, w, winWarp, winStall, winMem, remWarp, st.totalMem-mem) {
			return
		}
	}
	st.cur, st.prev = st.prev, st.cur
	st.havePrev = true
	s.statSnapshot(sms, now, warp, stall, mem)
}

// statMixOK is the phase-change gate: the measured window's compute
// share of warp instructions must match the remaining streams' share
// within MixTol, otherwise the steady state just measured does not
// describe the work left (e.g. a conv layer's im2col prologue vs its
// GEMM body) and the run keeps simulating exactly until it does.
func (s *Sim) statMixOK(winWarp, winMem, remWarp, remMem int64) bool {
	if remWarp <= 0 {
		return false
	}
	winShare := float64(winWarp-winMem) / float64(winWarp)
	remShare := float64(remWarp-remMem) / float64(remWarp)
	return math.Abs(winShare-remShare) <= s.stat.cfg.MixTol
}

// statSnapshot records the counter state opening a new measurement
// window: per-partition stats plus the aggregate and per-SM counters.
func (s *Sim) statSnapshot(sms []*sm, now float64, warp, stall, mem int64) {
	st := s.stat
	for i, p := range s.parts {
		st.snap[i] = p.stats()
	}
	st.snapSMWarp = st.snapSMWarp[:0]
	st.snapSMStall = st.snapSMStall[:0]
	for _, m := range sms {
		st.snapSMWarp = append(st.snapSMWarp, m.warpInsts)
		st.snapSMStall = append(st.snapSMStall, m.stallCycles)
	}
	st.snapAt = now
	st.snapWarp, st.snapStall, st.snapMem = warp, stall, mem
}

// statClose closes the run: each stream's middle is skipped (keeping a
// TailFrac tail that re-warms the machine), the skipped work is costed
// per SM through that SM's own measured issue rate — a Run ends when
// its slowest SM finishes, so under per-SM load imbalance the closure
// cost is the maximum over SMs, not aggregate work through the
// aggregate all-SMs-active rate, which would undercost exactly the
// drained-out phase where only the longest streams are still running —
// the per-partition counters are synthesized by scaling the window's
// event profile, and the exact machinery then simulates the tails and
// drains. Reports whether it actually closed; an unmeasurable window (an
// SM with work to skip that issued nothing) refuses and keeps measuring.
func (s *Sim) statClose(sms []*sm, tr statTrend, w float64, winWarp, winStall, winMem, remWarp, remMem int64) bool {
	st := s.stat

	// First pass, read-only: per-SM skipped work (the ops between the
	// current position and the tail) and its cost through the SM's own
	// window issue rate. A plain O(ops) walk, noise next to the cycle
	// simulation it replaces. The current op may be partially issued:
	// only its un-issued compute (computeLeft) and its pending access
	// are skipped.
	if cap(st.cutSM) < len(sms) {
		st.cutSM = make([]int, len(sms))
		st.remSM = make([]float64, len(sms))
		st.rhoSM = make([]float64, len(sms))
	}
	st.cutSM = st.cutSM[:len(sms)]
	rem, rho := st.remSM[:0], st.rhoSM[:0]
	var skipWarp, skipMem int64
	for i, m := range sms {
		st.cutSM[i] = -1
		if m.finished() {
			continue
		}
		cut := len(m.stream) - int(st.cfg.TailFrac*float64(len(m.stream)))
		if cut <= m.opIdx {
			continue // already inside the tail; nothing to skip
		}
		sw, smem := int64(m.computeLeft), int64(0)
		if !m.stream[m.opIdx].NoMem {
			sw++
			smem++
		}
		for j := m.opIdx + 1; j < cut; j++ {
			op := &m.stream[j]
			sw += int64(op.Compute)
			if !op.NoMem {
				sw++
				smem++
			}
		}
		if sw <= 0 {
			continue
		}
		winSM := m.warpInsts - st.snapSMWarp[i]
		if winSM <= 0 {
			return false // SM stalled through the whole window: rate unmeasurable
		}
		// The SM's demand cap: its stall-free issue rate in the window,
		// bounded by the configured issue width. When the shared memory
		// system decongests (other SMs finished), the SM can approach
		// this rate; it can never exceed it.
		busy := w - float64(m.stallCycles-st.snapSMStall[i])
		if floor := 0.05 * w; busy < floor {
			busy = floor
		}
		r := float64(winSM) / busy
		if iw := float64(s.cfg.IssueWidth); r > iw {
			r = iw
		}
		st.cutSM[i] = cut
		rem = append(rem, float64(sw))
		rho = append(rho, r)
		skipWarp += sw
		skipMem += smem
	}
	if skipWarp <= 0 {
		st.done = true // whole remainder is inside the tails; just finish
		return true
	}

	// Second pass: apply the cuts. The tails then execute through the
	// normal machinery (keeping pools, queues and counters consistent)
	// and leave the caches holding what they would at the Run's end.
	for i, m := range sms {
		if st.cutSM[i] < 0 {
			continue
		}
		m.opIdx = st.cutSM[i]
		m.computeLeft = 0
		m.loadOp()
		if m.finished() {
			m.finishCycle = s.now // tiny stream: no tail left, drain only
		}
	}

	// Drift correction from the measured trend: cost per warp
	// instruction c(u) fitted over the measurement windows; the ratio of
	// its mean over the skipped span to the flat last-window cost scales
	// the per-SM closure cost. Integrating the fitted model cancels the
	// drift (cache warming, working-set rotation) that a flat rate would
	// bake into the whole remainder as bias; fitTrend has already
	// refused to close when the projected drift is unpinned.
	cLast := w / float64(winWarp)
	factor := 1.0
	uNow := float64(st.totalWarp - remWarp)
	if tr.ok && cLast > 0 {
		if mc := tr.meanC(uNow, float64(skipWarp)); mc > 0 {
			factor = mc / cLast
		}
	}
	extra := statDrainTime(rem, rho, float64(winWarp)/w) * factor

	// Memory-side bound: skipped demand requests through the measured
	// demand service rate. Demand requests are exactly the SM requests
	// reaching the L2 slices, so the window's L2 accesses measure the
	// rate and g scales the window's event profile to the skipped
	// middle.
	var winDemand uint64
	for i := range st.winDelta {
		winDemand += st.winDelta[i].L2.Hits + st.winDelta[i].L2.Misses
	}
	st.closeW, st.closeWinStall, st.closeWinDemand = w, winStall, winDemand
	g := 0.0
	if winDemand > 0 && skipMem > 0 {
		g = float64(skipMem) / float64(winDemand)
		if b := float64(skipMem) * w / float64(winDemand); b > extra {
			extra = b
		}
	}

	// Bandwidth ceilings: the scaled remaining DRAM and engine bytes can
	// never move faster than the configured peak rates. These floors
	// only bind when a window measured an unsustainable burst; they keep
	// a lucky window from extrapolating past the hardware roofline.
	for i, p := range s.parts {
		d := &st.winDelta[i]
		if fl := float64(d.DRAM.Bytes) * g / p.ch.BytesPerCycle(); fl > extra {
			extra = fl
		}
		if fl := d.Engine.BusyCycle * g; fl > extra {
			extra = fl
		}
	}

	// Synthesize the skipped middle's counters: the window's
	// per-partition event profile scaled by g (events ride demand
	// traffic), stalls scaled by time. The tails then execute through
	// the normal machinery and accumulate real counters on top.
	for i, p := range s.parts {
		addScaledPartStats(&p.synth, st.winDelta[i], g)
	}
	st.extraWarp = skipWarp
	st.extraStall = int64(math.Round(float64(winStall) * extra / w))
	st.extraCycles = extra
	st.closeNow = s.now
	st.closed, st.done = true, true
	return true
}

// statMemoClose closes the run from a validated memo: the streams'
// middles are cut exactly as statClose cuts them, and the extrapolated
// middle time is the memo's recorded total minus what this run has
// already spent and minus the tail the exact machinery is about to
// simulate — identical trace, identical config, validated initial
// rates, so the recorded run's timeline transfers wholesale.
func (s *Sim) statMemoClose(sms []*sm, m *statMemo) bool {
	st := s.stat
	spent := s.now - st.runStart
	extra := m.total - m.tailCost - spent
	if extra <= 0 {
		return false
	}
	var skipWarp, skipMem int64
	for _, mm := range sms {
		if mm.finished() {
			continue
		}
		cut := len(mm.stream) - int(st.cfg.TailFrac*float64(len(mm.stream)))
		if cut <= mm.opIdx {
			continue
		}
		sw, smem := int64(mm.computeLeft), int64(0)
		if !mm.stream[mm.opIdx].NoMem {
			sw++
			smem++
		}
		for j := mm.opIdx + 1; j < cut; j++ {
			op := &mm.stream[j]
			sw += int64(op.Compute)
			if !op.NoMem {
				sw++
				smem++
			}
		}
		if sw <= 0 {
			continue
		}
		mm.opIdx = cut
		mm.computeLeft = 0
		mm.loadOp()
		if mm.finished() {
			mm.finishCycle = s.now
		}
		skipWarp += sw
		skipMem += smem
	}
	if skipWarp <= 0 {
		st.done = true
		return true
	}
	g := 0.0
	if m.winDemand > 0 && skipMem > 0 {
		g = float64(skipMem) / float64(m.winDemand)
	}
	for i, p := range s.parts {
		addScaledPartStats(&p.synth, m.winDelta[i], g)
	}
	st.extraWarp = skipWarp
	if m.w > 0 {
		st.extraStall = int64(math.Round(float64(m.winStall) * extra / m.w))
	}
	st.extraCycles = extra
	st.closeNow = s.now
	st.closed, st.done = true, true
	st.memoApplied = true
	return true
}

// recordStatMemo stores a just-closed measured Run's profile under its
// stream signature, replacing any stale entry. Called from Run before
// the extrapolated middle is folded into the clock, with the exact tail
// already simulated — so total and tailCost are both final.
func (s *Sim) recordStatMemo(start float64) {
	st := s.stat
	if s.statMemos == nil {
		s.statMemos = make(map[uint64]*statMemo)
	}
	s.statMemos[st.sig] = &statMemo{
		totalWarp: st.totalWarp,
		totalMem:  st.totalMem,
		firstVec:  append(statWindow(nil), st.firstVec...),
		total:     s.now - start + st.extraCycles,
		tailCost:  s.now - st.closeNow,
		w:         st.closeW,
		winStall:  st.closeWinStall,
		winDemand: st.closeWinDemand,
		winDelta:  append([]PartStats(nil), st.winDelta...),
	}
}

// statDrainTime is the closure's makespan model: a processor-sharing
// schedule over the SMs' skipped work. Each SM demands its cap rho[i]
// (stall-free issue rate); the machine delivers at most shared warp
// throughput R (the window's measured aggregate rate), split among the
// active SMs in proportion to their demands. While every SM runs, rates
// reproduce the measured window; as short-stream SMs finish, the
// survivors speed up toward their caps — which is what actually happens
// when the shared memory system decongests. This is what makes closure
// correct under per-SM load imbalance for both regimes: issue-bound SMs
// already run at their caps (no speedup, makespan = slowest SM's own
// critical path), while memory-bound survivors recover bandwidth the
// finished SMs were consuming (makespan well below freezing every SM at
// its contended rate). Phases are O(SMs) and each phase retires at
// least one SM, so the whole schedule is O(SMs²) — trivial next to the
// simulation it replaces.
func statDrainTime(rem, rho []float64, R float64) float64 {
	t := 0.0
	for {
		var sumRho float64
		n := 0
		for i := range rem {
			if rem[i] > 0 {
				sumRho += rho[i]
				n++
			}
		}
		if n == 0 {
			return t
		}
		f := 1.0
		if sumRho > R && R > 0 {
			f = R / sumRho
		}
		step := math.Inf(1)
		for i := range rem {
			if rem[i] > 0 {
				if d := rem[i] / (rho[i] * f); d < step {
					step = d
				}
			}
		}
		if math.IsInf(step, 1) || step <= 0 {
			return t
		}
		t += step
		for i := range rem {
			if rem[i] > 0 {
				rem[i] -= rho[i] * f * step
				if rem[i] < 0.5 {
					rem[i] = 0
				}
			}
		}
	}
}

// subPartStats returns a-b fieldwise (window delta of two snapshots).
func subPartStats(a, b PartStats) PartStats {
	return PartStats{
		L2: subCacheStats(a.L2, b.L2),
		DRAM: dram.Stats{
			Reads:     a.DRAM.Reads - b.DRAM.Reads,
			Writes:    a.DRAM.Writes - b.DRAM.Writes,
			RowHits:   a.DRAM.RowHits - b.DRAM.RowHits,
			RowMisses: a.DRAM.RowMisses - b.DRAM.RowMisses,
			Bytes:     a.DRAM.Bytes - b.DRAM.Bytes,
			BusBusy:   a.DRAM.BusBusy - b.DRAM.BusBusy,
		},
		Engine: engine.Stats{
			Lines:     a.Engine.Lines - b.Engine.Lines,
			Bytes:     a.Engine.Bytes - b.Engine.Bytes,
			BusyCycle: a.Engine.BusyCycle - b.Engine.BusyCycle,
		},
		Counter:            subCacheStats(a.Counter, b.Counter),
		ExtraCounterReads:  a.ExtraCounterReads - b.ExtraCounterReads,
		ExtraCounterWrites: a.ExtraCounterWrites - b.ExtraCounterWrites,
		MACReads:           a.MACReads - b.MACReads,
		MACWrites:          a.MACWrites - b.MACWrites,
	}
}

func subCacheStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Hits:       a.Hits - b.Hits,
		Misses:     a.Misses - b.Misses,
		Evictions:  a.Evictions - b.Evictions,
		Writebacks: a.Writebacks - b.Writebacks,
	}
}

// addScaledPartStats accumulates g×d into dst, rounding event counts.
func addScaledPartStats(dst *PartStats, d PartStats, g float64) {
	dst.L2.Hits += scaleU64(d.L2.Hits, g)
	dst.L2.Misses += scaleU64(d.L2.Misses, g)
	dst.L2.Evictions += scaleU64(d.L2.Evictions, g)
	dst.L2.Writebacks += scaleU64(d.L2.Writebacks, g)
	dst.DRAM.Reads += scaleU64(d.DRAM.Reads, g)
	dst.DRAM.Writes += scaleU64(d.DRAM.Writes, g)
	dst.DRAM.RowHits += scaleU64(d.DRAM.RowHits, g)
	dst.DRAM.RowMisses += scaleU64(d.DRAM.RowMisses, g)
	dst.DRAM.Bytes += scaleU64(d.DRAM.Bytes, g)
	dst.DRAM.BusBusy += d.DRAM.BusBusy * g
	dst.Engine.Lines += scaleU64(d.Engine.Lines, g)
	dst.Engine.Bytes += scaleU64(d.Engine.Bytes, g)
	dst.Engine.BusyCycle += d.Engine.BusyCycle * g
	dst.Counter.Hits += scaleU64(d.Counter.Hits, g)
	dst.Counter.Misses += scaleU64(d.Counter.Misses, g)
	dst.Counter.Evictions += scaleU64(d.Counter.Evictions, g)
	dst.Counter.Writebacks += scaleU64(d.Counter.Writebacks, g)
	dst.ExtraCounterReads += scaleU64(d.ExtraCounterReads, g)
	dst.ExtraCounterWrites += scaleU64(d.ExtraCounterWrites, g)
	dst.MACReads += scaleU64(d.MACReads, g)
	dst.MACWrites += scaleU64(d.MACWrites, g)
}

func scaleU64(v uint64, g float64) uint64 {
	return uint64(math.Round(float64(v) * g))
}
