package gpu

import (
	"seal/internal/cache"
	"seal/internal/dram"
	"seal/internal/engine"
)

// memReq is one SM memory request flowing through a partition.
type memReq struct {
	smID  int
	addr  uint64
	write bool
	// counter-mode read rendezvous: both the data line and the one-time
	// pad must be ready before the plaintext can be returned. -1 marks
	// "not yet known".
	dataDone float64
	padDone  float64
	// direct-mode reads pass through the engine after the data arrives
	engineAfterData bool
	// integrity rendezvous: 0 = no MAC needed, 1 = MAC fetch in flight,
	// 2 = MAC ready at macReadyAt. A read's response is held until the
	// MAC is verified.
	macState   int
	macReadyAt float64
	// respHeld buffers the data-path completion while the MAC is pending.
	respHeld bool
	respAt   float64
}

type tagKind int

const (
	tagWrite           tagKind = iota // fire-and-forget DRAM write
	tagData                           // data-line fetch for a read
	tagCounter                        // counter-block fetch for a read
	tagCounterForWrite                // counter-block fetch blocking an encrypted writeback
	tagMAC                            // MAC-block fetch for an authenticated read
)

type dramTag struct {
	kind tagKind
	rec  *memReq
	// writeAddr is the data line waiting on a tagCounterForWrite fetch.
	writeAddr uint64
}

// reqNode bundles a DRAM request with its routing tag so the pair can be
// recycled together once the channel retires it. Request.Tag carries the
// *reqNode itself — a pointer fits the interface data word, so re-tagging
// a pooled node never allocates, where boxing a dramTag value did.
type reqNode struct {
	tag dramTag
	req dram.Request
}

type arrival struct {
	rec *memReq
	at  float64
}

type response struct {
	smID    int
	readyAt float64
}

// partition is one memory controller: L2 slice, AES engine, counter
// cache and GDDR5 channel.
type partition struct {
	id  int
	cfg *Config
	l2  *cache.Cache
	eng *engine.Engine
	cc  *engine.CounterCache
	mac *engine.CounterCache
	ch  *dram.Channel

	arrivals  []arrival       // FIFO of incoming SM requests (monotone .at)
	arrHead   int             // consumed-prefix length of arrivals
	overflowR []*dram.Request // reads waiting for DRAM read-queue space
	overflowW []*dram.Request // writes waiting for DRAM write-queue space
	responses []response      // completed requests to route back
	// pendCyc stages requests issued during a frame of the event-driven
	// scheduler, one bucket per frame cycle. SMs run in id order within
	// the frame, so each bucket accumulates in SM order by itself and
	// mergePending is a straight concatenation — the (cycle, SM) order
	// the per-cycle loop would have produced, with no comparisons.
	pendCyc   [][]arrival
	reqID     uint64
	freeNodes []*reqNode // retired request+tag pairs awaiting reuse
	freeRecs  []*memReq  // answered SM requests awaiting reuse

	extraReads  uint64 // counter-block fetches
	extraWrites uint64 // counter/dirty-line writebacks
	macReads    uint64 // MAC-block fetches
	macWrites   uint64 // MAC-block writebacks

	// synth holds counters synthesized by the statistical fast-sim mode
	// for the unsimulated remainder of closed runs (stat.go). It stays
	// zero-valued under the exact schedulers, so stats() adding it in
	// costs nothing semantically there.
	synth PartStats
}

func newPartition(id int, cfg *Config) *partition {
	p := &partition{
		id:      id,
		cfg:     cfg,
		l2:      cache.New(cfg.L2Slice),
		eng:     engine.New(cfg.EngineSpec, cfg.CoreClockHz),
		ch:      dram.NewChannel(cfg.DRAM),
		pendCyc: make([][]arrival, frameLen(cfg.InterconnectLat)),
	}
	if cfg.Mode == ModeCounter {
		p.cc = engine.NewCounterCache(cfg.Counter)
	}
	if cfg.Integrity && cfg.Mode != ModeNone {
		p.mac = engine.NewCounterCache(cfg.MAC)
	}
	return p
}

// counterLocalAddr maps a global data address to the partition-local
// line space used for counter bookkeeping. Data lines interleave across
// channels, so without this translation a counter block's 8 counters
// would be split across partitions, destroying the spatial locality
// counter caching depends on. Each memory controller keeps counters for
// its own lines, packed densely (Yan et al. [24] organize per-controller
// counter storage the same way).
func (p *partition) counterLocalAddr(addr uint64) uint64 {
	line := addr / uint64(p.cfg.LineBytes)
	return line / uint64(p.cfg.Channels) * uint64(p.cfg.LineBytes)
}

func (p *partition) protected(addr uint64) bool {
	if p.cfg.Mode == ModeNone || p.cfg.Protected == nil {
		return false
	}
	return p.cfg.Protected(addr)
}

// accept queues an SM request that reaches the partition at time at.
func (p *partition) accept(rec *memReq, at float64) {
	p.arrivals = append(p.arrivals, arrival{rec: rec, at: at})
}

func (p *partition) dramSubmit(r *dram.Request) {
	over := &p.overflowR
	if r.Write {
		over = &p.overflowW
	}
	if len(*over) == 0 && p.ch.Enqueue(r) {
		return
	}
	*over = append(*over, r)
}

// getNode returns a recycled request node or makes a new one. Nodes go
// back on the free list when the channel retires them in tick.
func (p *partition) getNode() *reqNode {
	if n := len(p.freeNodes); n > 0 {
		nd := p.freeNodes[n-1]
		p.freeNodes = p.freeNodes[:n-1]
		return nd
	}
	return &reqNode{}
}

// getRec returns a recycled SM request record or makes a new one.
// Records recycle in respond, the single point where a request's last
// reference (the emitted response) lets go of it.
func (p *partition) getRec(smID int, addr uint64, write bool) *memReq {
	if n := len(p.freeRecs); n > 0 {
		rec := p.freeRecs[n-1]
		p.freeRecs = p.freeRecs[:n-1]
		*rec = memReq{smID: smID, addr: addr, write: write}
		return rec
	}
	return &memReq{smID: smID, addr: addr, write: write}
}

func (p *partition) dramRead(addr uint64, at float64, tag dramTag) {
	p.reqID++
	nd := p.getNode()
	nd.tag = tag
	nd.req = dram.Request{ID: p.reqID, Addr: addr, Arrival: at, Tag: nd}
	p.dramSubmit(&nd.req)
}

func (p *partition) dramWrite(addr uint64, at float64) {
	p.reqID++
	nd := p.getNode()
	nd.tag = dramTag{kind: tagWrite}
	nd.req = dram.Request{ID: p.reqID, Addr: addr, Write: true, Arrival: at, Tag: nd}
	p.dramSubmit(&nd.req)
}

func (p *partition) respond(rec *memReq, at float64) {
	// Authenticated reads release data only after MAC verification.
	switch rec.macState {
	case 1: // MAC still in flight: hold the data-path completion
		rec.respHeld = true
		rec.respAt = at
		return
	case 2:
		if rec.macReadyAt > at {
			at = rec.macReadyAt
		}
	}
	p.responses = append(p.responses, response{smID: rec.smID, readyAt: at + p.cfg.InterconnectLat})
	// The response is the last reference to rec: every DRAM fetch tagged
	// with it (data, counter, MAC) has retired by the time the reply is
	// emitted — counter reads rendezvous on dataDone/padDone, MAC reads
	// hold the reply via respHeld — so the record can be reused.
	p.freeRecs = append(p.freeRecs, rec)
}

// macLookup starts the MAC access for an authenticated protected read.
// On a hit, verification overlaps the data fetch and completes MACVerify
// cycles from now; on a miss the MAC block is fetched from DRAM first.
func (p *partition) macLookup(rec *memReq, now float64, write bool) {
	if p.mac == nil || !p.protected(rec.addr) {
		return
	}
	res := p.mac.Lookup(p.counterLocalAddr(rec.addr), write)
	if res.Writeback {
		p.macWrites++
		p.dramWrite(res.WritebackAddr, now)
	}
	if write {
		return // MAC update is absorbed by the (dirty) MAC cache block
	}
	if res.Hit {
		rec.macState = 2
		rec.macReadyAt = now + p.cfg.MACVerify
		return
	}
	rec.macState = 1
	p.macReads++
	p.dramRead(res.MissAddr, now, dramTag{kind: tagMAC, rec: rec})
}

// handleEviction issues the DRAM writeback of a dirty L2 victim,
// routing it through the encryption path when the line is protected.
func (p *partition) handleEviction(addr uint64, now float64) {
	if !p.protected(addr) {
		p.dramWrite(addr, now)
		return
	}
	if p.mac != nil {
		res := p.mac.Lookup(p.counterLocalAddr(addr), true)
		if res.Writeback {
			p.macWrites++
			p.dramWrite(res.WritebackAddr, now)
		}
		if !res.Hit {
			// MAC block must be resident to update; fetch it (read-modify)
			p.macReads++
			p.dramRead(res.MissAddr, now, dramTag{kind: tagWrite})
		}
	}
	switch p.cfg.Mode {
	case ModeDirect:
		done := p.eng.Process(now, p.cfg.LineBytes)
		p.dramWrite(addr, done)
	case ModeCounter:
		ctr := p.cc.Lookup(p.counterLocalAddr(addr), true) // a write advances the line counter
		if ctr.Writeback {
			p.extraWrites++
			p.dramWrite(ctr.WritebackAddr, now)
		}
		if ctr.Hit {
			pad := p.eng.Process(now, p.cfg.LineBytes)
			p.dramWrite(addr, pad)
		} else {
			p.extraReads++
			p.dramRead(ctr.MissAddr, now, dramTag{kind: tagCounterForWrite, writeAddr: addr})
		}
	}
}

// handleArrival runs the L2 and (on miss) the fetch path for one SM
// request.
func (p *partition) handleArrival(rec *memReq, now float64) {
	res := p.l2.Access(rec.addr, rec.write)
	if res.Writeback {
		p.handleEviction(res.EvictedAddr, now)
	}
	if rec.write {
		// Write-validate policy: coalesced full-line stores allocate the
		// line dirty without fetching it; the cost surfaces at eviction.
		p.respond(rec, now+p.cfg.L2Latency)
		return
	}
	if res.Hit {
		p.respond(rec, now+p.cfg.L2Latency)
		return
	}
	if !p.protected(rec.addr) {
		p.dramRead(rec.addr, now, dramTag{kind: tagData, rec: rec})
		return
	}
	p.macLookup(rec, now, false)
	switch p.cfg.Mode {
	case ModeDirect:
		rec.engineAfterData = true
		p.dramRead(rec.addr, now, dramTag{kind: tagData, rec: rec})
	case ModeCounter:
		rec.dataDone, rec.padDone = -1, -1
		ctr := p.cc.Lookup(p.counterLocalAddr(rec.addr), false)
		if ctr.Writeback {
			p.extraWrites++
			p.dramWrite(ctr.WritebackAddr, now)
		}
		p.dramRead(rec.addr, now, dramTag{kind: tagData, rec: rec})
		if ctr.Hit {
			// Pad generation overlaps the data fetch: this is counter
			// mode's latency advantage over direct encryption.
			rec.padDone = p.eng.Process(now, p.cfg.LineBytes)
			p.maybeFinishCounterRead(rec)
		} else {
			p.extraReads++
			p.dramRead(ctr.MissAddr, now, dramTag{kind: tagCounter, rec: rec})
		}
	}
}

func (p *partition) maybeFinishCounterRead(rec *memReq) {
	if rec.dataDone < 0 || rec.padDone < 0 {
		return
	}
	at := rec.dataDone
	if rec.padDone > at {
		at = rec.padDone
	}
	p.respond(rec, at+1) // one cycle for the XOR
}

// tick advances the partition by one core cycle.
func (p *partition) tick(now float64) {
	// flush queued DRAM submissions in order, per class
	for len(p.overflowR) > 0 && p.ch.Enqueue(p.overflowR[0]) {
		p.overflowR = p.overflowR[1:]
	}
	for len(p.overflowW) > 0 && p.ch.Enqueue(p.overflowW[0]) {
		p.overflowW = p.overflowW[1:]
	}
	for _, dr := range p.ch.Tick(now) {
		nd := dr.Tag.(*reqNode)
		tag := nd.tag
		switch tag.kind {
		case tagWrite:
			// fire-and-forget
		case tagData:
			rec := tag.rec
			switch {
			case rec.engineAfterData:
				done := p.eng.Process(dr.Done, p.cfg.LineBytes)
				p.respond(rec, done)
			case p.cfg.Mode == ModeCounter && p.protected(rec.addr):
				rec.dataDone = dr.Done
				p.maybeFinishCounterRead(rec)
			default:
				p.respond(rec, dr.Done)
			}
		case tagCounter:
			rec := tag.rec
			rec.padDone = p.eng.Process(dr.Done, p.cfg.LineBytes)
			p.maybeFinishCounterRead(rec)
		case tagCounterForWrite:
			pad := p.eng.Process(dr.Done, p.cfg.LineBytes)
			p.dramWrite(tag.writeAddr, pad)
		case tagMAC:
			rec := tag.rec
			rec.macState = 2
			rec.macReadyAt = dr.Done + p.cfg.MACVerify
			if rec.respHeld {
				rec.respHeld = false
				p.respond(rec, rec.respAt)
			}
		}
		// Recycle only after the handler: a case that issues a fresh DRAM
		// request could otherwise reuse this node while dr is still live.
		p.freeNodes = append(p.freeNodes, nd)
	}
	// process arrivals due this cycle
	for _, a := range p.arrivals[p.arrHead:] {
		if a.at > now {
			break
		}
		p.handleArrival(a.rec, now)
		p.arrHead++
	}
	if p.arrHead == len(p.arrivals) {
		p.arrivals = p.arrivals[:0]
		p.arrHead = 0
	}
}

// mergePending drains the per-cycle staged buckets into the arrival
// FIFO. Bucket order is frame-cycle order and each bucket is already in
// SM order, so concatenation reproduces exactly the (cycle, SM) arrival
// sequence the per-cycle reference loop appends.
func (p *partition) mergePending() {
	if p.arrHead >= 256 {
		// Reclaim the consumed prefix once it dwarfs the live window so
		// the FIFO's backing array stops growing with total traffic.
		n := copy(p.arrivals, p.arrivals[p.arrHead:])
		p.arrivals = p.arrivals[:n]
		p.arrHead = 0
	}
	for i, b := range p.pendCyc {
		if len(b) > 0 {
			p.arrivals = append(p.arrivals, b...)
			p.pendCyc[i] = b[:0]
		}
	}
}

// nextEvent returns the earliest time a tick call can change partition
// state: the next SM-request arrival, the next DRAM completion or
// issue opportunity, or — when an overflowed submission is waiting and
// its class queue has room — the immediately following cycle (tick
// flushes overflow before anything else, so space found now is consumed
// at the next tick). Ticks at cycles strictly before the returned time
// are no-ops. Returns now for "next cycle", +Inf for idle.
func (p *partition) nextEvent(now float64) float64 {
	if (len(p.overflowR) > 0 && p.ch.CanEnqueue(false)) ||
		(len(p.overflowW) > 0 && p.ch.CanEnqueue(true)) {
		return now
	}
	ev := p.ch.NextEvent()
	// arrivals is a FIFO with monotone .at (accept stamps each request
	// with the current cycle plus the fixed interconnect latency), so the
	// head is the earliest.
	if p.arrHead < len(p.arrivals) && p.arrivals[p.arrHead].at < ev {
		ev = p.arrivals[p.arrHead].at
	}
	return ev
}

// reset restores the partition to its just-constructed state while
// keeping every allocation — cache arrays, channel queues, the memReq
// and reqNode free pools — for reuse by the next run.
func (p *partition) reset() {
	p.l2.Reset()
	p.eng.Reset()
	if p.cc != nil {
		p.cc.Reset()
	}
	if p.mac != nil {
		p.mac.Reset()
	}
	p.ch.Reset()
	p.arrivals = p.arrivals[:0]
	p.arrHead = 0
	p.overflowR = p.overflowR[:0]
	p.overflowW = p.overflowW[:0]
	p.responses = p.responses[:0]
	for i := range p.pendCyc {
		p.pendCyc[i] = p.pendCyc[i][:0]
	}
	p.reqID = 0
	p.extraReads, p.extraWrites = 0, 0
	p.macReads, p.macWrites = 0, 0
	p.synth = PartStats{}
}

// busy reports whether the partition still has pending work.
func (p *partition) busy() bool {
	return p.arrHead < len(p.arrivals) || len(p.overflowR) > 0 || len(p.overflowW) > 0 || len(p.responses) > 0 || p.ch.Busy()
}

// PartStats aggregates one partition's counters.
type PartStats struct {
	L2                 cache.Stats
	DRAM               dram.Stats
	Engine             engine.Stats
	Counter            cache.Stats // zero-valued unless counter mode
	ExtraCounterReads  uint64
	ExtraCounterWrites uint64
	MACReads           uint64
	MACWrites          uint64
}

func (p *partition) stats() PartStats {
	st := PartStats{
		L2:                 p.l2.Stats(),
		DRAM:               p.ch.Stats(),
		Engine:             p.eng.Stats(),
		ExtraCounterReads:  p.extraReads,
		ExtraCounterWrites: p.extraWrites,
		MACReads:           p.macReads,
		MACWrites:          p.macWrites,
	}
	if p.cc != nil {
		st.Counter = p.cc.Stats()
	}
	addScaledPartStats(&st, p.synth, 1)
	return st
}
