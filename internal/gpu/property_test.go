package gpu

import (
	"testing"
	"testing/quick"

	"seal/internal/prng"
)

// TestRandomStreamsAlwaysDrain is the no-deadlock property: any mix of
// reads, writes and compute across SMs, under any encryption mode,
// terminates with every request answered.
func TestRandomStreamsAlwaysDrain(t *testing.T) {
	check := func(seed uint64, modeRaw uint8) bool {
		r := prng.New(seed)
		mode := EncMode(modeRaw % 3)
		cfg := smallCfg().WithMode(mode, func(addr uint64) bool {
			return addr&64 == 0 // arbitrary half-protected predicate
		})
		streams := make([]Stream, cfg.NumSMs)
		var wantMem int64
		for i := range streams {
			n := r.Intn(200) + 1
			st := make(Stream, n)
			for j := range st {
				switch r.Intn(4) {
				case 0:
					st[j] = Op{Compute: r.Intn(20), NoMem: true}
				case 1:
					st[j] = Op{Compute: r.Intn(5), Addr: uint64(r.Intn(1<<22)) &^ 63, Write: true}
					wantMem++
				default:
					st[j] = Op{Compute: r.Intn(5), Addr: uint64(r.Intn(1<<22)) &^ 63}
					wantMem++
				}
			}
			streams[i] = st
		}
		sim, err := New(cfg)
		if err != nil {
			return false
		}
		res, err := sim.Run(streams)
		if err != nil {
			return false
		}
		return res.MemRequests == wantMem && res.Cycles > 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestDRAMTrafficConservation: in baseline mode every distinct missed
// line is fetched exactly once (reads) and dirty lines written back at
// most once per eviction — total DRAM reads never exceed requested
// distinct lines plus re-fetches after eviction, and engine bytes are
// zero.
func TestDRAMTrafficConservation(t *testing.T) {
	cfg := smallCfg()
	s := mustSim(t, cfg)
	const n = 3000
	res := mustRun(t, s, []Stream{readStream(n, 0, 0)})
	var reads, writes uint64
	for _, p := range res.Parts {
		reads += p.DRAM.Reads
		writes += p.DRAM.Writes
	}
	if reads != n {
		t.Fatalf("distinct-line stream fetched %d lines, want %d", reads, n)
	}
	if writes != 0 {
		t.Fatalf("clean read stream produced %d writebacks", writes)
	}
	if res.EngineBytes() != 0 {
		t.Fatal("baseline used the engine")
	}
}

// TestProtectedPredicateGranularity: the engine sees exactly the
// protected share of a stream that alternates protected/plain lines.
func TestProtectedPredicateGranularity(t *testing.T) {
	cfg := smallCfg().WithMode(ModeDirect, func(addr uint64) bool {
		return (addr/64)%4 == 0 // 25% of lines
	})
	s := mustSim(t, cfg)
	const n = 4000
	res := mustRun(t, s, []Stream{readStream(n, 0, 0)})
	frac := float64(res.EngineBytes()) / float64(res.DRAMBytes())
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("engine saw %.3f of traffic, want ≈0.25", frac)
	}
}
