package gpu

import (
	"fmt"
	"math"
	"os"
)

// respQueue holds one SM's pending response-ready times, sorted
// ascending. Responses arrive nearly in time order, so push is almost
// always an append and the rare out-of-order arrival shifts a handful of
// tail entries; pop is a head-index bump. That beats a binary heap —
// whose every pop sifts through the full MSHR window — on the
// simulator's hottest path, while popping the exact same value sequence.
type respQueue struct {
	buf  []float64
	head int
}

func (q *respQueue) push(v float64) {
	if q.head >= 64 {
		// Reclaim the consumed prefix once it dwarfs the live window
		// (bounded by the MSHR count), keeping the buffer from growing
		// with total traffic.
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	buf := append(q.buf, v)
	i := len(buf) - 2
	for i >= q.head && buf[i] > v {
		i--
	}
	if i+2 < len(buf) {
		copy(buf[i+2:], buf[i+1:len(buf)-1])
	}
	buf[i+1] = v
	q.buf = buf
}

func (q *respQueue) pop() {
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
}

func (q *respQueue) empty() bool { return q.head == len(q.buf) }

// min returns the earliest pending time; the queue must be non-empty.
func (q *respQueue) min() float64 { return q.buf[q.head] }

// sm is the in-order trace-replay model of one streaming multiprocessor.
type sm struct {
	stream      Stream
	opIdx       int
	computeLeft int
	outstanding int
	resp        respQueue
	warpInsts   int64
	memIssued   int64 // memory requests issued so far (stat-mode progress)
	stallCycles int64
	finishCycle float64 // cycle during which the SM became finished
}

func (s *sm) loadOp() {
	if s.opIdx < len(s.stream) {
		s.computeLeft = s.stream[s.opIdx].Compute
	}
}

func (s *sm) finished() bool {
	return s.opIdx >= len(s.stream) && s.outstanding == 0
}

// Result summarizes one simulation run.
type Result struct {
	Cycles      float64
	WarpInsts   int64
	ThreadInsts int64
	IPC         float64 // thread instructions per cycle (GPGPU-Sim convention)
	MemRequests int64
	StallCycles int64
	Parts       []PartStats
	// ExactFrac is the fraction of Cycles that was simulated exactly: 1
	// for the exact schedulers, below 1 when the statistical fast-sim
	// mode closed the run analytically (DESIGN.md §17).
	ExactFrac float64
}

// DRAMBytes returns total bytes moved on all channels.
func (r Result) DRAMBytes() uint64 {
	var n uint64
	for _, p := range r.Parts {
		n += p.DRAM.Bytes
	}
	return n
}

// EngineBytes returns total bytes through all AES engines.
func (r Result) EngineBytes() uint64 {
	var n uint64
	for _, p := range r.Parts {
		n += p.Engine.Bytes
	}
	return n
}

// CounterHitRate returns the aggregate counter-cache hit rate.
func (r Result) CounterHitRate() float64 {
	var hits, misses uint64
	for _, p := range r.Parts {
		hits += p.Counter.Hits
		misses += p.Counter.Misses
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// L2HitRate returns the aggregate L2 hit rate.
func (r Result) L2HitRate() float64 {
	var hits, misses uint64
	for _, p := range r.Parts {
		hits += p.L2.Hits
		misses += p.L2.Misses
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Sim is a simulated GPU instance. Caches and engine state persist
// across Run calls so multi-kernel workloads (successive NN layers) see
// warm caches; use Reset for independent experiments.
//
// Run advances time with next-event fast-forward by default: when no SM
// can issue and no partition has work due, the clock jumps straight to
// the earliest pending event instead of ticking idle cycles. The
// per-cycle reference scheduler is preserved behind Config.Reference /
// SEAL_SIM_REF=1 and both produce bit-identical Results (DESIGN.md §12).
type Sim struct {
	cfg   Config
	parts []*partition
	now   float64
	ref   bool // per-cycle reference scheduler instead of fast-forward
	// frameBase is the first cycle of the frame the SM phase is currently
	// replaying; issue uses it to pick the staging bucket for a request.
	frameBase float64
	// smPool recycles SM state (and the response-queue buffers inside)
	// across Runs, so a warmed simulator replays a workload without
	// growing the heap.
	smPool []*sm
	// stat is non-nil when the statistical fast-sim mode is armed
	// (Config.Stat.Enable and not reference mode — the ground-truth path
	// always runs exact).
	stat *statState
	// statMemos caches measured closure profiles by stream content hash,
	// so re-runs of an identical trace (repeated network layers, sweep
	// replays) validate one window and reuse the recorded totals.
	statMemos map[uint64]*statMemo
}

// frameLen returns the event-driven scheduler's frame length for an
// interconnect latency: the conservative lookahead window, at least one
// cycle.
func frameLen(lat float64) int {
	if l := int(math.Floor(lat)); l > 1 {
		return l
	}
	return 1
}

// New constructs a simulator; it returns an error on invalid config.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg, ref: cfg.Reference || os.Getenv("SEAL_SIM_REF") == "1"}
	for i := 0; i < cfg.Channels; i++ {
		s.parts = append(s.parts, newPartition(i, &s.cfg))
	}
	if cfg.Stat.Enable && !s.ref {
		s.stat = &statState{cfg: cfg.Stat}
	}
	return s, nil
}

// Config returns the simulator configuration.
func (s *Sim) Config() Config { return s.cfg }

// channelOf maps a line address to its memory partition (fine-grained
// line interleaving, the common GPU address mapping).
func (s *Sim) channelOf(addr uint64) int {
	return int((addr / uint64(s.cfg.LineBytes)) % uint64(s.cfg.Channels))
}

// Run replays one per-SM stream set to completion and returns aggregate
// results. len(streams) must not exceed NumSMs; missing streams idle.
func (s *Sim) Run(streams []Stream) (Result, error) {
	if len(streams) > s.cfg.NumSMs {
		return Result{}, fmt.Errorf("gpu: %d streams for %d SMs", len(streams), s.cfg.NumSMs)
	}
	for len(s.smPool) < len(streams) {
		s.smPool = append(s.smPool, &sm{})
	}
	sms := s.smPool[:len(streams)]
	var totalMem, totalWarp int64
	for i, st := range streams {
		m := sms[i]
		buf := m.resp.buf[:0]
		*m = sm{stream: st}
		m.resp.buf = buf
		m.loadOp()
		if s.stat != nil {
			w, mm := st.totals()
			totalWarp += w
			totalMem += mm
		} else {
			totalMem += st.MemOps()
		}
	}
	start := s.now
	if s.stat != nil {
		s.stat.begin(start, totalWarp, totalMem, len(s.parts))
		if !s.stat.done {
			s.stat.sig = hashStreams(streams, s.cfg.Protected)
			if m := s.statMemos[s.stat.sig]; m != nil && m.totalWarp == totalWarp && m.totalMem == totalMem {
				s.stat.memo = m
			}
		}
	}
	if s.ref {
		s.runRef(sms)
	} else {
		s.runFast(sms)
	}
	var warp int64
	var stalls int64
	for _, m := range sms {
		warp += m.warpInsts
		stalls += m.stallCycles
	}
	exact := s.now - start
	if st := s.stat; st != nil && st.closed {
		if !st.memoApplied && st.haveFirst {
			s.recordStatMemo(start)
		}
		// The closure skipped the streams' middles; the tails then ran
		// exactly (s.now already covers them), so the middles'
		// extrapolated cycles are inserted time, and the synthesized
		// SM-side counters are folded in alongside.
		s.now += st.extraCycles
		warp += st.extraWarp
		stalls += st.extraStall
	}
	cycles := s.now - start
	res := Result{
		Cycles:      cycles,
		WarpInsts:   warp,
		ThreadInsts: warp * int64(s.cfg.LanesPerWarp),
		MemRequests: totalMem,
		StallCycles: stalls,
		ExactFrac:   1,
	}
	if cycles > 0 {
		res.IPC = float64(res.ThreadInsts) / cycles
		res.ExactFrac = exact / cycles
	}
	for _, p := range s.parts {
		res.Parts = append(res.Parts, p.stats())
	}
	return res, nil
}

// runRef is the per-cycle reference scheduler: every core cycle ticks
// every partition and polls every SM, whether or not anything is due.
// It is the seed implementation, kept verbatim as the semantic ground
// truth the fast-forward path is tested against (SEAL_SIM_REF=1).
func (s *Sim) runRef(sms []*sm) {
	active := len(sms)
	for active > 0 || s.partsBusy() {
		active = s.stepCycle(sms)
		s.now++
	}
}

// runFast is the event-driven scheduler. It exploits the interconnect
// latency as conservative lookahead, the classic parallel discrete-event
// trick applied single-threaded: any message between an SM and a
// partition takes at least InterconnectLat cycles to land, so during a
// frame of that many cycles every component's inputs are already known.
// Each partition therefore advances through the whole frame alone,
// hopping from event cycle to event cycle (nextEvent proves the ticks in
// between are no-ops), and then each SM replays its frame in one tight
// loop, bulk-applying stall and full-width-compute spans between its own
// wake-ups — with no global "every SM must be idle" precondition.
// Requests the SMs issue are staged per SM and merged into the partition
// arrival FIFOs at the frame boundary in (cycle, SM) order, exactly the
// order the per-cycle loop would have produced. Results are bit-identical
// to runRef (DESIGN.md §12): every skipped cycle is provably a uniform
// no-op for the component that skipped it, and every timestamp crossing
// the SM/partition boundary is computed by the same code at the same
// simulated time.
func (s *Sim) runFast(sms []*sm) {
	if len(sms) == 0 && !s.partsBusy() {
		return
	}
	start := s.now
	lookahead := float64(frameLen(s.cfg.InterconnectLat))
	active := 0
	for _, m := range sms {
		// An SM finished at entry (empty stream) is observed finished by
		// the reference loop's very first cycle.
		m.finishCycle = start
		if !m.finished() {
			active++
		}
	}
	gMax := math.Inf(-1) // latest cycle whose tick left a partition idle
	for active > 0 || s.partsBusy() {
		end := s.now + lookahead
		for _, p := range s.parts {
			if g := s.runPartFrame(p, sms, end); g > gMax {
				gMax = g
			}
		}
		active = 0
		s.frameBase = s.now
		for id, m := range sms {
			if m.finished() {
				continue
			}
			s.runSMFrame(id, m, end)
			if !m.finished() {
				active++
			}
		}
		for _, p := range s.parts {
			p.mergePending()
		}
		s.now = end
		// Statistical fast-sim: at frame boundaries past the warm-up,
		// judge steady state and possibly close the run analytically
		// (stat.go). Closing truncates the streams; the loop then drains
		// the in-flight tail exactly and exits on its own.
		if st := s.stat; st != nil && !st.done {
			s.statCheck(sms)
		}
	}
	// The reference loop exits one cycle after the first cycle T whose
	// step observes every SM finished and leaves every partition idle;
	// reconstruct that exact clock value from the recorded transition
	// cycles.
	final := start
	for _, m := range sms {
		if m.finishCycle > final {
			final = m.finishCycle
		}
	}
	if gMax > final {
		final = gMax
	}
	s.now = final + 1
}

// runPartFrame advances partition p through the frame [s.now, end): it
// ticks only at event cycles (nextEvent proves the rest are no-ops),
// routes completed responses to the SM queues, and returns the latest
// cycle whose tick left the partition with nothing pending (-Inf if
// none), which runFast needs to reconstruct the exact end-of-run clock.
func (s *Sim) runPartFrame(p *partition, sms []*sm, end float64) float64 {
	idle := math.Inf(-1)
	cur := s.now
	for cur < end {
		if e := p.nextEvent(cur); e > cur {
			if e >= end {
				break
			}
			if c := math.Ceil(e); c > cur {
				cur = c
				if cur >= end {
					break
				}
			}
		}
		p.tick(cur)
		for _, resp := range p.responses {
			sms[resp.smID].resp.push(resp.readyAt)
		}
		p.responses = p.responses[:0]
		if !p.busy() {
			idle = cur
		}
		cur++
	}
	return idle
}

// runSMFrame advances one SM through the frame [s.now, end). Cycles at
// which the SM acts run the exact per-cycle issue body; the spans in
// between fall into three provably-uniform cases that are applied in
// bulk — drained (no per-cycle effect until a response retires),
// full-width compute (IssueWidth warp instructions per cycle), and
// MSHR-stalled (one stall cycle per cycle) — so the accounting matches
// the reference cycle loop bit for bit.
func (s *Sim) runSMFrame(id int, m *sm, end float64) {
	cur := s.now
	w := s.cfg.IssueWidth
	for cur < end {
		for !m.resp.empty() && m.resp.min() <= cur {
			m.resp.pop()
			m.outstanding--
		}
		if m.finished() {
			// Finished by a pop: the reference step checks finished right
			// after retiring responses, so this very cycle observes it.
			m.finishCycle = cur
			return
		}
		s.issue(id, m, cur, true)
		if m.finished() {
			// Finished during issue: the reference step already counted
			// this SM active this cycle and observes the finish at the
			// next cycle's check.
			m.finishCycle = cur + 1
			return
		}
		cur++
		if cur >= end {
			return
		}
		if m.opIdx >= len(m.stream) {
			// Drained: nothing happens until a response retires. Responses
			// not yet in the queue can only ready in a later frame.
			if m.resp.empty() {
				return
			}
			if c := math.Ceil(m.resp.min()); c > cur {
				cur = c
			}
			continue
		}
		if m.computeLeft >= w {
			// Full-width compute horizon, clipped to the frame.
			k := int64(m.computeLeft / w)
			if span := int64(end - cur); k > span {
				k = span
			}
			m.computeLeft -= int(k) * w
			m.warpInsts += k * int64(w)
			cur += float64(k)
			continue
		}
		if m.computeLeft == 0 && !m.stream[m.opIdx].NoMem && m.outstanding >= s.cfg.MaxOutstanding {
			// MSHR-stalled: one stall per cycle until the first retire.
			nx := end
			if !m.resp.empty() {
				if c := math.Ceil(m.resp.min()); c < nx {
					nx = c
				}
			}
			m.stallCycles += int64(nx - cur)
			cur = nx
		}
		// Anything else — residual compute, a NoMem boundary, a memory op
		// with MSHR room — issues next cycle: loop.
	}
}

// stepCycle processes core cycle s.now for the reference scheduler:
// every partition ticks and its responses route to the SM queues, then
// each SM retires due responses and issues. Returns the number of
// unfinished SMs.
func (s *Sim) stepCycle(sms []*sm) int {
	for _, p := range s.parts {
		p.tick(s.now)
		// route responses to SM queues
		for _, resp := range p.responses {
			sms[resp.smID].resp.push(resp.readyAt)
		}
		p.responses = p.responses[:0]
	}
	active := 0
	for id, m := range sms {
		// retire responses
		for !m.resp.empty() && m.resp.min() <= s.now {
			m.resp.pop()
			m.outstanding--
		}
		if m.finished() {
			continue
		}
		active++
		s.issue(id, m, s.now, false)
	}
	return active
}

// issue runs one SM's issue slots for core cycle now. With buffered set
// (the frame scheduler), new memory requests stage in the per-SM pending
// lists for the frame-boundary merge; otherwise (the per-cycle
// reference) they append straight to the partition arrival FIFO, which
// the cycle-major loop order keeps sorted.
func (s *Sim) issue(id int, m *sm, now float64, buffered bool) {
	slots := s.cfg.IssueWidth
	for slots > 0 {
		if m.opIdx >= len(m.stream) {
			return
		}
		op := &m.stream[m.opIdx]
		if m.computeLeft > 0 {
			k := m.computeLeft
			if k > slots {
				k = slots
			}
			m.computeLeft -= k
			slots -= k
			m.warpInsts += int64(k)
			continue
		}
		if op.NoMem {
			m.opIdx++
			m.loadOp()
			continue
		}
		if m.outstanding >= s.cfg.MaxOutstanding {
			m.stallCycles++
			return // structural stall: wait for MSHR
		}
		p := s.parts[s.channelOf(op.Addr)]
		rec := p.getRec(id, op.Addr, op.Write)
		if buffered {
			b := int(now - s.frameBase)
			p.pendCyc[b] = append(p.pendCyc[b], arrival{rec: rec, at: now + s.cfg.InterconnectLat})
		} else {
			p.accept(rec, now+s.cfg.InterconnectLat)
		}
		m.outstanding++
		m.warpInsts++
		m.memIssued++
		slots--
		m.opIdx++
		m.loadOp()
	}
}

func (s *Sim) partsBusy() bool {
	for _, p := range s.parts {
		if p.busy() {
			return true
		}
	}
	return false
}

// Stats returns per-partition statistics accumulated so far.
func (s *Sim) Stats() []PartStats {
	out := make([]PartStats, len(s.parts))
	for i, p := range s.parts {
		out[i] = p.stats()
	}
	return out
}

// Now returns the current simulation time in core cycles.
func (s *Sim) Now() float64 { return s.now }

// Reset restores cold caches, idle engines and time zero. Partition
// allocations — cache arrays, channel queues, the request free pools —
// are kept and reused, so sweeps that Reset between points keep the
// steady-state zero-allocation behavior of warm runs.
func (s *Sim) Reset() {
	s.now = 0
	for _, p := range s.parts {
		p.reset()
	}
	s.statMemos = nil
}
