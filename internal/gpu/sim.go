package gpu

import (
	"fmt"
)

// floatHeap is a min-heap of response-ready times for one SM. It is a
// concrete []float64 heap rather than container/heap: the interface
// version boxes every timestamp pushed through Push(any), one hidden
// heap allocation per memory response on the simulator's hottest path,
// and routes every comparison through dynamic dispatch.
type floatHeap []float64

func (h *floatHeap) push(v float64) {
	s := append(*h, v)
	*h = s
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *floatHeap) pop() {
	s := *h
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && s[r] < s[l] {
			min = r
		}
		if s[i] <= s[min] {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
}

// sm is the in-order trace-replay model of one streaming multiprocessor.
type sm struct {
	stream      Stream
	opIdx       int
	computeLeft int
	outstanding int
	resp        floatHeap
	warpInsts   int64
	stallCycles int64
}

func (s *sm) loadOp() {
	if s.opIdx < len(s.stream) {
		s.computeLeft = s.stream[s.opIdx].Compute
	}
}

func (s *sm) finished() bool {
	return s.opIdx >= len(s.stream) && s.outstanding == 0
}

// Result summarizes one simulation run.
type Result struct {
	Cycles      float64
	WarpInsts   int64
	ThreadInsts int64
	IPC         float64 // thread instructions per cycle (GPGPU-Sim convention)
	MemRequests int64
	StallCycles int64
	Parts       []PartStats
}

// DRAMBytes returns total bytes moved on all channels.
func (r Result) DRAMBytes() uint64 {
	var n uint64
	for _, p := range r.Parts {
		n += p.DRAM.Bytes
	}
	return n
}

// EngineBytes returns total bytes through all AES engines.
func (r Result) EngineBytes() uint64 {
	var n uint64
	for _, p := range r.Parts {
		n += p.Engine.Bytes
	}
	return n
}

// CounterHitRate returns the aggregate counter-cache hit rate.
func (r Result) CounterHitRate() float64 {
	var hits, misses uint64
	for _, p := range r.Parts {
		hits += p.Counter.Hits
		misses += p.Counter.Misses
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// L2HitRate returns the aggregate L2 hit rate.
func (r Result) L2HitRate() float64 {
	var hits, misses uint64
	for _, p := range r.Parts {
		hits += p.L2.Hits
		misses += p.L2.Misses
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Sim is a simulated GPU instance. Caches and engine state persist
// across Run calls so multi-kernel workloads (successive NN layers) see
// warm caches; use Reset for independent experiments.
type Sim struct {
	cfg   Config
	parts []*partition
	now   float64
}

// New constructs a simulator; it returns an error on invalid config.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg}
	for i := 0; i < cfg.Channels; i++ {
		s.parts = append(s.parts, newPartition(i, &s.cfg))
	}
	return s, nil
}

// Config returns the simulator configuration.
func (s *Sim) Config() Config { return s.cfg }

// channelOf maps a line address to its memory partition (fine-grained
// line interleaving, the common GPU address mapping).
func (s *Sim) channelOf(addr uint64) int {
	return int((addr / uint64(s.cfg.LineBytes)) % uint64(s.cfg.Channels))
}

// Run replays one per-SM stream set to completion and returns aggregate
// results. len(streams) must not exceed NumSMs; missing streams idle.
func (s *Sim) Run(streams []Stream) (Result, error) {
	if len(streams) > s.cfg.NumSMs {
		return Result{}, fmt.Errorf("gpu: %d streams for %d SMs", len(streams), s.cfg.NumSMs)
	}
	sms := make([]*sm, len(streams))
	var totalMem int64
	for i, st := range streams {
		sms[i] = &sm{stream: st}
		sms[i].loadOp()
		totalMem += st.MemOps()
	}
	start := s.now
	active := len(sms)
	for active > 0 || s.partsBusy() {
		for _, p := range s.parts {
			p.tick(s.now)
			// route responses to SM heaps
			for _, resp := range p.responses {
				sms[resp.smID].resp.push(resp.readyAt)
			}
			p.responses = p.responses[:0]
		}
		active = 0
		for id, m := range sms {
			// retire responses
			for len(m.resp) > 0 && m.resp[0] <= s.now {
				m.resp.pop()
				m.outstanding--
			}
			if m.finished() {
				continue
			}
			active++
			s.issue(id, m)
		}
		s.now++
	}
	var warp int64
	var stalls int64
	for _, m := range sms {
		warp += m.warpInsts
		stalls += m.stallCycles
	}
	cycles := s.now - start
	res := Result{
		Cycles:      cycles,
		WarpInsts:   warp,
		ThreadInsts: warp * int64(s.cfg.LanesPerWarp),
		MemRequests: totalMem,
		StallCycles: stalls,
	}
	if cycles > 0 {
		res.IPC = float64(res.ThreadInsts) / cycles
	}
	for _, p := range s.parts {
		res.Parts = append(res.Parts, p.stats())
	}
	return res, nil
}

func (s *Sim) issue(id int, m *sm) {
	slots := s.cfg.IssueWidth
	for slots > 0 {
		if m.opIdx >= len(m.stream) {
			return
		}
		op := &m.stream[m.opIdx]
		if m.computeLeft > 0 {
			k := m.computeLeft
			if k > slots {
				k = slots
			}
			m.computeLeft -= k
			slots -= k
			m.warpInsts += int64(k)
			continue
		}
		if op.NoMem {
			m.opIdx++
			m.loadOp()
			continue
		}
		if m.outstanding >= s.cfg.MaxOutstanding {
			m.stallCycles++
			return // structural stall: wait for MSHR
		}
		p := s.parts[s.channelOf(op.Addr)]
		rec := p.getRec(id, op.Addr, op.Write)
		p.accept(rec, s.now+s.cfg.InterconnectLat)
		m.outstanding++
		m.warpInsts++
		slots--
		m.opIdx++
		m.loadOp()
	}
}

func (s *Sim) partsBusy() bool {
	for _, p := range s.parts {
		if p.busy() {
			return true
		}
	}
	return false
}

// Stats returns per-partition statistics accumulated so far.
func (s *Sim) Stats() []PartStats {
	out := make([]PartStats, len(s.parts))
	for i, p := range s.parts {
		out[i] = p.stats()
	}
	return out
}

// Now returns the current simulation time in core cycles.
func (s *Sim) Now() float64 { return s.now }

// Reset restores cold caches, idle engines and time zero.
func (s *Sim) Reset() {
	s.now = 0
	for i := range s.parts {
		s.parts[i] = newPartition(i, &s.cfg)
	}
}
