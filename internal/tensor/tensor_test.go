package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"seal/internal/prng"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("size = %d, want 24", x.Size())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(2, 0) did not panic")
		}
	}()
	New(2, 0)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	x.Set(7.5, 1, 2, 3)
	if got := x.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// row-major offset check: ((1*4)+2)*5+3 = 33
	if x.Data[33] != 7.5 {
		t.Fatalf("offset mismatch: Data[33] = %v", x.Data[33])
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds At did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[0] = 42
	if x.Data[0] != 42 {
		t.Fatal("reshape did not share data")
	}
	if y.Dim(0) != 3 || y.Dim(1) != 4 {
		t.Fatalf("reshape shape %v", y.Shape)
	}
}

func TestReshapePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape did not panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := New(4)
	x.Fill(1)
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 1 {
		t.Fatal("clone shares data with original")
	}
}

func TestArithmetic(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	y := FromSlice([]float32{10, 20, 30}, 3)
	x.Add(y)
	if x.Data[2] != 33 {
		t.Fatalf("Add: %v", x.Data)
	}
	x.Sub(y)
	if x.Data[2] != 3 {
		t.Fatalf("Sub: %v", x.Data)
	}
	x.Scale(2)
	if x.Data[1] != 4 {
		t.Fatalf("Scale: %v", x.Data)
	}
	x.AddScaled(0.5, y)
	if x.Data[0] != 7 {
		t.Fatalf("AddScaled: %v", x.Data)
	}
	x = FromSlice([]float32{1, 2, 3}, 3)
	x.Hadamard(y)
	if x.Data[2] != 90 {
		t.Fatalf("Hadamard: %v", x.Data)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{-1, 2, -3, 4}, 4)
	if s := x.Sum(); s != 2 {
		t.Fatalf("Sum = %v", s)
	}
	if s := x.AbsSum(); s != 10 {
		t.Fatalf("AbsSum = %v", s)
	}
	if s := x.SqSum(); s != 30 {
		t.Fatalf("SqSum = %v", s)
	}
	if m := x.MaxAbs(); m != 4 {
		t.Fatalf("MaxAbs = %v", m)
	}
	if i := x.ArgMax(); i != 3 {
		t.Fatalf("ArgMax = %v", i)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := prng.New(1)
	a := New(5, 5)
	for i := range a.Data {
		a.Data[i] = float32(r.NormFloat64())
	}
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Data[i*5+i] = 1
	}
	c := MatMul(a, id)
	if !Equal(a, c, 0) {
		t.Fatal("A×I != A")
	}
	c = MatMul(id, a)
	if !Equal(a, c, 0) {
		t.Fatal("I×A != A")
	}
}

func TestMatMulTransAgreesWithExplicitTranspose(t *testing.T) {
	r := prng.New(2)
	a := New(4, 3)
	b := New(4, 5)
	for i := range a.Data {
		a.Data[i] = float32(r.NormFloat64())
	}
	for i := range b.Data {
		b.Data[i] = float32(r.NormFloat64())
	}
	got := MatMulTransA(a, b)
	want := MatMul(a.Transpose(), b)
	if !Equal(got, want, 1e-5) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}

	d := New(6, 3)
	for i := range d.Data {
		d.Data[i] = float32(r.NormFloat64())
	}
	got = MatMulTransB(a, d) // [4,3] × [6,3]ᵀ = [4,6]
	want = MatMul(a, d.Transpose())
	if !Equal(got, want, 1e-5) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	// (A×B)×C == A×(B×C) within float tolerance, on small random matrices.
	check := func(seed uint64) bool {
		r := prng.New(seed)
		dims := []int{r.Intn(4) + 1, r.Intn(4) + 1, r.Intn(4) + 1, r.Intn(4) + 1}
		a, b, c := New(dims[0], dims[1]), New(dims[1], dims[2]), New(dims[2], dims[3])
		for _, m := range []*Tensor{a, b, c} {
			for i := range m.Data {
				m.Data[i] = float32(r.NormFloat64())
			}
		}
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return Equal(left, right, 1e-3)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	check := func(seed uint64) bool {
		r := prng.New(seed)
		m, n := r.Intn(6)+1, r.Intn(6)+1
		a := New(m, n)
		for i := range a.Data {
			a.Data[i] = float32(r.NormFloat64())
		}
		return Equal(a, a.Transpose().Transpose(), 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRowView(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	row := a.Row(1)
	if row.Size() != 3 || row.Data[0] != 4 {
		t.Fatalf("Row(1) = %v", row.Data)
	}
	row.Data[0] = 99
	if a.At(1, 0) != 99 {
		t.Fatal("Row is not a view")
	}
}

func TestEqualShapes(t *testing.T) {
	if Equal(New(2, 3), New(3, 2), 1) {
		t.Fatal("Equal ignored shape mismatch")
	}
	if !SameShape(New(2, 3), New(2, 3)) {
		t.Fatal("SameShape false negative")
	}
}

func TestSumFloat64Precision(t *testing.T) {
	// 1e7 elements of 0.1 would lose precision in float32 accumulation.
	x := New(1 << 20)
	x.Fill(0.1)
	got := x.Sum()
	want := float64(x.Size()) * float64(float32(0.1))
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("Sum precision: got %v want %v", got, want)
	}
}
