package tensor

import (
	"testing"

	"seal/internal/parallel"
	"seal/internal/prng"
)

func randTensorWithZeros(r *prng.Source, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		v := float32(r.NormFloat64())
		// plant exact zeros so the av==0 skip path is exercised
		if r.Float64() < 0.15 {
			v = 0
		}
		t.Data[i] = v
	}
	return t
}

// packCols copies columns [p0, p1) of a into a fresh [m, p1-p0] panel,
// the layout the streaming engine produces from decrypted weight bytes.
func packCols(a *Tensor, p0, p1 int) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	p := New(m, p1-p0)
	for i := 0; i < m; i++ {
		copy(p.Data[i*(p1-p0):(i+1)*(p1-p0)], a.Data[i*k+p0:i*k+p1])
	}
	return p
}

// TestMatMulPanelAccBitIdentical checks that accumulating a k-split in
// ascending panels reproduces the one-shot MatMulIntoWS bit for bit, at
// several split geometries and shapes (including remainder-column paths)
// and at both pool widths.
func TestMatMulPanelAccBitIdentical(t *testing.T) {
	r := prng.New(11)
	shapes := []struct{ m, k, n int }{
		{8, 36, 64},   // conv-like, n multiple of 8
		{13, 27, 37},  // all remainder paths
		{4, 90, 100},  // narrow m
		{64, 72, 256}, // big enough to cross minParallelOps
	}
	splits := []int{1, 5, 9, 1 << 30}
	for _, sh := range shapes {
		a := randTensorWithZeros(r, sh.m, sh.k)
		b := randTensorWithZeros(r, sh.k, sh.n)
		want := New(sh.m, sh.n)
		MatMulIntoWS(want, a, b, nil)
		for _, step := range splits {
			for _, workers := range []int{1, 8} {
				prev := parallel.SetWorkers(workers)
				got := New(sh.m, sh.n)
				got.Fill(999) // panel 0 must fully overwrite
				for p0 := 0; p0 < sh.k; {
					p1 := p0 + step
					if p1 > sh.k || p1 < 0 {
						p1 = sh.k
					}
					MatMulPanelAccWS(got, packCols(a, p0, p1), b, p0, p0 > 0, nil)
					p0 = p1
				}
				parallel.SetWorkers(prev)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("shape %+v step %d workers %d: element %d = %v, want %v",
							sh, step, workers, i, got.Data[i], want.Data[i])
					}
				}
			}
		}
	}
}

// TestMatMulTransBPanelAccBitIdentical is the FC-side counterpart:
// ascending panels over A's columns (= B's columns) must reproduce
// MatMulTransBIntoWS bit for bit.
func TestMatMulTransBPanelAccBitIdentical(t *testing.T) {
	r := prng.New(23)
	shapes := []struct{ m, k, n int }{
		{1, 48, 10},  // batch-1 logits
		{16, 33, 40}, // odd k and n
		{16, 512, 64},
	}
	for _, sh := range shapes {
		a := randTensorWithZeros(r, sh.m, sh.k)
		b := randTensorWithZeros(r, sh.n, sh.k)
		want := New(sh.m, sh.n)
		MatMulTransBIntoWS(want, a, b, nil)
		for _, step := range []int{1, 7, 1 << 30} {
			for _, workers := range []int{1, 8} {
				prev := parallel.SetWorkers(workers)
				got := New(sh.m, sh.n)
				got.Fill(-999)
				for p0 := 0; p0 < sh.k; {
					p1 := p0 + step
					if p1 > sh.k || p1 < 0 {
						p1 = sh.k
					}
					MatMulTransBPanelAccWS(got, a, p0, packCols(b, p0, p1), p0 > 0)
					p0 = p1
				}
				parallel.SetWorkers(prev)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("shape %+v step %d workers %d: element %d = %v, want %v",
							sh, step, workers, i, got.Data[i], want.Data[i])
					}
				}
			}
		}
	}
}

func TestMatMulPanelAccPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	a := New(2, 3)
	b := New(8, 4)
	c := New(2, 4)
	expectPanic("panel beyond B", func() { MatMulPanelAccWS(c, a, b, 6, false, nil) })
	expectPanic("short scratch", func() { MatMulPanelAccWS(c, a, b, 0, false, make([]float32, 1)) })
	expectPanic("bad C shape", func() { MatMulPanelAccWS(New(3, 4), a, b, 0, false, nil) })
	x := New(2, 8)
	expectPanic("transB panel beyond A", func() { MatMulTransBPanelAccWS(c, x, 6, New(4, 3), false) })
	expectPanic("transB bad C", func() { MatMulTransBPanelAccWS(New(9, 9), x, 0, New(4, 8), false) })
}
