package tensor

import (
	"testing"
	"testing/quick"

	"seal/internal/prng"
)

// naiveConv computes a single-image convolution directly from the
// definition, as the reference for the im2col path.
func naiveConv(x *Tensor, w *Tensor, g ConvGeom, outC int) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	out := New(outC, oh, ow)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for ic := 0; ic < g.InC; ic++ {
					for kh := 0; kh < g.KH; kh++ {
						for kw := 0; kw < g.KW; kw++ {
							iy := oy*g.Stride + kh - g.Pad
							ix := ox*g.Stride + kw - g.Pad
							if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
								continue
							}
							s += x.At(ic, iy, ix) * w.At(oc, ic, kh, kw)
						}
					}
				}
				out.Set(s, oc, oy, ox)
			}
		}
	}
	return out
}

func randTensor(r *prng.Source, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64())
	}
	return t
}

func TestGeomOutputSize(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if g.OutH() != 32 || g.OutW() != 32 {
		t.Fatalf("same-padding 3x3: out %dx%d", g.OutH(), g.OutW())
	}
	g = ConvGeom{InC: 3, InH: 32, InW: 32, KH: 2, KW: 2, Stride: 2, Pad: 0}
	if g.OutH() != 16 || g.OutW() != 16 {
		t.Fatalf("2x2/2 pool: out %dx%d", g.OutH(), g.OutW())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1, Pad: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted kernel larger than padded input")
	}
}

func TestIm2ColMatchesNaiveConv(t *testing.T) {
	r := prng.New(5)
	cases := []ConvGeom{
		{InC: 1, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 0},
		{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 2, Pad: 1},
		{InC: 4, InH: 7, InW: 5, KH: 1, KW: 1, Stride: 1, Pad: 0},
		{InC: 2, InH: 9, InW: 9, KH: 5, KW: 5, Stride: 2, Pad: 2},
	}
	for _, g := range cases {
		outC := 3
		x := randTensor(r, g.InC, g.InH, g.InW)
		w := randTensor(r, outC, g.InC, g.KH, g.KW)
		cols := Im2Col(x, g)
		wMat := w.Reshape(outC, g.InC*g.KH*g.KW)
		got := MatMul(wMat, cols).Reshape(outC, g.OutH(), g.OutW())
		want := naiveConv(x, w, g, outC)
		if !Equal(got, want, 1e-4) {
			t.Fatalf("im2col conv mismatch for %+v", g)
		}
	}
}

func TestIm2ColChannelLocality(t *testing.T) {
	// The SEAL-critical property: im2col rows for channel c depend only on
	// input channel c. Zeroing channel 0 must zero exactly rows [0, KH*KW).
	g := ConvGeom{InC: 3, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	r := prng.New(9)
	x := randTensor(r, g.InC, g.InH, g.InW)
	full := Im2Col(x, g)
	for i := 0; i < g.InH*g.InW; i++ {
		x.Data[i] = 0 // zero channel 0
	}
	zeroed := Im2Col(x, g)
	rowsPerChan := g.KH * g.KW
	ncols := g.OutH() * g.OutW()
	for row := 0; row < g.InC*rowsPerChan; row++ {
		for col := 0; col < ncols; col++ {
			a, b := full.Data[row*ncols+col], zeroed.Data[row*ncols+col]
			if row < rowsPerChan {
				if b != 0 {
					t.Fatalf("row %d (channel 0) not zeroed", row)
				}
			} else if a != b {
				t.Fatalf("row %d (channel %d) changed when channel 0 was zeroed", row, row/rowsPerChan)
			}
		}
	}
}

func TestCol2ImAdjointProperty(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the defining property of an
	// adjoint pair, which is exactly what conv backprop needs.
	check := func(seed uint64) bool {
		r := prng.New(seed)
		g := ConvGeom{
			InC: r.Intn(3) + 1, InH: r.Intn(5) + 4, InW: r.Intn(5) + 4,
			KH: 3, KW: 3, Stride: r.Intn(2) + 1, Pad: r.Intn(2),
		}
		if g.Validate() != nil {
			return true
		}
		x := randTensor(r, g.InC, g.InH, g.InW)
		y := randTensor(r, g.InC*g.KH*g.KW, g.OutH()*g.OutW())
		cx := Im2Col(x, g)
		cy := Col2Im(y, g)
		var lhs, rhs float64
		for i := range cx.Data {
			lhs += float64(cx.Data[i]) * float64(y.Data[i])
		}
		for i := range x.Data {
			rhs += float64(x.Data[i]) * float64(cy.Data[i])
		}
		diff := lhs - rhs
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if l := lhs; l < 0 {
			l = -l
			if l > scale {
				scale = l
			}
		} else if lhs > scale {
			scale = lhs
		}
		return diff/scale < 1e-3
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Im2Col accepted mismatched input")
		}
	}()
	g := ConvGeom{InC: 3, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	Im2Col(New(2, 4, 4), g)
}

func BenchmarkIm2Col64x32x32(b *testing.B) {
	g := ConvGeom{InC: 64, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	x := randTensor(prng.New(1), g.InC, g.InH, g.InW)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Im2Col(x, g)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	r := prng.New(1)
	a := randTensor(r, 128, 128)
	c := randTensor(r, 128, 128)
	out := New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, a, c)
	}
}
