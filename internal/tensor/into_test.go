package tensor

import (
	"testing"

	"seal/internal/prng"
)

// refTransA is the historical naive C = Aᵀ×B kernel: p-outer loop,
// av==0 skip, each C element accumulating over p ascending. The packed
// Into kernels must reproduce it bit-for-bit.
func refTransA(a, b *Tensor) *Tensor {
	k, m := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	c := New(m, n)
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			av := a.Data[p*m+i]
			if av == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				c.Data[i*n+j] += av * b.Data[p*n+j]
			}
		}
	}
	return c
}

// refTransB is the historical naive C = A×Bᵀ kernel: one column at a
// time, each dot product over p ascending, no zero skip.
func refTransB(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[j*k+p]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

var transShapes = []struct{ m, k, n int }{
	{5, 7, 3},    // below the 8-column block: pure remainder path
	{16, 24, 16}, // exact multiples
	{33, 19, 29}, // blocks plus remainder
	{64, 64, 64}, // above the parallel cutover
}

// TestMatMulTransAIntoBitIdentical verifies the packed TransA kernel
// against the naive p-outer reference, into a dirty reused workspace,
// with dirty caller scratch.
func TestMatMulTransAIntoBitIdentical(t *testing.T) {
	r := prng.New(31)
	for _, s := range transShapes {
		a := sparseTensor(r, s.k, s.m) // A is [k,m] for TransA
		b := sparseTensor(r, s.k, s.n)
		want := refTransA(a, b)

		got := MatMulTransA(a, b)
		bitIdentical(t, "MatMulTransA", want, got)

		ws := New(s.m, s.n)
		dirtyWorkspace(ws)
		scratch := make([]float32, MatMulTransAScratchLen(s.k, s.m))
		for i := range scratch {
			scratch[i] = -1e30 // scratch contents must not matter
		}
		MatMulTransAIntoWS(ws, a, b, scratch)
		bitIdentical(t, "MatMulTransAIntoWS", want, ws)
	}
}

// TestMatMulTransBIntoBitIdentical verifies the packed TransB kernel
// against the naive one-column reference, into a dirty reused
// workspace, with dirty caller scratch.
func TestMatMulTransBIntoBitIdentical(t *testing.T) {
	r := prng.New(32)
	for _, s := range transShapes {
		a := sparseTensor(r, s.m, s.k)
		b := sparseTensor(r, s.n, s.k) // B is [n,k] for TransB
		want := refTransB(a, b)

		got := MatMulTransB(a, b)
		bitIdentical(t, "MatMulTransB", want, got)

		ws := New(s.m, s.n)
		dirtyWorkspace(ws)
		panel := make([]float32, MatMulPanelLen(s.k))
		for i := range panel {
			panel[i] = -1e30
		}
		MatMulTransBIntoWS(ws, a, b, panel)
		bitIdentical(t, "MatMulTransBIntoWS", want, ws)
	}
}

// TestCol2ImIntoMatchesFresh verifies that a dirty reused image buffer
// produces exactly what the allocating Col2Im does, including zeros at
// positions no window touches.
func TestCol2ImIntoMatchesFresh(t *testing.T) {
	r := prng.New(33)
	g := ConvGeom{InC: 3, InH: 9, InW: 9, KH: 3, KW: 3, Stride: 2, Pad: 1}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ws := New(g.InC, g.InH, g.InW)
	for trial := 0; trial < 3; trial++ {
		cols := sparseTensor(r, g.InC*g.KH*g.KW, g.OutH()*g.OutW())
		fresh := Col2Im(cols, g)
		dirtyWorkspace(ws)
		Col2ImInto(ws, cols, g)
		bitIdentical(t, "Col2ImInto", fresh, ws)
	}
}
