package tensor

import (
	"fmt"

	"seal/internal/parallel"
)

// This file holds the panel-accumulate GEMM kernels behind the streaming
// secure-inference engine: a weight matrix arrives in k-slices (panels)
// as it is decrypted, and each panel's contribution is folded into C
// without breaking bit-identity with the one-shot kernels. The rule that
// makes the split exact is that float32 stores are lossless: an element
// of C after panel t holds precisely the prefix of the serial ascending-p
// accumulation chain, so re-loading it as the accumulator seed for panel
// t+1 continues the identical chain — Go mandates float32 rounding per
// operation, and the per-element operation order never changes.

// MatMulPanelAccWS folds one k-panel into C: with acc=false it computes
// C = Apanel × B[p0:p0+kp, :] (overwriting C, panel 0), with acc=true it
// computes C += the same product, continuing each element's accumulation
// from the stored value. Apanel is the packed [m, kp] column slice
// A[:, p0:p0+kp] of a conceptual [m, k] matrix, B the full [k, n] right
// operand. Per element the adds run over p ascending with the same
// av==0 skip as MatMulIntoWS, so a sequence of panel calls in ascending
// p0 covering [0, k) is bit-identical to one MatMulIntoWS(c, A, B).
// panel is the MatMulPanelLen(kp) packing scratch (nil → allocated,
// short → panic), as in MatMulIntoWS.
func MatMulPanelAccWS(c, aPanel, b *Tensor, p0 int, acc bool, panel []float32) {
	m, kp := aPanel.Shape[0], aPanel.Shape[1]
	n := b.Shape[1]
	if p0 < 0 || p0+kp > b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMulPanelAccWS panel [%d, %d) outside B rows %d", p0, p0+kp, b.Shape[0]))
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulPanelAccWS output shape mismatch")
	}
	if panel != nil && len(panel) < kp*matMulPanelCols {
		panic(fmt.Sprintf("tensor: MatMulPanelAccWS panel len %d, need MatMulPanelLen(%d) = %d", len(panel), kp, kp*matMulPanelCols))
	}
	ad, cd := aPanel.Data, c.Data
	bd := b.Data[p0*n:]
	if m*kp*n < minParallelOps || parallel.Workers() == 1 {
		if panel == nil {
			panel = make([]float32, kp*matMulPanelCols)
		}
		matMulRowsAcc(cd, ad, bd, panel, kp, n, 0, m, acc)
		return
	}
	parallel.For(m, 0, func(lo, hi int) {
		matMulRowsAcc(cd, ad, bd, make([]float32, kp*matMulPanelCols), kp, n, lo, hi, acc)
	})
}

// matMulRowsAcc is matMulRows with a seeded accumulator: acc=false
// starts every register block at zero (identical to matMulRows),
// acc=true loads the stored C values first. Blocking, packing, ascending
// p order and the av==0 skip are unchanged, so per element the float
// operation sequence matches the serial reference exactly.
func matMulRowsAcc(cd, ad, bd, panel []float32, k, n, lo, hi int, acc bool) {
	if !acc {
		matMulRows(cd, ad, bd, panel, k, n, lo, hi)
		return
	}
	nb := n &^ (matMulPanelCols - 1)
	for j0 := 0; j0 < nb; j0 += matMulPanelCols {
		pk := panel[: k*matMulPanelCols : k*matMulPanelCols]
		for p := 0; p < k; p++ {
			copy(pk[p*matMulPanelCols:(p+1)*matMulPanelCols], bd[p*n+j0:p*n+j0+matMulPanelCols])
		}
		for i := lo; i < hi; i++ {
			ai := ad[i*k : (i+1)*k]
			cj := cd[i*n+j0 : i*n+j0+8 : i*n+j0+8]
			c0, c1, c2, c3 := cj[0], cj[1], cj[2], cj[3]
			c4, c5, c6, c7 := cj[4], cj[5], cj[6], cj[7]
			for p, av := range ai {
				if av == 0 {
					continue
				}
				bp := pk[p*8 : p*8+8 : p*8+8]
				c0 += av * bp[0]
				c1 += av * bp[1]
				c2 += av * bp[2]
				c3 += av * bp[3]
				c4 += av * bp[4]
				c5 += av * bp[5]
				c6 += av * bp[6]
				c7 += av * bp[7]
			}
			cj[0], cj[1], cj[2], cj[3] = c0, c1, c2, c3
			cj[4], cj[5], cj[6], cj[7] = c4, c5, c6, c7
		}
	}
	for j := nb; j < n; j++ {
		i0 := lo
		for ; i0+4 <= hi; i0 += 4 {
			a0 := ad[(i0+0)*k : (i0+1)*k : (i0+1)*k]
			a1 := ad[(i0+1)*k : (i0+2)*k : (i0+2)*k]
			a2 := ad[(i0+2)*k : (i0+3)*k : (i0+3)*k]
			a3 := ad[(i0+3)*k : (i0+4)*k : (i0+4)*k]
			c0 := cd[(i0+0)*n+j]
			c1 := cd[(i0+1)*n+j]
			c2 := cd[(i0+2)*n+j]
			c3 := cd[(i0+3)*n+j]
			for p := 0; p < k; p++ {
				bv := bd[p*n+j]
				if av := a0[p]; av != 0 {
					c0 += av * bv
				}
				if av := a1[p]; av != 0 {
					c1 += av * bv
				}
				if av := a2[p]; av != 0 {
					c2 += av * bv
				}
				if av := a3[p]; av != 0 {
					c3 += av * bv
				}
			}
			cd[(i0+0)*n+j] = c0
			cd[(i0+1)*n+j] = c1
			cd[(i0+2)*n+j] = c2
			cd[(i0+3)*n+j] = c3
		}
		for i := i0; i < hi; i++ {
			ai := ad[i*k : (i+1)*k]
			s := cd[i*n+j]
			for p, av := range ai {
				if av == 0 {
					continue
				}
				s += av * bd[p*n+j]
			}
			cd[i*n+j] = s
		}
	}
}

// MatMulTransBPanelAccWS folds one k-panel into C = A×Bᵀ: with
// acc=false it computes C = A[:, p0:p0+kp] × Bpanelᵀ (overwriting C),
// with acc=true it continues each element's accumulation from the
// stored value. A is the full [m, ka] left operand (only columns
// [p0, p0+kp) are read), Bpanel the packed [n, kp] row slice
// B[:, p0:p0+kp] of a conceptual [n, k] matrix. Per element the sum
// runs over p ascending with no zero skip, matching MatMulTransBIntoWS,
// so ascending panels covering [0, ka) are bit-identical to one
// MatMulTransBIntoWS(c, a, B) — the streaming FC forward.
func MatMulTransBPanelAccWS(c, a *Tensor, p0 int, bPanel *Tensor, acc bool) {
	m, ka := a.Shape[0], a.Shape[1]
	n, kp := bPanel.Shape[0], bPanel.Shape[1]
	if p0 < 0 || p0+kp > ka {
		panic(fmt.Sprintf("tensor: MatMulTransBPanelAccWS panel [%d, %d) outside A columns %d", p0, p0+kp, ka))
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulTransBPanelAccWS output shape mismatch")
	}
	ad, bd, cd := a.Data, bPanel.Data, c.Data
	if m*kp*n < minParallelOps || parallel.Workers() == 1 {
		matMulTransBRowsAcc(cd, ad, bd, ka, p0, kp, n, 0, m, acc)
		return
	}
	parallel.For(m, 0, func(lo, hi int) {
		matMulTransBRowsAcc(cd, ad, bd, ka, p0, kp, n, lo, hi, acc)
	})
}

// matMulTransBRowsAcc computes rows [lo, hi) of the panel product with
// strided A access (row stride ka, column offset p0). It uses the
// row-blocked kernel shape of matMulTransBRows throughout — every
// element sums over p ascending with no zero skip, so the per-element
// float order is identical to the one-shot kernel regardless of which
// register blocking that kernel chose.
func matMulTransBRowsAcc(cd, ad, bd []float32, ka, p0, kp, n, lo, hi int, acc bool) {
	for j := 0; j < n; j++ {
		bj := bd[j*kp : (j+1)*kp : (j+1)*kp]
		i0 := lo
		for ; i0+4 <= hi; i0 += 4 {
			a0 := ad[(i0+0)*ka+p0 : (i0+0)*ka+p0+kp : (i0+0)*ka+p0+kp]
			a1 := ad[(i0+1)*ka+p0 : (i0+1)*ka+p0+kp : (i0+1)*ka+p0+kp]
			a2 := ad[(i0+2)*ka+p0 : (i0+2)*ka+p0+kp : (i0+2)*ka+p0+kp]
			a3 := ad[(i0+3)*ka+p0 : (i0+3)*ka+p0+kp : (i0+3)*ka+p0+kp]
			var c0, c1, c2, c3 float32
			if acc {
				c0 = cd[(i0+0)*n+j]
				c1 = cd[(i0+1)*n+j]
				c2 = cd[(i0+2)*n+j]
				c3 = cd[(i0+3)*n+j]
			}
			for p, bv := range bj {
				c0 += a0[p] * bv
				c1 += a1[p] * bv
				c2 += a2[p] * bv
				c3 += a3[p] * bv
			}
			cd[(i0+0)*n+j] = c0
			cd[(i0+1)*n+j] = c1
			cd[(i0+2)*n+j] = c2
			cd[(i0+3)*n+j] = c3
		}
		for i := i0; i < hi; i++ {
			ai := ad[i*ka+p0 : i*ka+p0+kp : i*ka+p0+kp]
			var s float32
			if acc {
				s = cd[i*n+j]
			}
			for p, av := range ai {
				s += av * bj[p]
			}
			cd[i*n+j] = s
		}
	}
}
