package tensor

import (
	"math"
	"testing"

	"seal/internal/prng"
)

// TestQuantizeRoundTripErrorBound is the quantization property test:
// for randomized kernel-matrix shapes and value ranges, the per-row
// symmetric roundtrip q·scale must sit within half a quantization step
// of every original weight, and scale must equal max|row|/127.
func TestQuantizeRoundTripErrorBound(t *testing.T) {
	r := prng.New(31)
	for trial := 0; trial < 40; trial++ {
		rows := 1 + int(r.Uint64()%13)
		cols := 1 + int(r.Uint64()%97)
		mag := math.Pow(10, float64(r.Uint64()%7)-3) // 1e-3 .. 1e3
		w := &Tensor{Shape: []int{rows, cols}, Data: make([]float32, rows*cols)}
		for i := range w.Data {
			w.Data[i] = float32(r.NormFloat64() * mag)
		}
		q := NewInt8Mat(rows, cols)
		scales := make([]float32, rows)
		QuantizeRowsInto(q, scales, w)
		for i := 0; i < rows; i++ {
			row := w.Data[i*cols : (i+1)*cols]
			wantScale := QuantScale(MaxAbsSlice(row))
			if scales[i] != wantScale {
				t.Fatalf("trial %d row %d: scale %v, want %v", trial, i, scales[i], wantScale)
			}
			// Round-to-nearest: half a step, plus float32 rounding slack.
			bound := float64(scales[i])/2*(1+1e-5) + 1e-12
			for j, v := range row {
				qv := q.Data[i*cols+j]
				if qv > QMaxInt8 || qv < -QMaxInt8 {
					t.Fatalf("trial %d (%d,%d): |q| = %d beyond %d", trial, i, j, qv, QMaxInt8)
				}
				back := float64(qv) * float64(scales[i])
				if d := math.Abs(back - float64(v)); d > bound {
					t.Fatalf("trial %d (%d,%d): roundtrip %v vs %v (|Δ| %v > %v, scale %v)",
						trial, i, j, back, v, d, bound, scales[i])
				}
			}
		}
	}
}

// TestQuantizeSaturates pins the saturation edge: under a deliberately
// small scale, values beyond ±127·scale clamp to exactly ±127 instead
// of wrapping, and zero stays exactly zero.
func TestQuantizeSaturates(t *testing.T) {
	src := []float32{0, 1, -1, 126.4, 127.49, 127.51, 500, -500, 1e30, -1e30}
	dst := make([]int8, len(src))
	QuantizeSliceInto(dst, src, 1)
	want := []int8{0, 1, -1, 126, 127, 127, 127, -127, 127, -127}
	for i := range src {
		if dst[i] != want[i] {
			t.Fatalf("quantize(%v, scale 1) = %d, want %d", src[i], dst[i], want[i])
		}
	}
}

// TestInt8GEMMWithinDerivedBound checks the saturating int8 GEMM
// against the float product on randomized shapes, with the analytic
// error bound of symmetric quantization. Writing a = qa·sa + ea,
// b = qb·sb + eb with |e| ≤ s/2, each of the k dot terms errs by at
// most sa·sb·(|qa|/2 + |qb|/2 + 1/4) ≤ sa·sb·127.25, so
//
//	|float − dequant| ≤ k · sa · sb · 127.25
//
// (plus float32 rounding slack in the reference itself).
func TestInt8GEMMWithinDerivedBound(t *testing.T) {
	r := prng.New(32)
	for trial := 0; trial < 25; trial++ {
		m := 1 + int(r.Uint64()%9)
		k := 1 + int(r.Uint64()%120)
		n := 1 + int(r.Uint64()%40)
		af := make([]float32, m*k)
		bf := make([]float32, n*k)
		for i := range af {
			af[i] = float32(r.NormFloat64())
		}
		for i := range bf {
			bf[i] = float32(r.NormFloat64() * 0.5)
		}
		// Sprinkle zeros so the CSR zero-skip path is exercised.
		for i := range af {
			if r.Uint64()%3 == 0 {
				af[i] = 0
			}
		}

		sa := QuantScale(MaxAbsSlice(af))
		qa := NewInt8Mat(m, k)
		QuantizeSliceInto(qa.Data, af, sa)
		qb := NewInt8Mat(n, k)
		sb := make([]float32, n)
		QuantizeRowsInto(qb, sb, &Tensor{Shape: []int{n, k}, Data: bf})

		c := make([]int32, m*n)
		MatMulInt8TransBInto(c, qa, qb, nil)

		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var ref float64
				for p := 0; p < k; p++ {
					ref += float64(af[i*k+p]) * float64(bf[j*k+p])
				}
				got := float64(c[i*n+j]) * float64(sa) * float64(sb[j])
				bound := float64(k)*float64(sa)*float64(sb[j])*127.25 + 1e-6
				if d := math.Abs(got - ref); d > bound {
					t.Fatalf("trial %d [%dx%dx%d] c[%d,%d]: int8 %v vs float %v (|Δ| %v > bound %v)",
						trial, m, k, n, i, j, got, ref, d, bound)
				}
			}
		}
	}
}
