package tensor

import (
	"math/rand"
	"testing"
)

// benchShape is one VGG-representative per-item GEMM: the float conv
// kernel computes [outC, ncols] = W[outC, k] × cols[k, ncols]; the int8
// kernel computes the transpose [ncols, outC] = A[ncols, k] × W[outC, k]ᵀ.
type benchShape struct {
	name         string
	ncols, k, oc int
}

var benchShapes = []benchShape{
	{"early_1024x144x16", 1024, 144, 16},
	{"mid_256x576x64", 256, 576, 64},
	{"deep_64x1152x128", 64, 1152, 128},
	{"fc_16x2048x128", 16, 2048, 128},
}

// fillSparse fills a float tensor with ~half exact zeros (post-ReLU
// statistics) and the matching quantized int8 view.
func fillSparse(rng *rand.Rand, f []float32, q []int8, scale float32) {
	for i := range f {
		if rng.Intn(2) == 0 {
			f[i], q[i] = 0, 0
			continue
		}
		v := int8(rng.Intn(127) + 1)
		q[i] = v
		f[i] = float32(v) * scale
	}
}

func BenchmarkGEMMFloatConvShape(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(s.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			w := New(s.oc, s.k)
			for i := range w.Data {
				w.Data[i] = rng.Float32()*2 - 1
			}
			cols := New(s.k, s.ncols)
			q := make([]int8, s.k*s.ncols)
			fillSparse(rng, cols.Data, q, 0.05)
			out := New(s.oc, s.ncols)
			ws := make([]float32, MatMulPanelLen(s.k))
			b.SetBytes(int64(s.oc * s.k * s.ncols))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulIntoWS(out, w, cols, ws)
			}
		})
	}
}

func BenchmarkGEMMInt8ConvShape(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(s.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			wq := NewInt8Mat(s.oc, s.k)
			for i := range wq.Data {
				wq.Data[i] = int8(rng.Intn(255) - 127)
			}
			a := NewInt8Mat(s.ncols, s.k)
			f := make([]float32, s.ncols*s.k)
			fillSparse(rng, f, a.Data, 0.05)
			c := make([]int32, s.ncols*s.oc)
			ws := NewInt8GEMMWS(s.ncols, s.k, s.oc)
			b.SetBytes(int64(s.oc * s.k * s.ncols))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInt8TransBInto(c, a, wq, ws)
			}
		})
	}
}

func BenchmarkGEMMInt8ConvShapeDense(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(s.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			wq := NewInt8Mat(s.oc, s.k)
			for i := range wq.Data {
				wq.Data[i] = int8(rng.Intn(255) - 127)
			}
			a := NewInt8Mat(s.ncols, s.k)
			for i := range a.Data {
				a.Data[i] = int8(rng.Intn(254)-127) | 1
			}
			c := make([]int32, s.ncols*s.oc)
			ws := NewInt8GEMMWS(s.ncols, s.k, s.oc)
			b.SetBytes(int64(s.oc * s.k * s.ncols))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInt8TransBInto(c, a, wq, ws)
			}
		})
	}
}

// TestInt8GEMMQuick pins the SWAR kernel against a naive reference on a
// few awkward shapes (remainder columns, odd sizes, extreme values).
func TestInt8GEMMQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{{1, 1, 1}, {3, 5, 7}, {17, 31, 9}, {33, 144, 16}, {8, 64, 10}, {5, 9, 8}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := NewInt8Mat(m, k)
		bq := NewInt8Mat(n, k)
		for i := range a.Data {
			switch rng.Intn(4) {
			case 0:
				a.Data[i] = 0
			case 1:
				a.Data[i] = int8(rng.Intn(255) - 127)
			case 2:
				a.Data[i] = 127
			default:
				a.Data[i] = -127
			}
		}
		for i := range bq.Data {
			bq.Data[i] = int8(rng.Intn(255) - 127)
		}
		got := make([]int32, m*n)
		MatMulInt8TransBInto(got, a, bq, nil)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var want int32
				for p := 0; p < k; p++ {
					want += int32(a.Data[i*k+p]) * int32(bq.Data[j*k+p])
				}
				if got[i*n+j] != want {
					t.Fatalf("shape %v c[%d][%d] = %d, want %d", sh, i, j, got[i*n+j], want)
				}
			}
		}
	}
}
