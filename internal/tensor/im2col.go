package tensor

import (
	"fmt"

	"seal/internal/parallel"
)

// ConvGeom describes the geometry of a 2-D convolution or pooling window
// applied to a single image of shape [C, H, W].
type ConvGeom struct {
	InC, InH, InW int // input channels and spatial size
	KH, KW        int // kernel height/width
	Stride        int
	Pad           int
}

// OutH returns the output height of the window sweep.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width of the window sweep.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Validate checks that the geometry produces a positive output size.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 || g.KH <= 0 || g.KW <= 0 || g.Stride <= 0 || g.Pad < 0 {
		return fmt.Errorf("tensor: invalid conv geometry %+v", g)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: conv geometry %+v yields non-positive output", g)
	}
	return nil
}

// Im2Col expands image x of shape [C, H, W] into a matrix of shape
// [C*KH*KW, OutH*OutW] so that convolution becomes a single matrix
// multiply (kernel matrix [OutC, C*KH*KW] × columns). Out-of-bounds
// (padding) positions contribute zeros.
//
// Row ordering is (c, kh, kw) with c outermost: rows [c*KH*KW,
// (c+1)*KH*KW) depend only on input channel c. This property is what lets
// SEAL tie each kernel row (input channel) to exactly one input feature
// map channel (paper §III-A, Figure 2).
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	cols := New(g.InC*g.KH*g.KW, g.OutH()*g.OutW())
	Im2ColInto(cols, x, g)
	return cols
}

// Im2ColInto expands x into a caller-owned cols matrix of shape
// [C*KH*KW, OutH*OutW], overwriting it completely (padding positions
// are zeroed first, so a reused workspace yields the same result as a
// fresh allocation). It is the Into-style entry point the inference
// workspace path in internal/nn threads its scratch arena through.
func Im2ColInto(cols *Tensor, x *Tensor, g ConvGeom) {
	if len(x.Shape) != 3 || x.Shape[0] != g.InC || x.Shape[1] != g.InH || x.Shape[2] != g.InW {
		panic(fmt.Sprintf("tensor: Im2Col input %v does not match geometry %+v", x.Shape, g))
	}
	oh, ow := g.OutH(), g.OutW()
	if len(cols.Shape) != 2 || cols.Shape[0] != g.InC*g.KH*g.KW || cols.Shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Im2ColInto output %v does not match geometry %+v", cols.Shape, g))
	}
	cols.Zero()
	xd, cd := x.Data, cols.Data
	ncols := oh * ow
	// Rows [c*KH*KW, (c+1)*KH*KW) depend only on input channel c, so the
	// channel loop shards cleanly across workers with disjoint outputs.
	// Workers()==1 calls the range kernel directly (no closure, no
	// allocation on the hot inference path).
	if g.InC*g.KH*g.KW*ncols < minParallelOps || parallel.Workers() == 1 {
		im2colChans(cd, xd, g, oh, ow, 0, g.InC)
	} else {
		parallel.For(g.InC, 0, func(lo, hi int) { im2colChans(cd, xd, g, oh, ow, lo, hi) })
	}
}

// validRange returns the half-open range of output positions whose input
// coordinate o*stride + k - pad lands inside [0, in), clamped to [0, out).
// Hoisting the bounds test out of the per-element loops leaves straight
// copy/accumulate kernels over exactly the same positions the branchy
// loops visited, in the same ascending order.
func validRange(k, pad, stride, in, out int) (int, int) {
	lo := 0
	if k < pad {
		lo = (pad - k + stride - 1) / stride
	}
	hi := (in + pad - k + stride - 1) / stride
	if hi > out {
		hi = out
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// im2colChans fills the rows of channels [lo, hi) of an im2col matrix
// whose padding positions are already zero.
func im2colChans(cd, xd []float32, g ConvGeom, oh, ow, lo, hi int) {
	ncols := oh * ow
	for c := lo; c < hi; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			oy0, oy1 := validRange(kh, g.Pad, g.Stride, g.InH, oh)
			for kw := 0; kw < g.KW; kw++ {
				ox0, ox1 := validRange(kw, g.Pad, g.Stride, g.InW, ow)
				row := (c*g.KH+kh)*g.KW + kw
				dst := cd[row*ncols : (row+1)*ncols]
				for oy := oy0; oy < oy1; oy++ {
					srcRow := chanBase + (oy*g.Stride+kh-g.Pad)*g.InW
					dstRow := oy * ow
					if g.Stride == 1 {
						ix0 := srcRow + ox0 + kw - g.Pad
						copy(dst[dstRow+ox0:dstRow+ox1], xd[ix0:ix0+(ox1-ox0)])
					} else {
						for ox := ox0; ox < ox1; ox++ {
							dst[dstRow+ox] = xd[srcRow+ox*g.Stride+kw-g.Pad]
						}
					}
				}
			}
		}
	}
}

// Col2Im scatters a [C*KH*KW, OutH*OutW] column matrix back into an image
// of shape [C, H, W], accumulating overlapping contributions. It is the
// adjoint of Im2Col and is used for input gradients in conv backprop.
func Col2Im(cols *Tensor, g ConvGeom) *Tensor {
	x := New(g.InC, g.InH, g.InW)
	Col2ImInto(x, cols, g)
	return x
}

// Col2ImInto scatters cols into a caller-owned image x of shape
// [C, H, W], overwriting it completely (x is zeroed before the
// accumulating scatter, so a reused workspace yields the same result
// as a fresh allocation). It is the Into-style entry point the
// training workspace path in internal/nn threads its scratch through.
func Col2ImInto(x *Tensor, cols *Tensor, g ConvGeom) {
	oh, ow := g.OutH(), g.OutW()
	if len(cols.Shape) != 2 || cols.Shape[0] != g.InC*g.KH*g.KW || cols.Shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im input %v does not match geometry %+v", cols.Shape, g))
	}
	if len(x.Shape) != 3 || x.Shape[0] != g.InC || x.Shape[1] != g.InH || x.Shape[2] != g.InW {
		panic(fmt.Sprintf("tensor: Col2ImInto output %v does not match geometry %+v", x.Shape, g))
	}
	x.Zero()
	xd, cd := x.Data, cols.Data
	ncols := oh * ow
	// Output channel c accumulates only from kernel rows of channel c, so
	// sharding the channel loop keeps writes disjoint and preserves the
	// serial (kh, kw, oy, ox) accumulation order within each channel.
	if g.InC*g.KH*g.KW*ncols < minParallelOps || parallel.Workers() == 1 {
		col2imChans(xd, cd, g, oh, ow, 0, g.InC)
	} else {
		parallel.For(g.InC, 0, func(lo, hi int) { col2imChans(xd, cd, g, oh, ow, lo, hi) })
	}
}

// col2imChans scatters the kernel rows of channels [lo, hi) back into
// the image, accumulating overlapping contributions.
func col2imChans(xd, cd []float32, g ConvGeom, oh, ow, lo, hi int) {
	ncols := oh * ow
	for c := lo; c < hi; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			oy0, oy1 := validRange(kh, g.Pad, g.Stride, g.InH, oh)
			for kw := 0; kw < g.KW; kw++ {
				ox0, ox1 := validRange(kw, g.Pad, g.Stride, g.InW, ow)
				row := (c*g.KH+kh)*g.KW + kw
				src := cd[row*ncols : (row+1)*ncols]
				for oy := oy0; oy < oy1; oy++ {
					dstRow := chanBase + (oy*g.Stride+kh-g.Pad)*g.InW
					srcRow := oy * ow
					if g.Stride == 1 {
						dr := xd[dstRow+ox0+kw-g.Pad : dstRow+ox1+kw-g.Pad]
						sr := src[srcRow+ox0 : srcRow+ox1]
						for i, v := range sr {
							dr[i] += v
						}
					} else {
						for ox := ox0; ox < ox1; ox++ {
							xd[dstRow+ox*g.Stride+kw-g.Pad] += src[srcRow+ox]
						}
					}
				}
			}
		}
	}
}
