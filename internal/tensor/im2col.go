package tensor

import (
	"fmt"

	"seal/internal/parallel"
)

// ConvGeom describes the geometry of a 2-D convolution or pooling window
// applied to a single image of shape [C, H, W].
type ConvGeom struct {
	InC, InH, InW int // input channels and spatial size
	KH, KW        int // kernel height/width
	Stride        int
	Pad           int
}

// OutH returns the output height of the window sweep.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width of the window sweep.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Validate checks that the geometry produces a positive output size.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 || g.KH <= 0 || g.KW <= 0 || g.Stride <= 0 || g.Pad < 0 {
		return fmt.Errorf("tensor: invalid conv geometry %+v", g)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: conv geometry %+v yields non-positive output", g)
	}
	return nil
}

// Im2Col expands image x of shape [C, H, W] into a matrix of shape
// [C*KH*KW, OutH*OutW] so that convolution becomes a single matrix
// multiply (kernel matrix [OutC, C*KH*KW] × columns). Out-of-bounds
// (padding) positions contribute zeros.
//
// Row ordering is (c, kh, kw) with c outermost: rows [c*KH*KW,
// (c+1)*KH*KW) depend only on input channel c. This property is what lets
// SEAL tie each kernel row (input channel) to exactly one input feature
// map channel (paper §III-A, Figure 2).
func Im2Col(x *Tensor, g ConvGeom) *Tensor {
	cols := New(g.InC*g.KH*g.KW, g.OutH()*g.OutW())
	Im2ColInto(cols, x, g)
	return cols
}

// Im2ColInto expands x into a caller-owned cols matrix of shape
// [C*KH*KW, OutH*OutW], overwriting it completely (padding positions
// are zeroed first, so a reused workspace yields the same result as a
// fresh allocation). It is the Into-style entry point the inference
// workspace path in internal/nn threads its scratch arena through.
func Im2ColInto(cols *Tensor, x *Tensor, g ConvGeom) {
	if len(x.Shape) != 3 || x.Shape[0] != g.InC || x.Shape[1] != g.InH || x.Shape[2] != g.InW {
		panic(fmt.Sprintf("tensor: Im2Col input %v does not match geometry %+v", x.Shape, g))
	}
	oh, ow := g.OutH(), g.OutW()
	if len(cols.Shape) != 2 || cols.Shape[0] != g.InC*g.KH*g.KW || cols.Shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Im2ColInto output %v does not match geometry %+v", cols.Shape, g))
	}
	cols.Zero()
	xd, cd := x.Data, cols.Data
	ncols := oh * ow
	// Rows [c*KH*KW, (c+1)*KH*KW) depend only on input channel c, so the
	// channel loop shards cleanly across workers with disjoint outputs.
	// Workers()==1 calls the range kernel directly (no closure, no
	// allocation on the hot inference path).
	if g.InC*g.KH*g.KW*ncols < minParallelOps || parallel.Workers() == 1 {
		im2colChans(cd, xd, g, oh, ow, 0, g.InC)
	} else {
		parallel.For(g.InC, 0, func(lo, hi int) { im2colChans(cd, xd, g, oh, ow, lo, hi) })
	}
}

// im2colChans fills the rows of channels [lo, hi) of an im2col matrix
// whose padding positions are already zero.
func im2colChans(cd, xd []float32, g ConvGeom, oh, ow, lo, hi int) {
	ncols := oh * ow
	for c := lo; c < hi; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := (c*g.KH+kh)*g.KW + kw
				dst := cd[row*ncols : (row+1)*ncols]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride + kh - g.Pad
					if iy < 0 || iy >= g.InH {
						continue // leave zeros
					}
					srcRow := chanBase + iy*g.InW
					dstRow := oy * ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.Stride + kw - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						dst[dstRow+ox] = xd[srcRow+ix]
					}
				}
			}
		}
	}
}

// Col2Im scatters a [C*KH*KW, OutH*OutW] column matrix back into an image
// of shape [C, H, W], accumulating overlapping contributions. It is the
// adjoint of Im2Col and is used for input gradients in conv backprop.
func Col2Im(cols *Tensor, g ConvGeom) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	if len(cols.Shape) != 2 || cols.Shape[0] != g.InC*g.KH*g.KW || cols.Shape[1] != oh*ow {
		panic(fmt.Sprintf("tensor: Col2Im input %v does not match geometry %+v", cols.Shape, g))
	}
	x := New(g.InC, g.InH, g.InW)
	xd, cd := x.Data, cols.Data
	ncols := oh * ow
	// Output channel c accumulates only from kernel rows of channel c, so
	// sharding the channel loop keeps writes disjoint and preserves the
	// serial (kh, kw, oy, ox) accumulation order within each channel.
	if g.InC*g.KH*g.KW*ncols < minParallelOps || parallel.Workers() == 1 {
		col2imChans(xd, cd, g, oh, ow, 0, g.InC)
	} else {
		parallel.For(g.InC, 0, func(lo, hi int) { col2imChans(xd, cd, g, oh, ow, lo, hi) })
	}
	return x
}

// col2imChans scatters the kernel rows of channels [lo, hi) back into
// the image, accumulating overlapping contributions.
func col2imChans(xd, cd []float32, g ConvGeom, oh, ow, lo, hi int) {
	ncols := oh * ow
	for c := lo; c < hi; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				row := (c*g.KH+kh)*g.KW + kw
				src := cd[row*ncols : (row+1)*ncols]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride + kh - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					dstRow := chanBase + iy*g.InW
					srcRow := oy * ow
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.Stride + kw - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						xd[dstRow+ix] += src[srcRow+ox]
					}
				}
			}
		}
	}
}
