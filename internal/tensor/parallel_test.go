package tensor

import (
	"testing"

	"seal/internal/parallel"
	"seal/internal/prng"
)

// sparseTensor fills a tensor with deterministic values including exact
// zeros, which exercise the GEMM zero-skip path identically in serial
// and parallel runs.
func sparseTensor(r *prng.Source, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		if r.Intn(16) == 0 {
			continue
		}
		t.Data[i] = r.Float32()*2 - 1
	}
	return t
}

// bitIdentical requires exact equality — the parallel contract is
// bit-identity with the serial path, not tolerance-based closeness.
func bitIdentical(t *testing.T, name string, serial, par *Tensor) {
	t.Helper()
	if !SameShape(serial, par) {
		t.Fatalf("%s: shape %v vs %v", name, serial.Shape, par.Shape)
	}
	for i := range serial.Data {
		if serial.Data[i] != par.Data[i] {
			t.Fatalf("%s: element %d differs: serial %v parallel %v",
				name, i, serial.Data[i], par.Data[i])
		}
	}
}

// runSerialAndParallel evaluates fn once with a 1-wide pool and once
// with an 8-wide pool (sizes chosen so chunk boundaries differ from any
// realistic GOMAXPROCS default).
func runSerialAndParallel(t *testing.T, fn func() *Tensor) (serial, par *Tensor) {
	t.Helper()
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	serial = fn()
	parallel.SetWorkers(8)
	par = fn()
	return serial, par
}

func TestMatMulParallelDeterministic(t *testing.T) {
	r := prng.New(11)
	// 61 and 67 are deliberately not multiples of any grain size; 173k
	// ops exceeds the serial cutover so the pool really engages.
	a := sparseTensor(r, 61, 43)
	b := sparseTensor(r, 43, 67)
	serial, par := runSerialAndParallel(t, func() *Tensor { return MatMul(a, b) })
	bitIdentical(t, "MatMul", serial, par)
}

func TestMatMulIntoParallelDeterministic(t *testing.T) {
	r := prng.New(12)
	a := sparseTensor(r, 64, 64)
	b := sparseTensor(r, 64, 64)
	c := New(64, 64)
	serial, par := runSerialAndParallel(t, func() *Tensor {
		MatMulInto(c, a, b)
		return c.Clone()
	})
	bitIdentical(t, "MatMulInto", serial, par)
}

func TestMatMulTransAParallelDeterministic(t *testing.T) {
	r := prng.New(13)
	a := sparseTensor(r, 43, 61) // C = Aᵀ×B : [61,67]
	b := sparseTensor(r, 43, 67)
	serial, par := runSerialAndParallel(t, func() *Tensor { return MatMulTransA(a, b) })
	bitIdentical(t, "MatMulTransA", serial, par)
}

func TestMatMulTransBParallelDeterministic(t *testing.T) {
	r := prng.New(14)
	a := sparseTensor(r, 61, 43) // C = A×Bᵀ : [61,67]
	b := sparseTensor(r, 67, 43)
	serial, par := runSerialAndParallel(t, func() *Tensor { return MatMulTransB(a, b) })
	bitIdentical(t, "MatMulTransB", serial, par)
}

func TestIm2ColCol2ImParallelDeterministic(t *testing.T) {
	r := prng.New(15)
	g := ConvGeom{InC: 24, InH: 19, InW: 19, KH: 3, KW: 3, Stride: 2, Pad: 1}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	x := sparseTensor(r, g.InC, g.InH, g.InW)
	serialCols, parCols := runSerialAndParallel(t, func() *Tensor { return Im2Col(x, g) })
	bitIdentical(t, "Im2Col", serialCols, parCols)
	serialImg, parImg := runSerialAndParallel(t, func() *Tensor { return Col2Im(serialCols, g) })
	bitIdentical(t, "Col2Im", serialImg, parImg)
}

// BenchmarkMatMul measures the raw 512×512×512 GEMM — the kernel-level
// view of the speedup, independent of the figure benchmarks. Compare
// SEAL_WORKERS=1 against the default to isolate the pool's effect.
func BenchmarkMatMul(b *testing.B) {
	r := prng.New(1)
	const n = 512
	x := sparseTensor(r, n, n)
	y := sparseTensor(r, n, n)
	c := New(n, n)
	b.SetBytes(3 * n * n * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(c, x, y)
	}
}
