// Package tensor implements a minimal dense float32 tensor library used by
// the neural-network substrate. Layout is row-major; convolutional data
// uses NCHW order (batch, channel, height, width) matching the paper's
// per-channel encryption granularity.
package tensor

import (
	"fmt"
	"math"

	"seal/internal/parallel"
)

// minParallelOps is the kernel size (in multiply-accumulates) below
// which the GEMM and im2col kernels stay serial: goroutine dispatch
// costs on the order of a microsecond, so matrices smaller than this do
// not amortize it. The cutover does not affect results — every parallel
// kernel below produces each output element with the same per-element
// operation order as the serial loop, so serial and parallel outputs
// are bit-identical by construction.
const minParallelOps = 1 << 15

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New returns a zero-filled tensor with the given shape. It panics on
// non-positive dimensions, since every shape in this repository is static
// and a bad dimension is a programming error.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape without copying.
// It panics if the element count does not match the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Dim returns the i-th dimension.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view sharing data with a new shape of equal size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (size %d) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// At returns the element at the given multi-index (rank must match).
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// Add accumulates src into t element-wise. Shapes must have equal size.
func (t *Tensor) Add(src *Tensor) {
	if len(src.Data) != len(t.Data) {
		panic("tensor: Add size mismatch")
	}
	for i, v := range src.Data {
		t.Data[i] += v
	}
}

// AddScaled accumulates alpha*src into t element-wise.
func (t *Tensor) AddScaled(alpha float32, src *Tensor) {
	if len(src.Data) != len(t.Data) {
		panic("tensor: AddScaled size mismatch")
	}
	for i, v := range src.Data {
		t.Data[i] += alpha * v
	}
}

// Sub subtracts src from t element-wise.
func (t *Tensor) Sub(src *Tensor) {
	if len(src.Data) != len(t.Data) {
		panic("tensor: Sub size mismatch")
	}
	for i, v := range src.Data {
		t.Data[i] -= v
	}
}

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float32) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Hadamard multiplies t element-wise by src.
func (t *Tensor) Hadamard(src *Tensor) {
	if len(src.Data) != len(t.Data) {
		panic("tensor: Hadamard size mismatch")
	}
	for i, v := range src.Data {
		t.Data[i] *= v
	}
}

// Sum returns the sum of all elements in float64 precision.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// AbsSum returns the L1 norm (sum of absolute values) in float64
// precision. This is the importance measure at the heart of SEAL's smart
// encryption (paper §III-A).
func (t *Tensor) AbsSum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += math.Abs(float64(v))
	}
	return s
}

// SqSum returns the squared L2 norm in float64 precision.
func (t *Tensor) SqSum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return s
}

// MaxAbs returns the maximum absolute element value.
func (t *Tensor) MaxAbs() float32 {
	m := float32(0)
	for _, v := range t.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// ArgMax returns the index of the largest element of a rank-1 tensor (or
// of the flattened data for higher ranks).
func (t *Tensor) ArgMax() int {
	best, bestV := 0, float32(math.Inf(-1))
	for i, v := range t.Data {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Row returns a view of row i of a rank-2 tensor.
func (t *Tensor) Row(i int) *Tensor {
	if len(t.Shape) != 2 {
		panic("tensor: Row requires rank-2 tensor")
	}
	cols := t.Shape[1]
	return FromSlice(t.Data[i*cols:(i+1)*cols], cols)
}

// MatMul computes C = A×B for rank-2 tensors A [m,k] and B [k,n],
// writing into a freshly allocated C [m,n]. The kernel is cache-blocked
// on k with an ikj loop order, which is the standard portable layout for
// row-major GEMM.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", k, k2))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// matMulPanelCols is the register-block width of the GEMM inner kernel:
// eight C columns are held in registers across the whole k loop.
const matMulPanelCols = 8

// MatMulPanelLen returns the scratch length MatMulIntoWS needs for a
// given inner dimension k (one packed B panel of k×8 floats). Callers
// that reuse a workspace across calls size it with this.
func MatMulPanelLen(k int) int { return k * matMulPanelCols }

// MatMulInto computes C = A×B into an existing C, which must have shape
// [m,n]. C is overwritten. It allocates a transient packing panel; hot
// loops that must not allocate pass a reusable one to MatMulIntoWS.
func MatMulInto(c, a, b *Tensor) { MatMulIntoWS(c, a, b, nil) }

// MatMulIntoWS is MatMulInto with a caller-owned packing scratch of at
// least MatMulPanelLen(k) floats. A nil panel is allocated internally;
// a non-nil but undersized panel panics with the required length — a
// short workspace means the caller sized it for the wrong k, and
// silently allocating would hide the bug as a per-call allocation on a
// path that exists to avoid exactly that.
// Rows of C are independent, so the kernel is row-blocked across the
// worker pool; each row accumulates over k in ascending order exactly
// as in the serial loop, keeping parallel output bit-identical to
// serial.
func MatMulIntoWS(c, a, b *Tensor, panel []float32) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulInto output shape mismatch")
	}
	if panel != nil && len(panel) < k*matMulPanelCols {
		panic(fmt.Sprintf("tensor: MatMulIntoWS panel len %d, need MatMulPanelLen(%d) = %d", len(panel), k, k*matMulPanelCols))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	// Workers()==1 skips the closure entirely: the serial path is a
	// plain call, so hot inference loops stay allocation-free.
	if m*k*n < minParallelOps || parallel.Workers() == 1 {
		if panel == nil {
			panel = make([]float32, k*matMulPanelCols)
		}
		matMulRows(cd, ad, bd, panel, k, n, 0, m)
		return
	}
	// Each worker chunk packs its own panel: packing is O(k·n) per
	// worker against O(k·n·rows) compute, and private panels keep the
	// chunks write-disjoint.
	parallel.For(m, 0, func(lo, hi int) {
		matMulRows(cd, ad, bd, make([]float32, k*matMulPanelCols), k, n, lo, hi)
	})
}

// matMulRows is the register-blocked GEMM inner kernel for output rows
// [lo, hi). Eight C columns are held in registers across the whole k
// loop, so each accumulator is loaded and stored once per row instead
// of once per (p, j) pair. The B column block is first packed into the
// contiguous panel — every matrix here has power-of-two row length, so
// walking B column-wise in place would hit a cache-set conflict on
// nearly every load; the packed panel streams sequentially and is
// reused by all rows of the chunk. The unroll is across j only: every
// c[i][j] still accumulates over p in ascending order with the same
// av==0 skip as the scalar loop, and packing copies values exactly, so
// the result is bit-identical to the serial reference — register
// blocking changes the memory traffic, never the float operation order
// within an output element.
func matMulRows(cd, ad, bd, panel []float32, k, n, lo, hi int) {
	nb := n &^ (matMulPanelCols - 1)
	for j0 := 0; j0 < nb; j0 += matMulPanelCols {
		pk := panel[: k*matMulPanelCols : k*matMulPanelCols]
		for p := 0; p < k; p++ {
			copy(pk[p*matMulPanelCols:(p+1)*matMulPanelCols], bd[p*n+j0:p*n+j0+matMulPanelCols])
		}
		for i := lo; i < hi; i++ {
			ai := ad[i*k : (i+1)*k]
			var c0, c1, c2, c3, c4, c5, c6, c7 float32
			for p, av := range ai {
				if av == 0 {
					continue
				}
				bp := pk[p*8 : p*8+8 : p*8+8]
				c0 += av * bp[0]
				c1 += av * bp[1]
				c2 += av * bp[2]
				c3 += av * bp[3]
				c4 += av * bp[4]
				c5 += av * bp[5]
				c6 += av * bp[6]
				c7 += av * bp[7]
			}
			cj := cd[i*n+j0 : i*n+j0+8 : i*n+j0+8]
			cj[0], cj[1], cj[2], cj[3] = c0, c1, c2, c3
			cj[4], cj[5], cj[6], cj[7] = c4, c5, c6, c7
		}
	}
	// Remainder columns (n not a multiple of the panel width, or narrow
	// matrices like the deepest conv stages where npos < 8) are blocked
	// across rows instead: eight (then four) C elements of one column
	// accumulate in registers, amortizing the strided B load across the
	// rows and breaking the single-accumulator add-latency chain. Each
	// element still sums over p ascending and skips exactly the av==0
	// terms, so the result is bit-identical to the scalar loop.
	for j := nb; j < n; j++ {
		i0 := lo
		for ; i0+8 <= hi; i0 += 8 {
			a0 := ad[(i0+0)*k : (i0+1)*k : (i0+1)*k]
			a1 := ad[(i0+1)*k : (i0+2)*k : (i0+2)*k]
			a2 := ad[(i0+2)*k : (i0+3)*k : (i0+3)*k]
			a3 := ad[(i0+3)*k : (i0+4)*k : (i0+4)*k]
			a4 := ad[(i0+4)*k : (i0+5)*k : (i0+5)*k]
			a5 := ad[(i0+5)*k : (i0+6)*k : (i0+6)*k]
			a6 := ad[(i0+6)*k : (i0+7)*k : (i0+7)*k]
			a7 := ad[(i0+7)*k : (i0+8)*k : (i0+8)*k]
			var c0, c1, c2, c3, c4, c5, c6, c7 float32
			for p := 0; p < k; p++ {
				bv := bd[p*n+j]
				if av := a0[p]; av != 0 {
					c0 += av * bv
				}
				if av := a1[p]; av != 0 {
					c1 += av * bv
				}
				if av := a2[p]; av != 0 {
					c2 += av * bv
				}
				if av := a3[p]; av != 0 {
					c3 += av * bv
				}
				if av := a4[p]; av != 0 {
					c4 += av * bv
				}
				if av := a5[p]; av != 0 {
					c5 += av * bv
				}
				if av := a6[p]; av != 0 {
					c6 += av * bv
				}
				if av := a7[p]; av != 0 {
					c7 += av * bv
				}
			}
			cd[(i0+0)*n+j] = c0
			cd[(i0+1)*n+j] = c1
			cd[(i0+2)*n+j] = c2
			cd[(i0+3)*n+j] = c3
			cd[(i0+4)*n+j] = c4
			cd[(i0+5)*n+j] = c5
			cd[(i0+6)*n+j] = c6
			cd[(i0+7)*n+j] = c7
		}
		for ; i0+4 <= hi; i0 += 4 {
			a0 := ad[(i0+0)*k : (i0+1)*k : (i0+1)*k]
			a1 := ad[(i0+1)*k : (i0+2)*k : (i0+2)*k]
			a2 := ad[(i0+2)*k : (i0+3)*k : (i0+3)*k]
			a3 := ad[(i0+3)*k : (i0+4)*k : (i0+4)*k]
			var c0, c1, c2, c3 float32
			for p := 0; p < k; p++ {
				bv := bd[p*n+j]
				if av := a0[p]; av != 0 {
					c0 += av * bv
				}
				if av := a1[p]; av != 0 {
					c1 += av * bv
				}
				if av := a2[p]; av != 0 {
					c2 += av * bv
				}
				if av := a3[p]; av != 0 {
					c3 += av * bv
				}
			}
			cd[(i0+0)*n+j] = c0
			cd[(i0+1)*n+j] = c1
			cd[(i0+2)*n+j] = c2
			cd[(i0+3)*n+j] = c3
		}
		for i := i0; i < hi; i++ {
			ai := ad[i*k : (i+1)*k]
			var s float32
			for p, av := range ai {
				if av == 0 {
					continue
				}
				s += av * bd[p*n+j]
			}
			cd[i*n+j] = s
		}
	}
}

// MatMulTransA computes C = Aᵀ×B for A [k,m] and B [k,n] into C [m,n].
// Used for weight-gradient computation in backprop.
func MatMulTransA(a, b *Tensor) *Tensor {
	c := New(a.Shape[1], b.Shape[1])
	MatMulTransAInto(c, a, b)
	return c
}

// MatMulTransAScratchLen returns the scratch length MatMulTransAIntoWS
// needs for A [k,m]: room to transpose A plus one packing panel.
func MatMulTransAScratchLen(k, m int) int { return k*m + MatMulPanelLen(k) }

// MatMulTransAInto computes C = Aᵀ×B into an existing C [m,n],
// overwriting it. It allocates transient scratch; hot loops pass a
// reusable one to MatMulTransAIntoWS.
func MatMulTransAInto(c, a, b *Tensor) { MatMulTransAIntoWS(c, a, b, nil) }

// MatMulTransAIntoWS is MatMulTransAInto with caller-owned scratch of
// at least MatMulTransAScratchLen(k, m) floats (nil → allocated; short
// → panic, matching MatMulIntoWS). A is first transposed into the
// scratch and the register-blocked MatMul kernel runs on the copy:
// every C element then accumulates over p ascending with the same
// av==0 skip set as the historical p-outer loop, so the output is
// bit-identical to it — the transpose moves bytes, never changing the
// float operation order within an element.
func MatMulTransAIntoWS(c, a, b *Tensor, scratch []float32) {
	k, m := a.Shape[0], a.Shape[1]
	if b.Shape[0] != k {
		panic("tensor: MatMulTransA inner dims mismatch")
	}
	n := b.Shape[1]
	if c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulTransAInto output shape mismatch")
	}
	need := MatMulTransAScratchLen(k, m)
	if scratch == nil {
		scratch = make([]float32, need)
	} else if len(scratch) < need {
		panic(fmt.Sprintf("tensor: MatMulTransAIntoWS scratch len %d, need MatMulTransAScratchLen(%d, %d) = %d", len(scratch), k, m, need))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	at := scratch[:k*m]
	panel := scratch[k*m : k*m+MatMulPanelLen(k)]
	if m*k*n < minParallelOps || parallel.Workers() == 1 {
		transposeInto(at, ad, k, m)
		matMulRows(cd, at, bd, panel, k, n, 0, m)
		return
	}
	// Transpose rows of Aᵀ are disjoint per worker chunk; the GEMM then
	// row-blocks C with per-worker private panels as in MatMulIntoWS.
	parallel.For(m, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for p := 0; p < k; p++ {
				at[i*k+p] = ad[p*m+i]
			}
		}
	})
	parallel.For(m, 0, func(lo, hi int) {
		matMulRows(cd, at, bd, make([]float32, MatMulPanelLen(k)), k, n, lo, hi)
	})
}

// transposeInto writes the [m,k] transpose of the row-major [k,m]
// matrix src into dst.
func transposeInto(dst, src []float32, k, m int) {
	for p := 0; p < k; p++ {
		row := src[p*m : (p+1)*m]
		for i, v := range row {
			dst[i*k+p] = v
		}
	}
}

// matMulTransARows computes rows [lo, hi) of C = Aᵀ×B with the p-outer
// loop order (each C element accumulates over p ascending).
func matMulTransARows(cd, ad, bd []float32, k, m, n, lo, hi int) {
	for p := 0; p < k; p++ {
		ap := ad[p*m : (p+1)*m]
		bp := bd[p*n : (p+1)*n]
		for i := lo; i < hi; i++ {
			av := ap[i]
			if av == 0 {
				continue
			}
			ci := cd[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes C = A×Bᵀ for A [m,k] and B [n,k] into C [m,n].
// Used for input-gradient computation in backprop.
func MatMulTransB(a, b *Tensor) *Tensor {
	c := New(a.Shape[0], b.Shape[0])
	MatMulTransBInto(c, a, b)
	return c
}

// MatMulTransBInto computes C = A×Bᵀ into an existing C [m,n],
// overwriting it. It allocates a transient packing panel; hot loops
// pass a reusable one to MatMulTransBIntoWS.
func MatMulTransBInto(c, a, b *Tensor) { MatMulTransBIntoWS(c, a, b, nil) }

// MatMulTransBIntoWS is MatMulTransBInto with a caller-owned packing
// scratch of at least MatMulPanelLen(k) floats (nil → allocated; short
// → panic, matching MatMulIntoWS). Eight B rows at a time are packed
// p-major into the panel so the inner loop streams one contiguous
// buffer instead of eight strided rows, with eight C columns held in
// registers. Every dot product still sums over p in ascending order
// with no zero skip, exactly as the historical four-wide kernel, so
// the output is bit-identical to it.
func MatMulTransBIntoWS(c, a, b *Tensor, panel []float32) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if b.Shape[1] != k {
		panic("tensor: MatMulTransB inner dims mismatch")
	}
	if c.Shape[0] != m || c.Shape[1] != n {
		panic("tensor: MatMulTransBInto output shape mismatch")
	}
	if panel != nil && len(panel) < MatMulPanelLen(k) {
		panic(fmt.Sprintf("tensor: MatMulTransBIntoWS panel len %d, need MatMulPanelLen(%d) = %d", len(panel), k, MatMulPanelLen(k)))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	if m*k*n < minParallelOps || parallel.Workers() == 1 {
		if panel == nil {
			panel = make([]float32, MatMulPanelLen(k))
		}
		matMulTransBRows(cd, ad, bd, panel, k, n, 0, m)
		return
	}
	// The panel packs B columns (shared by all C rows), so each worker
	// chunk packs its own private copy and the chunks stay
	// write-disjoint.
	parallel.For(m, 0, func(lo, hi int) {
		matMulTransBRows(cd, ad, bd, make([]float32, MatMulPanelLen(k)), k, n, lo, hi)
	})
}

// matMulTransBRows computes rows [lo, hi) of C = A×Bᵀ. Eight B rows
// (eight C columns) are packed p-major into the panel and accumulated
// in registers per pass over ai, which reuses each av load eight times
// and turns eight strided B streams into one sequential one; every dot
// product still sums over p in ascending order with no zero skip,
// bit-identical to the one-column-at-a-time loop.
func matMulTransBRows(cd, ad, bd, panel []float32, k, n, lo, hi int) {
	nb := n &^ (matMulPanelCols - 1)
	// With at most eight output rows the panel pack (O(k·n) copies) no
	// longer amortizes; the row-blocked kernel below covers the whole
	// chunk in one or two register blocks and reads A and B sequentially
	// with no packing at all, computing every element identically.
	if hi-lo <= 8 {
		nb = 0
	}
	for j0 := 0; j0 < nb; j0 += matMulPanelCols {
		pk := panel[: k*matMulPanelCols : k*matMulPanelCols]
		for t := 0; t < matMulPanelCols; t++ {
			bt := bd[(j0+t)*k : (j0+t+1)*k]
			for p, v := range bt {
				pk[p*matMulPanelCols+t] = v
			}
		}
		for i := lo; i < hi; i++ {
			ai := ad[i*k : (i+1)*k]
			var c0, c1, c2, c3, c4, c5, c6, c7 float32
			for p, av := range ai {
				bp := pk[p*8 : p*8+8 : p*8+8]
				c0 += av * bp[0]
				c1 += av * bp[1]
				c2 += av * bp[2]
				c3 += av * bp[3]
				c4 += av * bp[4]
				c5 += av * bp[5]
				c6 += av * bp[6]
				c7 += av * bp[7]
			}
			cj := cd[i*n+j0 : i*n+j0+8 : i*n+j0+8]
			cj[0], cj[1], cj[2], cj[3] = c0, c1, c2, c3
			cj[4], cj[5], cj[6], cj[7] = c4, c5, c6, c7
		}
	}
	// Remainder columns are blocked across rows (eight, then four, C
	// elements of one column in registers): the B row load is shared by
	// all lanes and the independent accumulators break the add-latency
	// chain of the scalar loop. Per element the sum still runs over p
	// ascending with no zero skip — bit-identical.
	for j := nb; j < n; j++ {
		bj := bd[j*k : (j+1)*k : (j+1)*k]
		i0 := lo
		for ; i0+8 <= hi; i0 += 8 {
			a0 := ad[(i0+0)*k : (i0+1)*k : (i0+1)*k]
			a1 := ad[(i0+1)*k : (i0+2)*k : (i0+2)*k]
			a2 := ad[(i0+2)*k : (i0+3)*k : (i0+3)*k]
			a3 := ad[(i0+3)*k : (i0+4)*k : (i0+4)*k]
			a4 := ad[(i0+4)*k : (i0+5)*k : (i0+5)*k]
			a5 := ad[(i0+5)*k : (i0+6)*k : (i0+6)*k]
			a6 := ad[(i0+6)*k : (i0+7)*k : (i0+7)*k]
			a7 := ad[(i0+7)*k : (i0+8)*k : (i0+8)*k]
			var c0, c1, c2, c3, c4, c5, c6, c7 float32
			for p, bv := range bj {
				c0 += a0[p] * bv
				c1 += a1[p] * bv
				c2 += a2[p] * bv
				c3 += a3[p] * bv
				c4 += a4[p] * bv
				c5 += a5[p] * bv
				c6 += a6[p] * bv
				c7 += a7[p] * bv
			}
			cd[(i0+0)*n+j] = c0
			cd[(i0+1)*n+j] = c1
			cd[(i0+2)*n+j] = c2
			cd[(i0+3)*n+j] = c3
			cd[(i0+4)*n+j] = c4
			cd[(i0+5)*n+j] = c5
			cd[(i0+6)*n+j] = c6
			cd[(i0+7)*n+j] = c7
		}
		for ; i0+4 <= hi; i0 += 4 {
			a0 := ad[(i0+0)*k : (i0+1)*k : (i0+1)*k]
			a1 := ad[(i0+1)*k : (i0+2)*k : (i0+2)*k]
			a2 := ad[(i0+2)*k : (i0+3)*k : (i0+3)*k]
			a3 := ad[(i0+3)*k : (i0+4)*k : (i0+4)*k]
			var c0, c1, c2, c3 float32
			for p, bv := range bj {
				c0 += a0[p] * bv
				c1 += a1[p] * bv
				c2 += a2[p] * bv
				c3 += a3[p] * bv
			}
			cd[(i0+0)*n+j] = c0
			cd[(i0+1)*n+j] = c1
			cd[(i0+2)*n+j] = c2
			cd[(i0+3)*n+j] = c3
		}
		for i := i0; i < hi; i++ {
			ai := ad[i*k : (i+1)*k]
			var s float32
			for p, av := range ai {
				s += av * bj[p]
			}
			cd[i*n+j] = s
		}
	}
}

// Transpose returns a new rank-2 tensor that is the transpose of t.
func (t *Tensor) Transpose() *Tensor {
	if len(t.Shape) != 2 {
		panic("tensor: Transpose requires rank-2 tensor")
	}
	out := New(t.Shape[1], t.Shape[0])
	TransposeInto(out, t)
	return out
}

// TransposeInto writes the transpose of rank-2 src [m,n] into the
// caller-owned dst [n,m], overwriting it.
func TransposeInto(dst, src *Tensor) {
	if len(src.Shape) != 2 || len(dst.Shape) != 2 {
		panic("tensor: TransposeInto requires rank-2 tensors")
	}
	m, n := src.Shape[0], src.Shape[1]
	if dst.Shape[0] != n || dst.Shape[1] != m {
		panic(fmt.Sprintf("tensor: TransposeInto output %v for input %v", dst.Shape, src.Shape))
	}
	transposeInto(dst.Data, src.Data, m, n)
}

// Equal reports element-wise equality within tolerance eps.
func Equal(a, b *Tensor, eps float32) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < -eps || d > eps {
			return false
		}
	}
	return true
}

// String renders a short description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.Shape)
}
