package tensor

import (
	"fmt"
	"math"

	"seal/internal/parallel"
)

// This file is the int8 quantized-inference substrate: per-output-channel
// symmetric weight quantization, per-item symmetric activation
// quantization, a saturating int8 GEMM with int32 accumulators, and the
// dequantization kernels that turn accumulators back into float32
// activations. The design leans on two facts:
//
//   - int32 accumulation of int8×int8 products is exact, so the sum is
//     independent of association order. Panel-split, row-sharded and
//     serial executions are bit-identical by arithmetic, not by loop
//     discipline as in the float kernels.
//   - adding a zero product never changes an exact integer sum, so the
//     kernel is free to enumerate only the nonzero activation lanes.
//     Post-ReLU feature maps are roughly half exact zeros; the GEMM runs
//     with activations on the left (row-major, contiguous) and weights on
//     the right — the transpose of the float conv kernel's orientation —
//     precisely so the sparse operand is the streamed one.
//
// The inner kernel is a biased-SWAR dual-lane multiply, documented at
// int8Rows below: one 64-bit integer multiply retires two int8 products,
// which is what lets the int8 path beat the float32 kernels even on
// dense inputs.
type Int8Mat struct {
	Rows, Cols int
	Data       []int8 // row-major
}

// NewInt8Mat returns a zeroed int8 matrix.
func NewInt8Mat(rows, cols int) *Int8Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: non-positive Int8Mat dims %d×%d", rows, cols))
	}
	return &Int8Mat{Rows: rows, Cols: cols, Data: make([]int8, rows*cols)}
}

// QMaxInt8 is the symmetric quantization range: values map to
// [-QMaxInt8, QMaxInt8]. -128 is never produced, so negation of any
// quantized value stays in range.
const QMaxInt8 = 127

// maxInt8GEMMDepth bounds the inner dimension of the int8 GEMM so the
// int32 output accumulator provably cannot overflow:
// depth·127² ≤ MaxInt32.
const maxInt8GEMMDepth = math.MaxInt32 / (QMaxInt8 * QMaxInt8)

// maxPackedDepth bounds one packed-accumulation run: the dual-lane
// int64 accumulator holds each 32-bit lane as 2³⁰ + Σ a·(b+128), and
// every partial sum must stay strictly inside (0, 2³¹) for the lanes
// to separate exactly. |a·(b+128)| ≤ 127·255 = 32385, so runs up to
// ⌊(2³⁰−1)/32385⌋ = 33155 lanes are safe; longer inner dimensions are
// folded in chunks.
const maxPackedDepth = 32768

// MaxInt8PanelDepth is the deepest weight panel (inner-dimension lanes)
// the packed GEMM entry points accept in one call — streaming callers
// clamp their panel splits to it so every panel takes the fast path
// rather than the splitting fallback.
const MaxInt8PanelDepth = maxPackedDepth

// laneBias is the per-32-bit-lane offset that keeps both SWAR lanes
// positive; accBias seeds a packed accumulator with it in each lane.
const (
	laneBias   = int64(1) << 30
	accBias    = laneBias | laneBias<<32
	laneBias32 = int32(1) << 30
)

// QuantScale returns the symmetric scale mapping [-maxAbs, maxAbs] onto
// the int8 range: maxAbs/127, or 1 for an all-zero tensor (any scale
// reproduces zeros exactly; 1 keeps dequantization well-defined).
func QuantScale(maxAbs float32) float32 {
	if maxAbs == 0 {
		return 1
	}
	return maxAbs / QMaxInt8
}

// quantizeOne maps v to the saturating int8 grid of the given inverse
// scale: round-half-away-from-zero, clamped to ±127. The clamp happens
// in the float domain — r can exceed the int32 range for caller-chosen
// scales far below max|v|/127, where a convert-then-clamp would hit
// Go's implementation-defined out-of-range conversion.
func quantizeOne(v, invScale float32) int8 {
	r := v * invScale
	if r >= QMaxInt8 {
		return QMaxInt8
	}
	if r <= -QMaxInt8 {
		return -QMaxInt8
	}
	if r >= 0 {
		return int8(int32(r + 0.5))
	}
	return int8(int32(r - 0.5))
}

// QuantizeRowsInto quantizes the rank-2 tensor w row by row with
// per-row symmetric scales: scales[i] = max|w[i,:]|/127 and
// q[i][j] = round(w[i][j]/scales[i]) saturated to ±127. With w a kernel
// matrix (rows = output channels) this is the per-output-channel weight
// quantization of the int8 inference path. q and scales must be sized
// [rows, cols] and [rows].
func QuantizeRowsInto(q *Int8Mat, scales []float32, w *Tensor) {
	if len(w.Shape) != 2 {
		panic("tensor: QuantizeRowsInto requires a rank-2 tensor")
	}
	rows, cols := w.Shape[0], w.Shape[1]
	if q.Rows != rows || q.Cols != cols || len(q.Data) < rows*cols {
		panic(fmt.Sprintf("tensor: QuantizeRowsInto dst %d×%d for src %d×%d", q.Rows, q.Cols, rows, cols))
	}
	if len(scales) < rows {
		panic(fmt.Sprintf("tensor: QuantizeRowsInto scales len %d, need %d", len(scales), rows))
	}
	for i := 0; i < rows; i++ {
		src := w.Data[i*cols : (i+1)*cols]
		s := QuantScale(MaxAbsSlice(src))
		scales[i] = s
		inv := 1 / s
		dst := q.Data[i*cols : (i+1)*cols]
		for j, v := range src {
			dst[j] = quantizeOne(v, inv)
		}
	}
}

// QuantizeSliceInto quantizes src onto the int8 grid of the given scale
// (QuantScale of the data's max-abs, or any caller-chosen symmetric
// scale). Values beyond ±127·scale saturate.
func QuantizeSliceInto(dst []int8, src []float32, scale float32) {
	if len(dst) < len(src) {
		panic(fmt.Sprintf("tensor: QuantizeSliceInto dst len %d < src len %d", len(dst), len(src)))
	}
	inv := 1 / scale
	for i, v := range src {
		dst[i] = quantizeOne(v, inv)
	}
}

// MaxAbsSlice returns the maximum absolute value of src.
func MaxAbsSlice(src []float32) float32 {
	var m float32
	for _, v := range src {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// Im2ColTransInt8Into expands the quantized image img (row-major
// [C, H, W] int8 values) into the TRANSPOSE of the float Im2Col matrix:
// dst[j][c*KH*KW + kh*KW + kw] for output position j. Padding positions
// are zero. This row-major activation layout is what the int8 GEMM
// consumes: each output pixel's receptive field is one contiguous row,
// so the nonzero-lane scan streams it sequentially.
func Im2ColTransInt8Into(dst *Int8Mat, img []int8, g ConvGeom) {
	oh, ow := g.OutH(), g.OutW()
	ncols := oh * ow
	kk := g.InC * g.KH * g.KW
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2ColTransInt8Into image len %d does not match geometry %+v", len(img), g))
	}
	if dst.Rows != ncols || dst.Cols != kk || len(dst.Data) < ncols*kk {
		panic(fmt.Sprintf("tensor: Im2ColTransInt8Into output %d×%d, want %d×%d", dst.Rows, dst.Cols, ncols, kk))
	}
	d := dst.Data[:ncols*kk]
	for i := range d {
		d[i] = 0
	}
	// Row j = (oy, ox) gathers the window anchored at that output
	// position; the (c, kh) loops copy contiguous input spans clipped to
	// the valid kw range.
	for oy := 0; oy < oh; oy++ {
		iy0 := oy*g.Stride - g.Pad
		for ox := 0; ox < ow; ox++ {
			ix0 := ox*g.Stride - g.Pad
			row := d[(oy*ow+ox)*kk : (oy*ow+ox+1)*kk]
			for c := 0; c < g.InC; c++ {
				chanBase := c * g.InH * g.InW
				for kh := 0; kh < g.KH; kh++ {
					iy := iy0 + kh
					if iy < 0 || iy >= g.InH {
						continue
					}
					kw0, kw1 := 0, g.KW
					if ix0 < 0 {
						kw0 = -ix0
					}
					if ix0+g.KW > g.InW {
						kw1 = g.InW - ix0
					}
					if kw1 <= kw0 {
						continue
					}
					src := img[chanBase+iy*g.InW+ix0+kw0 : chanBase+iy*g.InW+ix0+kw1]
					copy(row[(c*g.KH+kh)*g.KW+kw0:(c*g.KH+kh)*g.KW+kw1], src)
				}
			}
		}
	}
}

// Int8GEMMWS is the caller-owned scratch of the int8 GEMM: the
// compressed nonzero-lane lists of the activation rows plus the packed
// weight words of one call. Zero-alloc callers keep one per worker
// sized with NewInt8GEMMWS and pass it to every call; a nil workspace
// allocates internally.
type Int8GEMMWS struct {
	nz     []int32 // per-row nonzero lanes, packed lane*4<<8 | uint8(value)
	rowPtr []int32 // m+1 offsets into nz
	rowSum []int32 // per-row Σ of activation values over the panel lanes
	panel  []int64 // packed dual-lane weight words (PackedBLen)
}

// NewInt8GEMMWS sizes a workspace for activation matrices up to [m, k]
// against weight matrices up to n rows (the nonzero list is worst-case
// dense). Callers that only use the prepacked entry point may pass
// n = 0.
func NewInt8GEMMWS(m, k, n int) *Int8GEMMWS {
	kp := k
	if kp > maxPackedDepth {
		kp = maxPackedDepth
	}
	return &Int8GEMMWS{
		nz:     make([]int32, m*k),
		rowPtr: make([]int32, m+1),
		rowSum: make([]int32, m),
		panel:  make([]int64, PackedBLen(n, kp)),
	}
}

func (ws *Int8GEMMWS) ensure(m, kp, n int) {
	if cap(ws.nz) < m*kp {
		ws.nz = make([]int32, m*kp)
	}
	ws.nz = ws.nz[:cap(ws.nz)]
	if cap(ws.rowPtr) < m+1 {
		ws.rowPtr = make([]int32, m+1)
	}
	ws.rowPtr = ws.rowPtr[:cap(ws.rowPtr)]
	if cap(ws.rowSum) < m {
		ws.rowSum = make([]int32, m)
	}
	ws.rowSum = ws.rowSum[:cap(ws.rowSum)]
	if need := PackedBLen(n, kp); cap(ws.panel) < need {
		ws.panel = make([]int64, need)
	}
	ws.panel = ws.panel[:cap(ws.panel)]
}

// PackedBLen returns the int64 length of the packed dual-lane weight
// layout for an [n, k] weight panel: four words per inner position for
// each full block of eight weight rows (remainder rows stay unpacked).
func PackedBLen(n, k int) int { return (n / 8) * k * 4 }

// PackInt8BInto packs the weight panel b [n, kp] into the biased
// dual-lane word layout the int8 GEMM consumes: block j0/8 occupies
// words [j0/8·kp·4, (j0/8+1)·kp·4), and word p·4+t of a block pairs the
// biased columns (j0+2t, j0+2t+1) at inner position p. Weights are
// stationary across activations, so callers pack once — per quantized
// layer at build time, or per decrypted panel per forward — and reuse
// the packed form for every activation matrix.
func PackInt8BInto(pb []int64, b *Int8Mat) {
	n, kp := b.Rows, b.Cols
	if need := PackedBLen(n, kp); len(pb) < need {
		panic(fmt.Sprintf("tensor: PackInt8BInto packed len %d, need %d", len(pb), need))
	}
	for j0 := 0; j0+8 <= n; j0 += 8 {
		dst := pb[j0/8*kp*4 : (j0/8+1)*kp*4]
		for t := 0; t < 4; t++ {
			be := b.Data[(j0+2*t)*kp : (j0+2*t+1)*kp]
			bo := b.Data[(j0+2*t+1)*kp : (j0+2*t+2)*kp]
			for p := range be {
				dst[p*4+t] = (int64(be[p]) + 128) | (int64(bo[p])+128)<<32
			}
		}
	}
}

// MatMulInt8TransBInto computes C = A×Bᵀ over int8 operands with exact
// int32 accumulation: A [m, k] activations, B [n, k] weights (rows =
// output channels, matching the kernel-matrix layout), C [m, n] int32.
// ws may be nil (allocates); see Int8GEMMWS.
func MatMulInt8TransBInto(c []int32, a, b *Int8Mat, ws *Int8GEMMWS) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulInt8TransBInto inner dims %d != %d", a.Cols, b.Cols))
	}
	MatMulInt8TransBPanelAcc(c, a, 0, b, false, ws)
}

// MatMulInt8TransBPanelAcc folds one k-panel into C = A×Bᵀ: bPanel
// [n, kp] holds weight columns [p0, p0+kp) of a conceptual [n, k]
// weight matrix, A is the full [m, ka] activation matrix (only columns
// [p0, p0+kp) are read), and C [m, n] int32 accumulates (acc=true) or
// is overwritten (acc=false). Because the accumulation is exact integer
// arithmetic, any panel split of [0, ka) produces bit-identical C —
// the streaming secure engine relies on this for panel-size and
// worker-count invariance. This is the int32 analogue of the float
// MatMulTransBPanelAccWS: acc=true seeds every output element from its
// stored partial sum.
func MatMulInt8TransBPanelAcc(c []int32, a *Int8Mat, p0 int, bPanel *Int8Mat, acc bool, ws *Int8GEMMWS) {
	m, ka := a.Rows, a.Cols
	n, kp := bPanel.Rows, bPanel.Cols
	if p0 < 0 || p0+kp > ka {
		panic(fmt.Sprintf("tensor: MatMulInt8TransBPanelAcc panel [%d, %d) outside A columns %d", p0, p0+kp, ka))
	}
	if ka > maxInt8GEMMDepth {
		panic(fmt.Sprintf("tensor: MatMulInt8TransBPanelAcc depth %d overflows int32 accumulators (max %d)", ka, maxInt8GEMMDepth))
	}
	if len(c) < m*n {
		panic(fmt.Sprintf("tensor: MatMulInt8TransBPanelAcc output len %d, need %d", len(c), m*n))
	}
	if kp > maxPackedDepth {
		// Fold over-long panels in exact int32 chunks; every split point
		// yields the same C bits. Inner dimensions this deep do not occur
		// on the model hot paths, so the row copies here are cold.
		splitInt8Panel(c, a, p0, bPanel, acc, ws)
		return
	}
	if ws == nil {
		ws = NewInt8GEMMWS(m, kp, n)
	}
	ws.ensure(m, kp, n)
	pb := ws.panel[:PackedBLen(n, kp)]
	PackInt8BInto(pb, bPanel)
	MatMulInt8TransBPrepackedAcc(c, a, p0, pb, bPanel, acc, ws)
}

// MatMulInt8TransBPrepackedAcc is MatMulInt8TransBPanelAcc for
// weight-stationary callers: pb is bPanel already packed by
// PackInt8BInto (its remainder rows are still read from bPanel). The
// packing is pure data movement, so results are bit-identical to the
// self-packing entry point.
func MatMulInt8TransBPrepackedAcc(c []int32, a *Int8Mat, p0 int, pb []int64, bPanel *Int8Mat, acc bool, ws *Int8GEMMWS) {
	m, ka := a.Rows, a.Cols
	n, kp := bPanel.Rows, bPanel.Cols
	if p0 < 0 || p0+kp > ka {
		panic(fmt.Sprintf("tensor: MatMulInt8TransBPrepackedAcc panel [%d, %d) outside A columns %d", p0, p0+kp, ka))
	}
	if kp > maxPackedDepth {
		panic(fmt.Sprintf("tensor: MatMulInt8TransBPrepackedAcc panel depth %d exceeds packed max %d", kp, maxPackedDepth))
	}
	if len(pb) < PackedBLen(n, kp) {
		panic(fmt.Sprintf("tensor: MatMulInt8TransBPrepackedAcc packed len %d, need %d", len(pb), PackedBLen(n, kp)))
	}
	if len(c) < m*n {
		panic(fmt.Sprintf("tensor: MatMulInt8TransBPrepackedAcc output len %d, need %d", len(c), m*n))
	}
	if ws == nil {
		ws = NewInt8GEMMWS(m, kp, 0)
	}
	ws.ensure(m, kp, 0)
	buildNZ(ws, a.Data, m, ka, p0, kp)
	bd := bPanel.Data
	if m*kp*n < minParallelOps || parallel.Workers() == 1 {
		int8Rows(c, ws, pb, bd, kp, n, 0, m, acc)
		return
	}
	parallel.For(m, 0, func(lo, hi int) {
		int8Rows(c, ws, pb, bd, kp, n, lo, hi, acc)
	})
}

// splitInt8Panel folds a panel deeper than maxPackedDepth as two
// sub-panel calls, copying the row prefixes/suffixes into contiguous
// sub-matrices (bPanel rows are kp-strided, so sub-ranges cannot alias
// the original backing array).
func splitInt8Panel(c []int32, a *Int8Mat, p0 int, bPanel *Int8Mat, acc bool, ws *Int8GEMMWS) {
	n, kp := bPanel.Rows, bPanel.Cols
	head := &Int8Mat{Rows: n, Cols: maxPackedDepth, Data: make([]int8, n*maxPackedDepth)}
	tail := &Int8Mat{Rows: n, Cols: kp - maxPackedDepth, Data: make([]int8, n*(kp-maxPackedDepth))}
	for j := 0; j < n; j++ {
		copy(head.Data[j*head.Cols:(j+1)*head.Cols], bPanel.Data[j*kp:j*kp+maxPackedDepth])
		copy(tail.Data[j*tail.Cols:(j+1)*tail.Cols], bPanel.Data[j*kp+maxPackedDepth:(j+1)*kp])
	}
	MatMulInt8TransBPanelAcc(c, a, p0, head, acc, ws)
	MatMulInt8TransBPanelAcc(c, a, p0+maxPackedDepth, tail, true, ws)
}

// buildNZ compresses the activation panel columns [p0, p0+kp) of every
// row into the workspace: nz holds lane<<8 | uint8(value) for each
// nonzero lane, rowPtr delimits rows, and rowSum holds Σ of the row's
// values over the panel. Zero lanes contribute nothing to the sum, so
// the sum over nonzero lanes equals the sum over all lanes — the
// identity that lets the biased kernel skip zeros without a
// per-column correction.
func buildNZ(ws *Int8GEMMWS, ad []int8, m, ka, p0, kp int) {
	nz := ws.nz
	w := 0
	for i := 0; i < m; i++ {
		ws.rowPtr[i] = int32(w)
		ai := ad[i*ka+p0 : i*ka+p0+kp : i*ka+p0+kp]
		var sum int32
		// Branchless compaction: every lane is written, the cursor only
		// advances past nonzero ones. Activation sparsity is random, so
		// a skip branch here would mispredict half the time and cost
		// more than the GEMM it feeds; the conditional increment
		// compiles to a flag set, not a jump. The lane offset is stored
		// premultiplied by the packed word stride (4 int64s per lane) so
		// the hot loop decodes it with one shift.
		for p, av := range ai {
			sum += int32(av)
			nz[w] = int32(p)<<10 | int32(uint8(av))
			inc := 0
			if av != 0 {
				inc = 1
			}
			w += inc
		}
		ws.rowSum[i] = sum
	}
	ws.rowPtr[m] = int32(w)
}

// int8Rows computes C rows [lo, hi) of the int8 panel product with a
// biased dual-lane SWAR kernel. Eight weight rows (eight C columns) are
// processed per block: each weight value is biased to ub = b+128 ∈
// [1, 255] and adjacent column pairs are packed into one int64 word
// (ub_even | ub_odd<<32). One signed multiply a·word then yields both
// lane products a·ub at once — |a·ub| ≤ 127·255 = 32385, far inside a
// 32-bit lane — and a 2³⁰ bias per lane keeps every partial sum
// positive, so the packed int64 accumulator never carries between lanes
// and the final lane split is exact. The bias comes out algebraically:
// Σ a·ub = Σ a·b + 128·Σa, and Σa over the row's nonzero lanes equals
// Σa over all lanes, so skipping zeros needs no further correction.
// Net effect: two int8 products per integer multiply and no
// data-dependent branch in the inner loop — which is how this kernel
// outruns the float GEMM even on dense activations, and pulls further
// ahead on post-ReLU sparsity.
func int8Rows(cd []int32, ws *Int8GEMMWS, pb []int64, bd []int8, kp, n, lo, hi int, acc bool) {
	nz, rowPtr, rowSum := ws.nz, ws.rowPtr, ws.rowSum
	nb := n &^ 7
	for j0 := 0; j0 < nb; j0 += 8 {
		pkk := pb[j0/8*kp*4 : (j0/8+1)*kp*4 : (j0/8+1)*kp*4]
		for i := lo; i < hi; i++ {
			a0, a1, a2, a3 := accBias, accBias, accBias, accBias
			nzr := nz[rowPtr[i]:rowPtr[i+1]]
			t := 0
			for ; t+2 <= len(nzr); t += 2 {
				v0, v1 := nzr[t], nzr[t+1]
				x0, x1 := int64(int8(v0)), int64(int8(v1))
				o0, o1 := int(v0>>8), int(v1>>8)
				b0 := pkk[o0 : o0+4 : o0+4]
				b1 := pkk[o1 : o1+4 : o1+4]
				a0 += x0*b0[0] + x1*b1[0]
				a1 += x0*b0[1] + x1*b1[1]
				a2 += x0*b0[2] + x1*b1[2]
				a3 += x0*b0[3] + x1*b1[3]
			}
			if t < len(nzr) {
				v := nzr[t]
				x := int64(int8(v))
				bp := pkk[v>>8 : v>>8+4 : v>>8+4]
				a0 += x * bp[0]
				a1 += x * bp[1]
				a2 += x * bp[2]
				a3 += x * bp[3]
			}
			corr := laneBias32 + rowSum[i]<<7
			cj := cd[i*n+j0 : i*n+j0+8 : i*n+j0+8]
			if acc {
				cj[0] += int32(uint32(a0)) - corr
				cj[1] += int32(uint32(a0>>32)) - corr
				cj[2] += int32(uint32(a1)) - corr
				cj[3] += int32(uint32(a1>>32)) - corr
				cj[4] += int32(uint32(a2)) - corr
				cj[5] += int32(uint32(a2>>32)) - corr
				cj[6] += int32(uint32(a3)) - corr
				cj[7] += int32(uint32(a3>>32)) - corr
				continue
			}
			cj[0] = int32(uint32(a0)) - corr
			cj[1] = int32(uint32(a0>>32)) - corr
			cj[2] = int32(uint32(a1)) - corr
			cj[3] = int32(uint32(a1>>32)) - corr
			cj[4] = int32(uint32(a2)) - corr
			cj[5] = int32(uint32(a2>>32)) - corr
			cj[6] = int32(uint32(a3)) - corr
			cj[7] = int32(uint32(a3>>32)) - corr
		}
	}
	// Remainder columns (n not a multiple of 8): scalar dot over the
	// same nonzero lists, unbiased.
	for j := nb; j < n; j++ {
		bj := bd[j*kp : (j+1)*kp : (j+1)*kp]
		for i := lo; i < hi; i++ {
			var s int32
			if acc {
				s = cd[i*n+j]
			}
			for _, v := range nz[rowPtr[i]:rowPtr[i+1]] {
				s += int32(int8(v)) * int32(bj[v>>10])
			}
			cd[i*n+j] = s
		}
	}
}

// DequantizeInto writes dst[i][j] = float32(c[i][j]) · rowScales[i] ·
// colScales[j] for dst [m, n] — the fully-connected dequantization
// (rowScales = per-sample activation scales, colScales = per-output
// weight scales). Either scale slice may be nil, meaning 1.
func DequantizeInto(dst *Tensor, c []int32, rowScales, colScales []float32) {
	if len(dst.Shape) != 2 {
		panic("tensor: DequantizeInto requires a rank-2 destination")
	}
	m, n := dst.Shape[0], dst.Shape[1]
	if len(c) < m*n {
		panic(fmt.Sprintf("tensor: DequantizeInto accumulator len %d, need %d", len(c), m*n))
	}
	for i := 0; i < m; i++ {
		rs := float32(1)
		if rowScales != nil {
			rs = rowScales[i]
		}
		row := dst.Data[i*n : (i+1)*n]
		ci := c[i*n : (i+1)*n]
		if colScales == nil {
			for j := range row {
				row[j] = float32(ci[j]) * rs
			}
			continue
		}
		for j := range row {
			row[j] = float32(ci[j]) * (rs * colScales[j])
		}
	}
}

// DequantizeTransposeInto writes dst[j][i] = float32(c[i][j]) ·
// colScales[j] · itemScale for accumulator c laid out [m, n] and dst
// [n, m] — the convolution dequantization: the int8 GEMM produces the
// output matrix transposed ([pixels, channels]), and this kernel
// restores the NCHW [channels, pixels] orientation while applying the
// per-output-channel weight scale and the item's activation scale.
func DequantizeTransposeInto(dst *Tensor, c []int32, colScales []float32, itemScale float32) {
	if len(dst.Shape) != 2 {
		panic("tensor: DequantizeTransposeInto requires a rank-2 destination")
	}
	n, m := dst.Shape[0], dst.Shape[1]
	if len(c) < m*n {
		panic(fmt.Sprintf("tensor: DequantizeTransposeInto accumulator len %d, need %d", len(c), m*n))
	}
	if len(colScales) < n {
		panic(fmt.Sprintf("tensor: DequantizeTransposeInto scales len %d, need %d", len(colScales), n))
	}
	for j := 0; j < n; j++ {
		s := colScales[j] * itemScale
		row := dst.Data[j*m : (j+1)*m]
		for i := range row {
			row[i] = float32(c[i*n+j]) * s
		}
	}
}
