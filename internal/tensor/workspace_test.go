package tensor

import (
	"testing"

	"seal/internal/prng"
)

// dirtyWorkspace fills a tensor with sentinel garbage so a test can
// prove the Into-style kernels fully overwrite reused scratch.
func dirtyWorkspace(t *Tensor) {
	for i := range t.Data {
		t.Data[i] = -1e30
	}
}

// TestIm2ColIntoMatchesFresh verifies that a dirty reused workspace
// produces exactly the matrix a fresh allocation would, including the
// zero padding positions a stale buffer could leak through.
func TestIm2ColIntoMatchesFresh(t *testing.T) {
	r := prng.New(21)
	g := ConvGeom{InC: 3, InH: 9, InW: 9, KH: 3, KW: 3, Stride: 2, Pad: 1}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ws := New(g.InC*g.KH*g.KW, g.OutH()*g.OutW())
	for trial := 0; trial < 3; trial++ {
		x := sparseTensor(r, g.InC, g.InH, g.InW)
		fresh := Im2Col(x, g)
		dirtyWorkspace(ws)
		Im2ColInto(ws, x, g)
		bitIdentical(t, "Im2ColInto", fresh, ws)
	}
}

// TestMatMulIntoWSMatchesFresh verifies that the packed-panel GEMM with
// a caller-owned scratch is bit-identical to the allocating entry
// point, across shapes that exercise the 8-wide blocks, the scalar
// column remainder, and panels longer than one block.
func TestMatMulIntoWSMatchesFresh(t *testing.T) {
	r := prng.New(22)
	shapes := []struct{ m, k, n int }{
		{5, 7, 3},    // below the 8-column block: pure remainder path
		{16, 24, 16}, // exact multiples
		{33, 19, 29}, // blocks plus remainder
		{64, 64, 64}, // above the parallel cutover
	}
	for _, s := range shapes {
		a := sparseTensor(r, s.m, s.k)
		b := sparseTensor(r, s.k, s.n)
		want := MatMul(a, b)
		got := New(s.m, s.n)
		dirtyWorkspace(got)
		panel := make([]float32, MatMulPanelLen(s.k))
		for i := range panel {
			panel[i] = -1e30 // scratch contents must not matter
		}
		MatMulIntoWS(got, a, b, panel)
		bitIdentical(t, "MatMulIntoWS", want, got)
	}
}

// TestMatMulIntoWSShortPanel verifies an undersized non-nil panel
// panics with the required length instead of being silently replaced —
// a short workspace means the caller sized it for the wrong k, and a
// hidden allocation would defeat the zero-alloc contract of the WS
// entry points. nil still means "allocate for me".
func TestMatMulIntoWSShortPanel(t *testing.T) {
	r := prng.New(23)
	a := sparseTensor(r, 9, 11)
	b := sparseTensor(r, 11, 10)
	want := MatMul(a, b)

	got := New(9, 10)
	MatMulIntoWS(got, a, b, nil)
	bitIdentical(t, "MatMulIntoWS nil panel", want, got)

	mustPanic(t, "MatMulIntoWS short panel", func() {
		MatMulIntoWS(New(9, 10), a, b, make([]float32, 4))
	})
	mustPanic(t, "MatMulTransAIntoWS short scratch", func() {
		MatMulTransAIntoWS(New(9, 10), a.Transpose(), b, make([]float32, 4))
	})
	mustPanic(t, "MatMulTransBIntoWS short panel", func() {
		MatMulTransBIntoWS(New(9, 10), a, b.Transpose(), make([]float32, 4))
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", what)
		}
	}()
	fn()
}
