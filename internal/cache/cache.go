// Package cache models a set-associative, write-back, LRU cache. The GPU
// simulator instantiates it twice: as the per-partition L2 slice and as
// the on-chip counter cache of counter-mode memory encryption (paper
// §II-B adds a counter cache and sweeps its size in Figure 1).
package cache

import "fmt"

// Config describes a cache instance.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // line (block) size; must be a power of two
	Ways      int // associativity
}

// Validate checks structural invariants.
func (c Config) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a positive power of two", c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive associativity %d", c.Ways)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible into %d-way sets of %d-byte lines", c.SizeBytes, c.Ways, c.LineBytes)
	}
	// Set counts need not be powers of two: the paper sweeps counter
	// caches of 24/96/384/1536 KB, which index by modulo.
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

type way struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

// Stats counts cache events since construction or Reset.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// HitRate returns hits/(hits+misses), or 0 with no accesses.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a set-associative LRU cache model. It tracks tags only (no
// data payloads — the simulator moves data separately).
type Cache struct {
	cfg       Config
	ways      []way // nsets*Ways entries, set-major — one flat block, no per-set pointer chase
	clock     uint64
	lineShift uint
	nsets     uint64
	// setShift/setMask index sets by shift-and-mask when the set count is
	// a power of two (every standard configuration); division otherwise
	// (the paper's counter-cache sweep allows arbitrary sizes).
	setShift uint
	setMask  uint64
	setsPow2 bool
	nways    uint64
	stats    Stats
}

// New constructs a cache; it panics on an invalid configuration since
// configurations are static experiment parameters.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Sets()
	c := &Cache{
		cfg:   cfg,
		ways:  make([]way, nsets*cfg.Ways),
		nsets: uint64(nsets),
		nways: uint64(cfg.Ways),
	}
	for shift := uint(0); ; shift++ {
		if 1<<shift == cfg.LineBytes {
			c.lineShift = shift
			break
		}
	}
	if n := uint64(nsets); n&(n-1) == 0 {
		c.setsPow2 = true
		c.setMask = n - 1
		for 1<<c.setShift != n {
			c.setShift++
		}
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Result describes the outcome of one access.
type Result struct {
	Hit bool
	// Writeback is true when the access evicted a dirty line, which costs
	// an extra memory write in the timing model. EvictedAddr is the line
	// address of the victim.
	Writeback   bool
	EvictedAddr uint64
}

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	line := addr >> c.lineShift
	if c.setsPow2 {
		return line & c.setMask, line >> c.setShift
	}
	return line % c.nsets, line / c.nsets
}

// Access performs a read (write=false) or write (write=true) to addr,
// allocating on miss (write-allocate) and returning what happened.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.clock++
	set, tag := c.index(addr)
	ways := c.ways[set*c.nways : set*c.nways+c.nways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lastUse = c.clock
			if write {
				ways[i].dirty = true
			}
			c.stats.Hits++
			return Result{Hit: true}
		}
	}
	c.stats.Misses++
	// choose victim: first invalid way, else LRU
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	res := Result{}
	if ways[victim].valid {
		c.stats.Evictions++
		res.EvictedAddr = (ways[victim].tag*c.nsets + set) << c.lineShift
		if ways[victim].dirty {
			c.stats.Writebacks++
			res.Writeback = true
		}
	}
	ways[victim] = way{tag: tag, valid: true, dirty: write, lastUse: c.clock}
	return res
}

// Probe reports whether addr is resident without touching LRU state or
// statistics.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, w := range c.ways[set*c.nways : set*c.nways+c.nways] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops addr if resident, returning whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (wasDirty bool) {
	set, tag := c.index(addr)
	ways := c.ways[set*c.nways : set*c.nways+c.nways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			dirty := ways[i].dirty
			ways[i] = way{}
			return dirty
		}
	}
	return false
}

// Stats returns counters accumulated since the last Reset.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.ways {
		c.ways[i] = way{}
	}
	c.clock = 0
	c.stats = Stats{}
}
