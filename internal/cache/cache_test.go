package cache

import (
	"testing"
	"testing/quick"

	"seal/internal/prng"
)

func cfg4KB() Config { return Config{SizeBytes: 4096, LineBytes: 64, Ways: 4} }

func TestConfigValidate(t *testing.T) {
	if err := cfg4KB().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 4096, LineBytes: 48, Ways: 4}, // line not power of two
		{SizeBytes: 4096, LineBytes: 64, Ways: 0}, // zero ways
		{SizeBytes: 1000, LineBytes: 64, Ways: 4}, // size not divisible
		{SizeBytes: 4096, LineBytes: 64, Ways: 3}, // size not divisible by ways
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestSetsCount(t *testing.T) {
	if s := cfg4KB().Sets(); s != 16 {
		t.Fatalf("sets = %d, want 16", s)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := New(cfg4KB())
	if r := c.Access(0x1000, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Fatal("second access missed")
	}
	if r := c.Access(0x1004, false); !r.Hit {
		t.Fatal("same-line access missed")
	}
	if r := c.Access(0x1040, false); r.Hit {
		t.Fatal("next line hit without being fetched")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 16 sets × 64B lines: addresses that differ by 16*64=1024 map to the
	// same set. Fill the 4 ways, touch the first, insert a 5th: the LRU
	// victim must be the second line, not the recently touched first.
	c := New(cfg4KB())
	base := uint64(0)
	stride := uint64(1024)
	for i := uint64(0); i < 4; i++ {
		c.Access(base+i*stride, false)
	}
	c.Access(base, false) // refresh line 0
	r := c.Access(base+4*stride, false)
	if r.Hit {
		t.Fatal("5th distinct line hit")
	}
	if !c.Probe(base) {
		t.Fatal("recently used line was evicted")
	}
	if c.Probe(base + 1*stride) {
		t.Fatal("LRU line survived eviction")
	}
	if r.EvictedAddr != base+1*stride {
		t.Fatalf("evicted %#x, want %#x", r.EvictedAddr, base+stride)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := New(cfg4KB())
	stride := uint64(1024)
	c.Access(0, true) // dirty
	for i := uint64(1); i < 4; i++ {
		c.Access(i*stride, false)
	}
	r := c.Access(4*stride, false) // evicts line 0 (dirty)
	if !r.Writeback {
		t.Fatal("dirty eviction did not signal writeback")
	}
	if r.EvictedAddr != 0 {
		t.Fatalf("evicted %#x, want 0", r.EvictedAddr)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
	// clean eviction must not signal writeback
	c.Reset()
	for i := uint64(0); i < 5; i++ {
		c.Access(i*stride, false)
	}
	if c.Stats().Writebacks != 0 {
		t.Fatal("clean eviction produced writeback")
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := New(cfg4KB())
	stride := uint64(1024)
	c.Access(0, false) // clean fill
	c.Access(0, true)  // write hit → dirty
	for i := uint64(1); i < 5; i++ {
		c.Access(i*stride, false)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := New(cfg4KB())
	c.Access(0x40, false)
	before := c.Stats()
	if !c.Probe(0x40) || c.Probe(0x80) {
		t.Fatal("probe results wrong")
	}
	if c.Stats() != before {
		t.Fatal("probe changed statistics")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(cfg4KB())
	c.Access(0x100, true)
	if !c.Invalidate(0x100) {
		t.Fatal("invalidate did not report dirty")
	}
	if c.Probe(0x100) {
		t.Fatal("line survived invalidate")
	}
	if c.Invalidate(0x100) {
		t.Fatal("double invalidate reported dirty")
	}
}

func TestResetClearsEverything(t *testing.T) {
	c := New(cfg4KB())
	c.Access(0x200, true)
	c.Reset()
	if c.Probe(0x200) {
		t.Fatal("line survived reset")
	}
	if c.Stats() != (Stats{}) {
		t.Fatal("stats survived reset")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty hit rate not 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Fatalf("hit rate %v", s.HitRate())
	}
}

func TestSmallWorkingSetAlwaysHitsAfterWarmup(t *testing.T) {
	// Property: any working set that fits in the cache has zero misses
	// after the first pass, for arbitrary access order.
	check := func(seed uint64) bool {
		c := New(cfg4KB())
		r := prng.New(seed)
		// 4KB cache, 64B lines → 64 resident lines; use 32 and keep them
		// in at most 2 lines per set (16 sets × 4 ways holds them all).
		lines := make([]uint64, 32)
		for i := range lines {
			lines[i] = uint64(i) * 64
		}
		for _, a := range lines {
			c.Access(a, false)
		}
		missesAfterWarmup := c.Stats().Misses
		for i := 0; i < 500; i++ {
			c.Access(lines[r.Intn(len(lines))], r.Intn(2) == 0)
		}
		return c.Stats().Misses == missesAfterWarmup
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEvictedAddrRoundTrips(t *testing.T) {
	// Property: the reported EvictedAddr, when re-accessed, maps to the
	// same set it was evicted from (address reconstruction is exact).
	check := func(seed uint64) bool {
		c := New(Config{SizeBytes: 2048, LineBytes: 64, Ways: 2})
		r := prng.New(seed)
		inserted := map[uint64]bool{}
		for i := 0; i < 200; i++ {
			addr := uint64(r.Intn(1 << 20))
			line := addr &^ 63
			inserted[line] = true
			res := c.Access(addr, false)
			if res.EvictedAddr != 0 || res.Writeback {
				if !res.Hit && res.EvictedAddr != 0 && !inserted[res.EvictedAddr] {
					return false // evicted an address we never inserted
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLargerCacheNeverWorse(t *testing.T) {
	// The Figure-1b premise: growing the counter cache monotonically
	// improves hit rate on a reuse-heavy trace.
	trace := make([]uint64, 0, 20000)
	r := prng.New(77)
	for i := 0; i < 20000; i++ {
		// mix of a hot region and a cold stream
		if r.Intn(4) != 0 {
			trace = append(trace, uint64(r.Intn(256))*64)
		} else {
			trace = append(trace, uint64(100000+i)*64)
		}
	}
	prev := -1.0
	for _, size := range []int{1024, 4096, 16384, 65536} {
		c := New(Config{SizeBytes: size, LineBytes: 64, Ways: 4})
		for _, a := range trace {
			c.Access(a, false)
		}
		hr := c.Stats().HitRate()
		if hr < prev-0.01 {
			t.Fatalf("hit rate decreased when growing cache: %v -> %v at %d", prev, hr, size)
		}
		prev = hr
	}
}
