package exp

import "testing"

// TestQuantizedSecurity runs the reduced quantized-security study and
// pins its structural claims: the int8 victim stays close to the float
// victim (the IP survives quantization), and per-output-channel
// rounding barely moves the ℓ1 importance plan.
func TestQuantizedSecurity(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	cfg := QuickSecurityConfig()
	cfg.Ratios = []float64{0.5, 0.1}
	tab, err := QuantizedSecurity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vf, ok := tab.Cell("Victim", "Float")
	if !ok {
		t.Fatalf("missing victim row: %v", tab.String())
	}
	vq, _ := tab.Cell("Victim", "Int8")
	if vq < vf-0.05 {
		t.Fatalf("quantization cost the victim %.3f accuracy (float %.3f, int8 %.3f)", vf-vq, vf, vq)
	}
	for _, row := range []string{"SEAL-50%", "SEAL-10%"} {
		if tab.Row(row) == nil {
			t.Fatalf("missing row %s: %v", row, tab.String())
		}
		ov, _ := tab.Cell(row, "PlanOverlap")
		if ov < 0.8 {
			t.Fatalf("%s: quantization moved the importance plan too much (overlap %.3f)", row, ov)
		}
		facc, _ := tab.Cell(row, "Float")
		qacc, _ := tab.Cell(row, "Int8")
		if d := facc - qacc; d > 0.2 || d < -0.2 {
			t.Fatalf("%s: float vs int8 substitute accuracy diverged: %.3f vs %.3f", row, facc, qacc)
		}
	}
}
