package exp

import (
	"fmt"

	"seal/internal/core"
	"seal/internal/engine"
	"seal/internal/gpu"
	"seal/internal/models"
	"seal/internal/parallel"
	"seal/internal/prng"
	"seal/internal/trace"
)

// TimingConfig parameterizes the simulator-based experiments.
type TimingConfig struct {
	// MatmulN is the Figure 1 matrix edge (the paper's kernel is a large
	// square matmul; 1024 reproduces the bandwidth regime).
	MatmulN int
	// CounterKB sweeps the counter cache for Figure 1 (total KB across
	// the GPU; the paper uses 24, 96, 384, 1536).
	CounterSweepKB []int
	// CounterKB is the counter cache size used by Counter/SEAL-C in
	// Figures 5-8.
	CounterKB int
	// Scale shrinks architecture widths for quick runs; 1.0 is the paper
	// geometry.
	Scale float64
	// MicroHW is the input resolution for the per-layer microbenchmarks
	// of Figures 5-6. The paper evaluates VGG CONV layers with
	// 64/128/256/512 channels — ImageNet-geometry feature maps whose
	// footprints exceed on-chip caches. 56 preserves that bandwidth-bound
	// regime at tractable simulation cost.
	MicroHW int
	// Batch is the inference batch size for Figures 5-8.
	Batch int
	// Ratio is SEAL's encryption ratio (paper default 0.5).
	Ratio float64
	// Seed drives the synthetic weight norms used for planning full-size
	// architectures.
	Seed uint64
	// NoBoundary drops the boundary full-encryption rule when planning.
	// The per-layer microbenchmarks (Figures 5-6) set it: the paper
	// applies the SE ratio to every evaluated layer directly; boundary
	// hardening belongs to the end-to-end security configuration.
	NoBoundary bool
	// Trace tunes the execution model.
	Trace trace.Params
	// FastSim opts every simulator this config builds into the
	// statistical fast-sim mode (gpu.Config.Stat, DESIGN.md §17):
	// results become validated estimates instead of bit-exact cycle
	// counts, in exchange for order-of-magnitude sweep speedups.
	// MetricAblation is security-only (it builds no simulator) and
	// ignores the flag. Reference mode still wins: under SEAL_SIM_REF=1
	// every run stays exact.
	FastSim bool
	// Stat overrides the stat-mode knobs when non-nil; nil uses
	// gpu.DefaultStatConfig. Only consulted when FastSim is set.
	Stat *gpu.StatConfig
}

// DefaultTimingConfig matches the paper's setup.
func DefaultTimingConfig() TimingConfig {
	return TimingConfig{
		MatmulN:        1024,
		CounterSweepKB: []int{24, 96, 384, 1536},
		CounterKB:      96,
		Scale:          1.0,
		MicroHW:        56,
		Batch:          1,
		Ratio:          0.5,
		Seed:           1,
		Trace:          trace.DefaultParams(),
	}
}

// QuickTimingConfig shrinks everything for tests and smoke runs. The
// stat-mode knobs are work fractions, so they scale with the workload
// unchanged.
func QuickTimingConfig() TimingConfig {
	cfg := DefaultTimingConfig()
	cfg.MatmulN = 384
	cfg.Scale = 0.25
	qs := QuickStatConfig()
	cfg.Stat = &qs
	return cfg
}

// QuickStatConfig returns the stat-mode knobs used by QuickTimingConfig.
// The windows are work fractions, so the paper-scale defaults carry
// over to the reduced geometry as they are.
func QuickStatConfig() gpu.StatConfig {
	return gpu.DefaultStatConfig()
}

func gtx480(tc TimingConfig, mode gpu.EncMode, fn gpu.EncFn, counterKB int) gpu.Config {
	cfg := gpu.ConfigGTX480()
	if counterKB > 0 {
		per := counterKB * 1024 / cfg.Channels
		// keep the per-partition slice a valid cache geometry
		if per < cfg.Counter.DataLineBytes*cfg.Counter.CacheWays {
			per = cfg.Counter.DataLineBytes * cfg.Counter.CacheWays
		}
		per = per / (cfg.Counter.DataLineBytes * cfg.Counter.CacheWays) * (cfg.Counter.DataLineBytes * cfg.Counter.CacheWays)
		cfg.Counter.CacheSizeBytes = per
	}
	if tc.FastSim {
		if tc.Stat != nil {
			cfg.Stat = *tc.Stat
		} else {
			cfg.Stat = gpu.DefaultStatConfig()
		}
		cfg.Stat.Enable = true
	}
	return cfg.WithMode(mode, fn)
}

// TableI reproduces Table I: the published AES engine design points with
// their reported area, power, latency and throughput, plus the simulated
// throughput of our engine timing model for each design (pushing a long
// line stream through the model and measuring sustained GB/s).
func TableI() *Table {
	t := &Table{
		Title:   "Table I: AES encryption engine implementations (counter mode)",
		Columns: []string{"Area(mm2)", "Power(mW)", "Latency(cyc)", "Paper(GB/s)", "Simulated(GB/s)"},
	}
	coreHz := gpu.ConfigGTX480().CoreClockHz
	specs := append(engine.TableI(), engine.SpecModeled)
	for _, s := range specs {
		e := engine.New(s, coreHz)
		const lines = 10000
		var done float64
		for i := 0; i < lines; i++ {
			done = e.Process(0, 64)
		}
		// sustained throughput excludes the one-time pipeline latency
		simGBs := float64(lines*64) / ((done - s.LatencyCycles) / coreHz) / 1e9
		row := TableRow{
			Label:  s.Name,
			Values: []float64{s.AreaMM2, s.PowerMW, s.LatencyCycles, s.ThroughputGBs, simGBs},
		}
		if s.AreaMM2 == 0 {
			row.Text = append(row.Text, "N/A", "", "", "", "")
		}
		if s.PowerMW == 0 {
			for len(row.Text) < 2 {
				row.Text = append(row.Text, "")
			}
			row.Text[1] = "N/A"
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Figure1 reproduces Figure 1: absolute IPC of the matrix-multiplication
// kernel under no encryption, direct encryption, and counter-mode
// encryption with the counter-cache size sweep (a), plus the counter
// cache hit rate at each size (b).
func Figure1(cfg TimingConfig) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Figure 1: matmul %d³ under straightforward memory encryption", cfg.MatmulN),
		Columns: []string{"IPC", "CtrHitRate"},
	}
	run := func(mode gpu.EncMode, counterKB int, enc bool) (gpu.Result, error) {
		p := cfg.Trace
		a, b, c, _ := trace.MatmulRegions(cfg.MatmulN, p, enc)
		streams, err := trace.Matmul(p, cfg.MatmulN, a, b, c)
		if err != nil {
			return gpu.Result{}, err
		}
		sim, err := gpu.New(gtx480(cfg, mode, nil, counterKB))
		if err != nil {
			return gpu.Result{}, err
		}
		return sim.Run(streams)
	}
	// Every scheme/size point simulates independently; fan them out and
	// assemble rows from the index-addressed slots afterwards so the
	// table order never depends on completion order.
	results := make([]gpu.Result, 2+len(cfg.CounterSweepKB))
	tasks := []func() error{
		func() (err error) { results[0], err = run(gpu.ModeNone, 0, false); return },
		func() (err error) { results[1], err = run(gpu.ModeDirect, 0, true); return },
	}
	for i, kb := range cfg.CounterSweepKB {
		i, kb := i, kb
		tasks = append(tasks, func() (err error) {
			results[2+i], err = run(gpu.ModeCounter, kb, true)
			return
		})
	}
	if err := parallel.DoErr(tasks...); err != nil {
		return nil, err
	}
	t.AddRow("Baseline", results[0].IPC, 0)
	t.AddRow("Direct", results[1].IPC, 0)
	for i, kb := range cfg.CounterSweepKB {
		t.AddRow(fmt.Sprintf("Ctr-%d", kb), results[2+i].IPC, results[2+i].CounterHitRate())
	}
	return t, nil
}

// scheme describes one bar group of Figures 5-8.
type scheme struct {
	name string
	mode gpu.EncMode
	seal bool // protect per the SEAL layout instead of everything
}

func schemes() []scheme {
	return []scheme{
		{"Baseline", gpu.ModeNone, false},
		{"Direct", gpu.ModeDirect, false},
		{"Counter", gpu.ModeCounter, false},
		{"SEAL-D", gpu.ModeDirect, true},
		{"SEAL-C", gpu.ModeCounter, true},
	}
}

// networkRun holds the simulated results of one (arch, scheme) pair.
type networkRun struct {
	perLayer []gpu.Result
	total    gpu.Result
	traces   []trace.LayerTrace
}

// buildNetwork plans, lays out and traces one architecture. Synthetic
// per-layer row norms drive the planning: it needs a ranking, not real
// weights, and the traffic split depends only on the ratio.
func buildNetwork(cfg TimingConfig, arch *models.Arch) (*core.Plan, *core.Layout, []trace.LayerTrace, error) {
	scaled := arch
	if cfg.Scale != 1.0 {
		scaled = arch.Scale(cfg.Scale, 0)
	}
	rng := prng.New(cfg.Seed)
	var specs []models.LayerSpec
	var norms [][]float64
	for _, s := range scaled.Specs {
		if s.Kind != models.KindConv && s.Kind != models.KindFC {
			continue
		}
		specs = append(specs, s)
		n := make([]float64, s.InC)
		for i := range n {
			n[i] = rng.Float64()
		}
		norms = append(norms, n)
	}
	opts := core.DefaultOptions()
	opts.Ratio = cfg.Ratio
	if cfg.NoBoundary {
		opts.FullFirstConv, opts.FullLastConv, opts.FullLastFC = 0, 0, 0
	}
	plan, err := core.NewPlanFromNorms(scaled, specs, norms, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	layout, err := core.NewLayout(plan, cfg.Batch)
	if err != nil {
		return nil, nil, nil, err
	}
	p := cfg.Trace
	p.Batch = cfg.Batch
	traces, err := trace.Network(p, plan, layout)
	if err != nil {
		return nil, nil, nil, err
	}
	return plan, layout, traces, nil
}

// runNetwork simulates one architecture under one scheme.
func runNetwork(cfg TimingConfig, arch *models.Arch, sc scheme) (*networkRun, error) {
	_, layout, traces, err := buildNetwork(cfg, arch)
	if err != nil {
		return nil, err
	}
	var fn gpu.EncFn
	if sc.seal {
		fn = layout.Protected
	}
	sim, err := gpu.New(gtx480(cfg, sc.mode, fn, cfg.CounterKB))
	if err != nil {
		return nil, err
	}
	perLayer, total, err := trace.RunNetwork(sim, traces)
	if err != nil {
		return nil, err
	}
	return &networkRun{perLayer: perLayer, total: total, traces: traces}, nil
}

// runLayersCold runs each named layer as a standalone kernel on a fresh
// simulator (cold caches) and returns its IPC.
func runLayersCold(cfg TimingConfig, arch *models.Arch, sc scheme, layerNames []string) ([]float64, error) {
	_, layout, traces, err := buildNetwork(cfg, arch)
	if err != nil {
		return nil, err
	}
	var fn gpu.EncFn
	if sc.seal {
		fn = layout.Protected
	}
	// Each layer gets a fresh simulator over shared read-only traces, so
	// the layer sweep fans out across the pool.
	vals := make([]float64, len(layerNames))
	tasks := make([]func() error, len(layerNames))
	for li, name := range layerNames {
		li, name := li, name
		tasks[li] = func() error {
			var lt *trace.LayerTrace
			for i := range traces {
				if traces[i].Spec.Name == name {
					lt = &traces[i]
					break
				}
			}
			if lt == nil {
				return fmt.Errorf("exp: layer %s not in trace", name)
			}
			sim, err := gpu.New(gtx480(cfg, sc.mode, fn, cfg.CounterKB))
			if err != nil {
				return err
			}
			res, err := sim.Run(lt.Streams)
			if err != nil {
				return err
			}
			vals[li] = res.IPC
			return nil
		}
	}
	if err := parallel.DoErr(tasks...); err != nil {
		return nil, err
	}
	return vals, nil
}

// Figure5 reproduces Figure 5: per-CONV-layer IPC normalized to
// Baseline, for the four VGG CONV layers with 64/128/256/512 channels.
func Figure5(cfg TimingConfig) (*Table, error) {
	layers := []string{"conv1_2", "conv2_2", "conv3_2", "conv4_2"}
	labels := []string{"CONV-1", "CONV-2", "CONV-3", "CONV-4"}
	return perLayerFigure(cfg, "Figure 5: normalized IPC of VGG CONV layers", layers, labels)
}

// Figure6 reproduces Figure 6: per-POOL-layer IPC normalized to
// Baseline, for VGG's five pooling layers.
func Figure6(cfg TimingConfig) (*Table, error) {
	layers := []string{"pool1", "pool2", "pool3", "pool4", "pool5"}
	labels := []string{"POOL-1", "POOL-2", "POOL-3", "POOL-4", "POOL-5"}
	return perLayerFigure(cfg, "Figure 6: normalized IPC of VGG POOL layers", layers, labels)
}

func perLayerFigure(cfg TimingConfig, title string, layerNames, labels []string) (*Table, error) {
	// The microbenchmarks use ImageNet-style feature-map geometry (the
	// 64/128/256/512-channel VGG layers the paper names) via the MicroHW
	// input resolution; Scale is applied to channels separately.
	arch := models.VGG16Arch()
	hw := cfg.MicroHW
	if hw <= 0 {
		hw = arch.InH
	}
	microCfg := cfg
	microCfg.Scale = 1.0 // scaling handled here so runNetwork keeps geometry
	microCfg.NoBoundary = true
	scaled := arch.Scale(cfg.Scale, hw)
	t := &Table{Title: title, Columns: labels}
	// Each layer runs as a standalone kernel on cold caches — the paper
	// evaluates "four typical CONV layers" and "five different POOL
	// layers" individually, not mid-inference. All (scheme, layer) cells
	// are independent simulations: fan out the schemes here (each of
	// which fans out its layers) and normalize against the Baseline row
	// after the barrier, in scheme order.
	scs := schemes()
	allVals := make([][]float64, len(scs))
	tasks := make([]func() error, len(scs))
	for si, sc := range scs {
		si, sc := si, sc
		tasks[si] = func() (err error) {
			allVals[si], err = runLayersCold(microCfg, scaled, sc, layerNames)
			return
		}
	}
	if err := parallel.DoErr(tasks...); err != nil {
		return nil, err
	}
	var baseIPC []float64
	for si, sc := range scs {
		vals := allVals[si]
		if sc.name == "Baseline" {
			baseIPC = append([]float64(nil), vals...)
			for i := range vals {
				vals[i] = 1
			}
		} else {
			for i := range vals {
				if baseIPC[i] > 0 {
					vals[i] /= baseIPC[i]
				}
			}
		}
		t.Rows = append(t.Rows, TableRow{Label: sc.name, Values: vals})
	}
	return t, nil
}

// NetworkResults holds whole-inference metrics for every (architecture,
// scheme) pair — the shared dataset behind Figures 7 and 8.
type NetworkResults struct {
	Archs   []string
	Schemes []string
	IPC     [][]float64 // [scheme][arch]
	Cycles  [][]float64 // [scheme][arch]
	// ExactFrac is the exactly-simulated cycle fraction per cell: 1.0
	// everywhere unless the run used the statistical fast-sim mode.
	ExactFrac [][]float64 // [scheme][arch]
}

// MeanExactFrac averages ExactFrac over the whole (scheme, arch) grid.
func (r *NetworkResults) MeanExactFrac() float64 {
	var sum float64
	var n int
	for _, row := range r.ExactFrac {
		for _, v := range row {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// RunNetworks simulates full inference of all three networks under all
// five schemes once.
func RunNetworks(cfg TimingConfig) (*NetworkResults, error) {
	archs := models.Archs()
	scs := schemes()
	res := &NetworkResults{}
	for _, a := range archs {
		res.Archs = append(res.Archs, a.Name)
	}
	// The full (scheme × arch) grid is embarrassingly parallel: every
	// cell builds its own plan, layout, traces and simulator. Flatten it
	// into one task list and fill the result grid by index.
	for _, sc := range scs {
		res.Schemes = append(res.Schemes, sc.name)
		res.IPC = append(res.IPC, make([]float64, len(archs)))
		res.Cycles = append(res.Cycles, make([]float64, len(archs)))
		res.ExactFrac = append(res.ExactFrac, make([]float64, len(archs)))
	}
	var tasks []func() error
	for si, sc := range scs {
		for ai, arch := range archs {
			si, sc, ai, arch := si, sc, ai, arch
			tasks = append(tasks, func() error {
				run, err := runNetwork(cfg, arch, sc)
				if err != nil {
					return err
				}
				res.IPC[si][ai] = run.total.IPC
				res.Cycles[si][ai] = run.total.Cycles
				res.ExactFrac[si][ai] = run.total.ExactFrac
				return nil
			})
		}
	}
	if err := parallel.DoErr(tasks...); err != nil {
		return nil, err
	}
	return res, nil
}

func (r *NetworkResults) normalized(title string, data [][]float64) *Table {
	t := &Table{Title: title, Columns: r.Archs}
	for si, name := range r.Schemes {
		vals := make([]float64, len(r.Archs))
		for ai := range r.Archs {
			if data[0][ai] > 0 {
				vals[ai] = data[si][ai] / data[0][ai]
			}
		}
		t.Rows = append(t.Rows, TableRow{Label: name, Values: vals})
	}
	return t
}

// Figure7 formats whole-inference IPC normalized to Baseline.
func (r *NetworkResults) Figure7() *Table {
	return r.normalized("Figure 7: overall normalized IPC", r.IPC)
}

// Figure8 formats inference latency (total cycles) normalized to
// Baseline.
func (r *NetworkResults) Figure8() *Table {
	return r.normalized("Figure 8: normalized inference latency", r.Cycles)
}

// Figure7 runs the networks and formats Figure 7. Prefer RunNetworks +
// the method form when you need both figures: this convenience re-runs
// the simulations.
func Figure7(cfg TimingConfig) (*Table, error) {
	r, err := RunNetworks(cfg)
	if err != nil {
		return nil, err
	}
	return r.Figure7(), nil
}

// Figure8 runs the networks and formats Figure 8 (see Figure7 about
// re-running).
func Figure8(cfg TimingConfig) (*Table, error) {
	r, err := RunNetworks(cfg)
	if err != nil {
		return nil, err
	}
	return r.Figure8(), nil
}

// RatioSweep is the ablation behind the paper's choice of a 50 % ratio:
// whole-VGG normalized IPC (SEAL-D and SEAL-C) as the encryption ratio
// varies.
func RatioSweep(cfg TimingConfig, ratios []float64) (*Table, error) {
	t := &Table{Title: "Ablation: normalized IPC vs encryption ratio (VGG-16)", Columns: []string{"SEAL-D", "SEAL-C"}}
	arch := models.VGG16Arch()
	// Baseline plus every (ratio, scheme) point are independent runs.
	var base float64
	dIPC := make([]float64, len(ratios))
	cIPC := make([]float64, len(ratios))
	tasks := []func() error{func() error {
		baseRun, err := runNetwork(cfg, arch, scheme{"Baseline", gpu.ModeNone, false})
		if err != nil {
			return err
		}
		base = baseRun.total.IPC
		return nil
	}}
	for i, r := range ratios {
		i, r := i, r
		c := cfg
		c.Ratio = r
		tasks = append(tasks,
			func() error {
				d, err := runNetwork(c, arch, scheme{"SEAL-D", gpu.ModeDirect, true})
				if err != nil {
					return err
				}
				dIPC[i] = d.total.IPC
				return nil
			},
			func() error {
				cm, err := runNetwork(c, arch, scheme{"SEAL-C", gpu.ModeCounter, true})
				if err != nil {
					return err
				}
				cIPC[i] = cm.total.IPC
				return nil
			})
	}
	if err := parallel.DoErr(tasks...); err != nil {
		return nil, err
	}
	for i, r := range ratios {
		t.AddRow(fmt.Sprintf("ratio=%.0f%%", r*100), dIPC[i]/base, cIPC[i]/base)
	}
	return t, nil
}

// EngineCountAblation varies how many engines each memory controller
// gets (scaling aggregate engine bandwidth) and reports whole-VGG
// normalized IPC under full direct encryption — quantifying §II-B's
// claim that closing the gap by replicating engines is what SEAL avoids
// paying for.
func EngineCountAblation(cfg TimingConfig, counts []int) (*Table, error) {
	t := &Table{Title: "Ablation: engines per memory controller (full direct encryption, VGG-16)", Columns: []string{"NormIPC", "EngineGB/s"}}
	arch := models.VGG16Arch()
	var base float64
	ipcs := make([]float64, len(counts))
	specs := make([]engine.Spec, len(counts))
	tasks := []func() error{func() error {
		baseRun, err := runNetwork(cfg, arch, scheme{"Baseline", gpu.ModeNone, false})
		if err != nil {
			return err
		}
		base = baseRun.total.IPC
		return nil
	}}
	for i, n := range counts {
		i, n := i, n
		// n engines per controller ≈ one engine with n× throughput
		specs[i] = engine.SpecModeled
		specs[i].ThroughputGBs *= float64(n)
		tasks = append(tasks, func() error {
			scaledRun, err := runNetworkWithEngine(cfg, arch, scheme{"Direct", gpu.ModeDirect, false}, specs[i])
			if err != nil {
				return err
			}
			ipcs[i] = scaledRun.total.IPC
			return nil
		})
	}
	if err := parallel.DoErr(tasks...); err != nil {
		return nil, err
	}
	for i, n := range counts {
		t.AddRow(fmt.Sprintf("%d engine(s)", n), ipcs[i]/base, specs[i].ThroughputGBs*float64(gpu.ConfigGTX480().Channels))
	}
	return t, nil
}

func runNetworkWithEngine(cfg TimingConfig, arch *models.Arch, sc scheme, spec engine.Spec) (*networkRun, error) {
	_, layout, traces, err := buildNetwork(cfg, arch)
	if err != nil {
		return nil, err
	}
	var fn gpu.EncFn
	if sc.seal {
		fn = layout.Protected
	}
	g := gtx480(cfg, sc.mode, fn, cfg.CounterKB)
	g.EngineSpec = spec
	sim, err := gpu.New(g)
	if err != nil {
		return nil, err
	}
	perLayer, total, err := trace.RunNetwork(sim, traces)
	if err != nil {
		return nil, err
	}
	return &networkRun{perLayer: perLayer, total: total, traces: traces}, nil
}
