package exp

import (
	"fmt"
	"io"

	"seal/internal/attack"
	"seal/internal/core"
	"seal/internal/dataset"
	"seal/internal/models"
	"seal/internal/prng"
	"seal/internal/tensor"
)

// QuantizedSecurity measures how int8 weight quantization interacts
// with the SEAL security figure. Deploying a quantized image changes
// two things at once: the victim the adversary snoops is the
// quantize-dequantize roundtrip of the float model (so its accuracy —
// the IP being protected — may drop), and the ℓ1 importance ranking
// that decides which rows get encrypted is computed over rounded
// weights (so the plan itself may shift). For the first architecture in
// cfg, the experiment reports, per encryption ratio:
//
//   - Float: substitute accuracy against the float victim (the PR 2
//     baseline figure),
//   - Int8: substitute accuracy against the quantized victim, whose
//     leaked plaintext rows are the dequantized int8 values an
//     attacker reads off the bus of a quantized image,
//   - PlanOverlap: the fraction of kernel rows on which the float plan
//     and the quantized-victim plan agree (encrypted vs plaintext).
//
// If per-output-channel symmetric quantization preserves the ℓ1
// ranking — the premise that lets one importance plan serve both
// deployments — the overlap stays near 1 and the two accuracy columns
// track each other.
func QuantizedSecurity(cfg SecurityConfig) (*Table, error) {
	return quantizedSecurity(cfg, cfg.Progress)
}

func quantizedSecurity(cfg SecurityConfig, progress io.Writer) (*Table, error) {
	logf := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", args...)
		}
	}
	archName := cfg.Arches[0]
	arch, err := models.ArchByName(archName)
	if err != nil {
		return nil, err
	}
	scaled := arch.Scale(cfg.Scale, 0)
	rng := prng.New(cfg.Seed)
	dataCfg := cfg.Data
	if dataCfg.Classes == 0 {
		dataCfg = harderData()
	}
	gen := dataset.NewGenerator(dataCfg, cfg.Seed)
	victimData := gen.Sample(cfg.Victim)
	testData := gen.Sample(cfg.Test)
	advData := gen.Sample(cfg.Seeds * 4) // fixed budget, as in MetricAblation

	logf("[%s] training victim (%d samples, %d epochs)", archName, cfg.Victim, cfg.Victims.Epochs)
	victim, err := attack.TrainVictim(scaled, victimData, cfg.Victims, rng)
	if err != nil {
		return nil, err
	}
	qvictim, err := victim.Clone(rng.Fork())
	if err != nil {
		return nil, err
	}
	quantizeModelWeights(qvictim)

	t := &Table{
		Title:   fmt.Sprintf("Quantized security: float vs int8 victim (%s)", arch.Name),
		Columns: []string{"Float", "Int8", "PlanOverlap"},
	}
	t.AddRow("Victim", attack.Accuracy(victim, testData), attack.Accuracy(qvictim, testData), 1)
	logf("[%s] victim accuracy: float %.3f, int8 %.3f", archName,
		attack.Accuracy(victim, testData), attack.Accuracy(qvictim, testData))

	for _, ratio := range cfg.Ratios {
		opts := core.DefaultOptions()
		opts.Ratio = ratio
		opts.Seed = cfg.Seed
		fplan, err := core.NewPlan(victim, opts)
		if err != nil {
			return nil, err
		}
		qplan, err := core.NewPlan(qvictim, opts)
		if err != nil {
			return nil, err
		}
		fsub, err := attack.SEALSubstitute(victim, fplan, advData, cfg.Subs, rng.Fork())
		if err != nil {
			return nil, err
		}
		qsub, err := attack.SEALSubstitute(qvictim, qplan, advData, cfg.Subs, rng.Fork())
		if err != nil {
			return nil, err
		}
		row := fmt.Sprintf("SEAL-%.0f%%", ratio*100)
		facc := attack.Accuracy(fsub, testData)
		qacc := attack.Accuracy(qsub, testData)
		overlap := planOverlap(fplan, qplan)
		t.AddRow(row, facc, qacc, overlap)
		logf("[%s] %s: substitute acc float %.3f, int8 %.3f, plan overlap %.3f",
			archName, row, facc, qacc, overlap)
	}
	return t, nil
}

// quantizeModelWeights replaces every kernel weight in m with its
// per-output-channel int8 quantize-dequantize roundtrip — the values an
// adversary recovers from the plaintext rows (and scales header) of a
// quantized memory image. Biases and BN state stay float, as they do in
// the int8 layout.
func quantizeModelWeights(m *models.Model) {
	for _, w := range m.WeightLayers {
		spec := w.Spec
		var data []float32
		cols := spec.InC
		if spec.Kind == models.KindConv {
			cols *= spec.K * spec.K
			data = w.Conv.Weight.W.Data
		} else {
			data = w.FC.Weight.W.Data
		}
		km := &tensor.Tensor{Shape: []int{spec.OutC, cols}, Data: data}
		q := tensor.NewInt8Mat(spec.OutC, cols)
		scales := make([]float32, spec.OutC)
		tensor.QuantizeRowsInto(q, scales, km)
		for o := 0; o < spec.OutC; o++ {
			s := scales[o]
			row := data[o*cols : (o+1)*cols]
			qrow := q.Data[o*cols : (o+1)*cols]
			for j := range row {
				row[j] = float32(qrow[j]) * s
			}
		}
	}
}

// planOverlap returns the fraction of kernel rows whose
// encrypted/plaintext decision agrees between the two plans.
func planOverlap(a, b *core.Plan) float64 {
	var agree, total int
	for li, lp := range a.Layers {
		for c, enc := range lp.EncRows {
			total++
			if b.Layers[li].EncRows[c] == enc {
				agree++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(agree) / float64(total)
}
