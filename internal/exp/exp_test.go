package exp

import (
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"A", "B"}}
	tab.AddRow("row1", 1.5, 1000)
	tab.AddRow("row2", 0.123, 12.34)
	tab.Notes = append(tab.Notes, "hello")
	s := tab.String()
	for _, want := range []string{"T", "A", "B", "row1", "1.500", "1000", "12.3", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, s)
		}
	}
	if v, ok := tab.Cell("row2", "A"); !ok || v != 0.123 {
		t.Fatalf("Cell = %v %v", v, ok)
	}
	if _, ok := tab.Cell("nope", "A"); ok {
		t.Fatal("missing row found")
	}
	if _, ok := tab.Cell("row1", "C"); ok {
		t.Fatal("missing column found")
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Title: "T", Columns: []string{"A", "B"}}
	tab.AddRow("plain", 1.5, 2)
	tab.Rows = append(tab.Rows, TableRow{Label: `weird,"label`, Values: []float64{3}, Text: []string{"", "N/A"}})
	var b strings.Builder
	if err := tab.CSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "scheme,A,B\nplain,1.5,2\n\"weird,\"\"label\",3,N/A\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestTableIContents(t *testing.T) {
	tab := TableI()
	if len(tab.Rows) != 6 { // 5 published + modeled
		t.Fatalf("Table I rows = %d, want 6", len(tab.Rows))
	}
	// simulated throughput must match the spec column for every engine
	for _, r := range tab.Rows {
		paper, sim := r.Values[3], r.Values[4]
		if diff := sim/paper - 1; diff > 0.01 || diff < -0.01 {
			t.Fatalf("%s: simulated %v GB/s vs paper %v", r.Label, sim, paper)
		}
	}
	// N/A cells preserved
	if tab.Rows[0].Text[0] != "N/A" {
		t.Fatalf("Morioka area should be N/A, got %+v", tab.Rows[0].Text)
	}
}

func TestFigure1Shapes(t *testing.T) {
	cfg := QuickTimingConfig()
	cfg.CounterSweepKB = []int{24, 384}
	tab, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := tab.Cell("Baseline", "IPC")
	direct, _ := tab.Cell("Direct", "IPC")
	if direct >= base*0.85 {
		t.Fatalf("direct encryption too cheap: %v vs baseline %v", direct, base)
	}
	h24, _ := tab.Cell("Ctr-24", "CtrHitRate")
	h384, _ := tab.Cell("Ctr-384", "CtrHitRate")
	if h384 <= h24 {
		t.Fatalf("counter hit rate not increasing with size: %v vs %v", h24, h384)
	}
	c24, _ := tab.Cell("Ctr-24", "IPC")
	if c24 <= 0 || c24 >= base {
		t.Fatalf("counter-mode IPC %v out of range (baseline %v)", c24, base)
	}
}

// assertSchemeOrdering checks Baseline ≥ SEAL ≥ Full-encryption per
// column, with tolerance for simulator noise.
func assertSchemeOrdering(t *testing.T, tab *Table, sealRow, fullRow string) {
	t.Helper()
	for j, col := range tab.Columns {
		seal := tab.Row(sealRow).Values[j]
		full := tab.Row(fullRow).Values[j]
		base := tab.Row("Baseline").Values[j]
		if base != 1.0 {
			t.Fatalf("%s: baseline not normalized to 1 (%v)", col, base)
		}
		if seal < full*0.98 {
			t.Fatalf("%s: %s (%v) below %s (%v)", col, sealRow, seal, fullRow, full)
		}
		if seal > 1.1 || full > 1.05 {
			t.Fatalf("%s: encrypted schemes above baseline: seal %v full %v", col, seal, full)
		}
	}
}

func TestFigure5Ordering(t *testing.T) {
	cfg := QuickTimingConfig()
	tab, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 4 || len(tab.Rows) != 5 {
		t.Fatalf("figure 5 shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
	assertSchemeOrdering(t, tab, "SEAL-D", "Direct")
	assertSchemeOrdering(t, tab, "SEAL-C", "Counter")
}

func TestFigure6Ordering(t *testing.T) {
	cfg := QuickTimingConfig()
	tab, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 5 {
		t.Fatalf("figure 6 columns %d", len(tab.Columns))
	}
	assertSchemeOrdering(t, tab, "SEAL-D", "Direct")
	assertSchemeOrdering(t, tab, "SEAL-C", "Counter")
	// POOL layers are more bandwidth-bound than CONV: full encryption
	// must hurt pools at least as hard as the average CONV layer.
	f5, err := Figure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	poolAvg, convAvg := rowAvg(tab, "Direct"), rowAvg(f5, "Direct")
	if poolAvg > convAvg+0.05 {
		t.Fatalf("POOL direct avg %v not below CONV avg %v", poolAvg, convAvg)
	}
}

func rowAvg(t *Table, label string) float64 {
	r := t.Row(label)
	var s float64
	for _, v := range r.Values {
		s += v
	}
	return s / float64(len(r.Values))
}

func TestFigures7And8Consistency(t *testing.T) {
	cfg := QuickTimingConfig()
	nr, err := RunNetworks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f7 := nr.Figure7()
	f8 := nr.Figure8()
	assertSchemeOrdering(t, f7, "SEAL-D", "Direct")
	assertSchemeOrdering(t, f7, "SEAL-C", "Counter")
	for j, col := range f7.Columns {
		// IPC and latency are reciprocal: normalized values must multiply
		// to ≈1 (same instruction count, same workload)
		for _, scheme := range []string{"Direct", "SEAL-D"} {
			ipc := f7.Row(scheme).Values[j]
			lat := f8.Row(scheme).Values[j]
			if p := ipc * lat; p < 0.97 || p > 1.03 {
				t.Fatalf("%s/%s: IPC×latency = %v, want ≈1", col, scheme, p)
			}
		}
		// encryption must cost something even at quick scale
		if f8.Row("Direct").Values[j] <= 1.0 {
			t.Fatalf("%s: direct encryption did not increase latency", col)
		}
	}
}

func TestRatioSweepMonotone(t *testing.T) {
	cfg := QuickTimingConfig()
	tab, err := RatioSweep(cfg, []float64{0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	low, _ := tab.Cell("ratio=20%", "SEAL-D")
	high, _ := tab.Cell("ratio=80%", "SEAL-D")
	if low < high {
		t.Fatalf("more encryption should not be faster: 20%%=%v 80%%=%v", low, high)
	}
}

func TestEngineCountAblation(t *testing.T) {
	cfg := QuickTimingConfig()
	tab, err := EngineCountAblation(cfg, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	one, _ := tab.Cell("1 engine(s)", "NormIPC")
	four, _ := tab.Cell("4 engine(s)", "NormIPC")
	if four <= one {
		t.Fatalf("more engines should help full encryption: 1→%v 4→%v", one, four)
	}
}

func TestFigure1Deterministic(t *testing.T) {
	cfg := QuickTimingConfig()
	cfg.CounterSweepKB = []int{24}
	a, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("same config produced different results:\n%s\nvs\n%s", a, b)
	}
}

func TestSecurityQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	cfg := QuickSecurityConfig()
	res, err := RunSecurity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 1 {
		t.Fatalf("models = %d", len(res.Models))
	}
	m := res.Models[0]
	if m.WhiteAcc != m.VictimAcc {
		t.Fatalf("white-box acc %v != victim %v", m.WhiteAcc, m.VictimAcc)
	}
	if m.VictimAcc < 0.4 {
		t.Fatalf("victim accuracy %v too low for a meaningful experiment", m.VictimAcc)
	}
	if m.BlackAcc >= m.WhiteAcc {
		t.Fatalf("black-box acc %v not below white-box %v", m.BlackAcc, m.WhiteAcc)
	}
	// low ratio leaks more → substitute at 0.1 should be at least as good
	// as at 0.9 (tolerance for training noise)
	if m.SEALAcc[0.1] < m.SEALAcc[0.9]-0.1 {
		t.Fatalf("SEAL@10%% acc %v far below SEAL@90%% %v", m.SEALAcc[0.1], m.SEALAcc[0.9])
	}
	f3 := res.Figure3()
	f4 := res.Figure4()
	if f3.Row("White-box") == nil || f4.Row("Black-box") == nil {
		t.Fatal("figures missing series")
	}
	if len(f3.Rows) != 2+len(cfg.Ratios)+1 {
		t.Fatalf("figure 3 rows = %d", len(f3.Rows))
	}
}
