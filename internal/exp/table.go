// Package exp contains one runner per table and figure of the paper's
// evaluation, producing the same rows/series the paper reports. The
// timing experiments (Table I, Figures 1, 5, 6, 7, 8) drive the GPU
// simulator; the security experiments (Figures 3, 4) drive the attack
// toolkit. cmd/sealsim and cmd/sealsec expose them on the command line,
// and bench_test.go regenerates each one under `go test -bench`.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table is a generic experiment result: ordered columns, ordered rows.
type Table struct {
	Title   string
	Columns []string
	Rows    []TableRow
	Notes   []string
}

// TableRow is one labeled result row.
type TableRow struct {
	Label  string
	Values []float64
	// Text overrides numeric formatting per cell when non-nil (used for
	// N/A cells in Table I).
	Text []string
}

// AddRow appends a numeric row.
func (t *Table) AddRow(label string, values ...float64) {
	t.Rows = append(t.Rows, TableRow{Label: label, Values: values})
}

// Format renders the table as aligned text.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("scheme")
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(t.Columns))
		for j := range t.Columns {
			var s string
			if r.Text != nil && j < len(r.Text) && r.Text[j] != "" {
				s = r.Text[j]
			} else if j < len(r.Values) {
				s = formatVal(r.Values[j])
			}
			cells[i][j] = s
		}
	}
	for j, c := range t.Columns {
		widths[j+1] = len(c)
		for i := range t.Rows {
			if len(cells[i][j]) > widths[j+1] {
				widths[j+1] = len(cells[i][j])
			}
		}
	}
	fmt.Fprintf(w, "%-*s", widths[0]+2, "")
	for j, c := range t.Columns {
		fmt.Fprintf(w, "%*s  ", widths[j+1], c)
	}
	fmt.Fprintln(w)
	for i, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", widths[0]+2, r.Label)
		for j := range t.Columns {
			fmt.Fprintf(w, "%*s  ", widths[j+1], cells[i][j])
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Format(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (header row, then one
// row per entry) for downstream plotting. Text overrides (N/A cells)
// are emitted verbatim.
func (t *Table) CSV(w io.Writer) error {
	row := make([]string, 0, len(t.Columns)+1)
	row = append(row, "scheme")
	row = append(row, t.Columns...)
	if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		row = row[:0]
		row = append(row, csvEscape(r.Label))
		for j := range t.Columns {
			switch {
			case r.Text != nil && j < len(r.Text) && r.Text[j] != "":
				row = append(row, csvEscape(r.Text[j]))
			case j < len(r.Values):
				row = append(row, fmt.Sprintf("%g", r.Values[j]))
			default:
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Bars renders the table as horizontal ASCII bar groups, one group per
// column — the closest a terminal gets to the paper's figures. Values
// are scaled to the table's maximum.
func (t *Table) Bars(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	maxV := 0.0
	for _, r := range t.Rows {
		for _, v := range r.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV <= 0 {
		fmt.Fprintln(w, "  (no positive values)")
		return
	}
	labelW := 0
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	const width = 40
	for j, col := range t.Columns {
		fmt.Fprintf(w, "  %s\n", col)
		for _, r := range t.Rows {
			if j >= len(r.Values) {
				continue
			}
			v := r.Values[j]
			n := int(v/maxV*width + 0.5)
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(w, "    %-*s %s %s\n", labelW, r.Label, strings.Repeat("█", n), formatVal(v))
		}
	}
}

// Row returns the row with the given label, or nil.
func (t *Table) Row(label string) *TableRow {
	for i := range t.Rows {
		if t.Rows[i].Label == label {
			return &t.Rows[i]
		}
	}
	return nil
}

// Cell returns the value at (rowLabel, column), with ok=false when
// either is missing.
func (t *Table) Cell(rowLabel, column string) (float64, bool) {
	r := t.Row(rowLabel)
	if r == nil {
		return 0, false
	}
	for j, c := range t.Columns {
		if c == column && j < len(r.Values) {
			return r.Values[j], true
		}
	}
	return 0, false
}

func formatVal(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}
