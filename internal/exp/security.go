package exp

import (
	"bytes"
	"fmt"
	"io"

	"seal/internal/attack"
	"seal/internal/core"
	"seal/internal/dataset"
	"seal/internal/models"
	"seal/internal/parallel"
	"seal/internal/prng"
)

// SecurityConfig parameterizes the Figures 3-4 experiments. The paper
// trains full CIFAR-10 models; pure-Go single-thread training makes that
// intractable, so widths, sample counts and epochs are scaled down (see
// DESIGN.md). The orderings Figures 3-4 establish — white-box ≫ SEAL ≥
// black-box, with the crossover as the ratio grows — are preserved.
type SecurityConfig struct {
	Arches  []string // "vgg16", "resnet18", "resnet34"
	Scale   float64  // architecture width multiplier
	Victim  int      // victim training samples (paper: 45,000)
	Test    int      // held-out test samples for the accuracy metric
	Seeds   int      // adversary seed samples (paper: 5,000)
	Rounds  int      // Jacobian augmentation rounds (each doubles the set)
	Lambda  float32  // augmentation step
	Ratios  []float64
	Victims attack.TrainConfig
	Subs    attack.TrainConfig
	IFGSM   attack.IFGSMConfig
	Probe   int // adversarial probe samples (paper: 1,000)
	Seed    uint64
	// Data controls the synthetic task. Its difficulty (noise, shift)
	// calibrates the white-box/black-box accuracy gap: the adversary's
	// augmented set must be too small to match the victim, as CIFAR-10's
	// 45,000-vs-5,000 split is in the paper.
	Data dataset.Config
	// Progress, when non-nil, receives status lines during the run.
	Progress io.Writer
}

// DefaultSecurityConfig returns the scaled-down default recorded in
// EXPERIMENTS.md.
func DefaultSecurityConfig() SecurityConfig {
	victims := attack.DefaultTrainConfig()
	victims.Epochs = 16
	victims.LRDecayAt = []int{10}
	subs := attack.DefaultTrainConfig()
	subs.Epochs = 8
	subs.LRDecayAt = []int{6}
	return SecurityConfig{
		Arches:  []string{"vgg16", "resnet18", "resnet34"},
		Scale:   0.0625,
		Victim:  900,
		Test:    200,
		Seeds:   200,
		Rounds:  2,
		Lambda:  0.3,
		Ratios:  []float64{0.9, 0.7, 0.5, 0.4, 0.2, 0.1},
		Victims: victims,
		Subs:    subs,
		// The synthetic prototypes sit far apart, so the I-FGSM budget is
		// larger than for natural images; eps=1.2 puts the white-box
		// attack near the paper's ~90% and the black-box near its ~20%.
		IFGSM: attack.IFGSMConfig{Eps: 1.2, Alpha: 0.24, Iters: 10},
		Probe: 100,
		Seed:  7,
		Data:  harderData(),
	}
}

// harderData raises noise and jitter over the dataset defaults so that
// generalization stays data-hungry: the victim's training budget reaches
// high accuracy while the adversary's smaller augmented set cannot.
func harderData() dataset.Config {
	cfg := dataset.DefaultConfig()
	cfg.Noise = 0.45
	cfg.Shift = 3
	cfg.Modes = 6
	return cfg
}

// QuickSecurityConfig shrinks the run for tests.
func QuickSecurityConfig() SecurityConfig {
	cfg := DefaultSecurityConfig()
	cfg.Arches = []string{"resnet18"}
	cfg.Victim = 300
	cfg.Test = 100
	cfg.Seeds = 40
	cfg.Rounds = 1
	cfg.Ratios = []float64{0.9, 0.5, 0.1}
	cfg.Victims.Epochs = 4
	cfg.Subs.Epochs = 4
	cfg.Probe = 40
	// the quick run keeps the easier task so a 300-sample victim is
	// meaningful
	cfg.Data = dataset.DefaultConfig()
	return cfg
}

// ModelSecurity holds one architecture's Figure 3 + Figure 4 series.
type ModelSecurity struct {
	Arch       string
	VictimAcc  float64
	WhiteAcc   float64
	BlackAcc   float64
	SEALAcc    map[float64]float64 // ratio → substitute accuracy
	WhiteTrans float64
	BlackTrans float64
	SEALTrans  map[float64]float64 // ratio → transferability
	AdvSamples int                 // augmented adversary set size
	LeakedFrac map[float64]float64 // ratio → leaked weight fraction
}

// SecurityResults carries the full Figures 3-4 dataset.
type SecurityResults struct {
	Cfg    SecurityConfig
	Models []ModelSecurity
}

// RunSecurity executes the substitute-model study of §III-B for every
// configured architecture, producing both figures' series in one pass
// (the same substitute models feed both measurements, as in the paper).
//
// Architectures are independent end to end — each gets its own PRNG
// stream (seeded by architecture index) and data generator — so the
// per-model loop fans out across the worker pool. Results land in
// index-addressed slots and, when running parallel, progress lines are
// buffered per model and flushed in architecture order after the
// barrier, so output and results are identical to a serial run.
func RunSecurity(cfg SecurityConfig) (*SecurityResults, error) {
	res := &SecurityResults{Cfg: cfg}
	res.Models = make([]ModelSecurity, len(cfg.Arches))
	// With one worker (or one model) stream progress directly; otherwise
	// concurrent models would interleave lines, so buffer per model.
	stream := parallel.Workers() == 1 || len(cfg.Arches) == 1
	bufs := make([]*bytes.Buffer, len(cfg.Arches))
	tasks := make([]func() error, len(cfg.Arches))
	for ai, name := range cfg.Arches {
		ai, name := ai, name
		var sink io.Writer
		if stream {
			sink = cfg.Progress
		} else if cfg.Progress != nil {
			bufs[ai] = &bytes.Buffer{}
			sink = bufs[ai]
		}
		tasks[ai] = func() (err error) {
			res.Models[ai], err = securityModel(cfg, ai, name, sink)
			return
		}
	}
	err := parallel.DoErr(tasks...)
	if !stream && cfg.Progress != nil {
		for _, b := range bufs {
			if b != nil {
				cfg.Progress.Write(b.Bytes())
			}
		}
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// securityModel runs the full white-box/black-box/SEAL study for one
// architecture. ai indexes the architecture within the run and seeds its
// private PRNG and data-generator streams.
func securityModel(cfg SecurityConfig, ai int, name string, progress io.Writer) (ModelSecurity, error) {
	logf := func(format string, args ...any) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", args...)
		}
	}
	arch, err := models.ArchByName(name)
	if err != nil {
		return ModelSecurity{}, err
	}
	scaled := arch.Scale(cfg.Scale, 0)
	rng := prng.New(cfg.Seed + uint64(ai)*1000)
	dataCfg := cfg.Data
	if dataCfg.Classes == 0 {
		dataCfg = harderData()
	}
	gen := dataset.NewGenerator(dataCfg, cfg.Seed+uint64(ai))

	victimData := gen.Sample(cfg.Victim)
	testData := gen.Sample(cfg.Test)
	seedData := gen.Sample(cfg.Seeds)
	probeData := gen.Sample(cfg.Probe)

	logf("[%s] training victim (%d samples, %d epochs)", name, cfg.Victim, cfg.Victims.Epochs)
	victim, err := attack.TrainVictim(scaled, victimData, cfg.Victims, rng)
	if err != nil {
		return ModelSecurity{}, err
	}
	ms := ModelSecurity{
		Arch:       arch.Name,
		VictimAcc:  attack.Accuracy(victim, testData),
		SEALAcc:    map[float64]float64{},
		SEALTrans:  map[float64]float64{},
		LeakedFrac: map[float64]float64{},
	}
	logf("[%s] victim test accuracy %.3f", name, ms.VictimAcc)

	probeCfg := cfg.Subs
	probeCfg.Epochs = 2
	advData, err := attack.JacobianAugment(victim, seedData, cfg.Rounds, cfg.Lambda, probeCfg, rng.Fork())
	if err != nil {
		return ModelSecurity{}, err
	}
	ms.AdvSamples = advData.Len()
	logf("[%s] adversary set augmented to %d samples", name, ms.AdvSamples)

	white, err := attack.WhiteBox(victim, rng.Fork())
	if err != nil {
		return ModelSecurity{}, err
	}
	ms.WhiteAcc = attack.Accuracy(white, testData)
	ms.WhiteTrans = attack.Transferability(victim, white, probeData, cfg.IFGSM)

	logf("[%s] training black-box substitute", name)
	black, err := attack.BlackBox(victim, advData, cfg.Subs, rng.Fork())
	if err != nil {
		return ModelSecurity{}, err
	}
	ms.BlackAcc = attack.Accuracy(black, testData)
	ms.BlackTrans = attack.Transferability(victim, black, probeData, cfg.IFGSM)
	logf("[%s] white acc %.3f trans %.3f | black acc %.3f trans %.3f",
		name, ms.WhiteAcc, ms.WhiteTrans, ms.BlackAcc, ms.BlackTrans)

	for _, ratio := range cfg.Ratios {
		opts := core.DefaultOptions()
		opts.Ratio = ratio
		plan, err := core.NewPlan(victim, opts)
		if err != nil {
			return ModelSecurity{}, err
		}
		sub, err := attack.SEALSubstitute(victim, plan, advData, cfg.Subs, rng.Fork())
		if err != nil {
			return ModelSecurity{}, err
		}
		ms.SEALAcc[ratio] = attack.Accuracy(sub, testData)
		ms.SEALTrans[ratio] = attack.Transferability(victim, sub, probeData, cfg.IFGSM)
		ms.LeakedFrac[ratio] = attack.LeakedFraction(plan)
		logf("[%s] SEAL@%.0f%%: acc %.3f trans %.3f (leaked %.2f)",
			name, ratio*100, ms.SEALAcc[ratio], ms.SEALTrans[ratio], ms.LeakedFrac[ratio])
	}
	return ms, nil
}

// Figure3 formats the IP-stealing accuracy series (substitute inference
// accuracy vs encryption ratio, Figure 3).
func (r *SecurityResults) Figure3() *Table {
	t := &Table{Title: "Figure 3: inference accuracy of substitute models", Columns: nil}
	for _, m := range r.Models {
		t.Columns = append(t.Columns, m.Arch)
	}
	addSeries := func(label string, pick func(ModelSecurity) float64) {
		vals := make([]float64, len(r.Models))
		for i, m := range r.Models {
			vals[i] = pick(m)
		}
		t.AddRow(label, vals...)
	}
	addSeries("White-box", func(m ModelSecurity) float64 { return m.WhiteAcc })
	addSeries("Black-box", func(m ModelSecurity) float64 { return m.BlackAcc })
	for _, ratio := range r.Cfg.Ratios {
		ratio := ratio
		addSeries(fmt.Sprintf("SEAL-%.0f%%", ratio*100), func(m ModelSecurity) float64 { return m.SEALAcc[ratio] })
	}
	addSeries("Victim", func(m ModelSecurity) float64 { return m.VictimAcc })
	return t
}

// Figure4 formats the adversarial transferability series (Figure 4).
func (r *SecurityResults) Figure4() *Table {
	t := &Table{Title: "Figure 4: transferability of adversarial examples", Columns: nil}
	for _, m := range r.Models {
		t.Columns = append(t.Columns, m.Arch)
	}
	addSeries := func(label string, pick func(ModelSecurity) float64) {
		vals := make([]float64, len(r.Models))
		for i, m := range r.Models {
			vals[i] = pick(m)
		}
		t.AddRow(label, vals...)
	}
	addSeries("White-box", func(m ModelSecurity) float64 { return m.WhiteTrans })
	addSeries("Black-box", func(m ModelSecurity) float64 { return m.BlackTrans })
	for _, ratio := range r.Cfg.Ratios {
		ratio := ratio
		addSeries(fmt.Sprintf("SEAL-%.0f%%", ratio*100), func(m ModelSecurity) float64 { return m.SEALTrans[ratio] })
	}
	return t
}
