package exp

import (
	"reflect"
	"testing"

	"seal/internal/parallel"
)

// TestRunNetworksDeterministic guards the two ways the Figure 7/8
// dataset could silently stop being reproducible: nondeterministic
// scheduling in the worker pool (disjoint-write or ordered-reduction
// bugs) and any future map-iteration ordering creeping into the scheme
// or architecture loops. Two runs under the same pool must match
// exactly, and a parallel run must match the forced-serial path bit for
// bit.
func TestRunNetworksDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("three full RunNetworks passes")
	}
	cfg := QuickTimingConfig()

	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	serial, err := RunNetworks(cfg)
	if err != nil {
		t.Fatal(err)
	}

	parallel.SetWorkers(8)
	par1, err := RunNetworks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par2, err := RunNetworks(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(par1, par2) {
		t.Fatalf("two parallel runs differ:\n%+v\nvs\n%+v", par1, par2)
	}
	if !reflect.DeepEqual(serial, par1) {
		t.Fatalf("parallel run differs from SEAL_WORKERS=1 serial run:\n%+v\nvs\n%+v", serial, par1)
	}
	if s, p := serial.Figure7().String(), par1.Figure7().String(); s != p {
		t.Fatalf("Figure 7 tables differ:\n%s\nvs\n%s", s, p)
	}
}
