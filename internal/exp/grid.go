package exp

import (
	"fmt"
	"math"
	"time"

	"seal/internal/gpu"
	"seal/internal/models"
	"seal/internal/trace"
)

// GridSpec describes the paper-scale configuration grid of `sealsim
// -exp grid`: encryption ratio × architecture × engines-per-controller ×
// L2 slice size. Each cell simulates Baseline, full Direct and SEAL-D
// whole-network inference and reports the headline metrics (IPC,
// seal-over-direct slowdown). Traces are built once per (arch, ratio)
// and shared read-only across the (engines, L2) sub-grid.
type GridSpec struct {
	Ratios  []float64
	Archs   []string // models.ArchByName tokens
	Engines []int    // AES engines per memory controller
	L2KB    []int    // per-slice L2 KB
	// SampleEvery re-runs every Nth cell (in enumeration order) under
	// the exact scheduler to measure the stat mode's speedup and
	// relative error; 0 disables validation.
	SampleEvery int
}

// DefaultGridSpec is the shipped sweep: 54 cells, every ninth validated
// exactly (six sampled cells, one per trace group on average).
func DefaultGridSpec() GridSpec {
	return GridSpec{
		Ratios:      []float64{0.3, 0.5, 0.7},
		Archs:       []string{"vgg16", "resnet18"},
		Engines:     []int{1, 2, 4},
		L2KB:        []int{128, 256, 512},
		SampleEvery: 9,
	}
}

// Validate checks the sweep axes.
func (s GridSpec) Validate() error {
	if len(s.Ratios) == 0 || len(s.Archs) == 0 || len(s.Engines) == 0 || len(s.L2KB) == 0 {
		return fmt.Errorf("exp: empty grid axis %+v", s)
	}
	for _, r := range s.Ratios {
		if r <= 0 || r > 1 {
			return fmt.Errorf("exp: grid ratio %v outside (0,1]", r)
		}
	}
	for _, n := range s.Engines {
		if n <= 0 {
			return fmt.Errorf("exp: non-positive engine count %d", n)
		}
	}
	for _, kb := range s.L2KB {
		if kb <= 0 {
			return fmt.Errorf("exp: non-positive L2 size %d", kb)
		}
	}
	if s.SampleEvery < 0 {
		return fmt.Errorf("exp: negative SampleEvery %d", s.SampleEvery)
	}
	return nil
}

// GridCell is one simulated configuration point.
type GridCell struct {
	Arch    string
	Ratio   float64
	Engines int
	L2KB    int

	BaselineIPC float64
	DirectIPC   float64
	SealIPC     float64 // SEAL-D at the cell's ratio
	// Headline metrics: encryption cost relative to the insecure
	// baseline, and SEAL's recovery relative to full encryption.
	NormDirectIPC  float64 // DirectIPC / BaselineIPC
	SealOverDirect float64 // SealIPC / DirectIPC
	ExactFrac      float64 // mean exactly-simulated cycle fraction
	Seconds        float64 // wall time of the cell's three simulations

	// Validation fields, set when the cell was re-run exactly. The
	// errors are on the headline metrics the paper reports — the
	// normalized ratios — because the stat mode's work-based windows
	// close every scheme at the same stream position precisely so that
	// per-scheme extrapolation bias cancels in these ratios (DESIGN.md
	// §17); per-scheme raw cycle counts carry the larger, uncancelled
	// bias and are bounded separately by the gpu property tests.
	Sampled           bool
	ExactSeconds      float64
	Speedup           float64 // ExactSeconds / Seconds
	ErrNormDirect     float64 // relative error of NormDirectIPC vs exact
	ErrSealOverDirect float64
}

// GridResult is the full sweep plus validation aggregates.
type GridResult struct {
	Spec    GridSpec
	Stat    bool // cells ran in statistical fast-sim mode
	Cells   []GridCell
	Sampled int
	// Aggregates over sampled cells (zero when nothing was sampled).
	MaxErr      float64 // max of ErrNormDirect and ErrSealOverDirect
	MinSpeedup  float64
	MeanSpeedup float64
}

// gridSim runs one whole-network simulation for a grid cell.
func gridSim(cfg TimingConfig, fast bool, mode gpu.EncMode, fn gpu.EncFn, engines, l2kb int, traces []trace.LayerTrace) (gpu.Result, error) {
	tc := cfg
	tc.FastSim = fast
	g := gtx480(tc, mode, fn, cfg.CounterKB)
	g.EngineSpec.ThroughputGBs *= float64(engines)
	g.L2Slice.SizeBytes = l2kb * 1024
	if err := g.L2Slice.Validate(); err != nil {
		return gpu.Result{}, err
	}
	sim, err := gpu.New(g)
	if err != nil {
		return gpu.Result{}, err
	}
	_, total, err := trace.RunNetwork(sim, traces)
	return total, err
}

// gridCellRun simulates the cell's three schemes and returns the
// headline metrics plus the wall time spent simulating.
func gridCellRun(cfg TimingConfig, fast bool, fn gpu.EncFn, engines, l2kb int, traces []trace.LayerTrace) (base, direct, seal gpu.Result, secs float64, err error) {
	t0 := time.Now()
	if base, err = gridSim(cfg, fast, gpu.ModeNone, nil, engines, l2kb, traces); err != nil {
		return
	}
	if direct, err = gridSim(cfg, fast, gpu.ModeDirect, nil, engines, l2kb, traces); err != nil {
		return
	}
	if seal, err = gridSim(cfg, fast, gpu.ModeDirect, fn, engines, l2kb, traces); err != nil {
		return
	}
	secs = time.Since(t0).Seconds()
	return
}

// Grid runs the sweep. With stat set, every cell runs in statistical
// fast-sim mode and every SampleEvery-th cell is re-run under the exact
// scheduler to measure speedup and relative error on the headline
// metrics; without it, all cells run exactly and no validation happens.
// Cells execute sequentially so the per-cell wall times — the numbers
// the speedup gate in cmd/sealsim judges — are not contaminated by
// scheduler contention.
func Grid(cfg TimingConfig, spec GridSpec, stat bool) (*GridResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	res := &GridResult{Spec: spec, Stat: stat}
	idx := 0
	for _, archName := range spec.Archs {
		arch, err := models.ArchByName(archName)
		if err != nil {
			return nil, err
		}
		for _, ratio := range spec.Ratios {
			c := cfg
			c.Ratio = ratio
			_, layout, traces, err := buildNetwork(c, arch)
			if err != nil {
				return nil, fmt.Errorf("exp: grid %s ratio %v: %w", archName, ratio, err)
			}
			for _, engines := range spec.Engines {
				for _, l2kb := range spec.L2KB {
					cell := GridCell{Arch: archName, Ratio: ratio, Engines: engines, L2KB: l2kb}
					base, direct, seal, secs, err := gridCellRun(c, stat, layout.Protected, engines, l2kb, traces)
					if err != nil {
						return nil, err
					}
					cell.BaselineIPC, cell.DirectIPC, cell.SealIPC = base.IPC, direct.IPC, seal.IPC
					cell.ExactFrac = (base.ExactFrac + direct.ExactFrac + seal.ExactFrac) / 3
					cell.Seconds = secs
					if base.IPC > 0 {
						cell.NormDirectIPC = direct.IPC / base.IPC
					}
					if direct.IPC > 0 {
						cell.SealOverDirect = seal.IPC / direct.IPC
					}
					if stat && spec.SampleEvery > 0 && idx%spec.SampleEvery == 0 {
						eb, ed, es, esecs, err := gridCellRun(c, false, layout.Protected, engines, l2kb, traces)
						if err != nil {
							return nil, err
						}
						cell.Sampled = true
						cell.ExactSeconds = esecs
						if secs > 0 {
							cell.Speedup = esecs / secs
						}
						wantND, wantSoD := 0.0, 0.0
						if eb.IPC > 0 {
							wantND = ed.IPC / eb.IPC
						}
						if ed.IPC > 0 {
							wantSoD = es.IPC / ed.IPC
						}
						cell.ErrNormDirect = relErrf(cell.NormDirectIPC, wantND)
						cell.ErrSealOverDirect = relErrf(cell.SealOverDirect, wantSoD)
					}
					res.Cells = append(res.Cells, cell)
					idx++
				}
			}
		}
	}
	minSp, sumSp := math.Inf(1), 0.0
	for _, cell := range res.Cells {
		if !cell.Sampled {
			continue
		}
		res.Sampled++
		if e := maxf(cell.ErrNormDirect, cell.ErrSealOverDirect); e > res.MaxErr {
			res.MaxErr = e
		}
		if cell.Speedup < minSp {
			minSp = cell.Speedup
		}
		sumSp += cell.Speedup
	}
	if res.Sampled > 0 {
		res.MinSpeedup = minSp
		res.MeanSpeedup = sumSp / float64(res.Sampled)
	}
	return res, nil
}

// Table formats the sweep for terminal output.
func (r *GridResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Grid: ratio × arch × engines × L2 (%d cells, stat=%v)", len(r.Cells), r.Stat),
		Columns: []string{"NormDirIPC", "SealOverDir", "ExactFrac", "CellSec", "Speedup", "MaxErr"},
	}
	for _, c := range r.Cells {
		row := TableRow{
			Label: fmt.Sprintf("%s r=%.0f%% e=%d L2=%dKB", c.Arch, c.Ratio*100, c.Engines, c.L2KB),
			Values: []float64{
				c.NormDirectIPC, c.SealOverDirect, c.ExactFrac, c.Seconds,
				c.Speedup, maxf(c.ErrNormDirect, c.ErrSealOverDirect),
			},
		}
		if !c.Sampled {
			row.Text = []string{"", "", "", "", "-", "-"}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func relErrf(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func maxf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
