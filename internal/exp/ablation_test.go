package exp

import "testing"

func TestL2SweepMonotone(t *testing.T) {
	cfg := QuickTimingConfig()
	tab, err := L2Sweep(cfg, []int{64, 512})
	if err != nil {
		t.Fatal(err)
	}
	small, _ := tab.Cell("L2=64KB/slice", "NormIPC")
	big, _ := tab.Cell("L2=512KB/slice", "NormIPC")
	if big < small-0.02 {
		t.Fatalf("bigger L2 made encryption cost more: %v -> %v", small, big)
	}
	hrSmall, _ := tab.Cell("L2=64KB/slice", "L2HitRate")
	hrBig, _ := tab.Cell("L2=512KB/slice", "L2HitRate")
	if hrBig <= hrSmall {
		t.Fatalf("L2 hit rate did not grow with size: %v -> %v", hrSmall, hrBig)
	}
}

func TestCounterGranularity(t *testing.T) {
	cfg := QuickTimingConfig()
	tab, err := CounterGranularity(cfg, []int{8, 1})
	if err != nil {
		t.Fatal(err)
	}
	hr8, _ := tab.Cell("8B/ctr", "CtrHitRate")
	hr1, _ := tab.Cell("1B/ctr", "CtrHitRate")
	if hr1 <= hr8 {
		t.Fatalf("split counters (1B) did not improve hit rate: %v vs %v", hr1, hr8)
	}
	x8, _ := tab.Cell("8B/ctr", "ExtraReads")
	x1, _ := tab.Cell("1B/ctr", "ExtraReads")
	if x1 >= x8 {
		t.Fatalf("split counters did not reduce counter fetches: %v vs %v", x1, x8)
	}
}

func TestMetricAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	cfg := QuickSecurityConfig()
	tab, err := MetricAblation(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Row("l1") == nil || tab.Row("l2") == nil || tab.Row("random") == nil {
		t.Fatalf("missing metric rows: %v", tab.String())
	}
	// all three leak the same fraction of weights at a fixed ratio
	l1Leak, _ := tab.Cell("l1", "LeakedFrac")
	rndLeak, _ := tab.Cell("random", "LeakedFrac")
	if l1Leak != rndLeak {
		t.Fatalf("leaked fraction differs across metrics: %v vs %v", l1Leak, rndLeak)
	}
	// substitutes must not beat the victim
	v, _ := tab.Cell("Victim", "SubstituteAcc")
	for _, m := range []string{"l1", "l2", "random"} {
		acc, _ := tab.Cell(m, "SubstituteAcc")
		if acc > v+0.05 {
			t.Fatalf("%s substitute (%v) above victim (%v)", m, acc, v)
		}
	}
}

func TestIntegrityAblation(t *testing.T) {
	cfg := QuickTimingConfig()
	tab, err := Integrity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := tab.Cell("Direct", "NormIPC")
	directMAC, _ := tab.Cell("Direct+MAC", "NormIPC")
	seal, _ := tab.Cell("SEAL-D", "NormIPC")
	sealMAC, _ := tab.Cell("SEAL-D+MAC", "NormIPC")
	if directMAC > direct*1.01 {
		t.Fatalf("MACs made full encryption faster: %v vs %v", directMAC, direct)
	}
	if sealMAC <= directMAC {
		t.Fatalf("SEAL+MAC (%v) not above Direct+MAC (%v)", sealMAC, directMAC)
	}
	if seal < sealMAC {
		// authentication can only cost
		t.Fatalf("SEAL+MAC (%v) above SEAL (%v)", sealMAC, seal)
	}
}

func TestPruningPremiseOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	cfg := QuickSecurityConfig()
	tab, err := PruningPremise(cfg, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	low, _ := tab.Cell("fraction=30%", "PruneLowL1")
	high, _ := tab.Cell("fraction=30%", "PruneHighL1")
	if low < high {
		t.Fatalf("low-l1 pruning (%v) hurt more than high-l1 (%v)", low, high)
	}
}
