package exp

import (
	"fmt"

	"seal/internal/attack"
	"seal/internal/core"
	"seal/internal/dataset"
	"seal/internal/gpu"
	"seal/internal/models"
	"seal/internal/parallel"
	"seal/internal/prng"
	"seal/internal/trace"
)

// MetricAblation isolates the value of the ℓ1 criticality ranking
// (DESIGN.md §7): at a fixed encryption ratio, it builds SEAL
// substitutes against plans that choose encrypted rows by ℓ1-norm,
// ℓ2-norm, or uniformly at random, and reports the substitute's test
// accuracy. If the pruning-literature insight behind SEAL holds,
// norm-based selection protects at least as well as random selection
// (the adversary's leaked rows are the least useful ones).
func MetricAblation(cfg SecurityConfig, ratio float64) (*Table, error) {
	archName := cfg.Arches[0]
	arch, err := models.ArchByName(archName)
	if err != nil {
		return nil, err
	}
	scaled := arch.Scale(cfg.Scale, 0)
	rng := prng.New(cfg.Seed)
	dataCfg := cfg.Data
	if dataCfg.Classes == 0 {
		dataCfg = harderData()
	}
	gen := dataset.NewGenerator(dataCfg, cfg.Seed)
	victimData := gen.Sample(cfg.Victim)
	testData := gen.Sample(cfg.Test)
	advData := gen.Sample(cfg.Seeds * 4) // skip augmentation; fixed budget

	victim, err := attack.TrainVictim(scaled, victimData, cfg.Victims, rng)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Ablation: importance metric at ratio %.0f%% (%s)", ratio*100, arch.Name),
		Columns: []string{"SubstituteAcc", "LeakedFrac"},
	}
	t.AddRow("Victim", attack.Accuracy(victim, testData), 0)
	for _, metric := range []core.Metric{core.MetricL1, core.MetricL2, core.MetricRandom} {
		opts := core.DefaultOptions()
		opts.Ratio = ratio
		opts.Metric = metric
		opts.Seed = cfg.Seed
		plan, err := core.NewPlan(victim, opts)
		if err != nil {
			return nil, err
		}
		sub, err := attack.SEALSubstitute(victim, plan, advData, cfg.Subs, rng.Fork())
		if err != nil {
			return nil, err
		}
		t.AddRow(metric.String(), attack.Accuracy(sub, testData), attack.LeakedFraction(plan))
	}
	return t, nil
}

// L2Sweep measures full-direct-encryption VGG IPC (normalized to an
// unencrypted run with the same L2) across L2 slice sizes: larger caches
// absorb traffic before it reaches the engines, shrinking the encryption
// penalty — the cache-side dual of SEAL's bypass.
func L2Sweep(cfg TimingConfig, perSliceKB []int) (*Table, error) {
	t := &Table{
		Title:   "Ablation: L2 slice size vs full-direct-encryption cost (VGG-16)",
		Columns: []string{"NormIPC", "L2HitRate"},
	}
	arch := models.VGG16Arch()
	// Each (L2 size, mode) pair simulates independently; rows assemble
	// from index-addressed slots after the fan-out.
	bases := make([]*networkRun, len(perSliceKB))
	encs := make([]*networkRun, len(perSliceKB))
	var tasks []func() error
	for i, kb := range perSliceKB {
		i, kb := i, kb
		mk := func(mode gpu.EncMode) (gpu.Config, error) {
			g := gtx480(cfg, mode, nil, cfg.CounterKB)
			g.L2Slice.SizeBytes = kb * 1024
			if err := g.L2Slice.Validate(); err != nil {
				return g, err
			}
			return g, nil
		}
		tasks = append(tasks,
			func() (err error) { bases[i], err = runNetworkWithConfig(cfg, arch, mk, gpu.ModeNone); return },
			func() (err error) { encs[i], err = runNetworkWithConfig(cfg, arch, mk, gpu.ModeDirect); return })
	}
	if err := parallel.DoErr(tasks...); err != nil {
		return nil, err
	}
	for i, kb := range perSliceKB {
		t.AddRow(fmt.Sprintf("L2=%dKB/slice", kb), encs[i].total.IPC/bases[i].total.IPC, encs[i].total.L2HitRate())
	}
	return t, nil
}

func runNetworkWithConfig(cfg TimingConfig, arch *models.Arch, mk func(gpu.EncMode) (gpu.Config, error), mode gpu.EncMode) (*networkRun, error) {
	_, _, traces, err := buildNetwork(cfg, arch)
	if err != nil {
		return nil, err
	}
	g, err := mk(mode)
	if err != nil {
		return nil, err
	}
	sim, err := gpu.New(g)
	if err != nil {
		return nil, err
	}
	perLayer, total, err := trace.RunNetwork(sim, traces)
	if err != nil {
		return nil, err
	}
	return &networkRun{perLayer: perLayer, total: total, traces: traces}, nil
}

// Integrity measures the cost of authenticated memory (per-line MACs à
// la Yan et al. [24]) on top of encryption, with and without SEAL:
// bypassed lines skip both the engine and the MAC, so SEAL's advantage
// persists — and grows — when integrity is enabled.
func Integrity(cfg TimingConfig) (*Table, error) {
	t := &Table{
		Title:   "Ablation: memory authentication (per-line MACs) on VGG-16",
		Columns: []string{"NormIPC"},
	}
	arch := models.VGG16Arch()
	_, layout, traces, err := buildNetwork(cfg, arch)
	if err != nil {
		return nil, err
	}
	runWith := func(mode gpu.EncMode, protected gpu.EncFn, integrity bool) (float64, error) {
		g := gtx480(cfg, mode, protected, cfg.CounterKB)
		g.Integrity = integrity && mode != gpu.ModeNone
		sim, err := gpu.New(g)
		if err != nil {
			return 0, err
		}
		_, total, err := trace.RunNetwork(sim, traces)
		if err != nil {
			return 0, err
		}
		return total.IPC, nil
	}
	base, err := runWith(gpu.ModeNone, nil, false)
	if err != nil {
		return nil, err
	}
	for _, row := range []struct {
		label     string
		mode      gpu.EncMode
		selective bool
		integrity bool
	}{
		{"Direct", gpu.ModeDirect, false, false},
		{"Direct+MAC", gpu.ModeDirect, false, true},
		{"SEAL-D", gpu.ModeDirect, true, false},
		{"SEAL-D+MAC", gpu.ModeDirect, true, true},
	} {
		var fn gpu.EncFn
		if row.selective {
			fn = layout.Protected
		}
		ipc, err := runWith(row.mode, fn, row.integrity)
		if err != nil {
			return nil, err
		}
		t.AddRow(row.label, ipc/base)
	}
	return t, nil
}

// CounterGranularity sweeps the per-line counter size in counter mode:
// smaller counters pack more lines per counter block (split-counter
// designs), multiplying counter-cache reach and cutting counter-fetch
// traffic on the matmul workload.
func CounterGranularity(cfg TimingConfig, counterBytes []int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Ablation: counter bytes per line (matmul %d³, counter cache %dKB)", cfg.MatmulN, cfg.CounterKB),
		Columns: []string{"IPC", "CtrHitRate", "ExtraReads"},
	}
	for _, cb := range counterBytes {
		p := cfg.Trace
		a, b, c, _ := trace.MatmulRegions(cfg.MatmulN, p, true)
		streams, err := trace.Matmul(p, cfg.MatmulN, a, b, c)
		if err != nil {
			return nil, err
		}
		g := gtx480(cfg, gpu.ModeCounter, nil, cfg.CounterKB)
		g.Counter.CounterBytes = cb
		sim, err := gpu.New(g)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(streams)
		if err != nil {
			return nil, err
		}
		var extra uint64
		for _, ps := range res.Parts {
			extra += ps.ExtraCounterReads
		}
		t.AddRow(fmt.Sprintf("%dB/ctr", cb), res.IPC, res.CounterHitRate(), float64(extra))
	}
	return t, nil
}

// PruningPremise validates the §III-A foundation directly: it prunes
// (zeroes) a growing fraction of each layer's kernel rows from a trained
// victim, choosing either the lowest-ℓ1 rows — the ones SEAL leaves
// unencrypted — or the highest-ℓ1 rows — the ones SEAL protects — and
// reports the surviving accuracy. SEAL is sound exactly when the
// low-norm column stays near the victim and the high-norm column
// collapses.
func PruningPremise(cfg SecurityConfig, fractions []float64) (*Table, error) {
	arch, err := models.ArchByName(cfg.Arches[0])
	if err != nil {
		return nil, err
	}
	scaled := arch.Scale(cfg.Scale, 0)
	rng := prng.New(cfg.Seed)
	dataCfg := cfg.Data
	if dataCfg.Classes == 0 {
		dataCfg = harderData()
	}
	gen := dataset.NewGenerator(dataCfg, cfg.Seed)
	victimData := gen.Sample(cfg.Victim)
	testData := gen.Sample(cfg.Test)
	victim, err := attack.TrainVictim(scaled, victimData, cfg.Victims, rng)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   fmt.Sprintf("Premise: prune low-l1 vs high-l1 kernel rows (%s)", arch.Name),
		Columns: []string{"PruneLowL1", "PruneHighL1"},
	}
	t.AddRow("fraction=0%", attack.Accuracy(victim, testData), attack.Accuracy(victim, testData))
	for _, f := range fractions {
		low, err := attack.PruneByImportance(victim, f, true, cfg.Seed)
		if err != nil {
			return nil, err
		}
		high, err := attack.PruneByImportance(victim, f, false, cfg.Seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("fraction=%.0f%%", f*100),
			attack.Accuracy(low, testData), attack.Accuracy(high, testData))
	}
	return t, nil
}
