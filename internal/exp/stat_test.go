package exp

import (
	"os"
	"testing"
)

// refMode reports whether SEAL_SIM_REF=1 pins every run to the
// per-cycle reference scheduler, which silently disables stat mode; the
// engagement assertions below are meaningless there.
func refMode() bool { return os.Getenv("SEAL_SIM_REF") == "1" }

// expStatTol bounds the relative error of quick-scale FastSim estimates
// on the normalized (per-Baseline) metrics the figures report. The
// paper-scale grid holds well under 2% on these ratios (BENCH_PR9.json);
// quick scale has shorter steady states and proportionally larger
// extrapolation noise, so the test gate is looser.
const expStatTol = 0.05

// quickArchTol returns the per-architecture quick-scale gate. The
// quarter-scale ResNets have many very short residual-block layers —
// each gives the extrapolator only a handful of measurement windows, so
// their quick-scale error runs to ~9% where quarter-scale VGG stays
// under 5%. Both are regression tripwires, not accuracy claims; the
// accuracy claim is the 2% paper-scale gate in BENCH_PR9.json.
func quickArchTol(arch string) float64 {
	if arch == "VGG-16" {
		return expStatTol
	}
	return 0.12
}

// TestFastSimNetworksTolerance runs the Figure-7 workload exactly and in
// statistical fast-sim mode at quick scale and bounds the error of every
// normalized (scheme, arch) cell.
func TestFastSimNetworksTolerance(t *testing.T) {
	cfg := QuickTimingConfig()
	exact, err := RunNetworks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FastSim = true
	stat, err := RunNetworks(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !refMode() && stat.MeanExactFrac() >= 0.999 {
		t.Fatalf("FastSim never engaged: mean exact fraction %v", stat.MeanExactFrac())
	}
	et, st := exact.Figure7(), stat.Figure7()
	for _, scheme := range exact.Schemes {
		for j, arch := range exact.Archs {
			want := et.Row(scheme).Values[j]
			got := st.Row(scheme).Values[j]
			tol := quickArchTol(arch)
			if e := relErrf(got, want); e > tol {
				t.Errorf("%s/%s: stat %.4f vs exact %.4f (err %.2f%% > %.0f%%)",
					scheme, arch, got, want, e*100, tol*100)
			}
		}
	}
}

// TestRatioSweepFastSimMonotone: the ratio ablation must stay monotone
// under statistical estimates — more encryption never speeds SEAL up.
func TestRatioSweepFastSimMonotone(t *testing.T) {
	cfg := QuickTimingConfig()
	cfg.FastSim = true
	tab, err := RatioSweep(cfg, []float64{0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	low, _ := tab.Cell("ratio=20%", "SEAL-D")
	high, _ := tab.Cell("ratio=80%", "SEAL-D")
	// 1% slack: these are estimates, not bit-exact counts.
	if low < high*0.99 {
		t.Fatalf("more encryption should not be faster: 20%%=%v 80%%=%v", low, high)
	}
}

// TestL2SweepFastSimOrdering: the cache-size ablation's direction — a
// larger L2 absorbs traffic before the engines and shrinks the direct-
// encryption penalty — must survive statistical estimation.
func TestL2SweepFastSimOrdering(t *testing.T) {
	cfg := QuickTimingConfig()
	cfg.FastSim = true
	tab, err := L2Sweep(cfg, []int{64, 512})
	if err != nil {
		t.Fatal(err)
	}
	small, _ := tab.Cell("L2=64KB/slice", "NormIPC")
	big, _ := tab.Cell("L2=512KB/slice", "NormIPC")
	if big < small*0.99 {
		t.Fatalf("larger L2 should not raise the encryption penalty: 64KB=%v 512KB=%v", small, big)
	}
	hs, _ := tab.Cell("L2=64KB/slice", "L2HitRate")
	hb, _ := tab.Cell("L2=512KB/slice", "L2HitRate")
	if hb <= hs {
		t.Fatalf("L2 hit rate not increasing with size: %v vs %v", hs, hb)
	}
}

// TestGridSmokeStat runs a 2-cell grid at quick scale in stat mode with
// one sampled cell and checks the result plumbing end to end: cell
// metrics, validation fields and aggregates.
func TestGridSmokeStat(t *testing.T) {
	cfg := QuickTimingConfig()
	spec := GridSpec{
		Ratios:      []float64{0.5},
		Archs:       []string{"vgg16"},
		Engines:     []int{1},
		L2KB:        []int{128, 256},
		SampleEvery: 2,
	}
	res, err := Grid(cfg, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 || !res.Stat {
		t.Fatalf("cells = %d stat = %v", len(res.Cells), res.Stat)
	}
	if res.Sampled != 1 || !res.Cells[0].Sampled || res.Cells[1].Sampled {
		t.Fatalf("sampling: total %d, cell0 %v, cell1 %v", res.Sampled, res.Cells[0].Sampled, res.Cells[1].Sampled)
	}
	for i, c := range res.Cells {
		if c.BaselineIPC <= 0 || c.DirectIPC <= 0 || c.SealIPC <= 0 {
			t.Fatalf("cell %d: non-positive IPC %+v", i, c)
		}
		if c.NormDirectIPC <= 0 || c.NormDirectIPC > 1.05 {
			t.Fatalf("cell %d: NormDirectIPC %v outside (0, 1.05]", i, c.NormDirectIPC)
		}
		if c.SealOverDirect < 0.95 {
			t.Fatalf("cell %d: SEAL slower than full encryption: %v", i, c.SealOverDirect)
		}
		if c.ExactFrac <= 0 || c.ExactFrac > 1 {
			t.Fatalf("cell %d: ExactFrac %v outside (0, 1]", i, c.ExactFrac)
		}
	}
	s := res.Cells[0]
	if s.ExactSeconds <= 0 || s.Speedup <= 0 {
		t.Fatalf("sampled cell validation fields: %+v", s)
	}
	if res.MaxErr > expStatTol {
		t.Fatalf("sampled relative error %.4f above quick-scale tolerance %v", res.MaxErr, expStatTol)
	}
	if res.MinSpeedup != s.Speedup || res.MeanSpeedup != s.Speedup {
		t.Fatalf("aggregates %v/%v want %v", res.MinSpeedup, res.MeanSpeedup, s.Speedup)
	}
}

func TestGridSpecValidate(t *testing.T) {
	good := DefaultGridSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func(*GridSpec){
		"empty archs":    func(s *GridSpec) { s.Archs = nil },
		"zero ratio":     func(s *GridSpec) { s.Ratios = []float64{0} },
		"ratio above 1":  func(s *GridSpec) { s.Ratios = []float64{1.5} },
		"zero engines":   func(s *GridSpec) { s.Engines = []int{0} },
		"zero l2":        func(s *GridSpec) { s.L2KB = []int{0} },
		"negative every": func(s *GridSpec) { s.SampleEvery = -1 },
	} {
		s := DefaultGridSpec()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
}
