package secure

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(); err == nil {
		t.Fatal("empty pool accepted")
	}
	if _, err := NewPool(&Engine{}, nil); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestPoolCheckoutDiscipline(t *testing.T) {
	a, b := &Engine{}, &Engine{}
	p, err := NewPool(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 2 || p.Idle() != 2 {
		t.Fatalf("size %d idle %d, want 2 2", p.Size(), p.Idle())
	}
	e1 := p.Acquire()
	e2, ok := p.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire failed with one engine idle")
	}
	if e1 == e2 {
		t.Fatal("same engine checked out twice")
	}
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded on an empty pool")
	}
	if p.Idle() != 0 {
		t.Fatalf("idle %d, want 0", p.Idle())
	}
	p.Release(e2)
	p.Release(e1)
	if p.Idle() != 2 {
		t.Fatalf("idle %d after releases, want 2", p.Idle())
	}
}

func TestPoolReleasePanics(t *testing.T) {
	p, err := NewPool(&Engine{})
	if err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Release(nil)", func() { p.Release(nil) })
	mustPanic("over-release", func() { p.Release(&Engine{}) })
}

// TestPoolDrainWaitsForInflight pins the hot-swap barrier: Drain must
// not return until every checked-out engine has been released.
func TestPoolDrainWaitsForInflight(t *testing.T) {
	engines := []*Engine{{}, {}, {}}
	p, err := NewPool(engines...)
	if err != nil {
		t.Fatal(err)
	}
	var inflight sync.WaitGroup
	var released atomic.Int32
	for i := 0; i < 3; i++ {
		e := p.Acquire()
		inflight.Add(1)
		go func(e *Engine) {
			defer inflight.Done()
			released.Add(1)
			p.Release(e)
		}(e)
	}
	got := p.Drain()
	if n := released.Load(); n != 3 {
		t.Fatalf("Drain returned with %d/3 engines released", n)
	}
	if len(got) != 3 {
		t.Fatalf("Drain returned %d engines, want 3", len(got))
	}
	seen := map[*Engine]bool{}
	for _, e := range got {
		seen[e] = true
	}
	for i, e := range engines {
		if !seen[e] {
			t.Fatalf("engine %d missing from Drain result", i)
		}
	}
	inflight.Wait()
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("pool not empty after Drain")
	}
}

func TestPoolStatsSums(t *testing.T) {
	a := &Engine{stats: Stats{Forwards: 2, Panels: 3, BytesDecrypted: 10, BytesCopied: 1}}
	b := &Engine{stats: Stats{Forwards: 1, Panels: 1, BytesDecrypted: 5, BytesCopied: 2}}
	p, err := NewPool(a, b)
	if err != nil {
		t.Fatal(err)
	}
	sum := p.Stats()
	want := Stats{Forwards: 3, Panels: 4, BytesDecrypted: 15, BytesCopied: 3}
	if sum != want {
		t.Fatalf("Stats() = %+v, want %+v", sum, want)
	}
	if p.Idle() != 2 {
		t.Fatal("Stats consumed engines")
	}
}
