package secure

import "fmt"

// Pool is a fixed set of interchangeable streaming engines over one
// sealed image. An Engine is single-flight (its workspaces and its
// model's modules are stateful), so concurrent serving needs one engine
// per in-flight forward; engines over the same image share only the
// image's decrypt path, which is concurrency-safe. Pool is the
// checkout discipline: Acquire blocks until an engine is free, Release
// returns it, and Drain reclaims every engine — the hot-swap barrier
// that proves all in-flight work on a retired deployment has finished.
type Pool struct {
	engines chan *Engine
	size    int
}

// NewPool builds a pool owning the given engines. Every engine must be
// non-nil; they are all immediately available.
func NewPool(engines ...*Engine) (*Pool, error) {
	if len(engines) == 0 {
		return nil, fmt.Errorf("secure: NewPool needs at least one engine")
	}
	p := &Pool{engines: make(chan *Engine, len(engines)), size: len(engines)}
	for i, e := range engines {
		if e == nil {
			return nil, fmt.Errorf("secure: NewPool engine %d is nil", i)
		}
		p.engines <- e
	}
	return p, nil
}

// Size returns the number of engines the pool owns.
func (p *Pool) Size() int { return p.size }

// Idle returns the number of engines currently checked in.
func (p *Pool) Idle() int { return len(p.engines) }

// Acquire checks out an engine, blocking until one is free.
func (p *Pool) Acquire() *Engine { return <-p.engines }

// AcquireC exposes the checkout channel so callers can select an
// acquire against other events — receiving from it is exactly Acquire.
// The serving batcher needs this: once a deployment is retired its pool
// is being Drained concurrently, so a bare Acquire could block forever;
// selecting against the retirement signal lets the caller move to the
// replacement pool instead.
func (p *Pool) AcquireC() <-chan *Engine { return p.engines }

// TryAcquire checks out an engine without blocking.
func (p *Pool) TryAcquire() (*Engine, bool) {
	select {
	case e := <-p.engines:
		return e, true
	default:
		return nil, false
	}
}

// Release checks an engine back in. Releasing more engines than were
// acquired is a programming error and panics (the channel would block).
func (p *Pool) Release(e *Engine) {
	if e == nil {
		panic("secure: Pool.Release(nil)")
	}
	select {
	case p.engines <- e:
	default:
		panic("secure: Pool.Release without matching Acquire")
	}
}

// Drain checks out every engine, blocking until all in-flight work has
// released them, and returns the full set. After Drain the pool is
// empty: a retiring deployment calls it once and then drops the pool.
func (p *Pool) Drain() []*Engine {
	out := make([]*Engine, p.size)
	for i := range out {
		out[i] = <-p.engines
	}
	return out
}

// Stats sums the counters of every idle engine. Call after Drain (or
// while the pool is quiescent) for a complete, race-free total.
func (p *Pool) Stats() Stats {
	var sum Stats
	n := len(p.engines)
	for i := 0; i < n; i++ {
		e := <-p.engines
		st := e.Stats()
		sum.Forwards += st.Forwards
		sum.Panels += st.Panels
		sum.BytesDecrypted += st.BytesDecrypted
		sum.BytesCopied += st.BytesCopied
		p.engines <- e
	}
	return sum
}
