package secure

import (
	"encoding/binary"
	"fmt"
	"math"

	"seal/internal/parallel"
	"seal/internal/tensor"
)

// Int8 streaming mode. The pipeline shape is the float engine's — stage
// the batch's quantized im2col while panel 0 decrypts, then overlap the
// CTR decrypt of panel t+1 with the GEMM consumption of panel t — but
// every weight panel is one byte per weight on the bus (≈4× less
// ciphertext through the AES engine) and the consume is the dual-lane
// int8 GEMM. Chained panels accumulate in int32, which is exact, so the
// logits are bit-identical across worker counts AND panel sizes by
// arithmetic; and because the quantize → GEMM → dequantize → bias float
// ops run helper-for-helper in the nn quantized eval path's order, the
// streamed logits equal nn's int8 logits bit for bit as well.

// initInt8 finishes construction for a quantized image: double-buffered
// int8 panels, their packed dual-lane words, and each layer's
// dequantization scales cached from the plaintext qs header.
func (e *Engine) initInt8() error {
	e.qwbuf[0] = make([]int8, e.maxPanelInt8)
	e.qwbuf[1] = make([]int8, e.maxPanelInt8)
	e.qwHdr[0] = &tensor.Int8Mat{}
	e.qwHdr[1] = &tensor.Int8Mat{}
	e.qpack[0] = make([]int64, e.maxPacked)
	e.qpack[1] = make([]int64, e.maxPacked)
	e.qxHdr = &tensor.Int8Mat{}
	for _, cs := range e.convSteps {
		s, err := e.readScales(cs.layer.Name, cs.layer.OutC)
		if err != nil {
			return err
		}
		cs.qscales = s
	}
	for _, fs := range e.fcSteps {
		s, err := e.readScales(fs.layer.Name, fs.layer.Out)
		if err != nil {
			return err
		}
		fs.qscales = s
	}
	return nil
}

// readScales loads a layer's per-output-channel scales from its
// plaintext "qs:" header region.
func (e *Engine) readScales(name string, outC int) ([]float32, error) {
	r := e.img.Layout.Region("qs:" + name)
	if r == nil {
		return nil, fmt.Errorf("secure: missing scales region for %s", name)
	}
	buf := make([]byte, r.Size)
	if _, err := e.img.DecryptRangeInto(r, 0, buf); err != nil {
		return nil, err
	}
	s := make([]float32, outC)
	for o := range s {
		s[o] = math.Float32frombits(binary.LittleEndian.Uint32(buf[o*4:]))
	}
	return s, nil
}

// ensureBatchInt8 grows the quantized per-item pools to n items and the
// per-chunk GEMM workspaces to the fan-out width. The GEMM workspaces
// size themselves lazily on first use (their ensure is internal), so a
// warm Forward with stable batch and pool width allocates nothing.
func (e *Engine) ensureBatchInt8(n, chunks int) {
	for len(e.qimgBuf) < n {
		e.qimgBuf = append(e.qimgBuf, make([]int8, e.maxQImg))
		e.qcolsBuf = append(e.qcolsBuf, make([]int8, e.maxQCols))
		e.qcolsHdr = append(e.qcolsHdr, &tensor.Int8Mat{})
		e.accBuf = append(e.accBuf, make([]int32, e.maxAccInts))
	}
	if cap(e.actScale) < n {
		e.actScale = make([]float32, n)
	}
	e.actScale = e.actScale[:cap(e.actScale)]
	if e.maxFCIn > 0 && len(e.qxBuf) < n*e.maxFCIn {
		e.qxBuf = make([]int8, n*e.maxFCIn)
		e.fcAcc = make([]int32, n*e.maxFCOut)
	}
	for len(e.int8WS) < chunks {
		e.int8WS = append(e.int8WS, tensor.NewInt8GEMMWS(1, 1, 0))
		e.deqBuf = append(e.deqBuf, make([]float32, e.maxAccInts))
		e.deqHdr = append(e.deqHdr, &tensor.Tensor{})
	}
}

// runConvInt8 streams one quantized convolution. Per-element float
// order matches Conv2D.inferRangeInt8 exactly: dynamic per-item
// quantization, exact int32 panel accumulation (any split yields the
// same bits), one dequantize-transpose, then the bias adds.
func (e *Engine) runConvInt8(cs *convStep, x *tensor.Tensor) *tensor.Tensor {
	c := cs.layer
	g := c.Geom
	n := x.Dim(0)
	oh, ow := g.OutH(), g.OutW()
	ncols := oh * ow
	perIn := g.InC * g.InH * g.InW
	perOut := c.OutC * ncols
	out := ensure4(&cs.out, n, c.OutC, oh, ow)
	if parallel.Workers() == 1 {
		// Strict serial path: no closures, no goroutines.
		for i := 0; i < n; i++ {
			e.quantizeItem(cs, x, i, perIn, ncols)
		}
		for t := 0; t < cs.panels; t++ {
			e.decodeConvPanelInt8(cs, t, 0)
			e.consumeConvInt8Range(cs, t, 0, 0, n, e.int8WS[0])
		}
		for i := 0; i < n; i++ {
			e.finishConvItem(cs, out, i, ncols, perOut, 0)
		}
		return out
	}
	parallel.Do(
		func() { e.quantizeAll(cs, x, n, perIn, ncols) },
		func() { e.decodeConvPanelInt8(cs, 0, 0) },
	)
	for t := 0; t < cs.panels; t++ {
		t := t
		cur := t & 1
		if t+1 < cs.panels {
			parallel.Do(
				func() { e.decodeConvPanelInt8(cs, t+1, cur^1) },
				func() { e.consumeConvInt8(cs, t, cur, n) },
			)
		} else {
			e.consumeConvInt8(cs, t, cur, n)
		}
	}
	chunks := parallel.Workers()
	if chunks > n {
		chunks = n
	}
	grain := (n + chunks - 1) / chunks
	parallel.For(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e.finishConvItem(cs, out, i, ncols, perOut, lo/grain)
		}
	})
	return out
}

// quantizeItem quantizes batch item i with its own dynamic symmetric
// scale and expands it into the transposed int8 im2col layout — the
// same helper sequence as the nn quantized path, for bit-identity.
func (e *Engine) quantizeItem(cs *convStep, x *tensor.Tensor, i, perIn, ncols int) {
	g := cs.layer.Geom
	in := x.Data[i*perIn : (i+1)*perIn]
	s := tensor.QuantScale(tensor.MaxAbsSlice(in))
	e.actScale[i] = s
	qimg := e.qimgBuf[i][:perIn]
	tensor.QuantizeSliceInto(qimg, in, s)
	aimQ(e.qcolsHdr[i], e.qcolsBuf[i][:ncols*g.InC*cs.kk], ncols, g.InC*cs.kk)
	tensor.Im2ColTransInt8Into(e.qcolsHdr[i], qimg, g)
}

// quantizeAll stages every item's quantized im2col, items sharded
// across the pool (runs overlapped with panel 0's decrypt).
func (e *Engine) quantizeAll(cs *convStep, x *tensor.Tensor, n, perIn, ncols int) {
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e.quantizeItem(cs, x, i, perIn, ncols)
		}
	})
}

// decodeConvPanelInt8 decrypts panel t's kernel-row blocks, repacks the
// layout's [channel][out·kk+k] bytes into the GEMM's [out][channel-k]
// int8 panel, and prepacks the dual-lane words once for the whole
// batch. Decode tasks are strictly serialized by the pipeline; only
// qwbuf/qpack[parity] cross into the concurrent consume.
func (e *Engine) decodeConvPanelInt8(cs *convStep, t, parity int) {
	r := cs.region
	c0 := t * cs.cpp
	c1 := c0 + cs.cpp
	if c1 > cs.layer.Geom.InC {
		c1 = cs.layer.Geom.InC
	}
	buf := e.stagePanel(r, c0, c1)
	kp := (c1 - c0) * cs.kk
	outC := cs.layer.OutC
	w := e.qwbuf[parity][:outC*kp]
	bb := int(r.BlockBytes)
	for c := c0; c < c1; c++ {
		blk := buf[(c-c0)*bb:]
		col0 := (c - c0) * cs.kk
		for o := 0; o < outC; o++ {
			dst := w[o*kp+col0 : o*kp+col0+cs.kk]
			src := blk[o*cs.kk:]
			for k := range dst {
				dst[k] = int8(src[k])
			}
		}
	}
	aimQ(e.qwHdr[parity], w, outC, kp)
	tensor.PackInt8BInto(e.qpack[parity][:tensor.PackedBLen(outC, kp)], e.qwHdr[parity])
}

// consumeConvInt8 folds panel t into every item's accumulators, items
// sharded across the pool with one GEMM workspace per chunk.
func (e *Engine) consumeConvInt8(cs *convStep, t, parity, n int) {
	chunks := parallel.Workers()
	if chunks > n {
		chunks = n
	}
	if chunks == 1 {
		e.consumeConvInt8Range(cs, t, parity, 0, n, e.int8WS[0])
		return
	}
	grain := (n + chunks - 1) / chunks
	parallel.For(n, grain, func(lo, hi int) {
		e.consumeConvInt8Range(cs, t, parity, lo, hi, e.int8WS[lo/grain])
	})
}

func (e *Engine) consumeConvInt8Range(cs *convStep, t, parity, lo, hi int, ws *tensor.Int8GEMMWS) {
	hdr := e.qwHdr[parity]
	pb := e.qpack[parity][:tensor.PackedBLen(hdr.Rows, hdr.Cols)]
	p0 := t * cs.cpp * cs.kk
	acc := t > 0
	outC := cs.layer.OutC
	g := cs.layer.Geom
	ncols := g.OutH() * g.OutW()
	for i := lo; i < hi; i++ {
		tensor.MatMulInt8TransBPrepackedAcc(e.accBuf[i][:ncols*outC], e.qcolsHdr[i], p0, pb, hdr, acc, ws)
	}
}

// finishConvItem dequantizes item i's accumulators through the chunk's
// staging matrix and applies the bias — copy then bias adds, in
// inferRangeInt8's exact order.
func (e *Engine) finishConvItem(cs *convStep, out *tensor.Tensor, i, ncols, perOut, chunk int) {
	c := cs.layer
	hdr := e.deqHdr[chunk]
	aim2(hdr, e.deqBuf[chunk][:perOut], c.OutC, ncols)
	tensor.DequantizeTransposeInto(hdr, e.accBuf[i], cs.qscales, e.actScale[i])
	copy(out.Data[i*perOut:(i+1)*perOut], hdr.Data)
	if c.UseBias {
		for oc := 0; oc < c.OutC; oc++ {
			b := c.Bias.W.Data[oc]
			base := (i*c.OutC + oc) * ncols
			for j := 0; j < ncols; j++ {
				out.Data[base+j] += b
			}
		}
	}
}

// runFCInt8 streams one quantized fully-connected layer: per-row
// dynamic activation scales (logits independent of batchmates), panel
// GEMMs chained in exact int32, then dequantize and bias in
// Linear.forwardInt8's order.
func (e *Engine) runFCInt8(fs *fcStep, x *tensor.Tensor) *tensor.Tensor {
	l := fs.layer
	n := x.Dim(0)
	out := ensure2(&fs.out, n, l.Out)
	qx := e.qxHdr
	aimQ(qx, e.qxBuf[:n*l.In], n, l.In)
	for i := 0; i < n; i++ {
		row := x.Data[i*l.In : (i+1)*l.In]
		s := tensor.QuantScale(tensor.MaxAbsSlice(row))
		e.actScale[i] = s
		tensor.QuantizeSliceInto(qx.Data[i*l.In:(i+1)*l.In], row, s)
	}
	acc := e.fcAcc[:n*l.Out]
	ws := e.int8WS[0]
	if parallel.Workers() == 1 {
		for t := 0; t < fs.panels; t++ {
			e.decodeFCPanelInt8(fs, t, 0)
			e.fcPanelGEMMInt8(fs, qx, acc, t, 0, ws)
		}
	} else {
		e.decodeFCPanelInt8(fs, 0, 0)
		for t := 0; t < fs.panels; t++ {
			t := t
			cur := t & 1
			if t+1 < fs.panels {
				parallel.Do(
					func() { e.decodeFCPanelInt8(fs, t+1, cur^1) },
					func() { e.fcPanelGEMMInt8(fs, qx, acc, t, cur, ws) },
				)
			} else {
				e.fcPanelGEMMInt8(fs, qx, acc, t, cur, ws)
			}
		}
	}
	tensor.DequantizeInto(out, acc, e.actScale[:n], fs.qscales)
	for i := 0; i < n; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.Bias.W.Data[j]
		}
	}
	return out
}

// decodeFCPanelInt8 decrypts input-feature blocks [t·cpp, ...) and
// repacks the layout's [feature][out] bytes into the [out][feature]
// int8 panel, prepacking the dual-lane words.
func (e *Engine) decodeFCPanelInt8(fs *fcStep, t, parity int) {
	r := fs.region
	c0 := t * fs.cpp
	c1 := c0 + fs.cpp
	if c1 > fs.layer.In {
		c1 = fs.layer.In
	}
	buf := e.stagePanel(r, c0, c1)
	kp := c1 - c0
	outC := fs.layer.Out
	w := e.qwbuf[parity][:outC*kp]
	bb := int(r.BlockBytes)
	for c := c0; c < c1; c++ {
		blk := buf[(c-c0)*bb:]
		col := c - c0
		for o := 0; o < outC; o++ {
			w[o*kp+col] = int8(blk[o])
		}
	}
	aimQ(e.qwHdr[parity], w, outC, kp)
	tensor.PackInt8BInto(e.qpack[parity][:tensor.PackedBLen(outC, kp)], e.qwHdr[parity])
}

func (e *Engine) fcPanelGEMMInt8(fs *fcStep, qx *tensor.Int8Mat, acc []int32, t, parity int, ws *tensor.Int8GEMMWS) {
	hdr := e.qwHdr[parity]
	pb := e.qpack[parity][:tensor.PackedBLen(hdr.Rows, hdr.Cols)]
	tensor.MatMulInt8TransBPrepackedAcc(acc, qx, t*fs.cpp, pb, hdr, t > 0, ws)
}

// aimQ re-points a reusable int8 matrix header at a storage slice.
func aimQ(m *tensor.Int8Mat, data []int8, rows, cols int) {
	m.Data = data
	m.Rows = rows
	m.Cols = cols
}
