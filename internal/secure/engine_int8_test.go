package secure

import (
	"math"
	"testing"

	"seal/internal/core"
	"seal/internal/models"
	"seal/internal/nn"
	"seal/internal/parallel"
	"seal/internal/prng"
)

// buildInt8Engine plans, lays out and encrypts a quantized image of a
// freshly initialized model, enables the model's own int8 eval path
// (the bit-identity reference), and wraps the image in a streaming
// engine.
func buildInt8Engine(t testing.TB, arch *models.Arch, opts core.Options, ratio float64, seed uint64, panelBytes int) (*Engine, *models.Model) {
	t.Helper()
	m, err := models.Build(arch, prng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	opts.Ratio = ratio
	p, err := core.NewPlan(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	l, err := core.NewInt8Layout(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	img, err := core.NewMemoryImage(l, m, testKey)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(img, m, panelBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Int8() {
		t.Fatal("engine did not detect int8 layout")
	}
	nn.EnableInt8(m.Net)
	return e, m
}

// TestInt8ForwardMatchesNNInt8 is the quantized equivalence matrix:
// streamed int8 logits must be bit-identical to the nn quantized eval
// forward for conv nets (plain and residual) and an all-FC net, across
// SE ratios, batch sizes, panel geometries and pool widths. Exact int32
// accumulation makes panel- and worker-invariance arithmetic facts; the
// shared float helper order does the rest.
func TestInt8ForwardMatchesNNInt8(t *testing.T) {
	r := prng.New(177)
	for _, tc := range testCases() {
		for _, ratio := range []float64{0, 0.5, 1.0} {
			for _, panelBytes := range []int{1, 4096, 0} {
				e, m := buildInt8Engine(t, tc.arch, tc.opts, ratio, 2000+uint64(ratio*10), panelBytes)
				for _, batch := range []int{1, 5} {
					x := randInput(r, tc.arch, batch)
					want := cloneData(m.Forward(x, false))
					for _, workers := range []int{1, 8} {
						prev := parallel.SetWorkers(workers)
						got := e.Forward(x)
						parallel.SetWorkers(prev)
						if len(got.Data) != len(want) {
							t.Fatalf("%s ratio %v panel %d batch %d: logits size %d, want %d",
								tc.name, ratio, panelBytes, batch, len(got.Data), len(want))
						}
						for i := range want {
							if got.Data[i] != want[i] {
								t.Fatalf("%s ratio %v panel %d batch %d workers %d: logit %d = %v, want %v",
									tc.name, ratio, panelBytes, batch, workers, i, got.Data[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestInt8ForwardCloseToFloat bounds the quantized streamed logits
// against the float model forward. The bound is coarse (per-layer
// quantization error compounds through the net), but catches scale
// mishandling, which shows up as order-of-magnitude drift.
func TestInt8ForwardCloseToFloat(t *testing.T) {
	r := prng.New(178)
	for _, tc := range testCases() {
		e, _ := buildInt8Engine(t, tc.arch, tc.opts, 0.5, 2100, 0)
		x := randInput(r, tc.arch, 2)
		got := cloneData(e.Forward(x))
		// the model reference must be the float path: rebuild fresh
		m2, err := models.Build(tc.arch, prng.New(2100))
		if err != nil {
			t.Fatal(err)
		}
		want := m2.Forward(x, false)
		var maxAbs float64
		for _, v := range want.Data {
			if a := math.Abs(float64(v)); a > maxAbs {
				maxAbs = a
			}
		}
		tol := 0.1 * maxAbs
		if tol == 0 {
			tol = 1e-3
		}
		for i := range got {
			if d := math.Abs(float64(got[i] - want.Data[i])); d > tol {
				t.Fatalf("%s logit %d: int8 %v vs float %v (|Δ| %v > tol %v)",
					tc.name, i, got[i], want.Data[i], d, tol)
			}
		}
	}
}

// TestInt8EngineDecryptsFewerBytes pins the memory-side win: one int8
// forward must push well under the float engine's ciphertext bytes
// through the CTR keystream (1 byte/weight vs 4, before line
// alignment).
func TestInt8EngineDecryptsFewerBytes(t *testing.T) {
	r := prng.New(179)
	arch := models.VGG16Arch().Scale(0.25, 0)
	ef, _ := buildEngine(t, arch, core.DefaultOptions(), 0.5, 3000, 0)
	e8, _ := buildInt8Engine(t, arch, core.DefaultOptions(), 0.5, 3000, 0)
	x := randInput(r, arch, 1)
	ef.Forward(x)
	e8.Forward(x)
	fb := ef.Stats().BytesDecrypted
	qb := e8.Stats().BytesDecrypted
	if qb == 0 || fb == 0 {
		t.Fatalf("unexpected zero decrypt counts: float %d int8 %d", fb, qb)
	}
	if ratio := float64(fb) / float64(qb); ratio < 3.5 {
		t.Fatalf("int8 decrypt traffic only %.2fx under float (float %d, int8 %d)", ratio, fb, qb)
	}
}

// TestInt8EngineZeroAllocsWarm pins the warm single-worker int8 forward
// to zero heap allocations, like the float engine.
func TestInt8EngineZeroAllocsWarm(t *testing.T) {
	r := prng.New(180)
	arch := models.VGG16Arch().Scale(0.125, 0)
	e, _ := buildInt8Engine(t, arch, core.DefaultOptions(), 0.5, 3100, 0)
	x := randInput(r, arch, 2)
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	e.Forward(x)
	allocs := testing.AllocsPerRun(10, func() {
		e.Forward(x)
	})
	if allocs != 0 {
		t.Fatalf("warm int8 Forward allocates %.1f objects/op, want 0", allocs)
	}
}

// TestInt8EngineIgnoresModelWeights zeroes every kernel after the image
// is built: the streamed int8 logits must still match the reference,
// proving weights come from the encrypted image.
func TestInt8EngineIgnoresModelWeights(t *testing.T) {
	r := prng.New(181)
	for _, tc := range testCases() {
		e, m := buildInt8Engine(t, tc.arch, tc.opts, 0.5, 3200, 0)
		x := randInput(r, tc.arch, 2)
		want := cloneData(m.Forward(x, false))
		for _, w := range m.WeightLayers {
			if w.Conv != nil {
				w.Conv.Weight.W.Fill(0)
			} else {
				w.FC.Weight.W.Fill(0)
			}
		}
		got := e.Forward(x)
		for i := range want {
			if got.Data[i] != want[i] {
				t.Fatalf("%s logit %d changed after zeroing model weights: %v vs %v",
					tc.name, i, got.Data[i], want[i])
			}
		}
	}
}
