package secure

import (
	"testing"

	"seal/internal/core"
	"seal/internal/models"
	"seal/internal/parallel"
	"seal/internal/prng"
	"seal/internal/tensor"
)

var testKey = []byte("0123456789abcdef")

type testCase struct {
	name string
	arch *models.Arch
	opts core.Options
}

func testCases() []testCase {
	return []testCase{
		{"vgg16", models.VGG16Arch().Scale(0.125, 0), core.DefaultOptions()},
		{"resnet18", models.ResNet18Arch().Scale(0.125, 0), core.DefaultOptions()},
		{"mlp", models.MLPArch("mlp", 96, []int{64, 48}, 10), core.DefaultMLPOptions()},
	}
}

// buildEngine plans, lays out and encrypts a freshly initialized model,
// then wraps it in a streaming engine.
func buildEngine(t testing.TB, arch *models.Arch, opts core.Options, ratio float64, seed uint64, panelBytes int) (*Engine, *models.Model) {
	t.Helper()
	m, err := models.Build(arch, prng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	opts.Ratio = ratio
	p, err := core.NewPlan(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	l, err := core.NewLayout(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	img, err := core.NewMemoryImage(l, m, testKey)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(img, m, panelBytes)
	if err != nil {
		t.Fatal(err)
	}
	return e, m
}

func randInput(r *prng.Source, arch *models.Arch, n int) *tensor.Tensor {
	x := tensor.New(n, arch.InC, arch.InH, arch.InW)
	for i := range x.Data {
		x.Data[i] = float32(r.NormFloat64())
	}
	return x
}

func cloneData(t *tensor.Tensor) []float32 {
	out := make([]float32, len(t.Data))
	copy(out, t.Data)
	return out
}

// TestForwardMatchesPlaintext is the tentpole equivalence matrix:
// streamed secure logits must be bit-identical to the plaintext forward
// for conv nets (plain and residual) and an all-FC net, across SE
// ratios, batch sizes, panel geometries and pool widths.
func TestForwardMatchesPlaintext(t *testing.T) {
	r := prng.New(77)
	for _, tc := range testCases() {
		for _, ratio := range []float64{0, 0.5, 1.0} {
			// panel budgets: single-block panels (maximum split), a small
			// multi-block panel, and the default (typically one panel per
			// layer at this scale)
			for _, panelBytes := range []int{1, 4096, 0} {
				e, m := buildEngine(t, tc.arch, tc.opts, ratio, 1000+uint64(ratio*10), panelBytes)
				for _, batch := range []int{1, 16} {
					x := randInput(r, tc.arch, batch)
					want := cloneData(m.Forward(x, false))
					for _, workers := range []int{1, 8} {
						prev := parallel.SetWorkers(workers)
						got := e.Forward(x)
						parallel.SetWorkers(prev)
						if len(got.Data) != len(want) {
							t.Fatalf("%s ratio %v panel %d batch %d: logits size %d, want %d",
								tc.name, ratio, panelBytes, batch, len(got.Data), len(want))
						}
						for i := range want {
							if got.Data[i] != want[i] {
								t.Fatalf("%s ratio %v panel %d batch %d workers %d: logit %d = %v, want %v",
									tc.name, ratio, panelBytes, batch, workers, i, got.Data[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestForwardReadsWeightsFromImage zeroes every conv/FC kernel in the
// model after the image is built: the streamed logits must still match
// the original plaintext forward, proving the engine's weights come
// from the encrypted image, not from the model tensors.
func TestForwardReadsWeightsFromImage(t *testing.T) {
	r := prng.New(99)
	for _, tc := range testCases() {
		e, m := buildEngine(t, tc.arch, tc.opts, 0.5, 7, 0)
		x := randInput(r, tc.arch, 2)
		want := cloneData(m.Forward(x, false))
		for _, w := range m.WeightLayers {
			if w.Conv != nil {
				w.Conv.Weight.W.Fill(0)
			} else {
				w.FC.Weight.W.Fill(0)
			}
		}
		zeroed := m.Forward(x, false)
		same := true
		for i := range want {
			if zeroed.Data[i] != want[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: zeroing kernels did not change the plaintext forward — test is vacuous", tc.name)
		}
		got := e.Forward(x)
		for i := range want {
			if got.Data[i] != want[i] {
				t.Fatalf("%s: logit %d = %v after zeroing model kernels, want %v (engine read model weights?)",
					tc.name, i, got.Data[i], want[i])
			}
		}
	}
}

// TestForwardStatsAccounting checks the traffic counters: one forward
// stages every weight region exactly once, splitting bytes between the
// keystream and the plaintext bypass according to the plan.
func TestForwardStatsAccounting(t *testing.T) {
	r := prng.New(55)
	e, m := buildEngine(t, models.VGG16Arch().Scale(0.125, 0), core.DefaultOptions(), 0.5, 3, 4096)
	_ = m
	x := randInput(r, models.VGG16Arch().Scale(0.125, 0), 1)
	e.Forward(x)
	st := e.Stats()
	var wantTotal, wantEnc int64
	for _, lp := range e.img.Layout.Plan.Layers {
		reg := e.img.Layout.Region("w:" + lp.Name)
		wantTotal += int64(reg.Size)
		wantEnc += int64(reg.EncryptedBytes())
	}
	if st.Forwards != 1 {
		t.Fatalf("Forwards = %d, want 1", st.Forwards)
	}
	if st.BytesDecrypted != wantEnc {
		t.Fatalf("BytesDecrypted = %d, want %d", st.BytesDecrypted, wantEnc)
	}
	if st.BytesDecrypted+st.BytesCopied != wantTotal {
		t.Fatalf("decrypted+copied = %d, want total region bytes %d", st.BytesDecrypted+st.BytesCopied, wantTotal)
	}
	if st.Panels <= int64(len(e.img.Layout.Plan.Layers)) {
		t.Fatalf("Panels = %d, expected multiple panels per layer at 4 KiB budget", st.Panels)
	}
	e.ResetStats()
	if e.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero the counters")
	}
}

// TestForwardZeroAllocWarm is the allocation regression for the warm
// streaming path: with the pool pinned to one worker (the multi-worker
// path allocates its dispatch closures, as everywhere in this codebase),
// a warm secure forward must not touch the heap.
func TestForwardZeroAllocWarm(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	r := prng.New(44)
	for _, tc := range testCases() {
		e, _ := buildEngine(t, tc.arch, tc.opts, 0.5, 9, 4096)
		x := randInput(r, tc.arch, 2)
		e.Forward(x) // warm-up: builds headers, workspaces, module buffers
		if n := testing.AllocsPerRun(10, func() { e.Forward(x) }); n != 0 {
			t.Fatalf("%s: warm secure forward allocates %.1f objects/op, want 0", tc.name, n)
		}
	}
}

// TestForwardBatchShrinkReusesStorage pins the grow-only workspace
// contract the serving gateway depends on: after one forward at the
// widest batch, narrower batches must allocate nothing (the layer
// outputs re-slice the same storage) and still produce logits
// bit-identical to a never-grown engine at that batch.
func TestForwardBatchShrinkReusesStorage(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	r := prng.New(66)
	for _, tc := range testCases() {
		e, _ := buildEngine(t, tc.arch, tc.opts, 0.5, 31, 4096)
		wide := randInput(r, tc.arch, 8)
		e.Forward(wide) // widest batch: grows every workspace once
		for _, batch := range []int{1, 3, 8} {
			x := randInput(r, tc.arch, batch)
			fresh, _ := buildEngine(t, tc.arch, tc.opts, 0.5, 31, 4096)
			want := cloneData(fresh.Forward(x))
			got := cloneData(e.Forward(x))
			if len(got) != len(want) {
				t.Fatalf("%s batch %d: logits size %d, want %d", tc.name, batch, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s batch %d: logit %d = %v, want %v (shrunk-workspace forward diverged)", tc.name, batch, i, got[i], want[i])
				}
			}
			if n := testing.AllocsPerRun(10, func() { e.Forward(x) }); n != 0 {
				t.Fatalf("%s: forward at batch %d after batch 8 allocates %.1f objects/op, want 0 (workspaces not grow-only)", tc.name, batch, n)
			}
		}
	}
}

// TestNewEngineRejectsMismatchedModel checks construction-time
// validation: an image planned for a different network must not pair
// with this model.
func TestNewEngineRejectsMismatchedModel(t *testing.T) {
	m, err := models.Build(models.VGG16Arch().Scale(0.125, 0), prng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	other, err := models.Build(models.ResNet18Arch().Scale(0.125, 0), prng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPlan(m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	l, err := core.NewLayout(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	img, err := core.NewMemoryImage(l, m, testKey)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(img, other, 0); err == nil {
		t.Fatal("engine accepted an image planned for a different network")
	}
	if _, err := NewEngine(img, m, 0); err != nil {
		t.Fatalf("engine rejected its own model: %v", err)
	}
}
