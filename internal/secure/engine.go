// Package secure runs a planned model's forward pass directly from the
// encrypted MemoryImage — the functional counterpart of the paper's
// claim that smart encryption keeps an accelerator near its plaintext
// roofline. Weights never exist as a whole decrypted tensor: each
// conv/FC layer's weight region is decrypted panel by panel (a panel is
// the block of kernel rows one GEMM tile consumes, a whole number of
// the region's line-aligned kernel-row blocks, so Region.Encrypted
// decides per line what is ciphertext), and counter-mode decryption of
// panel k+1 overlaps GEMM consumption of panel k on the shared worker
// pool. Because CTR pad generation needs only addresses, decrypt and
// compute touch disjoint buffers and the overlap is race-free by
// construction; with one worker the engine degrades to a strict
// decode-then-consume loop that is allocation-free when warm.
//
// Bit-identity with the plaintext nn forward is load-bearing: every
// panel GEMM continues each output element's ascending-p float32
// accumulation chain from its stored value (see tensor.MatMulPanelAccWS),
// so streamed logits equal plaintext logits bit for bit at every pool
// width — the equivalence tests pin this.
//
// Only kernel weights live in the image (that is what EMalloc lays
// out); biases and BatchNorm parameters come from the plaintext model,
// matching the paper's threat model where SE protects the weight
// tensors on the memory bus.
package secure

import (
	"encoding/binary"
	"fmt"
	"math"

	"seal/internal/core"
	"seal/internal/models"
	"seal/internal/nn"
	"seal/internal/parallel"
	"seal/internal/tensor"
)

// DefaultPanelBytes is the target ciphertext bytes decrypted per panel
// when NewEngine is given no explicit size: large enough that the wide
// CTR call and the GEMM both amortize their dispatch, small enough that
// double-buffered panels of the deepest VGG/ResNet layers stay in cache.
const DefaultPanelBytes = 256 << 10

// Stats counts the engine's memory-side work since the last reset.
type Stats struct {
	Forwards       int64 // completed Forward calls
	Panels         int64 // weight panels staged
	BytesDecrypted int64 // ciphertext bytes through the CTR keystream
	BytesCopied    int64 // plaintext weight bytes that bypassed AES
}

// step is one stage of the streamed forward pass: exactly one of mod
// (plaintext passthrough: BN, activation, pooling, flatten), conv, fc
// or blk is set.
type step struct {
	mod  nn.Module
	conv *convStep
	fc   *fcStep
	blk  *blockStep
}

// convStep streams one convolution layer from its weight region.
type convStep struct {
	layer   *nn.Conv2D
	region  *core.Region
	kk      int // KH*KW: kernel-matrix columns per input channel
	cpp     int // channels (kernel-row blocks) per panel
	panels  int
	out     *tensor.Tensor // engine-owned [N, OutC, OutH, OutW]
	qscales []float32      // int8 mode: per-output-channel scales from qs header
}

// fcStep streams one fully-connected layer from its weight region.
type fcStep struct {
	layer   *nn.Linear
	region  *core.Region
	cpp     int // input features per panel
	panels  int
	out     *tensor.Tensor // engine-owned [N, Out]
	qscales []float32      // int8 mode: per-output scales from qs header
}

// blockStep streams a residual block: its convolutions run from the
// image, its BN/ReLU stages and the fused sum+ReLU run exactly as the
// plaintext block does.
type blockStep struct {
	b            *nn.ResidualBlock
	conv1, conv2 *convStep
	shortcut     *convStep // nil for identity shortcuts
	out          *tensor.Tensor
}

// Engine executes a model's inference forward pass with every conv/FC
// weight read through the encrypted MemoryImage. It owns all streaming
// workspaces, so a warm Forward at pool width 1 performs no heap
// allocations; returned tensors are owned by the engine (or, for
// passthrough stages, by the model's modules) and valid until the next
// Forward. An Engine is not safe for concurrent Forward calls, and —
// because it shares the model's BN/activation/pooling modules — must
// not run concurrently with the model's own Forward either.
type Engine struct {
	img        *core.MemoryImage
	model      *models.Model
	panelBytes int
	steps      []step

	// per-batch-item headers and im2col storage, grown on batch change
	batch   int
	colsBuf [][]float32
	colsHdr []*tensor.Tensor
	imgHdr  []*tensor.Tensor
	outHdr  []*tensor.Tensor

	// double-buffered weight panels: decode writes wbuf[1-cur] while the
	// GEMMs read wbuf[cur]; byteBuf stages the decrypted region bytes and
	// is touched only by the (strictly serialized) decode tasks.
	wbuf    [2][]float32
	wHdr    [2]*tensor.Tensor
	byteBuf []byte

	// per-chunk GEMM packing scratch for the item-parallel conv consume
	scratch [][]float32

	maxColsFloats    int
	maxPanelFloats   int
	maxPanelBytes    int
	maxScratchFloats int

	// int8 streaming mode (img.Layout.Int8): weight panels decrypt as
	// one byte per weight and feed the dual-lane int8 GEMM; activations
	// are quantized per item with dynamic symmetric scales, exactly as
	// the nn quantized eval path does, so logits are bit-identical to it.
	int8      bool
	convSteps []*convStep
	fcSteps   []*fcStep

	// per-item int8 state, grown on batch change
	qimgBuf  [][]int8          // quantized input staging
	qcolsBuf [][]int8          // transposed im2col backing
	qcolsHdr []*tensor.Int8Mat // headers over qcolsBuf
	accBuf   [][]int32         // conv int32 accumulators [ncols*OutC]
	actScale []float32         // conv per-item / FC per-row activation scale

	// FC int8 state (whole-batch GEMM)
	qxBuf []int8          // quantized FC activations [batch*maxFCIn]
	qxHdr *tensor.Int8Mat // header over qxBuf
	fcAcc []int32         // FC accumulators [batch*maxFCOut]

	// double-buffered int8 weight panels + their packed dual-lane words
	qwbuf [2][]int8
	qwHdr [2]*tensor.Int8Mat
	qpack [2][]int64

	// per-chunk int8 GEMM workspaces and dequantize staging
	int8WS []*tensor.Int8GEMMWS
	deqBuf [][]float32
	deqHdr []*tensor.Tensor

	maxQImg      int
	maxQCols     int
	maxAccInts   int
	maxPanelInt8 int
	maxPacked    int
	maxFCIn      int
	maxFCOut     int

	stats Stats
}

// NewEngine builds a streaming engine over an encrypted image and the
// model whose plan produced it. panelBytes bounds the bytes decrypted
// per panel (0 → DefaultPanelBytes); every panel is a whole number of
// kernel-row blocks, so it is always line-aligned. The model supplies
// network structure, biases and BN statistics — its conv/FC kernel
// weights are never read by the engine.
func NewEngine(img *core.MemoryImage, m *models.Model, panelBytes int) (*Engine, error) {
	if panelBytes <= 0 {
		panelBytes = DefaultPanelBytes
	}
	layers := img.Layout.Plan.Layers
	if len(m.WeightLayers) != len(layers) {
		return nil, fmt.Errorf("secure: model has %d weight layers, image plan %d", len(m.WeightLayers), len(layers))
	}
	convRegion := make(map[*nn.Conv2D]*core.Region, len(layers))
	fcRegion := make(map[*nn.Linear]*core.Region, len(layers))
	for i, lp := range layers {
		w := m.WeightLayers[i]
		if w.Name != lp.Name {
			return nil, fmt.Errorf("secure: weight layer %d is %s, plan has %s", i, w.Name, lp.Name)
		}
		r := img.Layout.Region("w:" + lp.Name)
		if r == nil {
			return nil, fmt.Errorf("secure: missing weights region for %s", lp.Name)
		}
		if w.Conv != nil {
			convRegion[w.Conv] = r
		} else {
			fcRegion[w.FC] = r
		}
	}
	e := &Engine{img: img, model: m, panelBytes: panelBytes, int8: img.Layout.Int8}
	matched := 0
	newConv := func(c *nn.Conv2D) (*convStep, error) {
		r, ok := convRegion[c]
		if !ok {
			return nil, fmt.Errorf("secure: conv %s has no weights region", c.Name)
		}
		matched++
		return e.addConvStep(c, r), nil
	}
	for _, mod := range m.Net.Modules {
		switch v := mod.(type) {
		case *nn.Conv2D:
			cs, err := newConv(v)
			if err != nil {
				return nil, err
			}
			e.steps = append(e.steps, step{conv: cs})
		case *nn.Linear:
			r, ok := fcRegion[v]
			if !ok {
				return nil, fmt.Errorf("secure: linear %s has no weights region", v.Name)
			}
			matched++
			e.steps = append(e.steps, step{fc: e.addFCStep(v, r)})
		case *nn.ResidualBlock:
			bs := &blockStep{b: v}
			var err error
			if bs.conv1, err = newConv(v.Conv1); err != nil {
				return nil, err
			}
			if bs.conv2, err = newConv(v.Conv2); err != nil {
				return nil, err
			}
			if v.Shortcut != nil {
				if bs.shortcut, err = newConv(v.Shortcut); err != nil {
					return nil, err
				}
			}
			e.steps = append(e.steps, step{blk: bs})
		default:
			// BN, activations, pooling, flatten: plaintext passthrough —
			// they carry no EMalloc'd weights.
			e.steps = append(e.steps, step{mod: mod})
		}
	}
	if matched != len(layers) {
		return nil, fmt.Errorf("secure: matched %d of %d weight layers in the network", matched, len(layers))
	}
	e.byteBuf = make([]byte, e.maxPanelBytes)
	if e.int8 {
		if err := e.initInt8(); err != nil {
			return nil, err
		}
		return e, nil
	}
	e.wbuf[0] = make([]float32, e.maxPanelFloats)
	e.wbuf[1] = make([]float32, e.maxPanelFloats)
	e.wHdr[0] = &tensor.Tensor{}
	e.wHdr[1] = &tensor.Tensor{}
	return e, nil
}

// addConvStep registers a streamed convolution and folds its buffer
// needs into the engine maxima.
func (e *Engine) addConvStep(c *nn.Conv2D, r *core.Region) *convStep {
	g := c.Geom
	kk := g.KH * g.KW
	cs := &convStep{layer: c, region: r, kk: kk}
	cs.cpp, cs.panels = panelSplit(e.panelBytes, int(r.BlockBytes), g.InC)
	ncols := g.OutH() * g.OutW()
	e.convSteps = append(e.convSteps, cs)
	if e.int8 {
		// Keep every panel inside the packed GEMM's single-call depth so
		// the streaming path never hits the splitting fallback.
		if maxCpp := tensor.MaxInt8PanelDepth / kk; cs.cpp > maxCpp {
			cs.cpp = maxCpp
			cs.panels = (g.InC + cs.cpp - 1) / cs.cpp
		}
		e.grow(&e.maxQImg, g.InC*g.InH*g.InW)
		e.grow(&e.maxQCols, g.InC*kk*ncols)
		e.grow(&e.maxAccInts, c.OutC*ncols)
		e.grow(&e.maxPanelInt8, c.OutC*cs.cpp*kk)
		e.grow(&e.maxPacked, tensor.PackedBLen(c.OutC, cs.cpp*kk))
		e.grow(&e.maxPanelBytes, cs.cpp*int(r.BlockBytes))
		return cs
	}
	e.grow(&e.maxColsFloats, g.InC*kk*ncols)
	e.grow(&e.maxPanelFloats, c.OutC*cs.cpp*kk)
	e.grow(&e.maxPanelBytes, cs.cpp*int(r.BlockBytes))
	e.grow(&e.maxScratchFloats, tensor.MatMulPanelLen(cs.cpp*kk))
	return cs
}

// addFCStep registers a streamed fully-connected layer.
func (e *Engine) addFCStep(l *nn.Linear, r *core.Region) *fcStep {
	fs := &fcStep{layer: l, region: r}
	fs.cpp, fs.panels = panelSplit(e.panelBytes, int(r.BlockBytes), l.In)
	e.fcSteps = append(e.fcSteps, fs)
	if e.int8 {
		if fs.cpp > tensor.MaxInt8PanelDepth {
			fs.cpp = tensor.MaxInt8PanelDepth
			fs.panels = (l.In + fs.cpp - 1) / fs.cpp
		}
		e.grow(&e.maxPanelInt8, l.Out*fs.cpp)
		e.grow(&e.maxPacked, tensor.PackedBLen(l.Out, fs.cpp))
		e.grow(&e.maxPanelBytes, fs.cpp*int(r.BlockBytes))
		e.grow(&e.maxFCIn, l.In)
		e.grow(&e.maxFCOut, l.Out)
		return fs
	}
	e.grow(&e.maxPanelFloats, l.Out*fs.cpp)
	e.grow(&e.maxPanelBytes, fs.cpp*int(r.BlockBytes))
	return fs
}

func (e *Engine) grow(max *int, n int) {
	if n > *max {
		*max = n
	}
}

// panelSplit sizes panels for a region: as many whole kernel-row blocks
// as fit the byte budget, at least one.
func panelSplit(panelBytes, blockBytes, blocks int) (cpp, panels int) {
	cpp = panelBytes / blockBytes
	if cpp < 1 {
		cpp = 1
	}
	if cpp > blocks {
		cpp = blocks
	}
	return cpp, (blocks + cpp - 1) / cpp
}

// Stats returns the accumulated counters.
func (e *Engine) Stats() Stats { return e.stats }

// Image returns the encrypted memory image the engine streams from.
func (e *Engine) Image() *core.MemoryImage { return e.img }

// Model returns the model supplying structure, biases and BN state.
func (e *Engine) Model() *models.Model { return e.model }

// ResetStats zeroes the counters.
func (e *Engine) ResetStats() { e.stats = Stats{} }

// Reserve grows the engine's per-item workspace pools to batch width n
// without running a forward, so a serving layer can pre-size every
// engine at install time and keep the steady-state path allocation-free
// from the first request. Layer output tensors are still sized lazily on
// first Forward (they grow once and are then reused for any batch ≤ the
// widest seen).
func (e *Engine) Reserve(n int) { e.ensureBatch(n) }

// PanelBytes returns the configured panel byte budget.
func (e *Engine) PanelBytes() int { return e.panelBytes }

// Int8 reports whether the engine streams a quantized image.
func (e *Engine) Int8() bool { return e.int8 }

// convForward dispatches a streamed convolution to the float or int8
// pipeline according to the image format.
func (e *Engine) convForward(cs *convStep, x *tensor.Tensor) *tensor.Tensor {
	if e.int8 {
		return e.runConvInt8(cs, x)
	}
	return e.runConv(cs, x)
}

// Forward runs the streamed secure forward pass on a batch
// [N, C, H, W] and returns the logits, bit-identical to
// model.Forward(x, false). The returned tensor is valid until the next
// Forward.
func (e *Engine) Forward(x *tensor.Tensor) *tensor.Tensor {
	e.ensureBatch(x.Dim(0))
	for i := range e.steps {
		s := &e.steps[i]
		switch {
		case s.conv != nil:
			x = e.convForward(s.conv, x)
		case s.fc != nil:
			if e.int8 {
				x = e.runFCInt8(s.fc, x)
			} else {
				x = e.runFC(s.fc, x)
			}
		case s.blk != nil:
			x = e.runBlock(s.blk, x)
		default:
			x = s.mod.Forward(x, false)
		}
	}
	e.stats.Forwards++
	return x
}

// ensureBatch grows the per-item header/storage pools to n items and
// the per-chunk scratch pool to the current fan-out width. Warm calls
// with a stable batch and pool width allocate nothing.
func (e *Engine) ensureBatch(n int) {
	e.batch = n
	chunks := parallel.Workers()
	if chunks > n {
		chunks = n
	}
	if e.int8 {
		e.ensureBatchInt8(n, chunks)
		return
	}
	for len(e.colsBuf) < n {
		e.colsBuf = append(e.colsBuf, make([]float32, e.maxColsFloats))
		e.colsHdr = append(e.colsHdr, &tensor.Tensor{})
		e.imgHdr = append(e.imgHdr, &tensor.Tensor{})
		e.outHdr = append(e.outHdr, &tensor.Tensor{})
	}
	for len(e.scratch) < chunks {
		e.scratch = append(e.scratch, make([]float32, e.maxScratchFloats))
	}
}

// runConv streams one convolution: im2col of the whole batch (overlapped
// with the first panel's decrypt), then for each panel the decrypt of
// the next one overlapped with the batch GEMM-accumulate of the current
// one, then the bias pass. Per-element float order matches
// Conv2D.forwardInfer exactly: the panel GEMMs reproduce MatMulIntoWS's
// accumulation chain and the bias adds after the full sum, as there.
func (e *Engine) runConv(cs *convStep, x *tensor.Tensor) *tensor.Tensor {
	c := cs.layer
	g := c.Geom
	n := x.Dim(0)
	oh, ow := g.OutH(), g.OutW()
	ncols := oh * ow
	kkTot := g.InC * cs.kk
	perIn := g.InC * g.InH * g.InW
	perOut := c.OutC * ncols
	out := ensure4(&cs.out, n, c.OutC, oh, ow)
	for i := 0; i < n; i++ {
		aim3(e.imgHdr[i], x.Data[i*perIn:(i+1)*perIn], g.InC, g.InH, g.InW)
		aim2(e.colsHdr[i], e.colsBuf[i][:kkTot*ncols], kkTot, ncols)
		aim2(e.outHdr[i], out.Data[i*perOut:(i+1)*perOut], c.OutC, ncols)
	}
	if parallel.Workers() == 1 {
		// Strict serial path: no closures, no goroutines, no allocations.
		for i := 0; i < n; i++ {
			tensor.Im2ColInto(e.colsHdr[i], e.imgHdr[i], g)
		}
		for t := 0; t < cs.panels; t++ {
			e.decodeConvPanel(cs, t, 0)
			e.consumeConvRange(cs, t, 0, 0, n, e.scratch[0])
		}
	} else {
		// Stage the whole batch's im2col while panel 0 decrypts, then
		// pipeline: decode(t+1) on a spawned worker, consume(t) inline.
		parallel.Do(
			func() { e.im2colAll(cs, n) },
			func() { e.decodeConvPanel(cs, 0, 0) },
		)
		for t := 0; t < cs.panels; t++ {
			t := t
			cur := t & 1
			if t+1 < cs.panels {
				parallel.Do(
					func() { e.decodeConvPanel(cs, t+1, cur^1) },
					func() { e.consumeConv(cs, t, cur, n) },
				)
			} else {
				e.consumeConv(cs, t, cur, n)
			}
		}
	}
	if c.UseBias {
		for i := 0; i < n; i++ {
			for oc := 0; oc < c.OutC; oc++ {
				b := c.Bias.W.Data[oc]
				base := (i*c.OutC + oc) * ncols
				for j := 0; j < ncols; j++ {
					out.Data[base+j] += b
				}
			}
		}
	}
	return out
}

// im2colAll expands every batch item into its cols buffer, sharding
// items across the pool (each item's Im2ColInto may fan out further
// over channels; the semaphore keeps nesting bounded).
func (e *Engine) im2colAll(cs *convStep, n int) {
	g := cs.layer.Geom
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			tensor.Im2ColInto(e.colsHdr[i], e.imgHdr[i], g)
		}
	})
}

// consumeConv folds panel t into every item's output matrix, items
// sharded across the pool with one packing scratch per chunk.
func (e *Engine) consumeConv(cs *convStep, t, parity, n int) {
	chunks := parallel.Workers()
	if chunks > n {
		chunks = n
	}
	if chunks == 1 {
		e.consumeConvRange(cs, t, parity, 0, n, e.scratch[0])
		return
	}
	grain := (n + chunks - 1) / chunks
	parallel.For(n, grain, func(lo, hi int) {
		e.consumeConvRange(cs, t, parity, lo, hi, e.scratch[lo/grain])
	})
}

func (e *Engine) consumeConvRange(cs *convStep, t, parity, lo, hi int, scratch []float32) {
	p0 := t * cs.cpp * cs.kk
	acc := t > 0
	for i := lo; i < hi; i++ {
		tensor.MatMulPanelAccWS(e.outHdr[i], e.wHdr[parity], e.colsHdr[i], p0, acc, scratch)
	}
}

// decodeConvPanel decrypts panel t's kernel-row blocks with one
// run-coalesced DecryptRangeInto and repacks the layout's
// [channel][out][k] bytes into the GEMM's [out][channel-k] panel
// matrix. Decode tasks are strictly serialized by the pipeline, so the
// byte staging buffer is shared; only wbuf[parity] crosses into the
// concurrent consume.
func (e *Engine) decodeConvPanel(cs *convStep, t, parity int) {
	r := cs.region
	c0 := t * cs.cpp
	c1 := c0 + cs.cpp
	if c1 > cs.layer.Geom.InC {
		c1 = cs.layer.Geom.InC
	}
	buf := e.stagePanel(r, c0, c1)
	kp := (c1 - c0) * cs.kk
	outC := cs.layer.OutC
	w := e.wbuf[parity][:outC*kp]
	bb := int(r.BlockBytes)
	for c := c0; c < c1; c++ {
		blk := buf[(c-c0)*bb:]
		col0 := (c - c0) * cs.kk
		for o := 0; o < outC; o++ {
			dst := w[o*kp+col0 : o*kp+col0+cs.kk]
			src := blk[o*cs.kk*4:]
			for k := range dst {
				dst[k] = math.Float32frombits(binary.LittleEndian.Uint32(src[k*4:]))
			}
		}
	}
	aim2(e.wHdr[parity], w, outC, kp)
}

// stagePanel bulk-decrypts blocks [c0, c1) of a weight region into the
// shared byte staging buffer and accounts the traffic split.
func (e *Engine) stagePanel(r *core.Region, c0, c1 int) []byte {
	nb := uint64(c1-c0) * r.BlockBytes
	buf := e.byteBuf[:nb]
	enc, err := e.img.DecryptRangeInto(r, uint64(c0)*r.BlockBytes, buf)
	if err != nil {
		// Geometry is validated at construction; a failure here is a
		// programming error, not a runtime condition.
		panic(err)
	}
	e.stats.BytesDecrypted += int64(enc)
	e.stats.BytesCopied += int64(nb) - int64(enc)
	e.stats.Panels++
	return buf
}

// runFC streams one fully-connected layer with the same pipeline shape
// as runConv; the panel GEMM reproduces MatMulTransBIntoWS's
// per-element order (ascending p, no zero skip) and the bias pass
// matches Linear.Forward.
func (e *Engine) runFC(fs *fcStep, x *tensor.Tensor) *tensor.Tensor {
	l := fs.layer
	n := x.Dim(0)
	out := ensure2(&fs.out, n, l.Out)
	if parallel.Workers() == 1 {
		for t := 0; t < fs.panels; t++ {
			e.decodeFCPanel(fs, t, 0)
			tensor.MatMulTransBPanelAccWS(out, x, t*fs.cpp, e.wHdr[0], t > 0)
		}
	} else {
		e.decodeFCPanel(fs, 0, 0)
		for t := 0; t < fs.panels; t++ {
			t := t
			cur := t & 1
			if t+1 < fs.panels {
				parallel.Do(
					func() { e.decodeFCPanel(fs, t+1, cur^1) },
					func() { tensor.MatMulTransBPanelAccWS(out, x, t*fs.cpp, e.wHdr[cur], t > 0) },
				)
			} else {
				tensor.MatMulTransBPanelAccWS(out, x, t*fs.cpp, e.wHdr[cur], t > 0)
			}
		}
	}
	for i := 0; i < n; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.Bias.W.Data[j]
		}
	}
	return out
}

// decodeFCPanel decrypts input-feature blocks [t*cpp, ...) and repacks
// the layout's [feature][out] bytes into the [out][feature] panel the
// transposed-B GEMM consumes.
func (e *Engine) decodeFCPanel(fs *fcStep, t, parity int) {
	r := fs.region
	c0 := t * fs.cpp
	c1 := c0 + fs.cpp
	if c1 > fs.layer.In {
		c1 = fs.layer.In
	}
	buf := e.stagePanel(r, c0, c1)
	kp := c1 - c0
	outC := fs.layer.Out
	w := e.wbuf[parity][:outC*kp]
	bb := int(r.BlockBytes)
	for c := c0; c < c1; c++ {
		blk := buf[(c-c0)*bb:]
		col := c - c0
		for o := 0; o < outC; o++ {
			w[o*kp+col] = math.Float32frombits(binary.LittleEndian.Uint32(blk[o*4:]))
		}
	}
	aim2(e.wHdr[parity], w, outC, kp)
}

// runBlock streams a residual block in the plaintext block's exact
// evaluation order: full main path, then shortcut, then the fused
// sum+ReLU into an engine-owned buffer.
func (e *Engine) runBlock(bs *blockStep, x *tensor.Tensor) *tensor.Tensor {
	b := bs.b
	main := e.convForward(bs.conv1, x)
	main = b.BN1.Forward(main, false)
	main = b.Relu1.Forward(main, false)
	main = e.convForward(bs.conv2, main)
	main = b.BN2.Forward(main, false)
	short := x
	if bs.shortcut != nil {
		short = e.convForward(bs.shortcut, x)
		short = b.ShortcutBN.Forward(short, false)
	}
	out := ensure4(&bs.out, main.Shape[0], main.Shape[1], main.Shape[2], main.Shape[3])
	for i := range out.Data {
		v := main.Data[i] + short.Data[i]
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// ensure2/ensure4 are ensureShaped for engine-owned outputs, written
// without variadics so the warm path builds no shape slices. They are
// grow-only on capacity: once an engine has run at its widest batch,
// narrower batches re-slice the same storage instead of reallocating,
// so a serving engine that mixes batch sizes stays allocation-free.
// Safe because every engine-owned output is fully overwritten each
// forward (first-panel GEMMs run with acc=false, runBlock assigns every
// element, FC overwrites before adding bias).
func ensure2(ws **tensor.Tensor, a, b int) *tensor.Tensor {
	t := *ws
	if t == nil || cap(t.Data) < a*b {
		t = tensor.New(a, b)
		*ws = t
		return t
	}
	t.Data = t.Data[:a*b]
	t.Shape = t.Shape[:0]
	t.Shape = append(t.Shape, a, b)
	return t
}

func ensure4(ws **tensor.Tensor, a, b, c, d int) *tensor.Tensor {
	t := *ws
	if t == nil || cap(t.Data) < a*b*c*d {
		t = tensor.New(a, b, c, d)
		*ws = t
		return t
	}
	t.Data = t.Data[:a*b*c*d]
	t.Shape = t.Shape[:0]
	t.Shape = append(t.Shape, a, b, c, d)
	return t
}

// aim2/aim3 re-point a reusable tensor header at a storage slice.
func aim2(t *tensor.Tensor, data []float32, a, b int) {
	t.Data = data
	t.Shape = t.Shape[:0]
	t.Shape = append(t.Shape, a, b)
}

func aim3(t *tensor.Tensor, data []float32, a, b, c int) {
	t.Data = data
	t.Shape = t.Shape[:0]
	t.Shape = append(t.Shape, a, b, c)
}
