package dram

import (
	"math"
	"testing"

	"seal/internal/prng"
)

func testCfg() Config {
	return Config{
		Banks: 16, RowBytes: 2048, BytesPerCycle: 42.0,
		TRCD: 10, TRP: 10, TCL: 10, QueueDepth: 32, LineBytes: 64,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Banks: 0, RowBytes: 2048, BytesPerCycle: 1, QueueDepth: 1, LineBytes: 64},
		{Banks: 4, RowBytes: 1000, BytesPerCycle: 1, QueueDepth: 1, LineBytes: 64},
		{Banks: 4, RowBytes: 2048, BytesPerCycle: 0, QueueDepth: 1, LineBytes: 64},
		{Banks: 4, RowBytes: 2048, BytesPerCycle: 1, QueueDepth: 0, LineBytes: 64},
		{Banks: 4, RowBytes: 64, BytesPerCycle: 1, QueueDepth: 1, LineBytes: 128},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSingleRequestLatency(t *testing.T) {
	ch := NewChannel(testCfg())
	r := &Request{ID: 1, Addr: 0, Arrival: 0}
	if !ch.Enqueue(r) {
		t.Fatal("enqueue failed")
	}
	ch.Tick(0)
	// closed bank: TRCD+TCL + burst = 10+10+64/42
	want := 20 + 64.0/42.0
	if math.Abs(r.Done-want) > 1e-9 {
		t.Fatalf("done = %v, want %v", r.Done, want)
	}
	done := ch.Tick(want + 1)
	if len(done) != 1 || done[0] != r {
		t.Fatalf("completion not returned: %v", done)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	cfg := testCfg()
	// same row back-to-back
	ch := NewChannel(cfg)
	a := &Request{ID: 1, Addr: 0}
	b := &Request{ID: 2, Addr: 64}
	ch.Enqueue(a)
	ch.Enqueue(b)
	ch.Drain(0)
	hitDone := b.Done

	// different rows in the same bank
	ch2 := NewChannel(cfg)
	c := &Request{ID: 1, Addr: 0}
	d := &Request{ID: 2, Addr: uint64(cfg.RowBytes * cfg.Banks)} // same bank, next row
	ch2.Enqueue(c)
	ch2.Enqueue(d)
	ch2.Drain(0)
	missDone := d.Done

	if hitDone >= missDone {
		t.Fatalf("row hit (%v) not faster than row miss (%v)", hitDone, missDone)
	}
	if ch.Stats().RowHits != 1 {
		t.Fatalf("row hits = %d", ch.Stats().RowHits)
	}
	if ch2.Stats().RowMisses != 2 {
		t.Fatalf("row misses = %d", ch2.Stats().RowMisses)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := testCfg()
	ch := NewChannel(cfg)
	first := &Request{ID: 1, Addr: 0}
	ch.Enqueue(first)
	ch.Tick(0) // opens row 0 of bank 0
	// Now queue a row-miss (same bank, different row) then a row-hit.
	miss := &Request{ID: 2, Addr: uint64(cfg.RowBytes * cfg.Banks)}
	hit := &Request{ID: 3, Addr: 128}
	ch.Enqueue(miss)
	ch.Enqueue(hit)
	// Drain from a point where the bank is ready so the row-hit is
	// eligible; FR-FCFS must serve it before the older row-miss.
	ch.Drain(25)
	if hit.Done == 0 || miss.Done == 0 {
		t.Fatal("requests not issued")
	}
	if hit.Done >= miss.Done {
		t.Fatalf("FR-FCFS did not prioritize row hit: hit %v, miss %v", hit.Done, miss.Done)
	}
}

func TestQueueDepthEnforced(t *testing.T) {
	cfg := testCfg()
	cfg.QueueDepth = 2
	ch := NewChannel(cfg)
	if !ch.Enqueue(&Request{ID: 1}) || !ch.Enqueue(&Request{ID: 2}) {
		t.Fatal("read queue rejected below capacity")
	}
	if ch.Enqueue(&Request{ID: 3}) {
		t.Fatal("read queue accepted above capacity")
	}
	// the write queue is independent
	if !ch.Enqueue(&Request{ID: 4, Write: true}) || !ch.Enqueue(&Request{ID: 5, Write: true}) {
		t.Fatal("write queue rejected below capacity")
	}
	if ch.Enqueue(&Request{ID: 6, Write: true}) {
		t.Fatal("write queue accepted above capacity")
	}
}

func TestStreamBandwidthBound(t *testing.T) {
	// A long stream of sequential reads must sustain close to the
	// configured bus bandwidth: time/request → LineBytes/BytesPerCycle.
	cfg := testCfg()
	ch := NewChannel(cfg)
	const n = 2000
	issued := 0
	var last float64
	for now := 0.0; issued < n || ch.Busy(); now++ {
		for issued < n && ch.CanEnqueue(false) {
			ch.Enqueue(&Request{ID: uint64(issued), Addr: uint64(issued) * 64, Arrival: now})
			issued++
		}
		for _, r := range ch.Tick(now) {
			if r.Done > last {
				last = r.Done
			}
		}
	}
	perReq := last / n
	ideal := 64.0 / cfg.BytesPerCycle
	if perReq > ideal*1.35 {
		t.Fatalf("stream bandwidth too low: %.3f cycles/request vs ideal %.3f", perReq, ideal)
	}
}

func TestRandomTrafficSlowerThanSequential(t *testing.T) {
	run := func(random bool) float64 {
		cfg := testCfg()
		ch := NewChannel(cfg)
		r := prng.New(42)
		const n = 1000
		issued := 0
		var last float64
		for now := 0.0; issued < n || ch.Busy(); now++ {
			for issued < n && ch.CanEnqueue(false) {
				addr := uint64(issued) * 64
				if random {
					addr = uint64(r.Intn(1<<28)) &^ 63
				}
				ch.Enqueue(&Request{ID: uint64(issued), Addr: addr, Arrival: now})
				issued++
			}
			for _, req := range ch.Tick(now) {
				if req.Done > last {
					last = req.Done
				}
			}
		}
		return last
	}
	seq := run(false)
	rnd := run(true)
	if rnd <= seq {
		t.Fatalf("random traffic (%v) not slower than sequential (%v)", rnd, seq)
	}
}

func TestDrainCompletesEverything(t *testing.T) {
	ch := NewChannel(testCfg())
	for i := 0; i < 10; i++ {
		ch.Enqueue(&Request{ID: uint64(i), Addr: uint64(i) * 4096})
	}
	end := ch.Drain(0)
	if ch.Busy() {
		t.Fatal("channel busy after drain")
	}
	if end <= 0 {
		t.Fatalf("drain end = %v", end)
	}
	st := ch.Stats()
	if st.Reads != 10 || st.Bytes != 640 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriteCounted(t *testing.T) {
	ch := NewChannel(testCfg())
	ch.Enqueue(&Request{ID: 1, Addr: 0, Write: true})
	ch.Drain(0)
	if ch.Stats().Writes != 1 || ch.Stats().Reads != 0 {
		t.Fatalf("stats %+v", ch.Stats())
	}
}

func TestRowHitRateStat(t *testing.T) {
	var s Stats
	if s.RowHitRate() != 0 {
		t.Fatal("empty row hit rate not 0")
	}
	s = Stats{RowHits: 3, RowMisses: 1}
	if s.RowHitRate() != 0.75 {
		t.Fatalf("row hit rate %v", s.RowHitRate())
	}
}

func TestBankParallelismBeatsSingleBank(t *testing.T) {
	// Requests striped across banks should finish sooner than the same
	// number of row-missing requests hammering one bank.
	run := func(sameBank bool) float64 {
		cfg := testCfg()
		cfg.BytesPerCycle = 4 // make latency, not bus, the limiter
		ch := NewChannel(cfg)
		const n = 32
		for i := 0; i < n; i++ {
			addr := uint64(i) * uint64(cfg.RowBytes) // consecutive rows → different banks
			if sameBank {
				addr = uint64(i) * uint64(cfg.RowBytes) * uint64(cfg.Banks) // same bank, new row each time
			}
			ch.Enqueue(&Request{ID: uint64(i), Addr: addr})
		}
		return ch.Drain(0)
	}
	striped := run(false)
	hammered := run(true)
	if striped >= hammered {
		t.Fatalf("bank striping (%v) not faster than single-bank row misses (%v)", striped, hammered)
	}
}
