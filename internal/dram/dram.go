// Package dram models a GDDR5 memory channel: multiple banks with open
// rows, first-ready first-come-first-served (FR-FCFS) scheduling, and a
// shared data bus whose bandwidth is the quantity SEAL is ultimately
// about. Six such channels back the simulated GTX480, matching the
// paper's 384-bit/6-channel configuration (§IV-A).
//
// The model runs on the GPU core-clock domain with float64 timestamps:
// GDDR5 transfers a 64-byte line in under two 700 MHz core cycles, so
// integer core-cycle resolution would quantize bandwidth badly.
package dram

import (
	"fmt"
	"math"
)


// Config describes one memory channel.
type Config struct {
	Banks         int     // independent banks (GDDR5 has 16)
	RowBytes      int     // row-buffer span; must be a power of two
	BytesPerCycle float64 // data-bus bandwidth in bytes per core cycle
	TRCD          float64 // activate→column delay, core cycles
	TRP           float64 // precharge delay, core cycles
	TCL           float64 // column access (CAS) latency, core cycles
	QueueDepth    int     // request queue capacity
	LineBytes     int     // transfer granularity (cache line)
}

// Validate checks structural invariants.
func (c Config) Validate() error {
	if c.Banks <= 0 {
		return fmt.Errorf("dram: non-positive bank count %d", c.Banks)
	}
	if c.RowBytes <= 0 || c.RowBytes&(c.RowBytes-1) != 0 {
		return fmt.Errorf("dram: row size %d not a positive power of two", c.RowBytes)
	}
	if c.BytesPerCycle <= 0 {
		return fmt.Errorf("dram: non-positive bandwidth %v", c.BytesPerCycle)
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("dram: non-positive queue depth %d", c.QueueDepth)
	}
	if c.LineBytes <= 0 || c.LineBytes > c.RowBytes {
		return fmt.Errorf("dram: line size %d invalid for row size %d", c.LineBytes, c.RowBytes)
	}
	return nil
}

// Request is one line-sized transfer.
type Request struct {
	ID      uint64
	Addr    uint64
	Write   bool
	Arrival float64
	Done    float64 // completion time, set by the channel
	Tag     any     // opaque caller payload carried through the queue

	// bank and row are decoded from Addr once at Enqueue so the FR-FCFS
	// scan, which touches every queued request on every scheduling pass,
	// never divides.
	bank int32
	row  uint64
}

type bank struct {
	openRow uint64
	rowOpen bool
	readyAt float64
}

// Stats aggregates channel activity.
type Stats struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	Bytes     uint64
	// BusBusy is the total core cycles the data bus spent transferring
	// bursts. Dividing a window's delta by the window length gives the
	// bus utilization the statistical fast-sim mode extrapolates from.
	BusBusy float64
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	t := s.RowHits + s.RowMisses
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}

// Requests returns the total issued requests of both classes.
func (s Stats) Requests() uint64 { return s.Reads + s.Writes }

// BusUtilization returns the fraction of a window of the given length
// that the data bus spent transferring. Callers measure a window by
// differencing two Stats snapshots.
func (s Stats) BusUtilization(cycles float64) float64 {
	if cycles <= 0 {
		return 0
	}
	return s.BusBusy / cycles
}

// Channel is one GDDR5 channel instance. Reads and writes wait in
// separate queues, as in real memory controllers: demand reads block the
// cores, writebacks are posted, so a write burst must never trap reads
// behind it.
type Channel struct {
	cfg      Config
	readQ    []*Request
	writeQ   []*Request
	inflight []*Request
	banks    []bank
	busFree  float64
	stats    Stats
	doneBuf  []*Request // Tick's return slice, reused across cycles
	// nextEv lower-bounds the next time a Tick call can change channel
	// state (see NextEvent). Maintained incrementally: Enqueue folds in
	// the new request's eligibility estimate, Tick recomputes it from the
	// scheduling scan it performs anyway.
	nextEv float64
	// Decode constants for bankAndRow. RowBytes is a validated power of
	// two, so the row index is always a shift; bank decode uses the
	// mask/shift pair when Banks is a power of two (the GDDR5 case) and
	// falls back to division otherwise.
	rowShift  uint
	bankShift uint
	bankMask  uint64
	bankPow2  bool
}

// NewChannel constructs a channel; it panics on invalid configuration.
func NewChannel(cfg Config) *Channel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	ch := &Channel{cfg: cfg, banks: make([]bank, cfg.Banks), nextEv: math.Inf(1)}
	for 1<<ch.rowShift != cfg.RowBytes {
		ch.rowShift++
	}
	if b := uint64(cfg.Banks); b&(b-1) == 0 {
		ch.bankPow2 = true
		ch.bankMask = b - 1
		for 1<<ch.bankShift != cfg.Banks {
			ch.bankShift++
		}
	}
	return ch
}

// Config returns the channel configuration.
func (ch *Channel) Config() Config { return ch.cfg }

// BytesPerCycle returns the configured peak data-bus bandwidth, the
// hard ceiling any extrapolated service rate must respect.
func (ch *Channel) BytesPerCycle() float64 { return ch.cfg.BytesPerCycle }

// QueueLen returns the number of requests waiting to issue.
func (ch *Channel) QueueLen() int { return len(ch.readQ) + len(ch.writeQ) }

// InflightLen returns the number of issued-but-incomplete requests.
func (ch *Channel) InflightLen() int { return len(ch.inflight) }

// CanEnqueue reports whether the queue for the given class has room.
func (ch *Channel) CanEnqueue(write bool) bool {
	if write {
		return len(ch.writeQ) < ch.cfg.QueueDepth
	}
	return len(ch.readQ) < ch.cfg.QueueDepth
}

// Enqueue adds a request to its class queue; it returns false when that
// queue is full.
func (ch *Channel) Enqueue(r *Request) bool {
	if !ch.CanEnqueue(r.Write) {
		return false
	}
	b, row := ch.bankAndRow(r.Addr)
	r.bank, r.row = int32(b), row
	if r.Write {
		ch.writeQ = append(ch.writeQ, r)
	} else {
		ch.readQ = append(ch.readQ, r)
	}
	// The eligibility estimate uses the bank's current readyAt, which can
	// only grow before this request is scanned again — so the bound may
	// be early (costing a no-op Tick that re-tightens it) but never late.
	t := r.Arrival
	if ready := ch.banks[r.bank].readyAt; ready > t {
		t = ready
	}
	if t < ch.nextEv {
		ch.nextEv = t
	}
	return true
}

func (ch *Channel) bankAndRow(addr uint64) (int, uint64) {
	row := addr >> ch.rowShift
	if ch.bankPow2 {
		return int(row & ch.bankMask), row >> ch.bankShift
	}
	return int(row % uint64(ch.cfg.Banks)), row / uint64(ch.cfg.Banks)
}

// Tick advances the channel to time now: it retires finished requests
// (returned to the caller) and issues at most one queued request. The
// returned slice is valid until the next Tick call.
func (ch *Channel) Tick(now float64) []*Request {
	// Completions must come back in time order. The shared bus serializes
	// Done times in issue order (each Done starts at or after the previous
	// busFree), so inflight is sorted and the retired requests are exactly
	// its leading run — no filtering or sorting pass needed.
	done := ch.doneBuf[:0]
	if cut := ch.retireCut(now); cut > 0 {
		done = append(done, ch.inflight[:cut]...)
		n := copy(ch.inflight, ch.inflight[cut:])
		ch.inflight = ch.inflight[:n]
	}
	ch.doneBuf = done

	if len(ch.readQ) == 0 && len(ch.writeQ) == 0 {
		ch.nextEv = ch.headDone()
		return done
	}
	// FR-FCFS over ready banks with read priority: demand reads block
	// SMs, while writebacks are posted, so the scheduler serves reads
	// first and drains writes opportunistically — switching to write-
	// drain mode when the write queue passes its high-water mark
	// (standard memory-controller policy). Within each class, pass 1
	// takes the oldest request hitting an open row of a ready bank;
	// pass 2 the oldest request with a ready bank. Requests whose banks
	// are still busy stay queued so row hits behind them can bypass —
	// the essence of FR-FCFS.
	writeDrain := len(ch.writeQ) >= ch.cfg.QueueDepth*3/4
	first, second := &ch.readQ, &ch.writeQ
	if writeDrain {
		first, second = &ch.writeQ, &ch.readQ
	}
	q := first
	pick, elig := pickEligible(ch, *first, now)
	if pick < 0 {
		q = second
		var elig2 float64
		pick, elig2 = pickEligible(ch, *second, now)
		if elig2 < elig {
			elig = elig2
		}
	}
	if pick < 0 {
		// Nothing issueable: both scans saw every queued request, so elig
		// is the exact earliest future eligibility.
		if hd := ch.headDone(); hd < elig {
			elig = hd
		}
		ch.nextEv = elig
		return done
	}
	r := (*q)[pick]
	*q = append((*q)[:pick], (*q)[pick+1:]...)
	ch.issue(r, now)
	// After an issue the bank states just changed, so recompute the next
	// issue opportunity from scratch: the earliest eligibility across both
	// class queues (clamped to the next cycle — Tick issues one request
	// per call) or, failing that, the first in-flight completion, which is
	// finite here since the issue just went in flight.
	ev := ch.minElig(ch.readQ, now)
	if ev > now+1 {
		if e := ch.minElig(ch.writeQ, now); e < ev {
			ev = e
		}
	}
	if hd := ch.headDone(); hd < ev {
		ev = hd
	}
	ch.nextEv = ev
	return done
}

// retireCut returns the length of inflight's leading run of requests
// finished at time now.
func (ch *Channel) retireCut(now float64) int {
	cut := 0
	for cut < len(ch.inflight) && ch.inflight[cut].Done <= now {
		cut++
	}
	return cut
}

// minElig returns the earliest future time a request in q becomes
// issueable under the current bank states, clamped to now+1 (a request
// already eligible can only be served by the next Tick call); +Inf for
// an empty queue.
func (ch *Channel) minElig(q []*Request, now float64) float64 {
	min := math.Inf(1)
	for _, r := range q {
		t := r.Arrival
		if ready := ch.banks[r.bank].readyAt; ready > t {
			t = ready
		}
		if t <= now {
			return now + 1
		}
		if t < min {
			min = t
		}
	}
	return min
}

// headDone returns the earliest in-flight completion time, or +Inf. The
// shared bus serializes Done times in issue order, so inflight is sorted
// and its head is the minimum.
func (ch *Channel) headDone() float64 {
	if len(ch.inflight) > 0 {
		return ch.inflight[0].Done
	}
	return math.Inf(1)
}

// pickEligible returns the index to issue within one class queue,
// preferring the oldest open-row hit on a ready bank, then the oldest
// request on a ready bank; -1 if none is issueable now. The second
// return is the earliest future eligibility among the requests scanned —
// exact when the scan completed with no pick, unused otherwise (an early
// row-hit return leaves it partial).
func pickEligible(ch *Channel, q []*Request, now float64) (int, float64) {
	fallback := -1
	elig := math.Inf(1)
	for i, r := range q {
		bk := &ch.banks[r.bank]
		t := r.Arrival
		if bk.readyAt > t {
			t = bk.readyAt
		}
		if t > now {
			if t < elig {
				elig = t
			}
			continue
		}
		if bk.rowOpen && bk.openRow == r.row {
			return i, elig
		}
		if fallback < 0 {
			fallback = i
		}
	}
	return fallback, elig
}

func (ch *Channel) issue(r *Request, now float64) {
	row := r.row
	bk := &ch.banks[r.bank]
	start := now
	if bk.readyAt > start {
		start = bk.readyAt
	}
	// prepLat is the row preparation time before the column command; TCL
	// then elapses before data, which occupies the bus for the burst.
	// The bank accepts its next column command after the burst drains
	// (tCCD ≈ burst), so open-row streams run at full bus rate while the
	// CAS latency pipelines.
	var prepLat float64
	switch {
	case bk.rowOpen && bk.openRow == row:
		prepLat = 0
		ch.stats.RowHits++
	case bk.rowOpen:
		prepLat = ch.cfg.TRP + ch.cfg.TRCD
		ch.stats.RowMisses++
	default:
		prepLat = ch.cfg.TRCD
		ch.stats.RowMisses++
	}
	bk.rowOpen = true
	bk.openRow = row
	burst := float64(ch.cfg.LineBytes) / ch.cfg.BytesPerCycle
	colCmd := start + prepLat
	dataStart := colCmd + ch.cfg.TCL
	if ch.busFree > dataStart {
		dataStart = ch.busFree
	}
	r.Done = dataStart + burst
	ch.busFree = r.Done
	bk.readyAt = colCmd + burst
	ch.inflight = append(ch.inflight, r)

	if r.Write {
		ch.stats.Writes++
	} else {
		ch.stats.Reads++
	}
	ch.stats.Bytes += uint64(ch.cfg.LineBytes)
	ch.stats.BusBusy += burst
}

// NextEvent lower-bounds the next time a Tick call can change channel
// state: the first in-flight completion, or the first instant a queued
// request becomes issueable (its arrival passed and its bank ready).
// Tick calls strictly before the returned time are guaranteed no-ops,
// which is what lets the simulator fast-forward over DRAM dead time.
// Returns +Inf when the channel is empty. The bound may lie in the past
// or be conservatively early (Tick issues one request per call and
// Enqueue estimates with the bank's current readyAt); a Tick at a
// too-early bound is a harmless no-op that re-tightens it.
func (ch *Channel) NextEvent() float64 { return ch.nextEv }

// Drain advances time until everything queued and in flight finishes,
// returning the completion time of the last request.
func (ch *Channel) Drain(now float64) float64 {
	last := now
	for ch.QueueLen() > 0 || len(ch.inflight) > 0 {
		done := ch.Tick(now)
		for _, r := range done {
			if r.Done > last {
				last = r.Done
			}
		}
		now++
	}
	return last
}

// Stats returns accumulated counters.
func (ch *Channel) Stats() Stats { return ch.stats }

// Reset restores the channel to its just-constructed state — empty
// queues, closed rows, idle bus, zero statistics — while keeping the
// backing allocations for reuse.
func (ch *Channel) Reset() {
	ch.readQ = ch.readQ[:0]
	ch.writeQ = ch.writeQ[:0]
	ch.inflight = ch.inflight[:0]
	for i := range ch.banks {
		ch.banks[i] = bank{}
	}
	ch.busFree = 0
	ch.stats = Stats{}
	ch.doneBuf = ch.doneBuf[:0]
	ch.nextEv = math.Inf(1)
}

// Busy reports whether the channel still has pending work.
func (ch *Channel) Busy() bool { return ch.QueueLen() > 0 || len(ch.inflight) > 0 }
