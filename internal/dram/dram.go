// Package dram models a GDDR5 memory channel: multiple banks with open
// rows, first-ready first-come-first-served (FR-FCFS) scheduling, and a
// shared data bus whose bandwidth is the quantity SEAL is ultimately
// about. Six such channels back the simulated GTX480, matching the
// paper's 384-bit/6-channel configuration (§IV-A).
//
// The model runs on the GPU core-clock domain with float64 timestamps:
// GDDR5 transfers a 64-byte line in under two 700 MHz core cycles, so
// integer core-cycle resolution would quantize bandwidth badly.
package dram

import (
	"fmt"
)

// Config describes one memory channel.
type Config struct {
	Banks         int     // independent banks (GDDR5 has 16)
	RowBytes      int     // row-buffer span; must be a power of two
	BytesPerCycle float64 // data-bus bandwidth in bytes per core cycle
	TRCD          float64 // activate→column delay, core cycles
	TRP           float64 // precharge delay, core cycles
	TCL           float64 // column access (CAS) latency, core cycles
	QueueDepth    int     // request queue capacity
	LineBytes     int     // transfer granularity (cache line)
}

// Validate checks structural invariants.
func (c Config) Validate() error {
	if c.Banks <= 0 {
		return fmt.Errorf("dram: non-positive bank count %d", c.Banks)
	}
	if c.RowBytes <= 0 || c.RowBytes&(c.RowBytes-1) != 0 {
		return fmt.Errorf("dram: row size %d not a positive power of two", c.RowBytes)
	}
	if c.BytesPerCycle <= 0 {
		return fmt.Errorf("dram: non-positive bandwidth %v", c.BytesPerCycle)
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("dram: non-positive queue depth %d", c.QueueDepth)
	}
	if c.LineBytes <= 0 || c.LineBytes > c.RowBytes {
		return fmt.Errorf("dram: line size %d invalid for row size %d", c.LineBytes, c.RowBytes)
	}
	return nil
}

// Request is one line-sized transfer.
type Request struct {
	ID      uint64
	Addr    uint64
	Write   bool
	Arrival float64
	Done    float64 // completion time, set by the channel
	Tag     any     // opaque caller payload carried through the queue
}

type bank struct {
	openRow uint64
	rowOpen bool
	readyAt float64
}

// Stats aggregates channel activity.
type Stats struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	Bytes     uint64
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	t := s.RowHits + s.RowMisses
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}

// Channel is one GDDR5 channel instance. Reads and writes wait in
// separate queues, as in real memory controllers: demand reads block the
// cores, writebacks are posted, so a write burst must never trap reads
// behind it.
type Channel struct {
	cfg      Config
	readQ    []*Request
	writeQ   []*Request
	inflight []*Request
	banks    []bank
	busFree  float64
	stats    Stats
	doneBuf  []*Request // Tick's return slice, reused across cycles
}

// NewChannel constructs a channel; it panics on invalid configuration.
func NewChannel(cfg Config) *Channel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Channel{cfg: cfg, banks: make([]bank, cfg.Banks)}
}

// Config returns the channel configuration.
func (ch *Channel) Config() Config { return ch.cfg }

// QueueLen returns the number of requests waiting to issue.
func (ch *Channel) QueueLen() int { return len(ch.readQ) + len(ch.writeQ) }

// InflightLen returns the number of issued-but-incomplete requests.
func (ch *Channel) InflightLen() int { return len(ch.inflight) }

// CanEnqueue reports whether the queue for the given class has room.
func (ch *Channel) CanEnqueue(write bool) bool {
	if write {
		return len(ch.writeQ) < ch.cfg.QueueDepth
	}
	return len(ch.readQ) < ch.cfg.QueueDepth
}

// Enqueue adds a request to its class queue; it returns false when that
// queue is full.
func (ch *Channel) Enqueue(r *Request) bool {
	if !ch.CanEnqueue(r.Write) {
		return false
	}
	if r.Write {
		ch.writeQ = append(ch.writeQ, r)
	} else {
		ch.readQ = append(ch.readQ, r)
	}
	return true
}

func (ch *Channel) bankAndRow(addr uint64) (int, uint64) {
	row := addr / uint64(ch.cfg.RowBytes)
	return int(row % uint64(ch.cfg.Banks)), row / uint64(ch.cfg.Banks)
}

// Tick advances the channel to time now: it retires finished requests
// (returned to the caller) and issues at most one queued request. The
// returned slice is valid until the next Tick call.
func (ch *Channel) Tick(now float64) []*Request {
	done := ch.doneBuf[:0]
	keep := ch.inflight[:0]
	for _, r := range ch.inflight {
		if r.Done <= now {
			done = append(done, r)
		} else {
			keep = append(keep, r)
		}
	}
	ch.inflight = keep
	ch.doneBuf = done
	// Completions must come back in time order. The shared bus already
	// serializes Done times in issue order, so inflight is sorted and
	// this insertion pass is a straight scan; it guards the invariant
	// without sort.Slice's per-call closure allocation.
	for i := 1; i < len(done); i++ {
		for j := i; j > 0 && done[j].Done < done[j-1].Done; j-- {
			done[j], done[j-1] = done[j-1], done[j]
		}
	}

	if len(ch.readQ) == 0 && len(ch.writeQ) == 0 {
		return done
	}
	// FR-FCFS over ready banks with read priority: demand reads block
	// SMs, while writebacks are posted, so the scheduler serves reads
	// first and drains writes opportunistically — switching to write-
	// drain mode when the write queue passes its high-water mark
	// (standard memory-controller policy). Within each class, pass 1
	// takes the oldest request hitting an open row of a ready bank;
	// pass 2 the oldest request with a ready bank. Requests whose banks
	// are still busy stay queued so row hits behind them can bypass —
	// the essence of FR-FCFS.
	writeDrain := len(ch.writeQ) >= ch.cfg.QueueDepth*3/4
	first, second := &ch.readQ, &ch.writeQ
	if writeDrain {
		first, second = &ch.writeQ, &ch.readQ
	}
	q, pick := first, pickEligible(ch, *first, now)
	if pick < 0 {
		q, pick = second, pickEligible(ch, *second, now)
	}
	if pick < 0 {
		return done
	}
	r := (*q)[pick]
	*q = append((*q)[:pick], (*q)[pick+1:]...)
	ch.issue(r, now)
	return done
}

// pickEligible returns the index to issue within one class queue,
// preferring the oldest open-row hit on a ready bank, then the oldest
// request on a ready bank; -1 if none is issueable now.
func pickEligible(ch *Channel, q []*Request, now float64) int {
	fallback := -1
	for i, r := range q {
		if r.Arrival > now {
			continue
		}
		b, row := ch.bankAndRow(r.Addr)
		bk := &ch.banks[b]
		if bk.readyAt > now {
			continue
		}
		if bk.rowOpen && bk.openRow == row {
			return i
		}
		if fallback < 0 {
			fallback = i
		}
	}
	return fallback
}

func (ch *Channel) issue(r *Request, now float64) {
	b, row := ch.bankAndRow(r.Addr)
	bk := &ch.banks[b]
	start := now
	if bk.readyAt > start {
		start = bk.readyAt
	}
	// prepLat is the row preparation time before the column command; TCL
	// then elapses before data, which occupies the bus for the burst.
	// The bank accepts its next column command after the burst drains
	// (tCCD ≈ burst), so open-row streams run at full bus rate while the
	// CAS latency pipelines.
	var prepLat float64
	switch {
	case bk.rowOpen && bk.openRow == row:
		prepLat = 0
		ch.stats.RowHits++
	case bk.rowOpen:
		prepLat = ch.cfg.TRP + ch.cfg.TRCD
		ch.stats.RowMisses++
	default:
		prepLat = ch.cfg.TRCD
		ch.stats.RowMisses++
	}
	bk.rowOpen = true
	bk.openRow = row
	burst := float64(ch.cfg.LineBytes) / ch.cfg.BytesPerCycle
	colCmd := start + prepLat
	dataStart := colCmd + ch.cfg.TCL
	if ch.busFree > dataStart {
		dataStart = ch.busFree
	}
	r.Done = dataStart + burst
	ch.busFree = r.Done
	bk.readyAt = colCmd + burst
	ch.inflight = append(ch.inflight, r)

	if r.Write {
		ch.stats.Writes++
	} else {
		ch.stats.Reads++
	}
	ch.stats.Bytes += uint64(ch.cfg.LineBytes)
}

// Drain advances time until everything queued and in flight finishes,
// returning the completion time of the last request.
func (ch *Channel) Drain(now float64) float64 {
	last := now
	for ch.QueueLen() > 0 || len(ch.inflight) > 0 {
		done := ch.Tick(now)
		for _, r := range done {
			if r.Done > last {
				last = r.Done
			}
		}
		now++
	}
	return last
}

// Stats returns accumulated counters.
func (ch *Channel) Stats() Stats { return ch.stats }

// Busy reports whether the channel still has pending work.
func (ch *Channel) Busy() bool { return ch.QueueLen() > 0 || len(ch.inflight) > 0 }
