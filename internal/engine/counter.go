package engine

import (
	"fmt"

	"seal/internal/cache"
)

// CounterConfig describes the counter organization of counter-mode
// memory encryption: one write counter per data line, packed into
// line-sized counter blocks that live in a reserved DRAM region and are
// cached on chip (paper §II-B, [24]).
type CounterConfig struct {
	DataLineBytes  int    // protected-data line size (64)
	CounterBytes   int    // bytes per counter (8)
	CacheSizeBytes int    // on-chip counter cache capacity
	CacheWays      int    // counter cache associativity
	CounterBase    uint64 // DRAM base address of the counter region
}

// Validate checks structural invariants.
func (c CounterConfig) Validate() error {
	if c.DataLineBytes <= 0 || c.CounterBytes <= 0 || c.DataLineBytes%c.CounterBytes != 0 {
		return fmt.Errorf("engine: invalid counter geometry %+v", c)
	}
	return cache.Config{SizeBytes: c.CacheSizeBytes, LineBytes: c.DataLineBytes, Ways: c.CacheWays}.Validate()
}

// CountersPerLine returns how many data-line counters pack into one
// counter-cache line.
func (c CounterConfig) CountersPerLine() int { return c.DataLineBytes / c.CounterBytes }

// CounterLineAddr maps a protected data address to the DRAM address of
// the counter block covering it. Each counter block covers
// CountersPerLine consecutive data lines.
func (c CounterConfig) CounterLineAddr(dataAddr uint64) uint64 {
	dataLine := dataAddr / uint64(c.DataLineBytes)
	block := dataLine / uint64(c.CountersPerLine())
	return c.CounterBase + block*uint64(c.DataLineBytes)
}

// CounterResult reports the outcome of a counter lookup.
type CounterResult struct {
	Hit bool
	// MissAddr is the counter-block DRAM address to fetch on a miss.
	MissAddr uint64
	// Writeback and WritebackAddr report a dirty counter block evicted by
	// the fill, which costs an extra DRAM write.
	Writeback     bool
	WritebackAddr uint64
}

// CounterCache models the on-chip counter cache plus the functional
// per-line write counters used when the simulator also performs real
// encryption (the bus-snooper demo).
type CounterCache struct {
	cfg    CounterConfig
	cache  *cache.Cache
	values map[uint64]uint64 // data line address -> write counter
}

// NewCounterCache constructs the counter cache; it panics on an invalid
// configuration.
func NewCounterCache(cfg CounterConfig) *CounterCache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &CounterCache{
		cfg: cfg,
		cache: cache.New(cache.Config{
			SizeBytes: cfg.CacheSizeBytes,
			LineBytes: cfg.DataLineBytes,
			Ways:      cfg.CacheWays,
		}),
		values: map[uint64]uint64{},
	}
}

// Config returns the counter configuration.
func (cc *CounterCache) Config() CounterConfig { return cc.cfg }

// Lookup accesses the counter covering dataAddr. A read leaves the
// counter unchanged; a write increments it (and dirties the cached
// block, since counters are write-allocated on chip).
func (cc *CounterCache) Lookup(dataAddr uint64, write bool) CounterResult {
	ctrAddr := cc.cfg.CounterLineAddr(dataAddr)
	res := cc.cache.Access(ctrAddr, write)
	out := CounterResult{Hit: res.Hit}
	if !res.Hit {
		out.MissAddr = ctrAddr
	}
	if res.Writeback {
		out.Writeback = true
		out.WritebackAddr = res.EvictedAddr
	}
	if write {
		line := dataAddr / uint64(cc.cfg.DataLineBytes)
		cc.values[line]++
	}
	return out
}

// Value returns the current write counter for the data line containing
// addr (0 before the first write).
func (cc *CounterCache) Value(addr uint64) uint64 {
	return cc.values[addr/uint64(cc.cfg.DataLineBytes)]
}

// HitRate returns the counter cache hit rate so far.
func (cc *CounterCache) HitRate() float64 { return cc.cache.Stats().HitRate() }

// Stats exposes the underlying cache statistics.
func (cc *CounterCache) Stats() cache.Stats { return cc.cache.Stats() }

// Reset clears cache contents, statistics and counter values.
func (cc *CounterCache) Reset() {
	cc.cache.Reset()
	cc.values = map[uint64]uint64{}
}
