package engine

import (
	"math"
	"testing"
)

const coreHz = 700e6

func TestTableIPresets(t *testing.T) {
	specs := TableI()
	if len(specs) != 5 {
		t.Fatalf("Table I has %d rows, want 5", len(specs))
	}
	// paper row order and throughput column
	wantGBs := []float64{1.5, 6.6, 8, 16, 19}
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("row %d invalid: %v", i, err)
		}
		if s.ThroughputGBs != wantGBs[i] {
			t.Errorf("row %d throughput %v, want %v", i, s.ThroughputGBs, wantGBs[i])
		}
	}
	if SpecModeled.LatencyCycles != 20 || SpecModeled.ThroughputGBs != 8 {
		t.Fatalf("modeled spec %+v does not match paper §IV-A", SpecModeled)
	}
}

func TestBytesPerCycleDerivation(t *testing.T) {
	e := New(SpecModeled, coreHz)
	want := 8e9 / coreHz // ≈11.43 B/cycle
	if math.Abs(e.BytesPerCycle()-want) > 1e-9 {
		t.Fatalf("bytes/cycle = %v, want %v", e.BytesPerCycle(), want)
	}
}

func TestSingleLineLatency(t *testing.T) {
	e := New(SpecModeled, coreHz)
	done := e.Process(0, 64)
	want := 64/e.BytesPerCycle() + 20
	if math.Abs(done-want) > 1e-9 {
		t.Fatalf("done = %v, want %v", done, want)
	}
}

func TestPipelineThroughputLimit(t *testing.T) {
	// n back-to-back lines: completion spacing must equal the input slot
	// time, and total time ≈ n*slot + latency (pipelining).
	e := New(SpecModeled, coreHz)
	const n = 100
	var last float64
	for i := 0; i < n; i++ {
		last = e.Process(0, 64)
	}
	slot := 64 / e.BytesPerCycle()
	want := n*slot + 20
	if math.Abs(last-want) > 1e-6 {
		t.Fatalf("last completion %v, want %v", last, want)
	}
	if math.Abs(e.Stats().BusyCycle-n*slot) > 1e-6 {
		t.Fatalf("busy cycles %v, want %v", e.Stats().BusyCycle, n*slot)
	}
}

func TestIdleEngineIncursOnlyLatency(t *testing.T) {
	e := New(SpecModeled, coreHz)
	e.Process(0, 64)
	// a line arriving long after the first must not queue
	done := e.Process(1000, 64)
	want := 1000 + 64/e.BytesPerCycle() + 20
	if math.Abs(done-want) > 1e-9 {
		t.Fatalf("done = %v, want %v", done, want)
	}
}

func TestFasterEngineFinishesSooner(t *testing.T) {
	slow := New(SpecMorioka, coreHz) // 1.5 GB/s
	fast := New(SpecSayilar, coreHz) // 16 GB/s
	var slowDone, fastDone float64
	for i := 0; i < 50; i++ {
		slowDone = slow.Process(0, 64)
		fastDone = fast.Process(0, 64)
	}
	if fastDone >= slowDone {
		t.Fatalf("16 GB/s engine (%v) not faster than 1.5 GB/s (%v)", fastDone, slowDone)
	}
}

func TestEngineReset(t *testing.T) {
	e := New(SpecModeled, coreHz)
	e.Process(0, 64)
	e.Reset()
	if e.FreeAt() != 0 || e.Stats() != (Stats{}) {
		t.Fatal("reset incomplete")
	}
}

func TestSpecValidateRejectsBad(t *testing.T) {
	if err := (Spec{ThroughputGBs: 0}).Validate(); err == nil {
		t.Fatal("zero throughput accepted")
	}
	if err := (Spec{ThroughputGBs: 1, LatencyCycles: -1}).Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func counterCfg(size int) CounterConfig {
	return CounterConfig{
		DataLineBytes:  64,
		CounterBytes:   8,
		CacheSizeBytes: size,
		CacheWays:      4,
		CounterBase:    1 << 40,
	}
}

func TestCounterConfigGeometry(t *testing.T) {
	cfg := counterCfg(24 * 1024)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.CountersPerLine() != 8 {
		t.Fatalf("counters per line = %d, want 8", cfg.CountersPerLine())
	}
	// data lines 0..7 share a counter block; line 8 starts the next
	a0 := cfg.CounterLineAddr(0)
	a7 := cfg.CounterLineAddr(7 * 64)
	a8 := cfg.CounterLineAddr(8 * 64)
	if a0 != a7 {
		t.Fatalf("lines 0 and 7 in different counter blocks: %#x vs %#x", a0, a7)
	}
	if a8 != a0+64 {
		t.Fatalf("line 8 counter block %#x, want %#x", a8, a0+64)
	}
	if a0 < cfg.CounterBase {
		t.Fatalf("counter block below region base")
	}
}

func TestCounterCacheHitMiss(t *testing.T) {
	cc := NewCounterCache(counterCfg(24 * 1024))
	r := cc.Lookup(0, false)
	if r.Hit {
		t.Fatal("cold counter lookup hit")
	}
	if r.MissAddr != cc.Config().CounterLineAddr(0) {
		t.Fatalf("miss addr %#x", r.MissAddr)
	}
	// any of the 8 lines covered by the same block now hits
	for line := uint64(0); line < 8; line++ {
		if r := cc.Lookup(line*64, false); !r.Hit {
			t.Fatalf("line %d counter missed after fill", line)
		}
	}
	if r := cc.Lookup(8*64, false); r.Hit {
		t.Fatal("uncovered line hit")
	}
}

func TestCounterIncrementsOnWrite(t *testing.T) {
	cc := NewCounterCache(counterCfg(24 * 1024))
	if cc.Value(0x80) != 0 {
		t.Fatal("counter nonzero before writes")
	}
	cc.Lookup(0x80, true)
	cc.Lookup(0x80, true)
	cc.Lookup(0x80, false) // read must not increment
	if cc.Value(0x80) != 2 {
		t.Fatalf("counter = %d, want 2", cc.Value(0x80))
	}
	if cc.Value(0xC0) != 0 {
		t.Fatal("neighbouring line counter affected")
	}
}

func TestCounterWritebackOnDirtyEviction(t *testing.T) {
	// tiny counter cache: 1KB, 4-way, 64B lines → 4 sets. Writes dirty the
	// blocks; streaming far apart evicts dirty blocks → writebacks.
	cc := NewCounterCache(counterCfg(1024))
	sawWriteback := false
	for i := uint64(0); i < 64; i++ {
		res := cc.Lookup(i*64*8*4, true) // each touch maps to a new counter block, stride sets
		if res.Writeback {
			sawWriteback = true
			if res.WritebackAddr < cc.Config().CounterBase {
				t.Fatalf("writeback addr %#x outside counter region", res.WritebackAddr)
			}
		}
	}
	if !sawWriteback {
		t.Fatal("no dirty counter writebacks observed")
	}
}

func TestCounterCacheHitRateGrowsWithSize(t *testing.T) {
	// The Figure-1b premise at the counter-cache level.
	trace := make([]uint64, 0, 50000)
	for i := 0; i < 50000; i++ {
		trace = append(trace, uint64(i%12000)*64)
	}
	prev := -1.0
	for _, size := range []int{24 * 1024, 96 * 1024, 384 * 1024} {
		cc := NewCounterCache(counterCfg(size))
		for _, a := range trace {
			cc.Lookup(a, false)
		}
		hr := cc.HitRate()
		if hr < prev {
			t.Fatalf("hit rate fell from %v to %v at size %d", prev, hr, size)
		}
		prev = hr
	}
	if prev < 0.9 {
		t.Fatalf("384KB counter cache hit rate %v, want ≥0.9 for 12000-line working set", prev)
	}
}

func TestCounterCacheReset(t *testing.T) {
	cc := NewCounterCache(counterCfg(24 * 1024))
	cc.Lookup(0, true)
	cc.Reset()
	if cc.Value(0) != 0 {
		t.Fatal("counter survived reset")
	}
	if r := cc.Lookup(0, false); r.Hit {
		t.Fatal("cache content survived reset")
	}
}
