// Package engine models the hardware AES encryption engines that sit in
// each memory controller of the secure GPU. The timing model captures
// the paper's central observation: a pipelined AES engine sustains only
// ~8 GB/s while the GDDR5 channel behind it delivers ~30 GB/s, so the
// engine — not DRAM — becomes the bandwidth bottleneck once all traffic
// is encrypted (paper §II-B).
//
// The package also carries the five published engine design points of
// Table I as presets, and the counter-cache bookkeeping of counter-mode
// encryption.
package engine

import "fmt"

// Spec is one hardware AES engine design point (Table I columns).
type Spec struct {
	Name          string
	AreaMM2       float64 // die area; 0 when the paper reports N/A
	PowerMW       float64 // power; 0 when the paper reports N/A
	LatencyCycles float64 // per-line pipeline latency in core cycles
	ThroughputGBs float64 // sustained throughput in GB/s
}

// Table I of the paper: performance comparison of AES engine
// implementations (counter mode).
var (
	SpecMorioka  = Spec{Name: "Morioka et al. [16]", PowerMW: 1920, LatencyCycles: 10, ThroughputGBs: 1.5}
	SpecMathew   = Spec{Name: "Mathew et al. [15]", AreaMM2: 1.1, PowerMW: 125, LatencyCycles: 20, ThroughputGBs: 6.6}
	SpecEnsilica = Spec{Name: "Ensilica [3]", AreaMM2: 1.4, LatencyCycles: 11, ThroughputGBs: 8}
	SpecSayilar  = Spec{Name: "Sayilar et al. [21]", AreaMM2: 6.3, PowerMW: 6207, LatencyCycles: 20, ThroughputGBs: 16}
	SpecLiu      = Spec{Name: "Liu et al. [14]", AreaMM2: 6.6, PowerMW: 1580, LatencyCycles: 152, ThroughputGBs: 19}
	// SpecModeled is the engine the paper instantiates in GPGPU-Sim: a
	// pipelined 128-bit AES engine with 20-cycle line latency and 8 GB/s
	// bandwidth (§IV-A).
	SpecModeled = Spec{Name: "Modeled (paper §IV-A)", AreaMM2: 1.2, PowerMW: 125, LatencyCycles: 20, ThroughputGBs: 8}
)

// TableI returns the five published design points in the paper's row
// order.
func TableI() []Spec {
	return []Spec{SpecMorioka, SpecMathew, SpecEnsilica, SpecSayilar, SpecLiu}
}

// Validate checks that the spec is usable as a timing model.
func (s Spec) Validate() error {
	if s.LatencyCycles < 0 || s.ThroughputGBs <= 0 {
		return fmt.Errorf("engine: invalid spec %+v", s)
	}
	return nil
}

// Stats counts engine activity.
type Stats struct {
	Lines     uint64
	Bytes     uint64
	BusyCycle float64 // total cycles the pipeline input was occupied
}

// Engine is the timing model of one pipelined AES engine clocked against
// the GPU core clock.
type Engine struct {
	spec          Spec
	bytesPerCycle float64
	freeAt        float64
	stats         Stats
}

// New constructs an engine model for a core clock in Hz.
func New(spec Spec, coreClockHz float64) *Engine {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if coreClockHz <= 0 {
		panic("engine: non-positive core clock")
	}
	return &Engine{spec: spec, bytesPerCycle: spec.ThroughputGBs * 1e9 / coreClockHz}
}

// Spec returns the engine's design point.
func (e *Engine) Spec() Spec { return e.spec }

// BytesPerCycle returns the derived throughput in bytes per core cycle.
func (e *Engine) BytesPerCycle() float64 { return e.bytesPerCycle }

// Process reserves pipeline capacity for one n-byte line whose input is
// available at time ready. It returns when the transformed line emerges.
// The pipeline accepts a new line only after the previous line's input
// slot (n/bytesPerCycle cycles) has drained; output appears LatencyCycles
// after the last input byte.
func (e *Engine) Process(ready float64, n int) (done float64) {
	start := ready
	if e.freeAt > start {
		start = e.freeAt
	}
	slot := float64(n) / e.bytesPerCycle
	e.freeAt = start + slot
	e.stats.Lines++
	e.stats.Bytes += uint64(n)
	e.stats.BusyCycle += slot
	return start + slot + e.spec.LatencyCycles
}

// FreeAt returns the earliest time the pipeline can accept a new line.
func (e *Engine) FreeAt() float64 { return e.freeAt }

// Stats returns accumulated counters.
func (e *Engine) Stats() Stats { return e.stats }

// Reset clears timing state and statistics.
func (e *Engine) Reset() {
	e.freeAt = 0
	e.stats = Stats{}
}
