package attack

import (
	"fmt"

	"seal/internal/models"
	"seal/internal/prng"
)

// ZeroRows zeroes the marked kernel rows of one weight layer in place:
// for CONV layers the slice W[:, c, :, :] for every marked input channel
// c, for FC layers weight column c. It returns the number of weights
// zeroed. This is the filter-pruning operation of Li et al. [13], whose
// finding — that small-ℓ1 rows can be removed with little accuracy loss
// — is the premise behind SEAL's decision to leave exactly those rows
// unencrypted (§III-A).
func ZeroRows(w *models.WeightLayer, rows []bool) (int, error) {
	if len(rows) != w.Spec.InC {
		return 0, fmt.Errorf("attack: %d row marks for %d input channels", len(rows), w.Spec.InC)
	}
	zeroed := 0
	if w.Conv != nil {
		kk := w.Spec.K * w.Spec.K
		for o := 0; o < w.Spec.OutC; o++ {
			for c, z := range rows {
				if !z {
					continue
				}
				base := (o*w.Spec.InC + c) * kk
				for k := 0; k < kk; k++ {
					w.Conv.Weight.W.Data[base+k] = 0
				}
				zeroed += kk
			}
		}
		return zeroed, nil
	}
	for o := 0; o < w.Spec.OutC; o++ {
		for c, z := range rows {
			if !z {
				continue
			}
			w.FC.Weight.W.Data[o*w.Spec.InC+c] = 0
			zeroed++
		}
	}
	return zeroed, nil
}

// PruneByImportance zeroes a fraction of kernel rows in every non-
// boundary weight layer of a clone of m, selecting either the LOWEST-ℓ1
// rows (lowest=true: the rows SEAL leaves unencrypted) or the HIGHEST-ℓ1
// rows (lowest=false: the rows SEAL protects). It returns the pruned
// clone. Comparing the two accuracies validates the criticality ranking:
// the model should survive losing its low-norm rows and collapse without
// its high-norm ones.
func PruneByImportance(m *models.Model, fraction float64, lowest bool, seed uint64) (*models.Model, error) {
	clone, err := m.Clone(prng.New(seed))
	if err != nil {
		return nil, err
	}
	for _, w := range clone.WeightLayers {
		norms := rowL1(w)
		k := int(float64(len(norms))*fraction + 0.5)
		rows := make([]bool, len(norms))
		order := argsort(norms, lowest)
		for _, idx := range order[:k] {
			rows[idx] = true
		}
		if _, err := ZeroRows(w, rows); err != nil {
			return nil, err
		}
	}
	return clone, nil
}

func rowL1(w *models.WeightLayer) []float64 {
	norms := make([]float64, w.Spec.InC)
	if w.Conv != nil {
		kk := w.Spec.K * w.Spec.K
		for o := 0; o < w.Spec.OutC; o++ {
			for c := 0; c < w.Spec.InC; c++ {
				base := (o*w.Spec.InC + c) * kk
				for _, v := range w.Conv.Weight.W.Data[base : base+kk] {
					if v < 0 {
						v = -v
					}
					norms[c] += float64(v)
				}
			}
		}
		return norms
	}
	for o := 0; o < w.Spec.OutC; o++ {
		for c := 0; c < w.Spec.InC; c++ {
			v := w.FC.Weight.W.Data[o*w.Spec.InC+c]
			if v < 0 {
				v = -v
			}
			norms[c] += float64(v)
		}
	}
	return norms
}

// argsort returns row indices sorted ascending (lowest=true) or
// descending by norm.
func argsort(norms []float64, ascending bool) []int {
	idx := make([]int, len(norms))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := norms[idx[j-1]], norms[idx[j]]
			if (ascending && a > b) || (!ascending && a < b) {
				idx[j-1], idx[j] = idx[j], idx[j-1]
			} else {
				break
			}
		}
	}
	return idx
}
