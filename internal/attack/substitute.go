package attack

import (
	"fmt"

	"seal/internal/core"
	"seal/internal/dataset"
	"seal/internal/models"
	"seal/internal/nn"
	"seal/internal/prng"
	"seal/internal/tensor"
)

// WhiteBox returns the adversary's model when the accelerator uses no
// memory encryption: an exact copy of the victim (§III-B1).
func WhiteBox(victim *models.Model, rng *prng.Source) (*models.Model, error) {
	return victim.Clone(rng)
}

// BlackBox trains a substitute from scratch: the adversary knows the
// architecture (via side channels) but no weights, and trains on its own
// victim-labeled dataset (§III-B1).
func BlackBox(victim *models.Model, advData *dataset.Dataset, cfg TrainConfig, rng *prng.Source) (*models.Model, error) {
	sub, err := models.Build(victim.Arch, rng.Fork())
	if err != nil {
		return nil, fmt.Errorf("attack: building black-box substitute: %w", err)
	}
	labeled := advData.Subset(seqIdx(advData.Len()))
	Relabel(victim, labeled)
	Train(sub, labeled, cfg, rng.Fork())
	return sub, nil
}

// SEALSubstitute builds the substitute an adversary obtains against a
// SEAL-protected accelerator: kernel rows the plan leaves unencrypted
// are copied from the victim and frozen; encrypted rows (and all other
// parameters) are re-initialized and fine-tuned on the adversary's
// victim-labeled data (§III-B1: "initializes an NN model with known
// weight parameters and fills random numbers ... for unknown weight
// parameters", then "keeps the known weight parameters unchanged and
// fine-tunes unknown weight parameters").
func SEALSubstitute(victim *models.Model, plan *core.Plan, advData *dataset.Dataset, cfg TrainConfig, rng *prng.Source) (*models.Model, error) {
	if len(plan.Layers) != len(victim.WeightLayers) {
		return nil, fmt.Errorf("attack: plan has %d layers, victim %d", len(plan.Layers), len(victim.WeightLayers))
	}
	sub, err := models.Build(victim.Arch, rng.Fork())
	if err != nil {
		return nil, fmt.Errorf("attack: building SEAL substitute: %w", err)
	}
	for i, lp := range plan.Layers {
		vw := victim.WeightLayers[i]
		sw := sub.WeightLayers[i]
		if vw.Name != lp.Name || sw.Name != lp.Name {
			return nil, fmt.Errorf("attack: layer order mismatch at %s", lp.Name)
		}
		leakRow(vw, sw, lp.EncRows)
	}
	labeled := advData.Subset(seqIdx(advData.Len()))
	Relabel(victim, labeled)
	Train(sub, labeled, cfg, rng.Fork())
	return sub, nil
}

// leakRow copies kernel rows the plan leaves in plaintext from victim to
// substitute and freezes them; encrypted rows keep the substitute's
// fresh random initialization and stay trainable.
func leakRow(vw, sw *models.WeightLayer, encRows []bool) {
	if vw.Conv != nil {
		outC, inC := vw.Spec.OutC, vw.Spec.InC
		kk := vw.Spec.K * vw.Spec.K
		mask := tensor.New(outC, inC, vw.Spec.K, vw.Spec.K)
		for o := 0; o < outC; o++ {
			for c := 0; c < inC; c++ {
				base := (o*inC + c) * kk
				if encRows[c] {
					// unknown: trainable
					for k := 0; k < kk; k++ {
						mask.Data[base+k] = 1
					}
				} else {
					// leaked: copy true value, frozen (mask stays 0)
					copy(sw.Conv.Weight.W.Data[base:base+kk], vw.Conv.Weight.W.Data[base:base+kk])
				}
			}
		}
		sw.Conv.Weight.Mask = mask
		return
	}
	out, in := vw.Spec.OutC, vw.Spec.InC
	mask := tensor.New(out, in)
	for o := 0; o < out; o++ {
		for c := 0; c < in; c++ {
			idx := o*in + c
			if encRows[c] {
				mask.Data[idx] = 1
			} else {
				sw.FC.Weight.W.Data[idx] = vw.FC.Weight.W.Data[idx]
			}
		}
	}
	sw.FC.Weight.Mask = mask
}

// LeakedFraction reports the fraction of weight elements the adversary
// received in plaintext under the plan — a sanity metric for reports.
func LeakedFraction(plan *core.Plan) float64 {
	var leaked, total int64
	for _, lp := range plan.Layers {
		perRow := int64(lp.Spec.OutC)
		if lp.Spec.Kind == models.KindConv {
			perRow *= int64(lp.Spec.K * lp.Spec.K)
		}
		for _, enc := range lp.EncRows {
			if !enc {
				leaked += perRow
			}
			total += perRow
		}
	}
	if total == 0 {
		return 0
	}
	return float64(leaked) / float64(total)
}

// FrozenFraction reports the fraction of conv/fc weight elements whose
// freeze mask pins them — used to verify substitutes honour the leak.
func FrozenFraction(m *models.Model) float64 {
	var frozen, total int64
	for _, w := range m.WeightLayers {
		var p *nn.Param
		if w.Conv != nil {
			p = w.Conv.Weight
		} else {
			p = w.FC.Weight
		}
		total += int64(p.W.Size())
		if p.Mask == nil {
			continue
		}
		for _, v := range p.Mask.Data {
			if v == 0 {
				frozen++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(frozen) / float64(total)
}

func seqIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
