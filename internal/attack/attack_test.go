package attack

import (
	"testing"

	"seal/internal/core"
	"seal/internal/dataset"
	"seal/internal/models"
	"seal/internal/prng"
)

// tinyArch is a small VGG-style net on 8×8 inputs — fast enough to train
// in tests while exercising conv, pool and FC paths.
func tinyArch() *models.Arch {
	a := &models.Arch{Name: "tiny", InC: 1, InH: 8, InW: 8, Classes: 4}
	a.Specs = []models.LayerSpec{
		{Name: "conv1", Kind: models.KindConv, InC: 1, OutC: 6, InH: 8, InW: 8, K: 3, Stride: 1, Pad: 1},
		{Name: "conv2", Kind: models.KindConv, InC: 6, OutC: 8, InH: 8, InW: 8, K: 3, Stride: 1, Pad: 1},
		{Name: "pool1", Kind: models.KindPool, InC: 8, OutC: 8, InH: 8, InW: 8, K: 2, Stride: 2},
		{Name: "conv3", Kind: models.KindConv, InC: 8, OutC: 8, InH: 4, InW: 4, K: 3, Stride: 1, Pad: 1},
		{Name: "fc1", Kind: models.KindFC, InC: 8 * 4 * 4, OutC: 4, InH: 1, InW: 1},
	}
	if err := a.Validate(); err != nil {
		panic(err)
	}
	return a
}

// tinyGen is the single task generator shared by all sets in a test:
// train, test and adversary data must share class prototypes.
func tinyGen() *dataset.Generator {
	cfg := dataset.Config{Classes: 4, C: 1, H: 8, W: 8, Noise: 0.25, Shift: 1, Freqs: 3}
	return dataset.NewGenerator(cfg, 77)
}

func quickTrainCfg() TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.Epochs = 8
	cfg.LR = 0.05
	return cfg
}

type fixture struct {
	victim *models.Model
	gen    *dataset.Generator
	train  *dataset.Dataset
	test   *dataset.Dataset
	rng    *prng.Source
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	f := &fixture{rng: prng.New(42), gen: tinyGen()}
	f.train = f.gen.Sample(400)
	f.test = f.gen.Sample(120)
	victim, err := TrainVictim(tinyArch(), f.train, quickTrainCfg(), f.rng)
	if err != nil {
		t.Fatal(err)
	}
	f.victim = victim
	return f
}

func TestVictimLearns(t *testing.T) {
	f := newFixture(t)
	victim, test := f.victim, f.test
	acc := Accuracy(victim, test)
	if acc < 0.7 {
		t.Fatalf("victim test accuracy %v, want ≥0.7 (chance 0.25)", acc)
	}
}

func TestWhiteBoxMatchesVictim(t *testing.T) {
	f := newFixture(t)
	victim, test, rng := f.victim, f.test, f.rng
	wb, err := WhiteBox(victim, rng)
	if err != nil {
		t.Fatal(err)
	}
	va, wa := Accuracy(victim, test), Accuracy(wb, test)
	if va != wa {
		t.Fatalf("white-box accuracy %v != victim %v", wa, va)
	}
}

func TestPredictMatchesAccuracy(t *testing.T) {
	f := newFixture(t)
	victim, test := f.victim, f.test
	preds := Predict(victim, test.Images)
	correct := 0
	for i, p := range preds {
		if p == test.Labels[i] {
			correct++
		}
	}
	if got := float64(correct) / float64(len(preds)); got != Accuracy(victim, test) {
		t.Fatalf("Predict-based accuracy %v != Accuracy %v", got, Accuracy(victim, test))
	}
}

func TestRelabelUsesVictimLabels(t *testing.T) {
	f := newFixture(t)
	victim, test := f.victim, f.test
	ds := test.Subset(seqIdx(test.Len()))
	Relabel(victim, ds)
	preds := Predict(victim, ds.Images)
	for i := range preds {
		if ds.Labels[i] != preds[i] {
			t.Fatal("relabel disagrees with victim predictions")
		}
	}
}

func TestBlackBoxWorseThanWhiteBox(t *testing.T) {
	f := newFixture(t)
	victim, test, rng := f.victim, f.test, f.rng
	adv := f.gen.Sample(100) // small adversary set, as in the paper's 10% split
	bb, err := BlackBox(victim, adv, quickTrainCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	wbAcc := Accuracy(victim, test)
	bbAcc := Accuracy(bb, test)
	if bbAcc >= wbAcc {
		t.Fatalf("black-box accuracy %v not below white-box %v", bbAcc, wbAcc)
	}
	if bbAcc < 0.25 {
		t.Fatalf("black-box accuracy %v below chance — training broken", bbAcc)
	}
}

func sealPlan(t testing.TB, victim *models.Model, ratio float64) *core.Plan {
	t.Helper()
	opts := core.Options{Ratio: ratio, FullFirstConv: 1, FullLastConv: 1, FullLastFC: 1, Metric: core.MetricL1}
	p, err := core.NewPlan(victim, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSEALSubstituteFreezesLeakedWeights(t *testing.T) {
	f := newFixture(t)
	victim, rng := f.victim, f.rng
	plan := sealPlan(t, victim, 0.5)
	adv := f.gen.Sample(80)
	sub, err := SEALSubstitute(victim, plan, adv, quickTrainCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	// conv2 (the SE layer): unencrypted rows must equal victim values
	lp := plan.LayerByName("conv2")
	if lp == nil || lp.Full {
		t.Fatal("conv2 not an SE layer")
	}
	vw := victim.WeightLayers[1].Conv.Weight.W
	sw := sub.WeightLayers[1].Conv.Weight.W
	kk := lp.Spec.K * lp.Spec.K
	for o := 0; o < lp.Spec.OutC; o++ {
		for c, enc := range lp.EncRows {
			base := (o*lp.Spec.InC + c) * kk
			same := true
			for k := 0; k < kk; k++ {
				if vw.Data[base+k] != sw.Data[base+k] {
					same = false
				}
			}
			if !enc && !same {
				t.Fatalf("leaked row %d changed during fine-tuning", c)
			}
		}
	}
	ff := FrozenFraction(sub)
	if ff <= 0 || ff >= 1 {
		t.Fatalf("frozen fraction %v, want in (0,1)", ff)
	}
}

func TestLeakedFractionTracksRatio(t *testing.T) {
	f := newFixture(t)
	victim := f.victim
	l20 := LeakedFraction(sealPlan(t, victim, 0.2))
	l80 := LeakedFraction(sealPlan(t, victim, 0.8))
	if l20 <= l80 {
		t.Fatalf("leaked fraction at ratio 0.2 (%v) not above ratio 0.8 (%v)", l20, l80)
	}
}

func TestSEALAccuracyOrdering(t *testing.T) {
	// The Figure 3 ordering at the extremes: a SEAL substitute with a low
	// encryption ratio (most weights leaked) must beat the black-box
	// substitute; at ratio 1.0 (nothing leaked beyond architecture) it
	// should be comparable to black-box.
	f := newFixture(t)
	victim, test, rng := f.victim, f.test, f.rng
	adv := f.gen.Sample(100)
	cfg := quickTrainCfg()

	bb, err := BlackBox(victim, adv, cfg, prng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	low, err := SEALSubstitute(victim, sealPlan(t, victim, 0.1), adv, cfg, prng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	bbAcc := Accuracy(bb, test)
	lowAcc := Accuracy(low, test)
	if lowAcc <= bbAcc-0.05 {
		t.Fatalf("SEAL@10%% accuracy %v not above black-box %v", lowAcc, bbAcc)
	}
	_ = rng
}

func TestJacobianAugmentGrowsAndLabels(t *testing.T) {
	f := newFixture(t)
	victim, rng := f.victim, f.rng
	seeds := f.gen.Sample(40)
	probeCfg := quickTrainCfg()
	probeCfg.Epochs = 2
	aug, err := JacobianAugment(victim, seeds, 2, 0.1, probeCfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if aug.Len() != 160 { // 40 → 80 → 160
		t.Fatalf("augmented size %d, want 160", aug.Len())
	}
	preds := Predict(victim, aug.Images)
	for i := range preds {
		if aug.Labels[i] != preds[i] {
			t.Fatal("augmented samples not victim-labeled")
		}
	}
}

func TestIFGSMStaysInEpsBall(t *testing.T) {
	f := newFixture(t)
	victim, test := f.victim, f.test
	x, labels := test.Batch(0, 32)
	cfg := IFGSMConfig{Eps: 0.1, Alpha: 0.02, Iters: 5}
	adv, targets := IFGSM(victim, x, labels, cfg)
	for i := range adv.Data {
		d := adv.Data[i] - x.Data[i]
		if d > cfg.Eps+1e-5 || d < -cfg.Eps-1e-5 {
			t.Fatalf("perturbation %v exceeds eps %v", d, cfg.Eps)
		}
	}
	for i, tg := range targets {
		if tg == labels[i] {
			t.Fatal("target equals true label")
		}
	}
}

func TestIFGSMFoolsItsOwnModel(t *testing.T) {
	// Against the generating model itself, the attack should succeed on
	// most correctly-classified samples (the paper reports 100% success
	// on the substitute).
	f := newFixture(t)
	victim, test := f.victim, f.test
	preds := Predict(victim, test.Images)
	var keep []int
	for i, p := range preds {
		if p == test.Labels[i] {
			keep = append(keep, i)
		}
	}
	clean := test.Subset(keep)
	adv, _ := IFGSM(victim, clean.Images, clean.Labels, DefaultIFGSM())
	rate := AttackSuccessRate(victim, adv, clean.Labels)
	if rate < 0.8 {
		t.Fatalf("self-attack success %v, want ≥0.8", rate)
	}
}

func TestTransferabilityWhiteBoxAboveBlackBox(t *testing.T) {
	// Figure 4's headline ordering: white-box adversarial examples
	// transfer (trivially — same model), black-box ones much less.
	f := newFixture(t)
	victim, test, rng := f.victim, f.test, f.rng
	wb, err := WhiteBox(victim, rng)
	if err != nil {
		t.Fatal(err)
	}
	adv := f.gen.Sample(100)
	bb, err := BlackBox(victim, adv, quickTrainCfg(), prng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	probe := test.Subset(seqIdx(80))
	cfg := DefaultIFGSM()
	wbT := Transferability(victim, wb, probe, cfg)
	bbT := Transferability(victim, bb, probe, cfg)
	if wbT <= bbT {
		t.Fatalf("white-box transferability %v not above black-box %v", wbT, bbT)
	}
	if wbT < 0.8 {
		t.Fatalf("white-box transferability %v, want ≥0.8", wbT)
	}
}

func TestZeroRowsCountsAndZeroes(t *testing.T) {
	f := newFixture(t)
	w := f.victim.WeightLayers[1] // conv2: 6 input channels
	rows := make([]bool, w.Spec.InC)
	rows[0], rows[2] = true, true
	n, err := ZeroRows(w, rows)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * w.Spec.OutC * w.Spec.K * w.Spec.K
	if n != want {
		t.Fatalf("zeroed %d, want %d", n, want)
	}
	kk := w.Spec.K * w.Spec.K
	for o := 0; o < w.Spec.OutC; o++ {
		base := (o*w.Spec.InC + 0) * kk
		for k := 0; k < kk; k++ {
			if w.Conv.Weight.W.Data[base+k] != 0 {
				t.Fatal("marked row not zeroed")
			}
		}
		base = (o*w.Spec.InC + 1) * kk
		allZero := true
		for k := 0; k < kk; k++ {
			if w.Conv.Weight.W.Data[base+k] != 0 {
				allZero = false
			}
		}
		if allZero {
			t.Fatal("unmarked row zeroed")
		}
	}
}

func TestZeroRowsRejectsBadLength(t *testing.T) {
	f := newFixture(t)
	if _, err := ZeroRows(f.victim.WeightLayers[1], []bool{true}); err == nil {
		t.Fatal("bad row mask accepted")
	}
}

func TestPruningPremise(t *testing.T) {
	// The §III-A justification: zeroing the LOW-l1 rows (the ones SEAL
	// leaves plaintext) must hurt accuracy less than zeroing the HIGH-l1
	// rows (the ones SEAL encrypts).
	f := newFixture(t)
	full := Accuracy(f.victim, f.test)
	low, err := PruneByImportance(f.victim, 0.3, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := PruneByImportance(f.victim, 0.3, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	lowAcc := Accuracy(low, f.test)
	highAcc := Accuracy(high, f.test)
	if lowAcc < highAcc {
		t.Fatalf("pruning low-l1 rows (%v) hurt more than high-l1 rows (%v)", lowAcc, highAcc)
	}
	if lowAcc < full-0.35 {
		t.Fatalf("low-l1 pruning collapsed accuracy: %v vs full %v", lowAcc, full)
	}
	// the victim must be untouched (PruneByImportance clones)
	if Accuracy(f.victim, f.test) != full {
		t.Fatal("pruning mutated the original model")
	}
}
