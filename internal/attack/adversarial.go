package attack

import (
	"seal/internal/dataset"
	"seal/internal/models"
	"seal/internal/nn"
	"seal/internal/prng"
	"seal/internal/tensor"
)

// inputGrad computes dLoss/dInput of m for a batch under cross-entropy
// against the given labels.
func inputGrad(m *models.Model, x *tensor.Tensor, labels []int) (*tensor.Tensor, *tensor.Tensor) {
	out := m.Forward(x, true)
	_, grad := nn.SoftmaxCrossEntropy(out, labels)
	return m.Backward(grad), out
}

// JacobianAugment implements Jacobian-based dataset augmentation
// (Papernot et al. [20], used in §III-B1): starting from the adversary's
// seed images, each round trains a probe substitute on victim-labeled
// data, then emits new samples x + λ·sign(∂f/∂x) that explore the
// victim's decision boundaries. The returned set contains the seeds plus
// all synthesized samples, labeled by the victim.
func JacobianAugment(victim *models.Model, seeds *dataset.Dataset, rounds int, lambda float32, probeCfg TrainConfig, rng *prng.Source) (*dataset.Dataset, error) {
	cur := seeds.Subset(seqIdx(seeds.Len()))
	Relabel(victim, cur)
	for round := 0; round < rounds; round++ {
		probe, err := models.Build(victim.Arch, rng.Fork())
		if err != nil {
			return nil, err
		}
		Train(probe, cur, probeCfg, rng.Fork())
		// synthesize: one new sample per current sample
		next := &dataset.Dataset{
			Images: cur.Images.Clone(),
			Labels: append([]int(nil), cur.Labels...),
			Cfg:    cur.Cfg,
		}
		const bs = 32
		n := cur.Len()
		per := cur.Images.Size() / n
		for lo := 0; lo < n; lo += bs {
			hi := lo + bs
			if hi > n {
				hi = n
			}
			x, labels := cur.Batch(lo, hi)
			g, _ := inputGrad(probe, x, labels)
			for i := range g.Data {
				step := lambda
				if g.Data[i] < 0 {
					step = -lambda
				}
				next.Images.Data[(lo)*per+i] = x.Data[i] + step
			}
		}
		Relabel(victim, next)
		cur = cur.Append(next)
	}
	return cur, nil
}

// IFGSMConfig parameterizes iterative FGSM (Kurakin et al. [12]).
type IFGSMConfig struct {
	Eps   float32 // L∞ perturbation budget
	Alpha float32 // per-iteration step
	Iters int
}

// DefaultIFGSM matches the usual I-FGSM setting for normalized inputs.
func DefaultIFGSM() IFGSMConfig {
	return IFGSMConfig{Eps: 0.25, Alpha: 0.05, Iters: 10}
}

// IFGSM generates targeted adversarial examples against sub: each input
// is perturbed within an L∞ ball to make sub predict the pre-assigned
// incorrect target (§III-B3: "add the minimum perturbation on the input
// to mislead the victim model to produce a pre-assigned incorrect
// output"). Targets default to (label+1) mod classes.
func IFGSM(sub *models.Model, x *tensor.Tensor, labels []int, cfg IFGSMConfig) (*tensor.Tensor, []int) {
	n := x.Dim(0)
	targets := make([]int, n)
	classes := sub.Arch.Classes
	for i, l := range labels {
		targets[i] = (l + 1) % classes
	}
	adv := x.Clone()
	for it := 0; it < cfg.Iters; it++ {
		g, _ := inputGrad(sub, adv, targets)
		// descend the target loss: x ← x − α·sign(∇x CE(f(x), target))
		for i := range adv.Data {
			step := cfg.Alpha
			if g.Data[i] > 0 {
				step = -cfg.Alpha
			}
			v := adv.Data[i] + step
			// project back into the eps-ball around the original input
			lo, hi := x.Data[i]-cfg.Eps, x.Data[i]+cfg.Eps
			if v < lo {
				v = lo
			} else if v > hi {
				v = hi
			}
			adv.Data[i] = v
		}
	}
	return adv, targets
}

// AttackSuccessRate returns the fraction of adversarial examples that
// fool m: the prediction differs from the true label (the untargeted
// success criterion used for transferability measurements [4]).
func AttackSuccessRate(m *models.Model, adv *tensor.Tensor, trueLabels []int) float64 {
	preds := Predict(m, adv)
	fooled := 0
	for i, p := range preds {
		if p != trueLabels[i] {
			fooled++
		}
	}
	return float64(fooled) / float64(len(preds))
}

// Transferability measures Figure 4's metric: adversarial examples are
// generated against the substitute (where they succeed by construction
// as iterations grow) and replayed against the victim; the returned
// value is the fraction that also fools the victim. Only examples whose
// true label the victim originally predicts correctly are counted, so
// the measurement isolates the attack from baseline victim errors.
func Transferability(victim, sub *models.Model, probe *dataset.Dataset, cfg IFGSMConfig) float64 {
	x := probe.Images
	labels := probe.Labels
	// restrict to samples the victim classifies correctly
	preds := Predict(victim, x)
	var keep []int
	for i, p := range preds {
		if p == labels[i] {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		return 0
	}
	clean := probe.Subset(keep)
	adv, _ := IFGSM(sub, clean.Images, clean.Labels, cfg)
	return AttackSuccessRate(victim, adv, clean.Labels)
}
