// Package attack implements the paper's security-evaluation machinery
// (§III-B): training of victim models, the three kinds of substitute
// models an adversary can build (white-box, black-box, SEAL), Jacobian-
// based dataset augmentation for the adversary's query set, I-FGSM
// adversarial example generation, and the IP-stealing / transferability
// metrics of Figures 3 and 4.
package attack

import (
	"fmt"

	"seal/internal/dataset"
	"seal/internal/models"
	"seal/internal/nn"
	"seal/internal/prng"
	"seal/internal/tensor"
)

// TrainConfig controls SGD training runs.
type TrainConfig struct {
	Epochs      int
	BatchSize   int
	LR          float32
	Momentum    float32
	WeightDecay float32
	// LRDecayAt halves the learning rate at these epoch indices.
	LRDecayAt []int
	// ClipNorm caps the global gradient norm (0 disables).
	ClipNorm float64
}

// DefaultTrainConfig returns settings that train the width-scaled
// models stably on the synthetic dataset.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:    6,
		BatchSize: 32,
		LR:        0.05,
		Momentum:  0.9,
		ClipNorm:  5,
	}
}

// TrainStats reports a training run.
type TrainStats struct {
	Epochs     int
	FinalLoss  float64
	FinalTrain float64 // accuracy on the training set
}

// Train runs SGD on m over ds. The freeze masks installed on m's
// parameters are honoured (SEAL substitute fine-tuning relies on this).
func Train(m *models.Model, ds *dataset.Dataset, cfg TrainConfig, rng *prng.Source) TrainStats {
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	n := ds.Len()
	bs := cfg.BatchSize
	if bs > n {
		bs = n
	}
	// Hoisted out of the batch loop: the parameter list walk allocates,
	// and the loss workspace keeps the step loop free of loss-side
	// allocations.
	params := m.Params()
	var ce nn.SoftmaxCE
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, at := range cfg.LRDecayAt {
			if at == epoch {
				opt.LR /= 2
			}
		}
		ds.Shuffle(rng)
		var epochLoss float64
		batches := 0
		for lo := 0; lo+bs <= n; lo += bs {
			x, labels := ds.Batch(lo, lo+bs)
			out := m.Forward(x, true)
			loss, grad := ce.Loss(out, labels)
			m.Backward(grad)
			if cfg.ClipNorm > 0 {
				nn.ClipGradNorm(params, cfg.ClipNorm)
			}
			opt.Step(params)
			epochLoss += loss
			batches++
		}
		if batches > 0 {
			lastLoss = epochLoss / float64(batches)
		}
	}
	return TrainStats{Epochs: cfg.Epochs, FinalLoss: lastLoss, FinalTrain: Accuracy(m, ds)}
}

// Accuracy evaluates classification accuracy of m on ds (eval mode),
// processing in bounded batches to limit memory.
func Accuracy(m *models.Model, ds *dataset.Dataset) float64 {
	const bs = 64
	n := ds.Len()
	correct := 0
	for lo := 0; lo < n; lo += bs {
		hi := lo + bs
		if hi > n {
			hi = n
		}
		x, labels := ds.Batch(lo, hi)
		out := m.Forward(x, false)
		k := out.Dim(1)
		for i := range labels {
			row := tensor.FromSlice(out.Data[i*k:(i+1)*k], k)
			if row.ArgMax() == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}

// Predict returns the victim's label for every sample — the black-box
// oracle interface the adversary queries (§II-A: the adversary "can feed
// his/her own images into the target DL accelerator and obtain the
// output label").
func Predict(m *models.Model, x *tensor.Tensor) []int {
	const bs = 64
	n := x.Dim(0)
	per := x.Size() / n
	out := make([]int, n)
	for lo := 0; lo < n; lo += bs {
		hi := lo + bs
		if hi > n {
			hi = n
		}
		batch := tensor.FromSlice(x.Data[lo*per:hi*per], append([]int{hi - lo}, x.Shape[1:]...)...)
		logits := m.Forward(batch, false)
		k := logits.Dim(1)
		for i := 0; i < hi-lo; i++ {
			row := tensor.FromSlice(logits.Data[i*k:(i+1)*k], k)
			out[lo+i] = row.ArgMax()
		}
	}
	return out
}

// Relabel replaces ds's labels with the victim's predictions, modelling
// the adversary labeling queries through the accelerator.
func Relabel(victim *models.Model, ds *dataset.Dataset) {
	labels := Predict(victim, ds.Images)
	copy(ds.Labels, labels)
}

// TrainVictim builds and trains a fresh victim model.
func TrainVictim(arch *models.Arch, ds *dataset.Dataset, cfg TrainConfig, rng *prng.Source) (*models.Model, error) {
	m, err := models.Build(arch, rng.Fork())
	if err != nil {
		return nil, fmt.Errorf("attack: building victim: %w", err)
	}
	Train(m, ds, cfg, rng.Fork())
	return m, nil
}
