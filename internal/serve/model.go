package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"seal"
	"seal/internal/secure"
	"seal/internal/tensor"
)

// Admission errors. The HTTP layer maps these to status codes with
// errors.Is (429 and 503); they are exported so load drivers can branch
// on them too.
var (
	// ErrQueueFull reports that the model's bounded request queue had no
	// free slot — the backpressure signal.
	ErrQueueFull = errors.New("serve: request queue full")

	// ErrShuttingDown reports an admission attempt against a model (or
	// registry) that is draining for shutdown.
	ErrShuttingDown = errors.New("serve: shutting down")

	// ErrBadInput reports a malformed inference request (wrong input
	// length, undecodable body).
	ErrBadInput = errors.New("serve: bad input")
)

// maxRetryAfterS caps the derived Retry-After hint so a momentarily
// stalled drain rate never tells clients to go away for minutes.
const maxRetryAfterS = 30

// deployment is one immutable generation of a hosted model: the
// Prepared bundle (plan, layout, image sealed under the tenant's
// sub-key), a pool of streaming engines over that image, and one
// dispatch slot of preallocated workspaces per engine. Hot-swap
// replaces the whole deployment atomically; each engine is owned by a
// dedicated dispatcher worker, and in-flight batches keep their
// deployment alive until its workers release their engines.
type deployment struct {
	spec     ModelSpec
	gen      int64
	prep     *seal.Prepared
	pool     *secure.Pool
	slots    map[*secure.Engine]*engineSlot
	inC      int
	inH      int
	inW      int
	inputLen int // inC*inH*inW floats per sample

	// retired is closed by install() the moment this deployment is
	// swapped out, strictly before the background Drain of its pool
	// starts. Each dispatcher worker selects on it while idle: on
	// retirement the worker releases its engine (which is what lets
	// Drain complete) and exits, while the replacement deployment's
	// workers — started before the signal — keep draining the queue.
	retired chan struct{}
}

// engineSlot is the per-engine dispatch workspace, sized once at
// install so the steady-state batch path performs no heap allocations:
// a preallocated input tensor wide enough for MaxBatch samples, the
// reusable batch slice, and the batching-window timer.
type engineSlot struct {
	xbuf  []float32     // MaxBatch*inputLen backing store
	x     tensor.Tensor // header re-pointed at xbuf[:n*inputLen] per batch
	batch []*pending    // reusable batch assembly, cap MaxBatch
	timer *time.Timer   // reusable window timer, armed only when widening pays
}

func newEngineSlot(maxBatch, inputLen int) *engineSlot {
	return &engineSlot{
		xbuf:  make([]float32, maxBatch*inputLen),
		batch: make([]*pending, 0, maxBatch),
	}
}

// pending is one admitted inference request waiting for its batch. Its
// buffers are pooled per hosted model and recycled after the response
// is consumed, so a warm admit→dispatch→respond round trip allocates
// nothing. The response channel is buffered so the batch runner never
// blocks on a departed client; a request abandoned mid-wait must NOT be
// recycled (its result may still land).
type pending struct {
	input  []float32 // the sample, filled by the admitter; cap reused
	logits []float32 // this sample's logits row, written by the runner
	raw    []byte    // HTTP raw-f32 body/response scratch; cap reused
	resp   chan result
}

type result struct {
	logits []float32 // valid until the pending is recycled
	gen    int64
	batch  int
	err    error
}

// modelStats are the per-model serving counters, updated atomically on
// the hot path and snapshotted by the stats endpoint.
type modelStats struct {
	requests atomic.Int64
	rejected atomic.Int64
	batches  atomic.Int64
	items    atomic.Int64
	maxBatch atomic.Int64
	swaps    atomic.Int64
}

// hostedModel is one registry entry: a bounded admission queue, one
// dispatcher worker per pooled engine, and the current deployment. The
// admission path takes only an RLock and a non-blocking channel send;
// everything slow happens on the worker side.
//
// Dispatch is pipelined by construction: each worker owns its engine,
// so batch formation for engine A proceeds while engine B computes, and
// with a single engine the worker's own forward pass is exactly the
// interval during which the queue deepens — the next collect then
// drains it in one sweep, so batches widen toward MaxBatch precisely
// when the system is busiest (the PR 7 collect→acquire serialization
// formed each batch *before* waiting for an engine, which is why its
// average batch stalled near 2 under load).
type hostedModel struct {
	tenant string
	name   string
	cfg    Config

	queue chan *pending
	quit  chan struct{}

	// mu orders admissions against stop() and serializes installs: an
	// admission holds RLock while it checks stopped and enqueues, so
	// once stop() has set stopped under Lock and closed quit, the queue
	// can only shrink and the final drain leaves nothing unanswered.
	mu      sync.RWMutex
	stopped bool
	gen     int64 // last assigned generation, guarded by mu

	dep     atomic.Pointer[deployment]
	workers sync.WaitGroup // dispatcher workers, across all generations
	retired sync.WaitGroup // background drains of swapped-out deployments

	idle atomic.Int64 // workers parked waiting for a first request
	busy atomic.Int64 // workers currently executing a forward pass

	// rateBits holds the float64 bits of an EWMA of the drain rate in
	// samples/sec, fed by every completed batch; the 429 Retry-After
	// hint is derived from it and the live queue depth.
	rateBits atomic.Uint64

	reqPool sync.Pool // *pending recycling

	stats modelStats
}

func newHostedModel(tenant, name string, cfg Config) *hostedModel {
	return &hostedModel{
		tenant: tenant,
		name:   name,
		cfg:    cfg,
		queue:  make(chan *pending, cfg.QueueDepth),
		quit:   make(chan struct{}),
	}
}

// getPending checks a request out of the recycle pool.
func (h *hostedModel) getPending() *pending {
	if p, ok := h.reqPool.Get().(*pending); ok {
		return p
	}
	return &pending{resp: make(chan result, 1)}
}

// putPending recycles a request whose response has been consumed (or
// that was never enqueued). Requests abandoned while a result may still
// be in flight must be dropped instead — the defensive drain below
// keeps a stray recycle from ever leaking a stale result to the next
// user, but it cannot make an in-flight send safe.
func (h *hostedModel) putPending(p *pending) {
	select {
	case <-p.resp:
	default:
	}
	h.reqPool.Put(p)
}

// install makes dep the model's current deployment and returns its
// generation. Every install starts one dispatcher worker per pooled
// engine; on a hot-swap the new workers are started *before* the old
// deployment is retired, so the queue never lacks a consumer, while the
// old workers finish their in-flight batches, release their engines and
// exit — which is what lets the background Drain (the hot-swap barrier)
// complete.
func (h *hostedModel) install(dep *deployment) (int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stopped {
		return 0, ErrShuttingDown
	}
	h.gen++
	dep.gen = h.gen
	old := h.dep.Swap(dep)
	for i := 0; i < dep.pool.Size(); i++ {
		h.workers.Add(1)
		go h.worker(dep)
	}
	if old == nil {
		return dep.gen, nil
	}
	h.stats.swaps.Add(1)
	// Signal retirement only after the replacement workers exist, and
	// strictly before Drain can start consuming released engines.
	close(old.retired)
	h.retired.Add(1)
	go func() {
		defer h.retired.Done()
		old.pool.Drain()
	}()
	return dep.gen, nil
}

// admit copies one sample into a pooled request and enqueues it for
// batching, or fails fast with ErrQueueFull / ErrShuttingDown. The
// caller must consume p.resp exactly once and then recycle the request
// with putPending (or abandon it without recycling).
func (h *hostedModel) admit(input []float32) (*pending, error) {
	p := h.getPending()
	if cap(p.input) < len(input) {
		p.input = make([]float32, len(input))
	}
	p.input = p.input[:len(input)]
	copy(p.input, input)
	if err := h.enqueue(p); err != nil {
		h.putPending(p)
		return nil, err
	}
	return p, nil
}

// enqueue admits an already-filled pooled request. The input length is
// validated against the current deployment (and re-checked by the batch
// runner, since a hot-swap can change shapes between admission and
// execution).
func (h *hostedModel) enqueue(p *pending) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.stopped {
		return ErrShuttingDown
	}
	h.stats.requests.Add(1)
	if want := h.dep.Load().inputLen; len(p.input) != want {
		return fmt.Errorf("%w: input length %d, want %d", ErrBadInput, len(p.input), want)
	}
	select {
	case h.queue <- p:
		return nil
	default:
		h.stats.rejected.Add(1)
		return ErrQueueFull
	}
}

// inputLen returns the current deployment's expected sample length.
func (h *hostedModel) inputLen() int { return h.dep.Load().inputLen }

// stop drains the model completely: no new admissions, queued requests
// answered with ErrShuttingDown, every in-flight batch finished, every
// deployment's engine pool reclaimed.
func (h *hostedModel) stop() {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	h.stopped = true
	started := h.dep.Load() != nil
	h.mu.Unlock()
	close(h.quit)
	h.workers.Wait()
	h.retired.Wait()
	// No worker remains, so the queue can only shrink; answer whatever
	// the workers did not serve before they observed quit.
	for {
		select {
		case p := <-h.queue:
			p.resp <- result{err: ErrShuttingDown}
		default:
			if started {
				h.dep.Load().pool.Drain()
			}
			return
		}
	}
}

// worker is one per-engine dispatcher: it owns its engine for the
// deployment's whole lifetime, blocks for a first queued request,
// widens it into a dynamic batch and runs the forward itself. While one
// worker computes, its siblings (or, with a single engine, the queue
// itself) absorb arrivals, so batch formation always happens *after*
// the capacity wait rather than before it.
func (h *hostedModel) worker(dep *deployment) {
	defer h.workers.Done()
	// The pool starts full, so this acquire is normally instant — but
	// under rapid back-to-back swaps this worker may be scheduled only
	// after its own deployment has already been retired and its pool
	// drained, in which case a bare Acquire would block forever.
	var eng *secure.Engine
	select {
	case eng = <-dep.pool.AcquireC():
	case <-dep.retired:
		return
	case <-h.quit:
		return
	}
	slot := dep.slots[eng]
	for {
		h.idle.Add(1)
		select {
		case p := <-h.queue:
			h.idle.Add(-1)
			h.runBatch(dep, eng, slot, h.collect(slot, p))
		case <-dep.retired:
			h.idle.Add(-1)
			dep.pool.Release(eng)
			return
		case <-h.quit:
			h.idle.Add(-1)
			dep.pool.Release(eng)
			return
		}
	}
}

// collect widens a batch into the slot's reusable assembly slice. The
// fast path drains whatever the queue already holds — a deep queue
// therefore fills the batch with no timer at all (the "shrink the
// window when busy" limit case). A straggler window is armed only when
// the batch is still short AND no other worker is idle: if an idle
// engine exists, arrivals are picked up immediately anyway and waiting
// would only add latency, whereas with every engine busy the window
// trades a bounded delay for a wider (cheaper per sample) forward.
func (h *hostedModel) collect(slot *engineSlot, first *pending) []*pending {
	batch := append(slot.batch[:0], first)
	max := h.cfg.MaxBatch
	if max > 1 {
		for len(batch) < max {
			select {
			case p := <-h.queue:
				batch = append(batch, p)
				continue
			default:
			}
			break
		}
		if len(batch) < max && h.cfg.BatchWindow > 0 && h.idle.Load() == 0 {
			h.armTimer(slot)
			open := true
			for open && len(batch) < max {
				select {
				case p := <-h.queue:
					batch = append(batch, p)
				case <-slot.timer.C:
					open = false
				case <-h.quit:
					open = false
				}
			}
			// A still-armed timer (batch filled, or quit) is left to fire;
			// the next armTimer stops and drains it.
		}
	}
	slot.batch = batch
	return batch
}

// armTimer (re)arms the slot's reusable window timer, draining a stale
// fire left over from a previous collect that returned early.
func (h *hostedModel) armTimer(slot *engineSlot) {
	if slot.timer == nil {
		slot.timer = time.NewTimer(h.cfg.BatchWindow)
		return
	}
	if !slot.timer.Stop() {
		select {
		case <-slot.timer.C:
		default:
		}
	}
	slot.timer.Reset(h.cfg.BatchWindow)
}

// runBatch executes one batch on the worker's engine and fans the
// logits rows back to their requests. Inputs are packed into the slot's
// preallocated batch tensor and each row is copied into its request's
// pooled logits buffer, so a warm batch performs no heap allocations;
// engine outputs are valid only until the engine's next Forward, which
// cannot happen before this worker's next batch.
func (h *hostedModel) runBatch(dep *deployment, eng *secure.Engine, slot *engineSlot, batch []*pending) {
	h.busy.Add(1)
	start := time.Now()
	n := len(batch)
	in := dep.inputLen
	slot.x.Data = slot.xbuf[:n*in]
	slot.x.Shape = append(slot.x.Shape[:0], n, dep.inC, dep.inH, dep.inW)
	ok := 0
	for i, p := range batch {
		if len(p.input) != in {
			// The deployment changed shape between admission and now.
			p.resp <- result{err: fmt.Errorf("%w: input length %d no longer matches deployment (hot-swap changed the architecture)", ErrBadInput, len(p.input))}
			batch[i] = nil
			continue
		}
		copy(slot.xbuf[i*in:(i+1)*in], p.input)
		ok++
	}
	if ok == 0 {
		h.busy.Add(-1)
		return
	}
	logits := eng.Forward(&slot.x)
	per := len(logits.Data) / n
	h.stats.batches.Add(1)
	h.stats.items.Add(int64(ok))
	for {
		cur := h.stats.maxBatch.Load()
		if int64(n) <= cur || h.stats.maxBatch.CompareAndSwap(cur, int64(n)) {
			break
		}
	}
	for i, p := range batch {
		if p == nil {
			continue
		}
		if cap(p.logits) < per {
			p.logits = make([]float32, per)
		}
		out := p.logits[:per]
		copy(out, logits.Data[i*per:(i+1)*per])
		p.resp <- result{logits: out, gen: dep.gen, batch: n}
	}
	h.busy.Add(-1)
	h.observeDrain(ok, time.Since(start))
}

// observeDrain folds one completed batch into the drain-rate EWMA.
func (h *hostedModel) observeDrain(items int, d time.Duration) {
	if d <= 0 {
		return
	}
	r := float64(items) / d.Seconds()
	if old := math.Float64frombits(h.rateBits.Load()); old > 0 {
		const alpha = 0.2
		r = old + alpha*(r-old)
	}
	h.rateBits.Store(math.Float64bits(r))
}

// drainRate returns the EWMA drain rate in samples/sec (0 until the
// first batch completes).
func (h *hostedModel) drainRate() float64 {
	return math.Float64frombits(h.rateBits.Load())
}

// retryAfterHint derives the 429 backoff from the live queue depth and
// the recent drain rate: roughly how long until the present backlog
// (plus the rejected request itself) has drained. Before any batch has
// completed it falls back to the configured fixed hint; the result is
// clamped to [1, maxRetryAfterS] whole seconds.
func (h *hostedModel) retryAfterHint() int {
	fallback := int(h.cfg.RetryAfter / time.Second)
	if fallback < 1 {
		fallback = 1
	}
	rate := h.drainRate()
	if rate <= 0 {
		return fallback
	}
	secs := int(math.Ceil(float64(len(h.queue)+1) / rate))
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfterS {
		secs = maxRetryAfterS
	}
	return secs
}
