package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"seal"
	"seal/internal/secure"
)

// Admission errors. The HTTP layer maps these to status codes with
// errors.Is (429 and 503); they are exported so load drivers can branch
// on them too.
var (
	// ErrQueueFull reports that the model's bounded request queue had no
	// free slot — the backpressure signal.
	ErrQueueFull = errors.New("serve: request queue full")

	// ErrShuttingDown reports an admission attempt against a model (or
	// registry) that is draining for shutdown.
	ErrShuttingDown = errors.New("serve: shutting down")

	// ErrBadInput reports a malformed inference request (wrong input
	// length, undecodable body).
	ErrBadInput = errors.New("serve: bad input")
)

// deployment is one immutable generation of a hosted model: the
// Prepared bundle (plan, layout, image sealed under the tenant's
// sub-key) plus a pool of streaming engines over that image. Hot-swap
// replaces the whole deployment atomically; in-flight batches keep
// their deployment alive until they release its engines.
type deployment struct {
	spec     ModelSpec
	gen      int64
	prep     *seal.Prepared
	pool     *secure.Pool
	inC      int
	inH      int
	inW      int
	inputLen int // inC*inH*inW floats per sample

	// retired is closed by install() the moment this deployment is
	// swapped out, strictly before the background Drain of its pool
	// starts. The batcher selects on it while acquiring an engine:
	// without the signal, a swap landing between the batcher's
	// deployment load and its Acquire lets Drain win every engine and
	// the Acquire blocks forever — a permanently wedged model.
	retired chan struct{}
}

// pending is one admitted inference request waiting for its batch. The
// response channel is buffered so the batch runner never blocks on a
// departed client.
type pending struct {
	input []float32
	resp  chan result
}

type result struct {
	logits []float32 // caller-owned copy of this sample's logits row
	gen    int64
	batch  int
	err    error
}

// modelStats are the per-model serving counters, updated atomically on
// the hot path and snapshotted by the stats endpoint.
type modelStats struct {
	requests atomic.Int64
	rejected atomic.Int64
	batches  atomic.Int64
	items    atomic.Int64
	maxBatch atomic.Int64
	swaps    atomic.Int64
}

// hostedModel is one registry entry: a bounded admission queue, a
// batcher goroutine that assembles dynamic batches, and the current
// deployment. The admission path takes only an RLock and a non-blocking
// channel send; everything slow happens on the batcher side.
type hostedModel struct {
	tenant string
	name   string
	cfg    Config

	queue chan *pending
	quit  chan struct{}

	// mu orders admissions against stop() and serializes installs: an
	// admission holds RLock while it checks stopped and enqueues, so
	// once stop() has set stopped under Lock and closed quit, the queue
	// can only shrink and the batcher's final drain leaves nothing
	// unanswered.
	mu      sync.RWMutex
	stopped bool
	gen     int64 // last assigned generation, guarded by mu

	dep     atomic.Pointer[deployment]
	batcher sync.WaitGroup // the collect loop
	running sync.WaitGroup // in-flight batch executions
	retired sync.WaitGroup // background drains of swapped-out deployments

	stats modelStats
}

func newHostedModel(tenant, name string, cfg Config) *hostedModel {
	return &hostedModel{
		tenant: tenant,
		name:   name,
		cfg:    cfg,
		queue:  make(chan *pending, cfg.QueueDepth),
		quit:   make(chan struct{}),
	}
}

// install makes dep the model's current deployment and returns its
// generation. The first install starts the batcher; later installs are
// hot-swaps: the old deployment keeps serving its in-flight batches and
// is drained in the background once they release its engines.
func (h *hostedModel) install(dep *deployment) (int64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stopped {
		return 0, ErrShuttingDown
	}
	h.gen++
	dep.gen = h.gen
	old := h.dep.Swap(dep)
	if old == nil {
		h.batcher.Add(1)
		go h.loop()
		return dep.gen, nil
	}
	h.stats.swaps.Add(1)
	// Signal retirement before Drain can consume any engine, so a
	// dispatch already parked on the old pool re-targets the new
	// deployment instead of racing Drain for the last engine.
	close(old.retired)
	h.retired.Add(1)
	go func() {
		defer h.retired.Done()
		old.pool.Drain()
	}()
	return dep.gen, nil
}

// admit enqueues one sample for batching, or fails fast with
// ErrQueueFull / ErrShuttingDown. The input length is validated against
// the current deployment (and re-checked by the batch runner, since a
// hot-swap can change shapes between admission and execution).
func (h *hostedModel) admit(input []float32) (*pending, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.stopped {
		return nil, ErrShuttingDown
	}
	h.stats.requests.Add(1)
	if want := h.dep.Load().inputLen; len(input) != want {
		return nil, fmt.Errorf("%w: input length %d, want %d", ErrBadInput, len(input), want)
	}
	p := &pending{input: input, resp: make(chan result, 1)}
	select {
	case h.queue <- p:
		return p, nil
	default:
		h.stats.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

// stop drains the model completely: no new admissions, queued requests
// answered with ErrShuttingDown, every in-flight batch finished, every
// deployment's engine pool reclaimed.
func (h *hostedModel) stop() {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	h.stopped = true
	started := h.dep.Load() != nil
	h.mu.Unlock()
	close(h.quit)
	h.batcher.Wait()
	h.running.Wait()
	h.retired.Wait()
	if started {
		h.dep.Load().pool.Drain()
	}
}

// loop is the batcher: it blocks for the first queued request, widens
// it into a dynamic batch, and hands the batch to a worker engine. The
// engine Acquire is the backpressure valve — when every worker is busy
// the loop blocks here, the queue fills, and admissions start returning
// ErrQueueFull.
func (h *hostedModel) loop() {
	defer h.batcher.Done()
	for {
		select {
		case p := <-h.queue:
			h.dispatch(p)
		case <-h.quit:
			for {
				select {
				case p := <-h.queue:
					p.resp <- result{err: ErrShuttingDown}
				default:
					return
				}
			}
		}
	}
}

func (h *hostedModel) dispatch(first *pending) {
	batch := h.collect(first)
	dep, eng := h.acquireEngine(h.dep.Load())
	h.running.Add(1)
	go h.run(dep, eng, batch)
}

// acquireEngine checks an engine out of dep's pool, re-targeting the
// current deployment whenever the one it is waiting on retires. A bare
// pool.Acquire here would race the hot-swap: a swap landing after the
// caller loaded dep lets the old pool's background Drain take every
// engine and never give one back, blocking the batcher on the stale
// pool forever. Winning an engine from a just-retired pool is still
// safe — its Drain blocks until run() releases the engine, which is the
// in-flight guarantee hot-swap is built on.
func (h *hostedModel) acquireEngine(dep *deployment) (*deployment, *secure.Engine) {
	for {
		select {
		case eng := <-dep.pool.AcquireC():
			return dep, eng
		case <-dep.retired:
			dep = h.dep.Load()
		}
	}
}

// collect widens a batch: after the first request it keeps taking from
// the queue until the batch cap or the batching window is hit. A full
// queue therefore drains MaxBatch-at-a-time with no window wait.
func (h *hostedModel) collect(first *pending) []*pending {
	batch := []*pending{first}
	max := h.cfg.MaxBatch
	if max <= 1 {
		return batch
	}
	// Fast path: take whatever is already queued before arming a timer.
	for len(batch) < max {
		select {
		case p := <-h.queue:
			batch = append(batch, p)
			continue
		default:
		}
		break
	}
	if len(batch) == max || h.cfg.BatchWindow <= 0 {
		return batch
	}
	timer := time.NewTimer(h.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < max {
		select {
		case p := <-h.queue:
			batch = append(batch, p)
		case <-timer.C:
			return batch
		case <-h.quit:
			return batch
		}
	}
	return batch
}

// run executes one batch on a checked-out engine and fans the logits
// rows back to their requests. It owns the engine until every row has
// been copied out (engine outputs are valid only until its next
// Forward), then releases it — which is also what lets a retired
// deployment's Drain complete.
func (h *hostedModel) run(dep *deployment, eng *secure.Engine, batch []*pending) {
	defer h.running.Done()
	defer dep.pool.Release(eng)
	n := len(batch)
	x := seal.NewTensor(n, dep.inC, dep.inH, dep.inW)
	ok := 0
	for i, p := range batch {
		if len(p.input) != dep.inputLen {
			// The deployment changed shape between admission and now.
			p.resp <- result{err: fmt.Errorf("%w: input length %d no longer matches deployment (hot-swap changed the architecture)", ErrBadInput, len(p.input))}
			batch[i] = nil
			continue
		}
		copy(x.Data[i*dep.inputLen:(i+1)*dep.inputLen], p.input)
		ok++
	}
	if ok == 0 {
		return
	}
	logits := eng.Forward(x)
	per := len(logits.Data) / n
	h.stats.batches.Add(1)
	h.stats.items.Add(int64(ok))
	for {
		cur := h.stats.maxBatch.Load()
		if int64(n) <= cur || h.stats.maxBatch.CompareAndSwap(cur, int64(n)) {
			break
		}
	}
	for i, p := range batch {
		if p == nil {
			continue
		}
		out := make([]float32, per)
		copy(out, logits.Data[i*per:(i+1)*per])
		p.resp <- result{logits: out, gen: dep.gen, batch: n}
	}
}
