//go:build !race

package serve

// raceEnabled reports whether this test binary was built with the race
// detector. See race_test.go.
const raceEnabled = false
