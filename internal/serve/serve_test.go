package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seal"
	"seal/internal/aes"
	"seal/internal/parallel"
	"seal/internal/prng"
)

const (
	testArch  = "vgg16"
	testScale = 0.0625
)

var testMaster = seal.KeyFromString("gateway test master key")

func testSpec(seed uint64) ModelSpec {
	return ModelSpec{Arch: testArch, Scale: testScale, Seed: seed}
}

// expectedLogits runs the plaintext forward for one sample locally —
// the ground truth every served response must match bit for bit.
func expectedLogits(t *testing.T, seed uint64, input []float32) []float32 {
	t.Helper()
	arch, err := seal.ArchByName(testArch)
	if err != nil {
		t.Fatal(err)
	}
	arch = arch.Scale(testScale, 0)
	m, err := seal.BuildModel(arch, seed)
	if err != nil {
		t.Fatal(err)
	}
	x := seal.NewTensor(1, arch.InC, arch.InH, arch.InW)
	copy(x.Data, input)
	out := m.Forward(x, false)
	cp := make([]float32, len(out.Data))
	copy(cp, out.Data)
	return cp
}

func sampleInput(t *testing.T, seed uint64) []float32 {
	t.Helper()
	arch, err := seal.ArchByName(testArch)
	if err != nil {
		t.Fatal(err)
	}
	arch = arch.Scale(testScale, 0)
	rng := prng.New(seed)
	in := make([]float32, arch.InC*arch.InH*arch.InW)
	for i := range in {
		in[i] = float32(rng.NormFloat64())
	}
	return in
}

func newGateway(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.MasterKey = testMaster
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func register(t *testing.T, ts *httptest.Server, tenant, model string, spec ModelSpec) RegisterInfo {
	t.Helper()
	info, code := tryRegister(t, ts, tenant, model, spec)
	if code != http.StatusOK {
		t.Fatalf("register %s/%s: status %d", tenant, model, code)
	}
	return info
}

func tryRegister(t *testing.T, ts *httptest.Server, tenant, model string, spec ModelSpec) (RegisterInfo, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest(http.MethodPut,
		fmt.Sprintf("%s/v1/tenants/%s/models/%s", ts.URL, tenant, model), bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info RegisterInfo
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
	}
	return info, resp.StatusCode
}

func rawBytes(input []float32) []byte {
	raw := make([]byte, len(input)*4)
	for i, v := range input {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(v))
	}
	return raw
}

func rawFloats(raw []byte) []float32 {
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out
}

// infer posts one sample (raw encoding) and returns the decoded
// response plus status code; resp is valid only for status 200.
func infer(ts *httptest.Server, tenant, model string, input []float32) (InferResponse, *http.Response, error) {
	body, _ := json.Marshal(InferRequest{Raw: rawBytes(input)})
	resp, err := ts.Client().Post(
		fmt.Sprintf("%s/v1/tenants/%s/models/%s/infer", ts.URL, tenant, model),
		"application/json", bytes.NewReader(body))
	if err != nil {
		return InferResponse{}, nil, err
	}
	defer resp.Body.Close()
	var out InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return InferResponse{}, resp, err
		}
	}
	return out, resp, nil
}

func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func TestInferMatchesPlaintextBothEncodings(t *testing.T) {
	_, ts := newGateway(t, Config{Workers: 1})
	info := register(t, ts, "alpha", "main", testSpec(3))
	if info.Gen != 1 || info.Classes == 0 || info.WeightEncFraction <= 0 {
		t.Fatalf("odd register info: %+v", info)
	}
	input := sampleInput(t, 11)
	want := expectedLogits(t, 3, input)

	// Raw (base64 float32) round-trip.
	res, resp, err := infer(ts, "alpha", "main", input)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: %v status %v", err, resp.StatusCode)
	}
	if !bitsEqual(rawFloats(res.Raw), want) {
		t.Fatal("raw-encoded logits not bit-identical to plaintext forward")
	}
	if res.Gen != 1 || res.Batch < 1 {
		t.Fatalf("odd response meta: %+v", res)
	}

	// JSON number array round-trip (float32 → float64 → JSON → back is
	// exact).
	arr := make([]float64, len(input))
	for i, v := range input {
		arr[i] = float64(v)
	}
	body, _ := json.Marshal(InferRequest{Input: arr})
	httpResp, err := ts.Client().Post(ts.URL+"/v1/tenants/alpha/models/main/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var jres InferResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&jres); err != nil {
		t.Fatal(err)
	}
	got := make([]float32, len(jres.Logits))
	for i, v := range jres.Logits {
		got[i] = float32(v)
	}
	if !bitsEqual(got, want) {
		t.Fatal("JSON-encoded logits not bit-identical to plaintext forward")
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	_, ts := newGateway(t, Config{Workers: 1})
	// Unknown model → 404 (seal.ErrModelNotFound).
	_, resp, err := infer(ts, "nobody", "ghost", []float32{1})
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing model: %v status %v, want 404", err, resp.StatusCode)
	}
	// Unknown arch → 400 (seal.ErrUnknownArch).
	if _, code := tryRegister(t, ts, "a", "m", ModelSpec{Arch: "lenet"}); code != http.StatusBadRequest {
		t.Fatalf("unknown arch: status %d, want 400", code)
	}
	// Wrong input length → 400 (ErrBadInput).
	register(t, ts, "a", "m", testSpec(1))
	_, resp, err = infer(ts, "a", "m", []float32{1, 2, 3})
	if err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short input: %v status %v, want 400", err, resp.StatusCode)
	}
	// Unregister → subsequent lookups 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/tenants/a/models/m", nil)
	dresp, err := ts.Client().Do(req)
	if err != nil || dresp.StatusCode != http.StatusOK {
		t.Fatalf("unregister: %v status %v", err, dresp.StatusCode)
	}
	dresp.Body.Close()
	_, resp, err = infer(ts, "a", "m", sampleInput(t, 1))
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("after unregister: %v status %v, want 404", err, resp.StatusCode)
	}
}

// TestRegistrySentinelErrors pins the errors.Is contract the HTTP layer
// depends on.
func TestRegistrySentinelErrors(t *testing.T) {
	reg := NewRegistry(Config{MasterKey: testMaster}.withDefaults())
	defer reg.Close()
	if _, err := reg.Register("t", "m", ModelSpec{Arch: "nope"}); !errors.Is(err, seal.ErrUnknownArch) {
		t.Fatalf("register unknown arch: %v, want ErrUnknownArch", err)
	}
	if _, err := reg.lookup("t", "m"); !errors.Is(err, seal.ErrModelNotFound) {
		t.Fatalf("lookup missing: %v, want ErrModelNotFound", err)
	}
	if err := reg.Unregister("t", "m"); !errors.Is(err, seal.ErrModelNotFound) {
		t.Fatalf("unregister missing: %v, want ErrModelNotFound", err)
	}
	bad := 1.5
	if _, err := reg.Register("t", "m", ModelSpec{Arch: testArch, Scale: testScale, Ratio: &bad}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("bad ratio: %v, want ErrBadInput", err)
	}
	if _, err := reg.Register("t", "m", ModelSpec{Arch: testArch, Scale: testScale, PanelBytes: -4096}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("negative panel_bytes: %v, want ErrBadInput", err)
	}
}

// TestInt8ModelServing registers a quantized deployment and checks the
// served logits are bit-identical to the quantized eval forward — the
// int8 analogue of the float gateway's plaintext-forward contract.
func TestInt8ModelServing(t *testing.T) {
	_, ts := newGateway(t, Config{Workers: 2})
	spec := testSpec(9)
	spec.Int8 = true
	info := register(t, ts, "alpha", "q", spec)
	if !info.Int8 {
		t.Fatalf("register info does not report int8: %+v", info)
	}

	arch, err := seal.ArchByName(testArch)
	if err != nil {
		t.Fatal(err)
	}
	arch = arch.Scale(testScale, 0)
	p, err := seal.Prepare(arch, 9, seal.WithInt8())
	if err != nil {
		t.Fatal(err)
	}
	input := sampleInput(t, 13)
	x := seal.NewTensor(1, arch.InC, arch.InH, arch.InW)
	copy(x.Data, input)
	ref := p.Model().Forward(x, false)
	want := make([]float32, len(ref.Data))
	copy(want, ref.Data)

	res, resp, err := infer(ts, "alpha", "q", input)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: %v status %v", err, resp.StatusCode)
	}
	if !bitsEqual(rawFloats(res.Raw), want) {
		t.Fatal("served int8 logits not bit-identical to the quantized eval forward")
	}
}

// TestDynamicBatching fires concurrent requests into a single-worker
// model with a wide batch window and asserts they shared a forward
// pass — and that batching never costs bit-identity.
func TestDynamicBatching(t *testing.T) {
	_, ts := newGateway(t, Config{Workers: 1, MaxBatch: 8, BatchWindow: 150 * time.Millisecond, QueueDepth: 32})
	register(t, ts, "alpha", "batched", testSpec(5))
	input := sampleInput(t, 7)
	want := expectedLogits(t, 5, input)

	// Warm the engine so the batched burst measures steady state.
	if _, resp, err := infer(ts, "alpha", "batched", input); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: %v %v", err, resp)
	}

	const n = 6
	var wg sync.WaitGroup
	var maxBatch atomic.Int64
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, resp, err := infer(ts, "alpha", "batched", input)
			if err != nil || resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("infer: %v status %+v", err, resp.StatusCode)
				return
			}
			if !bitsEqual(rawFloats(res.Raw), want) {
				errs <- fmt.Errorf("batched logits diverged")
				return
			}
			for {
				cur := maxBatch.Load()
				if int64(res.Batch) <= cur || maxBatch.CompareAndSwap(cur, int64(res.Batch)) {
					break
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if maxBatch.Load() < 2 {
		t.Fatalf("no dynamic batching observed (max batch %d)", maxBatch.Load())
	}
}

// TestBackpressure429 floods a depth-1 queue and requires the gateway
// to shed load with 429 + Retry-After instead of queueing unboundedly.
func TestBackpressure429(t *testing.T) {
	s, ts := newGateway(t, Config{Workers: 1, MaxBatch: 1, QueueDepth: 1, BatchWindow: 0})
	register(t, ts, "alpha", "tiny", testSpec(2))
	input := sampleInput(t, 3)
	want := expectedLogits(t, 2, input)

	var rejected, served atomic.Int64
	for round := 0; round < 3 && rejected.Load() == 0; round++ {
		var wg sync.WaitGroup
		errs := make(chan error, 64)
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, resp, err := infer(ts, "alpha", "tiny", input)
				if err != nil {
					errs <- err
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					served.Add(1)
					if !bitsEqual(rawFloats(res.Raw), want) {
						errs <- fmt.Errorf("logits diverged under load")
					}
				case http.StatusTooManyRequests:
					rejected.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						errs <- fmt.Errorf("429 without Retry-After")
					}
				default:
					errs <- fmt.Errorf("unexpected status %d", resp.StatusCode)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	if rejected.Load() == 0 {
		t.Fatal("no 429 observed while flooding a depth-1 queue")
	}
	if served.Load() == 0 {
		t.Fatal("nothing served while flooding")
	}
	stats := s.Registry().Stats()
	if len(stats) != 1 || stats[0].Rejected == 0 {
		t.Fatalf("stats do not record rejections: %+v", stats)
	}
}

// TestHotSwapUnderLoad re-registers a model while clients hammer it:
// every successful response must be bit-identical to one of the two
// deployments' plaintext forwards, nothing may error, and once the
// swap returns, new requests must be served by the new generation.
func TestHotSwapUnderLoad(t *testing.T) {
	s, ts := newGateway(t, Config{Workers: 2, MaxBatch: 4, BatchWindow: time.Millisecond, QueueDepth: 64})
	register(t, ts, "alpha", "hot", testSpec(1))
	input := sampleInput(t, 9)
	want1 := expectedLogits(t, 1, input)
	want2 := expectedLogits(t, 2, input)

	stop := make(chan struct{})
	errs := make(chan error, 16)
	var wg sync.WaitGroup
	var served atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, resp, err := infer(ts, "alpha", "hot", input)
				if err != nil {
					errs <- err
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					served.Add(1)
					got := rawFloats(res.Raw)
					if !bitsEqual(got, want1) && !bitsEqual(got, want2) {
						errs <- fmt.Errorf("response matches neither deployment (gen %d)", res.Gen)
						return
					}
				case http.StatusTooManyRequests:
					time.Sleep(time.Millisecond)
				default:
					errs <- fmt.Errorf("unexpected status %d during swap", resp.StatusCode)
					return
				}
			}
		}()
	}

	time.Sleep(100 * time.Millisecond)
	info := register(t, ts, "alpha", "hot", testSpec(2)) // hot-swap
	if info.Gen != 2 {
		t.Fatalf("swap gen %d, want 2", info.Gen)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if served.Load() == 0 {
		t.Fatal("no successful responses during swap")
	}

	// The swap has returned: a fresh request must hit generation 2.
	res, resp, err := infer(ts, "alpha", "hot", input)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap infer: %v %v", err, resp.StatusCode)
	}
	if res.Gen != 2 || !bitsEqual(rawFloats(res.Raw), want2) {
		t.Fatalf("post-swap response gen %d not serving the new deployment", res.Gen)
	}
	if st := s.Registry().Stats(); st[0].Swaps != 1 {
		t.Fatalf("stats swaps %d, want 1", st[0].Swaps)
	}
}

// TestSwapHandsOffWorkers pins the hot-swap liveness invariant under
// the per-engine dispatcher structure: after a swap, the old
// deployment's pool drains completely (its workers observed `retired`
// and released their engines — with a single engine, a missed handoff
// would wedge the drain forever), and the queue is still consumed — by
// the new generation's workers only.
func TestSwapHandsOffWorkers(t *testing.T) {
	reg := NewRegistry(Config{MasterKey: testMaster, Workers: 1}.withDefaults())
	defer reg.Close()
	if _, err := reg.Register("t", "m", testSpec(1)); err != nil {
		t.Fatal(err)
	}
	h, err := reg.lookup("t", "m")
	if err != nil {
		t.Fatal(err)
	}
	stale := h.dep.Load() // the deployment about to be retired
	if _, err := reg.Register("t", "m", testSpec(2)); err != nil {
		t.Fatal(err)
	}

	// The old pool must drain without help: its worker has to notice
	// retirement and release the only engine.
	drained := make(chan struct{})
	go func() { h.retired.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("old pool never drained — a retired worker is squatting on its engine")
	}
	select {
	case <-stale.retired:
	default:
		t.Fatal("retired channel not closed on the swapped-out deployment")
	}

	// And the model must still be live, served by generation 2.
	p, err := h.admit(sampleInput(t, 5))
	if err != nil {
		t.Fatalf("post-swap admit: %v", err)
	}
	select {
	case res := <-p.resp:
		if res.err != nil {
			t.Fatalf("post-swap infer: %v", res.err)
		}
		if res.gen != 2 {
			t.Fatalf("post-swap request served by gen %d, want 2", res.gen)
		}
		h.putPending(p)
	case <-time.After(10 * time.Second):
		t.Fatal("post-swap request never served — no live worker on the new deployment")
	}
}

// TestRapidHotSwapNeverWedges hammers install() against dispatch():
// with a single worker, a swap landing between the batcher's deployment
// load and its engine acquire used to let the old pool's background
// Drain win the only engine, leaving the batcher blocked on the stale
// pool forever — every later request 429s and Close hangs. Back-to-back
// swaps under continuous load make that window hit; the test passes
// only if the batcher stays live afterwards and Close returns.
func TestRapidHotSwapNeverWedges(t *testing.T) {
	reg := NewRegistry(Config{
		MasterKey: testMaster, Workers: 1, MaxBatch: 2, QueueDepth: 8,
	}.withDefaults())
	if _, err := reg.Register("t", "m", testSpec(1)); err != nil {
		t.Fatal(err)
	}
	h, err := reg.lookup("t", "m")
	if err != nil {
		t.Fatal(err)
	}
	input := sampleInput(t, 21)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p, err := h.admit(input)
				if err != nil {
					continue // full queue — keep the batcher saturated
				}
				<-p.resp
			}
		}()
	}

	for swap := 0; swap < 8; swap++ {
		if _, err := reg.Register("t", "m", testSpec(uint64(1+swap%2))); err != nil {
			t.Fatalf("swap %d: %v", swap, err)
		}
	}
	close(stop)
	wg.Wait()

	// The batcher must still be alive: a fresh request gets served.
	p, err := h.admit(input)
	if err != nil {
		t.Fatalf("post-swap admit: %v", err)
	}
	select {
	case res := <-p.resp:
		if res.err != nil {
			t.Fatalf("post-swap infer: %v", res.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("batcher wedged: post-swap request never served")
	}
	done := make(chan struct{})
	go func() { reg.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("registry Close hung after rapid hot-swaps")
	}
}

// TestTenantKeyIsolation registers the same spec for two tenants and
// verifies the key hierarchy end to end: identical logits (same
// weights), different ciphertext (different derived keys), and tenant
// A's key cannot decrypt tenant B's image.
func TestTenantKeyIsolation(t *testing.T) {
	s, ts := newGateway(t, Config{Workers: 1})
	register(t, ts, "tenant-a", "m", testSpec(4))
	register(t, ts, "tenant-b", "m", testSpec(4))
	input := sampleInput(t, 13)
	want := expectedLogits(t, 4, input)
	for _, tenant := range []string{"tenant-a", "tenant-b"} {
		res, resp, err := infer(ts, tenant, "m", input)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s infer: %v %v", tenant, err, resp.StatusCode)
		}
		if !bitsEqual(rawFloats(res.Raw), want) {
			t.Fatalf("%s logits diverged", tenant)
		}
	}

	ha, err := s.Registry().lookup("tenant-a", "m")
	if err != nil {
		t.Fatal(err)
	}
	hb, err := s.Registry().lookup("tenant-b", "m")
	if err != nil {
		t.Fatal(err)
	}
	imgA, imgB := ha.dep.Load().prep.Image(), hb.dep.Load().prep.Image()
	// Layer 0 is a boundary layer: fully encrypted by the default plan.
	name := imgA.Layout.Plan.Layers[0].Name
	ra, rb := imgA.Layout.Region("w:"+name), imgB.Layout.Region("w:"+name)
	if ra == nil || rb == nil || !ra.Encrypted(0) || !rb.Encrypted(0) {
		t.Fatal("expected an encrypted boundary weights region")
	}

	busA := append([]byte(nil), imgA.Snoop(ra.Base)...)
	busB := append([]byte(nil), imgB.Snoop(rb.Base)...)
	if bytes.Equal(busA, busB) {
		t.Fatal("two tenants produced identical ciphertext — keys not isolated")
	}

	// Ground truth: the first plaintext line of the region.
	truth := make([]byte, 64)
	if _, err := imgB.DecryptRangeInto(rb, 0, truth); err != nil {
		t.Fatal(err)
	}

	// Tenant B's derived key decrypts tenant B's bus capture...
	keyA := testMaster.DeriveSubKey("tenant-a")
	keyB := testMaster.DeriveSubKey("tenant-b")
	decrypt := func(key seal.Key, line []byte, addr uint64) []byte {
		c, err := aes.New(key.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		out := make([]byte, len(line))
		aes.NewCTR(c).XORKeyStream(out, line, addr, 1)
		return out
	}
	if got := decrypt(keyB, busB, rb.Base); !bytes.Equal(got, truth) {
		t.Fatal("tenant B's own key failed to decrypt its image")
	}
	// ...but tenant A's key recovers only keystream garbage from it.
	if got := decrypt(keyA, busB, rb.Base); bytes.Equal(got, truth) {
		t.Fatal("tenant A's key decrypted tenant B's image — isolation broken")
	}
}

// TestShutdownDrains closes the gateway under load: every in-flight
// request resolves (correct logits, 429, 503 or 404 — never a hang,
// never wrong bits), Close returns, and the registry is empty after.
func TestShutdownDrains(t *testing.T) {
	s, ts := newGateway(t, Config{Workers: 2, MaxBatch: 4, BatchWindow: time.Millisecond, QueueDepth: 16})
	register(t, ts, "alpha", "drain", testSpec(6))
	input := sampleInput(t, 17)
	want := expectedLogits(t, 6, input)

	stop := make(chan struct{})
	errs := make(chan error, 16)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, resp, err := infer(ts, "alpha", "drain", input)
				if err != nil {
					errs <- err
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					if !bitsEqual(rawFloats(res.Raw), want) {
						errs <- fmt.Errorf("logits diverged during shutdown")
						return
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusNotFound:
					// All fine during/after shutdown.
				default:
					errs <- fmt.Errorf("unexpected status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)

	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not drain within 30s")
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := len(s.Registry().List()); n != 0 {
		t.Fatalf("%d models still listed after Close", n)
	}
	_, resp, err := infer(ts, "alpha", "drain", input)
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-close infer: %v status %v, want 404", err, resp.StatusCode)
	}
}

// TestSaturatedQueueWidensBatches pins the whole point of the per-engine
// dispatcher pipeline: with a single engine and a deep standing queue,
// batch formation happens after the capacity wait, so the forward passes
// must run wide — average batch at least MaxBatch/2 over the run, full
// MaxBatch at peak. No timer window is configured: the widening comes
// purely from draining the backlog that accumulates while the engine
// computes.
func TestSaturatedQueueWidensBatches(t *testing.T) {
	reg := NewRegistry(Config{
		MasterKey: testMaster, Workers: 1, MaxBatch: 8, QueueDepth: 64, BatchWindow: 0,
	}.withDefaults())
	defer reg.Close()
	if _, err := reg.Register("t", "m", testSpec(3)); err != nil {
		t.Fatal(err)
	}
	h, err := reg.lookup("t", "m")
	if err != nil {
		t.Fatal(err)
	}
	input := sampleInput(t, 7)
	want := expectedLogits(t, 3, input)

	const n = 64
	pendings := make([]*pending, 0, n)
	for len(pendings) < n {
		p, err := h.admit(input)
		if errors.Is(err, ErrQueueFull) {
			time.Sleep(100 * time.Microsecond) // the engine is draining; re-offer
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	for i, p := range pendings {
		res := <-p.resp
		if res.err != nil {
			t.Fatalf("request %d: %v", i, res.err)
		}
		if !bitsEqual(res.logits, want) {
			t.Fatalf("request %d: logits diverged under saturation", i)
		}
		h.putPending(p)
	}

	batches, items := h.stats.batches.Load(), h.stats.items.Load()
	if batches == 0 {
		t.Fatal("no batches recorded")
	}
	avg := float64(items) / float64(batches)
	if maxB := h.stats.maxBatch.Load(); maxB < 8 {
		t.Fatalf("peak batch %d, want MaxBatch 8 under a saturated queue", maxB)
	}
	if avg < 4 {
		t.Fatalf("avg batch %.2f under a saturated queue, want >= MaxBatch/2 = 4", avg)
	}

	// The run also primes the observability satellites: a live drain rate
	// and a derived (bounded) Retry-After hint in the stats snapshot.
	st := reg.Stats()
	if len(st) != 1 || st[0].DrainRateQPS <= 0 {
		t.Fatalf("stats drain rate not populated: %+v", st)
	}
	if st[0].RetryHintS < 1 || st[0].RetryHintS > maxRetryAfterS {
		t.Fatalf("retry hint %d outside [1,%d]", st[0].RetryHintS, maxRetryAfterS)
	}
	if st[0].BusyEngines != 0 || st[0].IdleWorkers != 1 {
		t.Fatalf("drained model should be idle: busy=%d idle=%d", st[0].BusyEngines, st[0].IdleWorkers)
	}
}

// TestRawF32RoundTrip exercises the raw little-endian float32 content
// type over real HTTP: bit-identical logits, serving metadata in
// headers, the octet-stream synonym, and exact-length enforcement in
// both directions.
func TestRawF32RoundTrip(t *testing.T) {
	_, ts := newGateway(t, Config{Workers: 1})
	register(t, ts, "alpha", "raw", testSpec(8))
	input := sampleInput(t, 19)
	want := expectedLogits(t, 8, input)
	url := ts.URL + "/v1/tenants/alpha/models/raw/infer"
	body := rawBytes(input)

	for _, ct := range []string{ContentTypeF32, "application/octet-stream", ContentTypeF32 + "; charset=binary"} {
		resp, err := ts.Client().Post(url, ct, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("ct %q: %v status %d body %s", ct, err, resp.StatusCode, got)
		}
		if gct := resp.Header.Get("Content-Type"); gct != ContentTypeF32 {
			t.Fatalf("ct %q: response Content-Type %q, want %q", ct, gct, ContentTypeF32)
		}
		if !bitsEqual(rawFloats(got), want) {
			t.Fatalf("ct %q: raw-f32 logits not bit-identical to plaintext forward", ct)
		}
		if m := resp.Header.Get("X-Seal-Model"); m != "alpha/raw" {
			t.Fatalf("X-Seal-Model %q", m)
		}
		if g := resp.Header.Get("X-Seal-Gen"); g != "1" {
			t.Fatalf("X-Seal-Gen %q, want 1", g)
		}
		if b := resp.Header.Get("X-Seal-Batch"); b == "" || b == "0" {
			t.Fatalf("X-Seal-Batch %q", b)
		}
	}

	// Wrong lengths are 400s, not hangs or truncated reads.
	for _, bad := range [][]byte{body[:len(body)-4], append(append([]byte{}, body...), 0, 0, 0, 0), {}} {
		resp, err := ts.Client().Post(url, ContentTypeF32, bytes.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body length %d: status %d, want 400", len(bad), resp.StatusCode)
		}
	}
}

// TestSteadyStateZeroAllocs pins the zero-allocation contract of the
// admit→dispatch→respond path (the HTTP transport is excluded by
// driving the hosted model directly): with warm pools, a full round
// trip — pooled request checkout, input copy, enqueue, per-engine
// collect, packed batch forward, logits fan-out, recycle — must not
// touch the heap. The engine's own warm path is allocation-free only on
// the serial worker pool, so this runs in CI's SEAL_WORKERS=1 step.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if parallel.Workers() != 1 {
		t.Skipf("needs SEAL_WORKERS=1 (parallel dispatch allocates closures; workers=%d)", parallel.Workers())
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates on the channel round trip")
	}
	reg := NewRegistry(Config{
		MasterKey: testMaster, Workers: 1, MaxBatch: 8, QueueDepth: 16, BatchWindow: 0,
	}.withDefaults())
	defer reg.Close()
	if _, err := reg.Register("t", "m", testSpec(4)); err != nil {
		t.Fatal(err)
	}
	h, err := reg.lookup("t", "m")
	if err != nil {
		t.Fatal(err)
	}
	input := sampleInput(t, 23)
	roundTrip := func() {
		p, err := h.admit(input)
		if err != nil {
			t.Fatal(err)
		}
		res := <-p.resp
		if res.err != nil {
			t.Fatal(res.err)
		}
		h.putPending(p)
	}
	for i := 0; i < 4; i++ {
		roundTrip() // warm: pending pool, logits buffers, engine workspaces
	}
	if n := testing.AllocsPerRun(100, roundTrip); n != 0 {
		t.Fatalf("steady-state serve round trip allocates %.2f objects/op, want 0", n)
	}
}
