// Package serve is the encrypted-inference serving gateway: a
// multi-tenant registry of Prepared model bundles behind a stdlib
// net/http API. Each registered model is built once — plan, EMalloc
// layout, AES-CTR-sealed memory image, and a pool of streaming
// secure-inference engines — and then serves requests admitted through
// a bounded queue (429 + Retry-After on overflow) and dynamically
// batched up to a configurable window/size. Every tenant's images are
// sealed under a sub-key derived from the gateway master key
// (seal.Key.DeriveSubKey), so no two tenants ever share keystream;
// hot-swapping a model builds the new deployment off the request path
// and swaps it atomically while the old one drains.
package serve

import (
	"fmt"
	"sort"
	"sync"

	"seal"
	"seal/internal/secure"
)

// ModelSpec is the client-supplied description of a model to host. The
// gateway builds everything else (weights, plan, sealed image) from it
// deterministically, so registering the same spec twice produces
// bit-identical deployments.
type ModelSpec struct {
	// Arch names a zoo architecture: vgg16, resnet18, resnet34.
	Arch string `json:"arch"`
	// Scale multiplies channel widths (0 means 1.0 — full width).
	Scale float64 `json:"scale,omitempty"`
	// Ratio overrides the SE encryption ratio; nil keeps the paper's 0.5.
	Ratio *float64 `json:"ratio,omitempty"`
	// Seed drives the deterministic weight initialization.
	Seed uint64 `json:"seed"`
	// PanelBytes overrides the streaming engines' panel budget (0 keeps
	// the engine default; negative values are rejected).
	PanelBytes int `json:"panel_bytes,omitempty"`
	// Int8 seals the deployment in the quantized int8 layout: 1-byte
	// weights with plaintext per-channel scales, ~4x less ciphertext on
	// the bus per forward, logits within quantization tolerance of the
	// float deployment.
	Int8 bool `json:"int8,omitempty"`
}

// RegisterInfo summarizes a successful (re-)registration.
type RegisterInfo struct {
	Model             string  `json:"model"`
	Gen               int64   `json:"gen"`
	Arch              string  `json:"arch"`
	Scale             float64 `json:"scale"`
	Ratio             float64 `json:"ratio"`
	Seed              uint64  `json:"seed"`
	Workers           int     `json:"workers"`
	InputLen          int     `json:"input_len"`
	Classes           int     `json:"classes"`
	WeightEncFraction float64 `json:"weight_enc_fraction"`
	ImageEncFraction  float64 `json:"image_enc_fraction"`
	Int8              bool    `json:"int8,omitempty"`
}

// ModelInfo is one row of the model listing.
type ModelInfo struct {
	Model string  `json:"model"`
	Gen   int64   `json:"gen"`
	Arch  string  `json:"arch"`
	Scale float64 `json:"scale"`
	Seed  uint64  `json:"seed"`
}

// ModelStats is the serving-counter snapshot for one hosted model.
// QueueLen, BusyEngines and IdleWorkers make saturation observable
// without a load driver: a persistently non-empty queue with every
// engine busy is the saturated regime; DrainRateQPS and RetryHintS
// expose what a rejected client would currently be told.
type ModelStats struct {
	Model        string  `json:"model"`
	Gen          int64   `json:"gen"`
	Requests     int64   `json:"requests"`
	Rejected     int64   `json:"rejected_429"`
	Batches      int64   `json:"batches"`
	Items        int64   `json:"batched_items"`
	AvgBatch     float64 `json:"avg_batch"`
	MaxBatch     int64   `json:"max_batch"`
	Swaps        int64   `json:"swaps"`
	Workers      int     `json:"workers"`
	QueueCap     int     `json:"queue_cap"`
	QueueLen     int     `json:"queue_len"`
	BusyEngines  int64   `json:"busy_engines"`
	IdleWorkers  int64   `json:"idle_workers"`
	DrainRateQPS float64 `json:"drain_rate_qps"`
	RetryHintS   int     `json:"retry_after_hint_s"`
}

// Registry is the multi-tenant model table. All methods are safe for
// concurrent use; the expensive work of Register happens outside the
// table lock so registration never stalls the inference path.
type Registry struct {
	cfg    Config
	mu     sync.RWMutex
	models map[string]*hostedModel
	closed bool
}

// NewRegistry builds an empty registry. cfg must already have defaults
// applied (Server.New does this).
func NewRegistry(cfg Config) *Registry {
	return &Registry{cfg: cfg, models: make(map[string]*hostedModel)}
}

func modelKey(tenant, name string) string { return tenant + "/" + name }

// Register hosts (or hot-swaps) tenant's model under the given name.
// The deployment — model build, SE plan, layout, image sealed under the
// tenant's derived sub-key, and one engine per worker — is constructed
// before any lock is taken; for an existing name the swap is atomic and
// the previous deployment drains in the background while its in-flight
// batches finish.
func (r *Registry) Register(tenant, name string, spec ModelSpec) (*RegisterInfo, error) {
	if tenant == "" || name == "" {
		return nil, fmt.Errorf("%w: empty tenant or model name", ErrBadInput)
	}
	dep, info, err := r.build(tenant, spec)
	if err != nil {
		return nil, err
	}
	k := modelKey(tenant, name)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrShuttingDown
	}
	h, ok := r.models[k]
	if !ok {
		// Install before publishing, so a concurrent lookup never sees a
		// hosted model without a deployment.
		h = newHostedModel(tenant, name, r.cfg)
		if _, err := h.install(dep); err != nil {
			r.mu.Unlock()
			return nil, err
		}
		r.models[k] = h
		r.mu.Unlock()
	} else {
		r.mu.Unlock()
		if _, err := h.install(dep); err != nil {
			return nil, err
		}
	}
	info.Model = k
	info.Gen = dep.gen
	return info, nil
}

// build constructs a deployment for spec, sealed under the tenant's
// sub-key.
func (r *Registry) build(tenant string, spec ModelSpec) (*deployment, *RegisterInfo, error) {
	arch, err := seal.ArchByName(spec.Arch)
	if err != nil {
		return nil, nil, err
	}
	if spec.Scale < 0 {
		return nil, nil, fmt.Errorf("%w: scale %v", ErrBadInput, spec.Scale)
	}
	if spec.Scale != 0 && spec.Scale != 1 {
		arch = arch.Scale(spec.Scale, 0)
	}
	opts := seal.DefaultOptions()
	if spec.Ratio != nil {
		if *spec.Ratio < 0 || *spec.Ratio > 1 {
			return nil, nil, fmt.Errorf("%w: ratio %v", ErrBadInput, *spec.Ratio)
		}
		opts.Ratio = *spec.Ratio
	}
	if spec.PanelBytes < 0 {
		return nil, nil, fmt.Errorf("%w: panel_bytes %d", ErrBadInput, spec.PanelBytes)
	}
	key := r.cfg.MasterKey.DeriveSubKey(tenant)
	popts := []seal.PrepareOption{
		seal.WithOptions(opts),
		seal.WithKey(key),
		seal.WithBatch(r.cfg.MaxBatch),
	}
	if spec.PanelBytes > 0 {
		popts = append(popts, seal.WithPanelBytes(spec.PanelBytes))
	}
	if spec.Int8 {
		popts = append(popts, seal.WithInt8())
	}
	prep, err := seal.Prepare(arch, spec.Seed, popts...)
	if err != nil {
		return nil, nil, err
	}
	engines := make([]*secure.Engine, r.cfg.Workers)
	engines[0] = prep.Engine()
	for i := 1; i < len(engines); i++ {
		if engines[i], err = prep.NewEngine(); err != nil {
			return nil, nil, err
		}
	}
	pool, err := secure.NewPool(engines...)
	if err != nil {
		return nil, nil, err
	}
	dep := &deployment{
		spec:     spec,
		prep:     prep,
		pool:     pool,
		slots:    make(map[*secure.Engine]*engineSlot, len(engines)),
		inC:      arch.InC,
		inH:      arch.InH,
		inW:      arch.InW,
		inputLen: arch.InC * arch.InH * arch.InW,
		retired:  make(chan struct{}),
	}
	// Give every engine its dispatch slot and warm it with one forward at
	// full batch width: engine workspaces (im2col, panel staging, layer
	// outputs) and the slot's batch tensor are grow-only, so after this
	// no steady-state request allocates. The warm input is nonzero so the
	// int8 path's dynamic quantization scales stay well-defined. Warm-up
	// work is excluded from the serving stats.
	for _, eng := range engines {
		slot := newEngineSlot(r.cfg.MaxBatch, dep.inputLen)
		dep.slots[eng] = slot
		for i := range slot.xbuf {
			slot.xbuf[i] = float32(i%3) - 1
		}
		slot.x.Data = slot.xbuf
		slot.x.Shape = append(slot.x.Shape[:0], r.cfg.MaxBatch, dep.inC, dep.inH, dep.inW)
		eng.Forward(&slot.x)
		eng.ResetStats()
	}
	info := &RegisterInfo{
		Arch:              spec.Arch,
		Scale:             effectiveScale(spec.Scale),
		Ratio:             opts.Ratio,
		Seed:              spec.Seed,
		Workers:           len(engines),
		InputLen:          dep.inputLen,
		Classes:           classes(arch),
		WeightEncFraction: prep.Plan().WeightEncFraction(),
		ImageEncFraction:  prep.Layout().EncryptedFraction(),
		Int8:              prep.Int8(),
	}
	return dep, info, nil
}

func effectiveScale(s float64) float64 {
	if s == 0 {
		return 1
	}
	return s
}

// classes returns the width of the network's final weight layer — the
// logits length per sample.
func classes(a *seal.Arch) int {
	for i := len(a.Specs) - 1; i >= 0; i-- {
		if a.Specs[i].WeightCount() > 0 {
			return a.Specs[i].OutC
		}
	}
	return 0
}

// lookup resolves a hosted model; missing entries wrap
// seal.ErrModelNotFound.
func (r *Registry) lookup(tenant, name string) (*hostedModel, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.models[modelKey(tenant, name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", seal.ErrModelNotFound, tenant, name)
	}
	return h, nil
}

// Unregister removes a model and drains it completely before returning.
func (r *Registry) Unregister(tenant, name string) error {
	k := modelKey(tenant, name)
	r.mu.Lock()
	h, ok := r.models[k]
	delete(r.models, k)
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s/%s", seal.ErrModelNotFound, tenant, name)
	}
	h.stop()
	return nil
}

// List returns the hosted models sorted by name.
func (r *Registry) List() []ModelInfo {
	r.mu.RLock()
	out := make([]ModelInfo, 0, len(r.models))
	for k, h := range r.models {
		dep := h.dep.Load()
		out = append(out, ModelInfo{
			Model: k,
			Gen:   dep.gen,
			Arch:  dep.spec.Arch,
			Scale: effectiveScale(dep.spec.Scale),
			Seed:  dep.spec.Seed,
		})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

// Stats snapshots the serving counters of every hosted model, sorted by
// name.
func (r *Registry) Stats() []ModelStats {
	r.mu.RLock()
	out := make([]ModelStats, 0, len(r.models))
	for k, h := range r.models {
		dep := h.dep.Load()
		st := ModelStats{
			Model:        k,
			Gen:          dep.gen,
			Requests:     h.stats.requests.Load(),
			Rejected:     h.stats.rejected.Load(),
			Batches:      h.stats.batches.Load(),
			Items:        h.stats.items.Load(),
			MaxBatch:     h.stats.maxBatch.Load(),
			Swaps:        h.stats.swaps.Load(),
			Workers:      dep.pool.Size(),
			QueueCap:     cap(h.queue),
			QueueLen:     len(h.queue),
			BusyEngines:  h.busy.Load(),
			IdleWorkers:  h.idle.Load(),
			DrainRateQPS: h.drainRate(),
			RetryHintS:   h.retryAfterHint(),
		}
		if st.Batches > 0 {
			st.AvgBatch = float64(st.Items) / float64(st.Batches)
		}
		out = append(out, st)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

// Close drains every hosted model and rejects all future work. It
// returns once no request is in flight and every engine pool has been
// reclaimed.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	models := make([]*hostedModel, 0, len(r.models))
	for _, h := range r.models {
		models = append(models, h)
	}
	r.models = make(map[string]*hostedModel)
	r.mu.Unlock()
	for _, h := range models {
		h.stop()
	}
}
