//go:build race

package serve

// raceEnabled reports whether this test binary was built with the race
// detector. Allocation-count assertions are skipped under race: the
// instrumentation itself allocates (one object per instrumented channel
// round trip), which would fail AllocsPerRun pins that hold in normal
// builds.
const raceEnabled = true
