package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"seal"
	"seal/internal/parallel"
)

// Config tunes the gateway. The zero value is usable: New fills in the
// defaults below.
type Config struct {
	// MasterKey roots the per-tenant key hierarchy: tenant t's images
	// are sealed under MasterKey.DeriveSubKey(t).
	MasterKey seal.Key
	// QueueDepth bounds each model's admission queue; a full queue
	// answers 429 with Retry-After.
	QueueDepth int
	// MaxBatch caps dynamic batch size.
	MaxBatch int
	// BatchWindow is how long the batcher waits to widen a non-full
	// batch after its first request.
	BatchWindow time.Duration
	// Workers is the number of streaming engines (concurrent batches)
	// per model; 0 sizes it from the shared worker pool.
	Workers int
	// RetryAfter is the backoff hint sent with 429 responses.
	RetryAfter time.Duration
}

// Defaults for the zero Config.
const (
	DefaultQueueDepth  = 64
	DefaultMaxBatch    = 8
	DefaultBatchWindow = 2 * time.Millisecond
	DefaultRetryAfter  = time.Second
)

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.BatchWindow < 0 {
		c.BatchWindow = 0
	}
	if c.Workers <= 0 {
		c.Workers = parallel.Workers()
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	return c
}

// Server is the HTTP face of the gateway:
//
//	GET    /healthz
//	GET    /v1/models
//	GET    /v1/stats
//	PUT    /v1/tenants/{tenant}/models/{model}        register / hot-swap
//	DELETE /v1/tenants/{tenant}/models/{model}        unregister (drains)
//	POST   /v1/tenants/{tenant}/models/{model}/infer  one sample per request
//
// Inference requests carry one sample each; the gateway batches
// concurrent requests dynamically before running them on a pooled
// engine, so client code stays trivially simple while the zero-alloc
// eval path gets wide batches.
type Server struct {
	cfg Config
	reg *Registry
	mux *http.ServeMux
}

// New builds a gateway server with an empty registry.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, reg: NewRegistry(cfg), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/models", s.handleList)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("PUT /v1/tenants/{tenant}/models/{model}", s.handleRegister)
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}/models/{model}", s.handleUnregister)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/models/{model}/infer", s.handleInfer)
	return s
}

// Handler returns the HTTP handler to mount.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the model table (the bench driver and tests use it
// directly).
func (s *Server) Registry() *Registry { return s.reg }

// Close drains every model and rejects further work. Callers doing an
// HTTP-level graceful shutdown should stop the listener first
// (http.Server.Shutdown), then Close the gateway.
func (s *Server) Close() { s.reg.Close() }

// InferRequest is the inference body: exactly one of Input (a JSON
// number array) or Raw (base64 little-endian float32 bytes) must hold
// the sample. Numbers survive the JSON round-trip bit-exactly (every
// float32 is an exact float64), so either form supports the gateway's
// bit-identity guarantee.
type InferRequest struct {
	Input []float64 `json:"input,omitempty"`
	Raw   []byte    `json:"raw,omitempty"`
}

func (q *InferRequest) sample() ([]float32, error) {
	switch {
	case len(q.Raw) > 0 && len(q.Input) > 0:
		return nil, fmt.Errorf("%w: both input and raw set", ErrBadInput)
	case len(q.Raw) > 0:
		if len(q.Raw)%4 != 0 {
			return nil, fmt.Errorf("%w: raw length %d not a multiple of 4", ErrBadInput, len(q.Raw))
		}
		out := make([]float32, len(q.Raw)/4)
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(q.Raw[i*4:]))
		}
		return out, nil
	case len(q.Input) > 0:
		out := make([]float32, len(q.Input))
		for i, v := range q.Input {
			out[i] = float32(v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: empty input", ErrBadInput)
	}
}

// InferResponse returns one sample's logits. Raw mirrors the request
// encoding: raw in, raw out; JSON numbers otherwise. Batch reports how
// many requests shared the forward pass, Gen which deployment served
// it.
type InferResponse struct {
	Model  string    `json:"model"`
	Gen    int64     `json:"gen"`
	Batch  int       `json:"batch"`
	Logits []float64 `json:"logits,omitempty"`
	Raw    []byte    `json:"raw,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Stats())
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var spec ModelSpec
	if err := decodeJSON(w, r, &spec); err != nil {
		s.writeError(w, err)
		return
	}
	info, err := s.reg.Register(r.PathValue("tenant"), r.PathValue("model"), spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Unregister(r.PathValue("tenant"), r.PathValue("model")); err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "unregistered"})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	tenant, name := r.PathValue("tenant"), r.PathValue("model")
	h, err := s.reg.lookup(tenant, name)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req InferRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	input, err := req.sample()
	if err != nil {
		s.writeError(w, err)
		return
	}
	p, err := h.admit(input)
	if err != nil {
		s.writeError(w, err)
		return
	}
	select {
	case res := <-p.resp:
		if res.err != nil {
			s.writeError(w, res.err)
			return
		}
		resp := InferResponse{Model: modelKey(tenant, name), Gen: res.gen, Batch: res.batch}
		if len(req.Raw) > 0 {
			resp.Raw = make([]byte, len(res.logits)*4)
			for i, v := range res.logits {
				binary.LittleEndian.PutUint32(resp.Raw[i*4:], math.Float32bits(v))
			}
		} else {
			resp.Logits = make([]float64, len(res.logits))
			for i, v := range res.logits {
				resp.Logits[i] = float64(v)
			}
		}
		writeJSON(w, http.StatusOK, resp)
	case <-r.Context().Done():
		// Client gone; the batch still completes and its result is
		// dropped via the buffered response channel.
	}
}

// statusFor maps the façade's sentinel errors (and the gateway's own)
// to HTTP statuses — errors.Is, never string matching.
func statusFor(err error) int {
	switch {
	case errors.Is(err, seal.ErrModelNotFound):
		return http.StatusNotFound
	case errors.Is(err, seal.ErrUnknownArch), errors.Is(err, seal.ErrBadKey), errors.Is(err, ErrBadInput):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := statusFor(err)
	if code == http.StatusTooManyRequests {
		secs := int(s.cfg.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// maxBodyBytes bounds request bodies; a full-width CIFAR sample is
// ~12 KiB of floats, so 32 MiB leaves room for future large inputs.
const maxBodyBytes = 32 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return nil
}
