package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"seal"
	"seal/internal/parallel"
)

// Config tunes the gateway. The zero value is usable: New fills in the
// defaults below.
type Config struct {
	// MasterKey roots the per-tenant key hierarchy: tenant t's images
	// are sealed under MasterKey.DeriveSubKey(t).
	MasterKey seal.Key
	// QueueDepth bounds each model's admission queue; a full queue
	// answers 429 with Retry-After.
	QueueDepth int
	// MaxBatch caps dynamic batch size.
	MaxBatch int
	// BatchWindow is how long a dispatcher waits to widen a non-full
	// batch after its first request — armed only when no other engine
	// is idle (see hostedModel.collect).
	BatchWindow time.Duration
	// Workers is the number of streaming engines (concurrent batches)
	// per model; 0 sizes it from the shared worker pool.
	Workers int
	// RetryAfter is the fallback 429 backoff hint, used until the first
	// batch completes; after that the hint is derived from the live
	// queue depth and the measured drain rate.
	RetryAfter time.Duration
}

// Defaults for the zero Config.
const (
	DefaultQueueDepth  = 64
	DefaultMaxBatch    = 8
	DefaultBatchWindow = 2 * time.Millisecond
	DefaultRetryAfter  = time.Second
)

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.BatchWindow < 0 {
		c.BatchWindow = 0
	}
	if c.Workers <= 0 {
		c.Workers = parallel.Workers()
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	return c
}

// ContentTypeF32 is the raw little-endian float32 encoding for /infer:
// the request body is exactly inputLen·4 bytes of packed float32
// sample values, and the response body is the packed float32 logits
// row, with the serving metadata in X-Seal-Gen / X-Seal-Batch headers.
// It bypasses encoding/json (and its float64 round-trip) entirely —
// the hot path for load drivers and latency-sensitive clients.
// application/octet-stream is accepted as a synonym on requests.
const ContentTypeF32 = "application/x-seal-f32"

// isRawF32 reports whether a request Content-Type selects the raw
// float32 body encoding (parameters after ';' are ignored).
func isRawF32(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	ct = strings.TrimSpace(ct)
	return ct == ContentTypeF32 || ct == "application/octet-stream"
}

// Server is the HTTP face of the gateway:
//
//	GET    /healthz
//	GET    /v1/models
//	GET    /v1/stats
//	PUT    /v1/tenants/{tenant}/models/{model}        register / hot-swap
//	DELETE /v1/tenants/{tenant}/models/{model}        unregister (drains)
//	POST   /v1/tenants/{tenant}/models/{model}/infer  one sample per request
//
// Inference requests carry one sample each; the gateway batches
// concurrent requests dynamically before running them on a pooled
// engine, so client code stays trivially simple while the zero-alloc
// eval path gets wide batches.
type Server struct {
	cfg Config
	reg *Registry
	mux *http.ServeMux
}

// New builds a gateway server with an empty registry.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, reg: NewRegistry(cfg), mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/models", s.handleList)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("PUT /v1/tenants/{tenant}/models/{model}", s.handleRegister)
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}/models/{model}", s.handleUnregister)
	s.mux.HandleFunc("POST /v1/tenants/{tenant}/models/{model}/infer", s.handleInfer)
	return s
}

// Handler returns the HTTP handler to mount.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the model table (the bench driver and tests use it
// directly).
func (s *Server) Registry() *Registry { return s.reg }

// Close drains every model and rejects further work. Callers doing an
// HTTP-level graceful shutdown should stop the listener first
// (http.Server.Shutdown), then Close the gateway.
func (s *Server) Close() { s.reg.Close() }

// InferRequest is the JSON inference body: exactly one of Input (a JSON
// number array) or Raw (base64 little-endian float32 bytes) must hold
// the sample. Numbers survive the JSON round-trip bit-exactly (every
// float32 is an exact float64), so either form supports the gateway's
// bit-identity guarantee. Clients that want JSON out of the loop
// entirely should POST with Content-Type ContentTypeF32 instead.
type InferRequest struct {
	Input []float64 `json:"input,omitempty"`
	Raw   []byte    `json:"raw,omitempty"`
}

func (q *InferRequest) sample() ([]float32, error) {
	switch {
	case len(q.Raw) > 0 && len(q.Input) > 0:
		return nil, fmt.Errorf("%w: both input and raw set", ErrBadInput)
	case len(q.Raw) > 0:
		if len(q.Raw)%4 != 0 {
			return nil, fmt.Errorf("%w: raw length %d not a multiple of 4", ErrBadInput, len(q.Raw))
		}
		out := make([]float32, len(q.Raw)/4)
		for i := range out {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(q.Raw[i*4:]))
		}
		return out, nil
	case len(q.Input) > 0:
		out := make([]float32, len(q.Input))
		for i, v := range q.Input {
			out[i] = float32(v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: empty input", ErrBadInput)
	}
}

// InferResponse returns one sample's logits. Raw mirrors the request
// encoding: raw in, raw out; JSON numbers otherwise. Batch reports how
// many requests shared the forward pass, Gen which deployment served
// it.
type InferResponse struct {
	Model  string    `json:"model"`
	Gen    int64     `json:"gen"`
	Batch  int       `json:"batch"`
	Logits []float64 `json:"logits,omitempty"`
	Raw    []byte    `json:"raw,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.List())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Stats())
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var spec ModelSpec
	if err := decodeJSON(w, r, &spec); err != nil {
		s.writeError(w, err, nil)
		return
	}
	info, err := s.reg.Register(r.PathValue("tenant"), r.PathValue("model"), spec)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Unregister(r.PathValue("tenant"), r.PathValue("model")); err != nil {
		s.writeError(w, err, nil)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "unregistered"})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	tenant, name := r.PathValue("tenant"), r.PathValue("model")
	h, err := s.reg.lookup(tenant, name)
	if err != nil {
		s.writeError(w, err, nil)
		return
	}
	if isRawF32(r.Header.Get("Content-Type")) {
		s.handleInferF32(w, r, h)
		return
	}
	var req InferRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err, h)
		return
	}
	input, err := req.sample()
	if err != nil {
		s.writeError(w, err, h)
		return
	}
	p, err := h.admit(input)
	if err != nil {
		s.writeError(w, err, h)
		return
	}
	select {
	case res := <-p.resp:
		if res.err != nil {
			s.writeError(w, res.err, h)
			h.putPending(p)
			return
		}
		resp := InferResponse{Model: modelKey(tenant, name), Gen: res.gen, Batch: res.batch}
		if len(req.Raw) > 0 {
			resp.Raw = make([]byte, len(res.logits)*4)
			for i, v := range res.logits {
				binary.LittleEndian.PutUint32(resp.Raw[i*4:], math.Float32bits(v))
			}
		} else {
			resp.Logits = make([]float64, len(res.logits))
			for i, v := range res.logits {
				resp.Logits[i] = float64(v)
			}
		}
		h.putPending(p)
		writeJSON(w, http.StatusOK, resp)
	case <-r.Context().Done():
		// Client gone; the batch still completes and its result lands in
		// the buffered response channel. The pending is abandoned (not
		// recycled) — reusing it could cross-wire a stale result.
	}
}

// handleInferF32 is the raw little-endian float32 request path: the
// body is read straight into pooled buffers, decoded without
// encoding/json, and the logits row is written back as packed float32
// bytes — zero heap allocations end to end once the model's request
// pool is warm (the HTTP transport itself notwithstanding).
func (s *Server) handleInferF32(w http.ResponseWriter, r *http.Request, h *hostedModel) {
	want := h.inputLen()
	need := want * 4
	p := h.getPending()
	if cap(p.raw) < need {
		p.raw = make([]byte, need)
	}
	p.raw = p.raw[:need]
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if _, err := io.ReadFull(body, p.raw); err != nil {
		h.putPending(p)
		s.writeError(w, fmt.Errorf("%w: raw body: %v (want exactly %d bytes)", ErrBadInput, err, need), h)
		return
	}
	var extra [1]byte
	if n, _ := body.Read(extra[:]); n > 0 {
		h.putPending(p)
		s.writeError(w, fmt.Errorf("%w: raw body longer than %d bytes", ErrBadInput, need), h)
		return
	}
	if cap(p.input) < want {
		p.input = make([]float32, want)
	}
	p.input = p.input[:want]
	for i := range p.input {
		p.input[i] = math.Float32frombits(binary.LittleEndian.Uint32(p.raw[i*4:]))
	}
	if err := h.enqueue(p); err != nil {
		h.putPending(p)
		s.writeError(w, err, h)
		return
	}
	select {
	case res := <-p.resp:
		if res.err != nil {
			s.writeError(w, res.err, h)
			h.putPending(p)
			return
		}
		out := len(res.logits) * 4
		if cap(p.raw) < out {
			p.raw = make([]byte, out)
		}
		buf := p.raw[:out]
		for i, v := range res.logits {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
		}
		hd := w.Header()
		hd.Set("Content-Type", ContentTypeF32)
		hd.Set("X-Seal-Model", modelKey(h.tenant, h.name))
		hd.Set("X-Seal-Gen", strconv.FormatInt(res.gen, 10))
		hd.Set("X-Seal-Batch", strconv.Itoa(res.batch))
		hd.Set("Content-Length", strconv.Itoa(out))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(buf)
		h.putPending(p)
	case <-r.Context().Done():
		// Abandoned mid-wait: the pending cannot be recycled.
	}
}

// statusFor maps the façade's sentinel errors (and the gateway's own)
// to HTTP statuses — errors.Is, never string matching.
func statusFor(err error) int {
	switch {
	case errors.Is(err, seal.ErrModelNotFound):
		return http.StatusNotFound
	case errors.Is(err, seal.ErrUnknownArch), errors.Is(err, seal.ErrBadKey), errors.Is(err, ErrBadInput):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeError maps err to a status; for 429 the Retry-After hint is
// derived from the model's live queue depth and measured drain rate
// when the hosted model is known (h may be nil on lookup failures).
func (s *Server) writeError(w http.ResponseWriter, err error, h *hostedModel) {
	code := statusFor(err)
	if code == http.StatusTooManyRequests {
		secs := int(s.cfg.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		if h != nil {
			secs = h.retryAfterHint()
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// maxBodyBytes bounds request bodies; a full-width CIFAR sample is
// ~12 KiB of floats, so 32 MiB leaves room for future large inputs.
const maxBodyBytes = 32 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return nil
}
