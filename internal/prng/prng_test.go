package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero-seeded generator repeated values: %d unique of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expect := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 0.05*expect {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", i, c, expect)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(21)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Fork()
	// Parent draws must not equal the child's next draws.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("fork produced %d collisions with parent", same)
	}
}

func TestForkDeterministic(t *testing.T) {
	a := New(123).Fork()
	b := New(123).Fork()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("forks of identical parents diverged")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
