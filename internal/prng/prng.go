// Package prng provides a small, deterministic pseudo-random number
// generator used throughout the SEAL reproduction. Experiments must be
// bit-reproducible across runs and Go releases, so we implement
// xoshiro256** seeded via splitmix64 rather than relying on math/rand,
// whose default source changed across Go versions.
package prng

import "math"

// Source is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Source struct {
	s [4]uint64
	// cached second Gaussian from the Box-Muller transform
	gauss    float64
	hasGauss bool
}

// New returns a Source seeded from the given seed using splitmix64, which
// guarantees a well-mixed nonzero internal state for any seed value.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless method would be overkill here; simple
	// modulo bias is negligible for the n values used in this repository
	// (n << 2^32), but we reject to stay exact.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniformly distributed float32 in [0, 1).
func (r *Source) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// NormFloat64 returns a standard normal variate via the Box-Muller
// transform. Two variates are produced per transform; one is cached.
func (r *Source) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.gauss = mag * math.Sin(2*math.Pi*v)
	r.hasGauss = true
	return mag * math.Cos(2*math.Pi*v)
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent child generator from the current state.
// Forked streams are used to give each experiment component its own
// stream so that adding draws in one component does not perturb others.
func (r *Source) Fork() *Source {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}
