// Package trace turns workloads — dense matrix multiplication and the
// layers of a CNN inference — into per-SM instruction/memory traces for
// the GPU simulator. The execution model mirrors how GPU libraries run
// convolutions (im2col expansion followed by a tiled GEMM), because the
// DRAM traffic of that strategy, not the arithmetic minimum, is what the
// paper's GPGPU-Sim runs exercise and what makes CONV and POOL layers
// bandwidth-sensitive enough for memory encryption to hurt (Figures
// 5-8).
package trace

import (
	"fmt"

	"seal/internal/core"
	"seal/internal/gpu"
	"seal/internal/models"
)

// Params tunes the execution model.
type Params struct {
	NumSMs    int
	LineBytes int
	// Tile is the square shared-memory GEMM tile edge (elements). It sets
	// the data reuse factor and therefore the DRAM traffic of GEMM-based
	// layers: operands are re-read matrixDim/Tile times.
	Tile int
	// ComputeOverhead inflates warp arithmetic instructions beyond the
	// raw FMA count (address math, shared-memory traffic, control flow).
	// GPU GEMM kernels retire ≈2 instructions per FMA; this knob
	// calibrates the compute/bandwidth balance to the GTX480 profile.
	ComputeOverhead float64
	// Batch is the inference batch size (images per run).
	Batch int
	// ElemBytes is the element size (4 for float32).
	ElemBytes int
}

// DefaultParams matches the GTX480 simulator configuration. The 32-wide
// GEMM tile matches the 16×16 thread-block SGEMM kernels of the Fermi era;
// operand re-read factors (and hence DRAM pressure) follow from it.
func DefaultParams() Params {
	return Params{NumSMs: 15, LineBytes: 64, Tile: 16, ComputeOverhead: 0.3, Batch: 1, ElemBytes: 4}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.NumSMs <= 0 || p.LineBytes <= 0 || p.Tile <= 0 || p.Batch <= 0 || p.ElemBytes <= 0 {
		return fmt.Errorf("trace: invalid params %+v", p)
	}
	if p.ComputeOverhead < 0 {
		return fmt.Errorf("trace: negative compute overhead")
	}
	return nil
}

// Emitter accumulates per-SM streams. Work units (GEMM tiles, channel
// copies) are assigned to SMs round-robin; within an SM, ops are
// sequential. Fractional compute is accumulated exactly and attached to
// the next memory op.
type Emitter struct {
	p       Params
	streams []gpu.Stream
	pending []float64
	sm      int
}

// NewEmitter constructs an emitter for p.NumSMs streams.
func NewEmitter(p Params) *Emitter {
	return &Emitter{p: p, streams: make([]gpu.Stream, p.NumSMs), pending: make([]float64, p.NumSMs)}
}

// NextSM advances the work-unit round-robin.
func (e *Emitter) NextSM() { e.sm = (e.sm + 1) % e.p.NumSMs }

// SM returns the current SM index.
func (e *Emitter) SM() int { return e.sm }

// Compute adds warp instructions of arithmetic on the current SM.
func (e *Emitter) Compute(warpInsts float64) {
	e.pending[e.sm] += warpInsts * (1 + e.p.ComputeOverhead)
}

func (e *Emitter) flushInto(op gpu.Op) {
	whole := int(e.pending[e.sm])
	e.pending[e.sm] -= float64(whole)
	op.Compute = whole
	e.streams[e.sm] = append(e.streams[e.sm], op)
}

// Read emits one line read at addr on the current SM.
func (e *Emitter) Read(addr uint64) { e.flushInto(gpu.Op{Addr: addr}) }

// Write emits one line write at addr on the current SM.
func (e *Emitter) Write(addr uint64) { e.flushInto(gpu.Op{Addr: addr, Write: true}) }

// ReadRange emits line-granular reads covering [base, base+bytes).
func (e *Emitter) ReadRange(base uint64, bytes int) {
	lb := uint64(e.p.LineBytes)
	first := base / lb * lb
	for a := first; a < base+uint64(bytes); a += lb {
		e.Read(a)
	}
}

// WriteRange emits line-granular writes covering [base, base+bytes).
func (e *Emitter) WriteRange(base uint64, bytes int) {
	lb := uint64(e.p.LineBytes)
	first := base / lb * lb
	for a := first; a < base+uint64(bytes); a += lb {
		e.Write(a)
	}
}

// Streams finalizes the trace, flushing leftover compute as tail ops.
func (e *Emitter) Streams() []gpu.Stream {
	for i := range e.streams {
		if e.pending[i] >= 1 {
			e.streams[i] = append(e.streams[i], gpu.Op{Compute: int(e.pending[i]), NoMem: true})
			e.pending[i] = 0
		}
	}
	return e.streams
}

// TotalOps returns the number of memory operations emitted so far.
func (e *Emitter) TotalOps() int64 {
	var n int64
	for _, s := range e.streams {
		n += s.MemOps()
	}
	return n
}

// Matmul generates the trace of an n×n float32 matrix multiplication
// C = A×B with shared-memory tiling — the paper's Figure 1 workload
// ("matrix multiplication computation that is the most common operation
// in DL algorithms"). a, b and c are the operand regions.
func Matmul(p Params, n int, a, b, c *core.Region) ([]gpu.Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 || n%p.Tile != 0 {
		return nil, fmt.Errorf("trace: matmul size %d not a multiple of tile %d", n, p.Tile)
	}
	e := NewEmitter(p)
	t := p.Tile
	eb := uint64(p.ElemBytes)
	rowBytes := uint64(n) * eb
	tiles := n / t
	// warp FMAs per k-step of one tile
	fmas := float64(t*t*t) / 32.0
	for ti := 0; ti < tiles; ti++ {
		for tj := 0; tj < tiles; tj++ {
			for k := 0; k < tiles; k++ {
				// load A[ti, k] tile: t rows of t elements
				for r := 0; r < t; r++ {
					e.ReadRange(a.Base+uint64(ti*t+r)*rowBytes+uint64(k*t)*eb, t*p.ElemBytes)
				}
				// load B[k, tj] tile
				for r := 0; r < t; r++ {
					e.ReadRange(b.Base+uint64(k*t+r)*rowBytes+uint64(tj*t)*eb, t*p.ElemBytes)
				}
				e.Compute(fmas)
			}
			// store C[ti, tj] tile
			for r := 0; r < t; r++ {
				e.WriteRange(c.Base+uint64(ti*t+r)*rowBytes+uint64(tj*t)*eb, t*p.ElemBytes)
			}
			e.NextSM()
		}
	}
	return e.Streams(), nil
}

// MatmulRegions allocates the three operand regions of an n×n matmul in
// a fresh address space, fully encrypted when enc is true (the Figure 1
// experiments encrypt everything or nothing).
func MatmulRegions(n int, p Params, enc bool) (a, b, c *core.Region, end uint64) {
	space := core.NewAddressSpace(0)
	bytes := uint64(n) * uint64(n) * uint64(p.ElemBytes)
	allocFn := space.Malloc
	if enc {
		allocFn = space.EMalloc
	}
	a = allocFn("A", bytes)
	b = allocFn("B", bytes)
	c = allocFn("C", bytes)
	return a, b, c, space.End()
}

// LayerRegions bundles the address-space regions one layer touches.
type LayerRegions struct {
	In   *core.Region // input feature map (channel-major)
	Out  *core.Region // output feature map
	Cols *core.Region // im2col scratch (CONV only)
	W    *core.Region // weights (kernel-row-major)
}

// Conv generates the trace of one CONV layer executed as im2col + tiled
// GEMM.
//
// Phase 1 (im2col): each input channel is read once and expanded to its
// K²-row block of the cols matrix (written once).
// Phase 2 (GEMM): kernel matrix [OutC, InC·K²] × cols [InC·K², B·OH·OW].
// With tile edge T, the cols matrix is re-read ⌈OutC/T⌉ times and the
// kernel matrix ⌈B·OH·OW/T⌉ times; the output map is written once.
func Conv(p Params, spec models.LayerSpec, r LayerRegions) ([]gpu.Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind != models.KindConv {
		return nil, fmt.Errorf("trace: Conv called on %v layer %s", spec.Kind, spec.Name)
	}
	if r.In == nil || r.Out == nil || r.Cols == nil || r.W == nil {
		return nil, fmt.Errorf("trace: Conv %s missing regions", spec.Name)
	}
	e := NewEmitter(p)
	eb := p.ElemBytes
	kk := spec.K * spec.K
	ohw := spec.OutH() * spec.OutW() * p.Batch
	inHW := spec.InH * spec.InW * p.Batch

	// Phase 1: im2col, one input channel per work unit.
	for c := 0; c < spec.InC; c++ {
		e.ReadRange(r.In.Base+uint64(c)*r.In.BlockBytes, inHW*eb)
		e.WriteRange(r.Cols.Base+uint64(c)*r.Cols.BlockBytes, kk*ohw*eb)
		// ≈1 instruction per expanded element / 32 lanes
		e.Compute(float64(kk*ohw) / 32.0)
		e.NextSM()
	}

	// Phase 2: tiled GEMM over [OutC, ohw] output tiles.
	t := p.Tile
	kDim := spec.InC * kk
	for ti := 0; ti < spec.OutC; ti += t {
		tm := min(t, spec.OutC-ti)
		for tj := 0; tj < ohw; tj += t {
			tn := min(t, ohw-tj)
			for k := 0; k < kDim; k += t {
				tk := min(t, kDim-k)
				// kernel tile: rows of the kernel matrix live in the
				// weights region kernel-row-major: element (o, c, kpos) at
				// block c, offset (o·K²+kpos)·eb.
				for o := ti; o < ti+tm; o++ {
					cStart, kpos := (k)/kk, (k)%kk
					remaining := tk
					c := cStart
					off := kpos
					for remaining > 0 {
						span := min(remaining, kk-off)
						addr := r.W.Base + uint64(c)*r.W.BlockBytes + uint64(o*kk+off)*uint64(eb)
						e.ReadRange(addr, span*eb)
						remaining -= span
						c++
						off = 0
					}
				}
				// cols tile: row k+i of cols is (channel (k+i)/K², row
				// (k+i)%K² within block), columns tj..tj+tn.
				for i := 0; i < tk; i++ {
					c := (k + i) / kk
					rowIn := (k + i) % kk
					addr := r.Cols.Base + uint64(c)*r.Cols.BlockBytes + uint64(rowIn*ohw+tj)*uint64(eb)
					e.ReadRange(addr, tn*eb)
				}
				e.Compute(float64(tm*tn*tk) / 32.0)
			}
			// output tile: channel-major ofmap
			for o := ti; o < ti+tm; o++ {
				addr := r.Out.Base + uint64(o)*r.Out.BlockBytes + uint64(tj)*uint64(eb)
				e.WriteRange(addr, tn*eb)
			}
			e.NextSM()
		}
	}
	return e.Streams(), nil
}

// Pool generates the trace of a POOL layer (max or average): the input
// map is read once, the output written once, with ≈K² operations per
// output element. Pooling has almost no arithmetic per byte, which is
// why Figure 6 shows deeper encryption losses for POOL than CONV.
func Pool(p Params, spec models.LayerSpec, r LayerRegions) ([]gpu.Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind != models.KindPool && spec.Kind != models.KindGlobalAvgPool {
		return nil, fmt.Errorf("trace: Pool called on %v layer %s", spec.Kind, spec.Name)
	}
	if r.In == nil || r.Out == nil {
		return nil, fmt.Errorf("trace: Pool %s missing regions", spec.Name)
	}
	e := NewEmitter(p)
	eb := p.ElemBytes
	inHW := spec.InH * spec.InW * p.Batch
	outHW := spec.OutH() * spec.OutW() * p.Batch
	for c := 0; c < spec.InC; c++ {
		e.ReadRange(r.In.Base+uint64(c)*r.In.BlockBytes, inHW*eb)
		e.WriteRange(r.Out.Base+uint64(c)*r.Out.BlockBytes, outHW*eb)
		e.Compute(float64(outHW*spec.K*spec.K) / 32.0)
		e.NextSM()
	}
	return e.Streams(), nil
}

// FC generates the trace of a fully-connected layer: the weight matrix
// streams through once (it has no reuse at batch sizes ≪ Tile), the
// input activations are read per output tile, the output written once.
func FC(p Params, spec models.LayerSpec, r LayerRegions) ([]gpu.Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if spec.Kind != models.KindFC {
		return nil, fmt.Errorf("trace: FC called on %v layer %s", spec.Kind, spec.Name)
	}
	if r.In == nil || r.Out == nil || r.W == nil {
		return nil, fmt.Errorf("trace: FC %s missing regions", spec.Name)
	}
	e := NewEmitter(p)
	eb := p.ElemBytes
	t := p.Tile
	// The input activation vector is tiny (InC × Batch elements); it
	// streams in once and stays resident in shared memory/L2. Read it by
	// region blocks so conv-produced channel-major maps address correctly.
	if r.In.BlockBytes > 0 {
		for b := 0; b < r.In.Blocks(); b++ {
			e.ReadRange(r.In.Base+uint64(b)*r.In.BlockBytes, int(r.In.BlockBytes))
			e.NextSM()
		}
	} else {
		e.ReadRange(r.In.Base, int(r.In.Size))
	}
	for o := 0; o < spec.OutC; o += t {
		tm := min(t, spec.OutC-o)
		// weights for outputs [o, o+tm): kernel-row-major — column i of
		// the weight matrix lives in block i at offset out·eb.
		for i := 0; i < spec.InC; i++ {
			addr := r.W.Base + uint64(i)*r.W.BlockBytes + uint64(o)*uint64(eb)
			e.ReadRange(addr, tm*eb)
		}
		e.Compute(float64(tm*spec.InC*p.Batch) / 32.0)
		for i := o; i < o+tm; i++ {
			e.WriteRange(r.Out.Base+uint64(i)*r.Out.BlockBytes, p.Batch*eb)
		}
		e.NextSM()
	}
	return e.Streams(), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
