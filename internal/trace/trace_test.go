package trace

import (
	"testing"

	"seal/internal/core"
	"seal/internal/gpu"
	"seal/internal/models"
	"seal/internal/prng"
)

func testParams() Params {
	p := DefaultParams()
	p.NumSMs = 4
	p.Tile = 16
	return p
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.Tile = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero tile accepted")
	}
}

func TestEmitterComputeAttachment(t *testing.T) {
	p := testParams()
	p.ComputeOverhead = 0
	e := NewEmitter(p)
	e.Compute(5.5)
	e.Read(0)
	e.Compute(0.7)
	e.Write(64)
	streams := e.Streams()
	st := streams[0]
	if len(st) != 2 {
		t.Fatalf("ops = %d, want 2", len(st))
	}
	if st[0].Compute != 5 || st[0].Write {
		t.Fatalf("op0 = %+v", st[0])
	}
	// 0.5 leftover + 0.7 = 1.2 → 1 attached to the write
	if st[1].Compute != 1 || !st[1].Write {
		t.Fatalf("op1 = %+v", st[1])
	}
}

func TestEmitterOverheadScalesCompute(t *testing.T) {
	p := testParams()
	p.ComputeOverhead = 1.0
	e := NewEmitter(p)
	e.Compute(10)
	e.Read(0)
	st := e.Streams()[0]
	if st[0].Compute != 20 {
		t.Fatalf("compute = %d, want 20 with overhead 1.0", st[0].Compute)
	}
}

func TestEmitterTailFlush(t *testing.T) {
	e := NewEmitter(testParams())
	e.Compute(7)
	streams := e.Streams()
	st := streams[0]
	if len(st) != 1 || !st[0].NoMem || st[0].Compute < 7 {
		t.Fatalf("tail = %+v", st)
	}
}

func TestReadRangeLineGranularity(t *testing.T) {
	e := NewEmitter(testParams())
	e.ReadRange(100, 200) // spans lines 64,128,192,256 → 4 lines
	st := e.Streams()[0]
	if len(st) != 4 {
		t.Fatalf("lines = %d, want 4", len(st))
	}
	if st[0].Addr != 64 || st[3].Addr != 256 {
		t.Fatalf("addresses %v..%v", st[0].Addr, st[3].Addr)
	}
}

func TestMatmulTraceVolume(t *testing.T) {
	p := testParams()
	n := 64
	a, b, c, _ := MatmulRegions(n, p, false)
	streams, err := Matmul(p, n, a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes int64
	for _, st := range streams {
		for _, op := range st {
			if op.NoMem {
				continue
			}
			if op.Write {
				writes++
			} else {
				reads++
			}
		}
	}
	// tiles = 4x4, k-steps = 4; each step reads 2 tiles of 16x16x4B =
	// 2*16 rows * 64B = 32 lines; writes: 16 tiles * 16 rows * 1 line.
	wantReads := int64(4 * 4 * 4 * 32)
	wantWrites := int64(4 * 4 * 16)
	if reads != wantReads || writes != wantWrites {
		t.Fatalf("reads=%d writes=%d, want %d/%d", reads, writes, wantReads, wantWrites)
	}
}

func TestMatmulRejectsBadSize(t *testing.T) {
	p := testParams()
	a, b, c, _ := MatmulRegions(64, p, false)
	if _, err := Matmul(p, 60, a, b, c); err == nil {
		t.Fatal("non-multiple size accepted")
	}
}

func TestMatmulRegionsEncryption(t *testing.T) {
	p := testParams()
	a, _, _, _ := MatmulRegions(64, p, true)
	if !a.Encrypted(0) {
		t.Fatal("encrypted matmul region plaintext")
	}
	a2, _, _, _ := MatmulRegions(64, p, false)
	if a2.Encrypted(0) {
		t.Fatal("plain matmul region encrypted")
	}
}

func buildPlanLayout(t testing.TB, arch *models.Arch, batch int) (*core.Plan, *core.Layout) {
	t.Helper()
	m, err := models.Build(arch.Scale(0.25, 0), prng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewPlan(m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	layout, err := core.NewLayout(plan, batch)
	if err != nil {
		t.Fatal(err)
	}
	return plan, layout
}

func TestConvTraceAddressesStayInRegions(t *testing.T) {
	plan, layout := buildPlanLayout(t, models.VGG16Arch(), 1)
	p := testParams()
	traces, err := Network(p, plan, layout)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := uint64(0), layout.End()
	var ops int64
	for _, lt := range traces {
		for _, st := range lt.Streams {
			for _, op := range st {
				if op.NoMem {
					continue
				}
				ops++
				if op.Addr < lo || op.Addr >= hi {
					t.Fatalf("%s: address %#x outside layout [%#x,%#x)", lt.Spec.Name, op.Addr, lo, hi)
				}
			}
		}
	}
	if ops == 0 {
		t.Fatal("no memory ops generated")
	}
}

func TestNetworkCoversAllLayers(t *testing.T) {
	for _, arch := range models.Archs() {
		plan, layout := buildPlanLayout(t, arch, 1)
		traces, err := Network(testParams(), plan, layout)
		if err != nil {
			t.Fatalf("%s: %v", arch.Name, err)
		}
		if len(traces) != len(plan.Arch.Specs) {
			t.Fatalf("%s: %d traces for %d specs", arch.Name, len(traces), len(plan.Arch.Specs))
		}
		for _, lt := range traces {
			if lt.MemOps() == 0 {
				t.Fatalf("%s: layer %s has no memory traffic", arch.Name, lt.Spec.Name)
			}
		}
	}
}

func TestConvTraceTouchesWeightsColsFmaps(t *testing.T) {
	plan, layout := buildPlanLayout(t, models.VGG16Arch(), 1)
	traces, err := Network(testParams(), plan, layout)
	if err != nil {
		t.Fatal(err)
	}
	// second conv layer (conv1_2): find its trace
	var lt *LayerTrace
	for i := range traces {
		if traces[i].Spec.Name == "conv1_2" {
			lt = &traces[i]
		}
	}
	if lt == nil {
		t.Fatal("conv1_2 trace missing")
	}
	regions := map[string]*core.Region{
		"w":    layout.Region("w:conv1_2"),
		"cols": layout.Region("cols:conv1_2"),
		"in":   layout.Region("fmap:conv1_1"),
		"out":  layout.Region("fmap:conv1_2"),
	}
	touched := map[string]bool{}
	for _, st := range lt.Streams {
		for _, op := range st {
			if op.NoMem {
				continue
			}
			for name, r := range regions {
				if op.Addr >= r.Base && op.Addr < r.Base+r.Size {
					touched[name] = true
				}
			}
		}
	}
	for name := range regions {
		if !touched[name] {
			t.Errorf("conv1_2 trace never touched %s region", name)
		}
	}
}

func TestTrafficEncryptedFractionNearRatio(t *testing.T) {
	// With a 50% ratio, roughly half the conv GEMM traffic should be
	// ciphertext (weights rows + cols channels + fmap channels), giving
	// SEAL its bandwidth win. Measure on a middle conv layer.
	plan, layout := buildPlanLayout(t, models.VGG16Arch(), 1)
	traces, err := Network(testParams(), plan, layout)
	if err != nil {
		t.Fatal(err)
	}
	var encOps, ops float64
	for _, lt := range traces {
		if lt.Spec.Name != "conv3_2" {
			continue
		}
		for _, st := range lt.Streams {
			for _, op := range st {
				if op.NoMem {
					continue
				}
				ops++
				if layout.Protected(op.Addr) {
					encOps++
				}
			}
		}
	}
	frac := encOps / ops
	if frac < 0.35 || frac > 0.7 {
		t.Fatalf("conv3_2 encrypted traffic fraction %v, want ≈0.5", frac)
	}
}

func TestNetworkRunsOnSim(t *testing.T) {
	plan, layout := buildPlanLayout(t, models.ResNet18Arch(), 1)
	p := testParams()
	traces, err := Network(p, plan, layout)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpu.ConfigGTX480()
	cfg.NumSMs = p.NumSMs
	sim, err := gpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	perLayer, total, err := RunNetwork(sim, traces)
	if err != nil {
		t.Fatal(err)
	}
	if len(perLayer) != len(traces) {
		t.Fatalf("per-layer results %d, want %d", len(perLayer), len(traces))
	}
	if total.Cycles <= 0 || total.IPC <= 0 {
		t.Fatalf("total %+v", total)
	}
	var sum float64
	for _, r := range perLayer {
		sum += r.Cycles
	}
	if sum != total.Cycles {
		t.Fatalf("cycle sum %v != total %v", sum, total.Cycles)
	}
}

func TestSEALReducesEngineTraffic(t *testing.T) {
	// The core SEAL effect at trace level: with the default plan, engine
	// bytes in direct mode must be well below full encryption.
	plan, layout := buildPlanLayout(t, models.VGG16Arch(), 1)
	p := testParams()
	traces, err := Network(p, plan, layout)
	if err != nil {
		t.Fatal(err)
	}
	run := func(fn gpu.EncFn) gpu.Result {
		cfg := gpu.ConfigGTX480()
		cfg.NumSMs = p.NumSMs
		cfg = cfg.WithMode(gpu.ModeDirect, fn)
		sim, err := gpu.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, total, err := RunNetwork(sim, traces)
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	full := run(nil) // everything encrypted
	seal := run(layout.Protected)
	if seal.EngineBytes() >= full.EngineBytes()*8/10 {
		t.Fatalf("SEAL engine bytes %d not well below full %d", seal.EngineBytes(), full.EngineBytes())
	}
	if seal.Cycles >= full.Cycles {
		t.Fatalf("SEAL cycles %v not below full encryption %v", seal.Cycles, full.Cycles)
	}
}
