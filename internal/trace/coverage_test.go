package trace

import (
	"testing"
	"testing/quick"

	"seal/internal/models"
	"seal/internal/prng"
)

// TestMatmulCoversAllOperands is the coverage property of the matmul
// trace: every line of A and B is read at least once, every line of C
// is written exactly once, and nothing outside the three regions is
// touched.
func TestMatmulCoversAllOperands(t *testing.T) {
	check := func(seed uint64) bool {
		r := prng.New(seed)
		p := testParams()
		n := (r.Intn(4) + 2) * p.Tile // 32..80
		a, b, c, end := MatmulRegions(n, p, false)
		streams, err := Matmul(p, n, a, b, c)
		if err != nil {
			return false
		}
		readCount := map[uint64]int{}
		writeCount := map[uint64]int{}
		for _, st := range streams {
			for _, op := range st {
				if op.NoMem {
					continue
				}
				if op.Addr >= end {
					return false
				}
				if op.Write {
					writeCount[op.Addr]++
				} else {
					readCount[op.Addr]++
				}
			}
		}
		bytes := uint64(n) * uint64(n) * uint64(p.ElemBytes)
		for _, reg := range []struct{ base uint64 }{{a.Base}, {b.Base}} {
			for addr := reg.base; addr < reg.base+bytes; addr += uint64(p.LineBytes) {
				if readCount[addr] == 0 {
					return false // operand line never loaded
				}
			}
		}
		for addr := c.Base; addr < c.Base+bytes; addr += uint64(p.LineBytes) {
			if writeCount[addr] != 1 {
				return false // each output line written exactly once
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestConvReadsEveryWeightLine: the GEMM phase must stream every weight
// line of the layer at least once — a missing weight read would mean
// the simulated layer skipped computation.
func TestConvReadsEveryWeightLine(t *testing.T) {
	plan, layout := buildPlanLayout(t, models.VGG16Arch(), 1)
	traces, err := Network(testParams(), plan, layout)
	if err != nil {
		t.Fatal(err)
	}
	for _, lt := range traces {
		if lt.Spec.Name != "conv2_1" {
			continue
		}
		w := layout.Region("w:conv2_1")
		seen := map[uint64]bool{}
		for _, st := range lt.Streams {
			for _, op := range st {
				if !op.NoMem && !op.Write && op.Addr >= w.Base && op.Addr < w.Base+w.Size {
					seen[op.Addr] = true
				}
			}
		}
		// every line holding real weight data must be touched; padding at
		// the tail of each row block may be skipped
		rowData := uint64(lt.Spec.OutC*lt.Spec.K*lt.Spec.K) * 4
		for blk := uint64(0); blk < uint64(w.Blocks()); blk++ {
			base := w.Base + blk*w.BlockBytes
			for off := uint64(0); off < rowData; off += 64 {
				if !seen[base+off] {
					t.Fatalf("weight line %#x (row %d) never read", base+off, blk)
				}
			}
		}
		return
	}
	t.Fatal("conv2_1 not found")
}
