package trace

import (
	"fmt"

	"seal/internal/core"
	"seal/internal/gpu"
	"seal/internal/models"
)

// LayerTrace is the generated trace of one network layer.
type LayerTrace struct {
	Spec    models.LayerSpec
	Streams []gpu.Stream
}

// MemOps returns the memory operations in the layer trace.
func (lt LayerTrace) MemOps() int64 {
	var n int64
	for _, s := range lt.Streams {
		n += s.MemOps()
	}
	return n
}

// Network generates traces for every layer of the planned network, wired
// to the layout's regions in dataflow order. The caller runs them
// sequentially on one gpu.Sim (warm caches across layers), which models
// layer-by-layer kernel launches of an inference framework.
func Network(p Params, plan *core.Plan, layout *core.Layout) ([]LayerTrace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Batch != layout.Batch {
		return nil, fmt.Errorf("trace: params batch %d != layout batch %d", p.Batch, layout.Batch)
	}
	current := layout.Region("fmap:input")
	if current == nil {
		return nil, fmt.Errorf("trace: layout missing input region")
	}
	blockEntry := map[string]*core.Region{}
	var out []LayerTrace
	for _, s := range plan.Arch.Specs {
		var streams []gpu.Stream
		var err error
		switch s.Kind {
		case models.KindConv:
			in := current
			if s.ShortcutOf != "" {
				entry, ok := blockEntry[s.ShortcutOf]
				if !ok {
					return nil, fmt.Errorf("trace: shortcut %s before its block entry", s.Name)
				}
				in = entry
			} else if s.Residual {
				if bn := blockOf(s.Name); blockEntry[bn] == nil {
					blockEntry[bn] = current
				}
			}
			regions := LayerRegions{
				In:   in,
				Cols: layout.Region("cols:" + s.Name),
				W:    layout.Region("w:" + s.Name),
				Out:  layout.Region("fmap:" + s.Name),
			}
			streams, err = Conv(p, s, regions)
			if err == nil && s.ShortcutOf == "" {
				current = regions.Out
			}
		case models.KindPool, models.KindGlobalAvgPool:
			regions := LayerRegions{In: current, Out: layout.Region("fmap:" + s.Name)}
			if regions.Out == nil {
				return nil, fmt.Errorf("trace: layout missing region fmap:%s", s.Name)
			}
			streams, err = Pool(p, s, regions)
			if err == nil {
				current = regions.Out
			}
		case models.KindFC:
			regions := LayerRegions{
				In:  current,
				W:   layout.Region("w:" + s.Name),
				Out: layout.Region("fmap:" + s.Name),
			}
			streams, err = FC(p, s, regions)
			if err == nil {
				current = regions.Out
			}
		default:
			err = fmt.Errorf("trace: unhandled layer kind %v", s.Kind)
		}
		if err != nil {
			return nil, fmt.Errorf("trace: layer %s: %w", s.Name, err)
		}
		out = append(out, LayerTrace{Spec: s, Streams: streams})
	}
	return out, nil
}

// blockOf trims the final name segment: "layer1.block2.conv1" →
// "layer1.block2".
func blockOf(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return name
}

// RunNetwork executes all layer traces sequentially on sim and returns
// the per-layer results plus the whole-network aggregate (total cycles =
// inference latency in core cycles; aggregate IPC weighs layers by their
// instruction counts, matching how GPGPU-Sim reports whole-app IPC).
func RunNetwork(sim *gpu.Sim, traces []LayerTrace) (perLayer []gpu.Result, total gpu.Result, err error) {
	var cycles, exactCycles float64
	var insts, warp, mem, stall int64
	for _, lt := range traces {
		res, rerr := sim.Run(lt.Streams)
		if rerr != nil {
			return nil, gpu.Result{}, fmt.Errorf("trace: running %s: %w", lt.Spec.Name, rerr)
		}
		perLayer = append(perLayer, res)
		cycles += res.Cycles
		exactCycles += res.Cycles * res.ExactFrac
		insts += res.ThreadInsts
		warp += res.WarpInsts
		mem += res.MemRequests
		stall += res.StallCycles
	}
	total = gpu.Result{
		Cycles:      cycles,
		WarpInsts:   warp,
		ThreadInsts: insts,
		MemRequests: mem,
		StallCycles: stall,
		Parts:       sim.Stats(),
		ExactFrac:   1,
	}
	if cycles > 0 {
		total.IPC = float64(insts) / cycles
		total.ExactFrac = exactCycles / cycles
	}
	return perLayer, total, nil
}
