// Package dataset generates the synthetic CIFAR-10 stand-in used by the
// security experiments (paper §III-B trains on CIFAR-10; see DESIGN.md
// for the substitution rationale). Each of the ten classes is a smooth
// random spatial prototype; samples are noisy, randomly shifted draws
// around their prototype. The resulting task is learnable but not
// trivial, which preserves the white-box ≫ SEAL ≥ black-box accuracy
// ordering the paper's Figures 3-4 depend on.
package dataset

import (
	"fmt"
	"math"

	"seal/internal/prng"
	"seal/internal/tensor"
)

// Config parameterizes synthetic data generation.
type Config struct {
	Classes int     // number of classes (10 for the CIFAR-10 stand-in)
	C       int     // image channels (3)
	H, W    int     // spatial size (32×32 for the stand-in)
	Noise   float64 // per-pixel Gaussian noise stddev
	Shift   int     // max |dx|,|dy| random translation of the prototype
	Freqs   int     // number of sinusoidal components per prototype channel
	// Modes is the number of sub-prototypes per class (≥1). Multi-modal
	// classes make the task's sample complexity grow smoothly with the
	// training budget — single-prototype classes exhibit an unrealistic
	// all-or-nothing learning transition.
	Modes int
}

// DefaultConfig matches the CIFAR-10 geometry with a noise level tuned
// so that small CNNs reach high-but-not-perfect accuracy.
func DefaultConfig() Config {
	return Config{Classes: 10, C: 3, H: 32, W: 32, Noise: 0.35, Shift: 2, Freqs: 4, Modes: 2}
}

// Dataset is a labeled image set in NCHW layout.
type Dataset struct {
	Images *tensor.Tensor // [N, C, H, W]
	Labels []int
	Cfg    Config
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Labels) }

// Generator produces samples for a fixed set of class prototypes.
type Generator struct {
	Cfg        Config
	prototypes *tensor.Tensor // [Classes, C, H, W]
	rng        *prng.Source
}

// NewGenerator builds class prototypes deterministically from seed.
func NewGenerator(cfg Config, seed uint64) *Generator {
	if cfg.Classes <= 0 || cfg.C <= 0 || cfg.H <= 0 || cfg.W <= 0 {
		panic(fmt.Sprintf("dataset: invalid config %+v", cfg))
	}
	if cfg.Modes <= 0 {
		cfg.Modes = 1
	}
	r := prng.New(seed)
	g := &Generator{Cfg: cfg, rng: r.Fork()}
	g.prototypes = tensor.New(cfg.Classes*cfg.Modes, cfg.C, cfg.H, cfg.W)
	protoRng := r.Fork()
	for k := 0; k < cfg.Classes*cfg.Modes; k++ {
		for c := 0; c < cfg.C; c++ {
			// superpose a few random low-frequency sinusoids
			type comp struct{ fx, fy, phase, amp float64 }
			comps := make([]comp, cfg.Freqs)
			for i := range comps {
				comps[i] = comp{
					fx:    (protoRng.Float64()*3 + 0.5) * 2 * math.Pi / float64(cfg.W),
					fy:    (protoRng.Float64()*3 + 0.5) * 2 * math.Pi / float64(cfg.H),
					phase: protoRng.Float64() * 2 * math.Pi,
					amp:   protoRng.Float64()*0.5 + 0.25,
				}
			}
			for y := 0; y < cfg.H; y++ {
				for x := 0; x < cfg.W; x++ {
					var v float64
					for _, cm := range comps {
						v += cm.amp * math.Sin(cm.fx*float64(x)+cm.fy*float64(y)+cm.phase)
					}
					g.prototypes.Set(float32(v), k, c, y, x)
				}
			}
		}
	}
	return g
}

// Prototype returns the noiseless prototype image of class k's first
// mode.
func (g *Generator) Prototype(k int) *tensor.Tensor {
	cfg := g.Cfg
	out := tensor.New(cfg.C, cfg.H, cfg.W)
	per := cfg.C * cfg.H * cfg.W
	idx := k * cfg.Modes
	copy(out.Data, g.prototypes.Data[idx*per:(idx+1)*per])
	return out
}

// Sample draws n labeled samples with balanced classes (round-robin).
func (g *Generator) Sample(n int) *Dataset {
	cfg := g.Cfg
	ds := &Dataset{Images: tensor.New(n, cfg.C, cfg.H, cfg.W), Labels: make([]int, n), Cfg: cfg}
	per := cfg.C * cfg.H * cfg.W
	for i := 0; i < n; i++ {
		k := i % cfg.Classes
		ds.Labels[i] = k
		mode := 0
		if cfg.Modes > 1 {
			mode = g.rng.Intn(cfg.Modes)
		}
		dx, dy := 0, 0
		if cfg.Shift > 0 {
			dx = g.rng.Intn(2*cfg.Shift+1) - cfg.Shift
			dy = g.rng.Intn(2*cfg.Shift+1) - cfg.Shift
		}
		dst := ds.Images.Data[i*per : (i+1)*per]
		proto := k*cfg.Modes + mode
		src := g.prototypes.Data[proto*per : (proto+1)*per]
		for c := 0; c < cfg.C; c++ {
			for y := 0; y < cfg.H; y++ {
				sy := y + dy
				if sy < 0 {
					sy = 0
				} else if sy >= cfg.H {
					sy = cfg.H - 1
				}
				for x := 0; x < cfg.W; x++ {
					sx := x + dx
					if sx < 0 {
						sx = 0
					} else if sx >= cfg.W {
						sx = cfg.W - 1
					}
					v := float64(src[(c*cfg.H+sy)*cfg.W+sx]) + g.rng.NormFloat64()*cfg.Noise
					dst[(c*cfg.H+y)*cfg.W+x] = float32(v)
				}
			}
		}
	}
	return ds
}

// Split partitions the dataset into the first fraction and the rest,
// after a deterministic shuffle. The paper isolates 90% of training
// samples for the victim and leaves 10% to the adversary (§III-B1).
func (d *Dataset) Split(frac float64, r *prng.Source) (first, second *Dataset) {
	if frac < 0 || frac > 1 {
		panic("dataset: split fraction out of [0,1]")
	}
	n := d.Len()
	idx := r.Perm(n)
	cut := int(float64(n) * frac)
	return d.Subset(idx[:cut]), d.Subset(idx[cut:])
}

// Subset returns a copy containing the given sample indices, which must
// be non-empty.
func (d *Dataset) Subset(idx []int) *Dataset {
	if len(idx) == 0 {
		panic("dataset: empty subset")
	}
	cfg := d.Cfg
	per := cfg.C * cfg.H * cfg.W
	out := &Dataset{Images: tensor.New(len(idx), cfg.C, cfg.H, cfg.W), Labels: make([]int, len(idx)), Cfg: cfg}
	for i, j := range idx {
		copy(out.Images.Data[i*per:(i+1)*per], d.Images.Data[j*per:(j+1)*per])
		out.Labels[i] = d.Labels[j]
	}
	return out
}

// Batch extracts samples [lo, hi) as a training batch.
func (d *Dataset) Batch(lo, hi int) (*tensor.Tensor, []int) {
	if lo < 0 || hi > d.Len() || lo >= hi {
		panic(fmt.Sprintf("dataset: bad batch range [%d,%d) of %d", lo, hi, d.Len()))
	}
	cfg := d.Cfg
	per := cfg.C * cfg.H * cfg.W
	x := tensor.New(hi-lo, cfg.C, cfg.H, cfg.W)
	copy(x.Data, d.Images.Data[lo*per:hi*per])
	return x, d.Labels[lo:hi]
}

// Shuffle permutes samples in place.
func (d *Dataset) Shuffle(r *prng.Source) {
	cfg := d.Cfg
	per := cfg.C * cfg.H * cfg.W
	tmp := make([]float32, per)
	r.Shuffle(d.Len(), func(i, j int) {
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
		a := d.Images.Data[i*per : (i+1)*per]
		b := d.Images.Data[j*per : (j+1)*per]
		copy(tmp, a)
		copy(a, b)
		copy(b, tmp)
	})
}

// Append concatenates other onto d (both must share Cfg geometry).
func (d *Dataset) Append(other *Dataset) *Dataset {
	if d.Cfg != other.Cfg {
		panic("dataset: Append config mismatch")
	}
	cfg := d.Cfg
	per := cfg.C * cfg.H * cfg.W
	n := d.Len() + other.Len()
	out := &Dataset{Images: tensor.New(n, cfg.C, cfg.H, cfg.W), Labels: make([]int, 0, n), Cfg: cfg}
	copy(out.Images.Data, d.Images.Data[:d.Len()*per])
	copy(out.Images.Data[d.Len()*per:], other.Images.Data[:other.Len()*per])
	out.Labels = append(out.Labels, d.Labels...)
	out.Labels = append(out.Labels, other.Labels...)
	return out
}
