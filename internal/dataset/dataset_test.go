package dataset

import (
	"testing"

	"seal/internal/nn"
	"seal/internal/prng"
)

func smallCfg() Config {
	return Config{Classes: 4, C: 1, H: 8, W: 8, Noise: 0.3, Shift: 1, Freqs: 3}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(smallCfg(), 7).Sample(40)
	b := NewGenerator(smallCfg(), 7).Sample(40)
	for i := range a.Images.Data {
		if a.Images.Data[i] != b.Images.Data[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := NewGenerator(smallCfg(), 8).Sample(40)
	diff := false
	for i := range a.Images.Data {
		if a.Images.Data[i] != c.Images.Data[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSampleBalancedLabels(t *testing.T) {
	ds := NewGenerator(smallCfg(), 1).Sample(40)
	counts := map[int]int{}
	for _, l := range ds.Labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
		counts[l]++
	}
	for k := 0; k < 4; k++ {
		if counts[k] != 10 {
			t.Fatalf("class %d has %d samples, want 10", k, counts[k])
		}
	}
}

func TestPrototypesDistinct(t *testing.T) {
	g := NewGenerator(smallCfg(), 2)
	p0, p1 := g.Prototype(0), g.Prototype(1)
	var dist float64
	for i := range p0.Data {
		d := float64(p0.Data[i] - p1.Data[i])
		dist += d * d
	}
	if dist < 1 {
		t.Fatalf("prototypes 0 and 1 nearly identical (sq dist %v)", dist)
	}
}

func TestSplitSizesAndDisjointness(t *testing.T) {
	ds := NewGenerator(smallCfg(), 3).Sample(100)
	victim, adv := ds.Split(0.9, prng.New(5))
	if victim.Len() != 90 || adv.Len() != 10 {
		t.Fatalf("split sizes %d/%d, want 90/10", victim.Len(), adv.Len())
	}
}

func TestBatchExtraction(t *testing.T) {
	ds := NewGenerator(smallCfg(), 4).Sample(20)
	x, labels := ds.Batch(4, 8)
	if x.Dim(0) != 4 || len(labels) != 4 {
		t.Fatalf("batch shape %v, labels %d", x.Shape, len(labels))
	}
	// contents must match the source rows
	per := ds.Cfg.C * ds.Cfg.H * ds.Cfg.W
	for i := 0; i < 4*per; i++ {
		if x.Data[i] != ds.Images.Data[4*per+i] {
			t.Fatal("batch data mismatch")
		}
	}
	if labels[0] != ds.Labels[4] {
		t.Fatal("batch labels mismatch")
	}
}

func TestBatchPanicsOnBadRange(t *testing.T) {
	ds := NewGenerator(smallCfg(), 4).Sample(10)
	defer func() {
		if recover() == nil {
			t.Fatal("bad batch range accepted")
		}
	}()
	ds.Batch(8, 20)
}

func TestShufflePreservesPairs(t *testing.T) {
	g := NewGenerator(smallCfg(), 6)
	ds := g.Sample(40)
	// fingerprint: first pixel of each image keyed by label sequence
	sumBefore := make(map[int]float64)
	per := ds.Cfg.C * ds.Cfg.H * ds.Cfg.W
	for i, l := range ds.Labels {
		sumBefore[l] += float64(ds.Images.Data[i*per])
	}
	ds.Shuffle(prng.New(9))
	sumAfter := make(map[int]float64)
	for i, l := range ds.Labels {
		sumAfter[l] += float64(ds.Images.Data[i*per])
	}
	for k, v := range sumBefore {
		d := v - sumAfter[k]
		if d < -1e-4 || d > 1e-4 {
			t.Fatalf("class %d image/label pairing broken by shuffle", k)
		}
	}
}

func TestAppend(t *testing.T) {
	g := NewGenerator(smallCfg(), 10)
	a, b := g.Sample(8), g.Sample(12)
	c := a.Append(b)
	if c.Len() != 20 {
		t.Fatalf("appended length %d", c.Len())
	}
	if c.Labels[8] != b.Labels[0] {
		t.Fatal("append label order wrong")
	}
}

func TestSubsetPanicsOnEmpty(t *testing.T) {
	ds := NewGenerator(smallCfg(), 11).Sample(4)
	defer func() {
		if recover() == nil {
			t.Fatal("empty subset accepted")
		}
	}()
	ds.Subset(nil)
}

// TestTaskIsLearnable trains a small CNN briefly and checks that it beats
// chance comfortably — the property the security experiments rely on.
func TestTaskIsLearnable(t *testing.T) {
	cfg := smallCfg()
	g := NewGenerator(cfg, 12)
	train := g.Sample(200)
	test := g.Sample(80)
	r := prng.New(13)
	net := nn.NewSequential("probe",
		nn.NewConv2D("c1", r, 1, 8, 3, 1, 1, 8, 8),
		nn.NewReLU("r1"),
		nn.NewMaxPool2D("p1", 2, 2),
		nn.NewFlatten("f"),
		nn.NewLinear("fc", r, 8*4*4, 4),
	)
	opt := nn.NewSGD(0.05, 0.9, 0)
	for epoch := 0; epoch < 10; epoch++ {
		train.Shuffle(r)
		for lo := 0; lo+20 <= train.Len(); lo += 20 {
			x, labels := train.Batch(lo, lo+20)
			out := net.Forward(x, true)
			_, grad := nn.SoftmaxCrossEntropy(out, labels)
			net.Backward(grad)
			opt.Step(net.Params())
		}
	}
	x, labels := test.Batch(0, test.Len())
	acc := nn.Accuracy(net.Forward(x, false), labels)
	if acc < 0.7 {
		t.Fatalf("synthetic task not learnable: accuracy %v (chance 0.25)", acc)
	}
}
