package aes

import (
	"encoding/binary"

	"seal/internal/parallel"
)

// ctrGrainBlocks is the chunk size (in AES blocks) handed to each worker
// when a keystream request is long enough to parallelize: 64 blocks is
// 1 KiB of pad, far above goroutine dispatch cost even now that a
// T-table block encryption runs in ~100 ns. Requests shorter than one
// chunk — every per-cache-line pad in the simulator — take the serial
// path untouched.
const ctrGrainBlocks = 64

// CTR implements counter-mode keystream generation as used by
// counter-mode memory encryption: the one-time pad for a cache line is
// AES(K, address ⊕ counter), and data is XORed with the pad. Computing
// the pad needs only the address and counter — not the data — which is
// why counter-mode memory encryption can overlap pad generation with the
// DRAM access (paper §II-B, [24]).
//
// Each keystream block depends only on its own block index, so CTR is
// embarrassingly parallel by construction: long keystreams are split
// into disjoint counter ranges across the worker pool, exactly how
// hardware replicates AES engines across memory channels. Every block
// is written by exactly one worker, so parallel output is bit-identical
// to serial.
type CTR struct {
	c *Cipher
}

// NewCTR wraps an expanded key for counter-mode use.
func NewCTR(c *Cipher) *CTR { return &CTR{c: c} }

// ctrInput fills the counter block for (lineAddr, counter, blk).
func ctrInput(in *[BlockSize]byte, lineAddr, counter uint64, blk int) {
	binary.BigEndian.PutUint64(in[0:8], lineAddr)
	binary.BigEndian.PutUint64(in[8:16], counter^uint64(blk)<<56)
}

// Pad computes the one-time pad for a memory block identified by its
// line address and per-line write counter. n is the pad length in bytes
// and may exceed one AES block; successive blocks increment the block
// index field. Full keystream blocks are encrypted directly into the
// pad slice; only a trailing partial block goes through a stack buffer.
func (ct *CTR) Pad(lineAddr uint64, counter uint64, n int) []byte {
	pad := make([]byte, n)
	nblk := (n + BlockSize - 1) / BlockSize
	gen := func(lo, hi int) {
		var in [BlockSize]byte
		for blk := lo; blk < hi; blk++ {
			ctrInput(&in, lineAddr, counter, blk)
			off := blk * BlockSize
			if off+BlockSize <= n {
				ct.c.Encrypt(pad[off:off+BlockSize], in[:])
			} else {
				var out [BlockSize]byte
				ct.c.Encrypt(out[:], in[:])
				copy(pad[off:], out[:n-off])
			}
		}
	}
	if nblk <= ctrGrainBlocks {
		gen(0, nblk)
	} else {
		parallel.For(nblk, ctrGrainBlocks, gen)
	}
	return pad
}

// XORKeyStream encrypts (or decrypts — the operation is an involution)
// src into dst using the pad for (lineAddr, counter). len(dst) must be
// at least len(src); dst and src may be the same slice. Pad generation
// and the XOR are fused per chunk, so long streams never materialize a
// second full-length pad buffer: each full keystream block is encrypted
// straight into dst (the src words are loaded first, so exact aliasing
// is safe) and XORed in as two uint64 words.
func (ct *CTR) XORKeyStream(dst, src []byte, lineAddr, counter uint64) {
	n := len(src)
	if len(dst) < n {
		panic("aes: XORKeyStream dst shorter than src")
	}
	nblk := (n + BlockSize - 1) / BlockSize
	// Short streams (every per-cache-line call) go through a plain method
	// call: no closure value is built, so the serial read path stays
	// allocation-free.
	if nblk <= ctrGrainBlocks {
		ct.xorBlocks(dst, src, lineAddr, counter, n, 0, nblk)
		return
	}
	parallel.For(nblk, ctrGrainBlocks, func(lo, hi int) {
		ct.xorBlocks(dst, src, lineAddr, counter, n, lo, hi)
	})
}

// xorBlocks fuses pad generation and XOR for keystream blocks [lo, hi)
// of an n-byte stream under one line address.
func (ct *CTR) xorBlocks(dst, src []byte, lineAddr, counter uint64, n, lo, hi int) {
	var in [BlockSize]byte
	for blk := lo; blk < hi; blk++ {
		ctrInput(&in, lineAddr, counter, blk)
		off := blk * BlockSize
		if off+BlockSize <= n {
			s0 := binary.LittleEndian.Uint64(src[off : off+8])
			s1 := binary.LittleEndian.Uint64(src[off+8 : off+16])
			d := dst[off : off+BlockSize]
			ct.c.Encrypt(d, in[:])
			binary.LittleEndian.PutUint64(d[0:8], binary.LittleEndian.Uint64(d[0:8])^s0)
			binary.LittleEndian.PutUint64(d[8:16], binary.LittleEndian.Uint64(d[8:16])^s1)
		} else {
			var out [BlockSize]byte
			ct.c.Encrypt(out[:], in[:])
			for i := off; i < n; i++ {
				dst[i] = src[i] ^ out[i-off]
			}
		}
	}
}

// XORKeyStreamLines applies the per-line counter-mode keystream to a
// run of consecutive whole memory lines: line i of src (lineBytes bytes
// starting at offset i*lineBytes) is XORed with the pad for line address
// baseAddr + i*lineBytes under the shared write counter, exactly as
// len(src)/lineBytes separate XORKeyStream calls would produce — the
// block-index field restarts at every line boundary. The difference is
// dispatch: the whole run is one flat block range split across the
// worker pool, so bulk region decryption pays one fan-out instead of
// one per 64-byte line. len(src) must be a multiple of lineBytes and
// lineBytes a multiple of the AES block size; dst and src may alias
// exactly. The operation is an involution (encrypt == decrypt).
func (ct *CTR) XORKeyStreamLines(dst, src []byte, baseAddr, counter uint64, lineBytes int) {
	n := len(src)
	if len(dst) < n {
		panic("aes: XORKeyStreamLines dst shorter than src")
	}
	if lineBytes <= 0 || lineBytes%BlockSize != 0 {
		panic("aes: XORKeyStreamLines lineBytes must be a positive multiple of the block size")
	}
	if n%lineBytes != 0 {
		panic("aes: XORKeyStreamLines src must be whole lines")
	}
	nblk := n / BlockSize
	bpl := lineBytes / BlockSize
	// Workers()==1 and short runs take the direct call: no closure, no
	// allocation — the streaming engine's serial decrypt path stays
	// zero-alloc.
	if nblk <= ctrGrainBlocks || parallel.Workers() == 1 {
		ct.xorLineBlocks(dst, src, baseAddr, counter, uint64(lineBytes), bpl, 0, nblk)
		return
	}
	parallel.For(nblk, ctrGrainBlocks, func(lo, hi int) {
		ct.xorLineBlocks(dst, src, baseAddr, counter, uint64(lineBytes), bpl, lo, hi)
	})
}

// xorLineBlocks fuses pad generation and XOR for the global block range
// [lo, hi) of a whole-line run: block b lives in line b/bpl at
// intra-line index b%bpl. Every block is full (whole lines only), so
// there is no partial-block tail path.
func (ct *CTR) xorLineBlocks(dst, src []byte, baseAddr, counter, lineBytes uint64, bpl, lo, hi int) {
	var in [BlockSize]byte
	for blk := lo; blk < hi; blk++ {
		line := blk / bpl
		ctrInput(&in, baseAddr+uint64(line)*lineBytes, counter, blk%bpl)
		off := blk * BlockSize
		s0 := binary.LittleEndian.Uint64(src[off : off+8])
		s1 := binary.LittleEndian.Uint64(src[off+8 : off+16])
		d := dst[off : off+BlockSize]
		ct.c.Encrypt(d, in[:])
		binary.LittleEndian.PutUint64(d[0:8], binary.LittleEndian.Uint64(d[0:8])^s0)
		binary.LittleEndian.PutUint64(d[8:16], binary.LittleEndian.Uint64(d[8:16])^s1)
	}
}

// EncryptDirect applies direct (ECB-per-line with address tweak) memory
// encryption to a cache line: each 16-byte block is encrypted
// independently after XORing in the block address as a tweak so that
// identical plaintext lines at different addresses produce different
// ciphertext. Direct encryption requires the data itself before any
// cryptographic work can start, which is why it serializes with the DRAM
// access in the timing model. len(dst) must be at least len(src); the
// tweaked words are staged in dst and encrypted in place, so exact
// aliasing is safe.
func EncryptDirect(c *Cipher, dst, src []byte, lineAddr uint64) {
	if len(dst) < len(src) {
		panic("aes: EncryptDirect dst shorter than src")
	}
	if len(src)%BlockSize != 0 {
		panic("aes: EncryptDirect requires whole blocks")
	}
	for off := 0; off < len(src); off += BlockSize {
		w0 := binary.BigEndian.Uint64(src[off:off+8]) ^ lineAddr ^ uint64(off)
		w1 := binary.BigEndian.Uint64(src[off+8 : off+16])
		d := dst[off : off+BlockSize]
		binary.BigEndian.PutUint64(d[0:8], w0)
		binary.BigEndian.PutUint64(d[8:16], w1)
		c.Encrypt(d, d)
	}
}

// DecryptDirect inverts EncryptDirect. len(dst) must be at least
// len(src).
func DecryptDirect(c *Cipher, dst, src []byte, lineAddr uint64) {
	if len(dst) < len(src) {
		panic("aes: DecryptDirect dst shorter than src")
	}
	if len(src)%BlockSize != 0 {
		panic("aes: DecryptDirect requires whole blocks")
	}
	for off := 0; off < len(src); off += BlockSize {
		c.Decrypt(dst[off:off+BlockSize], src[off:off+BlockSize])
		v := binary.BigEndian.Uint64(dst[off : off+8])
		binary.BigEndian.PutUint64(dst[off:off+8], v^lineAddr^uint64(off))
	}
}
