package aes

import (
	"encoding/binary"

	"seal/internal/parallel"
)

// ctrGrainBlocks is the chunk size (in AES blocks) handed to each worker
// when a keystream request is long enough to parallelize: 64 blocks is
// 1 KiB of pad, far above goroutine dispatch cost at ~0.5 µs per
// byte-oriented block encryption. Requests shorter than one chunk — every
// per-cache-line pad in the simulator — take the serial path untouched.
const ctrGrainBlocks = 64

// CTR implements counter-mode keystream generation as used by
// counter-mode memory encryption: the one-time pad for a cache line is
// AES(K, address ⊕ counter), and data is XORed with the pad. Computing
// the pad needs only the address and counter — not the data — which is
// why counter-mode memory encryption can overlap pad generation with the
// DRAM access (paper §II-B, [24]).
//
// Each keystream block depends only on its own block index, so CTR is
// embarrassingly parallel by construction: long keystreams are split
// into disjoint counter ranges across the worker pool, exactly how
// hardware replicates AES engines across memory channels. Every block
// is written by exactly one worker, so parallel output is bit-identical
// to serial.
type CTR struct {
	c *Cipher
}

// NewCTR wraps an expanded key for counter-mode use.
func NewCTR(c *Cipher) *CTR { return &CTR{c: c} }

// ctrBlock computes keystream block blk for (lineAddr, counter) into out.
func (ct *CTR) ctrBlock(out *[BlockSize]byte, lineAddr, counter uint64, blk int) {
	var in [BlockSize]byte
	binary.BigEndian.PutUint64(in[0:8], lineAddr)
	binary.BigEndian.PutUint64(in[8:16], counter^uint64(blk)<<56)
	ct.c.Encrypt(out[:], in[:])
}

// Pad computes the one-time pad for a memory block identified by its
// line address and per-line write counter. n is the pad length in bytes
// and may exceed one AES block; successive blocks increment the block
// index field.
func (ct *CTR) Pad(lineAddr uint64, counter uint64, n int) []byte {
	pad := make([]byte, n)
	nblk := (n + BlockSize - 1) / BlockSize
	gen := func(lo, hi int) {
		var out [BlockSize]byte
		for blk := lo; blk < hi; blk++ {
			ct.ctrBlock(&out, lineAddr, counter, blk)
			copy(pad[blk*BlockSize:], out[:])
		}
	}
	if nblk <= ctrGrainBlocks {
		gen(0, nblk)
	} else {
		parallel.For(nblk, ctrGrainBlocks, gen)
	}
	return pad
}

// XORKeyStream encrypts (or decrypts — the operation is an involution)
// src into dst using the pad for (lineAddr, counter). len(dst) must be
// at least len(src). Pad generation and the XOR are fused per chunk, so
// long streams never materialize a second full-length pad buffer.
func (ct *CTR) XORKeyStream(dst, src []byte, lineAddr, counter uint64) {
	n := len(src)
	nblk := (n + BlockSize - 1) / BlockSize
	xor := func(lo, hi int) {
		var out [BlockSize]byte
		for blk := lo; blk < hi; blk++ {
			ct.ctrBlock(&out, lineAddr, counter, blk)
			off := blk * BlockSize
			end := off + BlockSize
			if end > n {
				end = n
			}
			for i := off; i < end; i++ {
				dst[i] = src[i] ^ out[i-off]
			}
		}
	}
	if nblk <= ctrGrainBlocks {
		xor(0, nblk)
	} else {
		parallel.For(nblk, ctrGrainBlocks, xor)
	}
}

// EncryptDirect applies direct (ECB-per-line with address tweak) memory
// encryption to a cache line: each 16-byte block is encrypted
// independently after XORing in the block address as a tweak so that
// identical plaintext lines at different addresses produce different
// ciphertext. Direct encryption requires the data itself before any
// cryptographic work can start, which is why it serializes with the DRAM
// access in the timing model.
func EncryptDirect(c *Cipher, dst, src []byte, lineAddr uint64) {
	if len(dst) < len(src) || len(src)%BlockSize != 0 {
		panic("aes: EncryptDirect requires whole blocks")
	}
	var buf [BlockSize]byte
	for off := 0; off < len(src); off += BlockSize {
		copy(buf[:], src[off:off+BlockSize])
		binary.BigEndian.PutUint64(buf[0:8], binary.BigEndian.Uint64(buf[0:8])^lineAddr^uint64(off))
		c.Encrypt(dst[off:off+BlockSize], buf[:])
	}
}

// DecryptDirect inverts EncryptDirect.
func DecryptDirect(c *Cipher, dst, src []byte, lineAddr uint64) {
	if len(dst) < len(src) || len(src)%BlockSize != 0 {
		panic("aes: DecryptDirect requires whole blocks")
	}
	for off := 0; off < len(src); off += BlockSize {
		c.Decrypt(dst[off:off+BlockSize], src[off:off+BlockSize])
		v := binary.BigEndian.Uint64(dst[off : off+8])
		binary.BigEndian.PutUint64(dst[off:off+8], v^lineAddr^uint64(off))
	}
}
