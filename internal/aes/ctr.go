package aes

import "encoding/binary"

// CTR implements counter-mode keystream generation as used by
// counter-mode memory encryption: the one-time pad for a cache line is
// AES(K, address ⊕ counter), and data is XORed with the pad. Computing
// the pad needs only the address and counter — not the data — which is
// why counter-mode memory encryption can overlap pad generation with the
// DRAM access (paper §II-B, [24]).
type CTR struct {
	c *Cipher
}

// NewCTR wraps an expanded key for counter-mode use.
func NewCTR(c *Cipher) *CTR { return &CTR{c: c} }

// Pad computes the one-time pad for a memory block identified by its
// line address and per-line write counter. n is the pad length in bytes
// and may exceed one AES block; successive blocks increment the block
// index field.
func (ct *CTR) Pad(lineAddr uint64, counter uint64, n int) []byte {
	pad := make([]byte, 0, n)
	var in, out [BlockSize]byte
	for blk := 0; len(pad) < n; blk++ {
		binary.BigEndian.PutUint64(in[0:8], lineAddr)
		binary.BigEndian.PutUint64(in[8:16], counter^uint64(blk)<<56)
		ct.c.Encrypt(out[:], in[:])
		need := n - len(pad)
		if need > BlockSize {
			need = BlockSize
		}
		pad = append(pad, out[:need]...)
	}
	return pad
}

// XORKeyStream encrypts (or decrypts — the operation is an involution)
// src into dst using the pad for (lineAddr, counter). len(dst) must be
// at least len(src).
func (ct *CTR) XORKeyStream(dst, src []byte, lineAddr, counter uint64) {
	pad := ct.Pad(lineAddr, counter, len(src))
	for i := range src {
		dst[i] = src[i] ^ pad[i]
	}
}

// EncryptDirect applies direct (ECB-per-line with address tweak) memory
// encryption to a cache line: each 16-byte block is encrypted
// independently after XORing in the block address as a tweak so that
// identical plaintext lines at different addresses produce different
// ciphertext. Direct encryption requires the data itself before any
// cryptographic work can start, which is why it serializes with the DRAM
// access in the timing model.
func EncryptDirect(c *Cipher, dst, src []byte, lineAddr uint64) {
	if len(dst) < len(src) || len(src)%BlockSize != 0 {
		panic("aes: EncryptDirect requires whole blocks")
	}
	var buf [BlockSize]byte
	for off := 0; off < len(src); off += BlockSize {
		copy(buf[:], src[off:off+BlockSize])
		binary.BigEndian.PutUint64(buf[0:8], binary.BigEndian.Uint64(buf[0:8])^lineAddr^uint64(off))
		c.Encrypt(dst[off:off+BlockSize], buf[:])
	}
}

// DecryptDirect inverts EncryptDirect.
func DecryptDirect(c *Cipher, dst, src []byte, lineAddr uint64) {
	if len(dst) < len(src) || len(src)%BlockSize != 0 {
		panic("aes: DecryptDirect requires whole blocks")
	}
	for off := 0; off < len(src); off += BlockSize {
		c.Decrypt(dst[off:off+BlockSize], src[off:off+BlockSize])
		v := binary.BigEndian.Uint64(dst[off : off+8])
		binary.BigEndian.PutUint64(dst[off:off+8], v^lineAddr^uint64(off))
	}
}
