package aes

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"seal/internal/prng"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// TestFIPS197AppendixB checks the worked example from FIPS-197 Appendix B.
func TestFIPS197AppendixB(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := unhex(t, "3243f6a8885a308d313198a2e0370734")
	want := unhex(t, "3925841d02dc09fbdc118597196a0b32")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("encrypt = %x, want %x", got, want)
	}
	dec := make([]byte, 16)
	c.Decrypt(dec, got)
	if !bytes.Equal(dec, pt) {
		t.Fatalf("decrypt = %x, want %x", dec, pt)
	}
}

// TestFIPS197AppendixC1 checks the AES-128 known-answer vector from
// FIPS-197 Appendix C.1.
func TestFIPS197AppendixC1(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	pt := unhex(t, "00112233445566778899aabbccddeeff")
	want := unhex(t, "69c4e0d86a7b0430d8cdb78070b4c55a")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("encrypt = %x, want %x", got, want)
	}
}

// TestSP80038AVectors checks ECB-mode known answers from NIST SP 800-38A
// (F.1.1, first two blocks), exercising the cipher with a second key.
func TestSP80038AVectors(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ pt, ct string }{
		{"6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"},
		{"ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"},
		{"30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"},
		{"f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"},
	}
	got := make([]byte, 16)
	for i, tc := range cases {
		c.Encrypt(got, unhex(t, tc.pt))
		if !bytes.Equal(got, unhex(t, tc.ct)) {
			t.Fatalf("block %d: got %x, want %s", i, got, tc.ct)
		}
	}
}

// TestFIPS197AppendixC1Decrypt checks the decrypt direction of the
// AES-128 known-answer vector from FIPS-197 Appendix C.1.
func TestFIPS197AppendixC1Decrypt(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	ct := unhex(t, "69c4e0d86a7b0430d8cdb78070b4c55a")
	want := unhex(t, "00112233445566778899aabbccddeeff")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Decrypt(got, ct)
	if !bytes.Equal(got, want) {
		t.Fatalf("decrypt = %x, want %x", got, want)
	}
}

// TestSP80038AVectorsDecrypt checks the ECB-AES128.Decrypt known
// answers from NIST SP 800-38A F.1.2 (same key and blocks as F.1.1,
// run through the inverse cipher).
func TestSP80038AVectorsDecrypt(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ pt, ct string }{
		{"6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"},
		{"ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"},
		{"30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"},
		{"f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"},
	}
	got := make([]byte, 16)
	for i, tc := range cases {
		c.Decrypt(got, unhex(t, tc.ct))
		if !bytes.Equal(got, unhex(t, tc.pt)) {
			t.Fatalf("block %d: got %x, want %s", i, got, tc.pt)
		}
	}
}

// TestDecryptInPlace mirrors TestEncryptInPlace for the inverse cipher.
func TestDecryptInPlace(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	c, _ := New(key)
	buf := unhex(t, "69c4e0d86a7b0430d8cdb78070b4c55a")
	c.Decrypt(buf, buf)
	want := unhex(t, "00112233445566778899aabbccddeeff")
	if !bytes.Equal(buf, want) {
		t.Fatalf("in-place decrypt = %x, want %x", buf, want)
	}
}

// TestTTableMatchesReference cross-checks the T-table cipher against
// the retained byte-oriented reference implementation on 1k random
// (key, block) pairs in both directions. Any divergence in table
// generation, the fused round form, or the inverse key schedule shows
// up here before it can silently change simulator ciphertext.
func TestTTableMatchesReference(t *testing.T) {
	r := prng.New(0xae5)
	key := make([]byte, KeySize)
	blk := make([]byte, BlockSize)
	fast := make([]byte, BlockSize)
	ref := make([]byte, BlockSize)
	for trial := 0; trial < 1000; trial++ {
		for i := range key {
			key[i] = byte(r.Uint64())
		}
		for i := range blk {
			blk[i] = byte(r.Uint64())
		}
		c, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		c.Encrypt(fast, blk)
		c.encryptRef(ref, blk)
		if !bytes.Equal(fast, ref) {
			t.Fatalf("trial %d: encrypt %x, reference %x", trial, fast, ref)
		}
		c.Decrypt(fast, blk)
		c.decryptRef(ref, blk)
		if !bytes.Equal(fast, ref) {
			t.Fatalf("trial %d: decrypt %x, reference %x", trial, fast, ref)
		}
	}
}

func TestNewRejectsBadKeySizes(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17, 24, 32} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("key size %d accepted", n)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	check := func(keySeed, ptSeed uint64) bool {
		r := prng.New(keySeed)
		key := make([]byte, 16)
		for i := range key {
			key[i] = byte(r.Uint64())
		}
		r2 := prng.New(ptSeed)
		pt := make([]byte, 16)
		for i := range pt {
			pt[i] = byte(r2.Uint64())
		}
		c, err := New(key)
		if err != nil {
			return false
		}
		ct := make([]byte, 16)
		c.Encrypt(ct, pt)
		dec := make([]byte, 16)
		c.Decrypt(dec, ct)
		return bytes.Equal(dec, pt) && !bytes.Equal(ct, pt)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptInPlace(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	c, _ := New(key)
	buf := unhex(t, "00112233445566778899aabbccddeeff")
	c.Encrypt(buf, buf)
	want := unhex(t, "69c4e0d86a7b0430d8cdb78070b4c55a")
	if !bytes.Equal(buf, want) {
		t.Fatalf("in-place encrypt = %x, want %x", buf, want)
	}
}

func TestSboxIsPermutationWithKnownEntries(t *testing.T) {
	seen := map[byte]bool{}
	for i := 0; i < 256; i++ {
		if seen[sbox[i]] {
			t.Fatalf("sbox has duplicate value %#x", sbox[i])
		}
		seen[sbox[i]] = true
		if invSbox[sbox[i]] != byte(i) {
			t.Fatalf("invSbox mismatch at %d", i)
		}
	}
	// spot-check the canonical entries
	if sbox[0x00] != 0x63 || sbox[0x01] != 0x7c || sbox[0x53] != 0xed || sbox[0xff] != 0x16 {
		t.Fatalf("sbox entries wrong: %#x %#x %#x %#x", sbox[0x00], sbox[0x01], sbox[0x53], sbox[0xff])
	}
}

func TestCTRPadDeterministicAndAddressSensitive(t *testing.T) {
	c, _ := New(unhex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	ctr := NewCTR(c)
	p1 := ctr.Pad(0x1000, 1, 64)
	p2 := ctr.Pad(0x1000, 1, 64)
	if !bytes.Equal(p1, p2) {
		t.Fatal("pad not deterministic")
	}
	if bytes.Equal(p1, ctr.Pad(0x1040, 1, 64)) {
		t.Fatal("pad identical across addresses")
	}
	if bytes.Equal(p1, ctr.Pad(0x1000, 2, 64)) {
		t.Fatal("pad identical across counters")
	}
	if len(p1) != 64 {
		t.Fatalf("pad length %d", len(p1))
	}
	// multi-block pads must not repeat 16-byte blocks
	if bytes.Equal(p1[:16], p1[16:32]) {
		t.Fatal("pad blocks repeat")
	}
}

func TestCTRXORIsInvolution(t *testing.T) {
	c, _ := New(unhex(t, "000102030405060708090a0b0c0d0e0f"))
	ctr := NewCTR(c)
	src := []byte("memory encryption for accelerators: 64-byte cache line payload!")
	enc := make([]byte, len(src))
	ctr.XORKeyStream(enc, src, 0xdead0000, 7)
	if bytes.Equal(enc, src) {
		t.Fatal("ciphertext equals plaintext")
	}
	dec := make([]byte, len(enc))
	ctr.XORKeyStream(dec, enc, 0xdead0000, 7)
	if !bytes.Equal(dec, src) {
		t.Fatal("CTR round-trip failed")
	}
}

func TestDirectModeRoundTripAndTweak(t *testing.T) {
	c, _ := New(unhex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	line := make([]byte, 64)
	for i := range line {
		line[i] = byte(i)
	}
	enc := make([]byte, 64)
	EncryptDirect(c, enc, line, 0x4000)
	dec := make([]byte, 64)
	DecryptDirect(c, dec, enc, 0x4000)
	if !bytes.Equal(dec, line) {
		t.Fatal("direct-mode round trip failed")
	}
	// same plaintext at another address must yield different ciphertext
	enc2 := make([]byte, 64)
	EncryptDirect(c, enc2, line, 0x8000)
	if bytes.Equal(enc, enc2) {
		t.Fatal("direct mode not address-tweaked")
	}
}

func TestDirectModeRejectsPartialBlocks(t *testing.T) {
	c, _ := New(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Fatal("partial block accepted")
		}
	}()
	EncryptDirect(c, make([]byte, 20), make([]byte, 20), 0)
}

// TestShortDstPanicsUpFront checks that every bulk entry point rejects
// a destination shorter than the source before writing anything — the
// documented contract used to be unchecked in XORKeyStream, where a
// short dst panicked mid-stream after partial writes.
func TestShortDstPanicsUpFront(t *testing.T) {
	c, _ := New(make([]byte, 16))
	ctr := NewCTR(c)
	src := make([]byte, 64)
	cases := []struct {
		name string
		fn   func(dst []byte)
	}{
		{"XORKeyStream", func(dst []byte) { ctr.XORKeyStream(dst, src, 0x1000, 1) }},
		{"EncryptDirect", func(dst []byte) { EncryptDirect(c, dst, src, 0x1000) }},
		{"DecryptDirect", func(dst []byte) { DecryptDirect(c, dst, src, 0x1000) }},
	}
	for _, tc := range cases {
		dst := make([]byte, len(src)-1)
		unwritten := append([]byte(nil), dst...)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: short dst accepted", tc.name)
				}
			}()
			tc.fn(dst)
		}()
		if !bytes.Equal(dst, unwritten) {
			t.Errorf("%s: short dst partially written before panic", tc.name)
		}
	}
}

// TestXORKeyStreamInPlace checks the documented aliasing contract: the
// fused generate-into-dst path must load source words before the
// keystream overwrites them.
func TestXORKeyStreamInPlace(t *testing.T) {
	c, _ := New(unhex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	ctr := NewCTR(c)
	buf := make([]byte, 64+5) // exercises the partial tail block too
	for i := range buf {
		buf[i] = byte(i * 3)
	}
	want := make([]byte, len(buf))
	ctr.XORKeyStream(want, buf, 0xbeef, 3)
	ctr.XORKeyStream(buf, buf, 0xbeef, 3)
	if !bytes.Equal(buf, want) {
		t.Fatal("in-place XORKeyStream differs from out-of-place")
	}
}

func BenchmarkEncryptBlock(b *testing.B) {
	c, _ := New(make([]byte, 16))
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf, buf)
	}
}

func BenchmarkDecryptBlock(b *testing.B) {
	c, _ := New(make([]byte, 16))
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Decrypt(buf, buf)
	}
}

func BenchmarkCTRPad64(b *testing.B) {
	c, _ := New(make([]byte, 16))
	ctr := NewCTR(c)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		_ = ctr.Pad(uint64(i)<<6, uint64(i), 64)
	}
}
