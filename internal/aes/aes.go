// Package aes implements the AES-128 block cipher (FIPS-197) and CTR
// mode from first principles. It is the functional model of the hardware
// encryption engines in the SEAL simulator: the timing side lives in
// internal/engine, while this package supplies the actual transformation
// applied to bus data, so the bus-snooper example can demonstrate real
// ciphertext on the memory bus.
//
// The implementation favours clarity over speed (table generation at
// init, byte-oriented rounds). It is NOT hardened against timing side
// channels and must not be used as a general-purpose cipher outside this
// simulator.
package aes

import "fmt"

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

var (
	sbox    [256]byte
	invSbox [256]byte
)

// init derives the S-box from the multiplicative inverse in GF(2^8)
// followed by the affine transformation, per FIPS-197 §5.1.1, rather
// than embedding a 256-entry magic table.
func init() {
	// p, q walk multiplicative generator 3 and its inverse.
	p, q := byte(1), byte(1)
	for {
		// p *= 3 in GF(2^8)
		p = p ^ (p << 1) ^ mulBranch(p)
		// q /= 3 (multiply by inverse generator 0xf6)
		q ^= q << 1
		q ^= q << 2
		q ^= q << 4
		if q&0x80 != 0 {
			q ^= 0x09
		}
		// affine transformation of q (the inverse of p)
		xformed := q ^ rotl8(q, 1) ^ rotl8(q, 2) ^ rotl8(q, 3) ^ rotl8(q, 4)
		sbox[p] = xformed ^ 0x63
		if p == 1 {
			break
		}
	}
	sbox[0] = 0x63
	for i := 0; i < 256; i++ {
		invSbox[sbox[i]] = byte(i)
	}
}

func mulBranch(p byte) byte {
	if p&0x80 != 0 {
		return 0x1B
	}
	return 0
}

func rotl8(x byte, k uint) byte { return x<<k | x>>(8-k) }

// xtime multiplies by x (i.e. 2) in GF(2^8).
func xtime(b byte) byte { return b<<1 ^ mulBranch(b) }

// gmul multiplies two field elements (used by InvMixColumns).
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// Cipher is an expanded AES-128 key schedule.
type Cipher struct {
	rk [44]uint32 // 11 round keys × 4 words
}

// New expands a 16-byte key. It returns an error for any other length.
func New(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("aes: invalid key size %d (want %d)", len(key), KeySize)
	}
	c := &Cipher{}
	for i := 0; i < 4; i++ {
		c.rk[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 | uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	rcon := uint32(1) << 24
	for i := 4; i < 44; i++ {
		t := c.rk[i-1]
		if i%4 == 0 {
			t = subWord(t<<8|t>>24) ^ rcon
			rcon = uint32(xtime(byte(rcon>>24))) << 24
		}
		c.rk[i] = c.rk[i-4] ^ t
	}
	return c, nil
}

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

// state holds the 4×4 AES state in column-major order (FIPS-197 §3.4).
type state [16]byte

func (s *state) addRoundKey(rk []uint32) {
	for c := 0; c < 4; c++ {
		w := rk[c]
		s[4*c] ^= byte(w >> 24)
		s[4*c+1] ^= byte(w >> 16)
		s[4*c+2] ^= byte(w >> 8)
		s[4*c+3] ^= byte(w)
	}
}

func (s *state) subBytes() {
	for i := range s {
		s[i] = sbox[s[i]]
	}
}

func (s *state) invSubBytes() {
	for i := range s {
		s[i] = invSbox[s[i]]
	}
}

// shiftRows rotates row r left by r positions. With column-major state,
// row r is indices {r, r+4, r+8, r+12}.
func (s *state) shiftRows() {
	s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]
}

func (s *state) invShiftRows() {
	s[1], s[5], s[9], s[13] = s[13], s[1], s[5], s[9]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[7], s[11], s[15], s[3]
}

func (s *state) mixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		all := a0 ^ a1 ^ a2 ^ a3
		s[4*c] = a0 ^ all ^ xtime(a0^a1)
		s[4*c+1] = a1 ^ all ^ xtime(a1^a2)
		s[4*c+2] = a2 ^ all ^ xtime(a2^a3)
		s[4*c+3] = a3 ^ all ^ xtime(a3^a0)
	}
}

func (s *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09)
		s[4*c+1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d)
		s[4*c+2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b)
		s[4*c+3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e)
	}
}

// Encrypt transforms one 16-byte block dst = E_k(src). dst and src may
// overlap.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: Encrypt block too short")
	}
	var s state
	copy(s[:], src[:BlockSize])
	s.addRoundKey(c.rk[0:4])
	for round := 1; round < 10; round++ {
		s.subBytes()
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(c.rk[4*round : 4*round+4])
	}
	s.subBytes()
	s.shiftRows()
	s.addRoundKey(c.rk[40:44])
	copy(dst[:BlockSize], s[:])
}

// Decrypt transforms one 16-byte block dst = D_k(src). dst and src may
// overlap.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: Decrypt block too short")
	}
	var s state
	copy(s[:], src[:BlockSize])
	s.addRoundKey(c.rk[40:44])
	for round := 9; round >= 1; round-- {
		s.invShiftRows()
		s.invSubBytes()
		s.addRoundKey(c.rk[4*round : 4*round+4])
		s.invMixColumns()
	}
	s.invShiftRows()
	s.invSubBytes()
	s.addRoundKey(c.rk[0:4])
	copy(dst[:BlockSize], s[:])
}
