// Package aes implements the AES-128 block cipher (FIPS-197) and CTR
// mode from first principles. It is the functional model of the hardware
// encryption engines in the SEAL simulator: the timing side lives in
// internal/engine, while this package supplies the actual transformation
// applied to bus data, so the bus-snooper example can demonstrate real
// ciphertext on the memory bus.
//
// The hot path is the standard 32-bit T-table form (four 256-entry
// tables per direction fusing SubBytes/ShiftRows/MixColumns, generated
// at init from the derived S-box); the original byte-oriented round
// functions are retained as an unexported reference implementation that
// tests cross-check against. It is NOT hardened against timing side
// channels and must not be used as a general-purpose cipher outside
// this simulator.
package aes

import (
	"encoding/binary"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

var (
	sbox    [256]byte
	invSbox [256]byte
)

// init derives the S-box from the multiplicative inverse in GF(2^8)
// followed by the affine transformation, per FIPS-197 §5.1.1, rather
// than embedding a 256-entry magic table.
func init() {
	// p, q walk multiplicative generator 3 and its inverse.
	p, q := byte(1), byte(1)
	for {
		// p *= 3 in GF(2^8)
		p = p ^ (p << 1) ^ mulBranch(p)
		// q /= 3 (multiply by inverse generator 0xf6)
		q ^= q << 1
		q ^= q << 2
		q ^= q << 4
		if q&0x80 != 0 {
			q ^= 0x09
		}
		// affine transformation of q (the inverse of p)
		xformed := q ^ rotl8(q, 1) ^ rotl8(q, 2) ^ rotl8(q, 3) ^ rotl8(q, 4)
		sbox[p] = xformed ^ 0x63
		if p == 1 {
			break
		}
	}
	sbox[0] = 0x63
	for i := 0; i < 256; i++ {
		invSbox[sbox[i]] = byte(i)
	}
	buildTables()
}

// T-tables for the 32-bit round form. te0[x] packs the MixColumns
// contribution of S[x] to one output column as (2·S[x], S[x], S[x],
// 3·S[x]) from the most- to least-significant byte; te1..te3 are byte
// rotations of te0, so each state byte's whole SubBytes+MixColumns
// effect is one lookup and the round is 16 lookups + XORs. td0..td3 are
// the inverse tables over invSbox with the InvMixColumns coefficients
// (0e, 09, 0d, 0b).
var (
	te0, te1, te2, te3 [256]uint32
	td0, td1, td2, td3 [256]uint32
)

func buildTables() {
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := xtime(s)
		w := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s2^s)
		te0[i] = w
		te1[i] = w>>8 | w<<24
		te2[i] = w>>16 | w<<16
		te3[i] = w>>24 | w<<8
		is := invSbox[i]
		w = uint32(gmul(is, 0x0e))<<24 | uint32(gmul(is, 0x09))<<16 |
			uint32(gmul(is, 0x0d))<<8 | uint32(gmul(is, 0x0b))
		td0[i] = w
		td1[i] = w>>8 | w<<24
		td2[i] = w>>16 | w<<16
		td3[i] = w>>24 | w<<8
	}
}

func mulBranch(p byte) byte {
	if p&0x80 != 0 {
		return 0x1B
	}
	return 0
}

func rotl8(x byte, k uint) byte { return x<<k | x>>(8-k) }

// xtime multiplies by x (i.e. 2) in GF(2^8).
func xtime(b byte) byte { return b<<1 ^ mulBranch(b) }

// gmul multiplies two field elements (used by InvMixColumns).
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// Cipher is an expanded AES-128 key schedule.
type Cipher struct {
	rk  [44]uint32 // 11 round keys × 4 words
	drk [44]uint32 // decryption schedule: rounds reversed, middle keys InvMixColumns'd
}

// New expands a 16-byte key. It returns an error for any other length.
func New(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("aes: invalid key size %d (want %d)", len(key), KeySize)
	}
	c := &Cipher{}
	for i := 0; i < 4; i++ {
		c.rk[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 | uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	rcon := uint32(1) << 24
	for i := 4; i < 44; i++ {
		t := c.rk[i-1]
		if i%4 == 0 {
			t = subWord(t<<8|t>>24) ^ rcon
			rcon = uint32(xtime(byte(rcon>>24))) << 24
		}
		c.rk[i] = c.rk[i-4] ^ t
	}
	// Equivalent inverse cipher (FIPS-197 §5.3.5): decryption walks the
	// round keys backwards, with InvMixColumns applied to every key
	// except the first and last so the decrypt round can use the same
	// fused table form as encryption. invSbox[sbox[b]] = b turns the td
	// tables into a pure InvMixColumns when indexed through sbox.
	for i := 0; i < 44; i += 4 {
		ei := 40 - i
		for j := 0; j < 4; j++ {
			x := c.rk[ei+j]
			if i > 0 && i < 40 {
				x = td0[sbox[x>>24]] ^ td1[sbox[x>>16&0xff]] ^
					td2[sbox[x>>8&0xff]] ^ td3[sbox[x&0xff]]
			}
			c.drk[i+j] = x
		}
	}
	return c, nil
}

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

// state holds the 4×4 AES state in column-major order (FIPS-197 §3.4).
type state [16]byte

func (s *state) addRoundKey(rk []uint32) {
	for c := 0; c < 4; c++ {
		w := rk[c]
		s[4*c] ^= byte(w >> 24)
		s[4*c+1] ^= byte(w >> 16)
		s[4*c+2] ^= byte(w >> 8)
		s[4*c+3] ^= byte(w)
	}
}

func (s *state) subBytes() {
	for i := range s {
		s[i] = sbox[s[i]]
	}
}

func (s *state) invSubBytes() {
	for i := range s {
		s[i] = invSbox[s[i]]
	}
}

// shiftRows rotates row r left by r positions. With column-major state,
// row r is indices {r, r+4, r+8, r+12}.
func (s *state) shiftRows() {
	s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]
}

func (s *state) invShiftRows() {
	s[1], s[5], s[9], s[13] = s[13], s[1], s[5], s[9]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[7], s[11], s[15], s[3]
}

func (s *state) mixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		all := a0 ^ a1 ^ a2 ^ a3
		s[4*c] = a0 ^ all ^ xtime(a0^a1)
		s[4*c+1] = a1 ^ all ^ xtime(a1^a2)
		s[4*c+2] = a2 ^ all ^ xtime(a2^a3)
		s[4*c+3] = a3 ^ all ^ xtime(a3^a0)
	}
}

func (s *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09)
		s[4*c+1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d)
		s[4*c+2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b)
		s[4*c+3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e)
	}
}

// Encrypt transforms one 16-byte block dst = E_k(src). dst and src may
// overlap. The nine middle rounds fuse SubBytes/ShiftRows/MixColumns
// into four table lookups per column; the final round (no MixColumns)
// assembles S-box bytes directly.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: Encrypt block too short")
	}
	rk := &c.rk
	s0 := binary.BigEndian.Uint32(src[0:4]) ^ rk[0]
	s1 := binary.BigEndian.Uint32(src[4:8]) ^ rk[1]
	s2 := binary.BigEndian.Uint32(src[8:12]) ^ rk[2]
	s3 := binary.BigEndian.Uint32(src[12:16]) ^ rk[3]
	k := 4
	for round := 1; round < 10; round++ {
		t0 := te0[s0>>24] ^ te1[s1>>16&0xff] ^ te2[s2>>8&0xff] ^ te3[s3&0xff] ^ rk[k]
		t1 := te0[s1>>24] ^ te1[s2>>16&0xff] ^ te2[s3>>8&0xff] ^ te3[s0&0xff] ^ rk[k+1]
		t2 := te0[s2>>24] ^ te1[s3>>16&0xff] ^ te2[s0>>8&0xff] ^ te3[s1&0xff] ^ rk[k+2]
		t3 := te0[s3>>24] ^ te1[s0>>16&0xff] ^ te2[s1>>8&0xff] ^ te3[s2&0xff] ^ rk[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	u0 := uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xff])<<16 | uint32(sbox[s2>>8&0xff])<<8 | uint32(sbox[s3&0xff])
	u1 := uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xff])<<16 | uint32(sbox[s3>>8&0xff])<<8 | uint32(sbox[s0&0xff])
	u2 := uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xff])<<16 | uint32(sbox[s0>>8&0xff])<<8 | uint32(sbox[s1&0xff])
	u3 := uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xff])<<16 | uint32(sbox[s1>>8&0xff])<<8 | uint32(sbox[s2&0xff])
	binary.BigEndian.PutUint32(dst[0:4], u0^rk[40])
	binary.BigEndian.PutUint32(dst[4:8], u1^rk[41])
	binary.BigEndian.PutUint32(dst[8:12], u2^rk[42])
	binary.BigEndian.PutUint32(dst[12:16], u3^rk[43])
}

// Decrypt transforms one 16-byte block dst = D_k(src). dst and src may
// overlap. It uses the equivalent inverse cipher over the drk schedule,
// so the round structure mirrors Encrypt with the td tables and the
// inverse (rightward) ShiftRows byte selection.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: Decrypt block too short")
	}
	rk := &c.drk
	s0 := binary.BigEndian.Uint32(src[0:4]) ^ rk[0]
	s1 := binary.BigEndian.Uint32(src[4:8]) ^ rk[1]
	s2 := binary.BigEndian.Uint32(src[8:12]) ^ rk[2]
	s3 := binary.BigEndian.Uint32(src[12:16]) ^ rk[3]
	k := 4
	for round := 1; round < 10; round++ {
		t0 := td0[s0>>24] ^ td1[s3>>16&0xff] ^ td2[s2>>8&0xff] ^ td3[s1&0xff] ^ rk[k]
		t1 := td0[s1>>24] ^ td1[s0>>16&0xff] ^ td2[s3>>8&0xff] ^ td3[s2&0xff] ^ rk[k+1]
		t2 := td0[s2>>24] ^ td1[s1>>16&0xff] ^ td2[s0>>8&0xff] ^ td3[s3&0xff] ^ rk[k+2]
		t3 := td0[s3>>24] ^ td1[s2>>16&0xff] ^ td2[s1>>8&0xff] ^ td3[s0&0xff] ^ rk[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	u0 := uint32(invSbox[s0>>24])<<24 | uint32(invSbox[s3>>16&0xff])<<16 | uint32(invSbox[s2>>8&0xff])<<8 | uint32(invSbox[s1&0xff])
	u1 := uint32(invSbox[s1>>24])<<24 | uint32(invSbox[s0>>16&0xff])<<16 | uint32(invSbox[s3>>8&0xff])<<8 | uint32(invSbox[s2&0xff])
	u2 := uint32(invSbox[s2>>24])<<24 | uint32(invSbox[s1>>16&0xff])<<16 | uint32(invSbox[s0>>8&0xff])<<8 | uint32(invSbox[s3&0xff])
	u3 := uint32(invSbox[s3>>24])<<24 | uint32(invSbox[s2>>16&0xff])<<16 | uint32(invSbox[s1>>8&0xff])<<8 | uint32(invSbox[s0&0xff])
	binary.BigEndian.PutUint32(dst[0:4], u0^rk[40])
	binary.BigEndian.PutUint32(dst[4:8], u1^rk[41])
	binary.BigEndian.PutUint32(dst[8:12], u2^rk[42])
	binary.BigEndian.PutUint32(dst[12:16], u3^rk[43])
}

// encryptRef is the original byte-oriented FIPS-197 round sequence,
// kept as the reference implementation the T-table path is tested
// against.
func (c *Cipher) encryptRef(dst, src []byte) {
	var s state
	copy(s[:], src[:BlockSize])
	s.addRoundKey(c.rk[0:4])
	for round := 1; round < 10; round++ {
		s.subBytes()
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(c.rk[4*round : 4*round+4])
	}
	s.subBytes()
	s.shiftRows()
	s.addRoundKey(c.rk[40:44])
	copy(dst[:BlockSize], s[:])
}

// decryptRef is the byte-oriented inverse cipher retained as the
// reference implementation for Decrypt.
func (c *Cipher) decryptRef(dst, src []byte) {
	var s state
	copy(s[:], src[:BlockSize])
	s.addRoundKey(c.rk[40:44])
	for round := 9; round >= 1; round-- {
		s.invShiftRows()
		s.invSubBytes()
		s.addRoundKey(c.rk[4*round : 4*round+4])
		s.invMixColumns()
	}
	s.invShiftRows()
	s.invSubBytes()
	s.addRoundKey(c.rk[0:4])
	copy(dst[:BlockSize], s[:])
}
