package aes

import (
	"bytes"
	"testing"

	"seal/internal/parallel"
)

// TestXORKeyStreamLinesMatchesPerLine checks the contract the streaming
// decrypt path depends on: one bulk call over a run of lines produces
// exactly the bytes of a per-line XORKeyStream loop, because the block
// index restarts at every line boundary.
func TestXORKeyStreamLinesMatchesPerLine(t *testing.T) {
	c, err := New(bytes.Repeat([]byte{0x4c}, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	ct := NewCTR(c)
	const lineBytes = 64
	for _, lines := range []int{1, 2, 3, 17, ctrGrainBlocks} {
		n := lines * lineBytes
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i*11 + lines)
		}
		want := make([]byte, n)
		for l := 0; l < lines; l++ {
			off := l * lineBytes
			ct.XORKeyStream(want[off:off+lineBytes], src[off:off+lineBytes], 0x4000+uint64(off), 7)
		}
		got := make([]byte, n)
		ct.XORKeyStreamLines(got, src, 0x4000, 7, lineBytes)
		if !bytes.Equal(got, want) {
			t.Fatalf("lines=%d: bulk keystream differs from per-line loop", lines)
		}
	}
}

// TestXORKeyStreamLinesParallelDeterministic checks serial/parallel
// bit-identity, involution, and exact-aliasing safety of the bulk path.
func TestXORKeyStreamLinesParallelDeterministic(t *testing.T) {
	c, err := New(bytes.Repeat([]byte{0x91}, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	ct := NewCTR(c)
	const lineBytes = 64
	n := (ctrGrainBlocks*3 + 4) * BlockSize * (lineBytes / BlockSize)
	src := make([]byte, n)
	for i := range src {
		src[i] = byte(i * 13)
	}
	prev := parallel.SetWorkers(1)
	serial := make([]byte, n)
	ct.XORKeyStreamLines(serial, src, 0x8000, 3, lineBytes)
	parallel.SetWorkers(8)
	par := make([]byte, n)
	ct.XORKeyStreamLines(par, src, 0x8000, 3, lineBytes)
	back := append([]byte(nil), par...)
	ct.XORKeyStreamLines(back, back, 0x8000, 3, lineBytes) // exact aliasing
	parallel.SetWorkers(prev)
	if !bytes.Equal(serial, par) {
		t.Fatal("parallel XORKeyStreamLines differs from serial")
	}
	if !bytes.Equal(back, src) {
		t.Fatal("XORKeyStreamLines is not an involution under aliasing")
	}
}

func TestXORKeyStreamLinesPanics(t *testing.T) {
	c, err := New(bytes.Repeat([]byte{0x10}, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	ct := NewCTR(c)
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	buf := make([]byte, 128)
	expectPanic("partial line", func() { ct.XORKeyStreamLines(buf, buf[:96], 0, 1, 64) })
	expectPanic("bad lineBytes", func() { ct.XORKeyStreamLines(buf, buf, 0, 1, 24) })
	expectPanic("short dst", func() { ct.XORKeyStreamLines(buf[:64], buf, 0, 1, 64) })
}
