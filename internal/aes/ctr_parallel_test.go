package aes

import (
	"bytes"
	"testing"

	"seal/internal/parallel"
)

// TestCTRParallelDeterministic checks the hard guarantee the simulator
// relies on: a pool of any width produces keystreams bit-identical to
// SEAL_WORKERS=1, including lengths that are not block multiples.
func TestCTRParallelDeterministic(t *testing.T) {
	c, err := New(bytes.Repeat([]byte{0x5a}, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	ct := NewCTR(c)
	for _, n := range []int{1, BlockSize, 64, ctrGrainBlocks * BlockSize, ctrGrainBlocks*BlockSize*3 + 7} {
		prev := parallel.SetWorkers(1)
		serial := ct.Pad(0xdeadbeef, 42, n)
		parallel.SetWorkers(8)
		par := ct.Pad(0xdeadbeef, 42, n)
		parallel.SetWorkers(prev)
		if !bytes.Equal(serial, par) {
			t.Fatalf("n=%d: parallel pad differs from serial", n)
		}
		if len(serial) != n {
			t.Fatalf("n=%d: pad length %d", n, len(serial))
		}
	}
}

// TestXORKeyStreamParallelDeterministic checks the fused pad+XOR path
// against the two-step serial reference and round-trips it.
func TestXORKeyStreamParallelDeterministic(t *testing.T) {
	c, err := New(bytes.Repeat([]byte{0x33}, KeySize))
	if err != nil {
		t.Fatal(err)
	}
	ct := NewCTR(c)
	n := ctrGrainBlocks*BlockSize*2 + 5
	src := make([]byte, n)
	for i := range src {
		src[i] = byte(i * 7)
	}
	prev := parallel.SetWorkers(1)
	serial := make([]byte, n)
	ct.XORKeyStream(serial, src, 0x1000, 9)
	parallel.SetWorkers(8)
	par := make([]byte, n)
	ct.XORKeyStream(par, src, 0x1000, 9)
	back := make([]byte, n)
	ct.XORKeyStream(back, par, 0x1000, 9)
	parallel.SetWorkers(prev)
	if !bytes.Equal(serial, par) {
		t.Fatal("parallel XORKeyStream differs from serial")
	}
	if !bytes.Equal(back, src) {
		t.Fatal("XORKeyStream is not an involution")
	}
}

// BenchmarkCTRKeystream measures raw keystream generation over a 16 MiB
// pad — the software analogue of an AES engine saturating one memory
// channel. Compare SEAL_WORKERS=1 against the default to isolate the
// pool's effect.
func BenchmarkCTRKeystream(b *testing.B) {
	c, err := New(bytes.Repeat([]byte{0xa7}, KeySize))
	if err != nil {
		b.Fatal(err)
	}
	ct := NewCTR(c)
	const n = 16 << 20
	b.SetBytes(n)
	b.ResetTimer()
	var sink []byte
	for i := 0; i < b.N; i++ {
		sink = ct.Pad(uint64(i), uint64(i), n)
	}
	_ = sink
}
