package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"seal/internal/models"
	"seal/internal/parallel"
)

// TestDecryptRegionIntoMatchesReadWeight checks that the bulk
// run-coalesced decrypt reproduces, byte for byte, the weights the
// per-line ReadWeight path recovers, across mixed, all-plaintext and
// all-ciphertext regions.
func TestDecryptRegionIntoMatchesReadWeight(t *testing.T) {
	for _, ratio := range []float64{0, 0.5, 1.0} {
		img, _ := buildImage(t, ratio)
		for li, lp := range img.Layout.Plan.Layers {
			r := img.Layout.Region("w:" + lp.Name)
			dst := make([]byte, r.Size)
			encBytes, err := img.DecryptRegionInto(r, dst)
			if err != nil {
				t.Fatal(err)
			}
			if want := int(r.EncryptedBytes()); encBytes != want {
				t.Fatalf("ratio %v %s: decrypted %d ciphertext bytes, want %d", ratio, lp.Name, encBytes, want)
			}
			kk := lp.Spec.K * lp.Spec.K
			if lp.Spec.Kind == models.KindFC {
				kk = 1
			}
			for c := 0; c < lp.Spec.InC; c++ {
				for _, o := range []int{0, lp.Spec.OutC - 1} {
					for k := 0; k < kk; k += kk { // k=0 keeps FC valid; conv checks k=0
						want, err := img.ReadWeight(li, o, c, k)
						if err != nil {
							t.Fatal(err)
						}
						off := uint64(c)*r.BlockBytes + uint64(o*kk+k)*4
						got := math.Float32frombits(binary.LittleEndian.Uint32(dst[off:]))
						if got != want {
							t.Fatalf("ratio %v %s (%d,%d,%d): bulk %v, ReadWeight %v", ratio, lp.Name, o, c, k, got, want)
						}
					}
				}
			}
		}
	}
}

// TestDecryptRangeIntoPanelSlices decrypts a region in line-aligned
// panels and checks the concatenation equals the whole-region decrypt —
// the exact access pattern of the streaming inference engine.
func TestDecryptRangeIntoPanelSlices(t *testing.T) {
	img, _ := buildImage(t, 0.5)
	lp := img.Layout.Plan.Layers[2] // a mixed SE layer
	r := img.Layout.Region("w:" + lp.Name)
	whole := make([]byte, r.Size)
	if _, err := img.DecryptRegionInto(r, whole); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, r.Size)
	step := 3 * r.BlockBytes // panels of three kernel-row blocks
	for off := uint64(0); off < r.Size; off += step {
		n := step
		if off+n > r.Size {
			n = r.Size - off
		}
		if _, err := img.DecryptRangeInto(r, off, got[off:off+n]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, whole) {
		t.Fatal("panel-sliced decrypt differs from whole-region decrypt")
	}
}

func TestDecryptRangeIntoRejectsBadRanges(t *testing.T) {
	img, _ := buildImage(t, 0.5)
	lp := img.Layout.Plan.Layers[0]
	r := img.Layout.Region("w:" + lp.Name)
	buf := make([]byte, LineBytes)
	if _, err := img.DecryptRangeInto(r, 1, buf); err == nil {
		t.Fatal("unaligned offset accepted")
	}
	if _, err := img.DecryptRangeInto(r, 0, make([]byte, LineBytes+1)); err == nil {
		t.Fatal("unaligned length accepted")
	}
	if _, err := img.DecryptRangeInto(r, r.Size, buf); err == nil {
		t.Fatal("out-of-region range accepted")
	}
	if _, err := img.DecryptRangeInto(nil, 0, buf); err == nil {
		t.Fatal("nil region accepted")
	}
	if _, err := img.DecryptRegionInto(r, buf[:0]); err == nil {
		t.Fatal("short region dst accepted")
	}
}

// TestEncRunsCoversRegion checks the run iterator partitions any range
// into contiguous, state-alternating runs consistent with Encrypted.
func TestEncRunsCoversRegion(t *testing.T) {
	img, _ := buildImage(t, 0.5)
	for _, lp := range img.Layout.Plan.Layers {
		r := img.Layout.Region("w:" + lp.Name)
		var cur uint64
		prevEnc := false
		first := true
		r.EncRuns(0, r.Size, func(off, n uint64, enc bool) {
			if off != cur {
				t.Fatalf("%s: run starts at %d, expected %d", r.Name, off, cur)
			}
			if n == 0 || n%LineBytes != 0 {
				t.Fatalf("%s: run length %d not whole lines", r.Name, n)
			}
			if !first && enc == prevEnc {
				t.Fatalf("%s: adjacent runs share state at %d", r.Name, off)
			}
			for o := off; o < off+n; o += LineBytes {
				if r.Encrypted(o) != enc {
					t.Fatalf("%s: run state wrong at %d", r.Name, o)
				}
			}
			cur = off + n
			prevEnc = enc
			first = false
		})
		if cur != r.Size {
			t.Fatalf("%s: runs cover %d of %d bytes", r.Name, cur, r.Size)
		}
	}
}

// TestReadWeightSnoopZeroAlloc pins the pool to one worker (the scratch
// is documented non-concurrent anyway) and checks the per-weight read
// path no longer allocates.
func TestReadWeightSnoopZeroAlloc(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	img, _ := buildImage(t, 0.5)
	lp := img.Layout.Plan.Layers[2]
	r := img.Layout.Region("w:" + lp.Name)
	if _, err := img.ReadWeight(2, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := img.ReadWeight(2, 1, 1, 1); err != nil {
			t.Fatal(err)
		}
		if img.Snoop(r.Base) == nil {
			t.Fatal("snoop failed")
		}
	}); n != 0 {
		t.Fatalf("ReadWeight+Snoop allocated %v times per run", n)
	}
}

// TestAuditParallelMatchesSerial guards the bulk-decrypt Audit rewrite:
// identical reports at every pool width.
func TestAuditParallelMatchesSerial(t *testing.T) {
	img, m := buildImage(t, 0.5)
	prev := parallel.SetWorkers(1)
	serial, err := img.Audit(m)
	parallel.SetWorkers(8)
	par, err2 := img.Audit(m)
	parallel.SetWorkers(prev)
	if err != nil || err2 != nil {
		t.Fatal(err, err2)
	}
	if len(serial) != len(par) {
		t.Fatalf("report counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("report %d differs: %+v vs %+v", i, serial[i], par[i])
		}
	}
}
