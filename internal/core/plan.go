package core

import (
	"fmt"

	"seal/internal/models"
	"seal/internal/prng"
)

// Options tunes plan construction. The zero value plus DefaultOptions
// matches the paper's configuration.
type Options struct {
	// Ratio is the fraction of kernel rows encrypted per SE layer. The
	// paper's quantitative security analysis settles on 0.5 (§III-B3).
	Ratio float64
	// Boundary layers receive full encryption to stop input/output
	// solving attacks (§III-B1): the first FullFirstConv CONV layers, the
	// last FullLastConv CONV layers and the last FullLastFC FC layers.
	// FullFirstFC plays the FullFirstConv role for networks that start
	// with FC layers (MLPs, unrolled RNNs — §III-A final paragraph).
	FullFirstConv int
	FullLastConv  int
	FullFirstFC   int
	FullLastFC    int
	Metric        Metric
	// Seed feeds MetricRandom.
	Seed uint64
}

// DefaultOptions returns the paper's configuration: 50 % ratio, full
// encryption on the first two CONV layers, the last CONV layer and the
// last FC layer, ℓ1 importance.
func DefaultOptions() Options {
	return Options{Ratio: 0.5, FullFirstConv: 2, FullLastConv: 1, FullLastFC: 1, Metric: MetricL1}
}

// DefaultMLPOptions adapts the boundary rule to all-FC networks: the
// first and last FC layers are fully encrypted, SE covers the rest.
func DefaultMLPOptions() Options {
	return Options{Ratio: 0.5, FullFirstFC: 1, FullLastFC: 1, Metric: MetricL1}
}

// LayerPlan is the SE decision for one weight layer.
type LayerPlan struct {
	Name  string
	Index int // position among weight layers
	Spec  models.LayerSpec
	// Full marks boundary layers whose weights are entirely encrypted.
	Full bool
	// EncRows marks encrypted kernel rows (one per input channel).
	EncRows []bool
	// InEnc marks input feature-map channels that must be ciphertext in
	// memory. InEnc covers EncRows and, where a feature map feeds several
	// consumers, the union of their demands.
	InEnc []bool
	// OutEnc marks output feature-map channels stored as ciphertext
	// (driven by the consumers of this layer's output).
	OutEnc []bool
	// Norms holds the per-row importance used for the selection.
	Norms []float64
}

// EncRowCount returns the number of encrypted kernel rows.
func (lp *LayerPlan) EncRowCount() int { return countTrue(lp.EncRows) }

// WeightEncBytes returns the encrypted weight bytes of the layer.
func (lp *LayerPlan) WeightEncBytes() int64 {
	perRow := int64(lp.Spec.OutC) * int64(maxInt(lp.Spec.K*lp.Spec.K, 1)) * 4
	return int64(lp.EncRowCount()) * perRow
}

// Plan is the complete smart-encryption decision for a network.
type Plan struct {
	Arch   *models.Arch
	Opts   Options
	Layers []*LayerPlan
	// InputEncrypted reports whether the network input image is stored
	// encrypted. It is always false: inference inputs are supplied by the
	// querying party and are not part of the model IP.
	InputEncrypted bool
}

// NewPlan computes the SE plan for a built model (the weights determine
// the ℓ1 ranking).
func NewPlan(m *models.Model, opts Options) (*Plan, error) {
	if opts.Ratio < 0 || opts.Ratio > 1 {
		return nil, fmt.Errorf("core: encryption ratio %v out of [0,1]", opts.Ratio)
	}
	norms := make([][]float64, len(m.WeightLayers))
	rng := prng.New(opts.Seed)
	for i, w := range m.WeightLayers {
		norms[i] = RowNorms(w, opts.Metric, rng)
	}
	specs := make([]models.LayerSpec, len(m.WeightLayers))
	for i, w := range m.WeightLayers {
		specs[i] = w.Spec
	}
	return NewPlanFromNorms(m.Arch, specs, norms, opts)
}

// NewPlanFromNorms computes the SE plan from precomputed per-layer row
// norms; specs must be the CONV+FC layer specs in network order. This
// entry point lets the timing experiments plan full-size architectures
// without materializing full-size weights.
func NewPlanFromNorms(arch *models.Arch, specs []models.LayerSpec, norms [][]float64, opts Options) (*Plan, error) {
	if len(specs) != len(norms) {
		return nil, fmt.Errorf("core: %d specs but %d norm vectors", len(specs), len(norms))
	}
	p := &Plan{Arch: arch, Opts: opts}
	convTotal, fcTotal := 0, 0
	for _, s := range specs {
		if s.Kind == models.KindConv {
			convTotal++
		} else {
			fcTotal++
		}
	}
	convIdx, fcIdx := 0, 0
	for i, s := range specs {
		if len(norms[i]) != s.InC {
			return nil, fmt.Errorf("core: layer %s has %d norms for %d input channels", s.Name, len(norms[i]), s.InC)
		}
		lp := &LayerPlan{Name: s.Name, Index: i, Spec: s, Norms: norms[i]}
		switch s.Kind {
		case models.KindConv:
			convIdx++
			lp.Full = convIdx <= opts.FullFirstConv || convIdx > convTotal-opts.FullLastConv
		case models.KindFC:
			fcIdx++
			lp.Full = fcIdx <= opts.FullFirstFC || fcIdx > fcTotal-opts.FullLastFC
		default:
			return nil, fmt.Errorf("core: %s is not a weight layer", s.Name)
		}
		if lp.Full {
			lp.EncRows = allTrue(s.InC)
		} else {
			lp.EncRows = SelectRows(norms[i], opts.Ratio)
		}
		p.Layers = append(p.Layers, lp)
	}
	p.propagate()
	return p, nil
}

// propagate computes feature-map channel encryption from the per-layer
// row selections. A layer's input channels must be ciphertext wherever a
// kernel row is encrypted (§III-A: "for each encrypted row, the SE
// scheme also encrypts one input channel ... corresponding to the
// encrypted row"). A produced feature map takes the union of its
// consumers' demands; fully-encrypted boundary layers also force their
// outputs fully encrypted so the adversary cannot solve boundary weights
// from known inputs/outputs — except the final logits, which the querying
// party observes by definition (the black-box interface).
func (p *Plan) propagate() {
	n := len(p.Layers)
	for i, lp := range p.Layers {
		// Base input demand: this layer's own encrypted rows — except the
		// network input image, which the adversary supplies and therefore
		// cannot be secret.
		if i == 0 {
			lp.InEnc = make([]bool, lp.Spec.InC)
		} else {
			lp.InEnc = append([]bool(nil), lp.EncRows...)
		}
		lp.OutEnc = make([]bool, lp.Spec.OutC)
	}
	// Consumer-driven propagation along the weight-layer chain. For the
	// channel bookkeeping the chain view suffices: pooling layers are
	// per-channel (ciphertext channels stay ciphertext through them), and
	// residual shortcuts consume the same feature map as the block's
	// first conv — the union below is exactly the shortcut-safe choice.
	consumers := p.fmapConsumers()
	for i, lp := range p.Layers {
		if lp.Full && i != n-1 {
			for c := range lp.OutEnc {
				lp.OutEnc[c] = true
			}
		}
		for _, ci := range consumers[i] {
			cons := p.Layers[ci]
			if cons.Spec.Kind == models.KindFC && lp.Spec.Kind == models.KindConv {
				// Flatten boundary: FC input features are conv channels ×
				// spatial positions. Feature j belongs to channel j/(H*W)
				// in channel-major layout; mark the output channel
				// encrypted if any of its flattened features is demanded.
				hw := cons.Spec.InC / lp.Spec.OutC
				if hw <= 0 {
					hw = 1
				}
				for j, e := range cons.InEnc {
					if e {
						ch := j / hw
						if ch < len(lp.OutEnc) {
							lp.OutEnc[ch] = true
						}
					}
				}
				continue
			}
			for c := range lp.OutEnc {
				if c < len(cons.InEnc) && cons.InEnc[c] {
					lp.OutEnc[c] = true
				}
			}
		}
	}
	// Feature maps with multiple consumers must satisfy all of them, and
	// a consumer's InEnc must match the stored feature map — lift OutEnc
	// back into every consumer's InEnc.
	for i, lp := range p.Layers {
		for _, ci := range consumers[i] {
			cons := p.Layers[ci]
			if cons.Spec.Kind == models.KindFC && lp.Spec.Kind == models.KindConv {
				hw := cons.Spec.InC / lp.Spec.OutC
				if hw <= 0 {
					hw = 1
				}
				for j := range cons.InEnc {
					ch := j / hw
					if ch < len(lp.OutEnc) && lp.OutEnc[ch] {
						cons.InEnc[j] = true
					}
				}
				continue
			}
			for c := range cons.InEnc {
				if c < len(lp.OutEnc) && lp.OutEnc[c] {
					cons.InEnc[c] = true
				}
			}
		}
	}
}

// fmapConsumers maps each weight layer index to the weight layers that
// read its output feature map. In the sequential chain that is the next
// weight layer; residual shortcut convs additionally read the feature
// map produced before their block's first conv.
func (p *Plan) fmapConsumers() [][]int {
	out := make([][]int, len(p.Layers))
	byName := map[string]int{}
	for i, lp := range p.Layers {
		byName[lp.Name] = i
	}
	// producer of the "current" chain fmap, walking weight layers
	prev := -1
	for i, lp := range p.Layers {
		if lp.Spec.ShortcutOf != "" {
			// shortcut reads the fmap its block's conv1 read
			if c1, ok := byName[lp.Spec.ShortcutOf+".conv1"]; ok {
				producer := c1 - 1
				// conv1 may itself be preceded by a shortcut of the
				// previous block in weight-layer order; skip those.
				for producer >= 0 && p.Layers[producer].Spec.ShortcutOf != "" {
					producer--
				}
				if producer >= 0 {
					out[producer] = append(out[producer], i)
				}
			}
			continue
		}
		if prev >= 0 {
			out[prev] = append(out[prev], i)
		}
		prev = i
	}
	return out
}

// EncryptedWeightBytes returns total encrypted weight bytes.
func (p *Plan) EncryptedWeightBytes() int64 {
	var n int64
	for _, lp := range p.Layers {
		n += lp.WeightEncBytes()
	}
	return n
}

// TotalWeightBytes returns total weight bytes of all planned layers.
func (p *Plan) TotalWeightBytes() int64 {
	var n int64
	for _, lp := range p.Layers {
		n += int64(lp.Spec.WeightCount()) * 4
	}
	return n
}

// WeightEncFraction returns the fraction of weight bytes encrypted.
func (p *Plan) WeightEncFraction() float64 {
	t := p.TotalWeightBytes()
	if t == 0 {
		return 0
	}
	return float64(p.EncryptedWeightBytes()) / float64(t)
}

// LayerByName returns the plan entry for a layer, or nil.
func (p *Plan) LayerByName(name string) *LayerPlan {
	for _, lp := range p.Layers {
		if lp.Name == name {
			return lp
		}
	}
	return nil
}

// Verify checks the SE security invariant on every layer: an encrypted
// kernel row's input channel must be ciphertext (otherwise the adversary
// observes X and X·ω and can solve for the row, §III-A). It returns the
// first violation found.
func (p *Plan) Verify() error {
	for i, lp := range p.Layers {
		if i == 0 {
			// The input image is public; the first layer must therefore be
			// fully encrypted if any of its rows is, which the boundary
			// rule guarantees. With the image public AND weights hidden,
			// the product Y=X·ω would reveal ω if Y were plaintext.
			if lp.EncRowCount() > 0 && !allSet(lp.OutEnc) && lp.Index != len(p.Layers)-1 {
				return fmt.Errorf("core: first layer %s has encrypted rows but plaintext output channels", lp.Name)
			}
			continue
		}
		for c, enc := range lp.EncRows {
			if enc && c < len(lp.InEnc) && !lp.InEnc[c] {
				return fmt.Errorf("core: layer %s row %d encrypted but its input channel is plaintext", lp.Name, c)
			}
		}
	}
	return nil
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func allTrue(n int) []bool {
	bs := make([]bool, n)
	for i := range bs {
		bs[i] = true
	}
	return bs
}

func allSet(bs []bool) bool {
	for _, b := range bs {
		if !b {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
