package core

import (
	"bytes"
	"testing"

	"seal/internal/models"
)

var testKey = []byte("0123456789abcdef")

func buildImage(t testing.TB, ratio float64) (*MemoryImage, *models.Model) {
	t.Helper()
	m := buildSmall(t, models.VGG16Arch(), 31)
	opts := DefaultOptions()
	opts.Ratio = ratio
	p := mustPlan(t, m, opts)
	l := mustLayout(t, p, 1)
	img, err := NewMemoryImage(l, m, testKey)
	if err != nil {
		t.Fatal(err)
	}
	return img, m
}

func TestMemoryImageAuditPasses(t *testing.T) {
	img, m := buildImage(t, 0.5)
	reports, err := img.Audit(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(img.Layout.Plan.Layers) {
		t.Fatalf("reports for %d layers, want %d", len(reports), len(img.Layout.Plan.Layers))
	}
	var leaked, total int64
	for _, r := range reports {
		leaked += r.WeightsLeaked
		total += r.WeightsTotal
	}
	frac := float64(leaked) / float64(total)
	// boundary layers leak nothing; SE layers leak half → well under 50%
	if frac <= 0.2 || frac >= 0.5 {
		t.Fatalf("leaked weight fraction %v out of expected band", frac)
	}
}

func TestMemoryImageSnoopDiffersOnEncryptedLines(t *testing.T) {
	img, _ := buildImage(t, 0.5)
	lp := img.Layout.Plan.LayerByName("conv3_2")
	r := img.Layout.Region("w:" + lp.Name)
	var sawEnc, sawPlain bool
	for c, enc := range lp.EncRows {
		addr := r.Base + uint64(c)*r.BlockBytes
		snooped := img.Snoop(addr)
		if snooped == nil {
			t.Fatal("snoop returned nil inside region")
		}
		if enc {
			sawEnc = true
		} else {
			sawPlain = true
		}
	}
	if !sawEnc || !sawPlain {
		t.Fatal("conv3_2 not mixed at 50% ratio")
	}
}

func TestMemoryImageSnoopOutsideLayout(t *testing.T) {
	img, _ := buildImage(t, 0.5)
	if img.Snoop(img.Layout.End()+1<<20) != nil {
		t.Fatal("snoop outside layout returned data")
	}
}

func TestMemoryImageKeyMatters(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 32)
	p := mustPlan(t, m, DefaultOptions())
	l := mustLayout(t, p, 1)
	a, err := NewMemoryImage(l, m, testKey)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMemoryImage(l, m, []byte("fedcba9876543210"))
	if err != nil {
		t.Fatal(err)
	}
	lp := p.LayerByName("conv3_2")
	r := l.Region("w:" + lp.Name)
	encRow := -1
	for c, enc := range lp.EncRows {
		if enc {
			encRow = c
			break
		}
	}
	addr := r.Base + uint64(encRow)*r.BlockBytes
	if bytes.Equal(a.Snoop(addr), b.Snoop(addr)) {
		t.Fatal("different keys produced identical ciphertext")
	}
	// plaintext rows are key-independent
	plainRow := -1
	for c, enc := range lp.EncRows {
		if !enc {
			plainRow = c
			break
		}
	}
	addr = r.Base + uint64(plainRow)*r.BlockBytes
	if !bytes.Equal(a.Snoop(addr), b.Snoop(addr)) {
		t.Fatal("plaintext rows differ across keys")
	}
}

func TestMemoryImageFullEncryptionLeaksNothing(t *testing.T) {
	m := buildSmall(t, models.ResNet18Arch(), 33)
	opts := DefaultOptions()
	opts.Ratio = 1.0
	p := mustPlan(t, m, opts)
	l := mustLayout(t, p, 1)
	img, err := NewMemoryImage(l, m, testKey)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := img.Audit(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.WeightsLeaked != 0 {
			t.Fatalf("%s leaked %d weights at ratio 1.0", r.Layer, r.WeightsLeaked)
		}
	}
}

func TestMemoryImageRejectsBadKey(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 34)
	p := mustPlan(t, m, DefaultOptions())
	l := mustLayout(t, p, 1)
	if _, err := NewMemoryImage(l, m, []byte("short")); err == nil {
		t.Fatal("bad key accepted")
	}
}
