package core

import (
	"testing"

	"seal/internal/models"
	"seal/internal/prng"
	"seal/internal/tensor"
)

func buildMLP(t testing.TB) *models.Model {
	t.Helper()
	m, err := models.Build(models.MLPArch("mlp", 32, []int{64, 48, 40}, 10), prng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMLPPlanBoundaries(t *testing.T) {
	m := buildMLP(t)
	p := mustPlan(t, m, DefaultMLPOptions())
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if !p.Layers[0].Full {
		t.Fatal("first FC not fully encrypted under MLP options")
	}
	last := p.Layers[len(p.Layers)-1]
	if !last.Full {
		t.Fatal("classifier not fully encrypted")
	}
	// middle layers follow the SE ratio
	mid := p.Layers[1]
	if mid.Full {
		t.Fatal("middle FC unexpectedly full")
	}
	want := int(float64(mid.Spec.InC)*0.5 + 0.5)
	if mid.EncRowCount() != want {
		t.Fatalf("middle FC enc rows %d, want %d", mid.EncRowCount(), want)
	}
}

func TestMLPPlanWithoutFirstBoundaryFailsVerify(t *testing.T) {
	// An SE-encrypted first FC with a public input and partially
	// plaintext output would let the adversary solve the weights; Verify
	// must reject that configuration.
	m := buildMLP(t)
	opts := Options{Ratio: 0.5, Metric: MetricL1} // no boundary rules at all
	p := mustPlan(t, m, opts)
	if err := p.Verify(); err == nil {
		t.Fatal("Verify accepted a solvable first layer")
	}
}

func TestMLPLayoutAndImage(t *testing.T) {
	m := buildMLP(t)
	p := mustPlan(t, m, DefaultMLPOptions())
	l := mustLayout(t, p, 4)
	img, err := NewMemoryImage(l, m, testKey)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := img.Audit(m)
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].WeightsLeaked != 0 {
		t.Fatal("boundary FC leaked weights")
	}
	if reports[1].WeightsLeaked == 0 {
		t.Fatal("SE FC leaked nothing at 50% ratio")
	}
}

func TestRNNPlanVerifies(t *testing.T) {
	m, err := models.Build(models.RNNUnrolledArch("rnn", 24, 32, 2, 6), prng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	p := mustPlan(t, m, DefaultMLPOptions())
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	// sanity: the SE layers sit strictly between the boundary layers
	ses := 0
	for _, lp := range p.Layers[1 : len(p.Layers)-1] {
		if !lp.Full {
			ses++
		}
	}
	if ses == 0 {
		t.Fatal("no SE layers in the unrolled RNN")
	}
}

func TestMLPForwardUnaffectedByPlanning(t *testing.T) {
	// planning must never mutate weights
	m := buildMLP(t)
	x := tensor.New(2, 32, 1, 1)
	for i := range x.Data {
		x.Data[i] = float32(i%7) * 0.1
	}
	before := m.Forward(x, false).Clone()
	mustPlan(t, m, DefaultMLPOptions())
	after := m.Forward(x, false)
	if !tensor.Equal(before, after, 0) {
		t.Fatal("planning changed model outputs")
	}
}
