package core

import (
	"testing"

	"seal/internal/models"
)

func TestAddressSpaceBasics(t *testing.T) {
	a := NewAddressSpace(0)
	plain := a.Malloc("p", 100)
	enc := a.EMalloc("e", 100)
	if plain.Size%LineBytes != 0 || enc.Size%LineBytes != 0 {
		t.Fatal("regions not line-aligned")
	}
	if plain.Encrypted(0) {
		t.Fatal("Malloc region encrypted")
	}
	if !enc.Encrypted(0) || !enc.Encrypted(99) {
		t.Fatal("EMalloc region not encrypted")
	}
	if plain.Base+plain.Size > enc.Base {
		t.Fatal("regions overlap")
	}
}

func TestEMallocBlocks(t *testing.T) {
	a := NewAddressSpace(0)
	r := a.EMallocBlocks("w", RegionWeights, 100, []bool{true, false, true})
	if r.BlockBytes != 128 { // 100 aligned to 64
		t.Fatalf("block stride %d, want 128", r.BlockBytes)
	}
	if r.Size != 3*128 {
		t.Fatalf("size %d", r.Size)
	}
	if !r.Encrypted(0) || r.Encrypted(128) || !r.Encrypted(256) {
		t.Fatal("per-block encryption wrong")
	}
	if r.EncryptedBytes() != 256 {
		t.Fatalf("encrypted bytes %d, want 256", r.EncryptedBytes())
	}
}

func mustLayout(t testing.TB, p *Plan, batch int) *Layout {
	t.Helper()
	l, err := NewLayout(p, batch)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLayoutRegionsExist(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 20)
	p := mustPlan(t, m, DefaultOptions())
	l := mustLayout(t, p, 1)
	if l.Region("fmap:input") == nil {
		t.Fatal("input region missing")
	}
	for _, lp := range p.Layers {
		if l.Region("w:"+lp.Name) == nil {
			t.Fatalf("weights region for %s missing", lp.Name)
		}
		if l.Region("fmap:"+lp.Name) == nil {
			t.Fatalf("fmap region for %s missing", lp.Name)
		}
		if lp.Spec.Kind == models.KindConv && l.Region("cols:"+lp.Name) == nil {
			t.Fatalf("cols region for %s missing", lp.Name)
		}
	}
}

func TestLayoutProtectedFollowsPlan(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 21)
	p := mustPlan(t, m, DefaultOptions())
	l := mustLayout(t, p, 1)
	lp := p.LayerByName("conv3_2")
	w := l.Region("w:" + lp.Name)
	for row, enc := range lp.EncRows {
		addr := w.Base + uint64(row)*w.BlockBytes
		if l.Protected(addr) != enc {
			t.Fatalf("row %d: Protected=%v, plan=%v", row, l.Protected(addr), enc)
		}
		// middle of the row block must agree too
		if l.Protected(addr+w.BlockBytes/2) != enc {
			t.Fatalf("row %d midpoint disagrees", row)
		}
	}
	fm := l.Region("fmap:" + lp.Name)
	for ch, enc := range lp.OutEnc {
		addr := fm.Base + uint64(ch)*fm.BlockBytes
		if l.Protected(addr) != enc {
			t.Fatalf("fmap channel %d: Protected=%v, plan=%v", ch, l.Protected(addr), enc)
		}
	}
	cols := l.Region("cols:" + lp.Name)
	for ch, enc := range lp.InEnc {
		addr := cols.Base + uint64(ch)*cols.BlockBytes
		if l.Protected(addr) != enc {
			t.Fatalf("cols channel %d: Protected=%v, plan=%v", ch, l.Protected(addr), enc)
		}
	}
}

func TestLayoutInputPlainAndOutsideUnprotected(t *testing.T) {
	m := buildSmall(t, models.ResNet18Arch(), 22)
	p := mustPlan(t, m, DefaultOptions())
	l := mustLayout(t, p, 2)
	in := l.Region("fmap:input")
	if l.Protected(in.Base) || l.Protected(in.Base+in.Size-1) {
		t.Fatal("input image protected")
	}
	if l.Protected(l.End() + 4096) {
		t.Fatal("address beyond layout protected")
	}
}

func TestLayoutEncryptedFractionTracksRatio(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 23)
	low, high := DefaultOptions(), DefaultOptions()
	low.Ratio, high.Ratio = 0.1, 0.9
	fLow := mustLayout(t, mustPlan(t, m, low), 1).EncryptedFraction()
	fHigh := mustLayout(t, mustPlan(t, m, high), 1).EncryptedFraction()
	if fLow >= fHigh {
		t.Fatalf("encrypted fraction not increasing: %v vs %v", fLow, fHigh)
	}
	if fLow <= 0 || fHigh >= 1 {
		t.Fatalf("fractions out of range: %v %v", fLow, fHigh)
	}
}

func TestLayoutBatchScalesRegions(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 24)
	p := mustPlan(t, m, DefaultOptions())
	l1 := mustLayout(t, p, 1)
	l4 := mustLayout(t, p, 4)
	f1 := l1.Region("fmap:conv1_1")
	f4 := l4.Region("fmap:conv1_1")
	if f4.Size < 3*f1.Size {
		t.Fatalf("batch-4 fmap %d not ≈4× batch-1 %d", f4.Size, f1.Size)
	}
	// weights do not scale with batch
	w1 := l1.Region("w:conv1_1")
	w4 := l4.Region("w:conv1_1")
	if w1.Size != w4.Size {
		t.Fatal("weights region scaled with batch")
	}
}

func TestLayoutRejectsBadBatch(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 25)
	p := mustPlan(t, m, DefaultOptions())
	if _, err := NewLayout(p, 0); err == nil {
		t.Fatal("batch 0 accepted")
	}
}

func TestLayoutRegionsDisjoint(t *testing.T) {
	m := buildSmall(t, models.ResNet34Arch(), 26)
	p := mustPlan(t, m, DefaultOptions())
	l := mustLayout(t, p, 1)
	regs := l.Regions()
	for i := 1; i < len(regs); i++ {
		if regs[i-1].Base+regs[i-1].Size > regs[i].Base {
			t.Fatalf("regions %s and %s overlap", regs[i-1].Name, regs[i].Name)
		}
	}
}
