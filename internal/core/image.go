package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"seal/internal/aes"
	"seal/internal/models"
	"seal/internal/tensor"
)

// MemoryImage is the functional (byte-accurate) view of a planned
// network's DRAM contents: every region of the layout materialized, with
// the plan's ciphertext blocks actually encrypted under AES-CTR. It is
// what a physical bus snooper captures, and the executable counterpart
// of the timing simulator's Protected predicate.
type MemoryImage struct {
	Layout *Layout
	bytes  map[uint64][]byte // region base -> backing bytes
	ctr    *aes.CTR
	// counters holds the per-line write counter used for the one-time
	// pads (a fresh image has counter 1 everywhere: one write).
	counter uint64
	// lineScratch stages one decrypted/snooped line for ReadWeight and
	// Snoop, so the per-weight read path performs no allocations. It
	// makes those two methods non-reentrant: an image must not serve
	// concurrent ReadWeight/Snoop calls (DecryptRegionInto and the
	// streaming engine do not use it and remain safe to parallelize
	// internally).
	lineScratch [LineBytes]byte
}

// NewMemoryImage lays the model's weights into the layout's regions and
// encrypts exactly the blocks the plan marks, using AES-128 CTR keyed by
// key. Feature-map and scratch regions are zero-initialized (they hold
// run-time data); weight regions hold the model's real parameters in the
// kernel-row-major order the layout defines.
func NewMemoryImage(layout *Layout, m *models.Model, key []byte) (*MemoryImage, error) {
	cipher, err := aes.New(key)
	if err != nil {
		return nil, err
	}
	if len(m.WeightLayers) != len(layout.Plan.Layers) {
		return nil, fmt.Errorf("core: model has %d weight layers, plan %d", len(m.WeightLayers), len(layout.Plan.Layers))
	}
	img := &MemoryImage{Layout: layout, bytes: map[uint64][]byte{}, ctr: aes.NewCTR(cipher), counter: 1}
	for _, r := range layout.Regions() {
		img.bytes[r.Base] = make([]byte, r.Size)
	}
	for i, lp := range layout.Plan.Layers {
		w := m.WeightLayers[i]
		r := layout.Region("w:" + lp.Name)
		if r == nil {
			return nil, fmt.Errorf("core: missing weights region for %s", lp.Name)
		}
		var err error
		if layout.Int8 {
			err = img.storeWeightsInt8(r, lp.Name, w)
		} else {
			err = img.storeWeights(r, w)
		}
		if err != nil {
			return nil, err
		}
	}
	img.encryptMarked()
	return img, nil
}

// storeWeights serializes a layer's weights kernel-row-major into the
// region's plaintext bytes.
func (img *MemoryImage) storeWeights(r *Region, w *models.WeightLayer) error {
	buf := img.bytes[r.Base]
	spec := w.Spec
	if w.Conv != nil {
		kk := spec.K * spec.K
		for c := 0; c < spec.InC; c++ {
			base := uint64(c) * r.BlockBytes
			for o := 0; o < spec.OutC; o++ {
				for k := 0; k < kk; k++ {
					v := w.Conv.Weight.W.Data[(o*spec.InC+c)*kk+k]
					off := base + uint64(o*kk+k)*4
					binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
				}
			}
		}
		return nil
	}
	for c := 0; c < spec.InC; c++ {
		base := uint64(c) * r.BlockBytes
		for o := 0; o < spec.OutC; o++ {
			v := w.FC.Weight.W.Data[o*spec.InC+c]
			binary.LittleEndian.PutUint32(buf[base+uint64(o)*4:], math.Float32bits(v))
		}
	}
	return nil
}

// quantizeLayer requantizes a layer's float weights with the same
// per-output-channel helper the nn quantized path uses, so image bytes
// and EnableInt8 state are bit-identical by determinism — no ordering
// requirement between EnableInt8 and image construction. The returned
// kernel matrix is [OutC, InC·K·K] for CONV (column index c·kk+k) and
// [Out, In] for FC.
func quantizeLayer(w *models.WeightLayer) (*tensor.Int8Mat, []float32) {
	spec := w.Spec
	cols := spec.InC
	var data []float32
	if w.Conv != nil {
		cols = spec.InC * spec.K * spec.K
		data = w.Conv.Weight.W.Data
	} else {
		data = w.FC.Weight.W.Data
	}
	km := &tensor.Tensor{Shape: []int{spec.OutC, cols}, Data: data}
	q := tensor.NewInt8Mat(spec.OutC, cols)
	scales := make([]float32, spec.OutC)
	tensor.QuantizeRowsInto(q, scales, km)
	return q, scales
}

// storeWeightsInt8 serializes a layer's quantized weights kernel-row-major
// (one byte per weight, same [channel block][out·kk+k] order as the float
// image) and its per-output-channel scales into the plaintext qs header.
func (img *MemoryImage) storeWeightsInt8(r *Region, name string, w *models.WeightLayer) error {
	qs := img.Layout.Region("qs:" + name)
	if qs == nil {
		return fmt.Errorf("core: missing scales region for %s", name)
	}
	q, scales := quantizeLayer(w)
	buf := img.bytes[r.Base]
	spec := w.Spec
	if w.Conv != nil {
		kk := spec.K * spec.K
		cols := spec.InC * kk
		for c := 0; c < spec.InC; c++ {
			base := uint64(c) * r.BlockBytes
			for o := 0; o < spec.OutC; o++ {
				row := q.Data[o*cols+c*kk : o*cols+(c+1)*kk]
				for k, v := range row {
					buf[base+uint64(o*kk+k)] = byte(v)
				}
			}
		}
	} else {
		for c := 0; c < spec.InC; c++ {
			base := uint64(c) * r.BlockBytes
			for o := 0; o < spec.OutC; o++ {
				buf[base+uint64(o)] = byte(q.Data[o*spec.InC+c])
			}
		}
	}
	sb := img.bytes[qs.Base]
	for o, s := range scales {
		binary.LittleEndian.PutUint32(sb[o*4:], math.Float32bits(s))
	}
	return nil
}

// scaleAt reads a layer's per-output-channel dequantization scale from
// its plaintext qs header (1 if the layout is not quantized).
func (img *MemoryImage) scaleAt(layer string, outIdx int) float32 {
	qs := img.Layout.Region("qs:" + layer)
	if qs == nil {
		return 1
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(img.bytes[qs.Base][outIdx*4:]))
}

// encryptMarked applies the counter-mode pad to every line the layout
// marks as ciphertext.
func (img *MemoryImage) encryptMarked() {
	for _, r := range img.Layout.Regions() {
		buf := img.bytes[r.Base]
		for off := uint64(0); off < r.Size; off += LineBytes {
			if r.Encrypted(off) {
				addr := r.Base + off
				img.ctr.XORKeyStream(buf[off:off+LineBytes], buf[off:off+LineBytes], addr, img.counter)
			}
		}
	}
}

// Snoop returns the 64-byte line a bus snooper sees at addr (ciphertext
// where the plan encrypts, plaintext elsewhere). It returns nil for
// addresses outside the layout. The returned slice aliases an internal
// scratch line: it is valid only until the image's next Snoop or
// ReadWeight, and Snoop must not be called concurrently on one image —
// callers that retain or compare lines across calls must copy first.
func (img *MemoryImage) Snoop(addr uint64) []byte {
	r := img.Layout.find(addr)
	if r == nil {
		return nil
	}
	line := (addr - r.Base) / LineBytes * LineBytes
	out := img.lineScratch[:]
	copy(out, img.bytes[r.Base][line:line+LineBytes])
	return out
}

// ReadWeight decrypts (as the on-chip memory controller would) and
// returns the weight value for (layer, outIdx, inChannel, k). k indexes
// within the K×K kernel for CONV layers and must be 0 for FC layers.
// The decrypted line is staged in an internal scratch, so ReadWeight
// allocates nothing but must not run concurrently with itself or Snoop
// on the same image.
func (img *MemoryImage) ReadWeight(layerIdx, outIdx, inChannel, k int) (float32, error) {
	lp := img.Layout.Plan.Layers[layerIdx]
	r := img.Layout.Region("w:" + lp.Name)
	if r == nil {
		return 0, fmt.Errorf("core: missing weights region for %s", lp.Name)
	}
	kk := lp.Spec.K * lp.Spec.K
	if img.Layout.Int8 {
		var off uint64
		if lp.Spec.Kind == models.KindConv {
			off = uint64(inChannel)*r.BlockBytes + uint64(outIdx*kk+k)
		} else {
			off = uint64(inChannel)*r.BlockBytes + uint64(outIdx)
		}
		lineOff := off / LineBytes * LineBytes
		line := img.lineScratch[:]
		copy(line, img.bytes[r.Base][lineOff:lineOff+LineBytes])
		if r.Encrypted(off) {
			img.ctr.XORKeyStream(line, line, r.Base+lineOff, img.counter)
		}
		return float32(int8(line[off-lineOff])) * img.scaleAt(lp.Name, outIdx), nil
	}
	var off uint64
	if lp.Spec.Kind == models.KindConv {
		off = uint64(inChannel)*r.BlockBytes + uint64(outIdx*kk+k)*4
	} else {
		off = uint64(inChannel)*r.BlockBytes + uint64(outIdx)*4
	}
	lineOff := off / LineBytes * LineBytes
	line := img.lineScratch[:]
	copy(line, img.bytes[r.Base][lineOff:lineOff+LineBytes])
	if r.Encrypted(off) {
		img.ctr.XORKeyStream(line, line, r.Base+lineOff, img.counter)
	}
	bits := binary.LittleEndian.Uint32(line[off-lineOff:])
	return math.Float32frombits(bits), nil
}

// DecryptRangeInto decrypts the region byte range [off, off+len(dst))
// into dst, exactly as the memory controller's read path would: maximal
// runs of ciphertext lines take one wide counter-mode keystream call
// (parallel across the worker pool for long runs), maximal plaintext
// runs are a straight copy, with no per-line dispatch anywhere. off and
// len(dst) must be multiples of LineBytes and lie inside the region. It
// returns the number of ciphertext bytes decrypted (the AES-engine
// traffic of the read, as opposed to bypass traffic).
//
// The decrypt is out-of-place (src region bytes → dst), so no staging
// scratch is needed and the image's backing store is never modified;
// the method is safe to call concurrently with itself and with the
// streaming engine, but not with Snoop/ReadWeight on the same image.
func (img *MemoryImage) DecryptRangeInto(r *Region, off uint64, dst []byte) (int, error) {
	if r == nil {
		return 0, fmt.Errorf("core: DecryptRangeInto: nil region")
	}
	n := uint64(len(dst))
	if off%LineBytes != 0 || n%LineBytes != 0 {
		return 0, fmt.Errorf("core: DecryptRangeInto: range [%d, +%d) of %s not line-aligned", off, n, r.Name)
	}
	if off+n > r.Size {
		return 0, fmt.Errorf("core: DecryptRangeInto: range [%d, +%d) beyond %s size %d", off, n, r.Name, r.Size)
	}
	src := img.bytes[r.Base]
	end := off + n
	encBytes := 0
	for cur := off; cur < end; {
		re := r.runEnd(cur, end)
		s := src[cur:re]
		d := dst[cur-off : re-off]
		if r.Encrypted(cur) {
			img.ctr.XORKeyStreamLines(d, s, r.Base+cur, img.counter, LineBytes)
			encBytes += int(re - cur)
		} else {
			copy(d, s)
		}
		cur = re
	}
	return encBytes, nil
}

// DecryptRegionInto decrypts a whole region into dst (which must hold
// at least r.Size bytes) via DecryptRangeInto — the bulk primitive the
// streaming inference engine and Audit are built on.
func (img *MemoryImage) DecryptRegionInto(r *Region, dst []byte) (int, error) {
	if r == nil {
		return 0, fmt.Errorf("core: DecryptRegionInto: nil region")
	}
	if uint64(len(dst)) < r.Size {
		return 0, fmt.Errorf("core: DecryptRegionInto: dst len %d short of %s size %d", len(dst), r.Name, r.Size)
	}
	return img.DecryptRangeInto(r, 0, dst[:r.Size])
}

// SnoopWeight returns the value an adversary reconstructs for the same
// coordinates directly from the bus capture — without the key. For
// plaintext rows this equals the true weight; for encrypted rows it is
// keystream garbage.
func (img *MemoryImage) SnoopWeight(layerIdx, outIdx, inChannel, k int) (float32, error) {
	lp := img.Layout.Plan.Layers[layerIdx]
	r := img.Layout.Region("w:" + lp.Name)
	if r == nil {
		return 0, fmt.Errorf("core: missing weights region for %s", lp.Name)
	}
	kk := lp.Spec.K * lp.Spec.K
	if img.Layout.Int8 {
		// The scales header is plaintext, so the adversary dequantizes
		// snooped bytes with the true per-channel scale — exactly the
		// reconstruction the leak accounting must charge.
		var off uint64
		if lp.Spec.Kind == models.KindConv {
			off = uint64(inChannel)*r.BlockBytes + uint64(outIdx*kk+k)
		} else {
			off = uint64(inChannel)*r.BlockBytes + uint64(outIdx)
		}
		return float32(int8(img.bytes[r.Base][off])) * img.scaleAt(lp.Name, outIdx), nil
	}
	var off uint64
	if lp.Spec.Kind == models.KindConv {
		off = uint64(inChannel)*r.BlockBytes + uint64(outIdx*kk+k)*4
	} else {
		off = uint64(inChannel)*r.BlockBytes + uint64(outIdx)*4
	}
	bits := binary.LittleEndian.Uint32(img.bytes[r.Base][off:])
	return math.Float32frombits(bits), nil
}

// SnoopReport summarizes what the plan leaks for one layer.
type SnoopReport struct {
	Layer         string
	RowsLeaked    int
	RowsProtected int
	WeightsLeaked int64
	WeightsTotal  int64
}

// Audit verifies the image against the model and produces per-layer
// snoop reports: every plaintext-row weight must be bus-recoverable
// bit-exactly, and every encrypted-row weight must decrypt correctly
// with the key while differing on the bus. It is both the functional
// correctness check of the EMalloc path and the leak accounting.
//
// Each layer is one DecryptRegionInto (run-coalesced wide CTR) followed
// by an in-memory compare against the model and the raw bus bytes — the
// historical per-weight line-decrypt loop cost O(weights) keystream
// calls for the same answer.
func (img *MemoryImage) Audit(m *models.Model) ([]SnoopReport, error) {
	var reports []SnoopReport
	var dec []byte // decrypted-region staging, grown to the largest layer
	for i, lp := range img.Layout.Plan.Layers {
		w := m.WeightLayers[i]
		spec := w.Spec
		kk := spec.K * spec.K
		if spec.Kind == models.KindFC {
			kk = 1
		}
		r := img.Layout.Region("w:" + lp.Name)
		if r == nil {
			return nil, fmt.Errorf("core: missing weights region for %s", lp.Name)
		}
		if uint64(cap(dec)) < r.Size {
			dec = make([]byte, r.Size)
		}
		dec = dec[:r.Size]
		if _, err := img.DecryptRegionInto(r, dec); err != nil {
			return nil, err
		}
		raw := img.bytes[r.Base]
		if img.Layout.Int8 {
			rep, err := img.auditLayerInt8(lp, w, r, dec, raw, kk)
			if err != nil {
				return nil, err
			}
			reports = append(reports, rep)
			continue
		}
		rep := SnoopReport{Layer: lp.Name}
		var mismatchEnc bool
		for c, enc := range lp.EncRows {
			if enc {
				rep.RowsProtected++
			} else {
				rep.RowsLeaked++
				rep.WeightsLeaked += int64(spec.OutC * kk)
			}
			rep.WeightsTotal += int64(spec.OutC * kk)
			base := uint64(c) * r.BlockBytes
			for o := 0; o < spec.OutC; o++ {
				for k := 0; k < kk; k++ {
					truth := weightAt(w, o, c, k)
					off := base + uint64(o*kk+k)*4
					decv := math.Float32frombits(binary.LittleEndian.Uint32(dec[off:]))
					if decv != truth {
						return nil, fmt.Errorf("core: %s (%d,%d,%d) decrypts to %v, want %v", lp.Name, o, c, k, decv, truth)
					}
					snooped := math.Float32frombits(binary.LittleEndian.Uint32(raw[off:]))
					if !enc && snooped != truth {
						return nil, fmt.Errorf("core: %s plaintext row %d not bus-recoverable", lp.Name, c)
					}
					if enc && snooped != truth {
						mismatchEnc = true
					}
				}
			}
		}
		if rep.RowsProtected > 0 && !mismatchEnc {
			return nil, fmt.Errorf("core: %s encrypted rows identical on the bus — encryption missing", lp.Name)
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// auditLayerInt8 is Audit's per-layer compare for quantized images: the
// reference is the deterministic requantization of the model weights,
// so every plaintext-row byte must be bus-recoverable exactly, every
// byte must decrypt to the reference with the key, and the plaintext
// scales header must hold the reference scales bit-for-bit.
func (img *MemoryImage) auditLayerInt8(lp *LayerPlan, w *models.WeightLayer, r *Region, dec, raw []byte, kk int) (SnoopReport, error) {
	q, scales := quantizeLayer(w)
	spec := w.Spec
	cols := q.Cols
	for o, s := range scales {
		if stored := img.scaleAt(lp.Name, o); stored != s {
			return SnoopReport{}, fmt.Errorf("core: %s scale %d stored as %v, want %v", lp.Name, o, stored, s)
		}
	}
	rep := SnoopReport{Layer: lp.Name}
	var mismatchEnc bool
	for c, enc := range lp.EncRows {
		if enc {
			rep.RowsProtected++
		} else {
			rep.RowsLeaked++
			rep.WeightsLeaked += int64(spec.OutC * kk)
		}
		rep.WeightsTotal += int64(spec.OutC * kk)
		base := uint64(c) * r.BlockBytes
		for o := 0; o < spec.OutC; o++ {
			for k := 0; k < kk; k++ {
				truth := q.Data[o*cols+c*kk+k]
				off := base + uint64(o*kk+k)
				if decv := int8(dec[off]); decv != truth {
					return SnoopReport{}, fmt.Errorf("core: %s (%d,%d,%d) decrypts to %d, want %d", lp.Name, o, c, k, decv, truth)
				}
				snooped := int8(raw[off])
				if !enc && snooped != truth {
					return SnoopReport{}, fmt.Errorf("core: %s plaintext row %d not bus-recoverable", lp.Name, c)
				}
				if enc && snooped != truth {
					mismatchEnc = true
				}
			}
		}
	}
	if rep.RowsProtected > 0 && !mismatchEnc {
		return SnoopReport{}, fmt.Errorf("core: %s encrypted rows identical on the bus — encryption missing", lp.Name)
	}
	return rep, nil
}

func weightAt(w *models.WeightLayer, o, c, k int) float32 {
	if w.Conv != nil {
		kk := w.Spec.K * w.Spec.K
		return w.Conv.Weight.W.Data[(o*w.Spec.InC+c)*kk+k]
	}
	return w.FC.Weight.W.Data[o*w.Spec.InC+c]
}
