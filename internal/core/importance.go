// Package core implements SEAL's criticality-aware smart encryption (SE)
// scheme (paper §III): the relative-importance measurement of kernel
// rows by ℓ1-norm, the per-layer selection of which rows to encrypt at a
// given encryption ratio, the propagation of encryption to the feature-
// map channels those rows consume, and the EMalloc memory layout that
// tells the simulated memory system which bus lines carry ciphertext.
package core

import (
	"fmt"
	"sort"

	"seal/internal/models"
	"seal/internal/prng"
	"seal/internal/tensor"
)

// Metric selects how kernel-row importance is measured. The paper uses
// ℓ1 (sum of absolute weights, following the pruning literature [13]);
// the alternatives exist for the ablation benchmarks.
type Metric int

// Importance metrics.
const (
	MetricL1 Metric = iota
	MetricL2
	MetricRandom // ablation: ignore weights entirely
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricL1:
		return "l1"
	case MetricL2:
		return "l2"
	case MetricRandom:
		return "random"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// RowNorms measures the importance of every kernel row of a weight
// layer. For a CONV layer with weights [OutC, InC, K, K], kernel row i
// (the paper's terminology, Figure 2) is the slice W[:, i, :, :] — all
// weights that multiply input channel i. For an FC layer [Out, In],
// kernel row i is weight column i. The returned slice has one norm per
// input channel.
func RowNorms(w *models.WeightLayer, metric Metric, rng *prng.Source) []float64 {
	spec := w.Spec
	norms := make([]float64, spec.InC)
	switch metric {
	case MetricRandom:
		if rng == nil {
			rng = prng.New(0)
		}
		for i := range norms {
			norms[i] = rng.Float64()
		}
		return norms
	}
	if w.Conv != nil {
		km := w.Conv.Weight.W // [OutC, InC, K, K]
		outC, inC, kk := spec.OutC, spec.InC, spec.K*spec.K
		for o := 0; o < outC; o++ {
			base := o * inC * kk
			for i := 0; i < inC; i++ {
				accumulate(norms, i, km.Data[base+i*kk:base+(i+1)*kk], metric)
			}
		}
	} else {
		wm := w.FC.Weight.W // [Out, In]
		out, in := spec.OutC, spec.InC
		for o := 0; o < out; o++ {
			row := wm.Data[o*in : (o+1)*in]
			for i, v := range row {
				if metric == MetricL2 {
					norms[i] += float64(v) * float64(v)
				} else {
					norms[i] += abs64(v)
				}
			}
		}
	}
	return norms
}

func accumulate(norms []float64, i int, vals []float32, metric Metric) {
	s := norms[i]
	if metric == MetricL2 {
		for _, v := range vals {
			s += float64(v) * float64(v)
		}
	} else {
		for _, v := range vals {
			s += abs64(v)
		}
	}
	norms[i] = s
}

func abs64(v float32) float64 {
	if v < 0 {
		return -float64(v)
	}
	return float64(v)
}

// SelectRows returns a bitmap marking the ceil(ratio*len(norms)) rows
// with the largest norms — the rows the SE scheme encrypts (§III-A:
// "encrypts partial kernel rows with the largest sums"). Ties break by
// lower index for determinism.
func SelectRows(norms []float64, ratio float64) []bool {
	if ratio < 0 || ratio > 1 {
		panic(fmt.Sprintf("core: encryption ratio %v out of [0,1]", ratio))
	}
	n := len(norms)
	k := int(float64(n)*ratio + 0.5)
	if k > n {
		k = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return norms[idx[a]] > norms[idx[b]] })
	enc := make([]bool, n)
	for _, i := range idx[:k] {
		enc[i] = true
	}
	return enc
}

// RowOrder returns row indices sorted by decreasing norm (most critical
// first), for reporting.
func RowOrder(norms []float64) []int {
	idx := make([]int, len(norms))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return norms[idx[a]] > norms[idx[b]] })
	return idx
}

// KernelRowL1 computes the ℓ1 norm of a single kernel row directly from
// a weight tensor — a convenience for tests and examples.
func KernelRowL1(w *tensor.Tensor, inChannel int) float64 {
	if w.Rank() != 4 {
		panic("core: KernelRowL1 wants [OutC, InC, K, K] weights")
	}
	outC, inC := w.Dim(0), w.Dim(1)
	kk := w.Dim(2) * w.Dim(3)
	var s float64
	for o := 0; o < outC; o++ {
		base := (o*inC + inChannel) * kk
		for _, v := range w.Data[base : base+kk] {
			s += abs64(v)
		}
	}
	return s
}
