package core

import (
	"math"
	"testing"
	"testing/quick"

	"seal/internal/models"
	"seal/internal/prng"
)

func buildSmall(t testing.TB, arch *models.Arch, seed uint64) *models.Model {
	t.Helper()
	m, err := models.Build(arch.Scale(0.125, 0), prng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRowNormsConvHandExample(t *testing.T) {
	r := prng.New(1)
	m := buildSmall(t, models.VGG16Arch(), 1)
	_ = r
	w := m.WeightLayers[0]
	norms := RowNorms(w, MetricL1, nil)
	if len(norms) != w.Spec.InC {
		t.Fatalf("norms length %d, want %d", len(norms), w.Spec.InC)
	}
	for i := range norms {
		want := KernelRowL1(w.Conv.Weight.W, i)
		if math.Abs(norms[i]-want) > 1e-9 {
			t.Fatalf("row %d norm %v, want %v", i, norms[i], want)
		}
	}
}

func TestRowNormsManualTensor(t *testing.T) {
	// 2 out channels, 2 in channels, 1x1 kernels:
	// W[0,0]=1, W[0,1]=-2, W[1,0]=3, W[1,1]=-4
	m := buildSmall(t, models.VGG16Arch(), 2)
	conv := m.WeightLayers[0].Conv
	_ = conv
	// use the FC path with a hand matrix instead
	fc := m.WeightLayers[len(m.WeightLayers)-1]
	if fc.FC == nil {
		t.Fatal("last weight layer not FC")
	}
	for i := range fc.FC.Weight.W.Data {
		fc.FC.Weight.W.Data[i] = 0
	}
	// out x in matrix: column norms
	in := fc.Spec.InC
	fc.FC.Weight.W.Data[0] = 1     // row 0, col 0
	fc.FC.Weight.W.Data[1] = -2    // row 0, col 1
	fc.FC.Weight.W.Data[in] = 3    // row 1, col 0
	fc.FC.Weight.W.Data[in+1] = -4 // row 1, col 1
	norms := RowNorms(fc, MetricL1, nil)
	if norms[0] != 4 || norms[1] != 6 {
		t.Fatalf("fc norms = %v %v, want 4 6", norms[0], norms[1])
	}
	normsL2 := RowNorms(fc, MetricL2, nil)
	if normsL2[0] != 10 || normsL2[1] != 20 {
		t.Fatalf("fc l2 norms = %v %v, want 10 20", normsL2[0], normsL2[1])
	}
}

func TestSelectRowsTopK(t *testing.T) {
	norms := []float64{0.1, 5, 3, 0.2, 4, 1}
	enc := SelectRows(norms, 0.5)
	// top 3: indices 1 (5), 4 (4), 2 (3)
	want := []bool{false, true, true, false, true, false}
	for i := range want {
		if enc[i] != want[i] {
			t.Fatalf("SelectRows = %v, want %v", enc, want)
		}
	}
}

func TestSelectRowsEdgeRatios(t *testing.T) {
	norms := []float64{1, 2, 3, 4}
	if n := countTrue(SelectRows(norms, 0)); n != 0 {
		t.Fatalf("ratio 0 encrypted %d rows", n)
	}
	if n := countTrue(SelectRows(norms, 1)); n != 4 {
		t.Fatalf("ratio 1 encrypted %d rows", n)
	}
	// rounding: 4*0.4+0.5 = 2.1 → 2
	if n := countTrue(SelectRows(norms, 0.4)); n != 2 {
		t.Fatalf("ratio 0.4 encrypted %d rows", n)
	}
}

func TestSelectRowsDeterministicOnTies(t *testing.T) {
	norms := []float64{2, 2, 2, 2}
	a := SelectRows(norms, 0.5)
	b := SelectRows(norms, 0.5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tie-breaking not deterministic")
		}
	}
	if !a[0] || !a[1] || a[2] || a[3] {
		t.Fatalf("ties should break by index: %v", a)
	}
}

func TestRowOrderSorted(t *testing.T) {
	norms := []float64{0.5, 3, 1, 2}
	order := RowOrder(norms)
	want := []int{1, 3, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestMetricRandomIgnoresWeights(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 3)
	w := m.WeightLayers[3]
	a := RowNorms(w, MetricRandom, prng.New(7))
	b := RowNorms(w, MetricRandom, prng.New(7))
	c := RowNorms(w, MetricRandom, prng.New(8))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random metric not seed-deterministic")
		}
	}
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("random metric identical across seeds")
	}
}

func mustPlan(t testing.TB, m *models.Model, opts Options) *Plan {
	t.Helper()
	p, err := NewPlan(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanBoundaryLayersFull(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 4)
	p := mustPlan(t, m, DefaultOptions())
	// VGG-16: 13 convs + 3 FCs. Full: conv 1, 2, 13 and fc3.
	fullNames := map[string]bool{}
	for _, lp := range p.Layers {
		if lp.Full {
			fullNames[lp.Name] = true
		}
	}
	for _, want := range []string{"conv1_1", "conv1_2", "conv5_3", "fc3"} {
		if !fullNames[want] {
			t.Errorf("%s not fully encrypted; full set = %v", want, fullNames)
		}
	}
	if len(fullNames) != 4 {
		t.Errorf("full layers = %v, want exactly 4", fullNames)
	}
	// a middle layer must be at the 50% ratio
	mid := p.LayerByName("conv3_2")
	if mid == nil || mid.Full {
		t.Fatal("conv3_2 missing or full")
	}
	wantEnc := int(float64(mid.Spec.InC)*0.5 + 0.5)
	if mid.EncRowCount() != wantEnc {
		t.Fatalf("conv3_2 encrypted rows %d, want %d", mid.EncRowCount(), wantEnc)
	}
}

func TestPlanEncryptsLargestRows(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 5)
	p := mustPlan(t, m, DefaultOptions())
	lp := p.LayerByName("conv4_2")
	minEnc, maxPlain := math.Inf(1), math.Inf(-1)
	for i, e := range lp.EncRows {
		if e && lp.Norms[i] < minEnc {
			minEnc = lp.Norms[i]
		}
		if !e && lp.Norms[i] > maxPlain {
			maxPlain = lp.Norms[i]
		}
	}
	if minEnc < maxPlain {
		t.Fatalf("an unencrypted row (%v) outranks an encrypted one (%v)", maxPlain, minEnc)
	}
}

func TestPlanSecurityInvariant(t *testing.T) {
	for _, arch := range models.Archs() {
		m := buildSmall(t, arch, 6)
		p := mustPlan(t, m, DefaultOptions())
		if err := p.Verify(); err != nil {
			t.Errorf("%s: %v", arch.Name, err)
		}
		// InEnc must cover EncRows on every non-input layer
		for i, lp := range p.Layers {
			if i == 0 {
				continue
			}
			for c, e := range lp.EncRows {
				if e && !lp.InEnc[c] {
					t.Fatalf("%s %s: encrypted row %d with plaintext input channel", arch.Name, lp.Name, c)
				}
			}
		}
	}
}

func TestPlanPropagatesToProducers(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 7)
	p := mustPlan(t, m, DefaultOptions())
	// producer's OutEnc must cover the consumer's InEnc (chain layers)
	for i := 0; i+1 < len(p.Layers); i++ {
		prod, cons := p.Layers[i], p.Layers[i+1]
		if cons.Spec.ShortcutOf != "" || cons.Spec.Kind == models.KindFC {
			continue
		}
		for c := range cons.InEnc {
			if cons.InEnc[c] && c < len(prod.OutEnc) && !prod.OutEnc[c] {
				t.Fatalf("%s InEnc[%d] set but producer %s OutEnc clear", cons.Name, c, prod.Name)
			}
		}
	}
}

func TestPlanInputImagePublic(t *testing.T) {
	m := buildSmall(t, models.ResNet18Arch(), 8)
	p := mustPlan(t, m, DefaultOptions())
	if countTrue(p.Layers[0].InEnc) != 0 {
		t.Fatal("network input image marked encrypted")
	}
	if p.InputEncrypted {
		t.Fatal("InputEncrypted set")
	}
}

func TestPlanLogitsPublic(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 9)
	p := mustPlan(t, m, DefaultOptions())
	last := p.Layers[len(p.Layers)-1]
	if countTrue(last.OutEnc) != 0 {
		t.Fatalf("final logits marked encrypted: %v", last.OutEnc)
	}
}

func TestPlanBoundaryOutputsEncrypted(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 10)
	p := mustPlan(t, m, DefaultOptions())
	first := p.Layers[0]
	if !allSet(first.OutEnc) {
		t.Fatal("first boundary layer output not fully encrypted — X public and Y plaintext would reveal the weights")
	}
}

func TestPlanResNetShortcutUnion(t *testing.T) {
	m := buildSmall(t, models.ResNet18Arch(), 11)
	p := mustPlan(t, m, DefaultOptions())
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	// find a projection shortcut and its producer
	var sc *LayerPlan
	for _, lp := range p.Layers {
		if lp.Spec.ShortcutOf != "" {
			sc = lp
			break
		}
	}
	if sc == nil {
		t.Fatal("no shortcut layer found")
	}
	// the shortcut's encrypted rows must be ciphertext in its input fmap
	for c, e := range sc.EncRows {
		if e && !sc.InEnc[c] {
			t.Fatalf("shortcut %s row %d encrypted but input channel plaintext", sc.Name, c)
		}
	}
}

func TestPlanWeightEncFraction(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 12)
	p := mustPlan(t, m, DefaultOptions())
	f := p.WeightEncFraction()
	// 50% SE plus four fully-encrypted boundary layers → fraction in (0.5, 0.75)
	if f <= 0.5 || f >= 0.8 {
		t.Fatalf("weight encryption fraction %v, want in (0.5, 0.8)", f)
	}
	p0 := mustPlan(t, m, Options{Ratio: 0, Metric: MetricL1})
	if p0.WeightEncFraction() != 0 {
		t.Fatalf("ratio-0 no-boundary fraction %v", p0.WeightEncFraction())
	}
	p1 := mustPlan(t, m, Options{Ratio: 1, FullFirstConv: 2, FullLastConv: 1, FullLastFC: 1, Metric: MetricL1})
	if p1.WeightEncFraction() != 1 {
		t.Fatalf("ratio-1 fraction %v", p1.WeightEncFraction())
	}
}

func TestPlanRatioSweepMonotoneTraffic(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 13)
	prev := -1.0
	for _, ratio := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		opts := DefaultOptions()
		opts.Ratio = ratio
		p := mustPlan(t, m, opts)
		f := p.WeightEncFraction()
		if f <= prev {
			t.Fatalf("encrypted fraction not increasing: %v at ratio %v (prev %v)", f, ratio, prev)
		}
		prev = f
	}
}

func TestPlanVerifyPropertyAcrossRatiosAndMetrics(t *testing.T) {
	m := buildSmall(t, models.ResNet34Arch(), 14)
	check := func(rawRatio uint8, rawMetric uint8) bool {
		opts := DefaultOptions()
		opts.Ratio = float64(rawRatio%101) / 100
		opts.Metric = Metric(rawMetric % 3)
		opts.Seed = uint64(rawRatio)
		p, err := NewPlan(m, opts)
		if err != nil {
			return false
		}
		return p.Verify() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPlanFromNormsValidation(t *testing.T) {
	arch := models.VGG16Arch()
	specs := []models.LayerSpec{arch.Specs[0]}
	if _, err := NewPlanFromNorms(arch, specs, nil, DefaultOptions()); err == nil {
		t.Fatal("mismatched norms accepted")
	}
	if _, err := NewPlanFromNorms(arch, specs, [][]float64{{1}}, DefaultOptions()); err == nil {
		t.Fatal("wrong norm length accepted")
	}
}
