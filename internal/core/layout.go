package core

import (
	"fmt"
	"sort"

	"seal/internal/models"
)

// LineBytes is the memory-bus transfer granularity assumed by layouts.
const LineBytes = 64

// RegionKind classifies address-space regions.
type RegionKind int

// Region kinds.
const (
	RegionWeights RegionKind = iota
	RegionFmap
	RegionCols // im2col scratch of a conv layer
	RegionPlain
)

// Region is one allocation in the simulated DRAM address space. A
// region is divided into fixed-stride blocks (kernel rows for weights,
// channels for feature maps); Enc marks which blocks hold ciphertext.
type Region struct {
	Name       string
	Kind       RegionKind
	Base       uint64
	Size       uint64
	BlockBytes uint64 // stride of one row/channel block; 0 = uniform region
	Enc        []bool // per-block encryption; nil with Uniform=true below
	Uniform    bool   // whole region shares one encryption state
	UniformEnc bool
}

// Encrypted reports whether the byte at region offset off is ciphertext.
func (r *Region) Encrypted(off uint64) bool {
	if r.Uniform {
		return r.UniformEnc
	}
	if r.BlockBytes == 0 {
		return false
	}
	blk := off / r.BlockBytes
	if blk >= uint64(len(r.Enc)) {
		return false
	}
	return r.Enc[blk]
}

// runEnd returns the end offset of the maximal run of bytes starting at
// off that share off's encryption state, clamped to end. Encryption
// state can only change at block boundaries, so the scan advances
// block-by-block rather than line-by-line.
func (r *Region) runEnd(off, end uint64) uint64 {
	if r.Uniform || r.BlockBytes == 0 {
		return end
	}
	state := r.Encrypted(off)
	cur := (off/r.BlockBytes + 1) * r.BlockBytes
	for cur < end && r.Encrypted(cur) == state {
		cur += r.BlockBytes
	}
	if cur > end {
		cur = end
	}
	return cur
}

// EncRuns calls fn for each maximal run of consecutive bytes sharing one
// encryption state within the region byte range [off, off+n), in
// ascending address order. It is the iteration primitive behind bulk
// region decryption: ciphertext runs take one wide keystream call,
// plaintext runs one copy, with no per-line dispatch.
func (r *Region) EncRuns(off, n uint64, fn func(runOff, runLen uint64, enc bool)) {
	end := off + n
	for cur := off; cur < end; {
		re := r.runEnd(cur, end)
		fn(cur, re-cur, r.Encrypted(cur))
		cur = re
	}
}

// Blocks returns the number of fixed-stride blocks in the region (0 for
// uniform regions).
func (r *Region) Blocks() int {
	if r.BlockBytes == 0 {
		return 0
	}
	return len(r.Enc)
}

// EncryptedBytes returns the ciphertext byte count of the region.
func (r *Region) EncryptedBytes() uint64 {
	if r.Uniform {
		if r.UniformEnc {
			return r.Size
		}
		return 0
	}
	var n uint64
	for _, e := range r.Enc {
		if e {
			n += r.BlockBytes
		}
	}
	if n > r.Size {
		n = r.Size
	}
	return n
}

// AddressSpace is a bump allocator over the simulated DRAM, exposing the
// paper's programming primitives: Malloc for public data and EMalloc for
// data the encryption engines must protect (§III-A: "The memory space
// allocated by emalloc() needs to be encrypted").
type AddressSpace struct {
	regions []*Region
	next    uint64
}

// NewAddressSpace starts allocating at base (line-aligned).
func NewAddressSpace(base uint64) *AddressSpace {
	return &AddressSpace{next: alignUp(base, LineBytes)}
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) / a * a }

func (a *AddressSpace) alloc(name string, kind RegionKind, size uint64) *Region {
	r := &Region{Name: name, Kind: kind, Base: a.next, Size: alignUp(size, LineBytes)}
	a.next += r.Size
	// page-align successive regions so no line straddles two regions
	a.next = alignUp(a.next, 4096)
	a.regions = append(a.regions, r)
	return r
}

// Malloc allocates a plaintext region.
func (a *AddressSpace) Malloc(name string, size uint64) *Region {
	r := a.alloc(name, RegionPlain, size)
	r.Uniform = true
	return r
}

// EMalloc allocates a fully encrypted region.
func (a *AddressSpace) EMalloc(name string, size uint64) *Region {
	r := a.alloc(name, RegionPlain, size)
	r.Uniform = true
	r.UniformEnc = true
	return r
}

// EMallocBlocks allocates a region of len(enc) blocks of blockBytes each
// (line-aligned), encrypting exactly the marked blocks — the selective
// variant SEAL's runtime uses for kernel rows and feature-map channels.
func (a *AddressSpace) EMallocBlocks(name string, kind RegionKind, blockBytes uint64, enc []bool) *Region {
	stride := alignUp(blockBytes, LineBytes)
	r := a.alloc(name, kind, stride*uint64(len(enc)))
	r.BlockBytes = stride
	r.Enc = append([]bool(nil), enc...)
	return r
}

// Regions returns all allocations in address order.
func (a *AddressSpace) Regions() []*Region { return a.regions }

// End returns the first unallocated address.
func (a *AddressSpace) End() uint64 { return a.next }

// Layout is the concrete memory image of a planned network: one weights
// region per weight layer, one region per feature map, and an im2col
// scratch region per CONV layer, each annotated with its ciphertext
// blocks. It provides the Protected predicate the GPU simulator consults
// per bus transfer.
type Layout struct {
	Plan  *Plan
	Batch int
	// Int8 marks the quantized image format: weight regions hold one
	// int8 byte per weight (same kernel-row block structure, so the
	// plan's EncRows bitmaps apply unchanged) and each weight layer
	// carries a plaintext "qs:<name>" header region with its
	// per-output-channel float32 dequantization scales. Scales are
	// public by design — the paper's threat model protects the weight
	// values; a per-channel magnitude reveals nothing the ℓ1 ranking
	// has not already conceded for plaintext rows.
	Int8   bool
	space  *AddressSpace
	byName map[string]*Region
	sorted []*Region // by Base, for lookup
}

// NewLayout materializes the address space for a plan with the given
// inference batch size. Every architecture layer gets an output region:
// weight layers per the plan's channel bitmaps, pooling layers
// inheriting the channel encryption of the feature map flowing through
// them (pooling is per-channel, so ciphertext channels stay ciphertext).
func NewLayout(p *Plan, batch int) (*Layout, error) {
	return newLayout(p, batch, false)
}

// NewInt8Layout materializes the quantized address space: weight blocks
// shrink to one byte per weight (a 4× cut in protected weight traffic
// before line alignment) and each weight layer gains a plaintext
// "qs:<name>" scales header. Feature maps and im2col scratch stay
// float32 — activations are quantized transiently on-chip, never stored.
func NewInt8Layout(p *Plan, batch int) (*Layout, error) {
	return newLayout(p, batch, true)
}

func newLayout(p *Plan, batch int, int8Mode bool) (*Layout, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("core: non-positive batch %d", batch)
	}
	l := &Layout{Plan: p, Batch: batch, Int8: int8Mode, space: NewAddressSpace(0), byName: map[string]*Region{}}
	add := func(r *Region) { l.byName[r.Name] = r }

	// network input image: public (the querying party supplies it), but
	// still channel-blocked so the trace generator can address channels.
	in := p.Arch
	add(l.space.EMallocBlocks("fmap:input", RegionFmap,
		uint64(batch*in.InH*in.InW)*4, make([]bool, in.InC)))

	// current per-channel encryption of the flowing feature map
	flowEnc := make([]bool, in.InC)
	wi := 0
	for _, s := range p.Arch.Specs {
		switch s.Kind {
		case models.KindConv, models.KindFC:
			if wi >= len(p.Layers) || p.Layers[wi].Name != s.Name {
				return nil, fmt.Errorf("core: layout/plan order mismatch at %s", s.Name)
			}
			lp := p.Layers[wi]
			wi++
			weightBytes := uint64(4)
			if int8Mode {
				weightBytes = 1
			}
			var rowBytes uint64
			if s.Kind == models.KindConv {
				rowBytes = uint64(s.OutC*s.K*s.K) * weightBytes
			} else {
				rowBytes = uint64(s.OutC) * weightBytes
			}
			add(l.space.EMallocBlocks("w:"+lp.Name, RegionWeights, rowBytes, lp.EncRows))
			if int8Mode {
				add(l.space.Malloc("qs:"+lp.Name, uint64(s.OutC)*4))
			}
			if s.Kind == models.KindConv {
				colBytes := uint64(batch*s.K*s.K*s.OutH()*s.OutW()) * 4
				add(l.space.EMallocBlocks("cols:"+lp.Name, RegionCols, colBytes, lp.InEnc))
			}
			chanBytes := uint64(batch*s.OutH()*s.OutW()) * 4
			if s.Kind == models.KindFC {
				chanBytes = uint64(batch) * 4
			}
			add(l.space.EMallocBlocks("fmap:"+lp.Name, RegionFmap, chanBytes, lp.OutEnc))
			if s.ShortcutOf == "" {
				flowEnc = lp.OutEnc
			}
		case models.KindPool, models.KindGlobalAvgPool:
			chanBytes := uint64(batch*s.OutH()*s.OutW()) * 4
			enc := flowEnc
			if len(enc) != s.InC {
				enc = make([]bool, s.InC)
			}
			add(l.space.EMallocBlocks("fmap:"+s.Name, RegionFmap, chanBytes, enc))
		}
	}
	l.sorted = append([]*Region(nil), l.space.Regions()...)
	sort.Slice(l.sorted, func(i, j int) bool { return l.sorted[i].Base < l.sorted[j].Base })
	return l, nil
}

// Region returns the named region ("w:<layer>", "fmap:<layer>",
// "cols:<layer>", "fmap:input", and in int8 layouts "qs:<layer>"),
// or nil.
func (l *Layout) Region(name string) *Region { return l.byName[name] }

// Regions returns all regions in address order.
func (l *Layout) Regions() []*Region { return l.sorted }

// find locates the region containing addr, or nil.
func (l *Layout) find(addr uint64) *Region {
	i := sort.Search(len(l.sorted), func(i int) bool { return l.sorted[i].Base > addr })
	if i == 0 {
		return nil
	}
	r := l.sorted[i-1]
	if addr >= r.Base+r.Size {
		return nil
	}
	return r
}

// Protected reports whether the line containing addr holds ciphertext —
// the EncFn the GPU simulator consults. Addresses outside any region
// (e.g. counter storage) are plaintext.
func (l *Layout) Protected(addr uint64) bool {
	r := l.find(addr)
	if r == nil {
		return false
	}
	return r.Encrypted(addr - r.Base)
}

// EncryptedFraction returns ciphertext bytes / total bytes across all
// regions — the traffic-side effect of the SE scheme.
func (l *Layout) EncryptedFraction() float64 {
	var enc, total uint64
	for _, r := range l.sorted {
		enc += r.EncryptedBytes()
		total += r.Size
	}
	if total == 0 {
		return 0
	}
	return float64(enc) / float64(total)
}

// End returns the first address beyond the layout (counter regions are
// placed above this by the simulator config).
func (l *Layout) End() uint64 { return l.space.End() }
