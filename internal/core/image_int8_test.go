package core

import (
	"math"
	"testing"

	"seal/internal/models"
)

func buildInt8Image(t testing.TB, ratio float64) (*MemoryImage, *models.Model) {
	t.Helper()
	m := buildSmall(t, models.VGG16Arch(), 57)
	opts := DefaultOptions()
	opts.Ratio = ratio
	p := mustPlan(t, m, opts)
	l, err := NewInt8Layout(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	img, err := NewMemoryImage(l, m, testKey)
	if err != nil {
		t.Fatal(err)
	}
	return img, m
}

// TestInt8ImageAuditPasses runs the byte-level audit of the quantized
// image: every plaintext-row byte bus-recoverable, every byte decrypts
// to the deterministic requantization, scales header exact.
func TestInt8ImageAuditPasses(t *testing.T) {
	img, m := buildInt8Image(t, 0.5)
	reports, err := img.Audit(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(img.Layout.Plan.Layers) {
		t.Fatalf("reports for %d layers, want %d", len(reports), len(img.Layout.Plan.Layers))
	}
}

// TestInt8ReadWeightDequantizes checks the controller-side read path:
// every decrypted int8 weight dequantizes to within half a quantization
// step of the true float weight (the round-to-nearest bound).
func TestInt8ReadWeightDequantizes(t *testing.T) {
	img, m := buildInt8Image(t, 0.5)
	for li, lp := range img.Layout.Plan.Layers {
		w := m.WeightLayers[li]
		spec := w.Spec
		kk := spec.K * spec.K
		if spec.Kind == models.KindFC {
			kk = 1
		}
		for o := 0; o < spec.OutC; o += 3 {
			scale := img.scaleAt(lp.Name, o)
			for c := 0; c < spec.InC; c += 2 {
				for k := 0; k < kk; k++ {
					got, err := img.ReadWeight(li, o, c, k)
					if err != nil {
						t.Fatal(err)
					}
					truth := weightAt(w, o, c, k)
					if d := math.Abs(float64(got - truth)); d > float64(scale)/2*1.0001 {
						t.Fatalf("%s (%d,%d,%d): read %v, true %v, step %v", lp.Name, o, c, k, got, truth, scale)
					}
				}
			}
		}
	}
}

// TestInt8SnoopMatchesThreatModel pins what the quantized image leaks:
// plaintext rows are bus-recoverable via the public scales header, and
// every encrypted row differs somewhere on the bus.
func TestInt8SnoopMatchesThreatModel(t *testing.T) {
	img, m := buildInt8Image(t, 0.5)
	for li, lp := range img.Layout.Plan.Layers {
		w := m.WeightLayers[li]
		spec := w.Spec
		kk := spec.K * spec.K
		if spec.Kind == models.KindFC {
			kk = 1
		}
		for c, enc := range lp.EncRows {
			differs := false
			for o := 0; o < spec.OutC; o++ {
				for k := 0; k < kk; k++ {
					snooped, err := img.SnoopWeight(li, o, c, k)
					if err != nil {
						t.Fatal(err)
					}
					read, err := img.ReadWeight(li, o, c, k)
					if err != nil {
						t.Fatal(err)
					}
					if !enc && snooped != read {
						t.Fatalf("%s plaintext row %d: snoop %v != read %v", lp.Name, c, snooped, read)
					}
					if enc && snooped != read {
						differs = true
					}
				}
			}
			if enc && !differs {
				t.Fatalf("%s encrypted row %d identical on the bus", lp.Name, c)
			}
		}
	}
}

// TestInt8LayoutShrinksWeightRegions quantifies the traffic cut: total
// int8 weight-region bytes must be well under the float layout's (4×
// per weight before 64-byte line alignment), and every weight layer
// must carry a plaintext scales header.
func TestInt8LayoutShrinksWeightRegions(t *testing.T) {
	m := buildSmall(t, models.VGG16Arch(), 58)
	opts := DefaultOptions()
	opts.Ratio = 0.5
	p := mustPlan(t, m, opts)
	lf := mustLayout(t, p, 1)
	l8, err := NewInt8Layout(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	var fb, qb uint64
	for _, lp := range p.Layers {
		rf := lf.Region("w:" + lp.Name)
		r8 := l8.Region("w:" + lp.Name)
		fb += rf.Size
		qb += r8.Size
		qs := l8.Region("qs:" + lp.Name)
		if qs == nil {
			t.Fatalf("%s missing qs region", lp.Name)
		}
		if qs.Encrypted(0) {
			t.Fatalf("%s scales header is encrypted", lp.Name)
		}
		if lf.Region("qs:"+lp.Name) != nil {
			t.Fatalf("%s float layout has a qs region", lp.Name)
		}
	}
	if ratio := float64(fb) / float64(qb); ratio < 2.5 {
		t.Fatalf("weight bytes only shrank %.2fx (float %d, int8 %d)", ratio, fb, qb)
	}
}
