package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"seal"
	"seal/internal/prng"
	"seal/internal/serve"
)

// benchParams describes one closed-loop serving run.
type benchParams struct {
	arch     string
	scale    float64
	ratio    float64
	seed     uint64
	qps      float64
	duration time.Duration
	clients  int
}

// benchReport is the schema of BENCH_PR7.json.
type benchReport struct {
	Benchmark     string  `json:"benchmark"`
	Arch          string  `json:"arch"`
	Scale         float64 `json:"scale"`
	Ratio         float64 `json:"ratio"`
	Workers       int     `json:"workers"`
	MaxBatch      int     `json:"max_batch"`
	QueueDepth    int     `json:"queue_depth"`
	BatchWindowMS float64 `json:"batch_window_ms"`
	TargetQPS     float64 `json:"target_qps"`
	DurationS     float64 `json:"duration_s"`
	Clients       int     `json:"clients"`

	Served         int64   `json:"served"`
	Rejected429    int64   `json:"rejected_429"`
	Errors         int64   `json:"errors"`
	ThroughputQPS  float64 `json:"throughput_qps"`
	LatencyP50MS   float64 `json:"latency_p50_ms"`
	LatencyP95MS   float64 `json:"latency_p95_ms"`
	LatencyP99MS   float64 `json:"latency_p99_ms"`
	AvgBatch       float64 `json:"avg_batch"`
	MaxBatchServed int64   `json:"max_batch_served"`
	// LogitsAllEqual is the bit-identity gate: every served logit vector
	// compared exactly against the local plaintext forward.
	LogitsAllEqual bool  `json:"logits_all_equal"`
	Mismatches     int64 `json:"mismatches"`
}

// clientTally accumulates one closed-loop client's observations; merged
// after the run so the hot loop takes no locks.
type clientTally struct {
	latencies  []time.Duration
	served     int64
	rejected   int64
	errors     int64
	mismatches int64
}

// runBenchJSON stands up the gateway in-process behind a real HTTP
// listener, registers one model through the API, then drives it with a
// token-bucket-paced closed loop and reports latency percentiles,
// throughput and the bit-identity verdict. Nonzero exit when any served
// logit vector differs from the plaintext forward.
func runBenchJSON(out string, cfg serve.Config, p benchParams) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "sealserve: bench-json: %v\n", err)
		return 1
	}
	if p.clients < 1 {
		p.clients = 1
	}

	gw := serve.New(cfg)
	defer gw.Close()
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	// Register through the HTTP API so the bench exercises the same path
	// as a real operator.
	spec := serve.ModelSpec{Arch: p.arch, Scale: p.scale, Ratio: &p.ratio, Seed: p.seed}
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/tenants/bench/models/"+p.arch, bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		return fail(err)
	}
	var info serve.RegisterInfo
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return fail(fmt.Errorf("register %s: status %d", p.arch, resp.StatusCode))
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		resp.Body.Close()
		return fail(err)
	}
	resp.Body.Close()

	// Local ground truth: the plaintext forward for the bench sample.
	arch, err := seal.ArchByName(p.arch)
	if err != nil {
		return fail(err)
	}
	arch = arch.Scale(p.scale, 0)
	m, err := seal.BuildModel(arch, p.seed)
	if err != nil {
		return fail(err)
	}
	rng := prng.New(p.seed + 1)
	x := seal.NewTensor(1, arch.InC, arch.InH, arch.InW)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	wantT := m.Forward(x, false)
	want := make([]byte, len(wantT.Data)*4)
	for i, v := range wantT.Data {
		binary.LittleEndian.PutUint32(want[i*4:], math.Float32bits(v))
	}
	raw := make([]byte, len(x.Data)*4)
	for i, v := range x.Data {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(v))
	}
	reqBody, _ := json.Marshal(serve.InferRequest{Raw: raw})
	url := ts.URL + "/v1/tenants/bench/models/" + p.arch + "/infer"

	post := func() (status int, logits []byte, err error) {
		resp, err := ts.Client().Post(url, "application/json", bytes.NewReader(reqBody))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, nil, nil
		}
		var ir serve.InferResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			return resp.StatusCode, nil, err
		}
		return resp.StatusCode, ir.Raw, nil
	}

	// Warm every pooled engine's streaming workspaces before measuring.
	for i := 0; i < 2*info.Workers; i++ {
		if _, _, err := post(); err != nil {
			return fail(fmt.Errorf("warmup: %w", err))
		}
	}

	// Token bucket paced at the target rate; closed-loop clients block
	// on it, so offered load never exceeds the target and a saturated
	// server sheds the surplus as 429s rather than an unbounded queue.
	tokens := make(chan struct{}, p.clients)
	stop := make(chan struct{})
	go func() {
		interval := time.Duration(float64(time.Second) / p.qps)
		if interval <= 0 {
			interval = time.Microsecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				select {
				case tokens <- struct{}{}:
				default: // clients saturated; drop the slot
				}
			}
		}
	}()

	tallies := make([]clientTally, p.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < p.clients; c++ {
		wg.Add(1)
		go func(t *clientTally) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-tokens:
				}
				t0 := time.Now()
				status, logits, err := post()
				switch {
				case err != nil:
					t.errors++
				case status == http.StatusOK:
					t.served++
					t.latencies = append(t.latencies, time.Since(t0))
					if !bytes.Equal(logits, want) {
						t.mismatches++
					}
				case status == http.StatusTooManyRequests:
					t.rejected++
				default:
					t.errors++
				}
			}
		}(&tallies[c])
	}
	time.Sleep(p.duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	rep := benchReport{
		Benchmark:     "SecureServe",
		Arch:          p.arch,
		Scale:         p.scale,
		Ratio:         p.ratio,
		Workers:       info.Workers,
		MaxBatch:      cfg.MaxBatch,
		QueueDepth:    cfg.QueueDepth,
		BatchWindowMS: float64(cfg.BatchWindow.Microseconds()) / 1e3,
		TargetQPS:     p.qps,
		DurationS:     elapsed.Seconds(),
		Clients:       p.clients,
	}
	for i := range tallies {
		t := &tallies[i]
		rep.Served += t.served
		rep.Rejected429 += t.rejected
		rep.Errors += t.errors
		rep.Mismatches += t.mismatches
		all = append(all, t.latencies...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		idx := int(q * float64(len(all)))
		if idx >= len(all) {
			idx = len(all) - 1
		}
		return float64(all[idx].Microseconds()) / 1e3
	}
	rep.LatencyP50MS = pct(0.50)
	rep.LatencyP95MS = pct(0.95)
	rep.LatencyP99MS = pct(0.99)
	rep.ThroughputQPS = float64(rep.Served) / elapsed.Seconds()
	for _, st := range gw.Registry().Stats() {
		rep.AvgBatch = st.AvgBatch
		rep.MaxBatchServed = st.MaxBatch
	}
	rep.LogitsAllEqual = rep.Served > 0 && rep.Mismatches == 0

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return fail(err)
	}
	fmt.Printf("%s scale %.3g: served %d (%.1f QPS of %.1f target), rejected_429 %d, p50 %.1f ms, p95 %.1f ms, p99 %.1f ms, avg batch %.2f (max %d), logits_all_equal=%v\n",
		p.arch, p.scale, rep.Served, rep.ThroughputQPS, p.qps, rep.Rejected429,
		rep.LatencyP50MS, rep.LatencyP95MS, rep.LatencyP99MS, rep.AvgBatch, rep.MaxBatchServed, rep.LogitsAllEqual)
	fmt.Printf("wrote %s\n", out)

	if !rep.LogitsAllEqual {
		fmt.Fprintln(os.Stderr, "sealserve: FAIL: served logits differ from the plaintext forward (or nothing was served)")
		return 1
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "sealserve: FAIL: %d transport/unexpected-status errors\n", rep.Errors)
		return 1
	}
	return 0
}
