package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"seal"
	"seal/internal/prng"
	"seal/internal/serve"
)

// benchParams describes one open-loop serving sweep.
type benchParams struct {
	arch     string
	scale    float64
	ratio    float64
	seed     uint64
	qps      float64       // base offered load; sweep points are multiples of it
	duration time.Duration // measurement window per sweep point
	sweep    []float64     // offered-load multipliers, ascending

	// Golden gates, applied to the saturation point; 0 disables a gate.
	minThroughput float64
	minAvgBatch   float64
}

// PR 7 closed-loop baseline on the same configuration (BENCH_PR7.json,
// vgg16 scale 0.25 ratio 0.5 max-batch 8): the numbers this overhaul is
// measured against.
const (
	pr7ThroughputQPS = 66.80
	pr7AvgBatch      = 1.962
)

// pointReport is one offered-load point of the sweep. Latency is
// measured from each request's *scheduled* Poisson arrival time, not
// from when the client goroutine got around to sending it, so a slow
// server cannot suppress the load that would have arrived meanwhile
// (no coordinated omission).
type pointReport struct {
	OfferedQPS     float64 `json:"offered_qps"`
	Arrivals       int     `json:"arrivals"`
	Served         int64   `json:"served"`
	Rejected429    int64   `json:"rejected_429"`
	Errors         int64   `json:"errors"`
	Mismatches     int64   `json:"mismatches"`
	ThroughputQPS  float64 `json:"throughput_qps"`
	LatencyP50MS   float64 `json:"latency_p50_ms"`
	LatencyP95MS   float64 `json:"latency_p95_ms"`
	LatencyP99MS   float64 `json:"latency_p99_ms"`
	AvgBatch       float64 `json:"avg_batch"`
	MaxBatchServed int64   `json:"max_batch_served"`
}

// benchReport is the schema of BENCH_PR10.json.
type benchReport struct {
	Benchmark     string  `json:"benchmark"`
	Arch          string  `json:"arch"`
	Scale         float64 `json:"scale"`
	Ratio         float64 `json:"ratio"`
	Workers       int     `json:"workers"`
	MaxBatch      int     `json:"max_batch"`
	QueueDepth    int     `json:"queue_depth"`
	BatchWindowMS float64 `json:"batch_window_ms"`
	BaseQPS       float64 `json:"base_qps"`
	PointS        float64 `json:"duration_s_per_point"`

	Points []pointReport `json:"points"`

	// Saturation is the sweep point with the highest delivered
	// throughput — the capacity of the pipeline. KneeOfferedQPS is the
	// first offered load the gateway could no longer keep up with
	// (delivered < 95% of offered); 0 if every point kept up.
	Saturation     pointReport `json:"saturation"`
	KneeOfferedQPS float64     `json:"knee_offered_qps"`

	PR7ThroughputQPS float64 `json:"pr7_throughput_qps"`
	PR7AvgBatch      float64 `json:"pr7_avg_batch"`
	ThroughputVsPR7  float64 `json:"throughput_vs_pr7"`
	AvgBatchVsPR7    float64 `json:"avg_batch_vs_pr7"`
	MinThroughputQPS float64 `json:"min_throughput_qps,omitempty"`
	MinAvgBatch      float64 `json:"min_avg_batch,omitempty"`

	// LogitsAllEqual is the bit-identity gate: every served logit vector
	// across every sweep point compared exactly against the local
	// plaintext forward.
	LogitsAllEqual bool `json:"logits_all_equal"`
}

// arrival is one scheduled request's outcome.
type arrival struct {
	latency  time.Duration
	status   int
	mismatch bool
	err      bool
}

// runBenchJSON stands up the gateway in-process behind a real HTTP
// listener, registers one model through the API, then sweeps offered
// load with Poisson open-loop arrivals on the raw-f32 content type and
// reports per-point latency percentiles, delivered throughput, batch
// widths and the bit-identity verdict. Nonzero exit on any mismatch,
// transport error, or missed golden gate.
func runBenchJSON(out string, cfg serve.Config, p benchParams) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "sealserve: bench-json: %v\n", err)
		return 1
	}
	if len(p.sweep) == 0 {
		p.sweep = []float64{1}
	}

	gw := serve.New(cfg)
	defer gw.Close()
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	// The default transport keeps only 2 idle conns per host; an open
	// loop at saturation runs hundreds of concurrent requests, and
	// reconnect churn would contaminate the latency measurement.
	client := ts.Client()
	if tr, ok := client.Transport.(*http.Transport); ok {
		tr = tr.Clone()
		tr.MaxIdleConns = 1024
		tr.MaxIdleConnsPerHost = 1024
		client = &http.Client{Transport: tr}
	}

	// Register through the HTTP API so the bench exercises the same path
	// as a real operator.
	spec := serve.ModelSpec{Arch: p.arch, Scale: p.scale, Ratio: &p.ratio, Seed: p.seed}
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/tenants/bench/models/"+p.arch, bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return fail(err)
	}
	var info serve.RegisterInfo
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return fail(fmt.Errorf("register %s: status %d", p.arch, resp.StatusCode))
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		resp.Body.Close()
		return fail(err)
	}
	resp.Body.Close()

	// Local ground truth: the plaintext forward for the bench sample.
	arch, err := seal.ArchByName(p.arch)
	if err != nil {
		return fail(err)
	}
	arch = arch.Scale(p.scale, 0)
	m, err := seal.BuildModel(arch, p.seed)
	if err != nil {
		return fail(err)
	}
	rng := prng.New(p.seed + 1)
	x := seal.NewTensor(1, arch.InC, arch.InH, arch.InW)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	wantT := m.Forward(x, false)
	want := make([]byte, len(wantT.Data)*4)
	for i, v := range wantT.Data {
		binary.LittleEndian.PutUint32(want[i*4:], math.Float32bits(v))
	}
	raw := make([]byte, len(x.Data)*4)
	for i, v := range x.Data {
		binary.LittleEndian.PutUint32(raw[i*4:], math.Float32bits(v))
	}
	url := ts.URL + "/v1/tenants/bench/models/" + p.arch + "/infer"

	// post sends one sample on the raw-f32 wire format — the zero-copy
	// hot path a production load balancer would use.
	post := func() (status int, logits []byte, err error) {
		resp, err := client.Post(url, serve.ContentTypeF32, bytes.NewReader(raw))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, nil, err
		}
		return resp.StatusCode, b, nil
	}

	// Warm the HTTP connections and per-model request pools (the engines
	// themselves were already warmed at full batch width by Register).
	for i := 0; i < 2*info.Workers+2; i++ {
		if _, _, err := post(); err != nil {
			return fail(fmt.Errorf("warmup: %w", err))
		}
	}

	rep := benchReport{
		Benchmark:        "SecureServeOpenLoop",
		Arch:             p.arch,
		Scale:            p.scale,
		Ratio:            p.ratio,
		Workers:          info.Workers,
		MaxBatch:         cfg.MaxBatch,
		QueueDepth:       cfg.QueueDepth,
		BatchWindowMS:    float64(cfg.BatchWindow.Microseconds()) / 1e3,
		BaseQPS:          p.qps,
		PointS:           p.duration.Seconds(),
		PR7ThroughputQPS: pr7ThroughputQPS,
		PR7AvgBatch:      pr7AvgBatch,
		MinThroughputQPS: p.minThroughput,
		MinAvgBatch:      p.minAvgBatch,
	}

	gaps := prng.New(p.seed + 2)
	allEqual := true
	for _, mult := range p.sweep {
		offered := p.qps * mult
		if offered <= 0 {
			continue
		}
		// Pre-draw the Poisson schedule: exponential inter-arrival gaps at
		// rate `offered`, truncated to the measurement window.
		var schedule []time.Duration
		var at time.Duration
		for at < p.duration {
			u := gaps.Float64()
			gap := time.Duration(-math.Log(1-u) / offered * float64(time.Second))
			at += gap
			if at >= p.duration {
				break
			}
			schedule = append(schedule, at)
		}

		before := modelStats(gw)
		results := make([]arrival, len(schedule))
		var wg sync.WaitGroup
		start := time.Now()
		for i, offset := range schedule {
			wg.Add(1)
			go func(i int, sched time.Time) {
				defer wg.Done()
				time.Sleep(time.Until(sched))
				status, logits, err := post()
				results[i].latency = time.Since(sched) // from scheduled arrival
				results[i].status = status
				if err != nil {
					results[i].err = true
					return
				}
				if status == http.StatusOK && !bytes.Equal(logits, want) {
					results[i].mismatch = true
				}
			}(i, start.Add(offset))
		}
		wg.Wait()
		elapsed := time.Since(start)
		after := modelStats(gw)

		pt := pointReport{OfferedQPS: offered, Arrivals: len(schedule)}
		var lats []time.Duration
		for _, r := range results {
			switch {
			case r.err:
				pt.Errors++
			case r.status == http.StatusOK:
				pt.Served++
				lats = append(lats, r.latency)
				if r.mismatch {
					pt.Mismatches++
				}
			case r.status == http.StatusTooManyRequests:
				pt.Rejected429++
			default:
				pt.Errors++
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(q float64) float64 {
			if len(lats) == 0 {
				return 0
			}
			idx := int(q * float64(len(lats)))
			if idx >= len(lats) {
				idx = len(lats) - 1
			}
			return float64(lats[idx].Microseconds()) / 1e3
		}
		pt.LatencyP50MS = pct(0.50)
		pt.LatencyP95MS = pct(0.95)
		pt.LatencyP99MS = pct(0.99)
		pt.ThroughputQPS = float64(pt.Served) / elapsed.Seconds()
		if db := after.Batches - before.Batches; db > 0 {
			pt.AvgBatch = float64(after.Items-before.Items) / float64(db)
		}
		pt.MaxBatchServed = after.MaxBatch
		if pt.Mismatches > 0 || pt.Served == 0 {
			allEqual = false
		}
		rep.Points = append(rep.Points, pt)
		fmt.Printf("offered %.1f QPS: served %d/%d (%.1f QPS), rejected_429 %d, p50 %.1f ms, p99 %.1f ms, avg batch %.2f\n",
			offered, pt.Served, pt.Arrivals, pt.ThroughputQPS, pt.Rejected429, pt.LatencyP50MS, pt.LatencyP99MS, pt.AvgBatch)

		if pt.ThroughputQPS > rep.Saturation.ThroughputQPS {
			rep.Saturation = pt
		}
		if rep.KneeOfferedQPS == 0 && pt.ThroughputQPS < 0.95*offered {
			rep.KneeOfferedQPS = offered
		}
	}

	rep.LogitsAllEqual = allEqual
	rep.ThroughputVsPR7 = rep.Saturation.ThroughputQPS / pr7ThroughputQPS
	rep.AvgBatchVsPR7 = rep.Saturation.AvgBatch / pr7AvgBatch

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return fail(err)
	}
	fmt.Printf("%s scale %.3g: saturation %.1f QPS (%.2fx PR7) at avg batch %.2f (%.2fx PR7), knee %.1f QPS, logits_all_equal=%v\n",
		p.arch, p.scale, rep.Saturation.ThroughputQPS, rep.ThroughputVsPR7,
		rep.Saturation.AvgBatch, rep.AvgBatchVsPR7, rep.KneeOfferedQPS, rep.LogitsAllEqual)
	fmt.Printf("wrote %s\n", out)

	code := 0
	if !rep.LogitsAllEqual {
		fmt.Fprintln(os.Stderr, "sealserve: FAIL: served logits differ from the plaintext forward (or a point served nothing)")
		code = 1
	}
	for _, pt := range rep.Points {
		if pt.Errors > 0 {
			fmt.Fprintf(os.Stderr, "sealserve: FAIL: %d transport/unexpected-status errors at offered %.1f QPS\n", pt.Errors, pt.OfferedQPS)
			code = 1
		}
	}
	if p.minThroughput > 0 && rep.Saturation.ThroughputQPS < p.minThroughput {
		fmt.Fprintf(os.Stderr, "sealserve: FAIL: saturation throughput %.1f QPS below golden %.1f QPS\n",
			rep.Saturation.ThroughputQPS, p.minThroughput)
		code = 1
	}
	if p.minAvgBatch > 0 && rep.Saturation.AvgBatch < p.minAvgBatch {
		fmt.Fprintf(os.Stderr, "sealserve: FAIL: saturation avg batch %.2f below golden %.2f\n",
			rep.Saturation.AvgBatch, p.minAvgBatch)
		code = 1
	}
	return code
}

// modelStats snapshots the bench model's serving counters (the gateway
// hosts exactly one model here).
func modelStats(gw *serve.Server) serve.ModelStats {
	for _, st := range gw.Registry().Stats() {
		return st
	}
	return serve.ModelStats{}
}
