// Command sealserve is the multi-tenant encrypted-inference gateway: it
// serves models prepared with seal.Prepare over HTTP, with each
// tenant's weights sealed under a key derived from the gateway master
// key. Requests are admitted through a bounded queue (full queue →
// 429 + Retry-After), batched dynamically, and executed on a pool of
// streaming secure engines per model, so clients send one sample per
// request while the accelerator sees wide batches.
//
// Usage:
//
//	sealserve -master-key $(openssl rand -hex 16)     # serve
//	sealserve -insecure-dev-key -preload vgg16        # local dev, fixed key
//	sealserve -bench-json                             # open-loop load sweep → BENCH_PR10.json
//
// The benchmark sweeps Poisson open-loop arrivals (-qps times each
// -sweep multiplier, -duration per point) against an in-process
// gateway on the raw-f32 content type, measuring latency from each
// request's scheduled arrival time so queueing delay is never hidden
// (no coordinated omission). It locates the saturation knee, checks
// every served logit vector bit-for-bit, and enforces the
// -min-throughput / -min-avg-batch goldens at the saturation point.
//
// The master key must be 32 hex characters (16 random bytes). The
// passphrase-derived dev key is accepted only behind -insecure-dev-key
// (and implicitly in -bench-json, which serves synthetic weights to an
// in-process client): seal.KeyFromString is unsalted and publicly
// computable, so a passphrase-rooted tenant hierarchy is only as strong
// as the passphrase.
//
// Endpoints:
//
//	GET    /healthz
//	GET    /v1/models
//	GET    /v1/stats
//	PUT    /v1/tenants/{tenant}/models/{model}        register / hot-swap
//	DELETE /v1/tenants/{tenant}/models/{model}        unregister
//	POST   /v1/tenants/{tenant}/models/{model}/infer  one sample per request
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"seal"
	"seal/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		masterKey = flag.String("master-key", "", "hex-encoded 128-bit master key (32 hex chars); tenant keys are derived from it")
		devKey    = flag.Bool("insecure-dev-key", false, "serve with a fixed passphrase-derived key instead of -master-key (local development only; trivially brute-forceable)")
		preload   = flag.String("preload", "", "comma-separated architectures to register at startup under tenant \"public\"")
		scale     = flag.Float64("scale", 0.25, "channel-width multiplier for preloaded models")
		ratio     = flag.Float64("ratio", 0.5, "SE encryption ratio for preloaded models")
		seed      = flag.Uint64("seed", 42, "weight-initialization seed for preloaded models")

		queue   = flag.Int("queue", serve.DefaultQueueDepth, "per-model admission queue depth")
		maxB    = flag.Int("max-batch", serve.DefaultMaxBatch, "dynamic batch size cap")
		window  = flag.Duration("batch-window", serve.DefaultBatchWindow, "how long the batcher waits to widen a batch")
		workers = flag.Int("workers", 0, "secure engines per model (0 = size from SEAL_WORKERS/CPU)")

		benchJSON = flag.Bool("bench-json", false, "run the open-loop serving benchmark, write the JSON report and exit")
		benchOut  = flag.String("bench-out", "BENCH_PR10.json", "output path for -bench-json")
		qps       = flag.Float64("qps", 100, "base offered load for -bench-json; sweep points are multiples of it")
		duration  = flag.Duration("duration", 3*time.Second, "measurement window per sweep point for -bench-json")
		sweep     = flag.String("sweep", "0.5,1,2,6", "comma-separated offered-load multipliers of -qps for -bench-json, ascending")

		minThroughput = flag.Float64("min-throughput", 0, "golden gate: fail -bench-json if saturation throughput is below this QPS (0 = no gate)")
		minAvgBatch   = flag.Float64("min-avg-batch", 0, "golden gate: fail -bench-json if avg batch at saturation is below this (0 = no gate)")
	)
	flag.Parse()

	// The bench serves deterministic synthetic weights to an in-process
	// client, so the fixed dev key is fine there; real serving demands a
	// full-entropy key unless the operator opts into the insecure one.
	key, err := resolveMasterKey(*masterKey, *devKey || *benchJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sealserve: %v\n", err)
		os.Exit(1)
	}

	cfg := serve.Config{
		MasterKey:   key,
		QueueDepth:  *queue,
		MaxBatch:    *maxB,
		BatchWindow: *window,
		Workers:     *workers,
	}

	if *benchJSON {
		mults, err := parseSweep(*sweep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sealserve: -sweep: %v\n", err)
			os.Exit(1)
		}
		os.Exit(runBenchJSON(*benchOut, cfg, benchParams{
			arch: firstArch(*preload), scale: *scale, ratio: *ratio, seed: *seed,
			qps: *qps, duration: *duration, sweep: mults,
			minThroughput: *minThroughput, minAvgBatch: *minAvgBatch,
		}))
	}

	gw := serve.New(cfg)
	for _, name := range splitList(*preload) {
		spec := serve.ModelSpec{Arch: name, Scale: *scale, Ratio: ratio, Seed: *seed}
		info, err := gw.Registry().Register("public", name, spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sealserve: preload %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("sealserve: registered public/%s (%s scale %.3g, %.0f%% weights encrypted, %d workers)\n",
			name, info.Arch, info.Scale, info.WeightEncFraction*100, info.Workers)
	}

	srv := &http.Server{Addr: *addr, Handler: gw.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "sealserve: shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx) // stop accepting, drain HTTP
		gw.Close()                    // then drain the engine pools
	}()

	fmt.Printf("sealserve: listening on %s (queue %d, max batch %d, window %s)\n",
		*addr, *queue, *maxB, *window)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "sealserve: %v\n", err)
		os.Exit(1)
	}
	// ListenAndServe returns the instant Shutdown is called; in-flight
	// requests and the engine pools are still draining in the signal
	// goroutine, so graceful shutdown means waiting for it to finish.
	<-drained
}

// resolveMasterKey turns the -master-key flag into a seal.Key: 32 hex
// characters of full-entropy key material, or — only when allowDev is
// set (-insecure-dev-key, or bench mode) — the fixed passphrase-derived
// development key.
func resolveMasterKey(hexKey string, allowDev bool) (seal.Key, error) {
	if hexKey != "" {
		raw, err := hex.DecodeString(hexKey)
		if err != nil {
			return seal.Key{}, fmt.Errorf("-master-key: %v (want 32 hex characters)", err)
		}
		return seal.NewKey(raw)
	}
	if allowDev {
		return seal.KeyFromString("sealserve dev master key"), nil
	}
	return seal.Key{}, errors.New("-master-key is required: 32 hex characters of random key material (e.g. `openssl rand -hex 16`); pass -insecure-dev-key to serve with the fixed dev key locally")
}

// parseSweep parses the -sweep multiplier list.
func parseSweep(s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad multiplier %q (want positive numbers)", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// firstArch picks the benchmark architecture: the first preloaded name,
// or vgg16.
func firstArch(preload string) string {
	if names := splitList(preload); len(names) > 0 {
		return names[0]
	}
	return "vgg16"
}
