// Command sealserve is the multi-tenant encrypted-inference gateway: it
// serves models prepared with seal.Prepare over HTTP, with each
// tenant's weights sealed under a key derived from the gateway master
// key. Requests are admitted through a bounded queue (full queue →
// 429 + Retry-After), batched dynamically, and executed on a pool of
// streaming secure engines per model, so clients send one sample per
// request while the accelerator sees wide batches.
//
// Usage:
//
//	sealserve -addr :8080 -master-key "prod master"   # serve
//	sealserve -preload vgg16,resnet18                 # pre-register models
//	sealserve -bench-json                             # write BENCH_PR7.json and exit
//
// Endpoints:
//
//	GET    /healthz
//	GET    /v1/models
//	GET    /v1/stats
//	PUT    /v1/tenants/{tenant}/models/{model}        register / hot-swap
//	DELETE /v1/tenants/{tenant}/models/{model}        unregister
//	POST   /v1/tenants/{tenant}/models/{model}/infer  one sample per request
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"seal"
	"seal/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		masterKey = flag.String("master-key", "sealserve dev master key", "master passphrase; tenant keys are derived from it")
		preload   = flag.String("preload", "", "comma-separated architectures to register at startup under tenant \"public\"")
		scale     = flag.Float64("scale", 0.25, "channel-width multiplier for preloaded models")
		ratio     = flag.Float64("ratio", 0.5, "SE encryption ratio for preloaded models")
		seed      = flag.Uint64("seed", 42, "weight-initialization seed for preloaded models")

		queue   = flag.Int("queue", serve.DefaultQueueDepth, "per-model admission queue depth")
		maxB    = flag.Int("max-batch", serve.DefaultMaxBatch, "dynamic batch size cap")
		window  = flag.Duration("batch-window", serve.DefaultBatchWindow, "how long the batcher waits to widen a batch")
		workers = flag.Int("workers", 0, "secure engines per model (0 = size from SEAL_WORKERS/CPU)")

		benchJSON = flag.Bool("bench-json", false, "run the closed-loop serving benchmark, write the JSON report and exit")
		benchOut  = flag.String("bench-out", "BENCH_PR7.json", "output path for -bench-json")
		qps       = flag.Float64("qps", 100, "target sustained request rate for -bench-json")
		duration  = flag.Duration("duration", 3*time.Second, "measurement window for -bench-json")
		clients   = flag.Int("clients", 16, "concurrent closed-loop clients for -bench-json")
	)
	flag.Parse()

	cfg := serve.Config{
		MasterKey:   seal.KeyFromString(*masterKey),
		QueueDepth:  *queue,
		MaxBatch:    *maxB,
		BatchWindow: *window,
		Workers:     *workers,
	}

	if *benchJSON {
		os.Exit(runBenchJSON(*benchOut, cfg, benchParams{
			arch: firstArch(*preload), scale: *scale, ratio: *ratio, seed: *seed,
			qps: *qps, duration: *duration, clients: *clients,
		}))
	}

	gw := serve.New(cfg)
	for _, name := range splitList(*preload) {
		spec := serve.ModelSpec{Arch: name, Scale: *scale, Ratio: ratio, Seed: *seed}
		info, err := gw.Registry().Register("public", name, spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sealserve: preload %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("sealserve: registered public/%s (%s scale %.3g, %.0f%% weights encrypted, %d workers)\n",
			name, info.Arch, info.Scale, info.WeightEncFraction*100, info.Workers)
	}

	srv := &http.Server{Addr: *addr, Handler: gw.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "sealserve: shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx) // stop accepting, drain HTTP
		gw.Close()                    // then drain the engine pools
	}()

	fmt.Printf("sealserve: listening on %s (queue %d, max batch %d, window %s)\n",
		*addr, *queue, *maxB, *window)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "sealserve: %v\n", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// firstArch picks the benchmark architecture: the first preloaded name,
// or vgg16.
func firstArch(preload string) string {
	if names := splitList(preload); len(names) > 0 {
		return names[0]
	}
	return "vgg16"
}
