package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"seal/internal/exp"
)

// gridReport is the schema of BENCH_PR9.json: the paper-scale
// configuration sweep plus the stat mode's validation aggregates.
type gridReport struct {
	Benchmark string       `json:"benchmark"`
	Stat      bool         `json:"stat"`
	Scale     string       `json:"scale"`
	Seconds   float64      `json:"seconds"` // whole-sweep wall time
	Spec      exp.GridSpec `json:"spec"`

	Cells []exp.GridCell `json:"cells"`

	// Validation aggregates over the exactly re-run sampled cells.
	Sampled     int     `json:"sampled"`
	MaxErr      float64 `json:"max_err"`
	MinSpeedup  float64 `json:"min_speedup"`
	MeanSpeedup float64 `json:"mean_speedup"`
	// Gates applied (only when stat mode sampled at least one cell).
	MaxErrGate     float64 `json:"max_err_gate"`
	MinSpeedupGate float64 `json:"min_speedup_gate"`
	GatesOK        bool    `json:"gates_ok"`
}

// runGrid executes the configuration sweep, prints its table, writes the
// JSON report to out and returns the process exit code: nonzero when a
// validation gate fails.
func runGrid(cfg exp.TimingConfig, spec exp.GridSpec, stat bool, out string, maxErr, minSpeedup float64, emit func(*exp.Table) bool) int {
	scale := "paper"
	if cfg.Scale != 1 {
		scale = fmt.Sprintf("scale=%.2g", cfg.Scale)
	}
	fmt.Fprintf(os.Stderr, "sealsim: grid: %d×%d×%d×%d cells (%s, stat=%v)...\n",
		len(spec.Archs), len(spec.Ratios), len(spec.Engines), len(spec.L2KB), scale, stat)
	t0 := time.Now()
	res, err := exp.Grid(cfg, spec, stat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sealsim: grid: %v\n", err)
		return 1
	}
	if !emit(res.Table()) {
		return 1
	}

	rep := gridReport{
		Benchmark:      "Grid_RatioArchEnginesL2",
		Stat:           stat,
		Scale:          scale,
		Seconds:        time.Since(t0).Seconds(),
		Spec:           spec,
		Cells:          res.Cells,
		Sampled:        res.Sampled,
		MaxErr:         res.MaxErr,
		MinSpeedup:     res.MinSpeedup,
		MeanSpeedup:    res.MeanSpeedup,
		MaxErrGate:     maxErr,
		MinSpeedupGate: minSpeedup,
		GatesOK:        true,
	}
	code := 0
	if res.Sampled > 0 {
		if res.MaxErr > maxErr {
			fmt.Fprintf(os.Stderr, "sealsim: FAIL: grid max relative error %.4f exceeds gate %.4f\n", res.MaxErr, maxErr)
			rep.GatesOK = false
			code = 1
		}
		if minSpeedup > 0 && res.MinSpeedup < minSpeedup {
			fmt.Fprintf(os.Stderr, "sealsim: FAIL: grid min speedup %.1fx below gate %.1fx\n", res.MinSpeedup, minSpeedup)
			rep.GatesOK = false
			code = 1
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "sealsim: grid: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "sealsim: grid: %v\n", err)
		return 1
	}
	if res.Sampled > 0 {
		fmt.Printf("wrote %s: %d cells in %.1fs, sampled %d, max err %.3f%%, speedup min %.1fx mean %.1fx, gates_ok=%v\n",
			out, len(res.Cells), rep.Seconds, res.Sampled, res.MaxErr*100, res.MinSpeedup, res.MeanSpeedup, rep.GatesOK)
	} else {
		fmt.Printf("wrote %s: %d cells in %.1fs (no cells sampled for validation)\n", out, len(res.Cells), rep.Seconds)
	}
	return code
}
