package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"reflect"
	"testing"

	"seal/internal/exp"
)

// benchModeResult is one scheduler mode's measurement of the Figure-7
// workload (full VGG-16/ResNet-18/ResNet-34 inference under all five
// schemes at quick scale).
type benchModeResult struct {
	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	DirectVGG      float64 `json:"directVGG"`
	SealOverDirect float64 `json:"sealOverDirect"`
}

// benchStatResult extends benchModeResult with the statistical fast-sim
// mode's validation against the exact fast scheduler.
type benchStatResult struct {
	benchModeResult
	ExactFrac         float64 `json:"exact_frac"` // mean exactly-simulated cycle fraction
	SpeedupVsExact    float64 `json:"speedup_vs_exact"`
	ErrDirectVGG      float64 `json:"err_directVGG"`
	ErrSealOverDirect float64 `json:"err_sealOverDirect"`
	Tolerance         float64 `json:"tolerance"`
	TolOK             bool    `json:"tol_ok"`
}

// benchReport is the schema of BENCH_PR4.json.
type benchReport struct {
	Benchmark string          `json:"benchmark"`
	Scale     string          `json:"scale"`
	Fast      benchModeResult `json:"fast"`
	Reference benchModeResult `json:"reference"`
	// Speedup is reference ns/op over fast ns/op.
	Speedup float64 `json:"speedup"`
	// MetricsEqual is the bit-identity check: the full per-scheme,
	// per-network IPC and cycle grids of the two schedulers compared
	// with reflect.DeepEqual — not a tolerance.
	MetricsEqual bool   `json:"metrics_equal"`
	GoldenFile   string `json:"golden_file,omitempty"`
	GoldenMatch  *bool  `json:"golden_match,omitempty"`
	// Stat validates the statistical fast-sim mode against the exact
	// fast scheduler: a relative-error tolerance, not bit-identity.
	Stat *benchStatResult `json:"stat,omitempty"`
}

type golden struct {
	DirectVGG      float64 `json:"directVGG"`
	SealOverDirect float64 `json:"sealOverDirect"`
	Tolerance      float64 `json:"tolerance"`
}

// benchNetworks measures exp.RunNetworks under testing.Benchmark in the
// given mode — "fast" (event-driven exact), "ref" (per-cycle reference)
// or "stat" (statistical fast-sim) — and returns the timing plus the
// last run's results (every run is deterministic, so "last" is "any").
func benchNetworks(mode string) (benchModeResult, *exp.NetworkResults, error) {
	if mode == "ref" {
		os.Setenv("SEAL_SIM_REF", "1")
		defer os.Unsetenv("SEAL_SIM_REF")
	} else {
		os.Unsetenv("SEAL_SIM_REF")
	}
	cfg := exp.QuickTimingConfig()
	cfg.FastSim = mode == "stat"
	var nr *exp.NetworkResults
	var err error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nr, err = exp.RunNetworks(cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	if err != nil {
		return benchModeResult{}, nil, err
	}
	t := nr.Figure7()
	d, ok1 := t.Cell("Direct", "VGG-16")
	s, ok2 := t.Cell("SEAL-D", "VGG-16")
	if !ok1 || !ok2 {
		return benchModeResult{}, nil, fmt.Errorf("figure 7 table missing Direct/SEAL-D VGG-16 cells")
	}
	return benchModeResult{
		NsPerOp:        br.NsPerOp(),
		AllocsPerOp:    br.AllocsPerOp(),
		BytesPerOp:     br.AllocedBytesPerOp(),
		DirectVGG:      d,
		SealOverDirect: s / d,
	}, nr, nil
}

// runBenchJSON benchmarks the Figure-7 workload under the exact fast
// scheduler, the per-cycle reference and the statistical fast-sim mode,
// verifies the first two agree bit-for-bit (and optionally against a
// golden file) and the stat mode within statTol, writes the report to
// out and returns the process exit code: nonzero on any failed check.
func runBenchJSON(out, goldenPath string, statTol float64) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "sealsim: bench-json: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "sealsim: benchmarking Figure-7 workload, fast-forward scheduler...")
	fast, fastNR, err := benchNetworks("fast")
	if err != nil {
		return fail(err)
	}
	fmt.Fprintln(os.Stderr, "sealsim: benchmarking Figure-7 workload, per-cycle reference scheduler...")
	ref, refNR, err := benchNetworks("ref")
	if err != nil {
		return fail(err)
	}
	fmt.Fprintln(os.Stderr, "sealsim: benchmarking Figure-7 workload, statistical fast-sim mode...")
	stat, statNR, err := benchNetworks("stat")
	if err != nil {
		return fail(err)
	}

	rep := benchReport{
		Benchmark:    "Fig7_OverallIPC",
		Scale:        "quick",
		Fast:         fast,
		Reference:    ref,
		Speedup:      float64(ref.NsPerOp) / float64(fast.NsPerOp),
		MetricsEqual: reflect.DeepEqual(fastNR, refNR),
	}
	statRep := benchStatResult{
		benchModeResult:   stat,
		ExactFrac:         statNR.MeanExactFrac(),
		SpeedupVsExact:    float64(fast.NsPerOp) / float64(stat.NsPerOp),
		ErrDirectVGG:      relErr(stat.DirectVGG, fast.DirectVGG),
		ErrSealOverDirect: relErr(stat.SealOverDirect, fast.SealOverDirect),
		Tolerance:         statTol,
	}
	statRep.TolOK = statRep.ErrDirectVGG <= statTol && statRep.ErrSealOverDirect <= statTol
	rep.Stat = &statRep

	code := 0
	if !rep.MetricsEqual {
		fmt.Fprintln(os.Stderr, "sealsim: FAIL: fast-forward and reference schedulers disagree")
		code = 1
	}
	if !statRep.TolOK {
		fmt.Fprintf(os.Stderr, "sealsim: FAIL: stat mode outside %.2g tolerance: err(directVGG)=%.4f err(sealOverDirect)=%.4f\n",
			statTol, statRep.ErrDirectVGG, statRep.ErrSealOverDirect)
		code = 1
	}
	if g, err := os.ReadFile(goldenPath); err == nil {
		var want golden
		if err := json.Unmarshal(g, &want); err != nil {
			return fail(fmt.Errorf("parse %s: %w", goldenPath, err))
		}
		match := math.Abs(fast.DirectVGG-want.DirectVGG) <= want.Tolerance &&
			math.Abs(fast.SealOverDirect-want.SealOverDirect) <= want.Tolerance
		rep.GoldenFile = goldenPath
		rep.GoldenMatch = &match
		if !match {
			fmt.Fprintf(os.Stderr, "sealsim: FAIL: metrics drifted from %s: directVGG %.17g (want %.17g), sealOverDirect %.17g (want %.17g)\n",
				goldenPath, fast.DirectVGG, want.DirectVGG, fast.SealOverDirect, want.SealOverDirect)
			code = 1
		}
	} else if goldenPath != "" {
		fmt.Fprintf(os.Stderr, "sealsim: note: golden file %s not found, skipping golden check\n", goldenPath)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return fail(err)
	}
	fmt.Printf("wrote %s: fast %.2fs/op, reference %.2fs/op, speedup %.2fx, metrics_equal=%v, stat err %.3f%%/%.3f%% (tol_ok=%v)\n",
		out, float64(fast.NsPerOp)/1e9, float64(ref.NsPerOp)/1e9, rep.Speedup, rep.MetricsEqual,
		statRep.ErrDirectVGG*100, statRep.ErrSealOverDirect*100, statRep.TolOK)
	return code
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
