// Command sealsim runs the simulator-based experiments of the SEAL
// reproduction: Table I and Figures 1, 5, 6, 7 and 8, plus the ratio and
// engine-count ablations.
//
// Usage:
//
//	sealsim -exp table1
//	sealsim -exp fig1
//	sealsim -exp fig5 | fig6          # per-layer microbenchmarks
//	sealsim -exp nets                 # Figures 7 and 8 in one pass
//	sealsim -exp ratios               # normalized IPC vs encryption ratio
//	sealsim -exp engines              # engines-per-controller ablation
//	sealsim -exp all
//	sealsim -exp fig1 -quick          # smoke-scale run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"seal/internal/exp"
)

func main() {
	var (
		which   = flag.String("exp", "all", "experiment: table1, fig1, fig5, fig6, nets, ratios, engines, integrity, l2sweep, counters, all")
		quick   = flag.Bool("quick", false, "use the reduced smoke-scale configuration")
		ratio   = flag.Float64("ratio", 0.5, "SEAL encryption ratio for figures 5-8")
		batch   = flag.Int("batch", 1, "inference batch size for figures 5-8")
		counter = flag.Int("counterkb", 96, "counter cache size (total KB) for Counter/SEAL-C")
		csv     = flag.Bool("csv", false, "emit comma-separated values instead of aligned text")
		bars    = flag.Bool("bars", false, "render ASCII bar charts instead of aligned text")

		benchJSON = flag.Bool("bench-json", false, "benchmark the Figure-7 workload under both schedulers, check bit-identity, write BENCH_PR4.json and exit")
		benchOut  = flag.String("bench-out", "BENCH_PR4.json", "output path for -bench-json")
		goldenF   = flag.String("golden", "testdata/fig7_golden.json", "golden metrics file for -bench-json (skipped if absent)")
	)
	flag.Parse()

	if *benchJSON {
		os.Exit(runBenchJSON(*benchOut, *goldenF))
	}

	cfg := exp.DefaultTimingConfig()
	if *quick {
		cfg = exp.QuickTimingConfig()
	}
	cfg.Ratio = *ratio
	cfg.Batch = *batch
	cfg.CounterKB = *counter

	emit := func(t *exp.Table) {
		switch {
		case *csv:
			if err := t.CSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "sealsim: %v\n", err)
				os.Exit(1)
			}
		case *bars:
			t.Bars(os.Stdout)
		default:
			t.Format(os.Stdout)
		}
	}
	run := func(name string, f func() (*exp.Table, error)) {
		start := time.Now()
		t, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sealsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		emit(t)
		if !*csv {
			fmt.Printf("  (%s in %.1fs)\n\n", name, time.Since(start).Seconds())
		}
	}

	want := func(name string) bool { return *which == "all" || strings.Contains(*which, name) }

	if want("table1") {
		run("table1", func() (*exp.Table, error) { return exp.TableI(), nil })
	}
	if want("fig1") {
		run("fig1", func() (*exp.Table, error) { return exp.Figure1(cfg) })
	}
	if want("fig5") {
		run("fig5", func() (*exp.Table, error) { return exp.Figure5(cfg) })
	}
	if want("fig6") {
		run("fig6", func() (*exp.Table, error) { return exp.Figure6(cfg) })
	}
	if want("nets") || want("fig7") || want("fig8") {
		start := time.Now()
		nr, err := exp.RunNetworks(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sealsim: nets: %v\n", err)
			os.Exit(1)
		}
		emit(nr.Figure7())
		fmt.Println()
		emit(nr.Figure8())
		if !*csv {
			fmt.Printf("  (nets in %.1fs)\n\n", time.Since(start).Seconds())
		}
	}
	if want("ratios") {
		run("ratios", func() (*exp.Table, error) {
			return exp.RatioSweep(cfg, []float64{0.1, 0.3, 0.5, 0.7, 0.9})
		})
	}
	if want("engines") {
		run("engines", func() (*exp.Table, error) {
			return exp.EngineCountAblation(cfg, []int{1, 2, 4, 8})
		})
	}
	if want("integrity") {
		run("integrity", func() (*exp.Table, error) { return exp.Integrity(cfg) })
	}
	if want("l2sweep") {
		run("l2sweep", func() (*exp.Table, error) {
			return exp.L2Sweep(cfg, []int{64, 128, 256, 512})
		})
	}
	if want("counters") {
		run("counters", func() (*exp.Table, error) {
			return exp.CounterGranularity(cfg, []int{16, 8, 4, 1})
		})
	}
}
