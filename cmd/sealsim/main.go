// Command sealsim runs the simulator-based experiments of the SEAL
// reproduction: Table I and Figures 1, 5, 6, 7 and 8, plus the ratio and
// engine-count ablations and the paper-scale configuration grid.
//
// Usage:
//
//	sealsim -exp table1
//	sealsim -exp fig1
//	sealsim -exp fig5 | fig6          # per-layer microbenchmarks
//	sealsim -exp nets                 # Figures 7 and 8 in one pass
//	sealsim -exp ratios               # normalized IPC vs encryption ratio
//	sealsim -exp engines              # engines-per-controller ablation
//	sealsim -exp grid -stat           # ratio × arch × engines × L2 sweep
//	sealsim -exp all
//	sealsim -exp fig1 -quick          # smoke-scale run
//
// The -stat flag opts the simulators into the statistical fast-sim mode
// (DESIGN.md §17): results become validated estimates instead of
// bit-exact cycle counts, an order of magnitude faster per run. The
// grid re-runs sampled cells exactly and gates the error and speedup
// (-max-err, -min-speedup), writing the report to -bench-out
// (BENCH_PR9.json by default).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"seal/internal/exp"
)

func main() { os.Exit(realMain()) }

func realMain() int {
	var (
		which   = flag.String("exp", "all", "experiment: table1, fig1, fig5, fig6, nets, ratios, engines, integrity, l2sweep, counters, grid, all")
		quick   = flag.Bool("quick", false, "use the reduced smoke-scale configuration")
		ratio   = flag.Float64("ratio", 0.5, "SEAL encryption ratio for figures 5-8")
		batch   = flag.Int("batch", 1, "inference batch size for figures 5-8")
		counter = flag.Int("counterkb", 96, "counter cache size (total KB) for Counter/SEAL-C")
		csv     = flag.Bool("csv", false, "emit comma-separated values instead of aligned text")
		bars    = flag.Bool("bars", false, "render ASCII bar charts instead of aligned text")
		statF   = flag.Bool("stat", false, "statistical fast-sim mode: validated estimates instead of bit-exact cycle counts (DESIGN.md §17)")

		benchJSON = flag.Bool("bench-json", false, "benchmark the Figure-7 workload under both schedulers and stat mode, check bit-identity and tolerances, write the report and exit")
		benchOut  = flag.String("bench-out", "", "report output path (default BENCH_PR4.json for -bench-json, BENCH_PR9.json for -exp grid)")
		goldenF   = flag.String("golden", "testdata/fig7_golden.json", "golden metrics file for -bench-json (skipped if absent)")
		statTol   = flag.Float64("stat-tol", 0.02, "max relative error of stat-mode Fig-7 metrics vs the exact scheduler (-bench-json gate)")

		gridArchs   = flag.String("grid-archs", "vgg16,resnet18", "grid: comma-separated architectures")
		gridRatios  = flag.String("grid-ratios", "0.3,0.5,0.7", "grid: comma-separated encryption ratios")
		gridEngines = flag.String("grid-engines", "1,2,4", "grid: comma-separated engines per memory controller")
		gridL2      = flag.String("grid-l2", "128,256,512", "grid: comma-separated per-slice L2 KB")
		gridSample  = flag.Int("grid-sample", 9, "grid: validate every Nth cell against the exact scheduler (0 disables; needs -stat)")
		maxErr      = flag.Float64("max-err", 0.02, "grid gate: max relative error on sampled cells")
		minSpeedup  = flag.Float64("min-speedup", 1.5, "grid gate: min stat-mode speedup on sampled cells (0 disables); measured ~2.3x per Fig-7-scale cell, see DESIGN.md §17")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sealsim: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sealsim: cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sealsim: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sealsim: memprofile: %v\n", err)
			}
		}()
	}

	if *benchJSON {
		out := *benchOut
		if out == "" {
			out = "BENCH_PR4.json"
		}
		return runBenchJSON(out, *goldenF, *statTol)
	}

	cfg := exp.DefaultTimingConfig()
	if *quick {
		cfg = exp.QuickTimingConfig()
	}
	cfg.Ratio = *ratio
	cfg.Batch = *batch
	cfg.CounterKB = *counter
	cfg.FastSim = *statF

	emit := func(t *exp.Table) bool {
		switch {
		case *csv:
			if err := t.CSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "sealsim: %v\n", err)
				return false
			}
		case *bars:
			t.Bars(os.Stdout)
		default:
			t.Format(os.Stdout)
		}
		return true
	}
	code := 0
	run := func(name string, f func() (*exp.Table, error)) {
		if code != 0 {
			return
		}
		start := time.Now()
		t, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sealsim: %s: %v\n", name, err)
			code = 1
			return
		}
		if !emit(t) {
			code = 1
			return
		}
		if !*csv {
			fmt.Printf("  (%s in %.1fs)\n\n", name, time.Since(start).Seconds())
		}
	}

	want := func(name string) bool { return *which == "all" || strings.Contains(*which, name) }

	if want("table1") {
		run("table1", func() (*exp.Table, error) { return exp.TableI(), nil })
	}
	if want("fig1") {
		run("fig1", func() (*exp.Table, error) { return exp.Figure1(cfg) })
	}
	if want("fig5") {
		run("fig5", func() (*exp.Table, error) { return exp.Figure5(cfg) })
	}
	if want("fig6") {
		run("fig6", func() (*exp.Table, error) { return exp.Figure6(cfg) })
	}
	if code == 0 && (want("nets") || want("fig7") || want("fig8")) {
		start := time.Now()
		nr, err := exp.RunNetworks(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sealsim: nets: %v\n", err)
			return 1
		}
		if !emit(nr.Figure7()) {
			return 1
		}
		fmt.Println()
		if !emit(nr.Figure8()) {
			return 1
		}
		if !*csv {
			fmt.Printf("  (nets in %.1fs)\n\n", time.Since(start).Seconds())
		}
	}
	if want("ratios") {
		run("ratios", func() (*exp.Table, error) {
			return exp.RatioSweep(cfg, []float64{0.1, 0.3, 0.5, 0.7, 0.9})
		})
	}
	if want("engines") {
		run("engines", func() (*exp.Table, error) {
			return exp.EngineCountAblation(cfg, []int{1, 2, 4, 8})
		})
	}
	if want("integrity") {
		run("integrity", func() (*exp.Table, error) { return exp.Integrity(cfg) })
	}
	if want("l2sweep") {
		run("l2sweep", func() (*exp.Table, error) {
			return exp.L2Sweep(cfg, []int{64, 128, 256, 512})
		})
	}
	// The grid is opt-in (not part of -exp all): 54 exact cells at paper
	// scale is exactly the cost the stat mode exists to avoid.
	if code == 0 && *which != "all" && want("grid") {
		spec := exp.GridSpec{SampleEvery: *gridSample}
		var err error
		if spec.Archs, err = splitList(*gridArchs); err == nil {
			spec.Ratios, err = splitFloats(*gridRatios)
		}
		if err == nil {
			spec.Engines, err = splitInts(*gridEngines)
		}
		if err == nil {
			spec.L2KB, err = splitInts(*gridL2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sealsim: grid: %v\n", err)
			return 1
		}
		out := *benchOut
		if out == "" {
			out = "BENCH_PR9.json"
		}
		code = runGrid(cfg, spec, *statF, out, *maxErr, *minSpeedup, emit)
	}
	if want("counters") {
		run("counters", func() (*exp.Table, error) {
			return exp.CounterGranularity(cfg, []int{16, 8, 4, 1})
		})
	}
	return code
}

func splitList(s string) ([]string, error) {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list %q", s)
	}
	return out, nil
}

func splitFloats(s string) ([]float64, error) {
	parts, err := splitList(s)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		if out[i], err = strconv.ParseFloat(p, 64); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func splitInts(s string) ([]int, error) {
	parts, err := splitList(s)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(parts))
	for i, p := range parts {
		if out[i], err = strconv.Atoi(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}
