package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"seal/internal/dataset"
	"seal/internal/exp"
	"seal/internal/models"
	"seal/internal/nn"
	"seal/internal/prng"
)

// trainStepResult is the timing of one full training step (train-mode
// forward, softmax cross-entropy, backward, SGD update) on the
// small-width VGG-16 at batch 16 — the same workload as the repo-level
// BenchmarkTrainStep.
type trainStepResult struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// fig3CellResult is one reduced Figure-3 cell: the quick-scale
// substitute-model study on one architecture at one encryption ratio.
// All accuracy fields are bit-exact reproductions of the experiment
// outputs, checked against testdata/fig3_golden.json.
type fig3CellResult struct {
	Arch       string  `json:"arch"`
	Ratio      float64 `json:"ratio"`
	Seconds    float64 `json:"seconds"`
	VictimAcc  float64 `json:"victimAcc"`
	WhiteAcc   float64 `json:"whiteAcc"`
	BlackAcc   float64 `json:"blackAcc"`
	SEALAcc    float64 `json:"sealAcc"`
	WhiteTrans float64 `json:"whiteTrans"`
	BlackTrans float64 `json:"blackTrans"`
	SEALTrans  float64 `json:"sealTrans"`
	LeakedFrac float64 `json:"leakedFrac"`
}

// benchReport is the schema of BENCH_PR5.json.
type benchReport struct {
	Benchmark   string          `json:"benchmark"`
	Scale       string          `json:"scale"`
	TrainStep   trainStepResult `json:"train_step"`
	Fig3Cell    fig3CellResult  `json:"fig3_cell"`
	GoldenFile  string          `json:"golden_file,omitempty"`
	GoldenMatch *bool           `json:"golden_match,omitempty"`
}

// fig3Golden is the schema of testdata/fig3_golden.json. Tolerance 0
// means exact float64 equality — the training path promises bit-identical
// trajectories, so the experiment outputs must not move at all.
type fig3Golden struct {
	Arch       string  `json:"arch"`
	Ratio      float64 `json:"ratio"`
	VictimAcc  float64 `json:"victimAcc"`
	WhiteAcc   float64 `json:"whiteAcc"`
	BlackAcc   float64 `json:"blackAcc"`
	SEALAcc    float64 `json:"sealAcc"`
	WhiteTrans float64 `json:"whiteTrans"`
	BlackTrans float64 `json:"blackTrans"`
	SEALTrans  float64 `json:"sealTrans"`
	LeakedFrac float64 `json:"leakedFrac"`
	Tolerance  float64 `json:"tolerance"`
}

// fig3CellConfig is the reduced Figure-3 cell the bench run reproduces:
// the quick security configuration narrowed to one architecture and one
// encryption ratio.
func fig3CellConfig() exp.SecurityConfig {
	cfg := exp.QuickSecurityConfig()
	cfg.Arches = []string{"resnet18"}
	cfg.Ratios = []float64{0.5}
	cfg.Progress = nil
	return cfg
}

// benchTrainStep measures the train-step workload under
// testing.Benchmark.
func benchTrainStep() (trainStepResult, error) {
	rng := prng.New(7)
	arch := models.VGG16Arch().Scale(0.0625, 0)
	m, err := models.Build(arch, rng.Fork())
	if err != nil {
		return trainStepResult{}, err
	}
	gen := dataset.NewGenerator(dataset.DefaultConfig(), 7)
	ds := gen.Sample(16)
	x, labels := ds.Batch(0, 16)
	params := m.Params()
	opt := nn.NewSGD(0.05, 0.9, 0)
	var ce nn.SoftmaxCE
	step := func() {
		out := m.Forward(x, true)
		_, grad := ce.Loss(out, labels)
		m.Backward(grad)
		opt.Step(params)
	}
	step() // warm-up: builds the layer workspaces and optimizer state
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			step()
		}
	})
	return trainStepResult{
		NsPerOp:     br.NsPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
	}, nil
}

// runFig3Cell executes the reduced cell and extracts the golden-checked
// metrics.
func runFig3Cell() (fig3CellResult, error) {
	cfg := fig3CellConfig()
	start := time.Now()
	res, err := exp.RunSecurity(cfg)
	if err != nil {
		return fig3CellResult{}, err
	}
	m := res.Models[0]
	ratio := cfg.Ratios[0]
	return fig3CellResult{
		Arch:       cfg.Arches[0],
		Ratio:      ratio,
		Seconds:    time.Since(start).Seconds(),
		VictimAcc:  m.VictimAcc,
		WhiteAcc:   m.WhiteAcc,
		BlackAcc:   m.BlackAcc,
		SEALAcc:    m.SEALAcc[ratio],
		WhiteTrans: m.WhiteTrans,
		BlackTrans: m.BlackTrans,
		SEALTrans:  m.SEALTrans[ratio],
		LeakedFrac: m.LeakedFrac[ratio],
	}, nil
}

// checkGolden compares the cell metrics against the golden file. A nil
// return with ok=false means the file was absent (check skipped).
func checkGolden(cell fig3CellResult, path string) (match bool, found bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, false, nil
	}
	var want fig3Golden
	if err := json.Unmarshal(raw, &want); err != nil {
		return false, true, fmt.Errorf("parse %s: %w", path, err)
	}
	tol := want.Tolerance
	close := func(got, wantV float64) bool { return math.Abs(got-wantV) <= tol }
	match = want.Arch == cell.Arch && want.Ratio == cell.Ratio &&
		close(cell.VictimAcc, want.VictimAcc) &&
		close(cell.WhiteAcc, want.WhiteAcc) &&
		close(cell.BlackAcc, want.BlackAcc) &&
		close(cell.SEALAcc, want.SEALAcc) &&
		close(cell.WhiteTrans, want.WhiteTrans) &&
		close(cell.BlackTrans, want.BlackTrans) &&
		close(cell.SEALTrans, want.SEALTrans) &&
		close(cell.LeakedFrac, want.LeakedFrac)
	return match, true, nil
}

// runBenchJSON times the train-step benchmark and the reduced Figure-3
// cell, spot-checks the substitute accuracies against the golden file,
// writes the report, and returns the process exit code (nonzero on any
// mismatch).
func runBenchJSON(out, goldenPath string, updateGolden bool) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "sealsec: bench-json: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "sealsec: benchmarking train step (small-width VGG-16, batch 16)...")
	ts, err := benchTrainStep()
	if err != nil {
		return fail(err)
	}
	fmt.Fprintln(os.Stderr, "sealsec: running reduced Figure-3 cell (quick resnet18 @ ratio 0.5)...")
	cell, err := runFig3Cell()
	if err != nil {
		return fail(err)
	}

	if updateGolden {
		g := fig3Golden{
			Arch: cell.Arch, Ratio: cell.Ratio,
			VictimAcc: cell.VictimAcc, WhiteAcc: cell.WhiteAcc, BlackAcc: cell.BlackAcc,
			SEALAcc: cell.SEALAcc, WhiteTrans: cell.WhiteTrans, BlackTrans: cell.BlackTrans,
			SEALTrans: cell.SEALTrans, LeakedFrac: cell.LeakedFrac,
			Tolerance: 0,
		}
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s\n", goldenPath)
	}

	rep := benchReport{
		Benchmark: "TrainStep+Fig3Cell",
		Scale:     "quick",
		TrainStep: ts,
		Fig3Cell:  cell,
	}
	code := 0
	match, found, err := checkGolden(cell, goldenPath)
	if err != nil {
		return fail(err)
	}
	if found {
		rep.GoldenFile = goldenPath
		rep.GoldenMatch = &match
		if !match {
			fmt.Fprintf(os.Stderr, "sealsec: FAIL: Figure-3 cell drifted from %s: %+v\n", goldenPath, cell)
			code = 1
		}
	} else {
		fmt.Fprintf(os.Stderr, "sealsec: note: golden file %s not found, skipping golden check\n", goldenPath)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return fail(err)
	}
	fmt.Printf("wrote %s: train step %.1fms/op (%d allocs/op), fig3 cell %.0fs, golden_match=%v\n",
		out, float64(ts.NsPerOp)/1e6, ts.AllocsPerOp, cell.Seconds, rep.GoldenMatch != nil && *rep.GoldenMatch)
	return code
}
