// Command sealsec runs the security experiments of the SEAL
// reproduction: the substitute-model study behind Figures 3 (IP
// stealing) and 4 (adversarial transferability).
//
// Usage:
//
//	sealsec                       # all three architectures, default scale
//	sealsec -quick                # one architecture, reduced settings
//	sealsec -arch vgg16,resnet18  # subset
//	sealsec -ratios 0.9,0.5,0.1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"seal/internal/exp"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "use the reduced smoke-scale configuration")
		arches  = flag.String("arch", "", "comma-separated subset of vgg16,resnet18,resnet34")
		ratios  = flag.String("ratios", "", "comma-separated encryption ratios (e.g. 0.9,0.5,0.1)")
		seed    = flag.Uint64("seed", 7, "experiment seed")
		premise = flag.Bool("premise", false, "also run the pruning-premise validation")
		int8F   = flag.Bool("int8", false, "run the quantized-security study (float vs int8 victim) instead of the full figure suite")

		benchJSON    = flag.Bool("bench-json", false, "run the train-step benchmark + reduced Fig 3 cell, write a JSON report, exit nonzero on golden mismatch")
		benchOut     = flag.String("bench-out", "BENCH_PR5.json", "bench-json report path")
		goldenF      = flag.String("golden", "testdata/fig3_golden.json", "bench-json golden file")
		updateGolden = flag.Bool("update-golden", false, "with -bench-json: rewrite the golden file from this run")
	)
	flag.Parse()

	if *benchJSON {
		os.Exit(runBenchJSON(*benchOut, *goldenF, *updateGolden))
	}

	cfg := exp.DefaultSecurityConfig()
	if *quick {
		cfg = exp.QuickSecurityConfig()
	}
	cfg.Seed = *seed
	cfg.Progress = os.Stderr
	if *arches != "" {
		cfg.Arches = strings.Split(*arches, ",")
	}
	if *ratios != "" {
		cfg.Ratios = nil
		for _, tok := range strings.Split(*ratios, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil || v < 0 || v > 1 {
				fmt.Fprintf(os.Stderr, "sealsec: bad ratio %q\n", tok)
				os.Exit(2)
			}
			cfg.Ratios = append(cfg.Ratios, v)
		}
	}

	if *int8F {
		start := time.Now()
		tab, err := exp.QuantizedSecurity(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sealsec: int8: %v\n", err)
			os.Exit(1)
		}
		tab.Format(os.Stdout)
		fmt.Printf("  (quantized security study in %.0fs)\n", time.Since(start).Seconds())
		return
	}

	start := time.Now()
	res, err := exp.RunSecurity(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sealsec: %v\n", err)
		os.Exit(1)
	}
	res.Figure3().Format(os.Stdout)
	fmt.Println()
	res.Figure4().Format(os.Stdout)
	fmt.Printf("  (security suite in %.0fs)\n", time.Since(start).Seconds())

	if *premise {
		tab, err := exp.PruningPremise(cfg, []float64{0.1, 0.2, 0.3, 0.4, 0.5})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sealsec: premise: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		tab.Format(os.Stdout)
	}
}
