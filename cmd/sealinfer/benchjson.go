package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"seal"
	"seal/internal/parallel"
	"seal/internal/prng"
)

// benchModelResult is one architecture's secure-vs-plaintext roofline
// measurement.
type benchModelResult struct {
	Name                string  `json:"name"`
	PlaintextNsPerOp    int64   `json:"plaintext_ns_per_op"`
	SecureNsPerOp       int64   `json:"secure_ns_per_op"`
	SecureOverPlaintext float64 `json:"secure_over_plaintext"`
	// LogitsEqual is the bit-identity check between the streamed secure
	// forward and the plaintext forward — exact equality, not a tolerance.
	LogitsEqual       bool    `json:"logits_equal"`
	Panels            int64   `json:"panels_per_forward"`
	MBDecrypted       float64 `json:"mb_decrypted_per_forward"`
	MBBypassed        float64 `json:"mb_bypassed_per_forward"`
	DecryptGBPerSec   float64 `json:"decrypt_gb_per_sec"`
	SecureAllocsPerOp int64   `json:"secure_allocs_per_op"`
}

// benchReport is the schema of BENCH_PR6.json.
type benchReport struct {
	Benchmark string             `json:"benchmark"`
	Scale     float64            `json:"scale"`
	Ratio     float64            `json:"ratio"`
	Batch     int                `json:"batch"`
	Workers   int                `json:"workers"`
	Models    []benchModelResult `json:"models"`
	// BestSecureOverPlaintext is the smallest per-model ratio — the
	// headline roofline-gap number.
	BestSecureOverPlaintext float64 `json:"best_secure_over_plaintext"`
	LogitsAllEqual          bool    `json:"logits_all_equal"`
	GoldenFile              string  `json:"golden_file,omitempty"`
	GoldenMatch             *bool   `json:"golden_match,omitempty"`
}

// golden bounds the measured roofline gap: the check fails only when
// every model exceeds the bound, so scheduler noise on one run cannot
// flake the gate.
type golden struct {
	MaxSecureOverPlaintext float64 `json:"max_secure_over_plaintext"`
}

// benchModel measures one architecture: warm plaintext forward, warm
// secure forward, bit-identity of the logits, and the standalone bulk
// region-decrypt throughput.
func benchModel(name string, scale, ratio float64, batch, panel int, seed uint64) (benchModelResult, error) {
	p, err := buildPrepared(name, scale, ratio, panel, seed, false)
	if err != nil {
		return benchModelResult{}, err
	}
	e, m, arch := p.Engine(), p.Model(), p.Arch()
	rng := prng.New(seed + 1)
	x := seal.NewTensor(batch, arch.InC, arch.InH, arch.InW)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}

	want := m.Forward(x, false)
	wantCopy := make([]float32, len(want.Data))
	copy(wantCopy, want.Data)
	plain := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Forward(x, false)
		}
	})

	e.Forward(x) // warm-up: builds every streaming workspace
	e.ResetStats()
	sec := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Forward(x)
		}
	})
	st := e.Stats()
	got := e.Forward(x)
	equal := len(got.Data) == len(wantCopy)
	if equal {
		for i := range wantCopy {
			if got.Data[i] != wantCopy[i] {
				equal = false
				break
			}
		}
	}

	img := e.Image()
	var total int64
	var dst []byte
	for _, lp := range img.Layout.Plan.Layers {
		r := img.Layout.Region("w:" + lp.Name)
		total += int64(r.Size)
		if int(r.Size) > len(dst) {
			dst = make([]byte, r.Size)
		}
	}
	dec := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			for _, lp := range img.Layout.Plan.Layers {
				r := img.Layout.Region("w:" + lp.Name)
				if _, err := img.DecryptRegionInto(r, dst); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	forwards := st.Forwards
	if forwards == 0 {
		forwards = 1
	}
	return benchModelResult{
		Name:                name,
		PlaintextNsPerOp:    plain.NsPerOp(),
		SecureNsPerOp:       sec.NsPerOp(),
		SecureOverPlaintext: float64(sec.NsPerOp()) / float64(plain.NsPerOp()),
		LogitsEqual:         equal,
		Panels:              st.Panels / forwards,
		MBDecrypted:         float64(st.BytesDecrypted) / float64(forwards) / 1e6,
		MBBypassed:          float64(st.BytesCopied) / float64(forwards) / 1e6,
		DecryptGBPerSec:     float64(total) / float64(dec.NsPerOp()),
		SecureAllocsPerOp:   sec.AllocsPerOp(),
	}, nil
}

// runBenchJSON measures every requested architecture, writes the report
// and returns the process exit code: nonzero when any model's streamed
// logits differ from the plaintext forward, or the golden bound fails.
func runBenchJSON(out, goldenPath string, names []string, scale, ratio float64, batch, panel int, seed uint64) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "sealinfer: bench-json: %v\n", err)
		return 1
	}
	rep := benchReport{
		Benchmark:      "SecureForward",
		Scale:          scale,
		Ratio:          ratio,
		Batch:          batch,
		Workers:        parallel.Workers(),
		LogitsAllEqual: true,
	}
	best := 0.0
	for _, name := range names {
		name = strings.TrimSpace(name)
		fmt.Fprintf(os.Stderr, "sealinfer: benchmarking %s (scale %.3g, ratio %.0f%%, batch %d)...\n", name, scale, ratio*100, batch)
		r, err := benchModel(name, scale, ratio, batch, panel, seed)
		if err != nil {
			return fail(err)
		}
		rep.Models = append(rep.Models, r)
		if !r.LogitsEqual {
			rep.LogitsAllEqual = false
		}
		if best == 0 || r.SecureOverPlaintext < best {
			best = r.SecureOverPlaintext
		}
	}
	rep.BestSecureOverPlaintext = best

	code := 0
	if !rep.LogitsAllEqual {
		fmt.Fprintln(os.Stderr, "sealinfer: FAIL: streamed logits differ from the plaintext forward")
		code = 1
	}
	if g, err := os.ReadFile(goldenPath); err == nil {
		var want golden
		if err := json.Unmarshal(g, &want); err != nil {
			return fail(fmt.Errorf("parse %s: %w", goldenPath, err))
		}
		match := best <= want.MaxSecureOverPlaintext
		rep.GoldenFile = goldenPath
		rep.GoldenMatch = &match
		if !match {
			fmt.Fprintf(os.Stderr, "sealinfer: FAIL: best secure/plaintext ratio %.3f exceeds golden bound %.3f\n",
				best, want.MaxSecureOverPlaintext)
			code = 1
		}
	} else if goldenPath != "" {
		fmt.Fprintf(os.Stderr, "sealinfer: note: golden file %s not found, skipping golden check\n", goldenPath)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return fail(err)
	}
	for _, r := range rep.Models {
		fmt.Printf("%s: plaintext %.1f ms/op, secure %.1f ms/op (%.3fx), decrypt %.2f GB/s, allocs/op %d, logits_equal=%v\n",
			r.Name, float64(r.PlaintextNsPerOp)/1e6, float64(r.SecureNsPerOp)/1e6,
			r.SecureOverPlaintext, r.DecryptGBPerSec, r.SecureAllocsPerOp, r.LogitsEqual)
	}
	fmt.Printf("wrote %s: best secure/plaintext %.3fx, logits_all_equal=%v\n", out, best, rep.LogitsAllEqual)
	return code
}
