// Command sealinfer runs streamed secure inference: a model's forward
// pass computed directly from the encrypted memory image, with per-layer
// weight panels decrypted on the fly and overlapped with the GEMMs.
// It reports the wall-clock gap between the secure and plaintext
// forward passes — the functional counterpart of the paper's claim that
// smart encryption keeps the accelerator near its plaintext roofline.
//
// Usage:
//
//	sealinfer                          # VGG-16 and ResNet-18 summary
//	sealinfer -model vgg16 -batch 32   # one model, custom batch
//	sealinfer -ratio 1.0               # full encryption
//	sealinfer -int8                    # quantized int8 image + engine
//	sealinfer -bench-json              # write BENCH_PR6.json and exit
//	sealinfer -int8 -bench-json        # float-vs-int8, BENCH_PR8.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"seal"
	"seal/internal/parallel"
	"seal/internal/prng"
)

func main() {
	var (
		model = flag.String("model", "vgg16,resnet18", "comma-separated architectures: vgg16, resnet18, resnet34")
		scale = flag.Float64("scale", 0.25, "channel-width multiplier applied to the architecture")
		ratio = flag.Float64("ratio", 0.5, "SE encryption ratio")
		batch = flag.Int("batch", 16, "inference batch size")
		panel = flag.Int("panel", 0, "panel byte budget (0 = engine default)")
		seed  = flag.Uint64("seed", 42, "weight-initialization seed")
		int8F = flag.Bool("int8", false, "seal the image in the quantized int8 layout and stream the int8 engine")

		benchJSON = flag.Bool("bench-json", false, "benchmark secure vs plaintext forward, verify bit-identical logits, write the JSON report and exit")
		benchOut  = flag.String("bench-out", "", "output path for -bench-json (default BENCH_PR6.json, or BENCH_PR8.json with -int8)")
		goldenF   = flag.String("golden", "", "golden bounds file for -bench-json, skipped if absent (default testdata/secure_golden.json, or testdata/int8_golden.json with -int8)")
	)
	flag.Parse()

	names := strings.Split(*model, ",")
	if *benchJSON {
		if *int8F {
			if *benchOut == "" {
				*benchOut = "BENCH_PR8.json"
			}
			if *goldenF == "" {
				*goldenF = "testdata/int8_golden.json"
			}
			os.Exit(runBenchInt8JSON(*benchOut, *goldenF, names, *scale, *ratio, *batch, *panel, *seed))
		}
		if *benchOut == "" {
			*benchOut = "BENCH_PR6.json"
		}
		if *goldenF == "" {
			*goldenF = "testdata/secure_golden.json"
		}
		os.Exit(runBenchJSON(*benchOut, *goldenF, names, *scale, *ratio, *batch, *panel, *seed))
	}

	for _, name := range names {
		s, err := runOne(strings.TrimSpace(name), *scale, *ratio, *batch, *panel, *seed, *int8F)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sealinfer: %v\n", err)
			os.Exit(1)
		}
		mode := "float32"
		if *int8F {
			mode = "int8"
		}
		fmt.Printf("%-9s %s scale %.3g ratio %.0f%% batch %d workers %d: plaintext %.1f ms, secure %.1f ms (%.3fx), %d panels, %.2f MB decrypted, %.2f MB bypassed, logits %s\n",
			s.name, mode, *scale, *ratio*100, *batch, parallel.Workers(),
			s.plainMS, s.secureMS, s.secureMS/s.plainMS, s.stats.Panels,
			float64(s.stats.BytesDecrypted)/1e6, float64(s.stats.BytesCopied)/1e6,
			map[bool]string{true: "bit-identical", false: "MISMATCH"}[s.logitsEqual])
		if !s.logitsEqual {
			os.Exit(1)
		}
	}
}

type runSummary struct {
	name        string
	plainMS     float64
	secureMS    float64
	stats       seal.SecureStats
	logitsEqual bool
}

// buildPrepared bundles model, SE plan, encrypted image and streaming
// engine for one architecture through the one-call Prepare API. With
// int8 the image is sealed in the quantized layout and the bundled
// model's eval forward is the matching quantized reference.
func buildPrepared(name string, scale, ratio float64, panel int, seed uint64, int8 bool) (*seal.Prepared, error) {
	arch, err := seal.ArchByName(name)
	if err != nil {
		return nil, err
	}
	arch = arch.Scale(scale, 0)
	opts := seal.DefaultOptions()
	opts.Ratio = ratio
	popts := []seal.PrepareOption{
		seal.WithOptions(opts),
		seal.WithKey(seal.KeyFromString("sealinfer sealing key")),
	}
	if panel != 0 {
		// Forward nonzero budgets (including bad negative ones, which
		// Prepare rejects with seal.ErrBadOption) and keep 0 = default.
		popts = append(popts, seal.WithPanelBytes(panel))
	}
	if int8 {
		popts = append(popts, seal.WithInt8())
	}
	return seal.Prepare(arch, seed, popts...)
}

// runOne times one warm plaintext and one warm secure forward and
// checks the logits agree bit for bit (against the quantized eval
// forward when int8).
func runOne(name string, scale, ratio float64, batch, panel int, seed uint64, int8 bool) (runSummary, error) {
	p, err := buildPrepared(name, scale, ratio, panel, seed, int8)
	if err != nil {
		return runSummary{}, err
	}
	e, m, arch := p.Engine(), p.Model(), p.Arch()
	rng := prng.New(seed + 1)
	x := seal.NewTensor(batch, arch.InC, arch.InH, arch.InW)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	m.Forward(x, false)
	start := time.Now()
	want := m.Forward(x, false)
	plainMS := float64(time.Since(start).Microseconds()) / 1e3
	wantCopy := make([]float32, len(want.Data))
	copy(wantCopy, want.Data)

	e.Forward(x)
	e.ResetStats()
	start = time.Now()
	got := e.Forward(x)
	secureMS := float64(time.Since(start).Microseconds()) / 1e3

	equal := len(got.Data) == len(wantCopy)
	if equal {
		for i := range wantCopy {
			if got.Data[i] != wantCopy[i] {
				equal = false
				break
			}
		}
	}
	return runSummary{name: name, plainMS: plainMS, secureMS: secureMS, stats: e.Stats(), logitsEqual: equal}, nil
}
