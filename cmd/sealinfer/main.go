// Command sealinfer runs streamed secure inference: a model's forward
// pass computed directly from the encrypted memory image, with per-layer
// weight panels decrypted on the fly and overlapped with the GEMMs.
// It reports the wall-clock gap between the secure and plaintext
// forward passes — the functional counterpart of the paper's claim that
// smart encryption keeps the accelerator near its plaintext roofline.
//
// Usage:
//
//	sealinfer                          # VGG-16 and ResNet-18 summary
//	sealinfer -model vgg16 -batch 32   # one model, custom batch
//	sealinfer -ratio 1.0               # full encryption
//	sealinfer -bench-json              # write BENCH_PR6.json and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"seal"
	"seal/internal/parallel"
	"seal/internal/prng"
)

func main() {
	var (
		model = flag.String("model", "vgg16,resnet18", "comma-separated architectures: vgg16, resnet18, resnet34")
		scale = flag.Float64("scale", 0.25, "channel-width multiplier applied to the architecture")
		ratio = flag.Float64("ratio", 0.5, "SE encryption ratio")
		batch = flag.Int("batch", 16, "inference batch size")
		panel = flag.Int("panel", 0, "panel byte budget (0 = engine default)")
		seed  = flag.Uint64("seed", 42, "weight-initialization seed")

		benchJSON = flag.Bool("bench-json", false, "benchmark secure vs plaintext forward, verify bit-identical logits, write the JSON report and exit")
		benchOut  = flag.String("bench-out", "BENCH_PR6.json", "output path for -bench-json")
		goldenF   = flag.String("golden", "testdata/secure_golden.json", "golden bounds file for -bench-json (skipped if absent)")
	)
	flag.Parse()

	names := strings.Split(*model, ",")
	if *benchJSON {
		os.Exit(runBenchJSON(*benchOut, *goldenF, names, *scale, *ratio, *batch, *panel, *seed))
	}

	for _, name := range names {
		s, err := runOne(strings.TrimSpace(name), *scale, *ratio, *batch, *panel, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sealinfer: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%-9s scale %.3g ratio %.0f%% batch %d workers %d: plaintext %.1f ms, secure %.1f ms (%.3fx), %d panels, %.2f MB decrypted, %.2f MB bypassed, logits %s\n",
			s.name, *scale, *ratio*100, *batch, parallel.Workers(),
			s.plainMS, s.secureMS, s.secureMS/s.plainMS, s.stats.Panels,
			float64(s.stats.BytesDecrypted)/1e6, float64(s.stats.BytesCopied)/1e6,
			map[bool]string{true: "bit-identical", false: "MISMATCH"}[s.logitsEqual])
		if !s.logitsEqual {
			os.Exit(1)
		}
	}
}

type runSummary struct {
	name        string
	plainMS     float64
	secureMS    float64
	stats       seal.SecureStats
	logitsEqual bool
}

// buildPrepared bundles model, SE plan, encrypted image and streaming
// engine for one architecture through the one-call Prepare API.
func buildPrepared(name string, scale, ratio float64, panel int, seed uint64) (*seal.Prepared, error) {
	arch, err := seal.ArchByName(name)
	if err != nil {
		return nil, err
	}
	arch = arch.Scale(scale, 0)
	opts := seal.DefaultOptions()
	opts.Ratio = ratio
	return seal.Prepare(arch, seed,
		seal.WithOptions(opts),
		seal.WithKey(seal.KeyFromString("sealinfer sealing key")),
		seal.WithPanelBytes(panel))
}

// runOne times one warm plaintext and one warm secure forward and
// checks the logits agree bit for bit.
func runOne(name string, scale, ratio float64, batch, panel int, seed uint64) (runSummary, error) {
	p, err := buildPrepared(name, scale, ratio, panel, seed)
	if err != nil {
		return runSummary{}, err
	}
	e, m, arch := p.Engine(), p.Model(), p.Arch()
	rng := prng.New(seed + 1)
	x := seal.NewTensor(batch, arch.InC, arch.InH, arch.InW)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	m.Forward(x, false)
	start := time.Now()
	want := m.Forward(x, false)
	plainMS := float64(time.Since(start).Microseconds()) / 1e3
	wantCopy := make([]float32, len(want.Data))
	copy(wantCopy, want.Data)

	e.Forward(x)
	e.ResetStats()
	start = time.Now()
	got := e.Forward(x)
	secureMS := float64(time.Since(start).Microseconds()) / 1e3

	equal := len(got.Data) == len(wantCopy)
	if equal {
		for i := range wantCopy {
			if got.Data[i] != wantCopy[i] {
				equal = false
				break
			}
		}
	}
	return runSummary{name: name, plainMS: plainMS, secureMS: secureMS, stats: e.Stats(), logitsEqual: equal}, nil
}
