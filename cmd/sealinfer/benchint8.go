package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"seal"
	"seal/internal/parallel"
	"seal/internal/prng"
)

// int8ModelResult is one architecture's float-vs-int8 secure roofline
// comparison: same scale, ratio, batch and seed on both sides.
type int8ModelResult struct {
	Name string `json:"name"`
	// Float32 streamed secure forward (the PR 6 path).
	FloatSecureNsPerOp int64   `json:"float_secure_ns_per_op"`
	FloatMBDecrypted   float64 `json:"float_mb_decrypted_per_forward"`
	// Quantized streamed secure forward.
	Int8SecureNsPerOp int64   `json:"int8_secure_ns_per_op"`
	Int8MBDecrypted   float64 `json:"int8_mb_decrypted_per_forward"`
	Int8AllocsPerOp   int64   `json:"int8_allocs_per_op"`
	// Int8Speedup = float secure ns / int8 secure ns (higher is better).
	Int8Speedup float64 `json:"int8_speedup"`
	// DecryptCut = float MB decrypted / int8 MB decrypted.
	DecryptCut float64 `json:"decrypt_cut"`
	// Int8DecryptGBPerSec is the standalone bulk decrypt throughput over
	// the quantized weight regions.
	Int8DecryptGBPerSec float64 `json:"int8_decrypt_gb_per_sec"`
	// LogitsBitIdentical: streamed int8 logits equal the quantized model
	// eval forward bit for bit, across worker counts {1, 8} and panel
	// budgets {default, 4096}.
	LogitsBitIdentical bool `json:"logits_bit_identical"`
	// MaxErrVsFloat is the largest |int8 − float32| logit gap, and
	// ErrTolerance the accepted bound (10% of the float logit range).
	MaxErrVsFloat   float64 `json:"max_err_vs_float"`
	ErrTolerance    float64 `json:"err_tolerance"`
	WithinTolerance bool    `json:"within_tolerance"`
}

// int8Report is the schema of BENCH_PR8.json.
type int8Report struct {
	Benchmark string            `json:"benchmark"`
	Scale     float64           `json:"scale"`
	Ratio     float64           `json:"ratio"`
	Batch     int               `json:"batch"`
	Workers   int               `json:"workers"`
	Models    []int8ModelResult `json:"models"`
	// BestInt8Speedup is the largest per-model float/int8 time ratio —
	// the headline quantization win.
	BestInt8Speedup float64 `json:"best_int8_speedup"`
	MinDecryptCut   float64 `json:"min_decrypt_cut"`
	AllBitIdentical bool    `json:"all_bit_identical"`
	AllWithinTol    bool    `json:"all_within_tolerance"`
	GoldenFile      string  `json:"golden_file,omitempty"`
	GoldenMatch     *bool   `json:"golden_match,omitempty"`
}

// int8Golden bounds the quantization win. The speedup bound applies to
// the best model (so one noisy run on a quantization-unfriendly shape
// cannot flake the gate); the decrypt cut is a layout property and must
// hold for every model.
type int8Golden struct {
	MinInt8Speedup float64 `json:"min_int8_speedup"`
	MinDecryptCut  float64 `json:"min_decrypt_cut"`
}

// benchInt8Model measures one architecture both ways and cross-checks
// the quantized logits.
func benchInt8Model(name string, scale, ratio float64, batch, panel int, seed uint64) (int8ModelResult, error) {
	pf, err := buildPrepared(name, scale, ratio, panel, seed, false)
	if err != nil {
		return int8ModelResult{}, err
	}
	p8, err := buildPrepared(name, scale, ratio, panel, seed, true)
	if err != nil {
		return int8ModelResult{}, err
	}
	ef, e8, arch := pf.Engine(), p8.Engine(), pf.Arch()
	rng := prng.New(seed + 1)
	x := seal.NewTensor(batch, arch.InC, arch.InH, arch.InW)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}

	// Float reference logits (plaintext forward == streamed float).
	floatLogits := pf.Model().Forward(x, false)
	floatCopy := make([]float32, len(floatLogits.Data))
	copy(floatCopy, floatLogits.Data)
	// Quantized reference logits: the int8 Prepared's model runs the
	// matching quantized eval forward.
	qwant := p8.Model().Forward(x, false)
	qwantCopy := make([]float32, len(qwant.Data))
	copy(qwantCopy, qwant.Data)

	ef.Forward(x)
	ef.ResetStats()
	fsec := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ef.Forward(x)
		}
	})
	fst := ef.Stats()

	e8.Forward(x)
	e8.ResetStats()
	qsec := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e8.Forward(x)
		}
	})
	qst := e8.Stats()

	// Bit-identity of the streamed int8 logits against the quantized
	// eval forward, across worker counts and panel budgets. Exact int32
	// panel accumulation makes both invariances arithmetic facts; this
	// verifies them on the real image.
	bitIdentical := true
	check := func(e *seal.SecureEngine) {
		for _, workers := range []int{1, 8} {
			prev := parallel.SetWorkers(workers)
			got := e.Forward(x)
			parallel.SetWorkers(prev)
			if len(got.Data) != len(qwantCopy) {
				bitIdentical = false
				return
			}
			for i := range qwantCopy {
				if got.Data[i] != qwantCopy[i] {
					bitIdentical = false
					return
				}
			}
		}
	}
	check(e8)
	p8alt, err := buildPrepared(name, scale, ratio, 4096, seed, true)
	if err != nil {
		return int8ModelResult{}, err
	}
	check(p8alt.Engine())

	// Quantization error against the float32 logits.
	var maxAbs, maxErr float64
	for _, v := range floatCopy {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	for i := range qwantCopy {
		if d := math.Abs(float64(qwantCopy[i] - floatCopy[i])); d > maxErr {
			maxErr = d
		}
	}
	tol := 0.1 * maxAbs
	if tol == 0 {
		tol = 1e-3
	}

	// Standalone bulk decrypt throughput over the int8 weight regions.
	img := e8.Image()
	var total int64
	var dst []byte
	for _, lp := range img.Layout.Plan.Layers {
		r := img.Layout.Region("w:" + lp.Name)
		total += int64(r.Size)
		if int(r.Size) > len(dst) {
			dst = make([]byte, r.Size)
		}
	}
	dec := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			for _, lp := range img.Layout.Plan.Layers {
				r := img.Layout.Region("w:" + lp.Name)
				if _, err := img.DecryptRegionInto(r, dst); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	ffwd, qfwd := fst.Forwards, qst.Forwards
	if ffwd == 0 {
		ffwd = 1
	}
	if qfwd == 0 {
		qfwd = 1
	}
	fmb := float64(fst.BytesDecrypted) / float64(ffwd) / 1e6
	qmb := float64(qst.BytesDecrypted) / float64(qfwd) / 1e6
	r := int8ModelResult{
		Name:                name,
		FloatSecureNsPerOp:  fsec.NsPerOp(),
		FloatMBDecrypted:    fmb,
		Int8SecureNsPerOp:   qsec.NsPerOp(),
		Int8MBDecrypted:     qmb,
		Int8AllocsPerOp:     qsec.AllocsPerOp(),
		Int8Speedup:         float64(fsec.NsPerOp()) / float64(qsec.NsPerOp()),
		Int8DecryptGBPerSec: float64(total) / float64(dec.NsPerOp()),
		LogitsBitIdentical:  bitIdentical,
		MaxErrVsFloat:       maxErr,
		ErrTolerance:        tol,
		WithinTolerance:     maxErr <= tol,
	}
	if qmb > 0 {
		r.DecryptCut = fmb / qmb
	}
	return r, nil
}

// runBenchInt8JSON measures every requested architecture float-vs-int8,
// writes BENCH_PR8.json and returns the process exit code: nonzero when
// the int8 logits are not bit-identical to the quantized eval forward,
// drift outside the float tolerance, or the golden bounds fail.
func runBenchInt8JSON(out, goldenPath string, names []string, scale, ratio float64, batch, panel int, seed uint64) int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "sealinfer: bench-json: %v\n", err)
		return 1
	}
	rep := int8Report{
		Benchmark:       "Int8SecureForward",
		Scale:           scale,
		Ratio:           ratio,
		Batch:           batch,
		Workers:         parallel.Workers(),
		AllBitIdentical: true,
		AllWithinTol:    true,
	}
	minCut := 0.0
	for _, name := range names {
		name = strings.TrimSpace(name)
		fmt.Fprintf(os.Stderr, "sealinfer: benchmarking %s float vs int8 (scale %.3g, ratio %.0f%%, batch %d)...\n", name, scale, ratio*100, batch)
		r, err := benchInt8Model(name, scale, ratio, batch, panel, seed)
		if err != nil {
			return fail(err)
		}
		rep.Models = append(rep.Models, r)
		if !r.LogitsBitIdentical {
			rep.AllBitIdentical = false
		}
		if !r.WithinTolerance {
			rep.AllWithinTol = false
		}
		if r.Int8Speedup > rep.BestInt8Speedup {
			rep.BestInt8Speedup = r.Int8Speedup
		}
		if minCut == 0 || r.DecryptCut < minCut {
			minCut = r.DecryptCut
		}
	}
	rep.MinDecryptCut = minCut

	code := 0
	if !rep.AllBitIdentical {
		fmt.Fprintln(os.Stderr, "sealinfer: FAIL: int8 streamed logits differ from the quantized eval forward")
		code = 1
	}
	if !rep.AllWithinTol {
		fmt.Fprintln(os.Stderr, "sealinfer: FAIL: int8 logits drift outside the float32 tolerance")
		code = 1
	}
	if g, err := os.ReadFile(goldenPath); err == nil {
		var want int8Golden
		if err := json.Unmarshal(g, &want); err != nil {
			return fail(fmt.Errorf("parse %s: %w", goldenPath, err))
		}
		match := rep.BestInt8Speedup >= want.MinInt8Speedup && rep.MinDecryptCut >= want.MinDecryptCut
		rep.GoldenFile = goldenPath
		rep.GoldenMatch = &match
		if !match {
			fmt.Fprintf(os.Stderr, "sealinfer: FAIL: best int8 speedup %.3f (want >= %.2f) or min decrypt cut %.3f (want >= %.2f) below golden\n",
				rep.BestInt8Speedup, want.MinInt8Speedup, rep.MinDecryptCut, want.MinDecryptCut)
			code = 1
		}
	} else if goldenPath != "" {
		fmt.Fprintf(os.Stderr, "sealinfer: note: golden file %s not found, skipping golden check\n", goldenPath)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return fail(err)
	}
	for _, r := range rep.Models {
		fmt.Printf("%s: float secure %.1f ms/op, int8 secure %.1f ms/op (%.2fx faster), decrypt %.2f MB → %.2f MB (%.2fx cut), int8 decrypt %.2f GB/s, allocs/op %d, bit_identical=%v, max_err %.3g (tol %.3g)\n",
			r.Name, float64(r.FloatSecureNsPerOp)/1e6, float64(r.Int8SecureNsPerOp)/1e6,
			r.Int8Speedup, r.FloatMBDecrypted, r.Int8MBDecrypted, r.DecryptCut,
			r.Int8DecryptGBPerSec, r.Int8AllocsPerOp, r.LogitsBitIdentical, r.MaxErrVsFloat, r.ErrTolerance)
	}
	fmt.Printf("wrote %s: best int8 speedup %.3fx, min decrypt cut %.3fx, all_bit_identical=%v\n",
		out, rep.BestInt8Speedup, rep.MinDecryptCut, rep.AllBitIdentical)
	return code
}
