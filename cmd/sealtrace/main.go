// Command sealtrace inspects a network's smart-encryption plan, memory
// layout and generated traffic: per-layer encrypted rows, region map,
// and the plaintext/ciphertext traffic split the simulator will see.
//
// Usage:
//
//	sealtrace -arch vgg16 -ratio 0.5
//	sealtrace -arch resnet18 -scale 0.25 -regions
package main

import (
	"flag"
	"fmt"
	"os"

	"seal/internal/core"
	"seal/internal/models"
	"seal/internal/prng"
	"seal/internal/trace"
)

func main() {
	var (
		archName = flag.String("arch", "vgg16", "architecture: vgg16, resnet18, resnet34")
		ratio    = flag.Float64("ratio", 0.5, "encryption ratio")
		scale    = flag.Float64("scale", 1.0, "width multiplier")
		batch    = flag.Int("batch", 1, "inference batch")
		regions  = flag.Bool("regions", false, "print the full region map")
		seed     = flag.Uint64("seed", 1, "weight seed for the l1 ranking")
	)
	flag.Parse()

	arch, err := models.ArchByName(*archName)
	if err != nil {
		fail(err)
	}
	scaled := arch
	if *scale != 1.0 {
		scaled = arch.Scale(*scale, 0)
	}
	model, err := models.Build(scaled, prng.New(*seed))
	if err != nil {
		fail(err)
	}
	opts := core.DefaultOptions()
	opts.Ratio = *ratio
	plan, err := core.NewPlan(model, opts)
	if err != nil {
		fail(err)
	}
	if err := plan.Verify(); err != nil {
		fail(fmt.Errorf("security invariant violated: %w", err))
	}
	layout, err := core.NewLayout(plan, *batch)
	if err != nil {
		fail(err)
	}

	fmt.Printf("%s  ratio=%.0f%%  scale=%.3g  batch=%d\n", scaled.Name, *ratio*100, *scale, *batch)
	fmt.Printf("weight layers: %d   total weights: %d (%.1f MB)\n",
		scaled.WeightLayerCount(), scaled.TotalWeights(), float64(scaled.TotalWeights())*4/1e6)
	fmt.Printf("encrypted weight bytes: %.1f%%   layout ciphertext: %.1f%%\n\n",
		plan.WeightEncFraction()*100, layout.EncryptedFraction()*100)

	fmt.Printf("%-24s %6s %9s %9s %9s %s\n", "layer", "kind", "encRows", "inEnc", "outEnc", "note")
	for _, lp := range plan.Layers {
		note := ""
		if lp.Full {
			note = "boundary: fully encrypted"
		}
		fmt.Printf("%-24s %6s %4d/%-4d %4d/%-4d %4d/%-4d %s\n",
			lp.Name, lp.Spec.Kind, lp.EncRowCount(), len(lp.EncRows),
			count(lp.InEnc), len(lp.InEnc), count(lp.OutEnc), len(lp.OutEnc), note)
	}

	p := trace.DefaultParams()
	p.Batch = *batch
	traces, err := trace.Network(p, plan, layout)
	if err != nil {
		fail(err)
	}
	var plain, enc int64
	for _, lt := range traces {
		for _, st := range lt.Streams {
			for _, op := range st {
				if op.NoMem {
					continue
				}
				if layout.Protected(op.Addr) {
					enc++
				} else {
					plain++
				}
			}
		}
	}
	fmt.Printf("\ngenerated traffic: %d line transfers (%.1f MB), %.1f%% ciphertext\n",
		plain+enc, float64(plain+enc)*64/1e6, 100*float64(enc)/float64(plain+enc))

	if *regions {
		fmt.Printf("\n%-28s %12s %10s %10s %8s\n", "region", "base", "size", "encBytes", "blocks")
		for _, r := range layout.Regions() {
			fmt.Printf("%-28s %#12x %10d %10d %8d\n", r.Name, r.Base, r.Size, r.EncryptedBytes(), r.Blocks())
		}
	}
}

func count(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "sealtrace: %v\n", err)
	os.Exit(1)
}
