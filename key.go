package seal

import (
	"encoding/binary"
	"fmt"

	"seal/internal/aes"
)

// KeySize is the byte length of a sealing key (AES-128).
const KeySize = aes.KeySize

// Key is a validated 128-bit sealing key. The zero Key is usable (any
// 16 bytes key AES), but deployments should construct keys explicitly
// with NewKey or KeyFromString and hand each tenant a DeriveSubKey
// result so no two tenants ever share keystream.
//
// Key replaces the raw []byte keys of the original five-step API: a
// Key cannot have the wrong length, so the one runtime failure mode of
// core.NewMemoryImage's raw-slice path (which remains available as the
// low-level API, but is deprecated for callers of this package) is
// gone by construction.
type Key struct {
	b [KeySize]byte
}

// NewKey validates and copies a raw 16-byte key. It wraps ErrBadKey for
// any other length.
func NewKey(b []byte) (Key, error) {
	if len(b) != KeySize {
		return Key{}, fmt.Errorf("%w: length %d, want %d", ErrBadKey, len(b), KeySize)
	}
	var k Key
	copy(k.b[:], b)
	return k, nil
}

// KeyFromString derives a Key from an arbitrary passphrase-style
// string, so CLIs, examples and tests never ship hard-coded 16-byte
// literals. The derivation is the same keyed AES construction as
// DeriveSubKey (under the zero master key, with a distinct
// domain-separation label), deterministic across runs and platforms.
//
// It is for demos and tests only: the derivation is fast, unsalted and
// publicly computable (the master key is the all-zero constant), so the
// resulting Key has exactly the entropy of the passphrase and a
// low-entropy passphrase is trivially brute-forceable offline.
// Deployments that seal real weights — anything rooting a tenant key
// hierarchy, like sealserve — must use NewKey with 16 random bytes
// (e.g. `openssl rand -hex 16` delivered via flag, env or file).
func KeyFromString(s string) Key {
	var zero Key
	return zero.derive(labelPassphrase, s)
}

// Bytes returns a copy of the raw key material.
func (k Key) Bytes() []byte {
	out := make([]byte, KeySize)
	copy(out, k.b[:])
	return out
}

// String redacts the key material so a Key can be logged safely.
func (k Key) String() string { return "seal.Key(redacted)" }

// Domain-separation labels for the keyed derivation.
const (
	labelTenant     = 'T'
	labelPassphrase = 'P'
)

// DeriveSubKey derives the tenant's sub-key from k. The derivation is a
// PRF built entirely from the repository's own AES-CTR machinery: a
// CBC-MAC under k absorbs the length-prefixed, domain-separated tenant
// name, and the MAC value then selects the (address, counter) pair of
// one counter-mode keystream block under k — the same per-line pad
// datapath the memory encryption uses — whose 16 bytes are the sub-key.
// Distinct tenant names yield independent keys; without k, no sub-key
// reveals anything about another (each is one AES-CTR pad under k).
func (k Key) DeriveSubKey(tenant string) Key {
	return k.derive(labelTenant, tenant)
}

func (k Key) derive(label byte, s string) Key {
	c, err := aes.New(k.b[:])
	if err != nil {
		// A Key is 16 bytes by construction.
		panic(err)
	}
	// CBC-MAC over label || len(s) || s, zero-padded to whole blocks.
	// The length prefix makes the padded message injective.
	var st [KeySize]byte
	st[0] = label
	binary.BigEndian.PutUint64(st[1:9], uint64(len(s)))
	c.Encrypt(st[:], st[:])
	for i := 0; i < len(s); i += KeySize {
		var blk [KeySize]byte
		copy(blk[:], s[i:])
		for j := range st {
			st[j] ^= blk[j]
		}
		c.Encrypt(st[:], st[:])
	}
	// Expand through the CTR pad path keyed by k.
	pad := aes.NewCTR(c).Pad(
		binary.BigEndian.Uint64(st[0:8]),
		binary.BigEndian.Uint64(st[8:16]),
		KeySize,
	)
	var out Key
	copy(out.b[:], pad)
	return out
}
