package seal

import (
	"testing"

	"seal/internal/prng"
	"seal/internal/tensor"
)

// testImageKey seals the images the façade tests build.
var testImageKey = KeyFromString("seal facade test key")

func TestFacadeEndToEnd(t *testing.T) {
	arch := ResNet18().Scale(0.125, 0)
	model, err := BuildModel(arch, 42)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(model, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Verify(); err != nil {
		t.Fatal(err)
	}
	layout, err := NewLayout(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := layout.EncryptedFraction()
	if f <= 0.3 || f >= 0.95 {
		t.Fatalf("encrypted fraction %v out of expected band", f)
	}
}

func TestFacadeArchs(t *testing.T) {
	for _, name := range []string{"vgg16", "resnet18", "resnet34"} {
		a, err := ArchByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if VGG16().WeightLayerCount() != 16 {
		t.Fatal("VGG16 facade wrong")
	}
}

func TestFacadeSimRuns(t *testing.T) {
	cfg := GTX480()
	cfg.NumSMs = 2
	cfg.Channels = 2
	sim, err := NewSim(cfg.WithMode(ModeDirect, nil))
	if err != nil {
		t.Fatal(err)
	}
	streams := makeReadStreams(200)
	res, err := sim.Run(streams)
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineBytes() == 0 {
		t.Fatal("direct mode used no engine")
	}
}

func TestFacadeTrainingImproves(t *testing.T) {
	arch := ResNet18().Scale(0.0625, 0)
	model, err := BuildModel(arch, 7)
	if err != nil {
		t.Fatal(err)
	}
	ds := SyntheticCIFAR10(1, 200)
	before := Accuracy(model, ds)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 2
	Train(model, ds, cfg, 9)
	after := Accuracy(model, ds)
	if after <= before {
		t.Fatalf("training did not improve accuracy: %v -> %v", before, after)
	}
}

func makeReadStreams(n int) []Stream {
	st := make(Stream, n)
	for i := range st {
		st[i] = Op{Compute: 1, Addr: uint64(i) * 64}
	}
	return []Stream{st}
}

func TestQuickTimingConfigSmallerThanDefault(t *testing.T) {
	d, q := DefaultTimingConfig(), QuickTimingConfig()
	if q.MatmulN >= d.MatmulN || q.Scale >= d.Scale {
		t.Fatalf("quick config not smaller: %+v vs %+v", q, d)
	}
}

func TestFacadeMemoryImage(t *testing.T) {
	arch := ResNet18().Scale(0.125, 0)
	model, err := BuildModel(arch, 5)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(model, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	layout, err := NewLayout(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	img, err := NewMemoryImage(layout, model, testImageKey)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := img.Audit(model)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no audit reports")
	}
}

func TestFacadeSecureEngine(t *testing.T) {
	arch := VGG16().Scale(0.125, 0)
	model, err := BuildModel(arch, 6)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(model, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	layout, err := NewLayout(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	img, err := NewMemoryImage(layout, model, testImageKey)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewSecureEngine(img, model)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, arch.InC, arch.InH, arch.InW)
	rng := prng.New(8)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	want := model.Forward(x, false)
	wantCopy := make([]float32, len(want.Data))
	copy(wantCopy, want.Data)
	got := eng.Forward(x)
	for i := range wantCopy {
		if got.Data[i] != wantCopy[i] {
			t.Fatalf("secure logit %d = %v, want %v", i, got.Data[i], wantCopy[i])
		}
	}
	var st SecureStats = eng.Stats()
	if st.Forwards != 1 || st.BytesDecrypted == 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}
