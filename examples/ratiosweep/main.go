// Ratiosweep walks the encryption ratio from 10% to 90% and reports the
// two quantities the paper trades off when it settles on 50% (§III-B3):
// the fraction of model weights an adversary receives in plaintext
// (security side, lower is better) and the simulated inference slowdown
// (performance side, lower is better).
package main

import (
	"fmt"
	"log"

	"seal"
	"seal/internal/attack"
	"seal/internal/trace"
)

func main() {
	arch := seal.VGG16().Scale(0.25, 0)
	model, err := seal.BuildModel(arch, 21)
	if err != nil {
		log.Fatal(err)
	}

	// baseline (no encryption) latency for normalization
	base, err := simulate(model, 0, seal.ModeNone, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("VGG-16 (quarter width), SEAL-D, simulated GTX480")
	fmt.Printf("%8s %14s %16s %14s\n", "ratio", "leakedWeights", "cipherTraffic", "slowdown")
	for _, ratio := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		opts := seal.DefaultOptions()
		opts.Ratio = ratio
		plan, err := seal.NewPlan(model, opts)
		if err != nil {
			log.Fatal(err)
		}
		layout, err := seal.NewLayout(plan, 1)
		if err != nil {
			log.Fatal(err)
		}
		cycles, err := simulate(model, ratio, seal.ModeDirect, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7.0f%% %13.1f%% %15.1f%% %13.2fx\n",
			ratio*100,
			100*attack.LeakedFraction(plan),
			100*layout.EncryptedFraction(),
			cycles/base)
	}
	fmt.Println("\nthe paper picks 50%: past it, leaked weights stop helping the")
	fmt.Println("adversary (figs 3-4) while the slowdown keeps growing.")
}

// simulate returns whole-inference cycles for the model under a scheme.
func simulate(model *seal.Model, ratio float64, mode seal.EncMode, selective bool) (float64, error) {
	opts := seal.DefaultOptions()
	if ratio > 0 {
		opts.Ratio = ratio
	}
	plan, err := seal.NewPlan(model, opts)
	if err != nil {
		return 0, err
	}
	layout, err := seal.NewLayout(plan, 1)
	if err != nil {
		return 0, err
	}
	p := trace.DefaultParams()
	traces, err := trace.Network(p, plan, layout)
	if err != nil {
		return 0, err
	}
	var fn func(uint64) bool
	if selective {
		fn = layout.Protected
	}
	sim, err := seal.NewSim(seal.GTX480().WithMode(mode, fn))
	if err != nil {
		return 0, err
	}
	_, total, err := trace.RunNetwork(sim, traces)
	if err != nil {
		return 0, err
	}
	return total.Cycles, nil
}
