// Edgeinference is the paper's motivating scenario end to end: an edge
// device runs real-time CNN inference from encrypted DRAM. The example
// trains a small victim model on synthetic data, plans SEAL encryption
// from its real weights, simulates a full inference on the GTX480 model
// under all five protection schemes, and reports latency next to the
// model's accuracy — showing that SEAL's protection costs a fraction of
// full encryption's slowdown.
package main

import (
	"fmt"
	"log"

	"seal"
	"seal/internal/trace"
)

func main() {
	// 1. Train a (width-scaled) ResNet-18 victim on synthetic CIFAR-10.
	arch := seal.ResNet18().Scale(0.0625, 0)
	model, err := seal.BuildModel(arch, 11)
	if err != nil {
		log.Fatal(err)
	}
	train := seal.SyntheticCIFAR10(3, 300)
	test := seal.SyntheticCIFAR10(3, 100) // same seed → same class prototypes
	cfg := seal.DefaultTrainConfig()
	cfg.Epochs = 4
	fmt.Println("training victim model (4 epochs on 300 synthetic images)...")
	seal.Train(model, train, cfg, 5)
	fmt.Printf("victim test accuracy: %.1f%%\n\n", 100*seal.Accuracy(model, test))

	// 2. Plan SEAL from the trained weights and lay out memory.
	plan, err := seal.NewPlan(model, seal.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	layout, err := seal.NewLayout(plan, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SEAL plan: %.0f%% of weight bytes encrypted, %.0f%% of DRAM image ciphertext\n\n",
		100*plan.WeightEncFraction(), 100*layout.EncryptedFraction())

	// 3. Generate the inference traffic and simulate it under each
	// protection scheme.
	p := trace.DefaultParams()
	traces, err := trace.Network(p, plan, layout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %12s %12s %10s\n", "scheme", "cycles", "latency(ms)", "vs base")
	var baseCycles float64
	for _, sc := range []struct {
		name string
		mode seal.EncMode
		fn   func(uint64) bool
	}{
		{"Baseline (insecure)", seal.ModeNone, nil},
		{"Direct encryption", seal.ModeDirect, nil},
		{"Counter-mode encryption", seal.ModeCounter, nil},
		{"SEAL-D (selective, direct)", seal.ModeDirect, layout.Protected},
		{"SEAL-C (selective, counter)", seal.ModeCounter, layout.Protected},
	} {
		simCfg := seal.GTX480().WithMode(sc.mode, sc.fn)
		sim, err := seal.NewSim(simCfg)
		if err != nil {
			log.Fatal(err)
		}
		_, total, err := trace.RunNetwork(sim, traces)
		if err != nil {
			log.Fatal(err)
		}
		if baseCycles == 0 {
			baseCycles = total.Cycles
		}
		fmt.Printf("%-28s %12.0f %12.3f %9.2fx\n",
			sc.name, total.Cycles,
			total.Cycles/simCfg.CoreClockHz*1e3,
			total.Cycles/baseCycles)
	}
	fmt.Println("\nSEAL keeps the critical half of the model ciphertext on the bus")
	fmt.Println("while paying a fraction of full encryption's latency.")
}
