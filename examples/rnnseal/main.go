// Rnnseal exercises the paper's closing claim of §III-A: "the proposed
// SE scheme can be applied to other deep neural networks, e.g.,
// recurrent neural networks, that are composed of many FC layers." The
// example plans SEAL for an unrolled RNN and for an MLP, verifies the
// security invariant, and simulates the bandwidth effect of streaming
// their weight matrices — which is all an RNN inference does with its
// kernel matrices each time step.
package main

import (
	"fmt"
	"log"

	"seal"
	"seal/internal/core"
	"seal/internal/models"
	"seal/internal/prng"
	"seal/internal/trace"
)

func main() {
	for _, arch := range []*seal.Arch{
		models.MLPArch("MLP-4x512", 256, []int{512, 512, 512}, 10),
		models.RNNUnrolledArch("RNN-8x256", 128, 256, 8, 10),
	} {
		model, err := models.Build(arch, prng.New(5))
		if err != nil {
			log.Fatal(err)
		}
		plan, err := core.NewPlan(model, core.DefaultMLPOptions())
		if err != nil {
			log.Fatal(err)
		}
		if err := plan.Verify(); err != nil {
			log.Fatal(err)
		}
		layout, err := core.NewLayout(plan, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d FC layers, %.1f%% of weight bytes encrypted, invariant OK\n",
			arch.Name, arch.WeightLayerCount(), 100*plan.WeightEncFraction())

		p := trace.DefaultParams()
		traces, err := trace.Network(p, plan, layout)
		if err != nil {
			log.Fatal(err)
		}
		var base float64
		for _, sc := range []struct {
			name string
			mode seal.EncMode
			fn   func(uint64) bool
		}{
			{"baseline", seal.ModeNone, nil},
			{"full direct", seal.ModeDirect, nil},
			{"SEAL", seal.ModeDirect, layout.Protected},
		} {
			sim, err := seal.NewSim(seal.GTX480().WithMode(sc.mode, sc.fn))
			if err != nil {
				log.Fatal(err)
			}
			_, total, err := trace.RunNetwork(sim, traces)
			if err != nil {
				log.Fatal(err)
			}
			if base == 0 {
				base = total.Cycles
			}
			fmt.Printf("  %-12s %9.0f cycles (%.2fx)\n", sc.name, total.Cycles, total.Cycles/base)
		}
		fmt.Println()
	}
}
