// Busprotect demonstrates what a memory-bus snooper actually captures
// under SEAL: the example writes a layer's kernel rows to "DRAM" through
// the functional counter-mode AES path, records every bus transfer, and
// then plays the adversary trying to read weights back from the capture.
// Plaintext (non-critical) rows are fully visible; critical rows are
// ciphertext indistinguishable from noise.
package main

import (
	"fmt"
	"log"
	"math"

	"seal/internal/aes"
	"seal/internal/engine"
	"seal/internal/prng"
	"seal/internal/tensor"
)

const lineBytes = 64

// busLine is one snooped memory-bus transfer.
type busLine struct {
	addr uint64
	data [lineBytes]byte
}

func main() {
	// A small conv layer: 8 kernel rows (input channels) of 4×(3×3)
	// weights each. Rank rows by l1-norm and encrypt the top half.
	const outC, inC, k = 4, 8, 3
	rng := prng.New(99)
	weights := tensor.New(outC, inC, k, k)
	for i := range weights.Data {
		weights.Data[i] = float32(rng.NormFloat64())
	}
	norms := make([]float64, inC)
	for c := 0; c < inC; c++ {
		var s float64
		for o := 0; o < outC; o++ {
			base := (o*inC + c) * k * k
			for _, v := range weights.Data[base : base+k*k] {
				s += math.Abs(float64(v))
			}
		}
		norms[c] = s
	}
	encRows := selectTopHalf(norms)

	// Lay the rows out kernel-row-major, as SEAL's EMalloc does (the
	// full layout API is exercised in the quickstart example).
	rowBytes := outC * k * k * 4
	rowStride := uint64((rowBytes + lineBytes - 1) / lineBytes * lineBytes)

	// The memory encryption engine: AES-128 counter mode with per-line
	// write counters, exactly the hardware datapath the simulator times.
	cipher, err := aes.New([]byte("SEAL demo key 16"))
	if err != nil {
		log.Fatal(err)
	}
	ctr := aes.NewCTR(cipher)
	counters := engine.NewCounterCache(engine.CounterConfig{
		DataLineBytes: lineBytes, CounterBytes: 8,
		CacheSizeBytes: 4096, CacheWays: 4, CounterBase: 1 << 40,
	})

	// Write every row to DRAM; the snooper records each bus transfer.
	var bus []busLine
	dram := map[uint64][lineBytes]byte{}
	for c := 0; c < inC; c++ {
		row := make([]byte, rowStride)
		for o := 0; o < outC; o++ {
			for i := 0; i < k*k; i++ {
				putFloat(row[(o*k*k+i)*4:], weights.At(o, c, i/k, i%k))
			}
		}
		base := uint64(c) * rowStride
		for off := 0; off < int(rowStride); off += lineBytes {
			addr := base + uint64(off)
			var line [lineBytes]byte
			copy(line[:], row[off:off+lineBytes])
			if encRows[c] {
				counters.Lookup(addr, true) // write bumps the counter
				ctr.XORKeyStream(line[:], line[:], addr, counters.Value(addr))
			}
			dram[addr] = line
			bus = append(bus, busLine{addr: addr, data: line})
		}
	}

	fmt.Printf("snooper captured %d bus transfers\n\n", len(bus))
	fmt.Println("adversary reconstructing kernel rows from the capture:")
	recovered := 0
	for c := 0; c < inC; c++ {
		base := uint64(c) * rowStride
		got := make([]byte, rowStride)
		for off := 0; off < int(rowStride); off += lineBytes {
			line := dram[base+uint64(off)]
			copy(got[off:], line[:])
		}
		// compare the first weight of the row against ground truth
		want := weights.At(0, c, 0, 0)
		gotW := getFloat(got)
		ok := want == gotW
		status := "LEAKED   (plaintext on the bus)"
		if encRows[c] {
			status = "PROTECTED (ciphertext on the bus)"
			if ok {
				log.Fatalf("row %d: encrypted row readable in plaintext!", c)
			}
		} else {
			if !ok {
				log.Fatalf("row %d: plaintext row corrupted", c)
			}
			recovered++
		}
		fmt.Printf("  row %d  l1=%.2f  w[0,0,0]=% .4f  snooped=% .4f  %s\n",
			c, norms[c], want, gotW, status)
	}
	fmt.Printf("\nadversary recovered %d/%d rows — only the least-critical ones.\n", recovered, inC)
	fmt.Println("every encrypted row has a larger l1-norm than every leaked row:")
	fmt.Printf("  min(enc)=%.2f  max(leaked)=%.2f\n", minSel(norms, encRows, true), minSel(norms, encRows, false))
}

func selectTopHalf(norms []float64) []bool {
	enc := make([]bool, len(norms))
	for n := 0; n < len(norms)/2; n++ {
		best, bestV := -1, -1.0
		for i, v := range norms {
			if !enc[i] && v > bestV {
				best, bestV = i, v
			}
		}
		enc[best] = true
	}
	return enc
}

func putFloat(b []byte, v float32) {
	u := math.Float32bits(v)
	b[0], b[1], b[2], b[3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
}

func getFloat(b []byte) float32 {
	u := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return math.Float32frombits(u)
}

// minSel returns min over selected rows when sel is true, else max over
// unselected rows.
func minSel(norms []float64, enc []bool, selected bool) float64 {
	if selected {
		m := math.Inf(1)
		for i, v := range norms {
			if enc[i] && v < m {
				m = v
			}
		}
		return m
	}
	m := math.Inf(-1)
	for i, v := range norms {
		if !enc[i] && v > m {
			m = v
		}
	}
	return m
}
