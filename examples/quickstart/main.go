// Quickstart: plan SEAL's smart encryption for a ResNet-18, inspect the
// criticality ranking, and measure the bandwidth effect on the simulated
// GPU — the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"

	"seal"
)

func main() {
	// 1. Prepare the whole pipeline in one call: model, smart-encryption
	// plan, EMalloc layout, sealed memory image and streaming secure
	// engine. Scale(0.25, 0) shrinks channel widths 4× so the example
	// runs instantly; geometry and layer structure are untouched.
	arch := seal.ResNet18().Scale(0.25, 0)
	p, err := seal.Prepare(arch, 42,
		seal.WithKey(seal.KeyFromString("quickstart demo key")))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %s, %d weight layers, %d parameters\n",
		arch.Name, arch.WeightLayerCount(), arch.TotalWeights())

	// 2. Inspect the smart-encryption decision, made at the paper's
	// default 50% ratio: each layer's kernel rows are ranked by l1-norm
	// and the most critical half is encrypted, along with the matching
	// feature-map channels.
	plan := p.Plan()
	if err := plan.Verify(); err != nil {
		log.Fatal(err) // the SE security invariant must hold
	}
	lp := plan.Layers[4] // a mid-network conv layer
	fmt.Printf("layer %s: %d/%d kernel rows encrypted (most critical by l1-norm)\n",
		lp.Name, lp.EncRowCount(), len(lp.EncRows))
	fmt.Printf("weights encrypted overall: %.1f%%\n", 100*plan.WeightEncFraction())

	// 3. The EMalloc memory layout: every tensor gets a DRAM region with
	// per-line ciphertext marking, and the image's planned blocks hold
	// real AES-CTR ciphertext under the sealing key.
	layout := p.Layout()
	fmt.Printf("address space: %d regions, %.1f%% ciphertext bytes\n",
		len(layout.Regions()), 100*layout.EncryptedFraction())

	// 4. Run secure inference straight from the encrypted image: panels
	// are decrypted on the fly, and the logits are bit-identical to the
	// plaintext forward pass.
	x := seal.NewTensor(1, arch.InC, arch.InH, arch.InW)
	for i := range x.Data {
		x.Data[i] = float32(i%7)/7 - 0.5
	}
	logits := p.Forward(x)
	plain := p.Model().Forward(x, false)
	match := true
	for i := range logits.Data {
		if logits.Data[i] != plain.Data[i] {
			match = false
		}
	}
	fmt.Printf("secure forward: %d logits, bit-identical to plaintext: %v\n",
		len(logits.Data), match)

	// 5. Feel the bandwidth effect: stream the largest SE-planned weight
	// region through the simulated GTX480 under three protections. (A
	// boundary layer would show no SEAL benefit — its weights are fully
	// encrypted by design.)
	var best *seal.LayerPlan
	for _, cand := range plan.Layers {
		if cand.Full {
			continue
		}
		if best == nil || cand.Spec.WeightCount() > best.Spec.WeightCount() {
			best = cand
		}
	}
	w := layout.Region("w:" + best.Name)
	fmt.Printf("streaming weights of %s (%d KB, %d/%d rows encrypted)\n",
		best.Name, w.Size/1024, best.EncRowCount(), len(best.EncRows))
	streams := readRegion(w)
	for _, mode := range []struct {
		name string
		m    seal.EncMode
		fn   func(uint64) bool
	}{
		{"baseline (no encryption)", seal.ModeNone, nil},
		{"full direct encryption", seal.ModeDirect, nil},
		{"SEAL selective encryption", seal.ModeDirect, layout.Protected},
	} {
		cfg := seal.GTX480().WithMode(mode.m, mode.fn)
		sim, err := seal.NewSim(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(streams)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %8.0f cycles  (%.1f GB/s effective)\n",
			mode.name, res.Cycles,
			float64(res.DRAMBytes())/res.Cycles*cfg.CoreClockHz/1e9)
	}
}

// readRegion builds parallel sequential read streams over a region, as
// the SMs of a layer kernel would issue them.
func readRegion(r *seal.Region) []seal.Stream {
	const nStreams = 8
	streams := make([]seal.Stream, nStreams)
	i := 0
	for a := r.Base; a < r.Base+r.Size; a += 64 {
		streams[i%nStreams] = append(streams[i%nStreams], seal.Op{Addr: a})
		i++
	}
	return streams
}
