package seal

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestNewKeyValidation(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 32} {
		_, err := NewKey(make([]byte, n))
		if !errors.Is(err, ErrBadKey) {
			t.Fatalf("NewKey(len %d) error %v, want ErrBadKey", n, err)
		}
	}
	raw := []byte("0123456789abcdef")
	k, err := NewKey(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k.Bytes(), raw) {
		t.Fatalf("Bytes() = %x, want %x", k.Bytes(), raw)
	}
	// Bytes must be a copy, not an alias into the key.
	k.Bytes()[0] ^= 0xff
	if !bytes.Equal(k.Bytes(), raw) {
		t.Fatal("Bytes() aliases the key material")
	}
}

func TestKeyStringRedacts(t *testing.T) {
	k := KeyFromString("super secret passphrase")
	if s := k.String(); strings.Contains(s, "secret") || len(s) > 40 {
		t.Fatalf("String() leaks or is odd: %q", s)
	}
}

func TestDeriveSubKeyDeterministicAndDistinct(t *testing.T) {
	master := KeyFromString("master")
	a1 := master.DeriveSubKey("tenant-a")
	a2 := master.DeriveSubKey("tenant-a")
	b := master.DeriveSubKey("tenant-b")
	if a1 != a2 {
		t.Fatal("DeriveSubKey not deterministic")
	}
	if a1 == b {
		t.Fatal("distinct tenants derived the same key")
	}
	other := KeyFromString("other master").DeriveSubKey("tenant-a")
	if other == a1 {
		t.Fatal("distinct masters derived the same tenant key")
	}
	if a1 == master || b == master {
		t.Fatal("sub-key equals master")
	}
}

// Domain separation: a passphrase key and a tenant derivation of the
// zero key must differ even for equal strings, and long tenant names
// must be absorbed beyond the first block.
func TestKeyDerivationDomains(t *testing.T) {
	var zero Key
	if KeyFromString("x") == zero.DeriveSubKey("x") {
		t.Fatal("passphrase and tenant derivations collide")
	}
	long := strings.Repeat("tenant-name-", 10)
	if zero.DeriveSubKey(long) == zero.DeriveSubKey(long[:16]) {
		t.Fatal("derivation ignores input beyond one block")
	}
	if zero.DeriveSubKey("ab") == zero.DeriveSubKey("a") {
		t.Fatal("length prefix not separating prefixes")
	}
}

// TestDeriveSubKeyEdgeCases sweeps the awkward tenant names — empty,
// exactly one block, spanning several blocks, embedded NUL bytes,
// shared prefixes and zero-padding look-alikes — and requires every
// derivation to be deterministic and every pair of distinct names to
// yield distinct sub-keys. The length-prefixed CBC-MAC makes the padded
// message injective, so e.g. "a" and "a\x00" must not collide even
// though they zero-pad to the same block content.
func TestDeriveSubKeyEdgeCases(t *testing.T) {
	master := KeyFromString("edge-case master")
	tenants := []string{
		"",
		"a",
		"a\x00",
		"a\x00\x00",
		"\x00",
		"\x00a",
		"ab",
		"0123456789abcdef",            // exactly one block
		"0123456789abcdef\x00",        // one block + padding look-alike
		"0123456789abcde",             // one byte short of a block
		"0123456789abcdefg",           // one byte past a block
		strings.Repeat("tenant-", 16), // 7 blocks
		strings.Repeat("tenant-", 16) + "x",
		"tenant-a",
		"tenant-a/shard-0",
		"tenant-a/shard-1",
	}
	keys := make([]Key, len(tenants))
	for i, name := range tenants {
		keys[i] = master.DeriveSubKey(name)
		if again := master.DeriveSubKey(name); again != keys[i] {
			t.Fatalf("DeriveSubKey(%q) not deterministic", name)
		}
		if keys[i] == master {
			t.Fatalf("DeriveSubKey(%q) returned the master key", name)
		}
		var zero Key
		if keys[i] == zero {
			t.Fatalf("DeriveSubKey(%q) returned the zero key", name)
		}
	}
	for i := range tenants {
		for j := i + 1; j < len(tenants); j++ {
			if keys[i] == keys[j] {
				t.Fatalf("tenants %q and %q derived the same sub-key", tenants[i], tenants[j])
			}
		}
	}
}

func TestArchByNameUnknownWrapsSentinel(t *testing.T) {
	if _, err := ArchByName("lenet"); !errors.Is(err, ErrUnknownArch) {
		t.Fatalf("ArchByName error %v, want ErrUnknownArch", err)
	}
	if _, err := PrepareByName("lenet", 1); !errors.Is(err, ErrUnknownArch) {
		t.Fatalf("PrepareByName error %v, want ErrUnknownArch", err)
	}
	if _, err := ArchByName("vgg16"); err != nil {
		t.Fatal(err)
	}
}
